//! Larger-input stress tests (still seconds-scale). These exercise the
//! multi-block/multi-round code paths that small unit-test inputs skip:
//! multiple radix passes, deep doubling rounds, many refinement rounds,
//! long MQ runs.

use rpb::graph::GraphKind;
use rpb::suite::*;
use rpb::ExecMode;

#[test]
fn text_pipeline_at_scale() {
    // 300 KB: dozens of doubling rounds, multi-block scans and sorts.
    let text = inputs::wiki(300_000);
    let sa_par = sa::run_par(&text, ExecMode::Unsafe);
    sa::verify(&text, &sa_par).expect("suffix array valid");
    let repeat = lrs::run_par(&text, ExecMode::Unsafe);
    lrs::verify(&text, &repeat).expect("lrs valid");
    assert!(
        repeat.len >= 256,
        "planted repeats should exceed 256 bytes, got {}",
        repeat.len
    );
    let bwt = rpb::text::bwt_encode(&text, ExecMode::Unsafe);
    assert_eq!(
        bw::run_par(&bwt, ExecMode::Unsafe).expect("encoder output is a valid BWT"),
        text
    );
}

#[test]
fn sort_family_at_scale() {
    let data = inputs::exponential(1_500_000);
    let mut a = data.clone();
    sort::run_par(&mut a, ExecMode::Checked);
    assert!(a.windows(2).all(|w| w[0] <= w[1]));
    let mut b = data.clone();
    isort::run_par(&mut b, 21, ExecMode::Checked);
    assert_eq!(a, b, "sample sort and integer sort disagree");
    let uniq = dedup::run_par(&data, ExecMode::Sync);
    let mut want = data.clone();
    want.sort_unstable();
    want.dedup();
    assert_eq!(uniq, want);
}

#[test]
fn graph_kernels_at_scale() {
    let g = inputs::graph(GraphKind::Rmat, 30_000);
    let mis_flags = mis::run_par(&g, ExecMode::Checked);
    mis::verify(&g, &mis_flags).expect("MIS valid");
    let dist = bfs::run_par(&g, 0, 4, ExecMode::Sync);
    assert_eq!(dist, bfs::run_seq(&g, 0));
    let wg = inputs::weighted_graph(GraphKind::Road, 30_000);
    let sd = sssp::run_par(&wg, 0, 4, ExecMode::Sync);
    assert_eq!(sd, sssp::run_seq(&wg, 0));
}

#[test]
fn refinement_at_scale() {
    let pts = inputs::kuzmin(8_000);
    let r = dr::run_par(&pts, ExecMode::Checked);
    dr::verify(&pts, &r).expect("refined mesh valid");
    assert!(r.stats.inserted > 100, "expected substantial refinement");
}

#[test]
fn msf_variants_agree_at_scale() {
    // Borůvka and filter-Kruskal may break weight ties differently, so
    // raw edge lists are not comparable — the canonical form (total
    // weight, weight multiset, component partition) is.
    let (n, edges) = inputs::weighted_edges(GraphKind::Rmat, 20_000);
    let (b_edges, b_w) = msf::run_par(n, &edges, ExecMode::Checked);
    let (k_edges, k_w) = msf_kruskal::run_par(n, &edges, ExecMode::Checked);
    msf::verify(n, &edges, &b_edges, b_w).expect("Borůvka forest valid");
    msf::verify(n, &edges, &k_edges, k_w).expect("Kruskal forest valid");
    assert_eq!(
        msf::canonical(n, &edges, &b_edges, b_w),
        msf::canonical(n, &edges, &k_edges, k_w)
    );
}
