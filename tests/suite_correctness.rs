//! Cross-crate integration: every benchmark of the suite, in every
//! safety mode, against its sequential baseline — the top-level
//! correctness contract of RPB-rs.

use rpb::graph::GraphKind;
use rpb::suite::*;
use rpb::ExecMode;

const MODES: [ExecMode; 3] = [ExecMode::Unsafe, ExecMode::Checked, ExecMode::Sync];

#[test]
fn bw_all_modes() {
    let bwt = inputs::wiki_bwt(25_000);
    let want = bw::run_seq(&bwt).expect("wiki BWT is well-formed");
    for mode in MODES {
        assert_eq!(
            bw::run_par(&bwt, mode).expect("wiki BWT is well-formed"),
            want,
            "{mode}"
        );
    }
}

#[test]
fn lrs_all_modes() {
    let text = inputs::wiki(25_000);
    let want = lrs::run_seq(&text);
    for mode in MODES {
        let got = lrs::run_par(&text, mode);
        assert_eq!(got.len, want.len, "{mode}");
        lrs::verify(&text, &got).expect("valid repeat");
    }
}

#[test]
fn sa_all_modes() {
    let text = inputs::wiki(25_000);
    let want = sa::run_seq(&text);
    for mode in MODES {
        let got = sa::run_par(&text, mode);
        assert_eq!(got, want, "{mode}");
    }
    sa::verify(&text, &want).expect("valid");
}

#[test]
fn dr_all_modes() {
    let pts = inputs::kuzmin(400);
    for mode in MODES {
        let r = dr::run_par(&pts, mode);
        dr::verify(&pts, &r).expect("refined mesh valid");
    }
    let r = dr::run_seq(&pts);
    dr::verify(&pts, &r).expect("sequential refined mesh valid");
}

#[test]
fn mis_all_modes_and_inputs() {
    for kind in [GraphKind::Link, GraphKind::Road] {
        let g = inputs::graph(kind, 1200);
        let want = mis::run_seq(&g);
        for mode in MODES {
            let got = mis::run_par(&g, mode);
            assert_eq!(got, want, "{kind:?}/{mode}");
            mis::verify(&g, &got).expect("valid MIS");
        }
    }
}

#[test]
fn mm_all_modes_and_inputs() {
    for kind in [GraphKind::Rmat, GraphKind::Road] {
        let (n, edges) = inputs::edges(kind, 1200);
        let want = mm::run_seq(n, &edges);
        for mode in MODES {
            let got = mm::run_par(n, &edges, mode);
            assert_eq!(got, want, "{kind:?}/{mode}");
            mm::verify(n, &edges, &got).expect("valid matching");
        }
    }
}

#[test]
fn sf_all_modes_and_inputs() {
    for kind in [GraphKind::Link, GraphKind::Road] {
        let (n, edges) = inputs::edges(kind, 1200);
        let seq_size = sf::run_seq(n, &edges).len();
        for mode in MODES {
            let got = sf::run_par(n, &edges, mode);
            sf::verify(n, &edges, &got).expect("valid forest");
            assert_eq!(got.len(), seq_size, "{kind:?}/{mode}");
        }
    }
}

#[test]
fn msf_all_modes_and_inputs() {
    for kind in [GraphKind::Rmat, GraphKind::Road] {
        let (n, edges) = inputs::weighted_edges(kind, 1000);
        let (want_edges, want_w) = msf::run_seq(n, &edges);
        let want = msf::canonical(n, &edges, &want_edges, want_w);
        for mode in MODES {
            let (got_edges, got_w) = msf::run_par(n, &edges, mode);
            msf::verify(n, &edges, &got_edges, got_w).expect("valid forest");
            // Ties are legally broken either way; compare canonical forms.
            assert_eq!(
                msf::canonical(n, &edges, &got_edges, got_w),
                want,
                "{kind:?}/{mode}"
            );
        }
    }
}

#[test]
fn sort_all_modes() {
    let input = inputs::exponential(60_000);
    let mut want = input.clone();
    sort::run_seq(&mut want);
    for mode in MODES {
        let mut got = input.clone();
        sort::run_par(&mut got, mode);
        assert_eq!(got, want, "{mode}");
    }
}

#[test]
fn dedup_all_modes() {
    let input = inputs::exponential(60_000);
    let want = dedup::run_seq(&input);
    for mode in MODES {
        assert_eq!(dedup::run_par(&input, mode), want, "{mode}");
    }
}

#[test]
fn hist_all_modes() {
    let input = inputs::exponential(60_000);
    let want = hist::run_seq(&input, 512, 60_000).expect("valid buckets");
    for mode in MODES {
        assert_eq!(
            hist::run_par(&input, 512, 60_000, mode).expect("valid buckets"),
            want,
            "{mode}"
        );
        assert_eq!(
            hist::run_large(&input, 64, 60_000, mode).expect("valid buckets"),
            hist::run_large_seq(&input, 64, 60_000).expect("valid buckets"),
            "{mode} large bins"
        );
    }
}

#[test]
fn isort_all_modes() {
    let input = inputs::exponential(60_000);
    let bits = 17;
    let mut want = input.clone();
    isort::run_seq(&mut want, bits);
    for mode in MODES {
        let mut got = input.clone();
        isort::run_par(&mut got, bits, mode);
        assert_eq!(got, want, "{mode}");
    }
}

#[test]
fn bfs_all_inputs() {
    for kind in [GraphKind::Link, GraphKind::Road] {
        let g = inputs::graph(kind, 1500);
        let want = bfs::run_seq(&g, 0);
        for threads in [1, 3] {
            assert_eq!(
                bfs::run_par(&g, 0, threads, ExecMode::Sync),
                want,
                "{kind:?}"
            );
        }
    }
}

#[test]
fn sssp_all_inputs() {
    for kind in [GraphKind::Link, GraphKind::Road] {
        let g = inputs::weighted_graph(kind, 1200);
        let want = sssp::run_seq(&g, 0);
        for threads in [1, 3] {
            assert_eq!(
                sssp::run_par(&g, 0, threads, ExecMode::Sync),
                want,
                "{kind:?}"
            );
        }
    }
}
