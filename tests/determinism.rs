//! Determinism contract: the internally deterministic benchmarks must
//! produce bit-identical results run to run and across Rayon pool sizes.
//! (Paper Sec. 3.1: the nondeterminism of concurrency errors is what
//! makes them nefarious — the deterministic-by-construction benchmarks
//! are the antidote.)

use rpb::graph::GraphKind;
use rpb::suite::*;
use rpb::ExecMode;

/// Runs `f` inside a Rayon pool with `threads` workers.
fn with_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
        .install(f)
}

#[test]
fn sa_is_deterministic_across_pool_sizes() {
    let text = inputs::wiki(15_000);
    let base = with_pool(1, || sa::run_par(&text, ExecMode::Unsafe));
    for threads in [2, 4] {
        let got = with_pool(threads, || sa::run_par(&text, ExecMode::Unsafe));
        assert_eq!(got, base, "{threads} threads");
    }
}

#[test]
fn mis_is_deterministic_across_pool_sizes() {
    let g = inputs::graph(GraphKind::Rmat, 1500);
    let base = with_pool(1, || mis::run_par(&g, ExecMode::Checked));
    for threads in [2, 4] {
        assert_eq!(
            with_pool(threads, || mis::run_par(&g, ExecMode::Checked)),
            base
        );
    }
}

#[test]
fn mm_is_deterministic_across_pool_sizes() {
    let (n, edges) = inputs::edges(GraphKind::Rmat, 1500);
    let base = with_pool(1, || mm::run_par(n, &edges, ExecMode::Checked));
    for threads in [2, 4] {
        assert_eq!(
            with_pool(threads, || mm::run_par(n, &edges, ExecMode::Checked)),
            base
        );
    }
}

#[test]
fn msf_is_deterministic_across_pool_sizes() {
    let (n, edges) = inputs::weighted_edges(GraphKind::Road, 1000);
    let base = with_pool(1, || msf::run_par(n, &edges, ExecMode::Checked));
    for threads in [2, 4] {
        assert_eq!(
            with_pool(threads, || msf::run_par(n, &edges, ExecMode::Checked)),
            base
        );
    }
}

#[test]
fn sort_dedup_hist_are_deterministic() {
    let data = inputs::exponential(40_000);
    let sorted = {
        let mut v = data.clone();
        sort::run_par(&mut v, ExecMode::Checked);
        v
    };
    for threads in [1, 4] {
        let got = with_pool(threads, || {
            let mut v = data.clone();
            sort::run_par(&mut v, ExecMode::Checked);
            v
        });
        assert_eq!(got, sorted);
        let d = with_pool(threads, || dedup::run_par(&data, ExecMode::Sync));
        assert_eq!(d, dedup::run_seq(&data));
        let h = with_pool(threads, || {
            hist::run_par(&data, 128, 40_000, ExecMode::Sync).expect("valid buckets")
        });
        assert_eq!(h, hist::run_seq(&data, 128, 40_000).expect("valid buckets"));
    }
}

#[test]
fn bfs_sssp_results_schedule_independent() {
    // The MQ pop order is nondeterministic, but the fixed point (the
    // distance array) is unique — any schedule must converge to it.
    let g = inputs::graph(GraphKind::Road, 1200);
    let want = bfs::run_seq(&g, 0);
    for rep in 0..3 {
        assert_eq!(
            bfs::run_par(&g, 0, 4, ExecMode::Sync),
            want,
            "repetition {rep}"
        );
    }
    let wg = inputs::weighted_graph(GraphKind::Road, 1200);
    let want = sssp::run_seq(&wg, 0);
    for rep in 0..3 {
        assert_eq!(
            sssp::run_par(&wg, 0, 4, ExecMode::Sync),
            want,
            "repetition {rep}"
        );
    }
}
