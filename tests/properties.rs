//! Property-based tests (proptest) on the cross-crate invariants of the
//! public API.

use proptest::prelude::*;
use rayon::prelude::*;
use rpb::fearless::{ParIndChunksMutExt, ParIndIterMutExt, UniquenessCheck};
use rpb::ExecMode;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Scan is the sequential prefix sum for any input.
    #[test]
    fn scan_matches_reference(v in proptest::collection::vec(0u64..1000, 0..5000)) {
        let (pre, tot) = rpb::parlay::scan_exclusive(&v, 0, |a, b| a + b);
        let mut acc = 0u64;
        for (i, &x) in v.iter().enumerate() {
            prop_assert_eq!(pre[i], acc);
            acc += x;
        }
        prop_assert_eq!(tot, acc);
    }

    /// Pack keeps exactly the flagged elements in order.
    #[test]
    fn pack_is_order_preserving_filter(
        v in proptest::collection::vec(any::<u32>(), 0..3000),
        seed in any::<u64>(),
    ) {
        let flags: Vec<bool> =
            (0..v.len()).map(|i| rpb::parlay::random::hash64(seed ^ i as u64) % 2 == 0).collect();
        let got = rpb::parlay::pack(&v, &flags);
        let want: Vec<u32> =
            v.iter().zip(&flags).filter(|(_, &f)| f).map(|(&x, _)| x).collect();
        prop_assert_eq!(got, want);
    }

    /// Sample sort sorts any input (permutation + order).
    #[test]
    fn sample_sort_sorts(v in proptest::collection::vec(any::<u64>(), 0..4000)) {
        let mut got = v.clone();
        rpb::parlay::sample_sort(&mut got, |a, b| a.cmp(b));
        let mut want = v;
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Radix sort agrees with std sort for any key width used.
    #[test]
    fn radix_sort_sorts(v in proptest::collection::vec(any::<u64>(), 0..4000)) {
        let mut got = v.clone();
        rpb::parlay::radix_sort_u64(&mut got);
        let mut want = v;
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// The suffix array of arbitrary bytes is the sorted suffix order, in
    /// every mode.
    #[test]
    fn suffix_array_is_sorted_suffixes(v in proptest::collection::vec(any::<u8>(), 0..400)) {
        let want = rpb::text::suffix_array_naive(&v);
        for mode in [ExecMode::Unsafe, ExecMode::Checked, ExecMode::Sync] {
            prop_assert_eq!(rpb::text::suffix_array(&v, mode), want.clone());
        }
    }

    /// BWT round-trips for any sentinel-free text.
    #[test]
    fn bwt_round_trips(v in proptest::collection::vec(1u8..=255, 0..500)) {
        let bwt = rpb::text::bwt_encode(&v, ExecMode::Unsafe);
        prop_assert_eq!(rpb::text::bwt_decode(&bwt), Ok(v));
    }

    /// par_ind_iter_mut accepts every permutation and scatters correctly.
    #[test]
    fn ind_iter_scatters_any_permutation(seed in any::<u64>(), n in 1usize..2000) {
        let offsets = rpb::parlay::seqdata::random_permutation(n, seed);
        let mut out = vec![0usize; n];
        out.par_ind_iter_mut(&offsets)
            .enumerate()
            .for_each(|(i, slot)| *slot = i + 1);
        for i in 0..n {
            prop_assert_eq!(out[offsets[i]], i + 1);
        }
    }

    /// A single planted duplicate is always detected by both strategies.
    #[test]
    fn planted_duplicate_always_detected(
        seed in any::<u64>(),
        n in 2usize..2000,
        at in any::<prop::sample::Index>(),
    ) {
        let mut offsets = rpb::parlay::seqdata::random_permutation(n, seed);
        let i = at.index(n - 1) + 1; // 1..n
        offsets[i] = offsets[0];
        let mut out = vec![0u8; n];
        for strat in [UniquenessCheck::MarkTable, UniquenessCheck::Sort] {
            prop_assert!(out.try_par_ind_iter_mut(&offsets, strat).is_err());
        }
    }

    /// par_ind_chunks_mut covers exactly the described ranges.
    #[test]
    fn ind_chunks_cover_exact_ranges(
        mut cuts in proptest::collection::vec(0usize..1000, 2..40),
    ) {
        cuts.sort_unstable();
        let len = *cuts.last().unwrap();
        let mut out = vec![usize::MAX; len];
        out.par_ind_chunks_mut(&cuts)
            .enumerate()
            .for_each(|(i, chunk)| chunk.fill(i));
        // Every position below cuts[0] untouched; the rest labeled by
        // its chunk index.
        for (pos, &val) in out.iter().enumerate() {
            if pos < cuts[0] {
                prop_assert_eq!(val, usize::MAX);
            } else {
                let chunk = cuts.partition_point(|&c| c <= pos) - 1;
                prop_assert_eq!(val, chunk, "position {}", pos);
            }
        }
    }

    /// Concurrent union-find agrees with a sequential DSU on random edge
    /// lists.
    #[test]
    fn union_find_matches_dsu(
        edges in proptest::collection::vec((0u32..200, 0u32..200), 0..500),
    ) {
        let uf = rpb::concurrent::ConcurrentUnionFind::new(200);
        edges.par_iter().for_each(|&(u, v)| {
            uf.unite(u as usize, v as usize);
        });
        let mut parent: Vec<usize> = (0..200).collect();
        fn find(p: &mut [usize], mut x: usize) -> usize {
            while p[x] != x {
                p[x] = p[p[x]];
                x = p[x];
            }
            x
        }
        for &(u, v) in &edges {
            let (ru, rv) = (find(&mut parent, u as usize), find(&mut parent, v as usize));
            if ru != rv {
                parent[ru] = rv;
            }
        }
        for u in (0..200).step_by(7) {
            for v in (0..200).step_by(11) {
                let want = find(&mut parent, u) == find(&mut parent, v);
                prop_assert_eq!(uf.same_set(u, v), want, "({}, {})", u, v);
            }
        }
    }

    /// MultiQueue never loses or duplicates elements.
    #[test]
    fn multiqueue_conserves_elements(
        items in proptest::collection::vec(any::<u64>(), 0..500),
        queues in 1usize..8,
    ) {
        let mq: rpb::multiqueue::MultiQueue<usize> = rpb::multiqueue::MultiQueue::new(queues);
        for (i, &p) in items.iter().enumerate() {
            mq.push(p, i);
        }
        let mut seen = vec![false; items.len()];
        while let Some((_, i)) = mq.pop() {
            prop_assert!(!seen[i], "duplicate pop");
            seen[i] = true;
        }
        prop_assert!(seen.iter().all(|&b| b), "lost element");
    }
}
