//! Failure injection: the paper's "comfortable" tier promises that
//! broken algorithm invariants surface as run-time errors at the call
//! site. These tests plant the bugs and demand the panic/error.

use rayon::prelude::*;
use rpb::fearless::{
    IndChunksError, IndOffsetsError, ParIndChunksMutExt, ParIndIterMutExt, UniquenessCheck,
};
// `downcast_ref::<String>()` alone misses `&'static str` payloads (plain
// `panic!("literal")`); the shared helper handles both.
use rpb::parlay::panics::panic_message;

#[test]
fn duplicate_offset_panics_at_call_site() {
    let mut out = vec![0u32; 100];
    let mut offsets: Vec<usize> = (0..100).collect();
    offsets[99] = 0; // the planted bug: a collision
    let result = std::panic::catch_unwind(move || {
        out.par_ind_iter_mut(&offsets).for_each(|o| *o = 1);
    });
    let err = result.expect_err("must panic");
    let msg = panic_message(&*err);
    assert!(msg.contains("duplicates"), "unhelpful panic: {msg}");
}

#[test]
fn both_check_strategies_catch_the_same_bugs() {
    let n = 10_000;
    let mut out = vec![0u8; n];
    // Bug class 1: duplicate.
    let mut offsets: Vec<usize> = (0..n).collect();
    offsets[n - 1] = 42;
    for strat in [UniquenessCheck::MarkTable, UniquenessCheck::Sort] {
        let err = out.try_par_ind_iter_mut(&offsets, strat).err();
        assert!(
            matches!(err, Some(IndOffsetsError::Duplicate { offset: 42, .. })),
            "{strat:?}: {err:?}"
        );
    }
    // Bug class 2: out of bounds.
    let mut offsets: Vec<usize> = (0..n).collect();
    offsets[7] = n;
    for strat in [UniquenessCheck::MarkTable, UniquenessCheck::Sort] {
        let err = out.try_par_ind_iter_mut(&offsets, strat).err();
        assert!(
            matches!(err, Some(IndOffsetsError::OutOfBounds { offset, .. }) if offset == n),
            "{strat:?}: {err:?}"
        );
    }
}

#[test]
fn decreasing_chunk_boundary_is_rejected() {
    let mut out = vec![0u8; 100];
    let offsets = vec![0usize, 40, 30, 100]; // the planted bug
    let err = out.try_par_ind_chunks_mut(&offsets).err();
    assert_eq!(err, Some(IndChunksError::NotMonotone { index: 2 }));
}

#[test]
fn chunk_boundary_past_end_is_rejected() {
    let mut out = vec![0u8; 100];
    let offsets = vec![0usize, 101];
    let err = out.try_par_ind_chunks_mut(&offsets).err();
    assert!(
        matches!(err, Some(IndChunksError::OutOfBounds { offset: 101, .. })),
        "{err:?}"
    );
}

#[test]
fn valid_offsets_pass_both_strategies() {
    let n = 10_000;
    let mut out = vec![0u64; n];
    let offsets = rpb::parlay::seqdata::random_permutation(n, 5);
    for strat in [UniquenessCheck::MarkTable, UniquenessCheck::Sort] {
        let it = out
            .try_par_ind_iter_mut(&offsets, strat)
            .expect("valid offsets");
        it.enumerate().for_each(|(i, slot)| *slot = i as u64);
    }
    for i in 0..n {
        assert_eq!(out[offsets[i]], i as u64);
    }
}

#[test]
fn corrupted_suffix_array_fails_verification() {
    let text = rpb::suite::inputs::wiki(2000);
    let mut sa = rpb::suite::sa::run_seq(&text);
    sa.swap(10, 20);
    assert!(rpb::suite::sa::verify(&text, &sa).is_err());
}

#[test]
fn invalid_forest_fails_verification() {
    // A cycle passed off as a forest must be rejected.
    let edges = vec![(0u32, 1u32), (1, 2), (2, 0)];
    let bogus = vec![0usize, 1, 2];
    assert!(rpb::suite::sf::verify(3, &edges, &bogus).is_err());
}

#[test]
fn non_maximal_matching_fails_verification() {
    let edges = vec![(0u32, 1u32), (2, 3)];
    let bogus = vec![true, false]; // (2,3) could still be added
    assert!(rpb::suite::mm::verify(4, &edges, &bogus).is_err());
}

#[test]
fn hash_set_overflow_panics_with_message() {
    let set = rpb::concurrent::ConcurrentHashSet::with_capacity(2);
    let slots = set.slots();
    let result = std::panic::catch_unwind(move || {
        for k in 0..(slots as u64 + 1) {
            set.insert(k);
        }
    });
    let err = result.expect_err("overflow must panic, not corrupt");
    // The payload type is an implementation detail (`&'static str` today);
    // the helper keeps this assertion payload-type agnostic.
    assert!(
        panic_message(&*err).contains("full"),
        "unhelpful overflow panic: {}",
        panic_message(&*err)
    );
}

#[test]
fn chunk_boundary_panic_message_is_helpful() {
    let mut out = vec![0u8; 10];
    let offsets = vec![0usize, 7, 3]; // the planted bug: decreasing
    let result = std::panic::catch_unwind(move || {
        out.par_ind_chunks_mut(&offsets).for_each(|c| c.fill(1));
    });
    let err = result.expect_err("must panic");
    let msg = panic_message(&*err);
    assert!(msg.contains("monotone"), "unhelpful panic: {msg}");
}

#[test]
fn panicking_executor_task_does_not_deadlock() {
    // A task panicking mid-run must surface as a typed error with the
    // original message — not leave the remaining workers spinning on the
    // in-flight counter forever.
    let init: Vec<(u64, usize)> = (0..200).map(|i| (i as u64, i)).collect();
    let err = rpb::multiqueue::try_execute(4, 8, init, |_, item, h| {
        if item == 13 {
            panic!("worker task blew up");
        }
        if item < 50 {
            h.push(item as u64 + 200, item + 200);
        }
    })
    .expect_err("the planted panic must surface");
    assert_eq!(err.message(), "worker task blew up");
}

#[test]
fn executor_panic_propagates_through_execute() {
    let caught = std::panic::catch_unwind(|| {
        rpb::multiqueue::execute(2, 4, vec![(0u64, ())], |_, (), _| {
            panic!("scheduled task failed");
        });
    })
    .expect_err("execute re-raises the task panic");
    assert_eq!(panic_message(&*caught), "scheduled task failed");
}
