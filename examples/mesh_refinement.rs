//! Computational-geometry scenario: the `dr` benchmark end to end —
//! Kuzmin points → Delaunay triangulation → parallel
//! reservation-coordinated refinement — with a quality histogram before
//! and after.
//!
//! Run with: `cargo run --release --example mesh_refinement [n_points]`

use std::time::Instant;

use rpb::geom::predicates::radius_edge_ratio;
use rpb::geom::{delaunay, refine, RefineParams, Triangulation};
use rpb::suite::inputs;

fn quality_histogram(mesh: &Triangulation) -> [usize; 5] {
    // Buckets by radius/edge ratio: [<0.8, <1.0, <sqrt2, <2.5, >=2.5].
    let mut hist = [0usize; 5];
    for t in mesh.alive_tris() {
        if mesh.touches_ghost(t) {
            continue;
        }
        let [a, b, c] = mesh.corners(t);
        let q = radius_edge_ratio(&a, &b, &c).unwrap_or(f64::INFINITY);
        let bucket = if q < 0.8 {
            0
        } else if q < 1.0 {
            1
        } else if q < std::f64::consts::SQRT_2 {
            2
        } else if q < 2.5 {
            3
        } else {
            4
        };
        hist[bucket] += 1;
    }
    hist
}

fn print_hist(label: &str, hist: [usize; 5]) {
    let total: usize = hist.iter().sum();
    println!("{label} quality (radius/edge ratio) over {total} triangles:");
    let names = [
        "< 0.8 (excellent)",
        "< 1.0",
        "< 1.414 (target)",
        "< 2.5",
        ">= 2.5 (sliver)",
    ];
    for (name, count) in names.iter().zip(hist) {
        let pct = 100.0 * count as f64 / total.max(1) as f64;
        println!(
            "  {name:<18} {count:>7}  {pct:5.1}%  {}",
            "#".repeat((pct / 2.0) as usize)
        );
    }
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);
    println!("generating {n} Kuzmin-distributed points...");
    let points = inputs::kuzmin(n);

    let t0 = Instant::now();
    let mut mesh = delaunay(&points);
    println!(
        "delaunay  : {:?} — {} triangles",
        t0.elapsed(),
        mesh.num_alive()
    );
    mesh.check_valid();
    print_hist("before", quality_histogram(&mesh));

    let params = RefineParams::for_points(&points, 40);
    println!(
        "\nrefining to ratio <= {:.3} with size floor {:.4}...",
        params.max_ratio, params.min_edge
    );
    let t0 = Instant::now();
    let stats = refine(&mut mesh, params);
    println!(
        "refine    : {:?} — {} rounds, {} Steiner points, {} retries, {} unrefinable",
        t0.elapsed(),
        stats.rounds,
        stats.inserted,
        stats.retries,
        stats.unrefinable
    );
    mesh.check_valid();
    print_hist("after", quality_histogram(&mesh));
}
