//! Text-analytics scenario: the paper's `sa` → `lrs` → `bw` pipeline on a
//! synthetic Wikipedia-like corpus, timed per safety mode.
//!
//! This is the Fig. 5(a) story in miniature: the suffix-array rank
//! scatter is a `SngInd` write, and the run-time uniqueness check of the
//! checked mode costs real work, while the `RngInd`-style phases are
//! effectively free to check.
//!
//! Run with: `cargo run --release --example text_pipeline [bytes]`

use std::time::Instant;

use rpb::suite::{bw, lrs, sa};
use rpb::ExecMode;

fn main() {
    let len: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(400_000);
    println!("generating {len} bytes of wiki-like text...");
    let text = rpb::suite::inputs::wiki(len);

    // Suffix array under each mode.
    let mut sa_result = Vec::new();
    for mode in [ExecMode::Unsafe, ExecMode::Checked, ExecMode::Sync] {
        let t0 = Instant::now();
        sa_result = sa::run_par(&text, mode);
        println!("sa   [{mode:>7}]: {:?}", t0.elapsed());
    }
    sa::verify(&text, &sa_result).expect("suffix array valid");

    // Longest repeated substring.
    let t0 = Instant::now();
    let repeat = lrs::run_par(&text, ExecMode::Unsafe);
    println!(
        "lrs  [ unsafe]: {:?} — longest repeat is {} bytes (at {} and {})",
        t0.elapsed(),
        repeat.len,
        repeat.pos_a,
        repeat.pos_b
    );
    lrs::verify(&text, &repeat).expect("repeat verified");
    let snippet_len = repeat.len.min(48);
    println!(
        "               \"{}\"{}",
        String::from_utf8_lossy(&text[repeat.pos_a..repeat.pos_a + snippet_len]),
        if repeat.len > snippet_len { "..." } else { "" }
    );

    // Burrows–Wheeler round trip.
    let t0 = Instant::now();
    let bwt = rpb::text::bwt_encode(&text, ExecMode::Unsafe);
    println!("bwt  [encode ]: {:?}", t0.elapsed());
    for mode in [ExecMode::Unsafe, ExecMode::Checked, ExecMode::Sync] {
        let t0 = Instant::now();
        let decoded = bw::run_par(&bwt, mode).expect("encoder output is a valid BWT");
        println!("bw   [{mode:>7}]: {:?}", t0.elapsed());
        assert_eq!(decoded, text, "round trip failed");
    }
    println!("round trip verified: decode(encode(text)) == text");
}
