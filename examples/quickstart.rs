//! Quickstart: the paper's indirect parallel iterators in action.
//!
//! Demonstrates the fearlessness spectrum on the `SngInd` and `RngInd`
//! patterns:
//! * checked iterators that catch an implementation bug at run time,
//!   near its cause (comfortable),
//! * the unsafe escape hatch (scary, C++-equivalent),
//! * the regular patterns Rayon already makes fearless.
//!
//! Run with: `cargo run --release --example quickstart`

use rayon::prelude::*;
use rpb::fearless::{ParIndChunksMutExt, ParIndIterMutExt, UniquenessCheck};
use rpb::parlay;

fn main() {
    // ---- Regular parallelism: fearless in safe Rust + Rayon. ----------
    let mut squares: Vec<u64> = (0..1_000_000).collect();
    // Stride pattern (paper Listing 4e): par_iter_mut.
    squares.par_iter_mut().for_each(|x| *x *= *x);
    println!(
        "Stride   : squared 1M elements, squares[1000] = {}",
        squares[1000]
    );

    // RO pattern (paper Listing 3c): parallel reduction.
    let sum = parlay::reduce(&squares[..1000], 0u64, |a, b| a + b);
    println!("RO       : sum of first 1000 squares = {sum}");

    // ---- SngInd: out[offsets[i]] = f(i). ------------------------------
    // The algorithm (a permutation) guarantees unique offsets, but rustc
    // cannot know that. par_ind_iter_mut validates at run time.
    let n = 1_000_000;
    let offsets = parlay::seqdata::random_permutation(n, 42);
    let input: Vec<u64> = (0..n as u64).collect();
    let mut out = vec![0u64; n];
    out.par_ind_iter_mut(&offsets)
        .zip(input.par_iter())
        .for_each(|(slot, &v)| *slot = v);
    println!("SngInd   : scattered {n} elements through a checked permutation");

    // An *incorrect* offsets array is caught at the call site — the
    // "comfortable" tier of the paper's fear spectrum.
    let mut bad_offsets = offsets.clone();
    bad_offsets[0] = bad_offsets[1]; // plant the bug
    match out.try_par_ind_iter_mut(&bad_offsets, UniquenessCheck::MarkTable) {
        Ok(_) => unreachable!(),
        Err(e) => println!("SngInd   : planted bug caught at run time: {e}"),
    }

    // ---- RngInd: out[offsets[i]..offsets[i+1]] = f(i). ----------------
    // Chunk boundaries from run-time data; the monotonicity check is
    // O(#chunks) — comfort at effectively zero cost.
    let bounds: Vec<usize> = (0..=100).map(|i| i * n / 100).collect();
    out.par_ind_chunks_mut(&bounds)
        .enumerate()
        .for_each(|(i, chunk)| chunk.fill(i as u64));
    println!("RngInd   : filled 100 variable chunks via par_ind_chunks_mut");

    // ---- The unsafe tier, for comparison (paper Listing 6d). ----------
    let view = rpb::fearless::SharedMutSlice::new(&mut out);
    offsets.par_iter().enumerate().for_each(|(i, &o)| {
        // SAFETY: offsets is a permutation — unique indices.
        unsafe { view.write(o, input[i]) };
    });
    println!("Unsafe   : same scatter, no checks — the scary tier");

    // ---- Fearlessness summary (paper Table 3). -------------------------
    println!("\nTable 3 — pattern → expression → fearlessness:");
    for p in rpb::fearless::taxonomy::ALL_PATTERNS {
        println!(
            "  {:<6} {:<28} {}",
            p.abbrev(),
            p.expression(),
            p.fearlessness()
        );
    }
}
