//! Graph-analytics scenario: the six graph benchmarks of RPB on the
//! paper's three input families (Table 2 stand-ins), with validation
//! against sequential references.
//!
//! Run with: `cargo run --release --example graph_analytics [n_vertices]`

use std::time::Instant;

use rpb::graph::GraphKind;
use rpb::suite::{bfs, inputs, mis, mm, msf, sf, sssp};
use rpb::ExecMode;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    for kind in [GraphKind::Link, GraphKind::Rmat, GraphKind::Road] {
        let g = inputs::graph(kind, n);
        println!(
            "\n=== {} graph: |V| = {}, |E| = {}, avg deg = {:.1} ===",
            kind.shorthand(),
            g.num_vertices(),
            g.num_arcs() / 2,
            g.avg_degree()
        );

        // mis
        let t0 = Instant::now();
        let set = mis::run_par(&g, ExecMode::Checked);
        let t = t0.elapsed();
        mis::verify(&g, &set).expect("MIS valid");
        println!(
            "mis : {:>10.2?}  |MIS| = {}",
            t,
            set.iter().filter(|&&b| b).count()
        );

        // mm
        let (nv, edges) = inputs::edges(kind, n);
        let t0 = Instant::now();
        let matching = mm::run_par(nv, &edges, ExecMode::Checked);
        let t = t0.elapsed();
        mm::verify(nv, &edges, &matching).expect("matching valid");
        println!(
            "mm  : {:>10.2?}  |M| = {}",
            t,
            matching.iter().filter(|&&b| b).count()
        );

        // sf
        let t0 = Instant::now();
        let forest = sf::run_par(nv, &edges, ExecMode::Checked);
        let t = t0.elapsed();
        sf::verify(nv, &edges, &forest).expect("forest valid");
        println!("sf  : {:>10.2?}  |F| = {} edges", t, forest.len());

        // msf
        let (nw, wedges) = inputs::weighted_edges(kind, n);
        let t0 = Instant::now();
        let (chosen, total) = msf::run_par(nw, &wedges, ExecMode::Checked);
        let t = t0.elapsed();
        let (_, kruskal_total) = msf::run_seq(nw, &wedges);
        assert_eq!(total, kruskal_total, "MSF weight mismatch vs Kruskal");
        println!(
            "msf : {:>10.2?}  weight = {} over {} edges",
            t,
            total,
            chosen.len()
        );

        // bfs (MultiQueue)
        let t0 = Instant::now();
        let dist = bfs::run_par(&g, 0, threads, ExecMode::Sync);
        let t = t0.elapsed();
        assert_eq!(dist, bfs::run_seq(&g, 0), "BFS distances mismatch");
        let reached = dist.iter().filter(|&&d| d != bfs::INF).count();
        println!("bfs : {:>10.2?}  reached {} vertices from 0", t, reached);

        // sssp (MultiQueue)
        let wg = inputs::weighted_graph(kind, n);
        let t0 = Instant::now();
        let dist = sssp::run_par(&wg, 0, threads, ExecMode::Sync);
        let t = t0.elapsed();
        assert_eq!(dist, sssp::run_seq(&wg, 0), "SSSP distances mismatch");
        let far = dist
            .iter()
            .filter(|&&d| d != sssp::INF)
            .max()
            .copied()
            .unwrap_or(0);
        println!("sssp: {:>10.2?}  eccentricity bound = {}", t, far);
    }
    println!("\nall parallel results validated against sequential references");
}
