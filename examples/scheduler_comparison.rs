//! Scheduler ablation: the MultiQueue against a level-synchronous
//! frontier (BFS) and delta-stepping buckets (SSSP), plus the MQ's
//! rank-error quality sweep — Sec. 6 of the paper in executable form.
//!
//! Run with: `cargo run --release --example scheduler_comparison [n]`

use std::time::Instant;

use rpb::graph::GraphKind;
use rpb::multiqueue::rank_error_sweep;
use rpb::suite::{bfs, bfs_frontier, inputs, sssp, sssp_delta};
use rpb::ExecMode;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30_000);
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    println!("=== MultiQueue rank-error quality (20k random priorities) ===");
    let items: Vec<u64> = (0..20_000u64).map(rpb::parlay::random::hash64).collect();
    for (q, stats) in rank_error_sweep(&items, &[1, 2, 4, 8, 16]) {
        println!(
            "  {q:>2} queues: mean rank error {:>6.2}, max {:>4}, exact pops {:>5.1}%",
            stats.mean,
            stats.max,
            stats.exact_share * 100.0
        );
    }

    for kind in [GraphKind::Road, GraphKind::Link] {
        let g = inputs::graph(kind, n);
        let wg = inputs::weighted_graph(kind, n);
        println!(
            "\n=== {} (|V| = {}, |E| = {}) ===",
            kind.shorthand(),
            g.num_vertices(),
            g.num_arcs() / 2
        );
        let profile = bfs_frontier::frontier_profile(&g, 0);
        println!(
            "BFS levels: {} (max frontier {}) — {}",
            profile.len(),
            profile.iter().max().copied().unwrap_or(0),
            if profile.len() > 100 {
                "high diameter: frontier starves"
            } else {
                "low diameter: frontier saturates"
            }
        );

        let t0 = Instant::now();
        let d_mq = bfs::run_par(&g, 0, threads, ExecMode::Sync);
        let t_mq = t0.elapsed();
        let t0 = Instant::now();
        let d_fr = bfs_frontier::run_par(&g, 0);
        let t_fr = t0.elapsed();
        assert_eq!(d_mq, d_fr, "schedulers disagree on BFS distances");
        println!("bfs : multiqueue {t_mq:>10.2?}   frontier {t_fr:>10.2?}");

        let delta = sssp_delta::default_delta(&wg);
        let t0 = Instant::now();
        let s_mq = sssp::run_par(&wg, 0, threads, ExecMode::Sync);
        let t_mq = t0.elapsed();
        let t0 = Instant::now();
        let s_ds = sssp_delta::run_par(&wg, 0, delta).expect("default_delta is non-zero");
        let t_ds = t0.elapsed();
        assert_eq!(s_mq, s_ds, "schedulers disagree on SSSP distances");
        println!("sssp: multiqueue {t_mq:>10.2?}   delta({delta}) {t_ds:>10.2?}");
    }
    println!("\nall schedulers agree on all distances");
}
