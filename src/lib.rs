//! # RPB-rs — the Rust Parallel Benchmarks
//!
//! A from-scratch reproduction of *"When Is Parallelism Fearless and
//! Zero-Cost with Rust?"* (Abdi, Posluns, Zhang, Wang, Jeffrey —
//! SPAA 2024): the paper's proposed indirect parallel iterators, the 14
//! RPB benchmarks with unsafe/checked/synchronized mode switches, and
//! every substrate they need.
//!
//! ## Crate map
//!
//! | Facade module | Crate | Contents |
//! |---|---|---|
//! | [`fearless`] | `rpb-fearless` | `par_ind_iter_mut`, `par_ind_chunks_mut`, pattern taxonomy, fear spectrum |
//! | [`parlay`] | `rpb-parlay` | scan/reduce/pack/sorts/list-ranking primitives |
//! | [`concurrent`] | `rpb-concurrent` | CAS hash table, priority updates, union-find, deterministic reservations |
//! | [`multiqueue`] | `rpb-multiqueue` | MultiQueue relaxed priority scheduler + executor |
//! | [`graph`] | `rpb-graph` | CSR graphs and the Table 2 input generators |
//! | [`text`] | `rpb-text` | suffix arrays, LCP, BWT, corpus generator |
//! | [`geom`] | `rpb-geom` | Delaunay triangulation and refinement |
//! | [`suite`] | `rpb-suite` | the 14 benchmarks (`bw` … `sssp`) |
//! | [`obs`] | `rpb-obs` | feature-gated lock-free telemetry (zero-cost when off) |
//!
//! ## Quickstart
//!
//! ```
//! use rayon::prelude::*;
//! use rpb::fearless::ParIndIterMutExt;
//!
//! // SngInd — out[offsets[i]] = f(i) — with a run-time uniqueness check:
//! let offsets = vec![2usize, 0, 3, 1];
//! let input = vec![10u32, 20, 30, 40];
//! let mut out = vec![0u32; 4];
//! out.par_ind_iter_mut(&offsets)
//!     .zip(input.par_iter())
//!     .for_each(|(slot, &v)| *slot = v);
//! assert_eq!(out, vec![20, 40, 10, 30]);
//! ```

pub use rpb_concurrent as concurrent;
pub use rpb_fearless as fearless;
pub use rpb_geom as geom;
pub use rpb_graph as graph;
pub use rpb_multiqueue as multiqueue;
pub use rpb_obs as obs;
pub use rpb_parlay as parlay;
pub use rpb_suite as suite;
pub use rpb_text as text;

pub use rpb_fearless::{ExecMode, Fearlessness, Pattern};
