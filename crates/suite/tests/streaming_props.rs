//! Differential property tests for the streaming skeletons: chunked
//! pipeline variants must agree with the batch oracles on *random* data
//! and random pipeline shapes (chunk size, channel capacity, farm width,
//! channel backend) — not just the curated suite inputs. Both results
//! are canonical (histogram buckets, sorted distinct values), so exact
//! equality is the property.

#![cfg(not(miri))]

use proptest::prelude::*;
use rpb_parlay::exec::BackendKind;
use rpb_pipeline::ChannelKind;
use rpb_suite::streaming::{dedup_stream, hist_stream};
use rpb_suite::{dedup, hist};

/// A random pipeline shape: channel backend, chunk size, capacity, farm
/// width — the axes that perturb scheduling without changing the answer.
fn arb_shape() -> impl Strategy<Value = rpb_suite::StreamConfig> {
    (
        prop_oneof![Just(ChannelKind::Mpsc), Just(ChannelKind::Crossbeam)],
        1usize..=200,
        1usize..=8,
        1usize..=4,
    )
        .prop_map(
            |(channel, chunk, capacity, workers)| rpb_suite::StreamConfig {
                channel,
                backend: BackendKind::Rayon,
                chunk,
                capacity,
                workers,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Chunked streaming histogram equals the sequential batch histogram
    /// for any data and any pipeline shape, and honors the in-flight
    /// memory bound.
    #[test]
    fn hist_stream_matches_batch(
        data in proptest::collection::vec(any::<u64>(), 0..2_000),
        nbuckets in 1usize..=64,
        shape in arb_shape(),
    ) {
        let range = data.len().max(1) as u64;
        let data: Vec<u64> = data.into_iter().map(|x| x % range).collect();
        let want = hist::run_seq(&data, nbuckets, range).expect("batch oracle");
        let (got, stats) = hist_stream(&data, nbuckets, range, shape).expect("stream");
        prop_assert_eq!(&got, &want, "streaming hist diverged from batch");
        hist::verify(&data, nbuckets, &got).expect("certificate");
        prop_assert!(stats.inflight_bounded(), "inflight {:?}", stats);
        prop_assert_eq!(stats.items_in, data.len().div_ceil(shape.chunk.max(1)) as u64);
    }

    /// Chunked streaming dedup equals the sequential batch dedup (both
    /// canonicalize to sorted distinct values).
    #[test]
    fn dedup_stream_matches_batch(
        data in proptest::collection::vec(0u64..500, 0..2_000),
        shape in arb_shape(),
    ) {
        let want = dedup::run_seq(&data);
        let (got, stats) = dedup_stream(&data, shape).expect("stream");
        prop_assert_eq!(&got, &want, "streaming dedup diverged from batch");
        dedup::verify(&data, &got).expect("certificate");
        prop_assert!(stats.inflight_bounded(), "inflight {:?}", stats);
    }
}
