//! Differential property tests: the ablation implementations must agree
//! with their siblings on *random* graphs, not just the Table 2 families.
//!
//! BFS distances and SSSP distances are unique fixed points, so every
//! scheduler (MultiQueue, level-synchronous frontier, delta-stepping)
//! must produce the same array as the sequential oracle — no
//! canonicalization needed here.

#![cfg(not(miri))]

use proptest::prelude::*;
use rpb_fearless::ExecMode;
use rpb_graph::{Graph, WeightedGraph};
use rpb_parlay::exec::BackendKind;
use rpb_suite::{bfs, bfs_frontier, sssp, sssp_delta};

/// A random undirected graph: `n` vertices, each proposed edge stored as
/// arcs in both directions (self-loops allowed; they are distance no-ops).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..4 * n).prop_map(move |edges| {
            let mut arcs = Vec::with_capacity(2 * edges.len());
            for (u, v) in edges {
                arcs.push((u, v));
                arcs.push((v, u));
            }
            Graph::from_edges(n, &arcs)
        })
    })
}

/// The weighted analogue, weights in `1..=64` (small enough that
/// duplicate weights — the tie-pressure case — are common).
fn arb_weighted_graph() -> impl Strategy<Value = WeightedGraph> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 1u32..=64);
        proptest::collection::vec(edge, 0..4 * n).prop_map(move |edges| {
            let mut arcs = Vec::with_capacity(2 * edges.len());
            for (u, v, w) in edges {
                arcs.push((u, v, w));
                arcs.push((v, u, w));
            }
            WeightedGraph::from_edges(n, &arcs)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn bfs_schedulers_agree_with_oracle(g in arb_graph()) {
        let want = bfs::run_seq(&g, 0);
        let mq = bfs::run_par(&g, 0, 2, ExecMode::Sync);
        prop_assert_eq!(&mq, &want, "MultiQueue BFS diverged");
        let frontier = bfs_frontier::run_par(&g, 0);
        prop_assert_eq!(&frontier, &want, "frontier BFS diverged");
        bfs::verify(&g, 0, &want).expect("oracle passes its own certificate");
    }

    #[test]
    fn bfs_backends_agree_with_oracle(g in arb_graph()) {
        // The scheduling backend (scoped OS threads vs Rayon scope tasks)
        // must be behaviorally invisible: the MultiQueue policy is the
        // same object either way, only the substrate differs.
        let want = bfs::run_seq(&g, 0);
        for backend in [BackendKind::Rayon, BackendKind::Mq] {
            let got = bfs::run_par_on(backend, &g, 0, 2, ExecMode::Sync);
            prop_assert_eq!(&got, &want, "BFS diverged on {}", backend.label());
        }
    }

    #[test]
    fn sssp_backends_agree_with_dijkstra(g in arb_weighted_graph()) {
        let want = sssp::run_seq(&g, 0);
        for backend in [BackendKind::Rayon, BackendKind::Mq] {
            let got = sssp::run_par_on(backend, &g, 0, 2, ExecMode::Sync);
            prop_assert_eq!(&got, &want, "SSSP diverged on {}", backend.label());
        }
    }

    #[test]
    fn sssp_schedulers_agree_with_dijkstra(g in arb_weighted_graph()) {
        let want = sssp::run_seq(&g, 0);
        let mq = sssp::run_par(&g, 0, 2, ExecMode::Sync);
        prop_assert_eq!(&mq, &want, "MultiQueue SSSP diverged");
        let delta = sssp_delta::default_delta(&g);
        let ds = sssp_delta::run_par(&g, 0, delta).expect("default_delta is non-zero");
        prop_assert_eq!(&ds, &want, "delta-stepping diverged");
        sssp::verify(&g, 0, &want).expect("oracle passes its own certificate");
    }
}
