//! Streaming variants of `hist`, `dedup`, and `bfs` over the
//! [`rpb_pipeline`] skeletons — the suite's chunked counterparts to the
//! batch benchmarks, with bounded in-flight memory.
//!
//! Each variant cuts its input into owned chunks, runs the benchmark's
//! *sequential* kernel per chunk on a farm of pipeline workers, and
//! merges at the sink:
//!
//! * [`hist_stream`] — per-chunk bucket counts, vector-added at the sink
//!   (histogram merging is associative and commutative, so farm arrival
//!   order is invisible),
//! * [`dedup_stream`] — per-chunk distinct sets, concatenated and
//!   canonicalized (global sort + dedup) at the end,
//! * [`bfs_stream`] — level-synchronous BFS with pipelined frontier
//!   generation: one pipeline per level expands frontier chunks, claiming
//!   vertices with the same CAS discipline as
//!   [`bfs_frontier`](crate::bfs_frontier), so the claimed *set* per
//!   level is deterministic even though chunk arrival order is not.
//!
//! All three must agree exactly with their batch siblings — that is the
//! `rpb verify --streaming` contract ([`verify_streaming`]), checked
//! across both channel backends and both executor backends. Each run
//! also returns its [`PipelineStats`], whose
//! [`inflight_bounded`](PipelineStats::inflight_bounded) claim (high-water
//! mark ≤ channel capacity × channels) the verifier asserts per cell:
//! streaming is only worth its name if memory stays bounded.

use std::sync::atomic::{AtomicU64, Ordering};

use rpb_graph::Graph;
use rpb_parlay::exec::{self, BackendKind};
use rpb_pipeline::{ChannelKind, Pipeline, PipelineConfig, PipelineError, PipelineStats};

use crate::error::SuiteError;
use crate::verify::SuiteInputs;
use crate::{bfs, bfs_frontier, dedup, hist};

/// The benchmarks with streaming variants, in suite-table order.
pub const STREAMING_BENCHES: [&str; 3] = ["hist", "dedup", "bfs"];

/// Default elements per streamed chunk: large enough that per-item
/// channel overhead amortizes, small enough that `capacity × channels`
/// chunks stay a sliver of the batch working set.
pub const DEFAULT_CHUNK: usize = 1 << 12;

/// How a streaming run is chunked and scheduled.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Channel backend connecting the pipeline stages.
    pub channel: ChannelKind,
    /// Executor backend hosting the stage farms.
    pub backend: BackendKind,
    /// Elements per streamed chunk (must be positive).
    pub chunk: usize,
    /// Per-channel queue capacity in chunks (must be positive).
    pub capacity: usize,
    /// Workers in the transform-stage farm (must be positive).
    pub workers: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            channel: rpb_pipeline::default_channel(),
            backend: exec::default_backend(),
            chunk: DEFAULT_CHUNK,
            capacity: rpb_pipeline::DEFAULT_CAPACITY,
            workers: 2,
        }
    }
}

impl StreamConfig {
    fn pipeline(&self) -> PipelineConfig {
        PipelineConfig {
            channel: self.channel,
            capacity: self.capacity,
            backend: self.backend,
        }
    }

    fn validate(&self, bench: &'static str) -> Result<(), SuiteError> {
        if self.chunk == 0 {
            return Err(SuiteError::degenerate(bench, "chunk size must be positive"));
        }
        if self.workers == 0 {
            return Err(SuiteError::degenerate(
                bench,
                "stage worker count must be positive",
            ));
        }
        Ok(())
    }
}

/// Maps a pipeline failure into the suite's error vocabulary: a config
/// rejection is a degenerate parameter, a stage panic a broken invariant.
fn stream_error(bench: &'static str, err: PipelineError) -> SuiteError {
    match err {
        PipelineError::Config(msg) => SuiteError::degenerate(bench, msg),
        panicked => SuiteError::invariant(bench, panicked.to_string()),
    }
}

/// Streaming histogram of `data` into `nbuckets` equal-width buckets
/// over `[0, range)`: chunked [`hist::run_seq`] counts, vector-added at
/// the sink. Agrees exactly with the batch histogram.
pub fn hist_stream(
    data: &[u64],
    nbuckets: usize,
    range: u64,
    cfg: StreamConfig,
) -> Result<(Vec<u64>, PipelineStats), SuiteError> {
    cfg.validate("hist")?;
    // Validate the bucket parameters once up front (zero buckets is the
    // degenerate case) so the per-chunk counters inside the farm cannot
    // fail.
    hist::run_seq(&[], nbuckets, range)?;
    Pipeline::source(cfg.pipeline(), data.chunks(cfg.chunk).map(<[u64]>::to_vec))
        .and_then(|p| {
            p.stage("hist-count", cfg.workers, move |chunk: Vec<u64>| {
                hist::run_seq(&chunk, nbuckets, range).expect("bucket parameters pre-validated")
            })
        })
        .and_then(|p| {
            p.run_fold(vec![0u64; nbuckets], |mut acc, local| {
                for (slot, x) in acc.iter_mut().zip(local) {
                    *slot += x;
                }
                acc
            })
        })
        .map_err(|e| stream_error("hist", e))
}

/// Streaming dedup: per-chunk distinct sets ([`dedup::run_seq`])
/// concatenated at the sink, then canonicalized globally (chunk-local
/// sets overlap whenever a value spans chunks). Returns the distinct
/// values sorted ascending, exactly like the batch variants.
pub fn dedup_stream(
    data: &[u64],
    cfg: StreamConfig,
) -> Result<(Vec<u64>, PipelineStats), SuiteError> {
    cfg.validate("dedup")?;
    let (mut merged, stats) =
        Pipeline::source(cfg.pipeline(), data.chunks(cfg.chunk).map(<[u64]>::to_vec))
            .and_then(|p| {
                p.stage("dedup-chunk", cfg.workers, |chunk: Vec<u64>| {
                    dedup::run_seq(&chunk)
                })
            })
            .and_then(|p| {
                p.run_fold(Vec::new(), |mut acc: Vec<u64>, distinct| {
                    acc.extend(distinct);
                    acc
                })
            })
            .map_err(|e| stream_error("dedup", e))?;
    merged.sort_unstable();
    merged.dedup();
    Ok((merged, stats))
}

/// Streaming BFS hop distances from `src`: level-synchronous like
/// [`bfs_frontier`], but each level's frontier is expanded by a pipeline
/// — chunks of the frontier flow through a farm that CAS-claims
/// neighbours, and the sink collects the next frontier. The next
/// frontier is sorted between levels so the chunk partition (and with it
/// every pipeline counter) is a deterministic function of the graph.
///
/// Returns the distance array (identical to [`bfs::run_seq`]) and the
/// pipeline accounting aggregated across levels (items summed,
/// high-water mark maxed — the per-level in-flight bound is the same at
/// every level, so the aggregate honors it iff each level did).
pub fn bfs_stream(
    g: &Graph,
    src: usize,
    cfg: StreamConfig,
) -> Result<(Vec<u64>, PipelineStats), SuiteError> {
    cfg.validate("bfs")?;
    let n = g.num_vertices();
    if src >= n {
        return Err(SuiteError::degenerate(
            "bfs",
            format!("source vertex {src} out of range for {n} vertices"),
        ));
    }
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(bfs_frontier::INF)).collect();
    dist[src].store(0, Ordering::Relaxed);
    let dist_ref = &dist;
    let mut frontier: Vec<u32> = vec![src as u32];
    let mut level = 0u64;
    let mut stats = PipelineStats::default();
    while !frontier.is_empty() {
        level += 1;
        let (mut next, level_stats) = Pipeline::source(
            cfg.pipeline(),
            frontier.chunks(cfg.chunk).map(<[u32]>::to_vec),
        )
        .and_then(|p| {
            p.stage("bfs-expand", cfg.workers, move |chunk: Vec<u32>| {
                let mut claimed = Vec::new();
                for &u in &chunk {
                    for &v in g.neighbors(u as usize) {
                        // Claim v for this level; exactly one parent
                        // wins (the same discipline as bfs_frontier).
                        if dist_ref[v as usize]
                            .compare_exchange(
                                bfs_frontier::INF,
                                level,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                        {
                            claimed.push(v);
                        }
                    }
                }
                claimed
            })
        })
        .and_then(|p| {
            p.run_fold(Vec::new(), |mut acc: Vec<u32>, claimed| {
                acc.extend(claimed);
                acc
            })
        })
        .map_err(|e| stream_error("bfs", e))?;
        next.sort_unstable();
        stats = merge_stats(stats, level_stats);
        frontier = next;
    }
    Ok((dist.into_iter().map(AtomicU64::into_inner).collect(), stats))
}

/// Folds one level's accounting into the run aggregate: shape fields
/// come from the latest level (identical at every level), items sum,
/// and the high-water mark is the max across levels.
fn merge_stats(acc: PipelineStats, level: PipelineStats) -> PipelineStats {
    PipelineStats {
        stages: level.stages,
        workers: level.workers,
        channels: level.channels,
        capacity: level.capacity,
        items_in: acc.items_in + level.items_in,
        items_out: acc.items_out + level.items_out,
        max_inflight: acc.max_inflight.max(level.max_inflight),
    }
}

/// The in-flight high-water-mark claim every streaming cell must honor.
fn check_bounded(bench: &'static str, stats: &PipelineStats) -> Result<(), SuiteError> {
    if !stats.inflight_bounded() {
        return Err(SuiteError::invariant(
            bench,
            format!(
                "pipeline max_inflight {} exceeds bound {} ({} channels × {} capacity)",
                stats.max_inflight,
                stats.inflight_bound(),
                stats.channels,
                stats.capacity
            ),
        ));
    }
    Ok(())
}

/// Runs one streaming verification cell: the streaming output must agree
/// exactly with the batch sequential oracle (and, for `bfs`, the batch
/// parallel ablation), pass the benchmark's structural invariant
/// checker, and honor the bounded-memory claim. With `inject`, the
/// streaming output is deliberately corrupted first — the cell must then
/// return an `Err` (the harness's failure-path probe, mirroring
/// [`verify_pair`](crate::verify::verify_pair)).
pub fn verify_streaming(
    name: &str,
    i: &SuiteInputs<'_>,
    cfg: StreamConfig,
    inject: bool,
) -> Result<(), SuiteError> {
    match name {
        "hist" => check_hist_stream(i, cfg, inject),
        "dedup" => check_dedup_stream(i, cfg, inject),
        "bfs" => check_bfs_stream(i, cfg, inject),
        other => Err(SuiteError::malformed(
            "verify",
            format!("unknown streaming benchmark `{other}` (valid: hist, dedup, bfs)"),
        )),
    }
}

fn check_hist_stream(
    i: &SuiteInputs<'_>,
    cfg: StreamConfig,
    inject: bool,
) -> Result<(), SuiteError> {
    let nbuckets = 64;
    let range = i.seq.len() as u64;
    let (mut h, stats) = hist_stream(i.seq, nbuckets, range, cfg)?;
    check_bounded("hist", &stats)?;
    if inject {
        h[0] += 1;
    }
    hist::verify(i.seq, nbuckets, &h)?;
    if h != hist::run_seq(i.seq, nbuckets, range)? {
        return Err(SuiteError::divergence(
            "hist",
            "streaming counts differ from batch sequential",
        ));
    }
    Ok(())
}

fn check_dedup_stream(
    i: &SuiteInputs<'_>,
    cfg: StreamConfig,
    inject: bool,
) -> Result<(), SuiteError> {
    let (mut out, stats) = dedup_stream(i.seq, cfg)?;
    check_bounded("dedup", &stats)?;
    if inject {
        if let Some(&first) = out.first() {
            out.insert(0, first);
        }
    }
    dedup::verify(i.seq, &out)?;
    if out != dedup::run_seq(i.seq) {
        return Err(SuiteError::divergence(
            "dedup",
            "streaming distinct set differs from batch sequential",
        ));
    }
    Ok(())
}

fn check_bfs_stream(
    i: &SuiteInputs<'_>,
    cfg: StreamConfig,
    mut inject: bool,
) -> Result<(), SuiteError> {
    for g in [i.link, i.road] {
        let (mut d, stats) = bfs_stream(g, 0, cfg)?;
        check_bounded("bfs", &stats)?;
        if std::mem::take(&mut inject) {
            d[0] = 1;
        }
        bfs::verify(g, 0, &d)?;
        let seq = bfs::run_seq(g, 0);
        if d != seq {
            return Err(SuiteError::divergence(
                "bfs",
                "streaming frontier distances differ from sequential BFS",
            ));
        }
        if bfs_frontier::run_par(g, 0) != seq {
            return Err(SuiteError::divergence(
                "bfs",
                "batch frontier ablation differs from sequential BFS",
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;
    use rpb_graph::GraphKind;
    use rpb_pipeline::ALL_CHANNELS;

    fn cfg(channel: ChannelKind) -> StreamConfig {
        StreamConfig {
            channel,
            backend: BackendKind::Rayon,
            chunk: 512,
            capacity: 4,
            workers: 2,
        }
    }

    #[test]
    fn hist_stream_matches_batch_on_both_channels() {
        let data = inputs::exponential(20_000);
        let range = data.len() as u64;
        let want = hist::run_seq(&data, 64, range).expect("hist");
        for channel in ALL_CHANNELS {
            let (got, stats) = hist_stream(&data, 64, range, cfg(channel)).expect("stream");
            assert_eq!(got, want, "{channel:?}");
            assert!(stats.inflight_bounded(), "{stats:?}");
            assert_eq!(stats.items_in, data.len().div_ceil(512) as u64);
            assert_eq!(stats.items_in, stats.items_out);
        }
    }

    #[test]
    fn dedup_stream_matches_batch_on_both_channels() {
        let data: Vec<u64> = (0..30_000u64).map(|i| (i * i) % 257).collect();
        let want = dedup::run_seq(&data);
        for channel in ALL_CHANNELS {
            let (got, stats) = dedup_stream(&data, cfg(channel)).expect("stream");
            assert_eq!(got, want, "{channel:?}");
            assert!(stats.inflight_bounded(), "{stats:?}");
        }
    }

    #[test]
    fn bfs_stream_matches_batch_on_both_channels() {
        for kind in [GraphKind::Link, GraphKind::Road] {
            let g = inputs::graph(kind, 2000);
            let want = bfs::run_seq(&g, 0);
            for channel in ALL_CHANNELS {
                let (got, stats) = bfs_stream(&g, 0, cfg(channel)).expect("stream");
                assert_eq!(got, want, "{kind:?} {channel:?}");
                assert!(stats.inflight_bounded(), "{stats:?}");
            }
        }
    }

    #[test]
    fn single_worker_stream_is_deterministic_in_counters() {
        // The gate's hard-counter cells run at one worker per stage:
        // items_in/items_out must be exact functions of the input shape.
        let data = inputs::exponential(10_000);
        let one = StreamConfig {
            workers: 1,
            ..cfg(ChannelKind::Mpsc)
        };
        let (_, a) = hist_stream(&data, 64, data.len() as u64, one).expect("stream");
        let (_, b) = hist_stream(&data, 64, data.len() as u64, one).expect("stream");
        assert_eq!(a, b);
        assert_eq!(a.items_in, data.len().div_ceil(one.chunk) as u64);
    }

    #[test]
    fn empty_inputs_stream_cleanly() {
        let (h, stats) = hist_stream(&[], 8, 100, cfg(ChannelKind::Mpsc)).expect("stream");
        assert_eq!(h, vec![0u64; 8]);
        assert_eq!(stats.items_in, 0);
        let (d, _) = dedup_stream(&[], cfg(ChannelKind::Crossbeam)).expect("stream");
        assert!(d.is_empty());
    }

    #[test]
    fn degenerate_parameters_are_typed_errors() {
        let base = cfg(ChannelKind::Mpsc);
        let err = hist_stream(&[1], 4, 10, StreamConfig { chunk: 0, ..base }).unwrap_err();
        assert!(
            matches!(err, SuiteError::DegenerateParameter { .. }),
            "{err}"
        );
        let err = dedup_stream(&[1], StreamConfig { workers: 0, ..base }).unwrap_err();
        assert!(
            matches!(err, SuiteError::DegenerateParameter { .. }),
            "{err}"
        );
        let err = hist_stream(
            &[1],
            4,
            10,
            StreamConfig {
                capacity: 0,
                ..base
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, SuiteError::DegenerateParameter { .. }),
            "{err}"
        );
        assert!(hist_stream(&[1], 0, 10, base).is_err(), "zero buckets");
        let g = inputs::graph(GraphKind::Road, 50);
        let err = bfs_stream(&g, g.num_vertices() + 1, base).unwrap_err();
        assert!(
            matches!(err, SuiteError::DegenerateParameter { .. }),
            "{err}"
        );
    }
}
