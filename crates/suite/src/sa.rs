//! `sa` — suffix array (Table 1 row 3).
//!
//! Thin wrapper over [`rpb_text::suffix_array()`]; the mode switch selects
//! how the prefix-doubling rank scatter (`SngInd`) is expressed:
//! raw pointers (unsafe), `par_ind_iter_mut` (checked), or relaxed atomic
//! stores (sync) — the Fig. 5(a)/(b) comparison for this benchmark.

use rpb_fearless::ExecMode;

use crate::error::SuiteError;

/// Parallel suffix array in the given mode.
pub fn run_par(text: &[u8], mode: ExecMode) -> Vec<u32> {
    rpb_text::suffix_array(text, mode)
}

/// Sequential baseline.
pub fn run_seq(text: &[u8]) -> Vec<u32> {
    rpb_text::suffix_array_seq(text)
}

/// Checks that `sa` is the suffix array of `text`.
pub fn verify(text: &[u8], sa: &[u32]) -> Result<(), SuiteError> {
    if sa.len() != text.len() {
        return Err(SuiteError::invariant(
            "sa",
            format!("length mismatch: {} vs {}", sa.len(), text.len()),
        ));
    }
    let mut seen = vec![false; text.len()];
    for &i in sa {
        let i = i as usize;
        if i >= text.len() || seen[i] {
            return Err(SuiteError::invariant(
                "sa",
                format!("not a permutation at {i}"),
            ));
        }
        seen[i] = true;
    }
    for w in sa.windows(2) {
        if text[w[0] as usize..] >= text[w[1] as usize..] {
            return Err(SuiteError::invariant(
                "sa",
                format!("order violated at suffixes {} and {}", w[0], w[1]),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;

    #[test]
    fn all_modes_agree_with_sequential() {
        let text = inputs::wiki(20_000);
        let want = run_seq(&text);
        for mode in [ExecMode::Unsafe, ExecMode::Checked, ExecMode::Sync] {
            let got = run_par(&text, mode);
            assert_eq!(got, want, "{mode}");
            verify(&text, &got).expect("valid");
        }
    }

    #[test]
    fn verify_catches_corruption() {
        let text = inputs::wiki(1000);
        let mut sa = run_seq(&text);
        sa.swap(0, 1);
        assert!(verify(&text, &sa).is_err());
    }
}
