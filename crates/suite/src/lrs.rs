//! `lrs` — longest repeated substring (Table 1 row 2).
//!
//! Pipeline: suffix array (`SngInd`-heavy) → LCP array (chunked Φ-Kasai,
//! `Block`/`RngInd`-family) → parallel argmax (`RO` reduction). The answer
//! is the pair of positions sharing the longest common prefix.

use rpb_fearless::ExecMode;
use rpb_text::{lcp_from_sa, suffix_array, suffix_array_seq};

use crate::error::SuiteError;

/// A repeated substring occurrence: two positions and the match length.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lrs {
    /// First occurrence (earlier suffix in SA order).
    pub pos_a: usize,
    /// Second occurrence.
    pub pos_b: usize,
    /// Length of the repeated substring.
    pub len: usize,
}

/// Parallel longest-repeated-substring in the given mode.
pub fn run_par(text: &[u8], mode: ExecMode) -> Lrs {
    let sa = suffix_array(text, mode);
    let lcp = lcp_from_sa(text, &sa);
    best_from(&sa, &lcp)
}

/// Sequential baseline.
pub fn run_seq(text: &[u8]) -> Lrs {
    let sa = suffix_array_seq(text);
    let lcp = crate::lrs::lcp_seq(text, &sa);
    best_from(&sa, &lcp)
}

fn best_from(sa: &[u32], lcp: &[u32]) -> Lrs {
    match rpb_parlay::max_index(lcp) {
        Some(j) if lcp[j] > 0 => Lrs {
            pos_a: sa[j - 1] as usize,
            pos_b: sa[j] as usize,
            len: lcp[j] as usize,
        },
        _ => Lrs {
            pos_a: 0,
            pos_b: 0,
            len: 0,
        },
    }
}

/// Sequential Kasai LCP (baseline helper).
pub fn lcp_seq(text: &[u8], sa: &[u32]) -> Vec<u32> {
    let n = text.len();
    let mut rank = vec![0u32; n];
    for (j, &i) in sa.iter().enumerate() {
        rank[i as usize] = j as u32;
    }
    let mut lcp = vec![0u32; n];
    let mut h = 0usize;
    for i in 0..n {
        let j = rank[i] as usize;
        if j > 0 {
            let p = sa[j - 1] as usize;
            while i + h < n && p + h < n && text[i + h] == text[p + h] {
                h += 1;
            }
            lcp[j] = h as u32;
            h = h.saturating_sub(1);
        } else {
            h = 0;
        }
    }
    lcp
}

/// Confirms the result: the two substrings match for `len` bytes and do
/// not match for `len + 1`.
pub fn verify(text: &[u8], r: &Lrs) -> Result<(), SuiteError> {
    if r.len == 0 {
        return Ok(()); // no repeat claimed
    }
    let (a, b) = (r.pos_a, r.pos_b);
    if a == b {
        return Err(SuiteError::invariant("lrs", "positions identical"));
    }
    if a + r.len > text.len() || b + r.len > text.len() {
        return Err(SuiteError::invariant("lrs", "match exceeds text"));
    }
    if text[a..a + r.len] != text[b..b + r.len] {
        return Err(SuiteError::invariant("lrs", "claimed match differs"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;

    #[test]
    fn modes_agree_on_length() {
        let text = inputs::wiki(30_000);
        let want = run_seq(&text);
        for mode in [ExecMode::Unsafe, ExecMode::Checked, ExecMode::Sync] {
            let got = run_par(&text, mode);
            // The maximal length is unique even if the winning pair isn't.
            assert_eq!(got.len, want.len, "{mode}");
            verify(&text, &got).expect("valid");
        }
    }

    #[test]
    fn finds_known_repeat() {
        let text = b"xabcabcy";
        let r = run_par(text, ExecMode::Checked);
        assert_eq!(r.len, 3);
        verify(text, &r).expect("valid");
        let sub_a = &text[r.pos_a..r.pos_a + 3];
        assert_eq!(sub_a, b"abc");
    }

    #[test]
    fn no_repeats_in_distinct_text() {
        let text = b"abcdefg";
        let r = run_par(text, ExecMode::Checked);
        assert_eq!(r.len, 0);
    }

    #[test]
    fn verify_rejects_wrong_claim() {
        let text = b"aabb";
        let bogus = Lrs {
            pos_a: 0,
            pos_b: 2,
            len: 2,
        };
        assert!(verify(text, &bogus).is_err());
    }
}
