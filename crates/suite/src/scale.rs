//! Workload scales: laptop-sized stand-ins for the paper's inputs.
//!
//! Lives in `rpb-suite` (rather than the bench harness) so every consumer
//! of the generated inputs — the figure harness, the perf gate, and the
//! resident `rpb-serve` service — shares one definition of "gate scale",
//! "small", etc. `rpb-bench` re-exports it unchanged.

/// Input sizes for one harness run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Bytes of wiki-like text (`bw`, `lrs`, `sa`).
    pub text_len: usize,
    /// Elements of the exponential sequence (`sort`, `dedup`, `hist`,
    /// `isort`).
    pub seq_len: usize,
    /// Vertex scale of the generated graphs.
    pub graph_n: usize,
    /// Kuzmin points (`dr`).
    pub points_n: usize,
}

impl Scale {
    /// Perf-gate scale: the pinned smoke matrix `rpb gate` records and
    /// checks against. Deliberately tiny — the gate's hard metrics are
    /// deterministic event counters, which are just as sensitive at small
    /// N, and CI pays for every case twice (counter pass + wall pass).
    /// Changing these numbers invalidates every committed baseline
    /// (`gate check` reports the mismatch as a hard violation).
    pub fn gate() -> Scale {
        Scale {
            text_len: 4_000,
            seq_len: 20_000,
            graph_n: 800,
            points_n: 300,
        }
    }

    /// Smoke-test scale (sub-second totals; used by criterion benches).
    pub fn small() -> Scale {
        Scale {
            text_len: 50_000,
            seq_len: 200_000,
            graph_n: 10_000,
            points_n: 2_000,
        }
    }

    /// Default harness scale.
    pub fn medium() -> Scale {
        Scale {
            text_len: 400_000,
            seq_len: 2_000_000,
            graph_n: 60_000,
            points_n: 20_000,
        }
    }

    /// Patience-required scale.
    pub fn large() -> Scale {
        Scale {
            text_len: 2_000_000,
            seq_len: 10_000_000,
            graph_n: 250_000,
            points_n: 80_000,
        }
    }

    /// Parses `gate|small|medium|large`.
    pub fn parse(s: &str) -> Result<Scale, String> {
        match s {
            "gate" => Ok(Scale::gate()),
            "small" => Ok(Scale::small()),
            "medium" => Ok(Scale::medium()),
            "large" => Ok(Scale::large()),
            other => Err(format!("unknown scale {other} (gate|small|medium|large)")),
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::medium()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        assert_eq!(Scale::parse("gate"), Ok(Scale::gate()));
        assert_eq!(Scale::parse("small"), Ok(Scale::small()));
        assert_eq!(Scale::parse("medium"), Ok(Scale::medium()));
        assert_eq!(Scale::parse("large"), Ok(Scale::large()));
        let err = Scale::parse("huge").unwrap_err();
        assert!(err.contains("gate|small|medium|large"), "{err}");
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::gate().text_len < Scale::small().text_len);
        assert!(Scale::small().text_len < Scale::medium().text_len);
        assert!(Scale::medium().graph_n < Scale::large().graph_n);
    }
}
