//! `dedup` — remove duplicates (Table 1 row 10).
//!
//! Two implementations matching the paper's trade-off:
//!
//! * hash-based ([`ExecMode::Unsafe`]/[`ExecMode::Sync`]): phase-
//!   concurrent CAS hash set (Listing 8) — the PBBS approach; the CAS
//!   synchronization is *necessary*, so unsafe and sync coincide,
//! * sort-based ([`ExecMode::Checked`]): radix sort + adjacent-unique +
//!   pack — fully safe Rust with dynamic-check-free regular patterns,
//!   the deterministic alternative.
//!
//! Output order differs between strategies, so results are canonicalized
//! (sorted) for comparison.

use rayon::prelude::*;

use rpb_concurrent::ConcurrentHashSet;
use rpb_fearless::ExecMode;

use crate::error::SuiteError;

/// Parallel dedup; returns the distinct values, sorted ascending.
pub fn run_par(data: &[u64], mode: ExecMode) -> Vec<u64> {
    match mode {
        ExecMode::Unsafe | ExecMode::Sync => {
            if data.is_empty() {
                return Vec::new();
            }
            let set = ConcurrentHashSet::with_capacity(data.len());
            data.par_iter().for_each(|&x| {
                set.insert(x);
            });
            let mut out = set.elements();
            rpb_parlay::radix_sort_u64(&mut out);
            out
        }
        ExecMode::Checked => {
            let mut sorted = data.to_vec();
            rpb_parlay::radix_sort_u64(&mut sorted);
            let flags: Vec<bool> = sorted
                .par_iter()
                .enumerate()
                .map(|(i, &x)| i == 0 || sorted[i - 1] != x)
                .collect();
            rpb_parlay::pack(&sorted, &flags)
        }
    }
}

/// Sequential baseline.
pub fn run_seq(data: &[u64]) -> Vec<u64> {
    let mut out: Vec<u64> = data.to_vec();
    out.sort_unstable();
    out.dedup();
    out
}

/// Set-equality invariant: `out` is exactly the distinct values of
/// `input`, in the sorted canonical order the contract promises.
///
/// Strict ascent rules out both duplicates and disorder; equality with
/// the independently-computed sorted distinct set rules out dropped or
/// invented values.
pub fn verify(input: &[u64], out: &[u64]) -> Result<(), SuiteError> {
    if let Some(w) = out.windows(2).find(|w| w[0] >= w[1]) {
        return Err(SuiteError::invariant(
            "dedup",
            format!("output not strictly ascending at value {}", w[0]),
        ));
    }
    let want = run_seq(input);
    if out != want {
        return Err(SuiteError::invariant(
            "dedup",
            format!(
                "{} distinct values returned, want {}",
                out.len(),
                want.len()
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;

    #[test]
    fn all_modes_agree() {
        let data = inputs::exponential(100_000);
        let want = run_seq(&data);
        for mode in [ExecMode::Unsafe, ExecMode::Checked, ExecMode::Sync] {
            assert_eq!(run_par(&data, mode), want, "{mode}");
        }
    }

    #[test]
    fn heavy_duplication() {
        let data: Vec<u64> = (0..50_000).map(|i| i % 17).collect();
        let got = run_par(&data, ExecMode::Sync);
        assert_eq!(got, (0..17).collect::<Vec<u64>>());
    }

    #[test]
    fn all_distinct() {
        let data: Vec<u64> = (0..10_000).collect();
        assert_eq!(run_par(&data, ExecMode::Checked).len(), 10_000);
    }

    #[test]
    fn empty() {
        assert!(run_par(&[], ExecMode::Checked).is_empty());
        assert!(run_par(&[], ExecMode::Sync).is_empty());
    }

    #[test]
    fn verify_catches_duplicates_disorder_and_set_drift() {
        let data: Vec<u64> = (0..5_000).map(|i| i % 101).collect();
        let out = run_par(&data, ExecMode::Sync);
        verify(&data, &out).expect("clean output");
        let mut dup = out.clone();
        dup.insert(1, dup[0]);
        assert!(verify(&data, &dup).is_err(), "duplicate kept");
        let mut missing = out.clone();
        missing.pop();
        assert!(verify(&data, &missing).is_err(), "value dropped");
        let mut invented = out.clone();
        invented.push(u64::MAX);
        assert!(verify(&data, &invented).is_err(), "value invented");
        let mut unsorted = out;
        unsorted.swap(0, 1);
        assert!(verify(&data, &unsorted).is_err(), "order broken");
    }
}
