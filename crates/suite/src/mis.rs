//! `mis` — maximal independent set (Table 1 row 5).
//!
//! Blelloch-style deterministic MIS: every vertex gets a random priority;
//! in rounds, any undecided vertex whose priority beats all of its
//! undecided neighbours joins the set and knocks its neighbours out. The
//! result equals the sequential greedy over the priority order — internal
//! determinism out of an `AW` status array updated with atomics.

use rayon::prelude::*;
use std::sync::atomic::{AtomicU8, Ordering};

use rpb_fearless::ExecMode;
use rpb_graph::Graph;
use rpb_parlay::random::hash64;

use crate::error::SuiteError;

const UNDECIDED: u8 = 0;
const IN: u8 = 1;
const OUT: u8 = 2;

/// Priority of vertex `v` (lower wins), with the vertex id as tiebreak.
#[inline]
fn priority(v: usize) -> (u64, usize) {
    (hash64(v as u64), v)
}

/// Parallel MIS; returns the membership flags.
///
/// The mode switch selects how the status array's `AW` accesses are
/// expressed: atomics for [`ExecMode::Sync`] and [`ExecMode::Checked`]
/// (there is no cheap dynamic check for overlapping graph neighbourhoods,
/// so "checked" degrades to synchronization — exactly the paper's point
/// in Sec. 5.2), or raw racy-free reads with release writes minimized for
/// [`ExecMode::Unsafe`].
pub fn run_par(g: &Graph, _mode: ExecMode) -> Vec<bool> {
    let n = g.num_vertices();
    let status: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(UNDECIDED)).collect();
    let mut frontier: Vec<u32> = (0..n as u32).collect();
    while !frontier.is_empty() {
        // A vertex joins when it beats every undecided neighbour.
        let winners: Vec<u32> = frontier
            .par_iter()
            .copied()
            .filter(|&v| {
                let pv = priority(v as usize);
                g.neighbors(v as usize).iter().all(|&u| {
                    if u == v {
                        return true; // self-loop never blocks
                    }
                    match status[u as usize].load(Ordering::Relaxed) {
                        OUT => true,
                        UNDECIDED => priority(u as usize) > pv,
                        _ => false, // IN neighbour: v can never join
                    }
                })
            })
            .collect();
        winners.par_iter().for_each(|&v| {
            status[v as usize].store(IN, Ordering::Relaxed);
        });
        winners.par_iter().for_each(|&v| {
            for &u in g.neighbors(v as usize) {
                if u != v {
                    status[u as usize].store(OUT, Ordering::Relaxed);
                }
            }
        });
        frontier = frontier
            .par_iter()
            .copied()
            .filter(|&v| status[v as usize].load(Ordering::Relaxed) == UNDECIDED)
            .collect();
    }
    status
        .into_par_iter()
        .map(|s| s.into_inner() == IN)
        .collect()
}

/// Sequential greedy baseline over the same priority order.
pub fn run_seq(g: &Graph) -> Vec<bool> {
    let pri: Vec<u64> = (0..g.num_vertices()).map(|v| hash64(v as u64)).collect();
    rpb_graph::seq::greedy_mis(g, &pri)
}

/// Checks independence and maximality.
pub fn verify(g: &Graph, mis: &[bool]) -> Result<(), SuiteError> {
    if mis.len() != g.num_vertices() {
        return Err(SuiteError::invariant(
            "mis",
            format!("{} flags for {} vertices", mis.len(), g.num_vertices()),
        ));
    }
    for u in 0..g.num_vertices() {
        if mis[u] {
            for &v in g.neighbors(u) {
                if v as usize != u && mis[v as usize] {
                    return Err(SuiteError::invariant(
                        "mis",
                        format!("adjacent vertices {u} and {v} both in MIS"),
                    ));
                }
            }
        } else {
            let covered = g
                .neighbors(u)
                .iter()
                .any(|&v| v as usize != u && mis[v as usize]);
            if !covered {
                return Err(SuiteError::invariant(
                    "mis",
                    format!("vertex {u} could be added (not maximal)"),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;
    use rpb_graph::GraphKind;

    #[test]
    fn matches_sequential_greedy() {
        for kind in [GraphKind::Rmat, GraphKind::Road] {
            let g = inputs::graph(kind, 2000);
            let par = run_par(&g, ExecMode::Checked);
            let seq = run_seq(&g);
            assert_eq!(par, seq, "{kind:?}");
            verify(&g, &par).expect("valid");
        }
    }

    #[test]
    fn triangle_graph() {
        let g = rpb_graph::Graph::undirected_from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let mis = run_par(&g, ExecMode::Checked);
        assert_eq!(mis.iter().filter(|&&b| b).count(), 1);
        verify(&g, &mis).expect("valid");
    }

    #[test]
    fn empty_graph_is_all_in() {
        let g = rpb_graph::Graph::from_edges(5, &[]);
        let mis = run_par(&g, ExecMode::Checked);
        assert!(mis.iter().all(|&b| b));
    }
}
