//! Typed errors for the suite's fallible entry points and invariant
//! checkers.
//!
//! Every error carries the benchmark abbreviation it came from, so the
//! differential-verification matrix ([`crate::verify`]) can render a
//! failing cell without re-deriving context, and so a malformed or
//! degenerate input surfaces as an `Err` row instead of a panic that
//! kills the whole sweep.

use std::fmt;

/// What went wrong in a suite run or verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SuiteError {
    /// The input violates the benchmark's precondition (e.g. a BWT
    /// without its sentinel): no output exists for it.
    MalformedInput {
        /// Benchmark abbreviation ("bw", "hist", ...).
        benchmark: &'static str,
        /// Human-readable description of the precondition violation.
        reason: String,
    },
    /// A parameter makes the run meaningless (zero histogram buckets,
    /// zero delta-stepping width).
    DegenerateParameter {
        /// Benchmark abbreviation.
        benchmark: &'static str,
        /// Which parameter, and why it is degenerate.
        reason: String,
    },
    /// An output violates the benchmark's own postcondition
    /// (unsortedness, a cycle in a forest, a broken round-trip, ...).
    InvariantViolated {
        /// Benchmark abbreviation.
        benchmark: &'static str,
        /// The violated invariant.
        reason: String,
    },
    /// Two implementations or modes that must agree (after
    /// canonicalization) did not.
    Divergence {
        /// Benchmark abbreviation.
        benchmark: &'static str,
        /// Which outputs diverged.
        reason: String,
    },
}

impl SuiteError {
    /// A [`SuiteError::MalformedInput`].
    pub fn malformed(benchmark: &'static str, reason: impl Into<String>) -> SuiteError {
        SuiteError::MalformedInput {
            benchmark,
            reason: reason.into(),
        }
    }

    /// A [`SuiteError::DegenerateParameter`].
    pub fn degenerate(benchmark: &'static str, reason: impl Into<String>) -> SuiteError {
        SuiteError::DegenerateParameter {
            benchmark,
            reason: reason.into(),
        }
    }

    /// An [`SuiteError::InvariantViolated`].
    pub fn invariant(benchmark: &'static str, reason: impl Into<String>) -> SuiteError {
        SuiteError::InvariantViolated {
            benchmark,
            reason: reason.into(),
        }
    }

    /// A [`SuiteError::Divergence`].
    pub fn divergence(benchmark: &'static str, reason: impl Into<String>) -> SuiteError {
        SuiteError::Divergence {
            benchmark,
            reason: reason.into(),
        }
    }

    /// The benchmark abbreviation the error came from.
    pub fn benchmark(&self) -> &'static str {
        match self {
            SuiteError::MalformedInput { benchmark, .. }
            | SuiteError::DegenerateParameter { benchmark, .. }
            | SuiteError::InvariantViolated { benchmark, .. }
            | SuiteError::Divergence { benchmark, .. } => benchmark,
        }
    }

    /// The human-readable detail.
    pub fn reason(&self) -> &str {
        match self {
            SuiteError::MalformedInput { reason, .. }
            | SuiteError::DegenerateParameter { reason, .. }
            | SuiteError::InvariantViolated { reason, .. }
            | SuiteError::Divergence { reason, .. } => reason,
        }
    }
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self {
            SuiteError::MalformedInput { .. } => "malformed input",
            SuiteError::DegenerateParameter { .. } => "degenerate parameter",
            SuiteError::InvariantViolated { .. } => "invariant violated",
            SuiteError::Divergence { .. } => "divergence",
        };
        write!(f, "{}: {kind}: {}", self.benchmark(), self.reason())
    }
}

impl std::error::Error for SuiteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_benchmark_and_kind() {
        let e = SuiteError::malformed("bw", "sentinel missing");
        assert_eq!(e.to_string(), "bw: malformed input: sentinel missing");
        assert_eq!(e.benchmark(), "bw");
        assert_eq!(e.reason(), "sentinel missing");

        let e = SuiteError::degenerate("hist", "nbuckets = 0");
        assert_eq!(e.to_string(), "hist: degenerate parameter: nbuckets = 0");

        let e = SuiteError::invariant("sort", "not sorted");
        assert_eq!(e.to_string(), "sort: invariant violated: not sorted");

        let e = SuiteError::divergence("msf", "weight differs");
        assert_eq!(e.to_string(), "msf: divergence: weight differs");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            SuiteError::invariant("sa", "x"),
            SuiteError::invariant("sa", "x")
        );
        assert_ne!(
            SuiteError::invariant("sa", "x"),
            SuiteError::divergence("sa", "x")
        );
    }
}
