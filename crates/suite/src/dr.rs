//! `dr` — Delaunay refinement (Table 1 row 4).
//!
//! Wraps [`rpb_geom`]: build the Delaunay triangulation of the Kuzmin
//! point set, then eliminate skinny triangles with parallel
//! reservation-coordinated circumcenter insertion. The `AW` machinery
//! (reservations + raw views) is inherent to the algorithm, so the mode
//! switch does not change the implementation — `dr` is one of the
//! benchmarks for which the paper offers no checked middle ground, only
//! "synchronization that has scared programmers for decades".

use rpb_fearless::ExecMode;
use rpb_geom::{delaunay, refine, refine_seq, Point, RefineParams, RefineStats, Triangulation};

use crate::error::SuiteError;

/// Output of a `dr` run.
pub struct DrResult {
    /// The refined mesh.
    pub mesh: Triangulation,
    /// Refinement statistics.
    pub stats: RefineStats,
}

/// Default refinement parameters for the benchmark: Ruppert √2 bound
/// with a size floor budgeting ~40 triangles per input point (the
/// stand-in for PBBS boundary handling; see `rpb-geom` docs).
pub fn params(points: &[Point]) -> RefineParams {
    RefineParams::for_points(points, 40)
}

/// Parallel Delaunay refinement.
pub fn run_par(points: &[Point], _mode: ExecMode) -> DrResult {
    let mut mesh = delaunay(points);
    let stats = refine(&mut mesh, params(points));
    DrResult { mesh, stats }
}

/// Sequential baseline.
pub fn run_seq(points: &[Point]) -> DrResult {
    let mut mesh = delaunay(points);
    let stats = refine_seq(&mut mesh, params(points));
    DrResult { mesh, stats }
}

/// Verifies the refinement postcondition: structurally valid mesh and no
/// refinable skinny triangle left behind.
pub fn verify(points: &[Point], r: &DrResult) -> Result<(), SuiteError> {
    r.mesh.check_valid();
    let p = params(points);
    if r.stats.inserted >= p.max_steiner {
        return Err(SuiteError::invariant(
            "dr",
            format!("hit the Steiner cap ({})", r.stats.inserted),
        ));
    }
    let skinny = rpb_geom::refine::count_skinny(&r.mesh, &p);
    if skinny > r.stats.unrefinable {
        return Err(SuiteError::invariant(
            "dr",
            format!(
                "{skinny} skinny triangles remain but only {} marked unrefinable",
                r.stats.unrefinable
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;

    #[test]
    fn par_refinement_reaches_quality() {
        let pts = inputs::kuzmin(300);
        let r = run_par(&pts, ExecMode::Checked);
        verify(&pts, &r).expect("refined");
        assert!(r.stats.inserted > 0);
    }

    #[test]
    fn seq_refinement_reaches_quality() {
        let pts = inputs::kuzmin(300);
        let r = run_seq(&pts);
        verify(&pts, &r).expect("refined");
    }
}
