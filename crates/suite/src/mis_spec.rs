//! `mis` via PBBS-style `speculative_for` — the deterministic-
//! reservations formulation, as an ablation against the rootset rounds of
//! [`crate::mis`].
//!
//! Iterations are vertices in random-priority order. An iteration
//! completes once every earlier-priority neighbour is decided: if one of
//! them joined the set, the vertex is out; otherwise it joins. Undecided
//! earlier neighbours force a retry — the speculative loop's dependency
//! wait. Both formulations compute the *lexicographically first MIS* of
//! the priority order, so they agree bit-for-bit with the sequential
//! greedy (and with each other).

use std::sync::atomic::{AtomicU8, Ordering};

use rpb_concurrent::reservations::speculative_for;
use rpb_fearless::ExecMode;
use rpb_graph::Graph;
use rpb_parlay::random::hash64;

const UNDECIDED: u8 = 0;
const IN: u8 = 1;
const OUT: u8 = 2;

/// Parallel MIS via `speculative_for`; returns membership flags.
pub fn run_par(g: &Graph, _mode: ExecMode) -> Vec<bool> {
    let n = g.num_vertices();
    // Process vertices in ascending hash-priority order.
    let mut order: Vec<(u64, u32)> = (0..n as u32).map(|v| (hash64(v as u64), v)).collect();
    rpb_parlay::radix_sort_by_key(&mut order, 64, |p| p.0);
    let order: Vec<u32> = order.into_iter().map(|(_, v)| v).collect();
    let mut rank = vec![0u32; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i as u32;
    }
    let status: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(UNDECIDED)).collect();
    speculative_for(
        0..n,
        4096,
        |_| true,
        |i| {
            let v = order[i] as usize;
            let mut all_earlier_out = true;
            for &u in g.neighbors(v) {
                let u = u as usize;
                if u == v || rank[u] > rank[v] {
                    continue;
                }
                match status[u].load(Ordering::Acquire) {
                    IN => {
                        status[v].store(OUT, Ordering::Release);
                        return true; // decided: out
                    }
                    UNDECIDED => all_earlier_out = false,
                    _ => {}
                }
            }
            if all_earlier_out {
                status[v].store(IN, Ordering::Release);
                true
            } else {
                false // an earlier neighbour is still pending: retry
            }
        },
    );
    status.into_iter().map(|s| s.into_inner() == IN).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;
    use rpb_graph::GraphKind;

    #[test]
    fn agrees_with_rootset_formulation_and_greedy() {
        for kind in [GraphKind::Rmat, GraphKind::Road, GraphKind::Link] {
            let g = inputs::graph(kind, 1500);
            let spec = run_par(&g, ExecMode::Checked);
            let rounds = crate::mis::run_par(&g, ExecMode::Checked);
            let greedy = crate::mis::run_seq(&g);
            assert_eq!(spec, greedy, "{kind:?} vs greedy");
            assert_eq!(spec, rounds, "{kind:?} vs rootset");
            crate::mis::verify(&g, &spec).expect("valid");
        }
    }

    #[test]
    fn clique_admits_exactly_one() {
        let mut edges = Vec::new();
        for u in 0..8u32 {
            for v in (u + 1)..8 {
                edges.push((u, v));
            }
        }
        let g = rpb_graph::Graph::undirected_from_edges(8, &edges);
        let mis = run_par(&g, ExecMode::Checked);
        assert_eq!(mis.iter().filter(|&&b| b).count(), 1);
    }
}
