//! `sf` — spanning forest (Table 1 row 7).
//!
//! Concurrent union-find hooking over the edge list: an edge joins the
//! forest iff its `unite` call is the one that merged two components —
//! the `AW` pattern on the parent array. Any interleaving yields *a*
//! valid spanning forest; the structure (not the edge set) is verified
//! against a sequential union-find.

use rayon::prelude::*;

use rpb_concurrent::ConcurrentUnionFind;
use rpb_fearless::ExecMode;

use crate::error::SuiteError;

/// Parallel spanning forest; returns the indices of forest edges.
pub fn run_par(n: usize, edges: &[(u32, u32)], _mode: ExecMode) -> Vec<usize> {
    let uf = ConcurrentUnionFind::new(n);
    let flags: Vec<bool> = edges
        .par_iter()
        .map(|&(u, v)| u != v && uf.unite(u as usize, v as usize))
        .collect();
    rpb_parlay::pack_index(&flags)
}

/// Sequential baseline.
pub fn run_seq(n: usize, edges: &[(u32, u32)]) -> Vec<usize> {
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(p: &mut [usize], mut x: usize) -> usize {
        while p[x] != x {
            p[x] = p[p[x]];
            x = p[x];
        }
        x
    }
    let mut out = Vec::new();
    for (i, &(u, v)) in edges.iter().enumerate() {
        let (ru, rv) = (find(&mut parent, u as usize), find(&mut parent, v as usize));
        if ru != rv {
            parent[ru] = rv;
            out.push(i);
        }
    }
    out
}

/// Verifies `forest` is a spanning forest of the graph: acyclic, and with
/// exactly `n - #components` edges (so it spans every component).
///
/// Size plus acyclicity pins the partition: an acyclic edge set of that
/// size must merge exactly the components the full graph merges, so two
/// valid forests always span the same vertex partition.
pub fn verify(n: usize, edges: &[(u32, u32)], forest: &[usize]) -> Result<(), SuiteError> {
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(p: &mut [usize], mut x: usize) -> usize {
        while p[x] != x {
            p[x] = p[p[x]];
            x = p[x];
        }
        x
    }
    for &i in forest {
        if i >= edges.len() {
            return Err(SuiteError::invariant(
                "sf",
                format!("forest index {i} out of range for {} edges", edges.len()),
            ));
        }
        let (u, v) = edges[i];
        let (ru, rv) = (find(&mut parent, u as usize), find(&mut parent, v as usize));
        if ru == rv {
            return Err(SuiteError::invariant(
                "sf",
                format!("forest edge {i} creates a cycle"),
            ));
        }
        parent[ru] = rv;
    }
    let expected = n - components(n, edges);
    if forest.len() != expected {
        return Err(SuiteError::invariant(
            "sf",
            format!("forest has {} edges, want {expected}", forest.len()),
        ));
    }
    Ok(())
}

fn components(n: usize, edges: &[(u32, u32)]) -> usize {
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(p: &mut [usize], mut x: usize) -> usize {
        while p[x] != x {
            p[x] = p[p[x]];
            x = p[x];
        }
        x
    }
    for &(u, v) in edges {
        let (ru, rv) = (find(&mut parent, u as usize), find(&mut parent, v as usize));
        if ru != rv {
            parent[ru] = rv;
        }
    }
    (0..n).filter(|&x| find(&mut parent, x) == x).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;
    use rpb_graph::GraphKind;

    #[test]
    fn forest_is_valid_on_all_inputs() {
        for kind in [GraphKind::Link, GraphKind::Road] {
            let (n, edges) = inputs::edges(kind, 1500);
            let forest = run_par(n, &edges, ExecMode::Checked);
            verify(n, &edges, &forest).expect("valid");
            // Sequential forest has the same size (spanning the same
            // components) even if a different edge set.
            assert_eq!(forest.len(), run_seq(n, &edges).len(), "{kind:?}");
        }
    }

    #[test]
    fn cycle_gets_n_minus_one_edges() {
        let edges: Vec<(u32, u32)> = (0..10u32).map(|i| (i, (i + 1) % 10)).collect();
        let forest = run_par(10, &edges, ExecMode::Checked);
        assert_eq!(forest.len(), 9);
        verify(10, &edges, &forest).expect("valid");
    }

    #[test]
    fn self_loops_ignored() {
        let edges = vec![(0u32, 0u32), (0, 1), (1, 1)];
        let forest = run_par(2, &edges, ExecMode::Checked);
        assert_eq!(forest, vec![1]);
    }
}
