//! Delta-stepping SSSP — the bucketed scheduler (Meyer & Sanders;
//! Julienne-style), as an ablation baseline for the MultiQueue-driven
//! [`crate::sssp`].
//!
//! Vertices are processed in distance buckets of width `delta`: all
//! vertices whose tentative distance falls in the current bucket are
//! relaxed (repeatedly, while light edges re-insert into the same
//! bucket), then the next non-empty bucket opens. `delta` trades
//! priority fidelity (small delta → Dijkstra) for parallel width (large
//! delta → Bellman-Ford-ish) — the same relaxation axis the MultiQueue
//! explores probabilistically.

use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

use rpb_concurrent::write_min_u64;
use rpb_graph::WeightedGraph;

use crate::error::SuiteError;

/// Unreachable marker.
pub const INF: u64 = u64::MAX;

/// Parallel delta-stepping shortest paths from `src`.
///
/// A zero `delta` would loop forever on an empty bucket width, so it is
/// rejected as a [`SuiteError::DegenerateParameter`].
pub fn run_par(g: &WeightedGraph, src: usize, delta: u64) -> Result<Vec<u64>, SuiteError> {
    if delta == 0 {
        return Err(SuiteError::degenerate(
            "sssp",
            "delta-stepping bucket width must be positive",
        ));
    }
    let n = g.num_vertices();
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    dist[src].store(0, Ordering::Relaxed);
    // Cache-aware pass (shared dispatch with the `simd` feature): waves
    // are split by edge counts so one hub can't serialize a bucket, and
    // CSR rows are prefetched a few wave slots ahead of their relaxation.
    let prefetch = rpb_graph::prefetch_active();
    let ntasks = rayon::current_num_threads().max(1) * 4;
    let mut current: Vec<u32> = vec![src as u32];
    let mut bucket = 0u64;
    loop {
        // Settle the current bucket: relax until no vertex re-enters it.
        while !current.is_empty() {
            let bucket_end = (bucket + 1) * delta;
            let dist = &dist;
            let wave = &current;
            let next_wave: Vec<u32> = g
                .graph
                .partition_frontier_by_edges(wave, ntasks)
                .into_par_iter()
                .flat_map_iter(|r| {
                    let chunk = &wave[r];
                    chunk.iter().enumerate().flat_map(move |(i, &u)| {
                        if prefetch {
                            if let Some(&ahead) = chunk.get(i + rpb_graph::Graph::PREFETCH_DISTANCE)
                            {
                                g.prefetch_row(ahead as usize);
                            }
                        }
                        let du = dist[u as usize].load(Ordering::Relaxed);
                        let stale = du >= bucket_end;
                        g.neighbors(u as usize).filter_map(move |(v, w)| {
                            if stale {
                                return None;
                            }
                            let nd = du + w as u64;
                            (write_min_u64(&dist[v as usize], nd) && nd < bucket_end).then_some(v)
                        })
                    })
                })
                .collect();
            current = dedup_by_mark(next_wave, n);
        }
        // Open the next non-empty bucket.
        let next = (0..n)
            .into_par_iter()
            .filter_map(|v| {
                let d = dist[v].load(Ordering::Relaxed);
                (d != INF && d >= (bucket + 1) * delta).then_some(d / delta)
            })
            .min();
        match next {
            Some(b) => {
                bucket = b;
                let lo = bucket * delta;
                let hi = lo + delta;
                current = (0..n as u32)
                    .into_par_iter()
                    .filter(|&v| {
                        let d = dist[v as usize].load(Ordering::Relaxed);
                        d != INF && d >= lo && d < hi
                    })
                    .collect();
            }
            None => break,
        }
    }
    Ok(dist.into_iter().map(|d| d.into_inner()).collect())
}

/// Removes duplicate vertex ids (many relaxations may improve the same
/// vertex within one wave).
fn dedup_by_mark(mut v: Vec<u32>, _n: usize) -> Vec<u32> {
    v.par_sort_unstable();
    v.dedup();
    v
}

/// A reasonable default delta: average edge weight (Meyer & Sanders
/// suggest Θ(1/max-degree · max-weight); the average works well on the
/// suite's uniform weights).
pub fn default_delta(g: &WeightedGraph) -> u64 {
    if g.num_arcs() == 0 {
        return 1;
    }
    let sum: u64 = g.weights.iter().map(|&w| w as u64).sum();
    (sum / g.num_arcs() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;
    use rpb_graph::GraphKind;

    #[test]
    fn matches_dijkstra_across_deltas() {
        let g = inputs::weighted_graph(GraphKind::Road, 1500);
        let want = rpb_graph::seq::dijkstra(&g, 0);
        for delta in [1, 16, 64, 100_000] {
            assert_eq!(run_par(&g, 0, delta).expect("sssp"), want, "delta={delta}");
        }
    }

    #[test]
    fn matches_multiqueue_sssp() {
        let g = inputs::weighted_graph(GraphKind::Link, 1200);
        let delta = default_delta(&g);
        let ds = run_par(&g, 0, delta).expect("sssp");
        let mq = crate::sssp::run_par(&g, 0, 4, rpb_fearless::ExecMode::Sync);
        assert_eq!(ds, mq);
    }

    #[test]
    fn huge_delta_degenerates_to_bellman_ford() {
        // One bucket holds everything: still correct.
        let g = inputs::weighted_graph(GraphKind::Rmat, 800);
        assert_eq!(
            run_par(&g, 0, u64::MAX / 4).expect("sssp"),
            rpb_graph::seq::dijkstra(&g, 0)
        );
    }

    #[test]
    fn zero_delta_is_a_typed_error() {
        let g = rpb_graph::WeightedGraph::from_edges(2, &[(0, 1, 1)]);
        let err = run_par(&g, 0, 0).unwrap_err();
        assert!(
            matches!(err, SuiteError::DegenerateParameter { .. }),
            "{err}"
        );
    }

    #[test]
    fn default_delta_is_sane() {
        let g = inputs::weighted_graph(GraphKind::Road, 500);
        let d = default_delta(&g);
        assert!((1..=255).contains(&d), "delta {d}");
    }

    #[test]
    fn raw_speed_pass_does_not_change_distances() {
        use rpb_parlay::simd::{force_lock, set_forced, KernelImpl};

        let _guard = force_lock();
        let g = inputs::weighted_graph(GraphKind::Rmat, if cfg!(miri) { 60 } else { 2000 });
        let delta = default_delta(&g);
        set_forced(KernelImpl::Scalar);
        let scalar = run_par(&g, 0, delta).expect("sssp");
        set_forced(KernelImpl::Simd);
        let simd = run_par(&g, 0, delta).expect("sssp");
        set_forced(KernelImpl::Auto);
        assert_eq!(scalar, simd);
        assert_eq!(scalar, rpb_graph::seq::dijkstra(&g, 0));
    }

    #[test]
    fn disconnected_vertices_stay_inf() {
        let g = rpb_graph::WeightedGraph::from_edges(4, &[(0, 1, 3)]);
        let d = run_par(&g, 0, 2).expect("sssp");
        assert_eq!(d, vec![0, 3, INF, INF]);
    }
}
