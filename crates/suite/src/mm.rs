//! `mm` — maximal matching (Table 1 row 6).
//!
//! Deterministic reservations over the edge list: edges carry random
//! priorities; each speculative iteration reserves its two endpoints with
//! `write_min` and commits if it holds both — PBBS's `speculative_for`
//! matching, whose result equals the sequential greedy over the priority
//! order.

use std::sync::atomic::{AtomicU8, Ordering};

use rpb_concurrent::reservations::{speculative_for, ReservationStation};
use rpb_fearless::ExecMode;
use rpb_parlay::random::hash64;

use crate::error::SuiteError;

/// Parallel maximal matching; returns a flag per edge of `edges`.
///
/// The priority permutation is derived from edge indices via the PBBS
/// hash, so `run_par` and [`run_seq`] agree exactly.
pub fn run_par(n: usize, edges: &[(u32, u32)], _mode: ExecMode) -> Vec<bool> {
    let order = priority_order(edges.len());
    let station = ReservationStation::new(n);
    let matched: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(0)).collect();
    let in_matching: Vec<AtomicU8> = (0..edges.len()).map(|_| AtomicU8::new(0)).collect();
    speculative_for(
        0..edges.len(),
        4096,
        |i| {
            let (u, v) = edges[order[i]];
            let (u, v) = (u as usize, v as usize);
            if u == v
                || matched[u].load(Ordering::Relaxed) == 1
                || matched[v].load(Ordering::Relaxed) == 1
            {
                return false; // nothing to do
            }
            station.reserve(u, i);
            station.reserve(v, i);
            true
        },
        |i| {
            let (u, v) = edges[order[i]];
            let (u, v) = (u as usize, v as usize);
            if station.holds(u, i) && station.holds(v, i) {
                matched[u].store(1, Ordering::Relaxed);
                matched[v].store(1, Ordering::Relaxed);
                in_matching[order[i]].store(1, Ordering::Relaxed);
                station.check_reset(u, i);
                station.check_reset(v, i);
                true
            } else {
                station.check_reset(u, i);
                station.check_reset(v, i);
                // Done (as a loser) if an endpoint got matched; else retry.
                matched[u].load(Ordering::Relaxed) == 1 || matched[v].load(Ordering::Relaxed) == 1
            }
        },
    );
    in_matching
        .into_iter()
        .map(|f| f.into_inner() == 1)
        .collect()
}

/// Sequential greedy over the same priority order.
pub fn run_seq(n: usize, edges: &[(u32, u32)]) -> Vec<bool> {
    let order = priority_order(edges.len());
    let mut matched = vec![false; n];
    let mut in_matching = vec![false; edges.len()];
    for i in 0..edges.len() {
        let (u, v) = edges[order[i]];
        let (u, v) = (u as usize, v as usize);
        if u != v && !matched[u] && !matched[v] {
            matched[u] = true;
            matched[v] = true;
            in_matching[order[i]] = true;
        }
    }
    in_matching
}

/// Edge processing order: ascending PBBS-hash priority.
fn priority_order(m: usize) -> Vec<usize> {
    let mut keyed: Vec<(u64, u32)> = (0..m as u32).map(|i| (hash64(i as u64), i)).collect();
    rpb_parlay::radix_sort_by_key(&mut keyed, 64, |p| p.0);
    keyed.into_iter().map(|(_, i)| i as usize).collect()
}

/// Checks matching validity and maximality.
pub fn verify(n: usize, edges: &[(u32, u32)], m: &[bool]) -> Result<(), SuiteError> {
    if m.len() != edges.len() {
        return Err(SuiteError::invariant(
            "mm",
            format!("{} flags for {} edges", m.len(), edges.len()),
        ));
    }
    let mut deg = vec![0usize; n];
    for (i, &(u, v)) in edges.iter().enumerate() {
        if m[i] {
            if u == v {
                return Err(SuiteError::invariant(
                    "mm",
                    format!("self-loop {i} matched"),
                ));
            }
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
    }
    if let Some(v) = (0..n).find(|&v| deg[v] > 1) {
        return Err(SuiteError::invariant(
            "mm",
            format!("vertex {v} matched {} times", deg[v]),
        ));
    }
    for (i, &(u, v)) in edges.iter().enumerate() {
        if !m[i] && u != v && deg[u as usize] == 0 && deg[v as usize] == 0 {
            return Err(SuiteError::invariant(
                "mm",
                format!("edge {i} could be added (not maximal)"),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;
    use rpb_graph::GraphKind;

    #[test]
    fn matches_sequential_greedy() {
        for kind in [GraphKind::Rmat, GraphKind::Road] {
            let (n, edges) = inputs::edges(kind, 1500);
            let par = run_par(n, &edges, ExecMode::Checked);
            let seq = run_seq(n, &edges);
            assert_eq!(par, seq, "{kind:?}");
            verify(n, &edges, &par).expect("valid");
        }
    }

    #[test]
    fn path_graph_matching() {
        // Path 0-1-2-3: any maximal matching has >= 1 edge; greedy picks
        // by hash priority.
        let edges = vec![(0u32, 1u32), (1, 2), (2, 3)];
        let m = run_par(4, &edges, ExecMode::Checked);
        verify(4, &edges, &m).expect("valid");
        assert!(m.iter().any(|&b| b));
    }

    #[test]
    fn no_edges() {
        let m = run_par(3, &[], ExecMode::Checked);
        assert!(m.is_empty());
    }
}
