//! `isort` — integer sort (Table 1 row 12).
//!
//! Stable LSD counting sort where each pass's scatter destinations are
//! *materialized* into an offsets array and then written through the
//! selected `SngInd` expression — the most direct exhibit of the paper's
//! Listing 6 trade-off:
//!
//! * [`ExecMode::Unsafe`] — raw-pointer scatter (Listing 6(d)),
//! * [`ExecMode::Checked`] — `par_ind_iter_mut`, paying a uniqueness
//!   check per pass even though counting sort guarantees a permutation
//!   (Listing 6(f)),
//! * [`ExecMode::Sync`] — relaxed atomic stores (Listing 6(e)).

use rayon::prelude::*;

use rpb_fearless::{
    validate_offsets_cached, ExecMode, ParIndProvedExt, SharedMutSlice, UniquenessCheck,
};
use rpb_parlay::scan::scan_inplace_exclusive;

use crate::error::SuiteError;

const RADIX_BITS: u32 = 8;
const BUCKETS: usize = 1 << RADIX_BITS;

/// Parallel integer sort of values `< 2^key_bits`.
pub fn run_par(data: &mut [u64], key_bits: u32, mode: ExecMode) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let passes = key_bits.div_ceil(RADIX_BITS).max(1);
    let mut buf = vec![0u64; n];
    let mut src_is_data = true;
    for pass in 0..passes {
        let shift = pass * RADIX_BITS;
        if src_is_data {
            let dest = destinations(data, shift);
            scatter(&*data, &mut buf, &dest, mode);
        } else {
            let dest = destinations(&buf, shift);
            scatter(&buf, data, &dest, mode);
        }
        src_is_data = !src_is_data;
    }
    if !src_is_data {
        data.copy_from_slice(&buf);
    }
}

/// Computes each element's stable counting-sort destination for the digit
/// at `shift` — per-block histograms, column-major scan, per-block walk.
/// The result is a permutation of `0..n` by construction.
fn destinations(src: &[u64], shift: u32) -> Vec<usize> {
    let n = src.len();
    let nblocks = rayon::current_num_threads().max(1) * 4;
    let block = n.div_ceil(nblocks).max(1);
    let nblocks = n.div_ceil(block);
    let digit = |x: u64| ((x >> shift) & (BUCKETS as u64 - 1)) as usize;
    let mut counts: Vec<usize> = src
        .par_chunks(block)
        .flat_map_iter(|chunk| {
            let mut hist = vec![0usize; BUCKETS];
            for &x in chunk {
                hist[digit(x)] += 1;
            }
            hist.into_iter()
        })
        .collect();
    let mut transposed = vec![0usize; nblocks * BUCKETS];
    for b in 0..nblocks {
        for d in 0..BUCKETS {
            transposed[d * nblocks + b] = counts[b * BUCKETS + d];
        }
    }
    scan_inplace_exclusive(&mut transposed, 0, |a, b| a + b);
    for b in 0..nblocks {
        for d in 0..BUCKETS {
            counts[b * BUCKETS + d] = transposed[d * nblocks + b];
        }
    }
    let mut dest = vec![0usize; n];
    dest.par_chunks_mut(block)
        .zip(src.par_chunks(block))
        .enumerate()
        .for_each(|(b, (dchunk, schunk))| {
            let mut offs = counts[b * BUCKETS..(b + 1) * BUCKETS].to_vec();
            for (slot, &x) in dchunk.iter_mut().zip(schunk) {
                *slot = offs[digit(x)];
                offs[digit(x)] += 1;
            }
        });
    dest
}

/// The `SngInd` write `dst[dest[i]] = src[i]` in the selected mode.
fn scatter(src: &[u64], dst: &mut [u64], dest: &[usize], mode: ExecMode) {
    match mode {
        ExecMode::Unsafe => {
            let view = SharedMutSlice::new(dst);
            src.par_iter().zip(dest.par_iter()).for_each(|(&x, &d)| {
                // SAFETY: counting-sort destinations are a permutation.
                unsafe { view.write(d, x) };
            });
        }
        // Adaptive strategy + a validation proof: each pass validates its
        // fresh destination permutation once (served by the pooled epoch
        // table — no allocation after the first pass) and scatters through
        // the proof.
        ExecMode::Checked => {
            match validate_offsets_cached(dest, dst.len(), UniquenessCheck::Adaptive) {
                Ok(proof) => dst
                    .par_ind_iter_mut_proved(&proof)
                    .zip(src.par_iter())
                    .for_each(|(slot, &x)| *slot = x),
                Err(e) => panic!("isort scatter: {e}"),
            }
        }
        ExecMode::Sync => {
            use std::sync::atomic::Ordering;
            let atomic = rpb_concurrent::atomics::as_atomic_u64(dst);
            src.par_iter().zip(dest.par_iter()).for_each(|(&x, &d)| {
                atomic[d].store(x, Ordering::Relaxed);
            });
        }
    }
}

/// Sequential counting-sort baseline.
pub fn run_seq(data: &mut [u64], key_bits: u32) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let passes = key_bits.div_ceil(RADIX_BITS).max(1);
    let mut buf = vec![0u64; n];
    let mut src_is_data = true;
    for pass in 0..passes {
        let shift = pass * RADIX_BITS;
        let (src, dst): (&[u64], &mut [u64]) = if src_is_data {
            (&*data, &mut buf)
        } else {
            (&buf, data)
        };
        let digit = |x: u64| ((x >> shift) & (BUCKETS as u64 - 1)) as usize;
        let mut counts = vec![0usize; BUCKETS];
        for &x in src.iter() {
            counts[digit(x)] += 1;
        }
        let mut acc = 0;
        for c in counts.iter_mut() {
            let next = acc + *c;
            *c = acc;
            acc = next;
        }
        for &x in src.iter() {
            dst[counts[digit(x)]] = x;
            counts[digit(x)] += 1;
        }
        src_is_data = !src_is_data;
    }
    if !src_is_data {
        data.copy_from_slice(&buf);
    }
}

/// Sort invariant: `got` is ascending and a permutation of `original`
/// (sorting both and comparing — no element lost or invented by the
/// scatter passes).
pub fn verify(original: &[u64], got: &[u64]) -> Result<(), SuiteError> {
    if let Some(i) = (1..got.len()).find(|&i| got[i - 1] > got[i]) {
        return Err(SuiteError::invariant(
            "isort",
            format!("output descends at index {i}"),
        ));
    }
    if got.len() != original.len() {
        return Err(SuiteError::invariant(
            "isort",
            format!("{} elements out, {} in", got.len(), original.len()),
        ));
    }
    let mut want = original.to_vec();
    want.sort_unstable();
    if got != want {
        return Err(SuiteError::invariant(
            "isort",
            "output is not a permutation of the input",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;

    #[test]
    fn all_modes_sort() {
        let input = inputs::exponential(80_000);
        let bits = 64 - (80_000u64).leading_zeros();
        let mut want = input.clone();
        run_seq(&mut want, bits);
        assert!(want.windows(2).all(|w| w[0] <= w[1]));
        for mode in [ExecMode::Unsafe, ExecMode::Checked, ExecMode::Sync] {
            let mut got = input.clone();
            run_par(&mut got, bits, mode);
            assert_eq!(got, want, "{mode}");
        }
    }

    #[test]
    fn odd_pass_count_copies_back() {
        // key_bits = 8 → one pass → result ends in buf and must copy back.
        let mut v: Vec<u64> = (0..20_000)
            .map(|i| (rpb_parlay::random::hash64(i) % 256))
            .collect();
        let mut want = v.clone();
        want.sort_unstable();
        run_par(&mut v, 8, ExecMode::Checked);
        assert_eq!(v, want);
    }

    #[test]
    fn empty_and_single() {
        let mut v: Vec<u64> = vec![];
        run_par(&mut v, 16, ExecMode::Unsafe);
        let mut v = vec![9u64];
        run_par(&mut v, 16, ExecMode::Checked);
        assert_eq!(v, vec![9]);
    }

    #[test]
    fn verify_catches_disorder_and_element_drift() {
        let input = inputs::exponential(5_000);
        let mut got = input.clone();
        run_par(&mut got, 32, ExecMode::Checked);
        verify(&input, &got).expect("clean sort");
        let mut drifted = got.clone();
        drifted[0] = drifted[0].wrapping_add(1);
        assert!(verify(&input, &drifted).is_err(), "element changed");
        let mut short = got.clone();
        short.pop();
        assert!(verify(&input, &short).is_err(), "element dropped");
        let mut unsorted = got;
        let last = unsorted.len() - 1;
        unsorted.swap(0, last);
        assert!(verify(&input, &unsorted).is_err(), "order broken");
    }
}
