//! `msf` via parallel Kruskal with deterministic reservations — PBBS's
//! actual MSF formulation, as an ablation against the Borůvka rounds of
//! [`crate::msf`].
//!
//! Edges are sorted by `(weight, index)` with a parallel radix sort, then
//! processed speculatively in that order: each iteration reserves its two
//! endpoint *roots* in the union-find; holders of both link and claim the
//! edge. Priorities are sorted positions, so the result equals sequential
//! Kruskal exactly — and therefore equals the Borůvka implementation,
//! since distinct tie-broken weights make the MSF unique.

use std::sync::atomic::{AtomicU8, Ordering};

use rpb_concurrent::reservations::{speculative_for, ReservationStation};
use rpb_concurrent::ConcurrentUnionFind;
use rpb_fearless::ExecMode;

/// Parallel filter-Kruskal MSF; returns `(sorted chosen edge indices,
/// total weight)`.
pub fn run_par(n: usize, edges: &[(u32, u32, u32)], _mode: ExecMode) -> (Vec<usize>, u64) {
    let m = edges.len();
    // Sort edge ids by (weight, id) — D&C / regular phase.
    let mut keyed: Vec<(u64, u32)> = edges
        .iter()
        .enumerate()
        .map(|(i, &(_, _, w))| (((w as u64) << 32) | i as u64, i as u32))
        .collect();
    rpb_parlay::radix_sort_by_key(&mut keyed, 64, |p| p.0);
    let sorted: Vec<u32> = keyed.into_iter().map(|(_, i)| i).collect();

    let uf = ConcurrentUnionFind::new(n);
    let station = ReservationStation::new(n);
    let chosen: Vec<AtomicU8> = (0..m).map(|_| AtomicU8::new(0)).collect();
    speculative_for(
        0..m,
        4096,
        |i| {
            let (u, v, _) = edges[sorted[i] as usize];
            let (ru, rv) = (uf.find(u as usize), uf.find(v as usize));
            if ru == rv {
                return false; // already connected: nothing to commit
            }
            station.reserve(ru, i);
            station.reserve(rv, i);
            true
        },
        |i| {
            let (u, v, _) = edges[sorted[i] as usize];
            let (ru, rv) = (uf.find(u as usize), uf.find(v as usize));
            if ru == rv {
                return true; // a same-round winner connected us: done
            }
            if station.holds(ru, i) && station.holds(rv, i) {
                let linked = uf.unite(ru, rv);
                debug_assert!(linked, "reserved roots must link");
                chosen[sorted[i] as usize].store(1, Ordering::Relaxed);
                station.check_reset(ru, i);
                station.check_reset(rv, i);
                true
            } else {
                station.check_reset(ru, i);
                station.check_reset(rv, i);
                false // lost a reservation: retry next round
            }
        },
    );
    let mut out: Vec<usize> = (0..m)
        .filter(|&i| chosen[i].load(Ordering::Relaxed) == 1)
        .collect();
    out.sort_unstable();
    let total = out.iter().map(|&i| edges[i].2 as u64).sum();
    (out, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;
    use rpb_graph::GraphKind;

    #[test]
    fn agrees_with_kruskal_and_boruvka() {
        for kind in [GraphKind::Rmat, GraphKind::Road] {
            let (n, edges) = inputs::weighted_edges(kind, 1000);
            let (spec_edges, spec_w) = run_par(n, &edges, ExecMode::Checked);
            let (kru_edges, kru_w) = crate::msf::run_seq(n, &edges);
            let (bor_edges, bor_w) = crate::msf::run_par(n, &edges, ExecMode::Checked);
            assert_eq!(spec_w, kru_w, "{kind:?} weight vs Kruskal");
            assert_eq!(spec_edges, kru_edges, "{kind:?} edges vs Kruskal");
            assert_eq!(spec_w, bor_w, "{kind:?} weight vs Boruvka");
            assert_eq!(spec_edges, bor_edges, "{kind:?} edges vs Boruvka");
        }
    }

    #[test]
    fn tiny_graph() {
        let edges = vec![(0u32, 1u32, 4u32), (1, 2, 2), (0, 2, 3)];
        let (chosen, total) = run_par(3, &edges, ExecMode::Checked);
        assert_eq!(chosen, vec![1, 2]);
        assert_eq!(total, 5);
    }

    #[test]
    fn empty_edge_list() {
        let (chosen, total) = run_par(5, &[], ExecMode::Checked);
        assert!(chosen.is_empty());
        assert_eq!(total, 0);
    }
}
