//! Named workload builders shared by tests, examples, benches, and the
//! harness. Sizes are parameterized by a single `scale` so the harness can
//! sweep laptop-sized versions of the paper's inputs.

use rpb_fearless::ExecMode;
use rpb_geom::Point;
use rpb_graph::{Graph, GraphKind, WeightedGraph};

/// The `wiki` stand-in text at a given byte length.
pub fn wiki(len: usize) -> Vec<u8> {
    rpb_text::wiki_like_text(len, 0xA11CE)
}

/// A BWT of the `wiki` text (input to the `bw` benchmark).
pub fn wiki_bwt(len: usize) -> Vec<u8> {
    rpb_text::bwt_encode(&wiki(len), ExecMode::Unsafe)
}

/// The `exponential` integer sequence of PBBS (`sort`/`dedup`/`hist`/
/// `isort` input).
pub fn exponential(n: usize) -> Vec<u64> {
    rpb_parlay::seqdata::exponential_u64(n, n as u64, 0xE4B)
}

/// The `kuzmin` point set (`dr` input).
pub fn kuzmin(n: usize) -> Vec<Point> {
    rpb_geom::kuzmin_points(n, 0x4222)
}

/// An unweighted graph of the given Table 2 family.
pub fn graph(kind: GraphKind, n: usize) -> Graph {
    kind.build(n, 0x917A)
}

/// A weighted graph of the given family (weights `1..=255`).
pub fn weighted_graph(kind: GraphKind, n: usize) -> WeightedGraph {
    kind.build_weighted(n, 255, 0x917A)
}

/// The edge list of a graph family (for `mm`, `sf`).
pub fn edges(kind: GraphKind, n: usize) -> (usize, Vec<(u32, u32)>) {
    let g = graph(kind, n);
    (g.num_vertices(), dedup_undirected(&g.to_edges()))
}

/// Weighted edge list (for `msf`).
pub fn weighted_edges(kind: GraphKind, n: usize) -> (usize, Vec<(u32, u32, u32)>) {
    let wg = weighted_graph(kind, n);
    let mut out = Vec::with_capacity(wg.num_arcs() / 2);
    for u in 0..wg.num_vertices() {
        for (v, w) in wg.neighbors(u) {
            if (u as u32) < v {
                out.push((u as u32, v, w));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    (wg.num_vertices(), out)
}

/// Keeps one canonical copy (`u < v`) of each undirected arc pair, and
/// drops self-loops.
fn dedup_undirected(arcs: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut edges: Vec<(u32, u32)> = arcs
        .iter()
        .filter(|&&(u, v)| u != v)
        .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
        .collect();
    edges.sort_unstable();
    edges.dedup();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_lists_are_canonical() {
        let (_, es) = edges(GraphKind::Rmat, 256);
        for w in es.windows(2) {
            assert!(w[0] < w[1], "not sorted/deduped");
        }
        assert!(es.iter().all(|&(u, v)| u < v));
    }

    #[test]
    fn builders_are_deterministic() {
        assert_eq!(wiki(1000), wiki(1000));
        assert_eq!(exponential(100), exponential(100));
    }

    #[test]
    fn weighted_edges_match_graph() {
        let (n, es) = weighted_edges(GraphKind::Road, 100);
        assert!(n >= 100);
        assert!(!es.is_empty());
        assert!(es.iter().all(|&(u, v, w)| u < v && w >= 1));
    }
}
