//! `bw` — Burrows–Wheeler decode (Table 1 row 1).
//!
//! Pipeline: LF mapping by blocked stable counting (`Block` + `Stride`),
//! parallel list ranking over the LF chain (irregular reads), then the
//! output scatter `out[m-1-rank] = bwt[row]` — a `SngInd` write through
//! the rank permutation, expressed per the selected [`ExecMode`].

use rayon::prelude::*;

use rpb_fearless::{
    validate_offsets_cached, ExecMode, ParIndProvedExt, SharedMutSlice, UniquenessCheck,
};
use rpb_parlay::list_rank::{list_order, NIL};
use rpb_text::bwt::{lf_mapping, SENTINEL};

use crate::error::SuiteError;

/// Finds the sentinel row, rejecting inputs that are not the BWT of any
/// text (no sentinel, or more than one).
fn sentinel_pos(bwt: &[u8]) -> Result<usize, SuiteError> {
    match bwt.iter().position(|&c| c == SENTINEL) {
        None => Err(SuiteError::malformed(
            "bw",
            "the sentinel byte is missing from the BWT",
        )),
        Some(p) if bwt[p + 1..].contains(&SENTINEL) => Err(SuiteError::malformed(
            "bw",
            "the sentinel byte occurs more than once in the BWT",
        )),
        Some(p) => Ok(p),
    }
}

/// Parallel BWT decode in the given mode. The input must contain the
/// sentinel byte exactly once; returns the text without sentinel, or a
/// [`SuiteError::MalformedInput`] for byte strings that are not the BWT
/// of any text.
pub fn run_par(bwt: &[u8], mode: ExecMode) -> Result<Vec<u8>, SuiteError> {
    let p0 = sentinel_pos(bwt)?;
    let m = bwt.len();
    if m == 1 {
        return Ok(Vec::new());
    }
    let mut next = lf_mapping(bwt);
    // The LF mapping is a permutation by construction, so some row maps
    // back to the sentinel row; break the cycle there.
    let back = next.par_iter().position_any(|&t| t == p0).ok_or_else(|| {
        SuiteError::malformed("bw", "no row of the LF mapping leads back to the sentinel")
    })?;
    next[back] = NIL;
    // order[k] = the row visited at step k; text index m-1-k.
    let order = list_order(&next, p0);
    if order.len() != m {
        return Err(SuiteError::malformed(
            "bw",
            format!(
                "the LF chain covers {} of {m} rows — not the BWT of any text",
                order.len()
            ),
        ));
    }
    // Scatter: out[m-1-k] = bwt[order[k]]. The offsets m-1-k over k are a
    // permutation (SngInd); we skip k = 0 (the sentinel slot).
    let offsets: Vec<usize> = (1..m).map(|k| m - 1 - k).collect();
    let mut out = vec![0u8; m - 1];
    match mode {
        ExecMode::Unsafe => {
            let view = SharedMutSlice::new(&mut out);
            (1..m).into_par_iter().for_each(|k| {
                // SAFETY: m-1-k unique per k.
                unsafe { view.write(m - 1 - k, bwt[order[k]]) };
            });
        }
        ExecMode::Checked => {
            let proof = validate_offsets_cached(&offsets, out.len(), UniquenessCheck::Adaptive)
                .map_err(|e| {
                    SuiteError::invariant("bw", format!("scatter offsets rejected: {e}"))
                })?;
            out.par_ind_iter_mut_proved(&proof)
                .enumerate()
                .for_each(|(j, slot)| *slot = bwt[order[j + 1]]);
        }
        ExecMode::Sync => {
            use std::sync::atomic::{AtomicU8, Ordering};
            // SAFETY: exclusive borrow as atomics; relaxed stores placate
            // rustc (the paper's Listing 6(e)).
            let atomic: &[AtomicU8] =
                unsafe { std::slice::from_raw_parts(out.as_ptr() as *const AtomicU8, out.len()) };
            (1..m).into_par_iter().for_each(|k| {
                atomic[m - 1 - k].store(bwt[order[k]], Ordering::Relaxed);
            });
        }
    }
    Ok(out)
}

/// Sequential baseline. Validates the sentinel precondition like
/// [`run_par`]; a single-sentinel input that is nevertheless not a real
/// BWT yields an arbitrary byte string, which [`verify`] rejects.
pub fn run_seq(bwt: &[u8]) -> Result<Vec<u8>, SuiteError> {
    sentinel_pos(bwt)?;
    rpb_text::bwt::bwt_decode_seq(bwt).map_err(|e| SuiteError::malformed("bw", e.to_string()))
}

/// Round-trip invariant: `decoded` is the text whose BWT is `bwt`.
///
/// The BWT of a sentinel-terminated text is unique, so re-encoding the
/// decoded text and comparing byte-for-byte is a complete check — any
/// corruption of the decode output changes the re-encoded transform.
pub fn verify(bwt: &[u8], decoded: &[u8]) -> Result<(), SuiteError> {
    let want_len = bwt.len().saturating_sub(1);
    if decoded.len() != want_len {
        return Err(SuiteError::invariant(
            "bw",
            format!("decoded {} bytes, want {want_len}", decoded.len()),
        ));
    }
    if decoded.contains(&SENTINEL) {
        return Err(SuiteError::invariant(
            "bw",
            "decoded text contains the sentinel byte",
        ));
    }
    if rpb_text::bwt_encode(decoded, ExecMode::Checked) != bwt {
        return Err(SuiteError::invariant(
            "bw",
            "re-encoding the decoded text does not reproduce the input BWT",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;

    #[test]
    fn all_modes_round_trip() {
        let text = inputs::wiki(30_000);
        let bwt = rpb_text::bwt_encode(&text, ExecMode::Unsafe);
        for mode in [ExecMode::Unsafe, ExecMode::Checked, ExecMode::Sync] {
            let got = run_par(&bwt, mode).expect("decode");
            assert_eq!(got, text, "{mode}");
            verify(&bwt, &got).expect("round trip");
        }
        assert_eq!(run_seq(&bwt).expect("decode"), text);
    }

    #[test]
    fn tiny_input() {
        let bwt = rpb_text::bwt_encode(b"abracadabra", ExecMode::Checked);
        assert_eq!(
            run_par(&bwt, ExecMode::Checked).expect("decode"),
            b"abracadabra".to_vec()
        );
    }

    #[test]
    fn empty() {
        assert!(run_par(&[SENTINEL], ExecMode::Checked)
            .expect("decode")
            .is_empty());
    }

    #[test]
    fn missing_sentinel_is_a_typed_error() {
        let err = run_par(b"abc", ExecMode::Checked).unwrap_err();
        assert!(matches!(err, SuiteError::MalformedInput { .. }), "{err}");
        assert_eq!(err.benchmark(), "bw");
        let err = run_seq(b"").unwrap_err();
        assert!(matches!(err, SuiteError::MalformedInput { .. }), "{err}");
    }

    #[test]
    fn duplicate_sentinel_is_a_typed_error() {
        let err = run_par(&[1, SENTINEL, 2, SENTINEL], ExecMode::Unsafe).unwrap_err();
        assert!(matches!(err, SuiteError::MalformedInput { .. }), "{err}");
    }

    #[test]
    fn broken_lf_chain_is_a_typed_error() {
        // One sentinel, but the byte multiset cannot close a single LF
        // cycle over all rows: "aa\0a" decodes a 2-cycle + fixed points.
        let bogus = [b'a', b'a', SENTINEL, b'a'];
        match run_par(&bogus, ExecMode::Checked) {
            Err(SuiteError::MalformedInput { .. }) => {}
            Err(e) => panic!("wrong error kind: {e}"),
            // Some near-BWT strings still decode; the round trip must
            // then reject the output.
            Ok(out) => assert!(verify(&bogus, &out).is_err()),
        }
    }

    #[test]
    fn verify_catches_corruption() {
        let text = inputs::wiki(2_000);
        let bwt = rpb_text::bwt_encode(&text, ExecMode::Checked);
        let mut out = run_par(&bwt, ExecMode::Checked).expect("decode");
        verify(&bwt, &out).expect("clean output passes");
        let mid = out.len() / 2;
        out[mid] = if out[mid] == b'z' { b'y' } else { b'z' };
        assert!(verify(&bwt, &out).is_err());
        out.truncate(10);
        assert!(verify(&bwt, &out).is_err());
    }
}
