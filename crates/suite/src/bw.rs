//! `bw` — Burrows–Wheeler decode (Table 1 row 1).
//!
//! Pipeline: LF mapping by blocked stable counting (`Block` + `Stride`),
//! parallel list ranking over the LF chain (irregular reads), then the
//! output scatter `out[m-1-rank] = bwt[row]` — a `SngInd` write through
//! the rank permutation, expressed per the selected [`ExecMode`].

use rayon::prelude::*;

use rpb_fearless::{
    validate_offsets_cached, ExecMode, ParIndProvedExt, SharedMutSlice, UniquenessCheck,
};
use rpb_parlay::list_rank::{list_order, NIL};
use rpb_text::bwt::{lf_mapping, SENTINEL};

/// Parallel BWT decode in the given mode. Input must contain the sentinel
/// byte exactly once; returns the text without sentinel.
pub fn run_par(bwt: &[u8], mode: ExecMode) -> Vec<u8> {
    let m = bwt.len();
    if m <= 1 {
        return Vec::new();
    }
    let lf = lf_mapping(bwt);
    let p0 = bwt
        .iter()
        .position(|&c| c == SENTINEL)
        .expect("bw: sentinel missing");
    let mut next = lf;
    let back = next
        .par_iter()
        .position_any(|&t| t == p0)
        .expect("bw: malformed LF chain");
    next[back] = NIL;
    // order[k] = the row visited at step k; text index m-1-k.
    let order = list_order(&next, p0);
    assert_eq!(order.len(), m, "bw: LF chain does not cover all rows");
    // Scatter: out[m-1-k] = bwt[order[k]]. The offsets m-1-k over k are a
    // permutation (SngInd); we skip k = 0 (the sentinel slot).
    let offsets: Vec<usize> = (1..m).map(|k| m - 1 - k).collect();
    let mut out = vec![0u8; m - 1];
    match mode {
        ExecMode::Unsafe => {
            let view = SharedMutSlice::new(&mut out);
            (1..m).into_par_iter().for_each(|k| {
                // SAFETY: m-1-k unique per k.
                unsafe { view.write(m - 1 - k, bwt[order[k]]) };
            });
        }
        ExecMode::Checked => {
            match validate_offsets_cached(&offsets, out.len(), UniquenessCheck::Adaptive) {
                Ok(proof) => out
                    .par_ind_iter_mut_proved(&proof)
                    .enumerate()
                    .for_each(|(j, slot)| *slot = bwt[order[j + 1]]),
                Err(e) => panic!("bw scatter: {e}"),
            }
        }
        ExecMode::Sync => {
            use std::sync::atomic::{AtomicU8, Ordering};
            // SAFETY: exclusive borrow as atomics; relaxed stores placate
            // rustc (the paper's Listing 6(e)).
            let atomic: &[AtomicU8] =
                unsafe { std::slice::from_raw_parts(out.as_ptr() as *const AtomicU8, out.len()) };
            (1..m).into_par_iter().for_each(|k| {
                atomic[m - 1 - k].store(bwt[order[k]], Ordering::Relaxed);
            });
        }
    }
    out
}

/// Sequential baseline.
pub fn run_seq(bwt: &[u8]) -> Vec<u8> {
    rpb_text::bwt::bwt_decode_seq(bwt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;

    #[test]
    fn all_modes_round_trip() {
        let text = inputs::wiki(30_000);
        let bwt = rpb_text::bwt_encode(&text, ExecMode::Unsafe);
        for mode in [ExecMode::Unsafe, ExecMode::Checked, ExecMode::Sync] {
            assert_eq!(run_par(&bwt, mode), text, "{mode}");
        }
        assert_eq!(run_seq(&bwt), text);
    }

    #[test]
    fn tiny_input() {
        let bwt = rpb_text::bwt_encode(b"abracadabra", ExecMode::Checked);
        assert_eq!(run_par(&bwt, ExecMode::Checked), b"abracadabra".to_vec());
    }

    #[test]
    fn empty() {
        assert!(run_par(&[SENTINEL], ExecMode::Checked).is_empty());
    }
}
