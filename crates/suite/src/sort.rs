//! `sort` — comparison sort (Table 1 row 9).
//!
//! Parallel sample sort. The bucket phase is the `RngInd` pattern: bucket
//! boundaries come from a run-time scan, and each task sorts one
//! contiguous bucket. The mode switch picks the `RngInd` expression:
//!
//! * [`ExecMode::Checked`] — `par_ind_chunks_mut` with its (cheap)
//!   monotonicity check — the configuration the paper recommends and
//!   itself uses for RPB ("we use par_ind_chunks_mut to express RngInd
//!   because its overhead is negligible"),
//! * [`ExecMode::Unsafe`] / [`ExecMode::Sync`] — the `split_at_mut`
//!   carving inside [`rpb_parlay::sample_sort`] (statically safe; there
//!   is no meaningful synchronization variant of bucketing, so `Sync`
//!   aliases the default implementation).

use rayon::prelude::*;

use rpb_fearless::{validate_chunk_offsets_cached, ExecMode, ParIndProvedExt};
use rpb_parlay::random::Random;
use rpb_parlay::scan::scan_inplace_exclusive;
use rpb_parlay::sendptr::SendPtr;

use crate::error::SuiteError;

/// Parallel sort of `u64` keys in the given mode.
pub fn run_par(data: &mut [u64], mode: ExecMode) {
    match mode {
        ExecMode::Checked => checked_sample_sort(data),
        ExecMode::Unsafe | ExecMode::Sync => rpb_parlay::sample_sort(data, |a, b| a.cmp(b)),
    }
}

/// Sequential baseline (`std` unstable sort, the usual C++ `std::sort`
/// stand-in).
pub fn run_seq(data: &mut [u64]) {
    data.sort_unstable();
}

/// Sample sort whose bucket phase goes through `par_ind_chunks_mut`.
fn checked_sample_sort(data: &mut [u64]) {
    let n = data.len();
    if n < 1 << 14 {
        data.sort_unstable();
        return;
    }
    let nbuckets = (((n as f64).sqrt() / 8.0).ceil() as usize).clamp(2, 1024);
    let r = Random::new(0xD1CE);
    let mut sample: Vec<u64> = (0..nbuckets * 8)
        .map(|i| data[(r.ith_rand(i as u64) % n as u64) as usize])
        .collect();
    sample.sort_unstable();
    let pivots: Vec<u64> = (1..nbuckets).map(|i| sample[i * 8]).collect();
    let bucket_of = |x: u64| pivots.partition_point(|&p| p <= x);

    let nblocks = rayon::current_num_threads().max(1) * 4;
    let block = n.div_ceil(nblocks).max(1);
    let nblocks = n.div_ceil(block);
    let ids: Vec<u32> = data.par_iter().map(|&x| bucket_of(x) as u32).collect();
    let mut counts: Vec<usize> = ids
        .par_chunks(block)
        .flat_map_iter(|chunk| {
            let mut hist = vec![0usize; nbuckets];
            for &b in chunk {
                hist[b as usize] += 1;
            }
            hist.into_iter()
        })
        .collect();
    let mut transposed = vec![0usize; nblocks * nbuckets];
    for b in 0..nblocks {
        for d in 0..nbuckets {
            transposed[d * nblocks + b] = counts[b * nbuckets + d];
        }
    }
    scan_inplace_exclusive(&mut transposed, 0, |a, b| a + b);
    // Bucket boundaries for the RngInd phase: monotone by construction.
    let mut bounds: Vec<usize> = (0..nbuckets).map(|d| transposed[d * nblocks]).collect();
    bounds.push(n);
    for b in 0..nblocks {
        for d in 0..nbuckets {
            counts[b * nbuckets + d] = transposed[d * nblocks + b];
        }
    }
    // Scatter into a buffer (scan-proven disjoint destinations).
    let mut buf: Vec<u64> = vec![0; n];
    {
        let buf_ptr = SendPtr::new(buf.as_mut_ptr());
        data.par_chunks(block)
            .zip(ids.par_chunks(block))
            .enumerate()
            .for_each(|(b, (chunk, id_chunk))| {
                let mut offs = counts[b * nbuckets..(b + 1) * nbuckets].to_vec();
                for (&x, &d) in chunk.iter().zip(id_chunk) {
                    // SAFETY: (block, bucket) ranges partition 0..n.
                    unsafe { buf_ptr.write(offs[d as usize], x) };
                    offs[d as usize] += 1;
                }
            });
    }
    // RngInd bucket sort through the paper's checked iterator, with the
    // boundary check hoisted into a proof token (validated once here, and
    // reusable should the bucket phase ever iterate again).
    let proof = match validate_chunk_offsets_cached(&bounds, buf.len()) {
        Ok(proof) => proof,
        Err(e) => panic!("sort buckets: {e}"),
    };
    buf.par_ind_chunks_mut_proved(&proof)
        .for_each(|bucket| bucket.sort_unstable());
    data.copy_from_slice(&buf);
}

/// Checks sortedness and that the result is a permutation of `original`.
pub fn verify(original: &[u64], sorted: &[u64]) -> Result<(), SuiteError> {
    if sorted.windows(2).any(|w| w[0] > w[1]) {
        return Err(SuiteError::invariant("sort", "not sorted"));
    }
    let mut a = original.to_vec();
    a.sort_unstable();
    if a != sorted {
        return Err(SuiteError::invariant(
            "sort",
            "not a permutation of the input",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;

    #[test]
    fn all_modes_sort_exponential_input() {
        let input = inputs::exponential(100_000);
        let mut want = input.clone();
        run_seq(&mut want);
        for mode in [ExecMode::Unsafe, ExecMode::Checked, ExecMode::Sync] {
            let mut got = input.clone();
            run_par(&mut got, mode);
            assert_eq!(got, want, "{mode}");
            verify(&input, &got).expect("valid");
        }
    }

    #[test]
    fn checked_handles_skew() {
        // All-equal keys put everything in one bucket.
        let mut v = vec![42u64; 50_000];
        run_par(&mut v, ExecMode::Checked);
        assert!(v.iter().all(|&x| x == 42));
    }

    #[test]
    fn small_input() {
        let mut v = vec![3u64, 1, 2];
        run_par(&mut v, ExecMode::Checked);
        assert_eq!(v, vec![1, 2, 3]);
    }
}
