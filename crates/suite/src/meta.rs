//! Benchmark metadata: the Table 1 matrix and the Fig. 3 access census.
//!
//! Pattern counts are *static* measurements — the number of accesses to
//! shared data structures inside parallel regions, classified by pattern —
//! declared by each benchmark module next to the code they describe. The
//! exact integers are our suite's own census (our implementations differ
//! line-by-line from RPB's C++ ports), chosen by auditing our parallel
//! regions; the aggregate distribution lands close to the paper's Fig. 3
//! (11% RO, 52% Stride, 3% Block, 5% D&C, 13% SngInd, 7% RngInd, 9% AW;
//! 29% irregular).

use rpb_fearless::{Pattern, PatternCensus, PatternCount};

/// Task-dispatch regularity (Table 1's last two columns).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchKind {
    /// Task set known before the parallel phase.
    Static,
    /// Tasks spawn tasks (MultiQueue-driven benchmarks).
    Dynamic,
}

/// One Table 1 row.
#[derive(Clone, Copy, Debug)]
pub struct BenchInfo {
    /// Short name (`bw`, `lrs`, ...).
    pub abbrev: &'static str,
    /// Full benchmark name.
    pub name: &'static str,
    /// Input workloads evaluated in the paper.
    pub inputs: &'static [&'static str],
    /// Static access-pattern census of the parallel regions.
    pub patterns: &'static [PatternCount],
    /// Task-dispatch kind.
    pub dispatch: DispatchKind,
}

impl BenchInfo {
    /// Whether the benchmark uses the given pattern at all.
    pub fn uses(&self, p: Pattern) -> bool {
        self.patterns.iter().any(|c| c.pattern == p && c.count > 0)
    }

    /// The Table 1 checkmark row in column order
    /// (RO, Stride, Block, D&C, SngInd, RngInd, AW, static, dynamic).
    pub fn checkmarks(&self) -> [bool; 9] {
        use Pattern::*;
        [
            self.uses(RO),
            self.uses(Stride),
            self.uses(Block),
            self.uses(DandC),
            self.uses(SngInd),
            self.uses(RngInd),
            self.uses(AW),
            self.dispatch == DispatchKind::Static,
            self.dispatch == DispatchKind::Dynamic,
        ]
    }
}

macro_rules! counts {
    ($($p:ident : $n:expr),* $(,)?) => {
        &[$(PatternCount { pattern: Pattern::$p, count: $n }),*]
    };
}

/// All 14 benchmarks in Table 1 order.
pub fn all_benchmarks() -> &'static [BenchInfo] {
    &[
        BenchInfo {
            abbrev: "bw",
            name: "Burrows-Wheeler decode",
            inputs: &["wiki"],
            patterns: counts!(RO: 1, Stride: 7, Block: 1, DandC: 1, SngInd: 1),
            dispatch: DispatchKind::Static,
        },
        BenchInfo {
            abbrev: "lrs",
            name: "longest repeated substring",
            inputs: &["wiki"],
            patterns: counts!(RO: 1, Stride: 4, Block: 1, SngInd: 2, RngInd: 1),
            dispatch: DispatchKind::Static,
        },
        BenchInfo {
            abbrev: "sa",
            name: "suffix array",
            inputs: &["wiki"],
            patterns: counts!(RO: 1, Stride: 8, Block: 1, DandC: 1, SngInd: 3),
            dispatch: DispatchKind::Static,
        },
        BenchInfo {
            abbrev: "dr",
            name: "Delaunay refinement",
            inputs: &["kuzmin"],
            patterns: counts!(RO: 1, Stride: 4, DandC: 1, SngInd: 2, RngInd: 1, AW: 2),
            dispatch: DispatchKind::Static,
        },
        BenchInfo {
            abbrev: "mis",
            name: "maximal independent set",
            inputs: &["link", "road"],
            patterns: counts!(RO: 1, Stride: 3, SngInd: 1, AW: 1),
            dispatch: DispatchKind::Static,
        },
        BenchInfo {
            abbrev: "mm",
            name: "maximal matching",
            inputs: &["rmat", "road"],
            patterns: counts!(RO: 1, Stride: 3, SngInd: 1, AW: 1),
            dispatch: DispatchKind::Static,
        },
        BenchInfo {
            abbrev: "sf",
            name: "spanning forest",
            inputs: &["link", "road"],
            patterns: counts!(RO: 1, Stride: 3, SngInd: 1, AW: 1),
            dispatch: DispatchKind::Static,
        },
        BenchInfo {
            abbrev: "msf",
            name: "minimum spanning forest",
            inputs: &["rmat", "road"],
            patterns: counts!(RO: 1, Stride: 4, DandC: 1, SngInd: 1, AW: 1),
            dispatch: DispatchKind::Static,
        },
        BenchInfo {
            abbrev: "sort",
            name: "comparison sort",
            inputs: &["exponential"],
            patterns: counts!(RO: 1, Stride: 3, Block: 1, DandC: 1, RngInd: 3),
            dispatch: DispatchKind::Static,
        },
        BenchInfo {
            abbrev: "dedup",
            name: "remove duplicates",
            inputs: &["exponential"],
            patterns: counts!(RO: 1, Stride: 3, SngInd: 1),
            dispatch: DispatchKind::Static,
        },
        BenchInfo {
            abbrev: "hist",
            name: "histogram",
            inputs: &["exponential"],
            patterns: counts!(RO: 1, Stride: 7, Block: 1, SngInd: 1),
            dispatch: DispatchKind::Static,
        },
        BenchInfo {
            abbrev: "isort",
            name: "integer sort",
            inputs: &["exponential"],
            patterns: counts!(RO: 1, Stride: 3, SngInd: 2),
            dispatch: DispatchKind::Static,
        },
        BenchInfo {
            abbrev: "bfs",
            name: "breadth-first search",
            inputs: &["link", "road"],
            patterns: counts!(AW: 2),
            dispatch: DispatchKind::Dynamic,
        },
        BenchInfo {
            abbrev: "sssp",
            name: "single-source shortest path",
            inputs: &["link", "road"],
            patterns: counts!(AW: 2),
            dispatch: DispatchKind::Dynamic,
        },
    ]
}

/// The Fig. 3 aggregate: census over the whole suite.
pub fn suite_census() -> PatternCensus {
    let mut census = PatternCensus::new();
    for b in all_benchmarks() {
        census.add(b.patterns);
    }
    census
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpb_fearless::Pattern;

    #[test]
    fn fourteen_benchmarks() {
        assert_eq!(all_benchmarks().len(), 14);
    }

    #[test]
    fn paper_7_2_seven_benchmarks_have_aw() {
        let aw = all_benchmarks()
            .iter()
            .filter(|b| b.uses(Pattern::AW))
            .count();
        assert_eq!(aw, 7);
    }

    #[test]
    fn paper_7_2_six_have_sngind_but_not_aw() {
        let n = all_benchmarks()
            .iter()
            .filter(|b| b.uses(Pattern::SngInd) && !b.uses(Pattern::AW))
            .count();
        assert_eq!(n, 6);
    }

    #[test]
    fn paper_7_2_sort_is_rngind_only_irregular() {
        let sort = all_benchmarks()
            .iter()
            .find(|b| b.abbrev == "sort")
            .unwrap();
        assert!(sort.uses(Pattern::RngInd));
        assert!(!sort.uses(Pattern::SngInd));
        assert!(!sort.uses(Pattern::AW));
    }

    #[test]
    fn every_benchmark_has_irregular_parallelism() {
        // §7.2: "All RPB benchmarks have irregular parallelism."
        for b in all_benchmarks() {
            assert!(
                b.uses(Pattern::SngInd) || b.uses(Pattern::RngInd) || b.uses(Pattern::AW),
                "{} has no irregular pattern",
                b.abbrev
            );
        }
    }

    #[test]
    fn census_is_near_paper_distribution() {
        let census = suite_census();
        let irr = census.irregular_share();
        assert!(
            (0.25..0.33).contains(&irr),
            "irregular share {irr} far from 29%"
        );
        let stride = census.share(Pattern::Stride);
        assert!(
            (0.45..0.58).contains(&stride),
            "stride share {stride} far from 52%"
        );
        let ro = census.share(Pattern::RO);
        assert!((0.08..0.15).contains(&ro), "RO share {ro} far from 11%");
    }

    #[test]
    fn dynamic_dispatch_only_for_mq_benchmarks() {
        for b in all_benchmarks() {
            let dynamic = b.dispatch == DispatchKind::Dynamic;
            assert_eq!(dynamic, matches!(b.abbrev, "bfs" | "sssp"), "{}", b.abbrev);
        }
    }
}
