//! Level-synchronous frontier BFS — the classic PBBS/Ligra-style
//! scheduler, as an ablation baseline for the MultiQueue-driven
//! [`crate::bfs`].
//!
//! Each round expands the current frontier in parallel: every frontier
//! vertex tries to claim its undiscovered neighbours with a CAS on the
//! parent array (the *priority update* flavour of `AW`), and the winners
//! form the next frontier. Unlike the MultiQueue version this is
//! label-setting: every vertex is relaxed exactly once, at the cost of a
//! global barrier per level — the trade the paper's Sec. 6 schedulers
//! navigate.

use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

use rpb_graph::Graph;

/// Unreachable marker.
pub const INF: u64 = u64::MAX;

/// Parallel frontier BFS hop distances from `src`.
pub fn run_par(g: &Graph, src: usize) -> Vec<u64> {
    let n = g.num_vertices();
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    dist[src].store(0, Ordering::Relaxed);
    let mut frontier: Vec<u32> = vec![src as u32];
    let mut level = 0u64;
    while !frontier.is_empty() {
        level += 1;
        let dist = &dist;
        frontier = frontier
            .par_iter()
            .flat_map_iter(|&u| {
                g.neighbors(u as usize).iter().filter_map(move |&v| {
                    // Claim v for this level; exactly one parent wins.
                    dist[v as usize]
                        .compare_exchange(INF, level, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                        .then_some(v)
                })
            })
            .collect();
    }
    dist.into_iter().map(|d| d.into_inner()).collect()
}

/// Per-round frontier sizes (for the scheduler-comparison example).
pub fn frontier_profile(g: &Graph, src: usize) -> Vec<usize> {
    let n = g.num_vertices();
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    dist[src].store(0, Ordering::Relaxed);
    let mut frontier: Vec<u32> = vec![src as u32];
    let mut sizes = vec![1usize];
    let mut level = 0u64;
    while !frontier.is_empty() {
        level += 1;
        let dist = &dist;
        frontier = frontier
            .par_iter()
            .flat_map_iter(|&u| {
                g.neighbors(u as usize).iter().filter_map(move |&v| {
                    dist[v as usize]
                        .compare_exchange(INF, level, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                        .then_some(v)
                })
            })
            .collect();
        if !frontier.is_empty() {
            sizes.push(frontier.len());
        }
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;
    use rpb_graph::GraphKind;

    #[test]
    fn matches_sequential_bfs() {
        for kind in [GraphKind::Link, GraphKind::Road, GraphKind::Rmat] {
            let g = inputs::graph(kind, 2000);
            assert_eq!(run_par(&g, 0), rpb_graph::seq::bfs(&g, 0), "{kind:?}");
        }
    }

    #[test]
    fn matches_multiqueue_bfs() {
        let g = inputs::graph(GraphKind::Road, 2000);
        let frontier = run_par(&g, 0);
        let mq = crate::bfs::run_par(&g, 0, 4, rpb_fearless::ExecMode::Sync);
        assert_eq!(frontier, mq);
    }

    #[test]
    fn profile_sums_to_reachable_count() {
        let g = inputs::graph(GraphKind::Road, 2000);
        let profile = frontier_profile(&g, 0);
        let reachable = run_par(&g, 0).iter().filter(|&&d| d != INF).count();
        assert_eq!(profile.iter().sum::<usize>(), reachable);
    }

    #[test]
    fn road_graphs_have_many_levels() {
        // High diameter ⇒ long level profile: the regime where frontier
        // BFS underutilizes and relaxed schedulers shine.
        let road = inputs::graph(GraphKind::Road, 5000);
        let link = inputs::graph(GraphKind::Link, 5000);
        let road_levels = frontier_profile(&road, 0).len();
        let link_levels = frontier_profile(&link, 0).len();
        assert!(
            road_levels > 3 * link_levels,
            "road {road_levels} vs link {link_levels} levels"
        );
    }

    #[test]
    fn isolated_source() {
        let g = rpb_graph::Graph::from_edges(3, &[(1, 2)]);
        assert_eq!(run_par(&g, 0), vec![0, INF, INF]);
    }
}
