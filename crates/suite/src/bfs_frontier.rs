//! Level-synchronous frontier BFS — the classic PBBS/Ligra-style
//! scheduler, as an ablation baseline for the MultiQueue-driven
//! [`crate::bfs`].
//!
//! Each round expands the current frontier in parallel: every frontier
//! vertex tries to claim its undiscovered neighbours with a CAS on the
//! parent array (the *priority update* flavour of `AW`), and the winners
//! form the next frontier. Unlike the MultiQueue version this is
//! label-setting: every vertex is relaxed exactly once, at the cost of a
//! global barrier per level — the trade the paper's Sec. 6 schedulers
//! navigate.
//!
//! Cache-aware raw-speed pass (part of the `simd` feature's dispatch
//! switch): each level partitions the frontier by *edge* counts rather
//! than vertex counts ([`Graph::partition_frontier_by_edges`]), so a
//! power-law hub no longer serializes its level, and software-prefetches
//! the CSR row [`Graph::PREFETCH_DISTANCE`] frontier slots ahead of its
//! expansion ([`rpb_graph::prefetch_active`]). Neither changes which
//! vertex claims which child — distances are identical with the pass
//! forced off via `RPB_FORCE_SCALAR=1`.

use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

use rpb_graph::Graph;

/// Unreachable marker.
pub const INF: u64 = u64::MAX;

/// Expands one BFS level: every neighbour of `frontier` not yet claimed
/// is claimed at `level` (CAS; exactly one parent wins) and returned as
/// the next frontier.
fn expand(g: &Graph, dist: &[AtomicU64], frontier: &[u32], level: u64, prefetch: bool) -> Vec<u32> {
    let ntasks = rayon::current_num_threads().max(1) * 4;
    g.partition_frontier_by_edges(frontier, ntasks)
        .into_par_iter()
        .flat_map_iter(|r| {
            let chunk = &frontier[r];
            chunk.iter().enumerate().flat_map(move |(i, &u)| {
                if prefetch {
                    if let Some(&ahead) = chunk.get(i + Graph::PREFETCH_DISTANCE) {
                        g.prefetch_row(ahead as usize);
                    }
                }
                g.neighbors(u as usize).iter().filter_map(move |&v| {
                    // Claim v for this level; exactly one parent wins.
                    dist[v as usize]
                        .compare_exchange(INF, level, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                        .then_some(v)
                })
            })
        })
        .collect()
}

/// Parallel frontier BFS hop distances from `src`.
pub fn run_par(g: &Graph, src: usize) -> Vec<u64> {
    let n = g.num_vertices();
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    dist[src].store(0, Ordering::Relaxed);
    let prefetch = rpb_graph::prefetch_active();
    let mut frontier: Vec<u32> = vec![src as u32];
    let mut level = 0u64;
    while !frontier.is_empty() {
        level += 1;
        frontier = expand(g, &dist, &frontier, level, prefetch);
    }
    dist.into_iter().map(|d| d.into_inner()).collect()
}

/// Per-round frontier sizes (for the scheduler-comparison example).
pub fn frontier_profile(g: &Graph, src: usize) -> Vec<usize> {
    let n = g.num_vertices();
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    dist[src].store(0, Ordering::Relaxed);
    let prefetch = rpb_graph::prefetch_active();
    let mut frontier: Vec<u32> = vec![src as u32];
    let mut sizes = vec![1usize];
    let mut level = 0u64;
    while !frontier.is_empty() {
        level += 1;
        frontier = expand(g, &dist, &frontier, level, prefetch);
        if !frontier.is_empty() {
            sizes.push(frontier.len());
        }
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;
    use rpb_graph::GraphKind;

    #[test]
    fn matches_sequential_bfs() {
        for kind in [GraphKind::Link, GraphKind::Road, GraphKind::Rmat] {
            let g = inputs::graph(kind, 2000);
            assert_eq!(run_par(&g, 0), rpb_graph::seq::bfs(&g, 0), "{kind:?}");
        }
    }

    #[test]
    fn matches_multiqueue_bfs() {
        let g = inputs::graph(GraphKind::Road, 2000);
        let frontier = run_par(&g, 0);
        let mq = crate::bfs::run_par(&g, 0, 4, rpb_fearless::ExecMode::Sync);
        assert_eq!(frontier, mq);
    }

    #[test]
    fn profile_sums_to_reachable_count() {
        let g = inputs::graph(GraphKind::Road, 2000);
        let profile = frontier_profile(&g, 0);
        let reachable = run_par(&g, 0).iter().filter(|&&d| d != INF).count();
        assert_eq!(profile.iter().sum::<usize>(), reachable);
    }

    #[test]
    fn road_graphs_have_many_levels() {
        // High diameter ⇒ long level profile: the regime where frontier
        // BFS underutilizes and relaxed schedulers shine.
        let road = inputs::graph(GraphKind::Road, 5000);
        let link = inputs::graph(GraphKind::Link, 5000);
        let road_levels = frontier_profile(&road, 0).len();
        let link_levels = frontier_profile(&link, 0).len();
        assert!(
            road_levels > 3 * link_levels,
            "road {road_levels} vs link {link_levels} levels"
        );
    }

    #[test]
    fn isolated_source() {
        let g = rpb_graph::Graph::from_edges(3, &[(1, 2)]);
        assert_eq!(run_par(&g, 0), vec![0, INF, INF]);
    }

    #[test]
    fn raw_speed_pass_does_not_change_distances() {
        use rpb_parlay::simd::{force_lock, set_forced, KernelImpl};

        // Prefetch + edge partitioning must be invisible in the output:
        // forced-scalar and forced-simd runs agree on a hubby graph.
        let _guard = force_lock();
        let g = inputs::graph(GraphKind::Rmat, if cfg!(miri) { 60 } else { 3000 });
        set_forced(KernelImpl::Scalar);
        let scalar = run_par(&g, 0);
        set_forced(KernelImpl::Simd);
        let simd = run_par(&g, 0);
        set_forced(KernelImpl::Auto);
        assert_eq!(scalar, simd);
        assert_eq!(scalar, rpb_graph::seq::bfs(&g, 0));
    }
}
