//! `hist` — histogram (Table 1 row 11).
//!
//! Counting variants matching the paper's Fig. 5(b) discussion:
//!
//! * [`ExecMode::Unsafe`]/[`ExecMode::Checked`] — blocked per-task local
//!   histograms merged with a tree reduction (`Block` + `Stride`; safe,
//!   no synchronization),
//! * [`ExecMode::Sync`] — direct `fetch_add` on shared atomic counters:
//!   "almost zero-cost but scary" per the paper when the bin is a word.
//!   With few buckets the shared counters become a handful of hot cache
//!   lines, so the atomic arm shards them into per-thread stripes folded
//!   after the parallel loop.
//!
//! The paper's headline Fig. 5(b) outlier is the **large-struct** bin:
//! types without atomic support must fall back to `Mutex`es, costing ~4×.
//! [`run_large`] reproduces that variant with a multi-word accumulator
//! ([`LargeBin`]).
//!
//! Raw-speed pass: bucket assignment is `min(x / width, nbuckets - 1)`,
//! and the per-element `u64` division is strength-reduced at construction
//! time to a shift (power-of-two width) or an exact Granlund–Montgomery
//! multiply-shift ([`Bucketer`]). With `--features simd` on an AVX2
//! machine the blocked arm additionally buckets four lanes per iteration
//! into striped count tables (`RPB_FORCE_SCALAR=1` or
//! [`rpb_parlay::simd::set_forced`] pins the scalar path; outputs are
//! differentially pinned equal).
//!
//! A zero bucket count is a degenerate parameter: every entry point
//! returns [`SuiteError::DegenerateParameter`] for it instead of
//! panicking, so the verify matrix reports it as a failed cell.

use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use rpb_fearless::ExecMode;

use crate::error::SuiteError;

/// Number of elements per local-histogram block.
const BLOCK: usize = 1 << 14;

/// Bucket-count ceiling below which the atomic [`ExecMode::Sync`] arm
/// shards its counters into per-thread stripes. Above it the buckets
/// already spread across enough cache lines that plain shared atomics
/// don't serialize.
const SYNC_STRIPE_MAX_BUCKETS: usize = 64;

/// Precomputed equal-width bucket map: `min(x / width, nbuckets - 1)`,
/// with the per-element division strength-reduced at construction time.
#[derive(Clone, Copy, Debug)]
struct Bucketer {
    nbuckets: usize,
    width: u64,
    div: DivKind,
}

/// How `x / width` is evaluated.
#[derive(Clone, Copy, Debug)]
enum DivKind {
    /// `width` is a power of two: plain shift.
    Shift(u32),
    /// Granlund–Montgomery round-up multiply-shift, exact for every
    /// `u64` numerator: `t = mulhi(x, magic)`, then
    /// `(t + ((x - t) >> 1)) >> (shift - 1)`.
    MulShift { magic: u64, shift: u32 },
    /// Hardware division. Only reachable for `nbuckets == 1` (where the
    /// index is 0 regardless): any wider split gives `width <= range/2
    /// < 2^63`, which the multiply-shift covers.
    Plain,
}

impl Bucketer {
    fn new(nbuckets: usize, range: u64) -> Self {
        let width = (range / nbuckets as u64).max(1);
        let div = if width.is_power_of_two() {
            DivKind::Shift(width.trailing_zeros())
        } else if width < 1 << 63 {
            // ceil(log2(width)); non-power-of-two width >= 3 puts it in
            // 2..=63, so the u128 shifts below stay in range.
            let shift = 64 - (width - 1).leading_zeros();
            let magic = (((1u128 << (64 + shift)) + u128::from(width) - 1) / u128::from(width)
                - (1u128 << 64)) as u64;
            DivKind::MulShift { magic, shift }
        } else {
            DivKind::Plain
        };
        Bucketer {
            nbuckets,
            width,
            div,
        }
    }

    /// `x / width` via the precomputed strategy.
    #[inline]
    fn divide(&self, x: u64) -> u64 {
        match self.div {
            DivKind::Shift(s) => x >> s,
            DivKind::MulShift { magic, shift } => {
                let t = ((u128::from(x) * u128::from(magic)) >> 64) as u64;
                // t <= x, so neither the subtraction nor the sum wraps.
                (t + ((x - t) >> 1)) >> (shift - 1)
            }
            DivKind::Plain => x / self.width,
        }
    }

    /// Bucket index of `x` (out-of-range values clamp to the last bucket).
    #[inline]
    fn index(&self, x: u64) -> usize {
        (self.divide(x) as usize).min(self.nbuckets - 1)
    }
}

fn bucketer(nbuckets: usize, range: u64) -> Result<Bucketer, SuiteError> {
    if nbuckets == 0 {
        return Err(SuiteError::degenerate(
            "hist",
            "bucket count must be positive",
        ));
    }
    Ok(Bucketer::new(nbuckets, range))
}

/// One block's bucket counts: four AVX2 lanes per iteration when the
/// vector path is compiled in and enabled, scalar otherwise.
fn block_counts(chunk: &[u64], bucket_of: &Bucketer) -> Vec<u64> {
    let mut local = vec![0u64; bucket_of.nbuckets];
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if bucket_of.nbuckets > 1
        && !matches!(bucket_of.div, DivKind::Plain)
        && rpb_parlay::simd::simd_enabled()
    {
        // SAFETY: `simd_enabled` confirmed AVX2 support at runtime.
        unsafe { avx2::bucket_counts(chunk, bucket_of, &mut local) };
        rpb_obs::metrics::HIST_SIMD_BLOCKS.add(1);
        return local;
    }
    for &x in chunk {
        local[bucket_of.index(x)] += 1;
    }
    local
}

/// Parallel histogram of `data` into `nbuckets` equal-width buckets over
/// `[0, range)`.
pub fn run_par(
    data: &[u64],
    nbuckets: usize,
    range: u64,
    mode: ExecMode,
) -> Result<Vec<u64>, SuiteError> {
    let bucket_of = bucketer(nbuckets, range)?;
    Ok(match mode {
        ExecMode::Unsafe | ExecMode::Checked => {
            // Per-block locals + merge: fearless safe Rust.
            data.par_chunks(BLOCK)
                .map(|chunk| block_counts(chunk, &bucket_of))
                .reduce(
                    || vec![0u64; nbuckets],
                    |mut a, b| {
                        for (s, x) in a.iter_mut().zip(b) {
                            *s += x;
                        }
                        a
                    },
                )
        }
        ExecMode::Sync => {
            let threads = rayon::current_num_threads().max(1);
            if nbuckets < SYNC_STRIPE_MAX_BUCKETS && threads > 1 {
                // Few buckets, many threads: every `fetch_add` lands on
                // the same few cache lines. Shard the counters into one
                // stripe per worker (padded to a cache line so stripes
                // never share one) and fold after the parallel loop.
                let stride = nbuckets.next_multiple_of(8);
                let counts: Vec<AtomicU64> =
                    (0..threads * stride).map(|_| AtomicU64::new(0)).collect();
                data.par_iter().for_each(|&x| {
                    let stripe = rayon::current_thread_index().unwrap_or(0) % threads;
                    counts[stripe * stride + bucket_of.index(x)].fetch_add(1, Ordering::Relaxed);
                });
                let raw: Vec<u64> = counts.into_iter().map(AtomicU64::into_inner).collect();
                (0..nbuckets)
                    .map(|b| (0..threads).map(|s| raw[s * stride + b]).sum())
                    .collect()
            } else {
                let counts: Vec<AtomicU64> = (0..nbuckets).map(|_| AtomicU64::new(0)).collect();
                data.par_iter().for_each(|&x| {
                    counts[bucket_of.index(x)].fetch_add(1, Ordering::Relaxed);
                });
                counts.into_iter().map(AtomicU64::into_inner).collect()
            }
        }
    })
}

/// Sequential baseline.
pub fn run_seq(data: &[u64], nbuckets: usize, range: u64) -> Result<Vec<u64>, SuiteError> {
    let bucket_of = bucketer(nbuckets, range)?;
    let mut counts = vec![0u64; nbuckets];
    for &x in data {
        counts[bucket_of.index(x)] += 1;
    }
    Ok(counts)
}

/// Mass-conservation invariant: one bucket per requested bin, and the
/// counts sum to the element count (every element lands in exactly one
/// bucket — the property the atomic and merge variants must both keep).
pub fn verify(data: &[u64], nbuckets: usize, counts: &[u64]) -> Result<(), SuiteError> {
    if counts.len() != nbuckets {
        return Err(SuiteError::invariant(
            "hist",
            format!("{} buckets returned, want {nbuckets}", counts.len()),
        ));
    }
    let total: u64 = counts.iter().sum();
    if total != data.len() as u64 {
        return Err(SuiteError::invariant(
            "hist",
            format!("counts sum to {total}, want {} elements", data.len()),
        ));
    }
    Ok(())
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    //! AVX2 bucket assignment: four `u64` lanes per iteration through the
    //! same shift / multiply-shift divider the scalar [`Bucketer`] uses,
    //! counting into four striped tables so skewed inputs (the suite's
    //! exponential workload concentrates mass in the low buckets) don't
    //! serialize on store-to-load forwarding of one hot counter.

    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_and_si256, _mm256_loadu_si256, _mm256_mul_epu32,
        _mm256_set1_epi64x, _mm256_srl_epi64, _mm256_srli_epi64, _mm256_storeu_si256,
        _mm256_sub_epi64, _mm_cvtsi32_si128,
    };

    use super::{Bucketer, DivKind};

    /// Adds `chunk`'s bucket counts into `local` (length `nbuckets`,
    /// zeroed by the caller).
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (callers dispatch through
    /// `rpb_parlay::simd::simd_enabled`).
    #[target_feature(enable = "avx2")]
    pub unsafe fn bucket_counts(chunk: &[u64], bucket_of: &Bucketer, local: &mut [u64]) {
        let nb = local.len();
        let top = nb - 1;
        // Four striped count tables: lane k increments stripe k, so a
        // run of hits on one hot bucket updates four independent
        // addresses instead of one dependent chain.
        let mut stripes = vec![0u64; 4 * nb];
        let mut lanes = [0u64; 4];
        let n = chunk.len();
        let mut i = 0;
        let tally = |stripes: &mut [u64], lanes: &[u64; 4]| {
            for (k, &q) in lanes.iter().enumerate() {
                stripes[k * nb + (q as usize).min(top)] += 1;
            }
        };
        match bucket_of.div {
            DivKind::Shift(s) => {
                let count = _mm_cvtsi32_si128(s as i32);
                while i + 4 <= n {
                    // SAFETY: `i + 4 <= n` bounds the 32-byte read.
                    let x = unsafe { _mm256_loadu_si256(chunk.as_ptr().add(i).cast()) };
                    let q = _mm256_srl_epi64(x, count);
                    // SAFETY: `lanes` is a 32-byte local.
                    unsafe { _mm256_storeu_si256(lanes.as_mut_ptr().cast(), q) };
                    tally(&mut stripes, &lanes);
                    i += 4;
                }
            }
            DivKind::MulShift { magic, shift } => {
                let m = _mm256_set1_epi64x(magic as i64);
                let count = _mm_cvtsi32_si128(shift as i32 - 1);
                while i + 4 <= n {
                    // SAFETY: `i + 4 <= n` bounds the 32-byte read.
                    let x = unsafe { _mm256_loadu_si256(chunk.as_ptr().add(i).cast()) };
                    let t = mulhi_epu64(x, m);
                    // Round-up correction, then the final shift:
                    // (t + ((x - t) >> 1)) >> (shift - 1). `t <= x`
                    // per-lane, so the subtraction never wraps.
                    let q = _mm256_srl_epi64(
                        _mm256_add_epi64(t, _mm256_srli_epi64::<1>(_mm256_sub_epi64(x, t))),
                        count,
                    );
                    // SAFETY: `lanes` is a 32-byte local.
                    unsafe { _mm256_storeu_si256(lanes.as_mut_ptr().cast(), q) };
                    tally(&mut stripes, &lanes);
                    i += 4;
                }
            }
            // Never dispatched here (see `block_counts`); leaving `i` at
            // 0 routes everything through the scalar tail regardless.
            DivKind::Plain => {}
        }
        while i < n {
            stripes[bucket_of.index(chunk[i])] += 1;
            i += 1;
        }
        for (bucket, slot) in local.iter_mut().enumerate() {
            *slot += stripes[bucket]
                + stripes[nb + bucket]
                + stripes[2 * nb + bucket]
                + stripes[3 * nb + bucket];
        }
    }

    /// Unsigned 64×64→high-64 multiply per lane, assembled from the
    /// 32×32→64 partial products (AVX2 has no widening 64-bit multiply).
    #[target_feature(enable = "avx2")]
    fn mulhi_epu64(x: __m256i, m: __m256i) -> __m256i {
        let lo32 = _mm256_set1_epi64x(0xFFFF_FFFF);
        let xh = _mm256_srli_epi64::<32>(x);
        let mh = _mm256_srli_epi64::<32>(m);
        let ll = _mm256_mul_epu32(x, m);
        let hl = _mm256_mul_epu32(xh, m);
        let lh = _mm256_mul_epu32(x, mh);
        let hh = _mm256_mul_epu32(xh, mh);
        // Each partial sum stays below 2^64: the products are at most
        // (2^32-1)^2 and the carries below 2^32.
        let carry = _mm256_add_epi64(hl, _mm256_srli_epi64::<32>(ll));
        let mid = _mm256_add_epi64(lh, _mm256_and_si256(carry, lo32));
        _mm256_add_epi64(
            _mm256_add_epi64(hh, _mm256_srli_epi64::<32>(carry)),
            _mm256_srli_epi64::<32>(mid),
        )
    }
}

/// A multi-word accumulator with no atomic equivalent — the "large
/// structs in hist cannot use atomics, requiring Mutexes" case of
/// Sec. 7.4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LargeBin {
    /// Element count.
    pub count: u64,
    /// Sum of values.
    pub sum: u64,
    /// Minimum value (`u64::MAX` when empty).
    pub min: u64,
    /// Maximum value.
    pub max: u64,
    /// Sum of squares (wrapping).
    pub sum_sq: u64,
}

impl Default for LargeBin {
    fn default() -> Self {
        LargeBin {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            sum_sq: 0,
        }
    }
}

impl LargeBin {
    fn add(&mut self, x: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(x);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.sum_sq = self.sum_sq.wrapping_add(x.wrapping_mul(x));
    }

    fn merge(&mut self, o: &LargeBin) {
        self.count += o.count;
        self.sum = self.sum.wrapping_add(o.sum);
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
        self.sum_sq = self.sum_sq.wrapping_add(o.sum_sq);
    }
}

/// Large-struct histogram.
///
/// * non-`Sync` modes: per-block locals + merge,
/// * [`ExecMode::Sync`]: one `Mutex<LargeBin>` per bucket — the 4×
///   configuration of Fig. 5(b).
pub fn run_large(
    data: &[u64],
    nbuckets: usize,
    range: u64,
    mode: ExecMode,
) -> Result<Vec<LargeBin>, SuiteError> {
    let bucket_of = bucketer(nbuckets, range)?;
    Ok(match mode {
        ExecMode::Unsafe | ExecMode::Checked => data
            .par_chunks(BLOCK)
            .map(|chunk| {
                let mut local = vec![LargeBin::default(); nbuckets];
                for &x in chunk {
                    local[bucket_of.index(x)].add(x);
                }
                local
            })
            .reduce(
                || vec![LargeBin::default(); nbuckets],
                |mut a, b| {
                    for (s, x) in a.iter_mut().zip(&b) {
                        s.merge(x);
                    }
                    a
                },
            ),
        ExecMode::Sync => {
            let bins: Vec<Mutex<LargeBin>> = (0..nbuckets)
                .map(|_| Mutex::new(LargeBin::default()))
                .collect();
            data.par_iter().for_each(|&x| {
                bins[bucket_of.index(x)].lock().add(x);
            });
            bins.into_iter().map(|m| m.into_inner()).collect()
        }
    })
}

/// Sequential large-bin baseline.
pub fn run_large_seq(
    data: &[u64],
    nbuckets: usize,
    range: u64,
) -> Result<Vec<LargeBin>, SuiteError> {
    let bucket_of = bucketer(nbuckets, range)?;
    let mut bins = vec![LargeBin::default(); nbuckets];
    for &x in data {
        bins[bucket_of.index(x)].add(x);
    }
    Ok(bins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;

    #[test]
    fn all_modes_match_sequential() {
        let data = inputs::exponential(200_000);
        let range = 200_000;
        let want = run_seq(&data, 256, range).expect("hist");
        assert_eq!(want.iter().sum::<u64>(), data.len() as u64);
        for mode in [ExecMode::Unsafe, ExecMode::Checked, ExecMode::Sync] {
            let got = run_par(&data, 256, range, mode).expect("hist");
            assert_eq!(got, want, "{mode}");
            verify(&data, 256, &got).expect("mass conserved");
        }
    }

    #[test]
    fn large_bins_match_sequential() {
        let data = inputs::exponential(100_000);
        let range = 100_000;
        let want = run_large_seq(&data, 64, range).expect("hist");
        for mode in [ExecMode::Unsafe, ExecMode::Checked, ExecMode::Sync] {
            assert_eq!(
                run_large(&data, 64, range, mode).expect("hist"),
                want,
                "{mode}"
            );
        }
    }

    #[test]
    fn single_bucket_counts_everything() {
        let data = vec![1u64, 2, 3];
        assert_eq!(
            run_par(&data, 1, 10, ExecMode::Sync).expect("hist"),
            vec![3]
        );
    }

    #[test]
    fn out_of_range_values_clamp_to_last_bucket() {
        let data = vec![999u64];
        let h = run_par(&data, 4, 100, ExecMode::Checked).expect("hist");
        assert_eq!(h[3], 1);
    }

    #[test]
    fn empty_input() {
        let h = run_par(&[], 8, 100, ExecMode::Unsafe).expect("hist");
        assert_eq!(h, vec![0; 8]);
    }

    #[test]
    fn zero_buckets_is_a_typed_error() {
        for result in [
            run_par(&[1], 0, 10, ExecMode::Checked).map(|_| ()),
            run_seq(&[1], 0, 10).map(|_| ()),
            run_large(&[1], 0, 10, ExecMode::Sync).map(|_| ()),
            run_large_seq(&[1], 0, 10).map(|_| ()),
        ] {
            let err = result.unwrap_err();
            assert!(
                matches!(err, SuiteError::DegenerateParameter { .. }),
                "{err}"
            );
            assert_eq!(err.benchmark(), "hist");
        }
    }

    #[test]
    fn verify_catches_lost_and_invented_counts() {
        let data = vec![5u64; 100];
        let mut h = run_seq(&data, 4, 10).expect("hist");
        verify(&data, 4, &h).expect("clean");
        h[0] += 1;
        assert!(verify(&data, 4, &h).is_err());
        h[0] -= 2;
        assert!(verify(&data, 4, &h).is_err());
        assert!(verify(&data, 3, &run_seq(&data, 4, 10).expect("hist")).is_err());
    }

    #[test]
    fn bucketer_strength_reduction_matches_division_on_edges() {
        // Deterministic sweep (Miri-friendly): widths around powers of
        // two exercise both the shift and multiply-shift dividers,
        // values span the full u64 range.
        let mut widths = vec![1u64, 2, 3, 5, 7, 100];
        for p in [1u32, 2, 7, 31, 32, 62] {
            let w = 1u64 << p;
            widths.extend([w - 1, w, w + 1]);
        }
        for &width in &widths {
            for nbuckets in [1usize, 2, 3, 256] {
                let range = width.saturating_mul(nbuckets as u64);
                let b = Bucketer::new(nbuckets, range);
                for x in [
                    0u64,
                    1,
                    width.saturating_sub(1),
                    width,
                    width.saturating_add(1),
                    u64::MAX - 1,
                    u64::MAX,
                ] {
                    assert_eq!(b.divide(x), x / b.width, "width {width} x {x}");
                    assert_eq!(
                        b.index(x),
                        ((x / b.width) as usize).min(nbuckets - 1),
                        "width {width} nbuckets {nbuckets} x {x}"
                    );
                }
            }
        }
        // Largest multiply-shift width: 2^63 - 1 (shift lands on 63).
        let b = Bucketer::new(2, u64::MAX - 1);
        assert_eq!(b.width, (1u64 << 63) - 1);
        for x in [0, b.width - 1, b.width, b.width + 1, u64::MAX] {
            assert_eq!(b.divide(x), x / b.width, "x {x}");
        }
        // Hardware-division fallback: a single bucket with a huge
        // non-power-of-two width.
        let plain = Bucketer::new(1, u64::MAX);
        assert!(matches!(plain.div, DivKind::Plain));
        for x in [0, 1, u64::MAX - 1, u64::MAX] {
            assert_eq!(plain.divide(x), x / plain.width);
            assert_eq!(plain.index(x), 0);
        }
    }

    #[test]
    fn sync_striping_matches_sequential_on_hot_buckets() {
        // Every element lands in bucket 0 of a tiny bucket array — the
        // contention case the striped Sync arm shards. The fold must
        // reproduce the sequential counts exactly.
        let n = if cfg!(miri) { 300 } else { 100_000 };
        let hot = vec![3u64; n];
        for nbuckets in [1usize, 2, 7, 63] {
            let want = run_seq(&hot, nbuckets, 1_000).expect("hist");
            let got = run_par(&hot, nbuckets, 1_000, ExecMode::Sync).expect("hist");
            assert_eq!(got, want, "nbuckets {nbuckets}");
            assert_eq!(got[0], n as u64);
        }
        // Mixed occupancy below the striping threshold.
        let data = inputs::exponential(n);
        let want = run_seq(&data, 16, n as u64).expect("hist");
        assert_eq!(
            run_par(&data, 16, n as u64, ExecMode::Sync).expect("hist"),
            want
        );
    }

    #[test]
    fn simd_and_scalar_bucket_counts_agree() {
        use rpb_parlay::simd::{force_lock, set_forced, KernelImpl};

        let both = |data: &[u64], nbuckets: usize, range: u64| {
            set_forced(KernelImpl::Scalar);
            let scalar = run_par(data, nbuckets, range, ExecMode::Unsafe);
            set_forced(KernelImpl::Simd);
            let simd = run_par(data, nbuckets, range, ExecMode::Unsafe);
            set_forced(KernelImpl::Auto);
            assert_eq!(
                scalar.expect("hist"),
                simd.expect("hist"),
                "nbuckets {nbuckets} range {range}"
            );
        };

        let _guard = force_lock();
        let n = if cfg!(miri) { 130 } else { 3 * BLOCK + 17 };
        let data = inputs::exponential(n);
        for (nbuckets, range) in [
            (256usize, n as u64), // multiply-shift divider
            (7, n as u64),
            (2, u64::MAX - 1), // shift = 63
            (64, 64),          // width 1 (shift divider)
            (16, 4096),        // pow2 width, exercises the clamp
        ] {
            both(&data, nbuckets, range);
        }
        // Full-range values stress the vector mulhi partial products and
        // a remainder tail that isn't a multiple of the lane width.
        let mut extreme = vec![0u64, 1, 2, u64::MAX, u64::MAX - 1, u64::MAX / 3];
        extreme.extend((0..64).map(|p| 1u64 << p));
        extreme.extend((1..40).map(|i| u64::MAX - i));
        for (nbuckets, range) in [(97usize, u64::MAX), (1024, u64::MAX / 7), (5, 1u64 << 40)] {
            both(&extreme, nbuckets, range);
        }
    }

    #[cfg(not(miri))]
    mod divider_props {
        use super::super::Bucketer;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn strength_reduction_equals_division(
                x in proptest::num::u64::ANY,
                nbuckets in 1usize..=4096,
                range in proptest::num::u64::ANY,
            ) {
                let b = Bucketer::new(nbuckets, range);
                prop_assert_eq!(b.divide(x), x / b.width);
                prop_assert_eq!(
                    b.index(x),
                    ((x / b.width) as usize).min(nbuckets - 1)
                );
            }
        }
    }
}
