//! `hist` — histogram (Table 1 row 11).
//!
//! Counting variants matching the paper's Fig. 5(b) discussion:
//!
//! * [`ExecMode::Unsafe`]/[`ExecMode::Checked`] — blocked per-task local
//!   histograms merged with a tree reduction (`Block` + `Stride`; safe,
//!   no synchronization),
//! * [`ExecMode::Sync`] — direct `fetch_add` on shared atomic counters:
//!   "almost zero-cost but scary" per the paper when the bin is a word.
//!
//! The paper's headline Fig. 5(b) outlier is the **large-struct** bin:
//! types without atomic support must fall back to `Mutex`es, costing ~4×.
//! [`run_large`] reproduces that variant with a multi-word accumulator
//! ([`LargeBin`]).
//!
//! A zero bucket count is a degenerate parameter: every entry point
//! returns [`SuiteError::DegenerateParameter`] for it instead of
//! panicking, so the verify matrix reports it as a failed cell.

use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use rpb_fearless::ExecMode;

use crate::error::SuiteError;

/// Number of elements per local-histogram block.
const BLOCK: usize = 1 << 14;

/// Parallel histogram of `data` into `nbuckets` equal-width buckets over
/// `[0, range)`.
pub fn run_par(
    data: &[u64],
    nbuckets: usize,
    range: u64,
    mode: ExecMode,
) -> Result<Vec<u64>, SuiteError> {
    let bucket_of = bucketer(nbuckets, range)?;
    Ok(match mode {
        ExecMode::Unsafe | ExecMode::Checked => {
            // Per-block locals + merge: fearless safe Rust.
            data.par_chunks(BLOCK)
                .map(|chunk| {
                    let mut local = vec![0u64; nbuckets];
                    for &x in chunk {
                        local[bucket_of(x)] += 1;
                    }
                    local
                })
                .reduce(
                    || vec![0u64; nbuckets],
                    |mut a, b| {
                        for (s, x) in a.iter_mut().zip(b) {
                            *s += x;
                        }
                        a
                    },
                )
        }
        ExecMode::Sync => {
            let counts: Vec<AtomicU64> = (0..nbuckets).map(|_| AtomicU64::new(0)).collect();
            data.par_iter().for_each(|&x| {
                counts[bucket_of(x)].fetch_add(1, Ordering::Relaxed);
            });
            counts.into_iter().map(|c| c.into_inner()).collect()
        }
    })
}

/// Sequential baseline.
pub fn run_seq(data: &[u64], nbuckets: usize, range: u64) -> Result<Vec<u64>, SuiteError> {
    let bucket_of = bucketer(nbuckets, range)?;
    let mut counts = vec![0u64; nbuckets];
    for &x in data {
        counts[bucket_of(x)] += 1;
    }
    Ok(counts)
}

/// Mass-conservation invariant: one bucket per requested bin, and the
/// counts sum to the element count (every element lands in exactly one
/// bucket — the property the atomic and merge variants must both keep).
pub fn verify(data: &[u64], nbuckets: usize, counts: &[u64]) -> Result<(), SuiteError> {
    if counts.len() != nbuckets {
        return Err(SuiteError::invariant(
            "hist",
            format!("{} buckets returned, want {nbuckets}", counts.len()),
        ));
    }
    let total: u64 = counts.iter().sum();
    if total != data.len() as u64 {
        return Err(SuiteError::invariant(
            "hist",
            format!("counts sum to {total}, want {} elements", data.len()),
        ));
    }
    Ok(())
}

fn bucketer(nbuckets: usize, range: u64) -> Result<impl Fn(u64) -> usize, SuiteError> {
    if nbuckets == 0 {
        return Err(SuiteError::degenerate(
            "hist",
            "bucket count must be positive",
        ));
    }
    let width = (range / nbuckets as u64).max(1);
    Ok(move |x: u64| ((x / width) as usize).min(nbuckets - 1))
}

/// A multi-word accumulator with no atomic equivalent — the "large
/// structs in hist cannot use atomics, requiring Mutexes" case of
/// Sec. 7.4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LargeBin {
    /// Element count.
    pub count: u64,
    /// Sum of values.
    pub sum: u64,
    /// Minimum value (`u64::MAX` when empty).
    pub min: u64,
    /// Maximum value.
    pub max: u64,
    /// Sum of squares (wrapping).
    pub sum_sq: u64,
}

impl Default for LargeBin {
    fn default() -> Self {
        LargeBin {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            sum_sq: 0,
        }
    }
}

impl LargeBin {
    fn add(&mut self, x: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(x);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.sum_sq = self.sum_sq.wrapping_add(x.wrapping_mul(x));
    }

    fn merge(&mut self, o: &LargeBin) {
        self.count += o.count;
        self.sum = self.sum.wrapping_add(o.sum);
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
        self.sum_sq = self.sum_sq.wrapping_add(o.sum_sq);
    }
}

/// Large-struct histogram.
///
/// * non-`Sync` modes: per-block locals + merge,
/// * [`ExecMode::Sync`]: one `Mutex<LargeBin>` per bucket — the 4×
///   configuration of Fig. 5(b).
pub fn run_large(
    data: &[u64],
    nbuckets: usize,
    range: u64,
    mode: ExecMode,
) -> Result<Vec<LargeBin>, SuiteError> {
    let bucket_of = bucketer(nbuckets, range)?;
    Ok(match mode {
        ExecMode::Unsafe | ExecMode::Checked => data
            .par_chunks(BLOCK)
            .map(|chunk| {
                let mut local = vec![LargeBin::default(); nbuckets];
                for &x in chunk {
                    local[bucket_of(x)].add(x);
                }
                local
            })
            .reduce(
                || vec![LargeBin::default(); nbuckets],
                |mut a, b| {
                    for (s, x) in a.iter_mut().zip(&b) {
                        s.merge(x);
                    }
                    a
                },
            ),
        ExecMode::Sync => {
            let bins: Vec<Mutex<LargeBin>> = (0..nbuckets)
                .map(|_| Mutex::new(LargeBin::default()))
                .collect();
            data.par_iter().for_each(|&x| {
                bins[bucket_of(x)].lock().add(x);
            });
            bins.into_iter().map(|m| m.into_inner()).collect()
        }
    })
}

/// Sequential large-bin baseline.
pub fn run_large_seq(
    data: &[u64],
    nbuckets: usize,
    range: u64,
) -> Result<Vec<LargeBin>, SuiteError> {
    let bucket_of = bucketer(nbuckets, range)?;
    let mut bins = vec![LargeBin::default(); nbuckets];
    for &x in data {
        bins[bucket_of(x)].add(x);
    }
    Ok(bins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;

    #[test]
    fn all_modes_match_sequential() {
        let data = inputs::exponential(200_000);
        let range = 200_000;
        let want = run_seq(&data, 256, range).expect("hist");
        assert_eq!(want.iter().sum::<u64>(), data.len() as u64);
        for mode in [ExecMode::Unsafe, ExecMode::Checked, ExecMode::Sync] {
            let got = run_par(&data, 256, range, mode).expect("hist");
            assert_eq!(got, want, "{mode}");
            verify(&data, 256, &got).expect("mass conserved");
        }
    }

    #[test]
    fn large_bins_match_sequential() {
        let data = inputs::exponential(100_000);
        let range = 100_000;
        let want = run_large_seq(&data, 64, range).expect("hist");
        for mode in [ExecMode::Unsafe, ExecMode::Checked, ExecMode::Sync] {
            assert_eq!(
                run_large(&data, 64, range, mode).expect("hist"),
                want,
                "{mode}"
            );
        }
    }

    #[test]
    fn single_bucket_counts_everything() {
        let data = vec![1u64, 2, 3];
        assert_eq!(
            run_par(&data, 1, 10, ExecMode::Sync).expect("hist"),
            vec![3]
        );
    }

    #[test]
    fn out_of_range_values_clamp_to_last_bucket() {
        let data = vec![999u64];
        let h = run_par(&data, 4, 100, ExecMode::Checked).expect("hist");
        assert_eq!(h[3], 1);
    }

    #[test]
    fn empty_input() {
        let h = run_par(&[], 8, 100, ExecMode::Unsafe).expect("hist");
        assert_eq!(h, vec![0; 8]);
    }

    #[test]
    fn zero_buckets_is_a_typed_error() {
        for result in [
            run_par(&[1], 0, 10, ExecMode::Checked).map(|_| ()),
            run_seq(&[1], 0, 10).map(|_| ()),
            run_large(&[1], 0, 10, ExecMode::Sync).map(|_| ()),
            run_large_seq(&[1], 0, 10).map(|_| ()),
        ] {
            let err = result.unwrap_err();
            assert!(
                matches!(err, SuiteError::DegenerateParameter { .. }),
                "{err}"
            );
            assert_eq!(err.benchmark(), "hist");
        }
    }

    #[test]
    fn verify_catches_lost_and_invented_counts() {
        let data = vec![5u64; 100];
        let mut h = run_seq(&data, 4, 10).expect("hist");
        verify(&data, 4, &h).expect("clean");
        h[0] += 1;
        assert!(verify(&data, 4, &h).is_err());
        h[0] -= 2;
        assert!(verify(&data, 4, &h).is_err());
        assert!(verify(&data, 3, &run_seq(&data, 4, 10).expect("hist")).is_err());
    }
}
