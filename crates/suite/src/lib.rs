//! # rpb-suite
//!
//! The 14 Rust Parallel Benchmarks (RPB) of *"When Is Parallelism Fearless
//! and Zero-Cost with Rust?"* (SPAA '24), each with switches to toggle
//! unsafe parallel features ([`rpb_fearless::ExecMode`]):
//!
//! | Abbrev | Benchmark | Module |
//! |---|---|---|
//! | `bw` | Burrows–Wheeler decode | [`bw`] |
//! | `lrs` | longest repeated substring | [`lrs`] |
//! | `sa` | suffix array | [`sa`] |
//! | `dr` | Delaunay refinement | [`dr`] |
//! | `mis` | maximal independent set | [`mis`] |
//! | `mm` | maximal matching | [`mm`] |
//! | `sf` | spanning forest | [`sf`] |
//! | `msf` | minimum spanning forest | [`msf`] |
//! | `sort` | comparison (sample) sort | [`sort`] |
//! | `dedup` | remove duplicates | [`dedup`] |
//! | `hist` | histogram | [`hist`] |
//! | `isort` | integer sort | [`isort`] |
//! | `bfs` | breadth-first search (MultiQueue) | [`bfs`] |
//! | `sssp` | single-source shortest paths (MultiQueue) | [`sssp`] |
//!
//! Every module provides a parallel implementation parameterized by
//! [`rpb_fearless::ExecMode`], a sequential baseline, and declares its
//! static access-pattern census ([`meta`], Table 1 / Fig. 3).
//!
//! Ablation variants (extensions beyond the paper's minimum):
//! [`bfs_frontier`] (level-synchronous BFS), [`sssp_delta`]
//! (delta-stepping), [`mis_spec`] (MIS via `speculative_for`), and
//! [`msf_kruskal`] (parallel filter-Kruskal) — each cross-validated
//! against its sibling implementation.
//!
//! Streaming variants ([`streaming`]) rebuild `hist`, `dedup`, and
//! `bfs` as chunked pipelines over the `rpb-pipeline` skeletons, with
//! bounded in-flight memory, and are differentially verified against
//! the batch implementations here (`rpb verify --streaming`).
//!
//! The [`verify`] module ties it together: every benchmark gets a
//! sequential oracle, a structural invariant checker, and cross-mode
//! output comparison (with explicit canonicalization where several
//! answers are legal), surfacing failures as typed [`SuiteError`]s.

pub mod bfs;
pub mod bfs_frontier;
pub mod bw;
pub mod dedup;
pub mod dr;
pub mod error;
pub mod hist;
pub mod inputs;
pub mod isort;
pub mod lrs;
pub mod meta;
pub mod mis;
pub mod mis_spec;
pub mod mm;
pub mod msf;
pub mod msf_kruskal;
pub mod sa;
pub mod scale;
pub mod sf;
pub mod sort;
pub mod sssp;
pub mod sssp_delta;
pub mod streaming;
pub mod verify;

pub use error::SuiteError;
pub use meta::{all_benchmarks, BenchInfo};
pub use scale::Scale;
pub use streaming::{verify_streaming, StreamConfig, STREAMING_BENCHES};
pub use verify::{verify_pair, SuiteInputs, SUITE_BENCHES};
