//! `sssp` — single-source shortest paths over a MultiQueue (Table 1
//! row 14).
//!
//! Relaxed-priority Dijkstra: identical worker structure to [`crate::bfs`]
//! but with weighted relaxations. Because the MultiQueue only
//! approximates priority order, the algorithm is label-correcting — the
//! classic trade of wasted re-relaxations for scalable scheduling
//! (Postnikova et al., PPoPP'22).

use std::sync::atomic::{AtomicU64, Ordering};

use rpb_concurrent::write_min_u64;
use rpb_fearless::ExecMode;
use rpb_graph::WeightedGraph;
use rpb_multiqueue::execute;

/// Unreachable marker.
pub const INF: u64 = u64::MAX;

/// Parallel MQ-driven shortest-path distances from `src`.
pub fn run_par(g: &WeightedGraph, src: usize, threads: usize, _mode: ExecMode) -> Vec<u64> {
    let n = g.num_vertices();
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    dist[src].store(0, Ordering::Relaxed);
    execute(
        threads,
        2 * threads.max(1),
        vec![(0u64, src as u32)],
        |d, v, h| {
            let v = v as usize;
            if d > dist[v].load(Ordering::Relaxed) {
                return; // stale
            }
            for (w, wt) in g.neighbors(v) {
                let nd = d + wt as u64;
                if write_min_u64(&dist[w as usize], nd) {
                    h.push(nd, w);
                }
            }
        },
    );
    dist.into_iter().map(|d| d.into_inner()).collect()
}

/// Sequential Dijkstra baseline.
pub fn run_seq(g: &WeightedGraph, src: usize) -> Vec<u64> {
    rpb_graph::seq::dijkstra(g, src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;
    use rpb_graph::GraphKind;

    #[test]
    fn matches_dijkstra() {
        for kind in [GraphKind::Link, GraphKind::Road] {
            let g = inputs::weighted_graph(kind, 1500);
            let want = run_seq(&g, 0);
            for threads in [1, 4] {
                let got = run_par(&g, 0, threads, ExecMode::Sync);
                assert_eq!(got, want, "{kind:?} at {threads} threads");
            }
        }
    }

    #[test]
    fn weighted_diamond_takes_light_path() {
        let g = rpb_graph::WeightedGraph::from_edges(
            4,
            &[(0, 1, 1), (1, 3, 1), (0, 2, 10), (2, 3, 10), (0, 3, 5)],
        );
        let d = run_par(&g, 0, 2, ExecMode::Sync);
        assert_eq!(d[3], 2);
    }

    #[test]
    fn disconnected_vertex() {
        let g = rpb_graph::WeightedGraph::from_edges(3, &[(0, 1, 7)]);
        let d = run_par(&g, 0, 2, ExecMode::Sync);
        assert_eq!(d, vec![0, 7, INF]);
    }
}
