//! `sssp` — single-source shortest paths over a MultiQueue (Table 1
//! row 14).
//!
//! Relaxed-priority Dijkstra: identical worker structure to [`crate::bfs`]
//! but with weighted relaxations. Because the MultiQueue only
//! approximates priority order, the algorithm is label-correcting — the
//! classic trade of wasted re-relaxations for scalable scheduling
//! (Postnikova et al., PPoPP'22).

use std::sync::atomic::{AtomicU64, Ordering};

use rpb_concurrent::write_min_u64;
use rpb_fearless::ExecMode;
use rpb_graph::WeightedGraph;
use rpb_multiqueue::execute_on;
use rpb_parlay::exec::{default_backend, BackendKind};

use crate::error::SuiteError;

/// Unreachable marker.
pub const INF: u64 = u64::MAX;

/// Parallel MQ-driven shortest-path distances from `src`, on the
/// process-default backend (see [`run_par_on`]).
pub fn run_par(g: &WeightedGraph, src: usize, threads: usize, mode: ExecMode) -> Vec<u64> {
    run_par_on(default_backend(), g, src, threads, mode)
}

/// [`run_par`] with an explicit scheduling backend for the MQ workers —
/// same contract as [`crate::bfs::run_par_on`].
pub fn run_par_on(
    backend: BackendKind,
    g: &WeightedGraph,
    src: usize,
    threads: usize,
    _mode: ExecMode,
) -> Vec<u64> {
    let n = g.num_vertices();
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    dist[src].store(0, Ordering::Relaxed);
    execute_on(
        backend,
        threads,
        2 * threads.max(1),
        vec![(0u64, src as u32)],
        |d, v, h| {
            let v = v as usize;
            if d > dist[v].load(Ordering::Relaxed) {
                return; // stale
            }
            for (w, wt) in g.neighbors(v) {
                let nd = d + wt as u64;
                if write_min_u64(&dist[w as usize], nd) {
                    h.push(nd, w);
                }
            }
        },
    );
    dist.into_iter().map(|d| d.into_inner()).collect()
}

/// Sequential Dijkstra baseline.
pub fn run_seq(g: &WeightedGraph, src: usize) -> Vec<u64> {
    rpb_graph::seq::dijkstra(g, src)
}

/// Distance-certificate invariant: `dist` is exactly the shortest-path
/// distance from `src` — the weighted analogue of [`crate::bfs::verify`].
///
/// * `dist[src] == 0`;
/// * *triangle inequality* — no arc `(u, v, w)` with finite `dist[u]` is
///   relaxable (`dist[v] <= dist[u] + w`), so no entry undershoots the
///   claim of some path;
/// * *tight-parent witness* — every finite non-source `v` has an in-arc
///   with `dist[u] + w == dist[v]`. Witness parents have strictly
///   smaller labels (weights are positive), so following them reaches
///   the unique zero-label vertex `src`, exhibiting a real path of total
///   weight `dist[v]`.
///
/// The two directions pin every finite label to the true distance, and
/// the witness rule rejects fabricated finite labels on unreachable
/// vertices.
pub fn verify(g: &WeightedGraph, src: usize, dist: &[u64]) -> Result<(), SuiteError> {
    let n = g.num_vertices();
    if dist.len() != n {
        return Err(SuiteError::invariant(
            "sssp",
            format!("{} distances for {n} vertices", dist.len()),
        ));
    }
    if src >= n {
        return Err(SuiteError::malformed(
            "sssp",
            format!("source {src} out of range for {n} vertices"),
        ));
    }
    if dist[src] != 0 {
        return Err(SuiteError::invariant(
            "sssp",
            format!("dist[src] = {} (want 0)", dist[src]),
        ));
    }
    let mut has_parent = vec![false; n];
    for u in 0..n {
        let du = dist[u];
        if du == INF {
            continue;
        }
        for (v, w) in g.neighbors(u) {
            let nd = du.saturating_add(w as u64);
            let dv = dist[v as usize];
            if dv > nd {
                return Err(SuiteError::invariant(
                    "sssp",
                    format!("arc ({u}, {v}, {w}) relaxable: {dv} > {du} + {w}"),
                ));
            }
            if dv == nd {
                has_parent[v as usize] = true;
            }
        }
    }
    for v in 0..n {
        if v != src && dist[v] != INF && !has_parent[v] {
            return Err(SuiteError::invariant(
                "sssp",
                format!("vertex {v} at distance {} has no tight in-arc", dist[v]),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;
    use rpb_graph::GraphKind;

    #[test]
    fn matches_dijkstra() {
        for kind in [GraphKind::Link, GraphKind::Road] {
            let g = inputs::weighted_graph(kind, 1500);
            let want = run_seq(&g, 0);
            for threads in [1, 4] {
                let got = run_par(&g, 0, threads, ExecMode::Sync);
                assert_eq!(got, want, "{kind:?} at {threads} threads");
            }
        }
    }

    #[test]
    fn weighted_diamond_takes_light_path() {
        let g = rpb_graph::WeightedGraph::from_edges(
            4,
            &[(0, 1, 1), (1, 3, 1), (0, 2, 10), (2, 3, 10), (0, 3, 5)],
        );
        let d = run_par(&g, 0, 2, ExecMode::Sync);
        assert_eq!(d[3], 2);
    }

    #[test]
    fn disconnected_vertex() {
        let g = rpb_graph::WeightedGraph::from_edges(3, &[(0, 1, 7)]);
        let d = run_par(&g, 0, 2, ExecMode::Sync);
        assert_eq!(d, vec![0, 7, INF]);
    }

    #[test]
    fn verify_certifies_and_rejects() {
        let g = inputs::weighted_graph(GraphKind::Road, 700);
        let mut d = run_par(&g, 0, 2, ExecMode::Sync);
        verify(&g, 0, &d).expect("clean distances certify");
        if let Some(v) = (1..d.len()).find(|&v| d[v] != INF && d[v] > 0) {
            let saved = d[v];
            // Too close: no in-arc is tight at the fabricated label.
            d[v] = saved - 1;
            assert!(verify(&g, 0, &d).is_err(), "vertex {v} pulled closer");
            // Too far: the true parent's arc becomes relaxable.
            d[v] = saved + 1;
            assert!(verify(&g, 0, &d).is_err(), "vertex {v} pushed out");
            d[v] = saved;
        }
        d[0] = 3;
        assert!(verify(&g, 0, &d).is_err(), "nonzero source distance");
        // Fabricated finite label on an unreachable vertex.
        let iso = rpb_graph::WeightedGraph::from_edges(3, &[(0, 1, 7)]);
        assert!(verify(&iso, 0, &[0, 7, 9]).is_err());
        verify(&iso, 0, &[0, 7, INF]).expect("honest INF certifies");
    }
}
