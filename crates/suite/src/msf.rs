//! `msf` — minimum spanning forest (Table 1 row 8).
//!
//! Parallel Borůvka: each round, every component selects its lightest
//! incident edge with a `write_min` **priority update** on a per-component
//! atomic cell (the `AW` phase), the selected edges hook components
//! together, and the round repeats on the contracted graph. Edge weights
//! are tie-broken by edge index, making the MSF unique — so the total
//! weight and edge set match Kruskal exactly.

use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

use rpb_concurrent::{write_min_u64, ConcurrentUnionFind};
use rpb_fearless::ExecMode;

/// Packs `(weight, edge_index)` into a single u64 priority.
#[inline]
fn pack(w: u32, i: usize) -> u64 {
    ((w as u64) << 32) | i as u64
}

const NONE: u64 = u64::MAX;

/// Parallel Borůvka MSF; returns `(chosen edge indices, total weight)`.
///
/// Edge indices in the result are sorted ascending for canonical
/// comparison.
pub fn run_par(n: usize, edges: &[(u32, u32, u32)], _mode: ExecMode) -> (Vec<usize>, u64) {
    assert!(
        edges.len() < u32::MAX as usize,
        "too many edges for packed priorities"
    );
    let uf = ConcurrentUnionFind::new(n);
    let best: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(NONE)).collect();
    let mut chosen: Vec<usize> = Vec::new();
    // Live edges shrink each round (filter out intra-component edges).
    let mut live: Vec<usize> = (0..edges.len()).collect();
    loop {
        // Reset best-edge cells of live roots lazily: clear all touched.
        live.par_iter().for_each(|&i| {
            let (u, v, _) = edges[i];
            best[uf.find(u as usize)].store(NONE, Ordering::Relaxed);
            best[uf.find(v as usize)].store(NONE, Ordering::Relaxed);
        });
        // Priority update: each live edge offers itself to both endpoint
        // components.
        live.par_iter().for_each(|&i| {
            let (u, v, w) = edges[i];
            let p = pack(w, i);
            let (ru, rv) = (uf.find(u as usize), uf.find(v as usize));
            if ru != rv {
                write_min_u64(&best[ru], p);
                write_min_u64(&best[rv], p);
            }
        });
        // Collect winners: an edge is chosen if it is the best of either
        // endpoint's component (dedup via min endpoint rule).
        let winners: Vec<usize> = live
            .par_iter()
            .copied()
            .filter(|&i| {
                let (u, v, w) = edges[i];
                let p = pack(w, i);
                let (ru, rv) = (uf.find(u as usize), uf.find(v as usize));
                ru != rv
                    && (best[ru].load(Ordering::Relaxed) == p
                        || best[rv].load(Ordering::Relaxed) == p)
            })
            .collect();
        if winners.is_empty() {
            break;
        }
        // Hook: unite endpoints; every winner merges at least one pair
        // (two components may pick the same edge — unite is idempotent).
        let added: Vec<usize> = winners
            .par_iter()
            .copied()
            .filter(|&i| {
                let (u, v, _) = edges[i];
                uf.unite(u as usize, v as usize)
            })
            .collect();
        chosen.extend(added);
        // Contract: drop edges now internal to a component.
        live = live
            .par_iter()
            .copied()
            .filter(|&i| {
                let (u, v, _) = edges[i];
                uf.find(u as usize) != uf.find(v as usize)
            })
            .collect();
        if live.is_empty() {
            break;
        }
    }
    chosen.sort_unstable();
    let total = chosen.iter().map(|&i| edges[i].2 as u64).sum();
    (chosen, total)
}

/// Sequential Kruskal baseline (same weight/index tie-break).
pub fn run_seq(n: usize, edges: &[(u32, u32, u32)]) -> (Vec<usize>, u64) {
    let (mut chosen, total) = rpb_graph::seq::kruskal(n, edges);
    chosen.sort_unstable();
    (chosen, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;
    use rpb_graph::GraphKind;

    #[test]
    fn matches_kruskal_exactly() {
        for kind in [GraphKind::Rmat, GraphKind::Road] {
            let (n, edges) = inputs::weighted_edges(kind, 1200);
            let (par_edges, par_w) = run_par(n, &edges, ExecMode::Checked);
            let (seq_edges, seq_w) = run_seq(n, &edges);
            assert_eq!(par_w, seq_w, "{kind:?} weight");
            assert_eq!(par_edges, seq_edges, "{kind:?} edge set");
        }
    }

    #[test]
    fn triangle() {
        let edges = vec![(0u32, 1u32, 5u32), (1, 2, 3), (0, 2, 4)];
        let (chosen, total) = run_par(3, &edges, ExecMode::Checked);
        assert_eq!(total, 7);
        assert_eq!(chosen, vec![1, 2]);
    }

    #[test]
    fn duplicate_weights_tie_break_deterministically() {
        let edges = vec![(0u32, 1u32, 1u32), (1, 2, 1), (0, 2, 1), (2, 3, 1)];
        let (par, pw) = run_par(4, &edges, ExecMode::Checked);
        let (seq, sw) = run_seq(4, &edges);
        assert_eq!(par, seq);
        assert_eq!(pw, sw);
    }

    #[test]
    fn disconnected_graph() {
        let edges = vec![(0u32, 1u32, 2u32), (2, 3, 7)];
        let (chosen, total) = run_par(4, &edges, ExecMode::Checked);
        assert_eq!(chosen.len(), 2);
        assert_eq!(total, 9);
    }
}
