//! `msf` — minimum spanning forest (Table 1 row 8).
//!
//! Parallel Borůvka: each round, every component selects its lightest
//! incident edge with a `write_min` **priority update** on a per-component
//! atomic cell (the `AW` phase), the selected edges hook components
//! together, and the round repeats on the contracted graph. Edge weights
//! are tie-broken by edge index, making the MSF unique — so the total
//! weight and edge set match Kruskal exactly.

use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

use rpb_concurrent::{write_min_u64, ConcurrentUnionFind};
use rpb_fearless::ExecMode;

use crate::error::SuiteError;

/// Packs `(weight, edge_index)` into a single u64 priority.
#[inline]
fn pack(w: u32, i: usize) -> u64 {
    ((w as u64) << 32) | i as u64
}

const NONE: u64 = u64::MAX;

/// Parallel Borůvka MSF; returns `(chosen edge indices, total weight)`.
///
/// Edge indices in the result are sorted ascending for canonical
/// comparison.
pub fn run_par(n: usize, edges: &[(u32, u32, u32)], _mode: ExecMode) -> (Vec<usize>, u64) {
    assert!(
        edges.len() < u32::MAX as usize,
        "too many edges for packed priorities"
    );
    let uf = ConcurrentUnionFind::new(n);
    let best: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(NONE)).collect();
    let mut chosen: Vec<usize> = Vec::new();
    // Live edges shrink each round (filter out intra-component edges).
    let mut live: Vec<usize> = (0..edges.len()).collect();
    loop {
        // Reset best-edge cells of live roots lazily: clear all touched.
        live.par_iter().for_each(|&i| {
            let (u, v, _) = edges[i];
            best[uf.find(u as usize)].store(NONE, Ordering::Relaxed);
            best[uf.find(v as usize)].store(NONE, Ordering::Relaxed);
        });
        // Priority update: each live edge offers itself to both endpoint
        // components.
        live.par_iter().for_each(|&i| {
            let (u, v, w) = edges[i];
            let p = pack(w, i);
            let (ru, rv) = (uf.find(u as usize), uf.find(v as usize));
            if ru != rv {
                write_min_u64(&best[ru], p);
                write_min_u64(&best[rv], p);
            }
        });
        // Collect winners: an edge is chosen if it is the best of either
        // endpoint's component (dedup via min endpoint rule).
        let winners: Vec<usize> = live
            .par_iter()
            .copied()
            .filter(|&i| {
                let (u, v, w) = edges[i];
                let p = pack(w, i);
                let (ru, rv) = (uf.find(u as usize), uf.find(v as usize));
                ru != rv
                    && (best[ru].load(Ordering::Relaxed) == p
                        || best[rv].load(Ordering::Relaxed) == p)
            })
            .collect();
        if winners.is_empty() {
            break;
        }
        // Hook: unite endpoints; every winner merges at least one pair
        // (two components may pick the same edge — unite is idempotent).
        let added: Vec<usize> = winners
            .par_iter()
            .copied()
            .filter(|&i| {
                let (u, v, _) = edges[i];
                uf.unite(u as usize, v as usize)
            })
            .collect();
        chosen.extend(added);
        // Contract: drop edges now internal to a component.
        live = live
            .par_iter()
            .copied()
            .filter(|&i| {
                let (u, v, _) = edges[i];
                uf.find(u as usize) != uf.find(v as usize)
            })
            .collect();
        if live.is_empty() {
            break;
        }
    }
    chosen.sort_unstable();
    let total = chosen.iter().map(|&i| edges[i].2 as u64).sum();
    (chosen, total)
}

/// Sequential Kruskal baseline (same weight/index tie-break).
pub fn run_seq(n: usize, edges: &[(u32, u32, u32)]) -> (Vec<usize>, u64) {
    let (mut chosen, total) = rpb_graph::seq::kruskal(n, edges);
    chosen.sort_unstable();
    (chosen, total)
}

/// Canonical form of a minimum spanning forest.
///
/// When duplicate weights admit several valid MSFs, any two share the
/// total weight, the multiset of chosen weights, and the connected
/// components they span — but *not* the raw edge-index set. Comparing
/// implementations through this form avoids false divergence on ties
/// while still pinning everything the matroid theory guarantees equal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MsfCanonical {
    /// Sum of chosen edge weights.
    pub total_weight: u64,
    /// Chosen weights, run-length encoded ascending as `(weight, count)`.
    pub weight_histogram: Vec<(u32, usize)>,
    /// For each vertex, the smallest vertex id in its forest tree.
    pub components: Vec<u32>,
}

/// Canonicalizes a forest given as `chosen` indices into `edges`.
pub fn canonical(
    n: usize,
    edges: &[(u32, u32, u32)],
    chosen: &[usize],
    total: u64,
) -> MsfCanonical {
    let uf = ConcurrentUnionFind::new(n);
    let mut weights: Vec<u32> = chosen
        .iter()
        .map(|&i| {
            let (u, v, w) = edges[i];
            uf.unite(u as usize, v as usize);
            w
        })
        .collect();
    weights.sort_unstable();
    let mut weight_histogram: Vec<(u32, usize)> = Vec::new();
    for w in weights {
        match weight_histogram.last_mut() {
            Some((prev, count)) if *prev == w => *count += 1,
            _ => weight_histogram.push((w, 1)),
        }
    }
    let mut label = vec![u32::MAX; n];
    // Vertices ascend, so each root's label settles to its min member.
    for v in 0..n {
        let r = uf.find(v);
        if label[r] == u32::MAX {
            label[r] = v as u32;
        }
    }
    let components = (0..n).map(|v| label[uf.find(v)]).collect();
    MsfCanonical {
        total_weight: total,
        weight_histogram,
        components,
    }
}

/// Spanning-forest invariant: `chosen` indexes a forest (ascending,
/// in-range, acyclic) that spans every component of the graph, and
/// `total` is its weight. Minimality is established separately by
/// comparing [`canonical`] forms against an independent implementation.
pub fn verify(
    n: usize,
    edges: &[(u32, u32, u32)],
    chosen: &[usize],
    total: u64,
) -> Result<(), SuiteError> {
    if let Some(w) = chosen.windows(2).find(|w| w[0] >= w[1]) {
        return Err(SuiteError::invariant(
            "msf",
            format!("chosen indices not strictly ascending at {}", w[0]),
        ));
    }
    if let Some(&i) = chosen.iter().find(|&&i| i >= edges.len()) {
        return Err(SuiteError::invariant(
            "msf",
            format!("chosen index {i} out of range for {} edges", edges.len()),
        ));
    }
    let uf = ConcurrentUnionFind::new(n);
    for &i in chosen {
        let (u, v, _) = edges[i];
        if !uf.unite(u as usize, v as usize) {
            return Err(SuiteError::invariant(
                "msf",
                format!("chosen edge {i} closes a cycle"),
            ));
        }
    }
    let full = ConcurrentUnionFind::new(n);
    let mut components = n;
    for &(u, v, _) in edges {
        if full.unite(u as usize, v as usize) {
            components -= 1;
        }
    }
    let want = n - components;
    if chosen.len() != want {
        return Err(SuiteError::invariant(
            "msf",
            format!("{} forest edges, want {want} to span", chosen.len()),
        ));
    }
    let sum: u64 = chosen.iter().map(|&i| edges[i].2 as u64).sum();
    if sum != total {
        return Err(SuiteError::invariant(
            "msf",
            format!("claimed weight {total}, edges sum to {sum}"),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;
    use rpb_graph::GraphKind;

    #[test]
    fn matches_kruskal_exactly() {
        for kind in [GraphKind::Rmat, GraphKind::Road] {
            let (n, edges) = inputs::weighted_edges(kind, 1200);
            let (par_edges, par_w) = run_par(n, &edges, ExecMode::Checked);
            let (seq_edges, seq_w) = run_seq(n, &edges);
            assert_eq!(par_w, seq_w, "{kind:?} weight");
            assert_eq!(par_edges, seq_edges, "{kind:?} edge set");
        }
    }

    #[test]
    fn triangle() {
        let edges = vec![(0u32, 1u32, 5u32), (1, 2, 3), (0, 2, 4)];
        let (chosen, total) = run_par(3, &edges, ExecMode::Checked);
        assert_eq!(total, 7);
        assert_eq!(chosen, vec![1, 2]);
    }

    #[test]
    fn duplicate_weights_tie_break_deterministically() {
        let edges = vec![(0u32, 1u32, 1u32), (1, 2, 1), (0, 2, 1), (2, 3, 1)];
        let (par, pw) = run_par(4, &edges, ExecMode::Checked);
        let (seq, sw) = run_seq(4, &edges);
        assert_eq!(par, seq);
        assert_eq!(pw, sw);
    }

    #[test]
    fn disconnected_graph() {
        let edges = vec![(0u32, 1u32, 2u32), (2, 3, 7)];
        let (chosen, total) = run_par(4, &edges, ExecMode::Checked);
        assert_eq!(chosen.len(), 2);
        assert_eq!(total, 9);
    }

    #[test]
    fn tied_forests_differ_raw_but_share_canonical_form() {
        // An equal-weight triangle has three valid MSFs. {0, 1} and
        // {0, 2} differ as index sets — a raw comparison would flag a
        // false divergence — yet both must canonicalize identically.
        let edges = vec![(0u32, 1u32, 1u32), (1, 2, 1), (0, 2, 1)];
        let a = vec![0usize, 1];
        let b = vec![0usize, 2];
        assert_ne!(a, b);
        verify(3, &edges, &a, 2).expect("forest a spans");
        verify(3, &edges, &b, 2).expect("forest b spans");
        let ca = canonical(3, &edges, &a, 2);
        let cb = canonical(3, &edges, &b, 2);
        assert_eq!(ca, cb);
        assert_eq!(ca.total_weight, 2);
        assert_eq!(ca.weight_histogram, vec![(1, 2)]);
        assert_eq!(ca.components, vec![0, 0, 0]);
    }

    #[test]
    fn duplicate_weight_multigraph_agrees_across_implementations() {
        // Parallel double edges, all the same weight: heavy tie pressure.
        let mut edges: Vec<(u32, u32, u32)> = Vec::new();
        for v in 0..63u32 {
            edges.push((v, v + 1, 4));
            edges.push((v, v + 1, 4));
            edges.push((v, (v + 7) % 64, 4));
        }
        let (pc, pw) = run_par(64, &edges, ExecMode::Sync);
        let (sc, sw) = run_seq(64, &edges);
        verify(64, &edges, &pc, pw).expect("parallel forest spans");
        verify(64, &edges, &sc, sw).expect("sequential forest spans");
        assert_eq!(
            canonical(64, &edges, &pc, pw),
            canonical(64, &edges, &sc, sw)
        );
    }

    #[test]
    fn verify_catches_cycles_gaps_and_weight_lies() {
        let (n, edges) = inputs::weighted_edges(GraphKind::Road, 300);
        let (chosen, total) = run_seq(n, &edges);
        verify(n, &edges, &chosen, total).expect("clean forest");
        assert!(verify(n, &edges, &chosen, total + 1).is_err(), "weight lie");
        let mut gap = chosen.clone();
        let dropped = gap.pop().expect("non-empty forest");
        let w = edges[dropped].2 as u64;
        assert!(verify(n, &edges, &gap, total - w).is_err(), "gap");
        assert!(
            verify(n, &edges, &[0, 0], 2 * edges[0].2 as u64).is_err(),
            "repeated index"
        );
    }
}
