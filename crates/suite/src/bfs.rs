//! `bfs` — breadth-first search over a MultiQueue (Table 1 row 13).
//!
//! The paper's dynamic-dispatch benchmark: long-running worker threads
//! pop `(distance, vertex)` tasks from the MultiQueue, relax the vertex's
//! neighbours with a `write_min` priority update on the shared distance
//! array (`AW`), and push improved vertices back. The MQ's relaxed order
//! makes this label-correcting: a vertex may be popped multiple times
//! with stale distances, which the `dist` check discards — correctness
//! does not depend on pop order, only termination speed does.

use std::sync::atomic::{AtomicU64, Ordering};

use rpb_concurrent::write_min_u64;
use rpb_fearless::ExecMode;
use rpb_graph::Graph;
use rpb_multiqueue::execute_on;
use rpb_parlay::exec::{default_backend, BackendKind};

use crate::error::SuiteError;

/// Unreachable marker.
pub const INF: u64 = u64::MAX;

/// Parallel MQ-driven BFS hop distances from `src`.
///
/// `threads` worker threads drive a MultiQueue with `2 × threads` internal
/// queues (the paper's configuration family). Workers are hosted on the
/// process-default backend ([`default_backend`]); see [`run_par_on`].
pub fn run_par(g: &Graph, src: usize, threads: usize, mode: ExecMode) -> Vec<u64> {
    run_par_on(default_backend(), g, src, threads, mode)
}

/// [`run_par`] with an explicit scheduling backend for the MQ workers
/// (`BackendKind::Mq` = scoped OS threads, `BackendKind::Rayon` = tasks
/// on the ambient Rayon pool). The MultiQueue policy is identical either
/// way — the backend must be behaviorally invisible, which `rpb verify
/// --backend rayon,mq` checks.
pub fn run_par_on(
    backend: BackendKind,
    g: &Graph,
    src: usize,
    threads: usize,
    _mode: ExecMode,
) -> Vec<u64> {
    let n = g.num_vertices();
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    dist[src].store(0, Ordering::Relaxed);
    execute_on(
        backend,
        threads,
        2 * threads.max(1),
        vec![(0u64, src as u32)],
        |d, v, h| {
            let v = v as usize;
            // Stale task: a better distance already settled.
            if d > dist[v].load(Ordering::Relaxed) {
                return;
            }
            for &w in g.neighbors(v) {
                let nd = d + 1;
                if write_min_u64(&dist[w as usize], nd) {
                    h.push(nd, w);
                }
            }
        },
    );
    dist.into_iter().map(|d| d.into_inner()).collect()
}

/// Sequential queue BFS baseline.
pub fn run_seq(g: &Graph, src: usize) -> Vec<u64> {
    rpb_graph::seq::bfs(g, src)
}

/// Distance-certificate invariant: `dist` is exactly the hop distance
/// from `src`, proved without an oracle run.
///
/// Three conditions make the certificate complete:
/// 1. `dist[src] == 0`,
/// 2. *level consistency* — every arc `(u, v)` with `dist[u]` finite has
///    `dist[v] <= dist[u] + 1` (so no claimed distance exceeds the true
///    one), and
/// 3. *parent witness* — every finite non-source `v` has an in-neighbour
///    at exactly `dist[v] - 1`. Following witnesses strictly decreases
///    the level, so the chain terminates at the only level-0 vertex
///    (`src`), exhibiting a real path of length `dist[v]`.
///
/// Together 2 and 3 sandwich every entry between the true distance from
/// both sides, so any corruption of a reachable entry — and any finite
/// label on an unreachable vertex — is caught.
pub fn verify(g: &Graph, src: usize, dist: &[u64]) -> Result<(), SuiteError> {
    let n = g.num_vertices();
    if dist.len() != n {
        return Err(SuiteError::invariant(
            "bfs",
            format!("{} distances for {n} vertices", dist.len()),
        ));
    }
    if src >= n {
        return Err(SuiteError::malformed(
            "bfs",
            format!("source {src} out of range for {n} vertices"),
        ));
    }
    if dist[src] != 0 {
        return Err(SuiteError::invariant(
            "bfs",
            format!("dist[src] = {} (want 0)", dist[src]),
        ));
    }
    let mut has_parent = vec![false; n];
    for u in 0..n {
        let du = dist[u];
        if du == INF {
            continue;
        }
        for &v in g.neighbors(u) {
            let dv = dist[v as usize];
            if dv > du.saturating_add(1) {
                return Err(SuiteError::invariant(
                    "bfs",
                    format!("arc ({u}, {v}) relaxable: {dv} > {du} + 1"),
                ));
            }
            if dv == du + 1 {
                has_parent[v as usize] = true;
            }
        }
    }
    for v in 0..n {
        if v != src && dist[v] != INF && !has_parent[v] {
            return Err(SuiteError::invariant(
                "bfs",
                format!("vertex {v} at level {} has no parent witness", dist[v]),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;
    use rpb_graph::GraphKind;

    #[test]
    fn matches_sequential_bfs() {
        for kind in [GraphKind::Link, GraphKind::Road] {
            let g = inputs::graph(kind, 2000);
            let want = run_seq(&g, 0);
            for threads in [1, 4] {
                let got = run_par(&g, 0, threads, ExecMode::Sync);
                assert_eq!(got, want, "{kind:?} at {threads} threads");
            }
        }
    }

    #[test]
    fn unreachable_stays_inf() {
        let g = rpb_graph::Graph::undirected_from_edges(4, &[(0, 1)]);
        let d = run_par(&g, 0, 2, ExecMode::Sync);
        assert_eq!(d, vec![0, 1, INF, INF]);
    }

    #[test]
    fn single_vertex() {
        let g = rpb_graph::Graph::from_edges(1, &[]);
        assert_eq!(run_par(&g, 0, 2, ExecMode::Sync), vec![0]);
    }

    #[test]
    fn verify_certifies_and_rejects() {
        let g = inputs::graph(GraphKind::Link, 600);
        let mut d = run_par(&g, 0, 2, ExecMode::Sync);
        verify(&g, 0, &d).expect("clean distances certify");
        // Source corrupted.
        let saved = d[0];
        d[0] = 1;
        assert!(verify(&g, 0, &d).is_err());
        d[0] = saved;
        // A reachable vertex pulled closer than possible: breaks its own
        // parent witness (or a neighbour's level consistency).
        if let Some(v) = (1..d.len()).find(|&v| d[v] != INF && d[v] > 1) {
            let saved = d[v];
            d[v] = 1;
            assert!(verify(&g, 0, &d).is_err(), "vertex {v} pulled to 1");
            d[v] = saved;
            // Pushed farther: the in-arc from its true parent is relaxable.
            d[v] = saved + 1;
            assert!(verify(&g, 0, &d).is_err(), "vertex {v} pushed out");
            d[v] = saved;
        }
        // A fabricated finite label on an unreachable vertex.
        let iso = rpb_graph::Graph::undirected_from_edges(3, &[(0, 1)]);
        let mut d = run_seq(&iso, 0);
        d[2] = 5;
        assert!(verify(&iso, 0, &d).is_err());
        // Wrong length and bad source are typed errors, not panics.
        assert!(verify(&iso, 0, &[0]).is_err());
        assert!(verify(&iso, 9, &[0, 1, INF]).is_err());
    }
}
