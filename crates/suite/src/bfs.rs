//! `bfs` — breadth-first search over a MultiQueue (Table 1 row 13).
//!
//! The paper's dynamic-dispatch benchmark: long-running worker threads
//! pop `(distance, vertex)` tasks from the MultiQueue, relax the vertex's
//! neighbours with a `write_min` priority update on the shared distance
//! array (`AW`), and push improved vertices back. The MQ's relaxed order
//! makes this label-correcting: a vertex may be popped multiple times
//! with stale distances, which the `dist` check discards — correctness
//! does not depend on pop order, only termination speed does.

use std::sync::atomic::{AtomicU64, Ordering};

use rpb_concurrent::write_min_u64;
use rpb_fearless::ExecMode;
use rpb_graph::Graph;
use rpb_multiqueue::execute;

/// Unreachable marker.
pub const INF: u64 = u64::MAX;

/// Parallel MQ-driven BFS hop distances from `src`.
///
/// `threads` worker threads drive a MultiQueue with `2 × threads` internal
/// queues (the paper's configuration family).
pub fn run_par(g: &Graph, src: usize, threads: usize, _mode: ExecMode) -> Vec<u64> {
    let n = g.num_vertices();
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    dist[src].store(0, Ordering::Relaxed);
    execute(
        threads,
        2 * threads.max(1),
        vec![(0u64, src as u32)],
        |d, v, h| {
            let v = v as usize;
            // Stale task: a better distance already settled.
            if d > dist[v].load(Ordering::Relaxed) {
                return;
            }
            for &w in g.neighbors(v) {
                let nd = d + 1;
                if write_min_u64(&dist[w as usize], nd) {
                    h.push(nd, w);
                }
            }
        },
    );
    dist.into_iter().map(|d| d.into_inner()).collect()
}

/// Sequential queue BFS baseline.
pub fn run_seq(g: &Graph, src: usize) -> Vec<u64> {
    rpb_graph::seq::bfs(g, src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;
    use rpb_graph::GraphKind;

    #[test]
    fn matches_sequential_bfs() {
        for kind in [GraphKind::Link, GraphKind::Road] {
            let g = inputs::graph(kind, 2000);
            let want = run_seq(&g, 0);
            for threads in [1, 4] {
                let got = run_par(&g, 0, threads, ExecMode::Sync);
                assert_eq!(got, want, "{kind:?} at {threads} threads");
            }
        }
    }

    #[test]
    fn unreachable_stays_inf() {
        let g = rpb_graph::Graph::undirected_from_edges(4, &[(0, 1)]);
        let d = run_par(&g, 0, 2, ExecMode::Sync);
        assert_eq!(d, vec![0, 1, INF, INF]);
    }

    #[test]
    fn single_vertex() {
        let g = rpb_graph::Graph::from_edges(1, &[]);
        assert_eq!(run_par(&g, 0, 2, ExecMode::Sync), vec![0]);
    }
}
