//! Cross-mode differential verification for the whole suite.
//!
//! Each benchmark cell gets three independent lines of defence:
//!
//! 1. a **sequential oracle** — the parallel output is compared against
//!    the benchmark's sequential baseline (after canonicalization where
//!    the contract permits several valid answers),
//! 2. a **structural invariant checker** — the per-module `verify`
//!    functions certify the output against the problem statement itself
//!    (sortedness + permutation, BWT round-trip, distance certificates,
//!    independence + maximality, spanning-forest counting, ...), so a
//!    bug shared by both implementations is still caught, and
//! 3. an **ablation cross-check** — where a second parallel algorithm
//!    exists (`bfs_frontier`, `sssp_delta`, `mis_spec`, `msf_kruskal`),
//!    its output must agree too.
//!
//! Outputs that are legally nondeterministic compare through an explicit
//! canonical form: `msf` via [`msf::MsfCanonical`] (tie-broken forests
//! share weight and partition, not edge indices), `sf` via forest size
//! (which, with the acyclicity check, pins the component partition),
//! `lrs` via the repeat length (the winning pair may differ), and `dr`
//! via the refinement postcondition alone (meshes are incomparable).
//!
//! The harness drives [`verify_pair`] across `ExecMode`s and worker-pool
//! sizes; `inject` corrupts the parallel output just before checking and
//! exists so the CLI's failure path (nonzero exit, FAIL cells) can be
//! exercised end to end by tests.

use rpb_fearless::ExecMode;
use rpb_geom::Point;
use rpb_graph::{Graph, WeightedGraph};
use rpb_parlay::exec::{default_backend, BackendKind};

use crate::error::SuiteError;
use crate::{
    bfs, bfs_frontier, bw, dedup, dr, hist, isort, lrs, mis, mis_spec, mm, msf, msf_kruskal, sa,
    sf, sort, sssp, sssp_delta,
};

/// The 14 benchmark abbreviations of Table 1, in table order.
pub const SUITE_BENCHES: [&str; 14] = [
    "bw", "lrs", "sa", "dr", "mis", "mm", "sf", "msf", "sort", "dedup", "hist", "isort", "bfs",
    "sssp",
];

/// Borrowed workload set covering every benchmark's input shape.
pub struct SuiteInputs<'a> {
    /// Text for `lrs`/`sa`.
    pub text: &'a [u8],
    /// BWT of a text, for `bw`.
    pub bwt: &'a [u8],
    /// Integer sequence for `sort`/`dedup`/`hist`/`isort`.
    pub seq: &'a [u64],
    /// Point set for `dr`.
    pub points: &'a [Point],
    /// Link-style graph for `mis`/`bfs`.
    pub link: &'a Graph,
    /// Road-style graph for `mis`/`bfs`.
    pub road: &'a Graph,
    /// Weighted link graph for `sssp`.
    pub wlink: &'a WeightedGraph,
    /// Weighted road graph for `sssp`.
    pub wroad: &'a WeightedGraph,
    /// `(n, edges)` for `mm`/`sf`.
    pub link_edges: (usize, &'a [(u32, u32)]),
    /// `(n, edges)` for `mm`/`sf`.
    pub road_edges: (usize, &'a [(u32, u32)]),
    /// `(n, weighted edges)` for `msf`.
    pub rmat_wedges: (usize, &'a [(u32, u32, u32)]),
    /// `(n, weighted edges)` for `msf`.
    pub road_wedges: (usize, &'a [(u32, u32, u32)]),
}

/// Runs one `(benchmark, mode)` cell: parallel run, sequential oracle,
/// invariant checker, and ablation cross-checks.
///
/// `threads` sizes the MultiQueue benchmarks' worker count (the rest
/// parallelize through the ambient rayon pool, which the harness pins
/// around this call). With `inject`, the parallel output is deliberately
/// corrupted first — every benchmark must then return an `Err`.
pub fn verify_pair(
    name: &str,
    i: &SuiteInputs<'_>,
    mode: ExecMode,
    threads: usize,
    inject: bool,
) -> Result<(), SuiteError> {
    verify_pair_on(default_backend(), name, i, mode, threads, inject)
}

/// [`verify_pair`] with an explicit scheduling backend — the harness's
/// `--backend rayon,mq` differential axis. The backend only steers who
/// hosts the MultiQueue benchmarks' workers (`bfs`/`sssp`); every other
/// benchmark runs on the ambient Rayon pool regardless, and all of them
/// must produce backend-independent output.
pub fn verify_pair_on(
    backend: BackendKind,
    name: &str,
    i: &SuiteInputs<'_>,
    mode: ExecMode,
    threads: usize,
    inject: bool,
) -> Result<(), SuiteError> {
    match name {
        "bw" => check_bw(i, mode, inject),
        "lrs" => check_lrs(i, mode, inject),
        "sa" => check_sa(i, mode, inject),
        "dr" => check_dr(i, mode, inject),
        "mis" => check_mis(i, mode, inject),
        "mm" => check_mm(i, mode, inject),
        "sf" => check_sf(i, mode, inject),
        "msf" => check_msf(i, mode, inject),
        "sort" => check_sort(i, mode, inject),
        "dedup" => check_dedup(i, mode, inject),
        "hist" => check_hist(i, mode, inject),
        "isort" => check_isort(i, mode, inject),
        "bfs" => check_bfs(backend, i, mode, threads, inject),
        "sssp" => check_sssp(backend, i, mode, threads, inject),
        other => Err(SuiteError::malformed(
            "verify",
            format!(
                "unknown benchmark `{other}` (valid: {})",
                SUITE_BENCHES.join(", ")
            ),
        )),
    }
}

fn check_bw(i: &SuiteInputs<'_>, mode: ExecMode, inject: bool) -> Result<(), SuiteError> {
    let mut par = bw::run_par(i.bwt, mode)?;
    if inject {
        let mid = par.len() / 2;
        par[mid] = if par[mid] == b'z' { b'y' } else { b'z' };
    }
    bw::verify(i.bwt, &par)?;
    let seq = bw::run_seq(i.bwt)?;
    if par != seq {
        return Err(SuiteError::divergence(
            "bw",
            "parallel decode differs from sequential decode",
        ));
    }
    Ok(())
}

fn check_lrs(i: &SuiteInputs<'_>, mode: ExecMode, inject: bool) -> Result<(), SuiteError> {
    let mut par = lrs::run_par(i.text, mode);
    if inject {
        par.len += 1;
    }
    lrs::verify(i.text, &par)?;
    let seq = lrs::run_seq(i.text);
    // The winning pair is tie-dependent; the maximal length is unique.
    if par.len != seq.len {
        return Err(SuiteError::divergence(
            "lrs",
            format!(
                "repeat length {} parallel vs {} sequential",
                par.len, seq.len
            ),
        ));
    }
    Ok(())
}

fn check_sa(i: &SuiteInputs<'_>, mode: ExecMode, inject: bool) -> Result<(), SuiteError> {
    let mut par = sa::run_par(i.text, mode);
    if inject && par.len() >= 2 {
        par.swap(0, 1);
    }
    sa::verify(i.text, &par)?;
    if par != sa::run_seq(i.text) {
        return Err(SuiteError::divergence(
            "sa",
            "parallel suffix array differs from sequential",
        ));
    }
    Ok(())
}

fn check_dr(i: &SuiteInputs<'_>, mode: ExecMode, inject: bool) -> Result<(), SuiteError> {
    let mut par = dr::run_par(i.points, mode);
    if inject {
        par.stats.inserted = dr::params(i.points).max_steiner;
    }
    dr::verify(i.points, &par)?;
    // Refined meshes are not comparable point-for-point (insertion order
    // steers Steiner placement); certify the sequential oracle against
    // the same postcondition instead.
    let seq = dr::run_seq(i.points);
    dr::verify(i.points, &seq)
}

fn check_mis(i: &SuiteInputs<'_>, mode: ExecMode, mut inject: bool) -> Result<(), SuiteError> {
    for g in [i.link, i.road] {
        let mut par = mis::run_par(g, mode);
        if std::mem::take(&mut inject) {
            if let Some(v) = par.iter().position(|&b| b) {
                par[v] = false;
            }
        }
        mis::verify(g, &par)?;
        let seq = mis::run_seq(g);
        if par != seq {
            return Err(SuiteError::divergence(
                "mis",
                "parallel MIS differs from greedy over the same priorities",
            ));
        }
        if mis_spec::run_par(g, mode) != seq {
            return Err(SuiteError::divergence(
                "mis",
                "speculative-for ablation differs from greedy",
            ));
        }
    }
    Ok(())
}

fn check_mm(i: &SuiteInputs<'_>, mode: ExecMode, mut inject: bool) -> Result<(), SuiteError> {
    for (n, edges) in [i.link_edges, i.road_edges] {
        let mut par = mm::run_par(n, edges, mode);
        if std::mem::take(&mut inject) {
            if let Some(j) = par.iter().position(|&b| b) {
                par[j] = false;
            }
        }
        mm::verify(n, edges, &par)?;
        if par != mm::run_seq(n, edges) {
            return Err(SuiteError::divergence(
                "mm",
                "parallel matching differs from greedy over the same priorities",
            ));
        }
    }
    Ok(())
}

fn check_sf(i: &SuiteInputs<'_>, mode: ExecMode, mut inject: bool) -> Result<(), SuiteError> {
    for (n, edges) in [i.link_edges, i.road_edges] {
        let mut par = sf::run_par(n, edges, mode);
        if std::mem::take(&mut inject) {
            par.pop();
        }
        sf::verify(n, edges, &par)?;
        let seq = sf::run_seq(n, edges);
        sf::verify(n, edges, &seq)?;
        // Any interleaving picks a different edge set; two verified
        // forests of equal size span the same partition.
        if par.len() != seq.len() {
            return Err(SuiteError::divergence(
                "sf",
                format!(
                    "{} forest edges parallel vs {} sequential",
                    par.len(),
                    seq.len()
                ),
            ));
        }
    }
    Ok(())
}

fn check_msf(i: &SuiteInputs<'_>, mode: ExecMode, mut inject: bool) -> Result<(), SuiteError> {
    for (n, edges) in [i.rmat_wedges, i.road_wedges] {
        let (mut chosen, mut total) = msf::run_par(n, edges, mode);
        if std::mem::take(&mut inject) {
            if let Some(e) = chosen.pop() {
                total -= edges[e].2 as u64;
            }
        }
        msf::verify(n, edges, &chosen, total)?;
        let (seq_chosen, seq_total) = msf::run_seq(n, edges);
        msf::verify(n, edges, &seq_chosen, seq_total)?;
        let want = msf::canonical(n, edges, &seq_chosen, seq_total);
        if msf::canonical(n, edges, &chosen, total) != want {
            return Err(SuiteError::divergence(
                "msf",
                "Boruvka forest canonical form differs from Kruskal",
            ));
        }
        let (spec_chosen, spec_total) = msf_kruskal::run_par(n, edges, mode);
        msf::verify(n, edges, &spec_chosen, spec_total)?;
        if msf::canonical(n, edges, &spec_chosen, spec_total) != want {
            return Err(SuiteError::divergence(
                "msf",
                "filter-Kruskal ablation canonical form differs from Kruskal",
            ));
        }
    }
    Ok(())
}

fn check_sort(i: &SuiteInputs<'_>, mode: ExecMode, inject: bool) -> Result<(), SuiteError> {
    let mut got = i.seq.to_vec();
    sort::run_par(&mut got, mode);
    if inject && !got.is_empty() {
        got[0] = got[0].wrapping_add(1);
    }
    sort::verify(i.seq, &got)?;
    let mut want = i.seq.to_vec();
    sort::run_seq(&mut want);
    if got != want {
        return Err(SuiteError::divergence(
            "sort",
            "parallel sort differs from sequential",
        ));
    }
    Ok(())
}

fn check_dedup(i: &SuiteInputs<'_>, mode: ExecMode, inject: bool) -> Result<(), SuiteError> {
    let mut out = dedup::run_par(i.seq, mode);
    if inject {
        if let Some(&first) = out.first() {
            out.insert(0, first);
        }
    }
    dedup::verify(i.seq, &out)?;
    if out != dedup::run_seq(i.seq) {
        return Err(SuiteError::divergence(
            "dedup",
            "parallel distinct set differs from sequential",
        ));
    }
    Ok(())
}

fn check_hist(i: &SuiteInputs<'_>, mode: ExecMode, inject: bool) -> Result<(), SuiteError> {
    let nbuckets = 64;
    let range = i.seq.len() as u64;
    let mut h = hist::run_par(i.seq, nbuckets, range, mode)?;
    if inject {
        h[0] += 1;
    }
    hist::verify(i.seq, nbuckets, &h)?;
    if h != hist::run_seq(i.seq, nbuckets, range)? {
        return Err(SuiteError::divergence(
            "hist",
            "parallel counts differ from sequential",
        ));
    }
    // The large-struct variant (mutexes under Sync) must agree too.
    if hist::run_large(i.seq, nbuckets, range, mode)?
        != hist::run_large_seq(i.seq, nbuckets, range)?
    {
        return Err(SuiteError::divergence(
            "hist",
            "large-bin accumulators differ from sequential",
        ));
    }
    Ok(())
}

fn check_isort(i: &SuiteInputs<'_>, mode: ExecMode, inject: bool) -> Result<(), SuiteError> {
    let key_bits = 64 - (i.seq.len() as u64).leading_zeros();
    let mut got = i.seq.to_vec();
    isort::run_par(&mut got, key_bits, mode);
    if inject && !got.is_empty() {
        got[0] = got[0].wrapping_add(1);
    }
    isort::verify(i.seq, &got)?;
    let mut want = i.seq.to_vec();
    isort::run_seq(&mut want, key_bits);
    if got != want {
        return Err(SuiteError::divergence(
            "isort",
            "parallel integer sort differs from sequential",
        ));
    }
    Ok(())
}

fn check_bfs(
    backend: BackendKind,
    i: &SuiteInputs<'_>,
    mode: ExecMode,
    threads: usize,
    mut inject: bool,
) -> Result<(), SuiteError> {
    for g in [i.link, i.road] {
        let mut d = bfs::run_par_on(backend, g, 0, threads, mode);
        if std::mem::take(&mut inject) {
            d[0] = 1;
        }
        bfs::verify(g, 0, &d)?;
        let seq = bfs::run_seq(g, 0);
        if d != seq {
            return Err(SuiteError::divergence(
                "bfs",
                "MultiQueue distances differ from sequential BFS",
            ));
        }
        if bfs_frontier::run_par(g, 0) != seq {
            return Err(SuiteError::divergence(
                "bfs",
                "frontier-synchronous ablation differs from sequential BFS",
            ));
        }
    }
    Ok(())
}

fn check_sssp(
    backend: BackendKind,
    i: &SuiteInputs<'_>,
    mode: ExecMode,
    threads: usize,
    mut inject: bool,
) -> Result<(), SuiteError> {
    for g in [i.wlink, i.wroad] {
        let mut d = sssp::run_par_on(backend, g, 0, threads, mode);
        if std::mem::take(&mut inject) {
            d[0] = 1;
        }
        sssp::verify(g, 0, &d)?;
        let seq = sssp::run_seq(g, 0);
        if d != seq {
            return Err(SuiteError::divergence(
                "sssp",
                "MultiQueue distances differ from Dijkstra",
            ));
        }
        if sssp_delta::run_par(g, 0, sssp_delta::default_delta(g))? != seq {
            return Err(SuiteError::divergence(
                "sssp",
                "delta-stepping ablation differs from Dijkstra",
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;
    use rpb_fearless::ALL_MODES;
    use rpb_graph::GraphKind;

    struct Owned {
        text: Vec<u8>,
        bwt: Vec<u8>,
        seq: Vec<u64>,
        points: Vec<Point>,
        link: Graph,
        road: Graph,
        wlink: WeightedGraph,
        wroad: WeightedGraph,
        link_edges: (usize, Vec<(u32, u32)>),
        road_edges: (usize, Vec<(u32, u32)>),
        rmat_wedges: (usize, Vec<(u32, u32, u32)>),
        road_wedges: (usize, Vec<(u32, u32, u32)>),
    }

    fn build() -> Owned {
        let n = 500;
        Owned {
            text: inputs::wiki(3_000),
            bwt: inputs::wiki_bwt(3_000),
            seq: inputs::exponential(10_000),
            points: inputs::kuzmin(250),
            link: inputs::graph(GraphKind::Link, n),
            road: inputs::graph(GraphKind::Road, n),
            wlink: inputs::weighted_graph(GraphKind::Link, n),
            wroad: inputs::weighted_graph(GraphKind::Road, n),
            link_edges: inputs::edges(GraphKind::Link, n),
            road_edges: inputs::edges(GraphKind::Road, n),
            rmat_wedges: inputs::weighted_edges(GraphKind::Rmat, n),
            road_wedges: inputs::weighted_edges(GraphKind::Road, n),
        }
    }

    impl Owned {
        fn as_inputs(&self) -> SuiteInputs<'_> {
            SuiteInputs {
                text: &self.text,
                bwt: &self.bwt,
                seq: &self.seq,
                points: &self.points,
                link: &self.link,
                road: &self.road,
                wlink: &self.wlink,
                wroad: &self.wroad,
                link_edges: (self.link_edges.0, &self.link_edges.1),
                road_edges: (self.road_edges.0, &self.road_edges.1),
                rmat_wedges: (self.rmat_wedges.0, &self.rmat_wedges.1),
                road_wedges: (self.road_wedges.0, &self.road_wedges.1),
            }
        }
    }

    #[test]
    fn every_bench_passes_in_every_mode() {
        let owned = build();
        let i = owned.as_inputs();
        for name in SUITE_BENCHES {
            for mode in ALL_MODES {
                verify_pair(name, &i, mode, 2, false)
                    .unwrap_or_else(|e| panic!("{name} in {mode}: {e}"));
            }
        }
    }

    #[test]
    fn injection_fails_every_bench() {
        let owned = build();
        let i = owned.as_inputs();
        for name in SUITE_BENCHES {
            let err = verify_pair(name, &i, ExecMode::Checked, 2, true)
                .expect_err(&format!("{name} must catch the injected corruption"));
            assert_eq!(err.benchmark(), name, "{err}");
        }
    }

    #[test]
    fn mq_benches_pass_on_both_backends() {
        let owned = build();
        let i = owned.as_inputs();
        for backend in rpb_parlay::exec::ALL_BACKENDS {
            for name in ["bfs", "sssp"] {
                verify_pair_on(backend, name, &i, ExecMode::Sync, 2, false)
                    .unwrap_or_else(|e| panic!("{name} on {}: {e}", backend.label()));
            }
        }
    }

    #[test]
    fn streaming_benches_pass_and_catch_injection_on_both_channels() {
        use crate::streaming::{verify_streaming, StreamConfig, STREAMING_BENCHES};

        let owned = build();
        let i = owned.as_inputs();
        for channel in rpb_pipeline::ALL_CHANNELS {
            let cfg = StreamConfig {
                channel,
                backend: BackendKind::Rayon,
                chunk: 1024,
                capacity: 4,
                workers: 2,
            };
            for name in STREAMING_BENCHES {
                verify_streaming(name, &i, cfg, false)
                    .unwrap_or_else(|e| panic!("{name} on {channel:?}: {e}"));
                let err = verify_streaming(name, &i, cfg, true)
                    .expect_err(&format!("{name} must catch the injected corruption"));
                assert_eq!(err.benchmark(), name, "{err}");
            }
        }
    }

    #[test]
    fn unknown_benchmark_is_a_typed_error() {
        let owned = build();
        let err =
            verify_pair("quicksort", &owned.as_inputs(), ExecMode::Checked, 2, false).unwrap_err();
        assert!(matches!(err, SuiteError::MalformedInput { .. }), "{err}");
        assert!(err.reason().contains("quicksort"), "{err}");
    }
}
