//! The phase-concurrent CAS hash table of the paper's Listing 8.
//!
//! Open addressing with linear probing; `insert` claims an empty slot with
//! a single `compare_exchange`, the same structure as the C++
//! `CAS(&table[hash(v)], EMPTY, v)` in the paper. The Rust port must make
//! `insert` take `&self` (not `&mut self`) and rely on interior mutability
//! — the exact friction Listing 8(c)/(d) demonstrates: rustc does not
//! distinguish synchronized mutable access from unsynchronized, so the
//! synchronized method must be marked as taking an immutable borrow.
//!
//! "Phase-concurrent" (Shun & Blelloch): inserts may race with inserts, but
//! membership queries and extraction must happen in a later phase — exactly
//! how `dedup` uses it.

use std::sync::atomic::{AtomicU64, Ordering};

use rpb_parlay::random::hash64;

/// Sentinel marking an empty slot. Keys must be `< u64::MAX`.
pub const EMPTY: u64 = u64::MAX;

/// A fixed-capacity phase-concurrent hash set for `u64` keys.
pub struct ConcurrentHashSet {
    table: Vec<AtomicU64>,
    mask: usize,
}

impl ConcurrentHashSet {
    /// Creates a set able to hold `capacity` keys at ≤50% load.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let slots = (capacity * 2).next_power_of_two();
        let table = (0..slots).map(|_| AtomicU64::new(EMPTY)).collect();
        ConcurrentHashSet {
            table,
            mask: slots - 1,
        }
    }

    /// Number of slots (≥ 2 × capacity).
    pub fn slots(&self) -> usize {
        self.table.len()
    }

    /// Inserts `key`, returning `true` if it was not already present.
    ///
    /// Callable concurrently from many tasks (takes `&self`; the paper's
    /// Listing 8(d) point). Lock-free: at most `slots` probes.
    ///
    /// # Panics
    /// Panics if `key == EMPTY` or the table is full.
    pub fn insert(&self, key: u64) -> bool {
        assert_ne!(key, EMPTY, "EMPTY sentinel cannot be inserted");
        let mut i = (hash64(key) as usize) & self.mask;
        for _ in 0..=self.mask {
            let cur = self.table[i].load(Ordering::Relaxed);
            if cur == key {
                return false;
            }
            if cur == EMPTY {
                match self.table[i].compare_exchange(
                    EMPTY,
                    key,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return true,
                    Err(actual) => {
                        if actual == key {
                            return false;
                        }
                        // Someone claimed the slot with a different key:
                        // keep probing from the same slot's successor.
                    }
                }
            }
            i = (i + 1) & self.mask;
        }
        panic!("ConcurrentHashSet full: increase capacity");
    }

    /// Membership query. Must not race with `insert` (phase-concurrent).
    pub fn contains(&self, key: u64) -> bool {
        let mut i = (hash64(key) as usize) & self.mask;
        for _ in 0..=self.mask {
            let cur = self.table[i].load(Ordering::Relaxed);
            if cur == key {
                return true;
            }
            if cur == EMPTY {
                return false;
            }
            i = (i + 1) & self.mask;
        }
        false
    }

    /// Extracts all resident keys (unordered). Phase boundary: must not
    /// race with `insert`.
    pub fn elements(&self) -> Vec<u64> {
        use rayon::prelude::*;
        self.table
            .par_iter()
            .filter_map(|slot| {
                let v = slot.load(Ordering::Relaxed);
                (v != EMPTY).then_some(v)
            })
            .collect()
    }

    /// Number of resident keys (phase boundary applies).
    pub fn len(&self) -> usize {
        use rayon::prelude::*;
        self.table
            .par_iter()
            .filter(|s| s.load(Ordering::Relaxed) != EMPTY)
            .count()
    }

    /// True if no keys are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn insert_and_contains() {
        let set = ConcurrentHashSet::with_capacity(100);
        assert!(set.insert(5));
        assert!(!set.insert(5));
        assert!(set.contains(5));
        assert!(!set.contains(6));
    }

    #[test]
    fn parallel_inserts_match_hashset_model() {
        let n: u64 = if cfg!(miri) { 512 } else { 100_000 };
        let keys: Vec<u64> = (0..n).map(|i| hash64(i) % (n / 4).max(1)).collect();
        let set = ConcurrentHashSet::with_capacity(keys.len());
        keys.par_iter().for_each(|&k| {
            set.insert(k);
        });
        let got: HashSet<u64> = set.elements().into_iter().collect();
        let want: HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(got, want);
        assert_eq!(set.len(), want.len());
    }

    #[test]
    fn insert_count_is_exact_under_contention() {
        use std::sync::atomic::AtomicUsize;
        // Every key duplicated 4x; exactly one insert per key must win.
        let n: u64 = if cfg!(miri) { 256 } else { 25_000 };
        let keys: Vec<u64> = (0..n).flat_map(|k| [k, k, k, k]).collect();
        let set = ConcurrentHashSet::with_capacity(keys.len());
        let wins = AtomicUsize::new(0);
        keys.par_iter().for_each(|&k| {
            if set.insert(k) {
                wins.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), n as usize);
    }

    #[test]
    fn elements_returns_each_key_once() {
        let set = ConcurrentHashSet::with_capacity(1000);
        for k in 0..500u64 {
            set.insert(k);
        }
        let mut elems = set.elements();
        elems.sort_unstable();
        assert_eq!(elems, (0..500).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "EMPTY sentinel")]
    fn empty_sentinel_rejected() {
        let set = ConcurrentHashSet::with_capacity(4);
        set.insert(EMPTY);
    }

    #[test]
    fn collision_heavy_keys_probe_correctly() {
        // Tiny table forces probing chains.
        let set = ConcurrentHashSet::with_capacity(8);
        for k in 0..8u64 {
            assert!(set.insert(k));
        }
        for k in 0..8u64 {
            assert!(set.contains(k));
        }
    }
}
