//! Priority updates: CAS loops that monotonically improve a shared value.
//!
//! "Priority update" (Shun et al., SPAA'13) is the benign-looking `AW`
//! idiom the paper discusses in Sec. 5.2: many tasks race to write the
//! minimum (or maximum) into a shared cell. Implemented as a
//! compare-exchange loop it is linearizable and contention-friendly —
//! the loop exits as soon as the resident value is already at least as
//! good, so over time most attempts are a single relaxed load.
//!
//! Rust's verdict per the paper: using these is *scared* territory — data
//! races are ruled out, but nothing checks that relaxed ordering or the
//! retry logic is correct.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomically sets `*cell = min(*cell, value)`.
///
/// Returns `true` iff `value` strictly improved (lowered) the cell.
#[inline]
pub fn write_min_u64(cell: &AtomicU64, value: u64) -> bool {
    let mut cur = cell.load(Ordering::Relaxed);
    while value < cur {
        match cell.compare_exchange_weak(cur, value, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(actual) => cur = actual,
        }
    }
    false
}

/// Atomically sets `*cell = max(*cell, value)`.
///
/// Returns `true` iff `value` strictly raised the cell.
#[inline]
pub fn write_max_u64(cell: &AtomicU64, value: u64) -> bool {
    let mut cur = cell.load(Ordering::Relaxed);
    while value > cur {
        match cell.compare_exchange_weak(cur, value, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(actual) => cur = actual,
        }
    }
    false
}

/// Generic priority update: installs `value` iff `better(value, current)`.
///
/// Returns `true` if installed.
#[inline]
pub fn write_better<F>(cell: &AtomicU64, value: u64, better: F) -> bool
where
    F: Fn(u64, u64) -> bool,
{
    let mut cur = cell.load(Ordering::Relaxed);
    while better(value, cur) {
        match cell.compare_exchange_weak(cur, value, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(actual) => cur = actual,
        }
    }
    false
}

/// Reinterprets `&mut [u64]` as `&[AtomicU64]` for a synchronization phase.
///
/// This is the standard (and sound) trick for the paper's `Sync` mode: the
/// exclusive borrow proves no other references exist, and `AtomicU64` has
/// the same layout as `u64`.
pub fn as_atomic_u64(slice: &mut [u64]) -> &[AtomicU64] {
    // SAFETY: AtomicU64 is #[repr(C, align(8))] with the same size as u64;
    // the exclusive borrow guarantees we hold the only reference.
    unsafe { std::slice::from_raw_parts(slice.as_ptr() as *const AtomicU64, slice.len()) }
}

/// Reinterprets `&mut [usize]` as `&[AtomicUsize]`.
pub fn as_atomic_usize(slice: &mut [usize]) -> &[std::sync::atomic::AtomicUsize] {
    // SAFETY: as in `as_atomic_u64`.
    unsafe {
        std::slice::from_raw_parts(
            slice.as_ptr() as *const std::sync::atomic::AtomicUsize,
            slice.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn write_min_keeps_minimum() {
        let n: u64 = if cfg!(miri) { 256 } else { 10_000 };
        let cell = AtomicU64::new(u64::MAX);
        (0..n).into_par_iter().for_each(|i| {
            write_min_u64(&cell, rpb_parlay::random::hash64(i) % 1_000_000);
        });
        let want = (0..n)
            .map(|i| rpb_parlay::random::hash64(i) % 1_000_000)
            .min()
            .unwrap();
        assert_eq!(cell.load(Ordering::Relaxed), want);
    }

    #[test]
    fn write_max_keeps_maximum() {
        let n: u64 = if cfg!(miri) { 256 } else { 10_000 };
        let cell = AtomicU64::new(0);
        (0..n).into_par_iter().for_each(|i| {
            write_max_u64(&cell, rpb_parlay::random::hash64(i) % 1_000_000);
        });
        let want = (0..n)
            .map(|i| rpb_parlay::random::hash64(i) % 1_000_000)
            .max()
            .unwrap();
        assert_eq!(cell.load(Ordering::Relaxed), want);
    }

    #[test]
    fn write_min_reports_improvement() {
        let cell = AtomicU64::new(10);
        assert!(write_min_u64(&cell, 5));
        assert!(!write_min_u64(&cell, 7));
        assert!(!write_min_u64(&cell, 5));
        assert_eq!(cell.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn write_better_with_custom_order() {
        // Prefer even values, then smaller.
        let better = |new: u64, cur: u64| {
            let (ne, ce) = (new % 2 == 0, cur % 2 == 0);
            match (ne, ce) {
                (true, false) => true,
                (false, true) => false,
                _ => new < cur,
            }
        };
        let cell = AtomicU64::new(9);
        assert!(write_better(&cell, 12, better));
        assert!(!write_better(&cell, 13, better));
        assert!(write_better(&cell, 4, better));
        assert_eq!(cell.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn atomic_view_round_trip() {
        let mut v = vec![5u64; 100];
        {
            let a = as_atomic_u64(&mut v);
            (0..100usize).into_par_iter().for_each(|i| {
                write_min_u64(&a[i], i as u64);
            });
        }
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i as u64).min(5));
        }
    }
}
