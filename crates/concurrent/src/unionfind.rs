//! Concurrent union-find with atomic hooking and path halving.
//!
//! The engine of the `sf` (spanning forest) and `msf` (minimum spanning
//! forest) benchmarks. Roots hook onto other roots with a single
//! `compare_exchange`; `find` compresses paths with benign relaxed stores
//! (path halving). This is the classic lock-free DSU whose correctness
//! argument — every CAS only ever redirects a *root*, so the parent forest
//! stays acyclic — lives entirely outside the type system: Rust keeps it
//! race-free but, per the paper's Observation 5, cannot keep the
//! programmer from hooking in the wrong direction. `AW` pattern.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A lock-free disjoint-set forest over `0..n`.
pub struct ConcurrentUnionFind {
    parent: Vec<AtomicUsize>,
}

impl ConcurrentUnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        ConcurrentUnionFind {
            parent: (0..n).map(AtomicUsize::new).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set, with path halving.
    pub fn find(&self, mut x: usize) -> usize {
        loop {
            let p = self.parent[x].load(Ordering::Relaxed);
            if p == x {
                return x;
            }
            let gp = self.parent[p].load(Ordering::Relaxed);
            if p == gp {
                return p;
            }
            // Path halving; racing stores are benign (any value on the
            // root path is valid).
            let _ =
                self.parent[x].compare_exchange_weak(p, gp, Ordering::Relaxed, Ordering::Relaxed);
            x = gp;
        }
    }

    /// Merges the sets of `u` and `v`. Returns `true` iff they were
    /// previously disjoint (i.e., this call performed the link) — the
    /// property `sf` uses to claim an edge for the forest.
    pub fn unite(&self, u: usize, v: usize) -> bool {
        loop {
            let ru = self.find(u);
            let rv = self.find(v);
            if ru == rv {
                return false;
            }
            // Deterministic direction: hook the smaller-id root under the
            // larger. Only a *current* root may be redirected, enforced by
            // the CAS expected value.
            let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
            if self.parent[lo]
                .compare_exchange(lo, hi, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
            // Lost the race: someone re-rooted lo; retry from fresh finds.
        }
    }

    /// True if `u` and `v` are currently in the same set. Racy with
    /// concurrent `unite`s (phase-concurrent usage intended).
    pub fn same_set(&self, u: usize, v: usize) -> bool {
        // Standard double-check loop to get a consistent snapshot.
        loop {
            let ru = self.find(u);
            let rv = self.find(v);
            if ru == rv {
                return true;
            }
            // If ru is still a root, the answer "different" was stable at
            // the moment we checked.
            if self.parent[ru].load(Ordering::Acquire) == ru {
                return false;
            }
        }
    }

    /// Number of distinct sets (sequential phase).
    pub fn count_sets(&self) -> usize {
        (0..self.parent.len())
            .filter(|&x| self.parent[x].load(Ordering::Relaxed) == x)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn basic_union_and_find() {
        let uf = ConcurrentUnionFind::new(10);
        assert!(uf.unite(1, 2));
        assert!(uf.unite(2, 3));
        assert!(!uf.unite(1, 3));
        assert!(uf.same_set(1, 3));
        assert!(!uf.same_set(0, 1));
        assert_eq!(uf.count_sets(), 8);
    }

    #[test]
    fn exactly_n_minus_components_unions_succeed() {
        use std::sync::atomic::AtomicUsize as Counter;
        // A cycle over n nodes has n edges; exactly n-1 unites must win.
        let n = if cfg!(miri) { 256 } else { 10_000 };
        let uf = ConcurrentUnionFind::new(n);
        let wins = Counter::new(0);
        (0..n).into_par_iter().for_each(|i| {
            if uf.unite(i, (i + 1) % n) {
                wins.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), n - 1);
        assert_eq!(uf.count_sets(), 1);
    }

    #[test]
    fn parallel_matches_sequential_dsu() {
        // Random edge set; compare component structure to a sequential DSU.
        let n = if cfg!(miri) { 128 } else { 5000 };
        let n_edges: u64 = if cfg!(miri) { 200 } else { 8000 };
        let edges: Vec<(usize, usize)> = (0..n_edges)
            .map(|i| {
                let h = rpb_parlay::random::hash64(i);
                ((h % n as u64) as usize, ((h >> 20) % n as u64) as usize)
            })
            .collect();
        let uf = ConcurrentUnionFind::new(n);
        edges.par_iter().for_each(|&(u, v)| {
            uf.unite(u, v);
        });
        // Sequential reference.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut Vec<usize>, mut x: usize) -> usize {
            while p[x] != x {
                p[x] = p[p[x]];
                x = p[x];
            }
            x
        }
        for &(u, v) in &edges {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru] = rv;
            }
        }
        for i in 0..n {
            for j in [0, n / 2, n - 1] {
                let seq_same = find(&mut parent, i) == find(&mut parent, j);
                assert_eq!(uf.same_set(i, j), seq_same, "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn singleton_properties() {
        let uf = ConcurrentUnionFind::new(3);
        assert_eq!(uf.find(2), 2);
        assert_eq!(uf.count_sets(), 3);
        assert!(uf.same_set(1, 1));
    }
}
