//! Deterministic reservations — PBBS's `speculative_for`.
//!
//! The engine behind `mis`, `mm`, and `dr`: iterations of a loop with
//! run-time dependences execute speculatively in rounds. Each active
//! iteration first *reserves* the shared cells it needs by writing its
//! iteration index with a `write_min` priority update; iterations that
//! still hold all their reservations then *commit*; losers retry next
//! round. Because priority is the iteration index, the result equals the
//! sequential loop's — deterministic parallelism out of an `AW` pattern
//! (Blelloch et al., "Internally deterministic parallel algorithms can be
//! fast", PPoPP'12).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use rayon::prelude::*;

/// Sentinel: cell not reserved.
pub const FREE: usize = usize::MAX;

/// An array of reservation cells, one per contended resource.
pub struct ReservationStation {
    cells: Vec<AtomicUsize>,
}

impl ReservationStation {
    /// `n` initially free cells.
    pub fn new(n: usize) -> Self {
        ReservationStation {
            cells: (0..n).map(|_| AtomicUsize::new(FREE)).collect(),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if there are no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Reserve cell `c` with priority `i` (lower wins).
    #[inline]
    pub fn reserve(&self, c: usize, i: usize) {
        let cell = &self.cells[c];
        let mut cur = cell.load(Ordering::Relaxed);
        while i < cur {
            match cell.compare_exchange_weak(cur, i, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Does iteration `i` currently hold cell `c`?
    #[inline]
    pub fn holds(&self, c: usize, i: usize) -> bool {
        self.cells[c].load(Ordering::Relaxed) == i
    }

    /// If iteration `i` holds cell `c`, release it and return true.
    #[inline]
    pub fn check_reset(&self, c: usize, i: usize) -> bool {
        self.cells[c]
            .compare_exchange(i, FREE, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    /// Unconditionally frees cell `c`.
    #[inline]
    pub fn reset(&self, c: usize) {
        self.cells[c].store(FREE, Ordering::Relaxed);
    }

    /// Current owner of cell `c`, or [`FREE`].
    #[inline]
    pub fn owner(&self, c: usize) -> usize {
        self.cells[c].load(Ordering::Relaxed)
    }
}

/// Outcome of one `speculative_for` call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpecStatus {
    /// Number of reserve/commit rounds executed.
    pub rounds: usize,
    /// Total commit attempts that failed and were retried.
    pub retries: usize,
}

/// Runs iterations `range` speculatively with deterministic reservations.
///
/// * `reserve(i)` — called first each round for every active iteration;
///   returns `false` if the iteration discovered it has nothing to do
///   (it then completes without a commit), `true` to proceed to commit.
/// * `commit(i)` — returns `true` if the iteration completed, `false` to
///   retry it next round.
///
/// `granularity` bounds how many iterations are in flight per round; PBBS
/// tunes this per benchmark (typically a few thousand). The sequential
/// semantics are those of the loop run in index order.
pub fn speculative_for<R, C>(
    range: Range<usize>,
    granularity: usize,
    reserve: R,
    commit: C,
) -> SpecStatus
where
    R: Fn(usize) -> bool + Send + Sync,
    C: Fn(usize) -> bool + Send + Sync,
{
    assert!(granularity > 0, "granularity must be positive");
    let mut active: Vec<usize> = Vec::new();
    let mut next = range.start;
    let mut rounds = 0usize;
    let mut retries = 0usize;
    while next < range.end || !active.is_empty() {
        // Top up the in-flight window, preserving index priority order.
        let room = granularity.saturating_sub(active.len());
        let take = room.min(range.end - next);
        active.extend(next..next + take);
        next += take;

        // Reserve phase (parallel).
        let wants: Vec<bool> = active.par_iter().map(|&i| reserve(i)).collect();
        // Commit phase (parallel).
        let done: Vec<bool> = active
            .par_iter()
            .zip(wants.par_iter())
            .map(|(&i, &w)| if w { commit(i) } else { true })
            .collect();
        let before = active.len();
        active = active
            .iter()
            .zip(done.iter())
            .filter_map(|(&i, &d)| (!d).then_some(i))
            .collect();
        retries += active.len();
        rounds += 1;
        debug_assert!(active.len() < before || before == 0, "no forward progress");
    }
    SpecStatus { rounds, retries }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic-reservations "resource claiming": each iteration wants
    /// two cells; winners claim both. Must equal the sequential greedy.
    fn greedy_two_cell(n_iters: usize, cells: usize, granularity: usize) -> Vec<bool> {
        let pairs: Vec<(usize, usize)> = (0..n_iters)
            .map(|i| {
                let h = rpb_parlay::random::hash64(i as u64);
                (
                    (h % cells as u64) as usize,
                    ((h >> 17) % cells as u64) as usize,
                )
            })
            .collect();
        // Parallel with reservations.
        let station = ReservationStation::new(cells);
        let claimed: Vec<AtomicUsize> = (0..cells).map(|_| AtomicUsize::new(0)).collect();
        let won: Vec<AtomicUsize> = (0..n_iters).map(|_| AtomicUsize::new(0)).collect();
        speculative_for(
            0..n_iters,
            granularity,
            |i| {
                let (a, b) = pairs[i];
                if claimed[a].load(Ordering::Relaxed) == 1
                    || claimed[b].load(Ordering::Relaxed) == 1
                {
                    return false; // cell already taken: iteration is a no-op
                }
                station.reserve(a, i);
                if a != b {
                    station.reserve(b, i);
                }
                true
            },
            |i| {
                let (a, b) = pairs[i];
                if station.holds(a, i) && station.holds(b, i) {
                    claimed[a].store(1, Ordering::Relaxed);
                    claimed[b].store(1, Ordering::Relaxed);
                    won[i].store(1, Ordering::Relaxed);
                    station.check_reset(a, i);
                    if a != b {
                        station.check_reset(b, i);
                    }
                    true
                } else {
                    // Release whatever we hold and retry unless the cells
                    // got claimed by a winner (then we are done as a loser).
                    station.check_reset(a, i);
                    if a != b {
                        station.check_reset(b, i);
                    }
                    claimed[a].load(Ordering::Relaxed) == 1
                        || claimed[b].load(Ordering::Relaxed) == 1
                }
            },
        );
        won.iter().map(|w| w.load(Ordering::Relaxed) == 1).collect()
    }

    fn greedy_two_cell_sequential(n_iters: usize, cells: usize) -> Vec<bool> {
        let mut claimed = vec![false; cells];
        let mut won = vec![false; n_iters];
        for i in 0..n_iters {
            let h = rpb_parlay::random::hash64(i as u64);
            let (a, b) = (
                (h % cells as u64) as usize,
                ((h >> 17) % cells as u64) as usize,
            );
            if !claimed[a] && !claimed[b] {
                claimed[a] = true;
                claimed[b] = true;
                won[i] = true;
            }
        }
        won
    }

    #[test]
    fn matches_sequential_greedy_small_granularity() {
        let (n, cells) = if cfg!(miri) { (200, 30) } else { (2000, 300) };
        let got = greedy_two_cell(n, cells, 64);
        let want = greedy_two_cell_sequential(n, cells);
        assert_eq!(got, want);
    }

    #[test]
    fn matches_sequential_greedy_large_granularity() {
        let (n, cells) = if cfg!(miri) { (200, 30) } else { (2000, 300) };
        let got = greedy_two_cell(n, cells, 4096);
        let want = greedy_two_cell_sequential(n, cells);
        assert_eq!(got, want);
    }

    #[test]
    fn reserve_lowest_priority_wins() {
        let st = ReservationStation::new(1);
        st.reserve(0, 10);
        st.reserve(0, 5);
        st.reserve(0, 7);
        assert_eq!(st.owner(0), 5);
        assert!(st.holds(0, 5));
        assert!(!st.holds(0, 7));
    }

    #[test]
    fn check_reset_only_for_holder() {
        let st = ReservationStation::new(2);
        st.reserve(1, 3);
        assert!(!st.check_reset(1, 4));
        assert!(st.check_reset(1, 3));
        assert_eq!(st.owner(1), FREE);
    }

    #[test]
    fn status_counts_rounds() {
        // Conflict-free iterations: one round per granularity window.
        let st = ReservationStation::new(100);
        let status = speculative_for(
            0..100,
            10,
            |i| {
                st.reserve(i, i);
                true
            },
            |i| st.holds(i, i),
        );
        assert_eq!(status.rounds, 10);
        assert_eq!(status.retries, 0);
    }

    #[test]
    fn empty_range_is_zero_rounds() {
        let status = speculative_for(5..5, 8, |_| true, |_| true);
        assert_eq!(status.rounds, 0);
    }
}
