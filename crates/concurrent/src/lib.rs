//! # rpb-concurrent
//!
//! Shared-memory substrate for the *arbitrary read-write* (`AW`) phases of
//! the RPB suite — the patterns Sec. 5.2 of the paper shows Rust cannot
//! make fearless, only race-free:
//!
//! * [`atomics`] — priority-update CAS loops (`write_min`/`write_max`,
//!   Shun et al.) used by `msf`, `bfs`, and `sssp`,
//! * [`hashtable`] — the phase-concurrent CAS hash table of the paper's
//!   Listing 8, used by `dedup` (and `dr` for point lookup),
//! * [`unionfind`] — concurrent union-find with atomic hooking, used by
//!   `sf` and `msf`,
//! * [`reservations`] — PBBS *deterministic reservations*
//!   (`speculative_for`), the engine of `mis`, `mm`, and `dr`.

pub mod atomics;
pub mod hashtable;
pub mod reservations;
pub mod unionfind;

pub use atomics::{write_max_u64, write_min_u64};
pub use hashtable::ConcurrentHashSet;
pub use reservations::{speculative_for, ReservationStation, SpecStatus};
pub use unionfind::ConcurrentUnionFind;
