//! Property-based tests for the concurrent substrate.

// Too slow for Miri (hundreds of cases through rayon, plus proptest's
// failure-persistence file I/O); the library's cfg(miri)-sized unit tests
// cover the same structures under the interpreter.
#![cfg(not(miri))]

use proptest::prelude::*;
use rayon::prelude::*;
use rpb_concurrent::*;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The hash set equals a HashSet model after arbitrary parallel
    /// inserts.
    #[test]
    fn hashset_model(keys in proptest::collection::vec(0u64..10_000, 1..3000)) {
        let set = ConcurrentHashSet::with_capacity(keys.len());
        keys.par_iter().for_each(|&k| {
            set.insert(k);
        });
        let want: std::collections::HashSet<u64> = keys.iter().copied().collect();
        let got: std::collections::HashSet<u64> = set.elements().into_iter().collect();
        prop_assert_eq!(got, want);
        for &k in &keys {
            prop_assert!(set.contains(k));
        }
    }

    /// write_min over any parallel schedule lands on the true minimum,
    /// and the number of "improved" returns is bounded by... at least 1.
    #[test]
    fn write_min_is_min(values in proptest::collection::vec(any::<u64>(), 1..3000)) {
        let cell = AtomicU64::new(u64::MAX);
        let improvements = AtomicUsize::new(0);
        values.par_iter().for_each(|&v| {
            if write_min_u64(&cell, v) {
                improvements.fetch_add(1, Ordering::Relaxed);
            }
        });
        prop_assert_eq!(cell.load(Ordering::Relaxed), *values.iter().min().unwrap());
        prop_assert!(improvements.load(Ordering::Relaxed) >= 1);
    }

    /// Union-find connectivity equals a sequential DSU for arbitrary
    /// parallel union schedules.
    #[test]
    fn unionfind_model(
        n in 1usize..300,
        edges in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..600),
    ) {
        let edges: Vec<(usize, usize)> = edges
            .into_iter()
            .map(|(u, v)| ((u as usize) % n, (v as usize) % n))
            .collect();
        let uf = ConcurrentUnionFind::new(n);
        edges.par_iter().for_each(|&(u, v)| {
            uf.unite(u, v);
        });
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut [usize], mut x: usize) -> usize {
            while p[x] != x {
                p[x] = p[p[x]];
                x = p[x];
            }
            x
        }
        for &(u, v) in &edges {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru] = rv;
            }
        }
        let seq_sets = {
            let mut c = 0;
            for x in 0..n {
                if find(&mut parent, x) == x {
                    c += 1;
                }
            }
            c
        };
        prop_assert_eq!(uf.count_sets(), seq_sets);
    }

    /// speculative_for with per-iteration unique cells completes every
    /// iteration in one attempt regardless of granularity.
    #[test]
    fn speculative_for_no_conflicts(n in 1usize..2000, gran in 1usize..512) {
        let station = ReservationStation::new(n);
        let done: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let status = speculative_for(
            0..n,
            gran,
            |i| {
                station.reserve(i, i);
                true
            },
            |i| {
                assert!(station.holds(i, i));
                done[i].fetch_add(1, Ordering::Relaxed);
                true
            },
        );
        prop_assert_eq!(status.retries, 0);
        for d in &done {
            prop_assert_eq!(d.load(Ordering::Relaxed), 1);
        }
    }

    /// All-contending speculative iterations serialize in priority order:
    /// with one shared cell, the winner sequence is 0, 1, 2, … and every
    /// iteration eventually commits exactly once.
    #[test]
    fn speculative_for_total_conflict(n in 1usize..200, gran in 1usize..64) {
        let station = ReservationStation::new(1);
        let commits = AtomicUsize::new(0);
        speculative_for(
            0..n,
            gran,
            |i| {
                station.reserve(0, i);
                true
            },
            |i| {
                if station.holds(0, i) {
                    commits.fetch_add(1, Ordering::Relaxed);
                    station.check_reset(0, i);
                    true
                } else {
                    false
                }
            },
        );
        prop_assert_eq!(commits.load(Ordering::Relaxed), n);
    }
}
