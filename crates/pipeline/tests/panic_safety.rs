//! Panic-injection tests for the pipeline skeleton.
//!
//! A stage worker that panics mid-stream unwinds through the executor's
//! batch machinery. These tests pin down the shutdown protocol the
//! module docs promise: (a) the run surfaces a typed
//! [`PipelineError::StagePanicked`] naming the first panicking stage
//! instead of deadlocking a blocked `send`/`recv`, (b) every in-flight
//! item is dropped exactly once (channels drained, destructors intact,
//! checked with instrumented item types), and (c) the executor backend
//! is immediately reusable for a clean run afterward. Modeled on
//! `crates/fearless/tests/panic_safety.rs`, swept across both channel
//! backends and both executor backends.

use std::sync::atomic::{AtomicUsize, Ordering};

use rpb_parlay::exec::BackendKind;
use rpb_pipeline::{ChannelKind, Pipeline, PipelineConfig, PipelineError, ALL_CHANNELS};

fn cfg(channel: ChannelKind, backend: BackendKind) -> PipelineConfig {
    PipelineConfig {
        channel,
        capacity: 4,
        backend,
    }
}

/// Both executor backends, with the MultiQueue registry slot filled.
fn backends() -> [BackendKind; 2] {
    rpb_multiqueue::backend::ensure_registered();
    [BackendKind::Rayon, BackendKind::Mq]
}

fn assert_panicked(err: &PipelineError, want_stage: &str, want_msg: &str) {
    match err {
        PipelineError::StagePanicked { stage, message, .. } => {
            assert_eq!(stage, want_stage, "{err}");
            assert!(message.contains(want_msg), "{err}");
        }
        other => panic!("wrong error kind: {other}"),
    }
}

#[test]
fn stage_panic_is_typed_drains_items_and_leaves_the_backend_reusable() {
    static CREATED: AtomicUsize = AtomicUsize::new(0);
    static DROPPED: AtomicUsize = AtomicUsize::new(0);
    struct Tracked(u64);
    impl Tracked {
        fn new(v: u64) -> Self {
            CREATED.fetch_add(1, Ordering::SeqCst);
            Tracked(v)
        }
    }
    impl Drop for Tracked {
        fn drop(&mut self) {
            DROPPED.fetch_add(1, Ordering::SeqCst);
        }
    }

    for backend in backends() {
        for channel in ALL_CHANNELS {
            let err = Pipeline::source(cfg(channel, backend), (0..500u64).map(Tracked::new))
                .and_then(|p| {
                    p.stage("explode", 2, |t: Tracked| {
                        if t.0 == 250 {
                            panic!("injected stage panic");
                        }
                        t
                    })
                })
                .and_then(|p| p.run_fold(0u64, |a, t| a + t.0))
                .expect_err("injected panic must surface as a typed error");
            assert_panicked(&err, "explode", "injected stage panic");
            // The batch has fully unwound by the time run_fold returns:
            // every endpoint is dropped, so every item constructed — sent,
            // in flight, or mid-transform — has been dropped exactly once.
            assert_eq!(
                CREATED.load(Ordering::SeqCst),
                DROPPED.load(Ordering::SeqCst),
                "{channel:?}/{backend:?}: channel drain must drop every item once"
            );

            // The backend is unharmed: the same executor runs a clean
            // pipeline immediately after the unwind.
            let (sum, stats) =
                Pipeline::source(cfg(channel, backend), (0..100u64).map(Tracked::new))
                    .and_then(|p| p.stage("id", 2, |t: Tracked| t))
                    .and_then(|p| p.run_fold(0u64, |a, t| a + t.0))
                    .expect("clean run after the unwind");
            assert_eq!(sum, 99 * 100 / 2, "{channel:?}/{backend:?}");
            assert_eq!(stats.items_in, 100);
            assert_eq!(stats.items_out, 100);
            assert_eq!(
                CREATED.load(Ordering::SeqCst),
                DROPPED.load(Ordering::SeqCst),
                "{channel:?}/{backend:?}: clean run drops everything too"
            );
        }
    }
}

#[test]
fn source_and_sink_panics_are_attributed_to_their_stage() {
    for backend in backends() {
        for channel in ALL_CHANNELS {
            let err = Pipeline::source(
                cfg(channel, backend),
                (0..50u64).map(|i| {
                    if i == 25 {
                        panic!("injected source panic");
                    }
                    i
                }),
            )
            .and_then(|p| p.stage("id", 2, |x| x))
            .and_then(Pipeline::run_collect)
            .expect_err("source panic must surface");
            assert_panicked(&err, "source", "injected source panic");

            let err = Pipeline::source(cfg(channel, backend), 0..50u64)
                .and_then(|p| p.stage("id", 2, |x| x))
                .and_then(|p| {
                    p.run_fold(0u64, |a, x| {
                        if a > 10 {
                            panic!("injected sink panic");
                        }
                        a + x
                    })
                })
                .expect_err("sink panic must surface");
            assert_panicked(&err, "sink", "injected sink panic");
        }
    }
}

#[test]
fn deep_pipeline_panic_under_backpressure_does_not_deadlock() {
    static CREATED: AtomicUsize = AtomicUsize::new(0);
    static DROPPED: AtomicUsize = AtomicUsize::new(0);
    struct Tracked(u64);
    impl Tracked {
        fn new(v: u64) -> Self {
            CREATED.fetch_add(1, Ordering::SeqCst);
            Tracked(v)
        }
    }
    impl Drop for Tracked {
        fn drop(&mut self) {
            DROPPED.fetch_add(1, Ordering::SeqCst);
        }
    }

    // Tight capacity + an early panic in the *last* transform stage: the
    // upstream farms are parked on full queues when the unwind starts and
    // must be released by channel disconnects, not a timeout.
    for backend in backends() {
        for channel in ALL_CHANNELS {
            let tight = PipelineConfig {
                channel,
                capacity: 1,
                backend,
            };
            let err = Pipeline::source(tight, (0..2_000u64).map(Tracked::new))
                .and_then(|p| p.stage("widen", 2, |t: Tracked| t))
                .and_then(|p| {
                    p.stage("explode", 3, |t: Tracked| {
                        if t.0 >= 3 {
                            panic!("injected deep panic");
                        }
                        t
                    })
                })
                .and_then(|p| p.run_fold(0u64, |a, t| a + t.0))
                .expect_err("panic must surface without deadlocking");
            assert_panicked(&err, "explode", "injected deep panic");
            assert_eq!(
                CREATED.load(Ordering::SeqCst),
                DROPPED.load(Ordering::SeqCst),
                "{channel:?}/{backend:?}: every item dropped exactly once"
            );
        }
    }
}
