//! The typed multi-stage pipeline skeleton: source → N transform stages
//! → sink, every stage a farm of workers dispatched as one batch through
//! the executor registry ([`rpb_parlay::exec`]).
//!
//! ## Shape
//!
//! A [`Pipeline`] is built left to right: [`Pipeline::source`] seeds the
//! item stream, each [`stage`](Pipeline::stage) call adds a farm of
//! workers applying a transform (changing the item type from `T` to
//! `U`), and [`run_fold`](Pipeline::run_fold) appends the sink and runs
//! everything to completion as a single executor batch. Adjacent stages
//! are connected by one bounded channel of the configured
//! [`ChannelKind`] and capacity, so total in-flight data is capped at
//! `capacity × channels` items — the bounded-memory property streaming
//! variants exist for, tracked by the `pipeline_max_inflight` gauge and
//! asserted by `rpb verify --streaming`.
//!
//! ## Unwind-cleanliness
//!
//! A panicking stage worker must never deadlock the rest of the farm.
//! The shutdown protocol is ownership-driven: every worker exits its
//! loop on a typed disconnect in *either* direction (upstream
//! [`RecvError`], downstream [`SendError`]), and a worker that unwinds
//! drops its channel endpoints, which cascades: with every worker of a
//! stage gone, the upstream channel loses its last receiver (blocked
//! producers fail their sends and exit) and the downstream channel loses
//! its last sender (the consumer's recv returns end-of-stream). In-flight
//! items are dropped with destructors intact — by the failing worker, by
//! the executor's batch drain, and by the channels themselves. The
//! executor surfaces the first panic as a
//! [`BatchError`](rpb_parlay::exec::BatchError), which the pipeline maps
//! to [`PipelineError::StagePanicked`] with the stage name attributed.
//!
//! ## Scheduling
//!
//! Stage workers are *blocking* tasks, so the batch is dispatched with
//! `workers = task count`: the Rayon backend's batch pool has exactly
//! one thread per spawned task, and the MQ backend hosts each task on a
//! dedicated scoped thread — either way every farm worker can block in
//! `send`/`recv` without starving another stage.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rpb_obs::metrics as obs;
use rpb_parlay::exec::{self, BackendKind, BatchTask};

use crate::channel::{bounded, BoxReceiver, ChannelKind, Receiver, RecvError, SendError, Sender};

/// How a pipeline schedules and connects its stages.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Channel backend connecting adjacent stages.
    pub channel: ChannelKind,
    /// Per-channel queue capacity (items); must be at least 1.
    pub capacity: usize,
    /// Executor backend the stage farms run on.
    pub backend: BackendKind,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            channel: crate::channel::default_channel(),
            capacity: DEFAULT_CAPACITY,
            backend: exec::default_backend(),
        }
    }
}

/// Default per-channel capacity: deep enough to decouple stage bursts,
/// small enough that the bounded-memory cap stays a few chunks per stage.
pub const DEFAULT_CAPACITY: usize = 8;

/// Why a pipeline could not produce a result.
#[derive(Debug)]
pub enum PipelineError {
    /// The pipeline was misconfigured (zero capacity, zero-worker stage).
    Config(String),
    /// A stage worker panicked; the batch unwound cleanly (channels
    /// closed, in-flight items dropped with destructors run) and the
    /// first panic is reported here instead of a deadlocked recv.
    StagePanicked {
        /// Name of the first stage whose worker panicked (`"source"`,
        /// a user stage name, or `"sink"`).
        stage: String,
        /// The panic message.
        message: String,
        /// Worker tasks that ran to completion before the unwind.
        tasks_completed: usize,
        /// Worker tasks dropped without running.
        tasks_drained: usize,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Config(msg) => write!(f, "pipeline config: {msg}"),
            PipelineError::StagePanicked {
                stage,
                message,
                tasks_completed,
                tasks_drained,
            } => write!(
                f,
                "pipeline stage `{stage}` panicked: {message} \
                 ({tasks_completed} workers completed, {tasks_drained} drained)"
            ),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Always-on accounting of one completed pipeline run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Transform stages between source and sink.
    pub stages: usize,
    /// Total worker tasks dispatched (source + stage farms + sink).
    pub workers: usize,
    /// Stage-connecting channels (`stages + 1`).
    pub channels: usize,
    /// Per-channel capacity the run was configured with.
    pub capacity: usize,
    /// Items the source emitted into the first channel.
    pub items_in: u64,
    /// Items the sink folded out of the last channel.
    pub items_out: u64,
    /// High-water mark of items resident in channels across the run.
    pub max_inflight: u64,
}

impl PipelineStats {
    /// The bounded-memory cap this run was configured for: no more than
    /// `capacity` items may sit in each of the `channels` queues.
    pub fn inflight_bound(&self) -> u64 {
        (self.capacity * self.channels) as u64
    }

    /// Whether the observed high-water mark honored [`inflight_bound`]
    /// (the claim the streaming verifier asserts per cell).
    ///
    /// [`inflight_bound`]: PipelineStats::inflight_bound
    pub fn inflight_bounded(&self) -> bool {
        self.max_inflight <= self.inflight_bound()
    }
}

/// Run-wide state shared by every worker task.
#[derive(Default)]
struct Shared {
    /// Signed: an item's recv can be counted before its send on another
    /// thread (the pair is two relaxed updates), so transient negatives
    /// are legal; the max only tracks non-negative observations.
    inflight: AtomicI64,
    max_inflight: AtomicU64,
    items_in: AtomicU64,
    items_out: AtomicU64,
    /// First panicking stage, recorded before the unwind reaches the
    /// executor so the typed error can name it.
    panicked_stage: Mutex<Option<String>>,
}

/// Sends `item`, then counts it into the in-flight gauge. Counting after
/// the (possibly blocking) send means a producer parked at a full queue
/// never inflates the gauge past real channel occupancy.
fn send_counted<T: Send>(sh: &Shared, tx: &dyn Sender<T>, item: T) -> Result<(), SendError<T>> {
    tx.send(item)?;
    obs::PIPELINE_SENDS.add(1);
    let now = sh.inflight.fetch_add(1, Ordering::Relaxed) + 1;
    if now > 0 {
        sh.max_inflight.fetch_max(now as u64, Ordering::Relaxed);
    }
    Ok(())
}

/// Receives one item and counts it out of the in-flight gauge.
fn recv_counted<T: Send>(sh: &Shared, rx: &dyn Receiver<T>) -> Result<T, RecvError> {
    let item = rx.recv()?;
    obs::PIPELINE_RECVS.add(1);
    sh.inflight.fetch_sub(1, Ordering::Relaxed);
    Ok(item)
}

/// Runs one worker's loop under `catch_unwind`, attributing the first
/// panic of the run to `stage` before resuming the unwind (the executor
/// still sees the panic and does its own batch accounting).
fn guard_stage(sh: &Shared, stage: &str, body: impl FnOnce()) {
    if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
        let mut slot = sh
            .panicked_stage
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        if slot.is_none() {
            *slot = Some(stage.to_string());
        }
        drop(slot);
        resume_unwind(payload);
    }
}

/// A pipeline under construction whose current item type is `T`. The
/// lifetime `'s` lets stage closures borrow the caller's environment
/// (input slices, shared atomics); the *items* flowing through channels
/// are owned (`T: 'static`), which is what keeps the memory footprint
/// bounded by the channel capacities.
pub struct Pipeline<'s, T: Send + 'static> {
    cfg: PipelineConfig,
    tasks: Vec<BatchTask<'s>>,
    stages: usize,
    shared: Arc<Shared>,
    head: Arc<BoxReceiver<T>>,
}

impl<'s, T: Send + 'static> Pipeline<'s, T> {
    /// Starts a pipeline from an item source. The iterator runs on its
    /// own worker, pushing into the first bounded channel (so a slow
    /// downstream back-pressures the source instead of buffering).
    pub fn source<I>(cfg: PipelineConfig, items: I) -> Result<Self, PipelineError>
    where
        I: IntoIterator<Item = T> + Send + 's,
    {
        if cfg.capacity == 0 {
            return Err(PipelineError::Config(
                "channel capacity must be at least 1 (0 would be a rendezvous channel, \
                 voiding the capacity × channels in-flight bound)"
                    .into(),
            ));
        }
        let shared = Arc::new(Shared::default());
        let (tx, rx) = bounded::<T>(cfg.channel, cfg.capacity);
        let sh = Arc::clone(&shared);
        let task: BatchTask<'s> = Box::new(move || {
            guard_stage(&sh, "source", || {
                for item in items {
                    if send_counted(&sh, &*tx, item).is_err() {
                        // Every downstream worker is gone (panic
                        // shutdown): stop producing, drop the rest.
                        break;
                    }
                    sh.items_in.fetch_add(1, Ordering::Relaxed);
                    obs::PIPELINE_ITEMS_IN.add(1);
                }
            });
        });
        Ok(Pipeline {
            cfg,
            tasks: vec![task],
            stages: 0,
            shared,
            head: Arc::new(rx),
        })
    }

    /// Appends a transform stage: a farm of `workers` tasks, each pulling
    /// items from the previous stage, applying `f`, and pushing results
    /// into a fresh bounded channel. Output order across the farm is
    /// unspecified for `workers > 1` (consumers must canonicalize or
    /// merge, exactly like the batch benchmarks' parallel outputs).
    pub fn stage<U, F>(
        self,
        name: &str,
        workers: usize,
        f: F,
    ) -> Result<Pipeline<'s, U>, PipelineError>
    where
        U: Send + 'static,
        F: Fn(T) -> U + Send + Sync + 's,
    {
        if workers == 0 {
            return Err(PipelineError::Config(format!(
                "stage `{name}` needs at least 1 worker"
            )));
        }
        let Pipeline {
            cfg,
            mut tasks,
            stages,
            shared,
            head,
        } = self;
        let (tx, rx) = bounded::<U>(cfg.channel, cfg.capacity);
        let f = Arc::new(f);
        for _ in 0..workers {
            let rx_in = Arc::clone(&head);
            let tx_out = tx.clone_sender();
            let f = Arc::clone(&f);
            let sh = Arc::clone(&shared);
            let name = name.to_string();
            tasks.push(Box::new(move || {
                guard_stage(&sh, &name, || {
                    while let Ok(item) = recv_counted(&sh, &**rx_in) {
                        if send_counted(&sh, &*tx_out, f(item)).is_err() {
                            break;
                        }
                    }
                });
            }));
        }
        // `tx` (the original) and `head` drop here: the stage's channels
        // are now owned exclusively by its workers, so worker exit —
        // clean or unwinding — is what closes them.
        Ok(Pipeline {
            cfg,
            tasks,
            stages: stages + 1,
            shared,
            head: Arc::new(rx),
        })
    }

    /// Appends the sink (a single folding worker) and runs the whole
    /// pipeline to completion as one executor batch, returning the fold
    /// result and the run's accounting.
    pub fn run_fold<A, F>(self, init: A, fold: F) -> Result<(A, PipelineStats), PipelineError>
    where
        A: Send + 's,
        F: FnMut(A, T) -> A + Send + 's,
    {
        let Pipeline {
            cfg,
            mut tasks,
            stages,
            shared,
            head,
        } = self;
        let result: Arc<Mutex<Option<A>>> = Arc::new(Mutex::new(None));
        {
            let slot = Arc::clone(&result);
            let sh = Arc::clone(&shared);
            let mut fold = fold;
            tasks.push(Box::new(move || {
                guard_stage(&sh, "sink", || {
                    let mut acc = Some(init);
                    while let Ok(item) = recv_counted(&sh, &**head) {
                        sh.items_out.fetch_add(1, Ordering::Relaxed);
                        obs::PIPELINE_ITEMS_OUT.add(1);
                        acc = Some(fold(acc.take().expect("sink accumulator"), item));
                    }
                    *slot.lock().unwrap_or_else(|poison| poison.into_inner()) = acc;
                });
            }));
        }
        let workers = tasks.len();
        obs::PIPELINE_RUNS.add(1);
        // Blocking tasks: one executor worker per task (see module docs).
        let batch = exec::executor(cfg.backend).try_run_batch(workers, tasks);
        let max_inflight = shared.max_inflight.load(Ordering::Relaxed);
        obs::PIPELINE_MAX_INFLIGHT.record(max_inflight);
        match batch {
            Ok(_) => {
                let acc = result
                    .lock()
                    .unwrap_or_else(|poison| poison.into_inner())
                    .take()
                    .expect("a clean batch ran the sink to completion");
                Ok((
                    acc,
                    PipelineStats {
                        stages,
                        workers,
                        channels: stages + 1,
                        capacity: cfg.capacity,
                        items_in: shared.items_in.load(Ordering::Relaxed),
                        items_out: shared.items_out.load(Ordering::Relaxed),
                        max_inflight,
                    },
                ))
            }
            Err(err) => {
                obs::PIPELINE_STAGE_PANICS.add(1);
                let stage = shared
                    .panicked_stage
                    .lock()
                    .unwrap_or_else(|poison| poison.into_inner())
                    .take()
                    .unwrap_or_else(|| "<unattributed>".to_string());
                Err(PipelineError::StagePanicked {
                    stage,
                    message: err.message().to_string(),
                    tasks_completed: err.tasks_completed,
                    tasks_drained: err.tasks_drained,
                })
            }
        }
    }

    /// [`run_fold`](Pipeline::run_fold) collecting every item into a
    /// `Vec` (arrival order — canonicalize before comparing when any
    /// stage runs more than one worker).
    pub fn run_collect(self) -> Result<(Vec<T>, PipelineStats), PipelineError> {
        self.run_fold(Vec::new(), |mut acc, item| {
            acc.push(item);
            acc
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ALL_CHANNELS;

    fn cfg(channel: ChannelKind) -> PipelineConfig {
        PipelineConfig {
            channel,
            capacity: 4,
            backend: BackendKind::Rayon,
        }
    }

    #[test]
    fn identity_pipeline_preserves_items_in_order_at_one_worker() {
        for channel in ALL_CHANNELS {
            let (out, stats) = Pipeline::source(cfg(channel), 0..100u64)
                .and_then(|p| p.stage("id", 1, |x| x))
                .and_then(Pipeline::run_collect)
                .expect("clean run");
            assert_eq!(out, (0..100).collect::<Vec<_>>(), "{channel:?}");
            assert_eq!(stats.items_in, 100);
            assert_eq!(stats.items_out, 100);
            assert_eq!(stats.stages, 1);
            assert_eq!(stats.channels, 2);
            assert!(stats.inflight_bounded(), "{stats:?}");
        }
    }

    #[test]
    fn multi_stage_farm_transforms_every_item() {
        for channel in ALL_CHANNELS {
            let (sum, stats) = Pipeline::source(cfg(channel), 1..=1000u64)
                .and_then(|p| p.stage("double", 3, |x| x * 2))
                .and_then(|p| p.stage("inc", 2, |x| x + 1))
                .and_then(|p| p.run_fold(0u64, |a, x| a + x))
                .expect("clean run");
            // sum of (2x + 1) for x in 1..=1000.
            assert_eq!(sum, 2 * (1000 * 1001 / 2) + 1000, "{channel:?}");
            assert_eq!(stats.workers, 1 + 3 + 2 + 1);
            assert!(stats.inflight_bounded(), "{stats:?}");
        }
    }

    #[test]
    fn stage_closures_can_borrow_the_environment() {
        let data: Vec<u64> = (0..64).collect();
        let table = [10u64, 20, 30, 40];
        let (sum, _) = Pipeline::source(PipelineConfig::default(), data.chunks(8).map(Vec::from))
            .and_then(|p| {
                p.stage("lookup", 2, |chunk: Vec<u64>| {
                    chunk.iter().map(|&x| table[(x % 4) as usize]).sum::<u64>()
                })
            })
            .and_then(|p| p.run_fold(0u64, |a, x| a + x))
            .expect("clean run");
        assert_eq!(sum, 16 * (10 + 20 + 30 + 40));
    }

    #[test]
    fn zero_capacity_and_zero_workers_are_typed_config_errors() {
        let bad = PipelineConfig {
            capacity: 0,
            ..PipelineConfig::default()
        };
        let err = Pipeline::source(bad, 0..4u64).err().expect("rejected");
        assert!(matches!(err, PipelineError::Config(_)), "{err}");
        let err = Pipeline::source(PipelineConfig::default(), 0..4u64)
            .and_then(|p| p.stage("noop", 0, |x: u64| x))
            .err()
            .expect("rejected");
        assert!(err.to_string().contains("noop"), "{err}");
    }

    #[test]
    fn empty_source_folds_to_init() {
        let (out, stats) = Pipeline::source(PipelineConfig::default(), std::iter::empty::<u64>())
            .and_then(|p| p.stage("id", 2, |x| x))
            .and_then(|p| p.run_fold(42u64, |a, x| a + x))
            .expect("clean run");
        assert_eq!(out, 42);
        assert_eq!(stats.items_in, 0);
        assert_eq!(stats.items_out, 0);
        assert_eq!(stats.max_inflight, 0);
    }

    #[test]
    fn max_inflight_respects_the_capacity_bound_under_pressure() {
        for channel in ALL_CHANNELS {
            // Slow sink: the source and stage must park on full queues
            // rather than buffer past capacity × channels.
            let (count, stats) = Pipeline::source(cfg(channel), 0..200u64)
                .and_then(|p| p.stage("id", 2, |x| x))
                .and_then(|p| {
                    p.run_fold(0u64, |a, _| {
                        std::thread::sleep(std::time::Duration::from_micros(50));
                        a + 1
                    })
                })
                .expect("clean run");
            assert_eq!(count, 200);
            assert!(
                stats.inflight_bounded(),
                "{channel:?}: max_inflight {} > bound {}",
                stats.max_inflight,
                stats.inflight_bound()
            );
        }
    }
}
