//! # rpb-pipeline
//!
//! Streaming pipeline skeletons for the RPB suite: typed multi-stage
//! pipelines (source → transform farms → sink) over pluggable bounded
//! channels, dispatched through the executor registry of
//! [`rpb_parlay::exec`].
//!
//! The paper's benchmarks are in-core batch kernels; this crate opens
//! the *bounded-memory streaming* scenario class on the same kernels
//! (the pipeline/farm skeleton shape of task-based middleware like PPL
//! and Kvik). Two orthogonal axes are swappable at run time:
//!
//! * **Channel backend** ([`ChannelKind`]): `std::sync::mpsc` or
//!   `crossbeam`, selectable via `--channel`/`RPB_CHANNEL` exactly as
//!   executor backends are via `--backend`/`RPB_BACKEND`.
//! * **Executor backend** ([`rpb_parlay::exec::BackendKind`]): the farm
//!   workers run as one batch on Rayon or the MultiQueue substrate.
//!
//! Both axes are *behaviorally invisible* by contract: `rpb verify
//! --streaming` cross-checks every streaming benchmark against its
//! batch counterpart on every combination, and the `pipeline-*` perf
//! gate cells hard-gate counter equality across channel backends.
//!
//! Panic safety: a panicking stage never deadlocks the pipeline — see
//! the [`pipeline`] module docs for the ownership-driven shutdown
//! cascade and [`PipelineError::StagePanicked`] for what callers get.

pub mod channel;
pub mod pipeline;

pub use channel::{
    bounded, default_channel, set_default_channel, BoxReceiver, BoxSender, ChannelFactory,
    ChannelKind, ParseChannelError, Receiver, RecvError, SendError, Sender, ALL_CHANNELS,
};
pub use pipeline::{Pipeline, PipelineConfig, PipelineError, PipelineStats, DEFAULT_CAPACITY};
