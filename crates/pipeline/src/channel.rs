//! The channel abstraction: bounded MPMC send/recv behind object-safe
//! traits, with `std::sync::mpsc` and `crossbeam` backends.
//!
//! Mirrors the executor registry shape of [`rpb_parlay::exec`]: a
//! [`ChannelKind`] enum with stable labels and `FromStr`, a process-wide
//! default resolved as programmatic override ([`set_default_channel`]) >
//! `RPB_CHANNEL` environment variable > [`ChannelKind::Mpsc`], and a
//! [`bounded`] constructor dispatching on the kind. Call sites hold
//! [`BoxSender`]/[`BoxReceiver`] trait objects, so adding a channel
//! backend never touches them.
//!
//! Disconnect errors are typed, never panics: [`SendError`] hands the
//! unsent item back when every receiver is gone; [`RecvError`] reports
//! that every sender is gone *and* the queue is drained. Both directions
//! waking on peer-drop is what makes the pipeline's panic path cascade
//! to a clean shutdown instead of a deadlock (see `crate::pipeline`).

use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{mpsc, Mutex, OnceLock};

/// The channel backends a pipeline can run its stages over.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// `std::sync::mpsc::sync_channel`, receiver shared behind a mutex
    /// (the zero-dependency baseline, and the default).
    #[default]
    Mpsc,
    /// `crossbeam::channel::bounded` (natively MPMC).
    Crossbeam,
}

/// Every channel backend, in CLI listing order.
pub const ALL_CHANNELS: [ChannelKind; 2] = [ChannelKind::Mpsc, ChannelKind::Crossbeam];

impl ChannelKind {
    /// Stable label for CLI/report output (`"mpsc"` / `"crossbeam"`).
    pub fn label(self) -> &'static str {
        match self {
            ChannelKind::Mpsc => "mpsc",
            ChannelKind::Crossbeam => "crossbeam",
        }
    }
}

/// Error for [`ChannelKind::from_str`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseChannelError(String);

impl std::fmt::Display for ParseChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown channel `{}` (valid: mpsc, crossbeam)", self.0)
    }
}

impl std::error::Error for ParseChannelError {}

impl FromStr for ChannelKind {
    type Err = ParseChannelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "mpsc" | "std" => Ok(ChannelKind::Mpsc),
            "crossbeam" | "cb" => Ok(ChannelKind::Crossbeam),
            other => Err(ParseChannelError(other.to_string())),
        }
    }
}

/// Process-wide programmatic default: 0 = unset, 1 = mpsc, 2 = crossbeam.
static DEFAULT: AtomicU8 = AtomicU8::new(0);

/// Sets the process default returned by [`default_channel`] (what
/// `rpb … --channel <c>` does outside the verify matrix). `None` clears
/// the override back to `RPB_CHANNEL`-or-mpsc resolution.
pub fn set_default_channel(kind: Option<ChannelKind>) {
    let v = match kind {
        None => 0,
        Some(ChannelKind::Mpsc) => 1,
        Some(ChannelKind::Crossbeam) => 2,
    };
    DEFAULT.store(v, Ordering::Relaxed);
}

/// The channel backend used when a call site doesn't name one:
/// programmatic override ([`set_default_channel`]) > `RPB_CHANNEL`
/// environment variable > [`ChannelKind::Mpsc`]. An unparsable
/// `RPB_CHANNEL` warns once and falls back to mpsc (never aborts: the
/// env var may be set for a child tool, not us).
pub fn default_channel() -> ChannelKind {
    match DEFAULT.load(Ordering::Relaxed) {
        1 => return ChannelKind::Mpsc,
        2 => return ChannelKind::Crossbeam,
        _ => {}
    }
    static FROM_ENV: OnceLock<ChannelKind> = OnceLock::new();
    *FROM_ENV.get_or_init(|| match std::env::var("RPB_CHANNEL") {
        Err(_) => ChannelKind::Mpsc,
        Ok(v) => v.parse().unwrap_or_else(|e| {
            eprintln!("warning: ignoring RPB_CHANNEL: {e}");
            ChannelKind::Mpsc
        }),
    })
}

/// Send failed because every receiver was dropped; the unsent item is
/// handed back so no payload is silently lost.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "channel send failed: every receiver disconnected")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// Recv failed because every sender was dropped and the queue is empty —
/// the clean end-of-stream signal a pipeline worker exits on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "channel recv failed: every sender disconnected")
    }
}

impl std::error::Error for RecvError {}

/// The producing half of a bounded channel. Object-safe: pipeline stages
/// hold `BoxSender<T>` and clone one per farm worker.
pub trait Sender<T: Send>: Send {
    /// Blocks while the channel is at capacity; fails (returning the
    /// item) only when every receiver is gone — including receivers
    /// dropped *while* this send is blocked, which is what unwedges
    /// producers during a panic shutdown.
    fn send(&self, item: T) -> Result<(), SendError<T>>;

    /// A new handle onto the same channel (the channel closes when every
    /// sender — original and clones — has been dropped).
    fn clone_sender(&self) -> BoxSender<T>;

    /// Which backend this sender belongs to.
    fn kind(&self) -> ChannelKind;
}

/// The consuming half of a bounded channel. `Sync` so a stage's worker
/// farm can share one receiver behind an `Arc` (MPMC consumption).
pub trait Receiver<T: Send>: Send + Sync {
    /// Blocks until an item or disconnection; fails only when every
    /// sender is gone and the queue is drained.
    fn recv(&self) -> Result<T, RecvError>;

    /// Which backend this receiver belongs to.
    fn kind(&self) -> ChannelKind;
}

/// A boxed [`Sender`].
pub type BoxSender<T> = Box<dyn Sender<T>>;
/// A boxed [`Receiver`].
pub type BoxReceiver<T> = Box<dyn Receiver<T>>;

/// Object-safe constructor for one backend's channels of item type `T`
/// (the registry analog of `rpb_parlay::exec::Executor`; [`bounded`] is
/// the kind-dispatching convenience over it).
pub trait ChannelFactory<T: Send>: Send + Sync {
    /// Creates a bounded channel holding at most `cap` queued items
    /// (`cap = 0` is a rendezvous channel: every send waits for a recv).
    fn bounded(&self, cap: usize) -> (BoxSender<T>, BoxReceiver<T>);

    /// Which backend this factory constructs.
    fn kind(&self) -> ChannelKind;

    /// Human-readable backend name (defaults to the kind's label).
    fn name(&self) -> &'static str {
        self.kind().label()
    }
}

/// The registered factory for `kind`.
pub fn factory<T: Send + 'static>(kind: ChannelKind) -> &'static dyn ChannelFactory<T> {
    match kind {
        ChannelKind::Mpsc => &MpscFactory,
        ChannelKind::Crossbeam => &CrossbeamFactory,
    }
}

/// Creates a bounded channel of the requested backend — the one call
/// every pipeline stage boundary goes through.
pub fn bounded<T: Send + 'static>(kind: ChannelKind, cap: usize) -> (BoxSender<T>, BoxReceiver<T>) {
    factory::<T>(kind).bounded(cap)
}

/// The `std::sync::mpsc` backend ([`ChannelKind::Mpsc`]).
pub struct MpscFactory;

struct MpscSender<T>(mpsc::SyncSender<T>);

impl<T: Send + 'static> Sender<T> for MpscSender<T> {
    fn send(&self, item: T) -> Result<(), SendError<T>> {
        self.0.send(item).map_err(|mpsc::SendError(v)| SendError(v))
    }

    fn clone_sender(&self) -> BoxSender<T> {
        Box::new(MpscSender(self.0.clone()))
    }

    fn kind(&self) -> ChannelKind {
        ChannelKind::Mpsc
    }
}

/// `mpsc::Receiver` is single-consumer; the mutex turns it into a shared
/// MPMC endpoint (one worker blocks inside `recv`, the rest queue on the
/// lock — same wakeup semantics, no lost items). Poisoning is impossible
/// by construction: `recv` never panics while the lock is held, but a
/// poisoned lock would still be recovered rather than propagated.
struct MpscReceiver<T>(Mutex<mpsc::Receiver<T>>);

impl<T: Send + 'static> Receiver<T> for MpscReceiver<T> {
    fn recv(&self) -> Result<T, RecvError> {
        let rx = self.0.lock().unwrap_or_else(|poison| poison.into_inner());
        rx.recv().map_err(|_| RecvError)
    }

    fn kind(&self) -> ChannelKind {
        ChannelKind::Mpsc
    }
}

impl<T: Send + 'static> ChannelFactory<T> for MpscFactory {
    fn bounded(&self, cap: usize) -> (BoxSender<T>, BoxReceiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Box::new(MpscSender(tx)),
            Box::new(MpscReceiver(Mutex::new(rx))),
        )
    }

    fn kind(&self) -> ChannelKind {
        ChannelKind::Mpsc
    }
}

/// The `crossbeam::channel` backend ([`ChannelKind::Crossbeam`]).
pub struct CrossbeamFactory;

struct CbSender<T>(crossbeam::channel::Sender<T>);

impl<T: Send + 'static> Sender<T> for CbSender<T> {
    fn send(&self, item: T) -> Result<(), SendError<T>> {
        self.0
            .send(item)
            .map_err(|crossbeam::channel::SendError(v)| SendError(v))
    }

    fn clone_sender(&self) -> BoxSender<T> {
        Box::new(CbSender(self.0.clone()))
    }

    fn kind(&self) -> ChannelKind {
        ChannelKind::Crossbeam
    }
}

struct CbReceiver<T>(crossbeam::channel::Receiver<T>);

impl<T: Send + 'static> Receiver<T> for CbReceiver<T> {
    fn recv(&self) -> Result<T, RecvError> {
        self.0.recv().map_err(|_| RecvError)
    }

    fn kind(&self) -> ChannelKind {
        ChannelKind::Crossbeam
    }
}

impl<T: Send + 'static> ChannelFactory<T> for CrossbeamFactory {
    fn bounded(&self, cap: usize) -> (BoxSender<T>, BoxReceiver<T>) {
        let (tx, rx) = crossbeam::channel::bounded(cap);
        (Box::new(CbSender(tx)), Box::new(CbReceiver(rx)))
    }

    fn kind(&self) -> ChannelKind {
        ChannelKind::Crossbeam
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn parse_round_trips_and_rejects() {
        for c in ALL_CHANNELS {
            assert_eq!(ChannelKind::from_str(c.label()), Ok(c));
        }
        assert_eq!(ChannelKind::from_str(" STD "), Ok(ChannelKind::Mpsc));
        assert_eq!(ChannelKind::from_str("cb"), Ok(ChannelKind::Crossbeam));
        let err = ChannelKind::from_str("flume").unwrap_err();
        assert!(err.to_string().contains("flume"));
        assert!(err.to_string().contains("mpsc") && err.to_string().contains("crossbeam"));
    }

    #[test]
    fn programmatic_default_wins_over_env_resolution() {
        set_default_channel(Some(ChannelKind::Crossbeam));
        assert_eq!(default_channel(), ChannelKind::Crossbeam);
        set_default_channel(Some(ChannelKind::Mpsc));
        assert_eq!(default_channel(), ChannelKind::Mpsc);
        set_default_channel(None);
        // Unset: resolves via RPB_CHANNEL or mpsc; either way it parses.
        let _ = default_channel();
    }

    fn conformance(kind: ChannelKind) {
        // FIFO transport through a full-capacity cycle.
        let (tx, rx) = bounded::<u64>(kind, 2);
        assert_eq!(tx.kind(), kind);
        assert_eq!(rx.kind(), kind);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        tx.send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));

        // Dropping every sender ends the stream with a typed error.
        let (tx, rx) = bounded::<u64>(kind, 4);
        let tx2 = tx.clone_sender();
        tx.send(7).unwrap();
        drop(tx);
        tx2.send(8).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Ok(8));
        assert_eq!(rx.recv(), Err(RecvError));

        // Dropping the receiver fails sends, returning the item.
        let (tx, rx) = bounded::<u64>(kind, 4);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn mpsc_channel_conforms() {
        conformance(ChannelKind::Mpsc);
    }

    #[test]
    fn crossbeam_channel_conforms() {
        conformance(ChannelKind::Crossbeam);
    }

    /// A producer blocked on a full channel must be unwedged (with its
    /// item returned) when the last receiver drops — the property the
    /// pipeline's panic shutdown depends on.
    fn blocked_send_unblocks_on_receiver_drop(kind: ChannelKind) {
        let (tx, rx) = bounded::<u64>(kind, 1);
        tx.send(1).unwrap(); // fill the buffer
        let handle = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert_eq!(handle.join().unwrap(), Err(SendError(2)));
    }

    #[test]
    fn mpsc_blocked_send_unblocks_on_receiver_drop() {
        blocked_send_unblocks_on_receiver_drop(ChannelKind::Mpsc);
    }

    #[test]
    fn crossbeam_blocked_send_unblocks_on_receiver_drop() {
        blocked_send_unblocks_on_receiver_drop(ChannelKind::Crossbeam);
    }

    /// Multiple consumers sharing one receiver behind an `Arc` must
    /// partition the stream (each item delivered exactly once).
    fn shared_receiver_partitions_stream(kind: ChannelKind) {
        let (tx, rx) = bounded::<u64>(kind, 8);
        let rx = Arc::new(rx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for v in 0..100 {
            tx.send(v).unwrap();
        }
        drop(tx);
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn mpsc_shared_receiver_partitions_stream() {
        shared_receiver_partitions_stream(ChannelKind::Mpsc);
    }

    #[test]
    fn crossbeam_shared_receiver_partitions_stream() {
        shared_receiver_partitions_stream(ChannelKind::Crossbeam);
    }
}
