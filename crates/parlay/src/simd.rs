//! Runtime dispatch for the feature-gated SIMD fast paths.
//!
//! The vectorized kernels (validation sweeps, radix digit histograms,
//! histogram bucketing) are compiled only with `--features simd` on
//! `x86_64`, and even then the scalar code remains the mandatory
//! fallback: every call site asks [`simd_enabled`] per invocation, which
//! folds together
//!
//! 1. compile-time availability (`feature = "simd"` + `x86_64`),
//! 2. one-time CPU detection (`is_x86_feature_detected!("avx2")`),
//! 3. the `RPB_FORCE_SCALAR` environment override (any value but `0`),
//! 4. a programmatic per-process override ([`set_forced`]) used by the
//!    differential verifier (`rpb verify --kernel-impl scalar,simd`) and
//!    the perf gate's scalar/simd kernel cells.
//!
//! Forcing [`KernelImpl::Simd`] on a machine without AVX2 (or in a build
//! without the feature) silently stays on the scalar path — the forced
//! mode can widen the set of machines that run scalar code, never the
//! set that runs vectorized code.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which kernel implementation to dispatch to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelImpl {
    /// Runtime detection decides (the default).
    #[default]
    Auto,
    /// Always take the scalar path.
    Scalar,
    /// Take the vectorized path where the CPU supports it (falls back to
    /// scalar on machines without AVX2 — never forces unsupported code).
    Simd,
}

impl KernelImpl {
    /// Stable label for CLI/report output.
    pub fn label(self) -> &'static str {
        match self {
            KernelImpl::Auto => "auto",
            KernelImpl::Scalar => "scalar",
            KernelImpl::Simd => "simd",
        }
    }
}

/// Error for [`KernelImpl::from_str`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseKernelImplError(String);

impl std::fmt::Display for ParseKernelImplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown kernel implementation `{}` (valid: auto, scalar, simd)",
            self.0
        )
    }
}

impl std::error::Error for ParseKernelImplError {}

impl std::str::FromStr for KernelImpl {
    type Err = ParseKernelImplError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Ok(KernelImpl::Auto),
            "scalar" => Ok(KernelImpl::Scalar),
            "simd" => Ok(KernelImpl::Simd),
            other => Err(ParseKernelImplError(other.to_string())),
        }
    }
}

/// Process-wide programmatic override: 0 = auto, 1 = scalar, 2 = simd.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Forces every subsequent dispatch decision (until the next call).
///
/// Used by `rpb verify --kernel-impl …` and the perf gate's kernel cells
/// to pin one implementation per measured run. Process-global: callers
/// that flip it around a measurement must restore [`KernelImpl::Auto`].
pub fn set_forced(k: KernelImpl) {
    let v = match k {
        KernelImpl::Auto => 0,
        KernelImpl::Scalar => 1,
        KernelImpl::Simd => 2,
    };
    FORCED.store(v, Ordering::Relaxed);
}

/// The current programmatic override.
pub fn forced() -> KernelImpl {
    match FORCED.load(Ordering::Relaxed) {
        1 => KernelImpl::Scalar,
        2 => KernelImpl::Simd,
        _ => KernelImpl::Auto,
    }
}

/// One-time detection: feature compiled in, CPU has AVX2, and the
/// `RPB_FORCE_SCALAR` environment variable is unset (or `0`).
fn detected() -> bool {
    static DETECTED: OnceLock<bool> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        if std::env::var_os("RPB_FORCE_SCALAR").is_some_and(|v| v != "0") {
            return false;
        }
        cpu_has_avx2()
    })
}

#[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
fn cpu_has_avx2() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64", not(miri))))]
fn cpu_has_avx2() -> bool {
    false
}

/// True when the vectorized kernels were compiled into this build (the
/// `simd` feature on `x86_64`, outside Miri) — regardless of what the
/// CPU supports at runtime.
///
/// This is the guard behind `rpb verify --kernel-impl simd`: in a build
/// without the feature, pinning `Simd` silently re-runs the scalar paths
/// and the "differential" compares scalar against itself, so the
/// verifier refuses the axis up front instead of reporting a vacuous ok.
pub const fn simd_compiled() -> bool {
    cfg!(all(feature = "simd", target_arch = "x86_64", not(miri)))
}

/// Serializes sections that pin the dispatch with [`set_forced`].
///
/// The forced mode is process-global, so concurrent differential tests
/// (scalar run vs simd run) would trample each other's pin without a lock.
/// Production callers (the verifier / gate, which run cells sequentially)
/// don't need it.
pub fn force_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// True when the vectorized fast paths should run right now.
///
/// Cheap enough for per-call dispatch: one relaxed atomic load plus a
/// cached detection bit.
#[inline]
pub fn simd_enabled() -> bool {
    match forced() {
        KernelImpl::Scalar => false,
        KernelImpl::Auto | KernelImpl::Simd => detected(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn parse_round_trips_and_rejects() {
        for k in [KernelImpl::Auto, KernelImpl::Scalar, KernelImpl::Simd] {
            assert_eq!(KernelImpl::from_str(k.label()), Ok(k));
        }
        assert_eq!(KernelImpl::from_str(" SIMD "), Ok(KernelImpl::Simd));
        assert!(KernelImpl::from_str("avx2").is_err());
    }

    #[test]
    fn forced_scalar_disables_simd() {
        // Whatever the machine supports, the scalar override must win.
        let _g = force_lock();
        let prev = forced();
        set_forced(KernelImpl::Scalar);
        assert!(!simd_enabled());
        set_forced(prev);
    }

    #[test]
    fn forcing_simd_never_exceeds_detection() {
        let _g = force_lock();
        let prev = forced();
        set_forced(KernelImpl::Simd);
        let forced_on = simd_enabled();
        set_forced(KernelImpl::Auto);
        let auto_on = simd_enabled();
        set_forced(prev);
        // Forcing simd may only reproduce the auto decision, not beat it.
        assert_eq!(forced_on, auto_on);
    }
}
