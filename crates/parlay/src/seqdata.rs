//! PBBS-style input generators (`sequenceData` equivalents).
//!
//! The suite's `sort`, `isort`, `dedup`, and `hist` benchmarks run on the
//! same distributions PBBS ships: uniform random, exponentially distributed
//! (the paper's `exponential` input), and Zipf-skewed values. All
//! generators are counter-based (pure functions of `(seed, i)`), so they
//! parallelize as `Stride` writes and are fully deterministic.

use rayon::prelude::*;

use crate::random::Random;

/// `n` uniform values in `[0, range)`.
pub fn uniform_u64(n: usize, range: u64, seed: u64) -> Vec<u64> {
    let r = Random::new(seed);
    (0..n)
        .into_par_iter()
        .map(|i| r.ith_rand_bounded(i as u64, range.max(1)))
        .collect()
}

/// `n` values with an exponential distribution over `[0, range)` —
/// PBBS `almostSorted`-adjacent `exponential` input: value
/// `floor(-ln(u) * range / lambda_scale)` clamped to the range. Small keys
/// are much more frequent, giving the skewed histogram/dedup workloads the
/// paper uses.
pub fn exponential_u64(n: usize, range: u64, seed: u64) -> Vec<u64> {
    let r = Random::new(seed);
    let range = range.max(1);
    // Mean at range/8 like PBBS's exponential generator.
    let scale = range as f64 / 8.0;
    (0..n)
        .into_par_iter()
        .map(|i| {
            let u = r.ith_rand_f64(i as u64).max(1e-18);
            let v = (-u.ln() * scale) as u64;
            v.min(range - 1)
        })
        .collect()
}

/// `n` Zipf(θ)-distributed values over `[0, range)` via inverse-CDF
/// approximation (bounded rejection-free power law).
pub fn zipf_u64(n: usize, range: u64, theta: f64, seed: u64) -> Vec<u64> {
    let r = Random::new(seed);
    let range = range.max(1);
    let exp = 1.0 / (1.0 - theta);
    (0..n)
        .into_par_iter()
        .map(|i| {
            let u = r.ith_rand_f64(i as u64).max(1e-18);
            let v = ((range as f64) * u.powf(exp)) as u64;
            v.min(range - 1)
        })
        .collect()
}

/// `n` pairs `(key, i)` with exponentially distributed keys; used by the
/// paper's `hist` benchmark with "large structs".
pub fn exponential_pairs(n: usize, range: u64, seed: u64) -> Vec<(u64, u64)> {
    exponential_u64(n, range, seed)
        .into_par_iter()
        .enumerate()
        .map(|(i, k)| (k, i as u64))
        .collect()
}

/// A random permutation of `0..n` (Durstenfeld shuffle, sequential but
/// O(n); used only at input-generation time).
pub fn random_permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    let mut rng = crate::random::SeqRng::new(seed);
    for i in (1..n).rev() {
        let j = rng.next_bounded(i as u64 + 1) as usize;
        perm.swap(i, j);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_in_range_and_deterministic() {
        let a = uniform_u64(10_000, 1000, 7);
        let b = uniform_u64(10_000, 1000, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| x < 1000));
    }

    #[test]
    fn exponential_is_skewed_low() {
        let v = exponential_u64(100_000, 1_000_000, 1);
        assert!(v.iter().all(|&x| x < 1_000_000));
        let below_eighth = v.iter().filter(|&&x| x < 125_000).count();
        // Exponential with mean range/8: well over half below the mean.
        assert!(below_eighth > 50_000, "not skewed: {below_eighth}");
    }

    #[test]
    fn zipf_mass_concentrates_at_zero() {
        let v = zipf_u64(100_000, 1_000_000, 0.75, 1);
        assert!(v.iter().all(|&x| x < 1_000_000));
        let tiny = v.iter().filter(|&&x| x < 1000).count();
        let uniform_expectation = 100;
        assert!(tiny > 10 * uniform_expectation, "not zipf-skewed: {tiny}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let p = random_permutation(10_000, 3);
        let mut seen = vec![false; 10_000];
        for &x in &p {
            assert!(!seen[x], "duplicate {x}");
            seen[x] = true;
        }
    }

    #[test]
    fn pairs_carry_index() {
        let v = exponential_pairs(1000, 100, 1);
        for (i, &(_, idx)) in v.iter().enumerate() {
            assert_eq!(idx, i as u64);
        }
    }
}
