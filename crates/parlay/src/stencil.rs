//! Stencil computations — the remaining "present" pattern of the paper's
//! §7.1 coverage list not exercised elsewhere in the suite.
//!
//! A stencil is regular parallelism par excellence: every output cell is
//! a function of a static neighbourhood of the *previous* grid, so a
//! double-buffered sweep is pure `Stride`/`Block` writes over reads of an
//! immutable snapshot — fearless in safe Rust + Rayon.

use rayon::prelude::*;

/// One Jacobi sweep of the 5-point Laplace stencil over a `rows × cols`
/// row-major grid: interior cells become the average of their 4
/// neighbours; boundary cells are fixed (Dirichlet).
///
/// # Panics
/// Panics if `input`/`output` lengths differ from `rows * cols`.
pub fn jacobi_step(input: &[f64], output: &mut [f64], rows: usize, cols: usize) {
    assert_eq!(input.len(), rows * cols, "input shape mismatch");
    assert_eq!(output.len(), rows * cols, "output shape mismatch");
    output
        .par_chunks_mut(cols)
        .enumerate()
        .for_each(|(r, out_row)| {
            if r == 0 || r == rows - 1 {
                out_row.copy_from_slice(&input[r * cols..(r + 1) * cols]);
                return;
            }
            out_row[0] = input[r * cols];
            out_row[cols - 1] = input[r * cols + cols - 1];
            for c in 1..cols - 1 {
                let i = r * cols + c;
                out_row[c] =
                    0.25 * (input[i - 1] + input[i + 1] + input[i - cols] + input[i + cols]);
            }
        });
}

/// Runs `steps` Jacobi sweeps (double-buffered); returns the final grid
/// and the maximum absolute change of the last sweep (a convergence
/// proxy).
pub fn jacobi(grid: &[f64], rows: usize, cols: usize, steps: usize) -> (Vec<f64>, f64) {
    let mut a = grid.to_vec();
    let mut b = vec![0.0; grid.len()];
    for _ in 0..steps {
        jacobi_step(&a, &mut b, rows, cols);
        std::mem::swap(&mut a, &mut b);
    }
    let delta = a
        .par_iter()
        .zip(b.par_iter())
        .map(|(x, y)| (x - y).abs())
        .reduce(|| 0.0, f64::max);
    (a, if steps == 0 { 0.0 } else { delta })
}

/// Sequential reference sweep.
pub fn jacobi_step_seq(input: &[f64], output: &mut [f64], rows: usize, cols: usize) {
    assert_eq!(input.len(), rows * cols);
    assert_eq!(output.len(), rows * cols);
    output.copy_from_slice(input);
    for r in 1..rows - 1 {
        for c in 1..cols - 1 {
            let i = r * cols + c;
            output[i] = 0.25 * (input[i - 1] + input[i + 1] + input[i - cols] + input[i + cols]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_edge_grid(rows: usize, cols: usize) -> Vec<f64> {
        let mut g = vec![0.0; rows * cols];
        for c in 0..cols {
            g[c] = 100.0; // top boundary held hot
        }
        g
    }

    #[test]
    fn parallel_matches_sequential() {
        let (rows, cols) = (64, 96);
        let grid = hot_edge_grid(rows, cols);
        let mut par = vec![0.0; rows * cols];
        let mut seq = vec![0.0; rows * cols];
        jacobi_step(&grid, &mut par, rows, cols);
        jacobi_step_seq(&grid, &mut seq, rows, cols);
        assert_eq!(par, seq);
    }

    #[test]
    fn boundaries_are_fixed() {
        let (rows, cols) = (16, 16);
        let grid = hot_edge_grid(rows, cols);
        let (out, _) = jacobi(&grid, rows, cols, 25);
        for c in 0..cols {
            assert_eq!(out[c], 100.0, "top boundary moved");
            assert_eq!(out[(rows - 1) * cols + c], 0.0, "bottom boundary moved");
        }
    }

    #[test]
    fn heat_diffuses_monotonically_from_hot_edge() {
        let (rows, cols) = (32, 32);
        let grid = hot_edge_grid(rows, cols);
        let (out, _) = jacobi(&grid, rows, cols, 200);
        // Column centre: temperature decreases away from the hot edge.
        let mid = cols / 2;
        for r in 1..rows - 1 {
            let above = out[(r - 1) * cols + mid];
            let here = out[r * cols + mid];
            assert!(above >= here - 1e-9, "non-monotone at row {r}");
        }
        // Interior stays within the boundary values (maximum principle).
        assert!(out.iter().all(|&x| (-1e-9..=100.0 + 1e-9).contains(&x)));
    }

    #[test]
    fn converges_toward_fixed_point() {
        let (rows, cols) = (24, 24);
        let grid = hot_edge_grid(rows, cols);
        let (_, d_early) = jacobi(&grid, rows, cols, 10);
        let (_, d_late) = jacobi(&grid, rows, cols, 500);
        assert!(d_late < d_early, "not converging: {d_late} !< {d_early}");
    }

    #[test]
    fn zero_steps_is_identity() {
        let grid = hot_edge_grid(8, 8);
        let (out, d) = jacobi(&grid, 8, 8, 0);
        assert_eq!(out, grid);
        assert_eq!(d, 0.0);
    }
}
