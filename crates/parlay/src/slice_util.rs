//! Chunking and slicing helpers shared across the suite.

/// Computes the block size that divides `n` elements into approximately
/// `pieces` equally sized blocks (at least 1 element each).
#[inline]
pub fn block_size_for(n: usize, pieces: usize) -> usize {
    n.div_ceil(pieces.max(1)).max(1)
}

/// The half-open index range of block `b` when a length-`n` slice is split
/// into blocks of `block_size`.
#[inline]
pub fn block_range(n: usize, block_size: usize, b: usize) -> std::ops::Range<usize> {
    let start = b * block_size;
    let end = (start + block_size).min(n);
    start..end
}

/// Splits a mutable slice into exactly `pieces` contiguous chunks (the last
/// chunks may be empty when `pieces > len`). Useful for per-thread local
/// state that must be indexable by thread id.
pub fn split_evenly_mut<T>(slice: &mut [T], pieces: usize) -> Vec<&mut [T]> {
    let n = slice.len();
    let bs = block_size_for(n, pieces);
    let mut out = Vec::with_capacity(pieces);
    let mut rest = slice;
    for _ in 0..pieces {
        let take = bs.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        out.push(head);
        rest = tail;
    }
    out
}

/// Verifies that `offsets` is monotonically non-decreasing and bounded by
/// `len`, i.e. it describes valid contiguous chunks of a length-`len` slice.
/// Returns the index of the first violation, if any.
pub fn check_monotone(offsets: &[usize], len: usize) -> Option<usize> {
    for i in 0..offsets.len() {
        if offsets[i] > len {
            return Some(i);
        }
        if i > 0 && offsets[i] < offsets[i - 1] {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_size_divides() {
        assert_eq!(block_size_for(10, 3), 4);
        assert_eq!(block_size_for(0, 3), 1);
        assert_eq!(block_size_for(9, 3), 3);
    }

    #[test]
    fn block_ranges_cover() {
        let n = 10;
        let bs = block_size_for(n, 3);
        let covered: Vec<usize> = (0..super::super::num_blocks(n, bs))
            .flat_map(|b| block_range(n, bs, b))
            .collect();
        assert_eq!(covered, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn split_evenly_counts() {
        let mut v: Vec<u32> = (0..10).collect();
        let parts = split_evenly_mut(&mut v, 4);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn split_more_pieces_than_elements() {
        let mut v = [1, 2];
        let parts = split_evenly_mut(&mut v, 5);
        assert_eq!(parts.len(), 5);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 2);
    }

    #[test]
    fn monotone_check_accepts_valid() {
        assert_eq!(check_monotone(&[0, 3, 3, 7, 10], 10), None);
        assert_eq!(check_monotone(&[], 0), None);
    }

    #[test]
    fn monotone_check_rejects_decreasing() {
        assert_eq!(check_monotone(&[0, 5, 4], 10), Some(2));
    }

    #[test]
    fn monotone_check_rejects_out_of_bounds() {
        assert_eq!(check_monotone(&[0, 11], 10), Some(1));
    }
}
