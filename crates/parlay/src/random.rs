//! The PBBS counter-based hash RNG.
//!
//! PBBS derives all of its pseudo-randomness from a 64-bit mixing hash
//! (the function the paper reproduces in Listing 10 of Appendix A). A
//! counter-based generator is ideal for parallel benchmarks: `ith_rand(i)`
//! is a pure function of `(seed, i)`, so every task can draw independent
//! values without shared state, and results are deterministic regardless of
//! the parallel schedule.

/// The PBBS 64-bit mixing hash (Listing 10 of the paper).
///
/// This is the exact constant sequence used by PBBS `utilities.h::hash64`,
/// and doubles as the unit of work in the Fig. 6 microbenchmark.
#[inline]
pub fn hash64(i: u64) -> u64 {
    let mut v = i.wrapping_mul(3_935_559_000_370_003_845);
    v = v.wrapping_add(2_691_343_689_449_507_681);
    v ^= v >> 21;
    v ^= v << 37;
    v ^= v >> 4;
    v = v.wrapping_mul(4_768_777_513_237_032_717);
    v ^= v << 20;
    v ^= v >> 41;
    v ^= v << 5;
    v
}

/// Applies [`hash64`] in place to a `usize` element, mirroring the paper's
/// Listing 10 `task` signature (`fn task(e: &mut usize)`).
#[inline]
pub fn hash_task(e: &mut usize) {
    *e = hash64(*e as u64) as usize;
}

/// A deterministic counter-based random source, equivalent to PBBS
/// `parlay::random`.
///
/// `Random` is `Copy`; [`Random::fork`] derives an independent stream for a
/// sub-computation, exactly like PBBS `r.fork(i)`.
///
/// # Examples
/// ```
/// use rpb_parlay::Random;
/// let r = Random::new(42);
/// let a = r.ith_rand(7);
/// assert_eq!(a, Random::new(42).ith_rand(7), "pure function of (seed, i)");
/// assert_ne!(a, r.fork(1).ith_rand(7), "forked streams are independent");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Random {
    seed: u64,
}

impl Random {
    /// Creates a stream with the given seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Random { seed }
    }

    /// The `i`th value of this stream.
    #[inline]
    pub fn ith_rand(&self, i: u64) -> u64 {
        hash64(self.seed.wrapping_add(i))
    }

    /// Derives an independent stream, PBBS `fork`.
    #[inline]
    pub fn fork(&self, i: u64) -> Random {
        Random {
            seed: hash64(self.seed.wrapping_add(i)),
        }
    }

    /// A value in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn ith_rand_bounded(&self, i: u64, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.ith_rand(i) % bound
    }

    /// A uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn ith_rand_f64(&self, i: u64) -> f64 {
        // Use the top 53 bits for a dyadic uniform in [0,1).
        (self.ith_rand(i) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Default for Random {
    fn default() -> Self {
        Random::new(0)
    }
}

/// A tiny splittable PCG-style state machine for the rare places that want
/// sequential draws (e.g., retry loops); still deterministic from its seed.
#[derive(Clone, Debug)]
pub struct SeqRng {
    state: u64,
}

impl SeqRng {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> Self {
        SeqRng {
            state: hash64(seed ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = hash64(self.state);
        self.state
    }

    /// Next value in `[0, bound)`.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Next uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash64_is_deterministic_and_mixing() {
        assert_eq!(hash64(0), hash64(0));
        // Consecutive inputs should produce very different outputs.
        let a = hash64(1);
        let b = hash64(2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 8, "poor avalanche: {a:x} vs {b:x}");
    }

    #[test]
    fn hash_task_matches_hash64() {
        let mut e = 1234usize;
        hash_task(&mut e);
        assert_eq!(e as u64, hash64(1234));
    }

    #[test]
    fn ith_rand_is_pure() {
        let r = Random::new(99);
        let xs: Vec<u64> = (0..100).map(|i| r.ith_rand(i)).collect();
        let ys: Vec<u64> = (0..100).map(|i| Random::new(99).ith_rand(i)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn fork_changes_stream() {
        let r = Random::new(7);
        let f = r.fork(0);
        assert_ne!(r.ith_rand(0), f.ith_rand(0));
    }

    #[test]
    fn bounded_stays_in_range() {
        let r = Random::new(3);
        for i in 0..1000 {
            assert!(r.ith_rand_bounded(i, 17) < 17);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let r = Random::new(5);
        for i in 0..1000 {
            let x = r.ith_rand_f64(i);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn seq_rng_advances() {
        let mut g = SeqRng::new(1);
        let a = g.next_u64();
        let b = g.next_u64();
        assert_ne!(a, b);
        let mut g2 = SeqRng::new(1);
        assert_eq!(g2.next_u64(), a, "same seed, same stream");
    }

    #[test]
    fn f64_distribution_is_roughly_uniform() {
        let r = Random::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|i| r.ith_rand_f64(i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}
