//! Sampling-based parallel list ranking.
//!
//! The Burrows–Wheeler decoder (`bw`) produces a successor array
//! `next[i]` that threads all positions into one linked list; emitting the
//! output requires traversing it, which is inherently sequential unless a
//! list-ranking primitive breaks the chain. PBBS uses the classic sampling
//! technique: choose a deterministic ~`n/segment` subset of nodes as
//! *splitters*, walk each splitter's segment in parallel until it hits the
//! next splitter, then stitch the segments together sequentially (only
//! `O(n/segment)` of them) and flatten.
//!
//! The traversal reads `next` irregularly (data-dependent gather), which is
//! the read-side analogue of the paper's `SngInd`: safe in Rust because the
//! reads are immutable — `aliasing XOR mutability` allows arbitrary shared
//! reads.

use rayon::prelude::*;

use crate::pack::flatten;
use crate::random::hash64;

/// Terminator marker inside `next` arrays.
pub const NIL: usize = usize::MAX;

/// Returns the nodes of the list starting at `head` in traversal order.
///
/// `next[i]` is the successor of node `i`, or [`NIL`] for the tail. The
/// chain starting at `head` must be acyclic (a chain over at most
/// `next.len()` nodes); nodes not on the chain are ignored.
///
/// # Panics
/// Panics if the chain revisits a node (cycle) — detected by walking more
/// than `next.len()` steps in total.
///
/// # Examples
/// ```
/// use rpb_parlay::list_rank::{list_order, NIL};
/// // 2 -> 0 -> 1 -> end
/// let next = vec![1, NIL, 0];
/// assert_eq!(list_order(&next, 2), vec![2, 0, 1]);
/// ```
pub fn list_order(next: &[usize], head: usize) -> Vec<usize> {
    let n = next.len();
    if n == 0 {
        return Vec::new();
    }
    assert!(head < n, "head out of bounds");
    if n < 1 << 14 {
        return seq_order(next, head, n);
    }
    // Deterministic splitter set: head plus ~n/SEG pseudo-random nodes.
    const SEG: u64 = 512;
    let is_splitter = |i: usize| i == head || hash64(i as u64) % SEG == 0;

    // Phase 1: walk each splitter's segment in parallel until the next
    // splitter (exclusive) or the tail.
    #[derive(Clone)]
    struct Segment {
        nodes: Vec<usize>,
        next_splitter: usize, // NIL at the tail
    }
    let splitters: Vec<usize> = (0..n).filter(|&i| is_splitter(i)).collect();
    let segments: Vec<Segment> = splitters
        .par_iter()
        .map(|&s| {
            let mut nodes = vec![s];
            let mut cur = next[s];
            // A segment longer than n means `next` has a cycle.
            while cur != NIL && !is_splitter(cur) {
                nodes.push(cur);
                assert!(nodes.len() <= n, "list_order: cycle detected in next[]");
                cur = next[cur];
            }
            Segment {
                nodes,
                next_splitter: cur,
            }
        })
        .collect();
    // Map node id -> segment index for stitching.
    let mut seg_of = vec![NIL; n];
    for (k, &s) in splitters.iter().enumerate() {
        seg_of[s] = k;
    }
    // Phase 2: stitch segments starting from head's segment.
    let mut ordered: Vec<&Segment> = Vec::with_capacity(segments.len());
    let mut cur = seg_of[head];
    let mut visited = 0usize;
    while cur != NIL {
        let seg = &segments[cur];
        visited += seg.nodes.len();
        assert!(visited <= n, "list_order: cycle detected among splitters");
        ordered.push(seg);
        cur = if seg.next_splitter == NIL {
            NIL
        } else {
            seg_of[seg.next_splitter]
        };
    }
    // Phase 3: flatten in parallel.
    let seqs: Vec<Vec<usize>> = ordered.into_iter().map(|s| s.nodes.clone()).collect();
    flatten(&seqs)
}

/// Rank (distance from `head`) of every node on the chain; nodes off the
/// chain get [`NIL`].
pub fn list_rank(next: &[usize], head: usize) -> Vec<usize> {
    let order = list_order(next, head);
    let mut rank = vec![NIL; next.len()];
    // Stride pattern via scatter; order elements are distinct nodes.
    for (r, &node) in order.iter().enumerate() {
        rank[node] = r;
    }
    rank
}

fn seq_order(next: &[usize], head: usize, n: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(n);
    let mut cur = head;
    while cur != NIL {
        out.push(cur);
        assert!(out.len() <= n, "list_order: cycle detected in next[]");
        cur = next[cur];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::SeqRng;

    /// Builds a random permutation chain over n nodes; returns (next, head,
    /// expected order).
    fn random_chain(n: usize, seed: u64) -> (Vec<usize>, usize, Vec<usize>) {
        let mut perm: Vec<usize> = (0..n).collect();
        let mut rng = SeqRng::new(seed);
        for i in (1..n).rev() {
            let j = rng.next_bounded(i as u64 + 1) as usize;
            perm.swap(i, j);
        }
        let mut next = vec![NIL; n];
        for w in perm.windows(2) {
            next[w[0]] = w[1];
        }
        (next, perm[0], perm)
    }

    #[test]
    fn tiny_chain() {
        let next = vec![1, 2, NIL];
        assert_eq!(list_order(&next, 0), vec![0, 1, 2]);
    }

    #[test]
    fn random_chain_small() {
        let (next, head, want) = random_chain(1000, 1);
        assert_eq!(list_order(&next, head), want);
    }

    #[test]
    fn random_chain_large_uses_parallel_path() {
        let (next, head, want) = random_chain(100_000, 2);
        assert_eq!(list_order(&next, head), want);
    }

    #[test]
    fn rank_is_inverse_of_order() {
        let (next, head, want) = random_chain(50_000, 3);
        let rank = list_rank(&next, head);
        for (r, &node) in want.iter().enumerate() {
            assert_eq!(rank[node], r);
        }
    }

    #[test]
    fn partial_chain_ignores_other_nodes() {
        // Nodes 0..5; chain is 3 -> 1 -> 4, nodes 0,2 detached.
        let mut next = vec![NIL; 5];
        next[3] = 1;
        next[1] = 4;
        let order = list_order(&next, 3);
        assert_eq!(order, vec![3, 1, 4]);
        let rank = list_rank(&next, 3);
        assert_eq!(rank[0], NIL);
        assert_eq!(rank[2], NIL);
    }

    #[test]
    #[should_panic(expected = "cycle detected")]
    fn cycle_panics() {
        let next = vec![1, 2, 0];
        list_order(&next, 0);
    }

    #[test]
    fn single_node() {
        let next = vec![NIL];
        assert_eq!(list_order(&next, 0), vec![0]);
    }
}
