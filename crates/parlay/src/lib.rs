//! # rpb-parlay
//!
//! PBBS/ParlayLib-style parallel primitives used as the substrate of the
//! Rust Parallel Benchmarks (RPB) suite from *"When Is Parallelism Fearless
//! and Zero-Cost with Rust?"* (SPAA '24).
//!
//! The crate provides the building blocks that the original C++ benchmarks
//! obtained from ParlayLib, re-expressed in idiomatic Rust on top of
//! [Rayon](https://docs.rs/rayon):
//!
//! * [`mod@scan`] — inclusive/exclusive prefix sums over arbitrary monoids,
//! * [`mod@reduce`] — parallel reductions,
//! * [`mod@pack`] — pack/filter/flatten,
//! * [`mod@sort`] — stable LSD radix sort, sample sort, and merge sort,
//! * [`mod@list_rank`] — sampling-based parallel list ranking (used by `bw`),
//! * [`mod@random`] — the PBBS 64-bit hash / counter-based RNG,
//! * [`mod@seqdata`] — the PBBS sequence generators (uniform, exponential, zipf),
//! * [`mod@slice_util`] — chunking helpers shared by the suite.
//!
//! Everything in this crate is *regular* parallelism in the paper's
//! taxonomy: each primitive's task write sets are statically disjoint
//! (`Stride` / `Block` / `D&C` patterns), so the implementations are safe
//! Rust over Rayon with zero-cost static checks.

pub mod collect_reduce;
pub mod exec;
pub mod list_rank;
pub mod pack;
pub mod panics;
pub mod random;
pub mod reduce;
pub mod scan;
pub mod sendptr;
pub mod seqdata;
pub mod simd;
pub mod slice_util;
pub mod sort;
pub mod stencil;

pub use collect_reduce::{collect_reduce_dense, collect_reduce_sparse, count_by_key};
pub use exec::{default_backend, BackendKind, Executor};
pub use pack::{filter, flatten, pack, pack_index};
pub use panics::panic_message;
pub use random::Random;
pub use reduce::{max_index, reduce, reduce_with};
pub use scan::{scan_exclusive, scan_inclusive, scan_inplace_exclusive};
pub use simd::{simd_compiled, simd_enabled, KernelImpl};
pub use sort::{merge_sort, radix_sort_by_key, radix_sort_u32, radix_sort_u64, sample_sort};

/// Granularity below which parallel primitives fall back to sequential code.
///
/// PBBS uses a comparable per-task grain (~2k elements) to amortize
/// work-stealing overheads; Rayon's adaptive splitting makes the exact value
/// non-critical.
pub const SEQ_THRESHOLD: usize = 2048;

/// Returns the number of blocks a length-`n` slice is divided into by the
/// blocked primitives, for a given block size.
#[inline]
pub fn num_blocks(n: usize, block_size: usize) -> usize {
    n.div_ceil(block_size.max(1))
}
