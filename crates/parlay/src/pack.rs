//! Pack, filter, and flatten — regular scatter primitives built on scan.
//!
//! `pack` is the PBBS idiom: a parallel count, an exclusive scan to compute
//! destinations, then a blocked write where each block owns a contiguous
//! destination range. The destination ranges are exactly the `RngInd`
//! pattern, but because they are derived from a scan they are monotone by
//! construction, so the implementation stays in safe Rust by writing
//! per-block into disjoint sub-slices obtained with `split_at_mut`.

use rayon::prelude::*;

use crate::sendptr::SendPtr;
use crate::{scan::scan_inplace_exclusive, SEQ_THRESHOLD};

/// Keeps `data[i]` where `flags[i]` is true, preserving order.
///
/// # Panics
/// Panics if `flags.len() != data.len()`.
///
/// # Examples
/// ```
/// let v = [10, 11, 12, 13];
/// let f = [true, false, true, false];
/// assert_eq!(rpb_parlay::pack(&v, &f), vec![10, 12]);
/// ```
pub fn pack<T: Copy + Send + Sync>(data: &[T], flags: &[bool]) -> Vec<T> {
    assert_eq!(data.len(), flags.len(), "pack: flags/data length mismatch");
    filter_map_indexed(data.len(), |i| if flags[i] { Some(data[i]) } else { None })
}

/// Order-preserving parallel filter.
pub fn filter<T, P>(data: &[T], pred: P) -> Vec<T>
where
    T: Copy + Send + Sync,
    P: Fn(&T) -> bool + Send + Sync,
{
    filter_map_indexed(data.len(), |i| {
        if pred(&data[i]) {
            Some(data[i])
        } else {
            None
        }
    })
}

/// Indices `i` in `0..flags.len()` where `flags[i]` is true
/// (ParlayLib `pack_index`).
pub fn pack_index(flags: &[bool]) -> Vec<usize> {
    filter_map_indexed(flags.len(), |i| if flags[i] { Some(i) } else { None })
}

/// The engine behind pack/filter: evaluates `f(i)` for `i in 0..n` twice
/// (count pass + write pass) and packs the `Some` results in index order.
pub fn filter_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> Option<T> + Send + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    if n <= SEQ_THRESHOLD {
        return (0..n).filter_map(f).collect();
    }
    let block = SEQ_THRESHOLD;
    let nblocks = n.div_ceil(block);
    // Count survivors per block.
    let mut counts: Vec<usize> = (0..nblocks)
        .into_par_iter()
        .map(|b| {
            let lo = b * block;
            let hi = (lo + block).min(n);
            (lo..hi).filter(|&i| f(i).is_some()).count()
        })
        .collect();
    let total = scan_inplace_exclusive(&mut counts, 0, |a, b| a + b);
    // Write pass: each block owns out[counts[b]..counts[b]+k_b].
    let mut out: Vec<T> = Vec::with_capacity(total);
    // Split the spare capacity into per-block disjoint windows. We build the
    // output with MaybeUninit-free safe code: collect per block into the
    // output via unsafe-free chunked assembly would need a second alloc per
    // block; instead write through a raw pointer guarded by the scan
    // invariant (destinations are disjoint by construction). This is the
    // same interior-unsafe technique Rayon's `collect_into_vec` uses.
    {
        let out_ptr = SendPtr::new(out.as_mut_ptr());
        (0..nblocks).into_par_iter().for_each(|b| {
            let lo = b * block;
            let hi = (lo + block).min(n);
            let mut dst = counts[b];
            for i in lo..hi {
                if let Some(v) = f(i) {
                    // SAFETY: `dst` ranges over [counts[b], counts[b+1]) and
                    // the exclusive scan makes these ranges disjoint across
                    // blocks and bounded by `total <= capacity`.
                    unsafe { out_ptr.write(dst, v) };
                    dst += 1;
                }
            }
        });
        // SAFETY: exactly `total` elements were initialized above.
        unsafe { out.set_len(total) };
    }
    out
}

/// Concatenates nested sequences in parallel (ParlayLib `flatten`).
pub fn flatten<T: Copy + Send + Sync>(seqs: &[Vec<T>]) -> Vec<T> {
    let mut offsets: Vec<usize> = seqs.iter().map(Vec::len).collect();
    let total = scan_inplace_exclusive(&mut offsets, 0, |a, b| a + b);
    let mut out: Vec<T> = Vec::with_capacity(total);
    {
        let out_ptr = SendPtr::new(out.as_mut_ptr());
        seqs.par_iter()
            .zip(offsets.par_iter())
            .for_each(|(seq, &off)| {
                for (k, &v) in seq.iter().enumerate() {
                    // SAFETY: block `b` writes [offsets[b], offsets[b]+len_b), a
                    // disjoint range per the exclusive scan of the lengths.
                    unsafe { out_ptr.write(off + k, v) };
                }
            });
        // SAFETY: all `total` slots written exactly once.
        unsafe { out.set_len(total) };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_small() {
        let v = [1, 2, 3, 4, 5];
        let f = [true, false, false, true, true];
        assert_eq!(pack(&v, &f), vec![1, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pack_length_mismatch_panics() {
        pack(&[1, 2, 3], &[true]);
    }

    #[test]
    fn filter_large_matches_sequential() {
        let v: Vec<u64> = (0..100_000).map(crate::random::hash64).collect();
        let got = filter(&v, |&x| x % 3 == 0);
        let want: Vec<u64> = v.iter().copied().filter(|&x| x % 3 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn filter_none_and_all() {
        let v: Vec<u32> = (0..10_000).collect();
        assert!(filter(&v, |_| false).is_empty());
        assert_eq!(filter(&v, |_| true), v);
    }

    #[test]
    fn pack_index_matches() {
        let flags: Vec<bool> = (0..50_000).map(|i| i % 7 == 0).collect();
        let got = pack_index(&flags);
        let want: Vec<usize> = (0..flags.len()).filter(|&i| flags[i]).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn flatten_preserves_order() {
        let seqs = vec![vec![1, 2], vec![], vec![3], vec![4, 5, 6]];
        assert_eq!(flatten(&seqs), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn flatten_large() {
        let seqs: Vec<Vec<u64>> = (0..500)
            .map(|i| (0..(i % 37)).map(|j| i * 1000 + j).collect())
            .collect();
        let want: Vec<u64> = seqs.iter().flatten().copied().collect();
        assert_eq!(flatten(&seqs), want);
    }

    #[test]
    fn flatten_empty() {
        let seqs: Vec<Vec<u8>> = vec![];
        assert!(flatten(&seqs).is_empty());
    }
}
