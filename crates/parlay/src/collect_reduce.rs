//! Collect-reduce (group-by) — PBBS's `collect_reduce` primitive.
//!
//! Groups `(key, value)` pairs by key and reduces each group's values
//! with a monoid. This is the engine behind histogram-family workloads
//! and the "category reduction" pattern the paper lists among RPB's
//! covered algorithmic patterns (Sec. 7.1).
//!
//! Two strategies, chosen by key density:
//! * **dense** (`keys < buckets` small): blocked per-task accumulator
//!   arrays merged pairwise — regular `Block` parallelism, fearless;
//! * **sparse**: radix sort by key, then segment detection + per-segment
//!   reduction through `par_ind_chunks_mut`-style boundaries derived from
//!   a pack — everything regular or scan-proven.

use rayon::prelude::*;

use crate::pack::pack_index;
use crate::sort::radix_sort_by_key;

/// Reduces `values` grouped by dense keys in `0..buckets`:
/// `out[k] = fold of v where (k, v) in pairs`.
///
/// # Panics
/// Panics if any key is `>= buckets`.
pub fn collect_reduce_dense<V, F>(pairs: &[(usize, V)], buckets: usize, id: V, op: F) -> Vec<V>
where
    V: Copy + Send + Sync,
    F: Fn(V, V) -> V + Send + Sync,
{
    pairs
        .par_chunks(4096)
        .map(|chunk| {
            let mut local = vec![id; buckets];
            for &(k, v) in chunk {
                assert!(k < buckets, "key {k} out of range");
                local[k] = op(local[k], v);
            }
            local
        })
        .reduce(
            || vec![id; buckets],
            |mut a, b| {
                for (s, x) in a.iter_mut().zip(b) {
                    *s = op(*s, x);
                }
                a
            },
        )
}

/// Groups by arbitrary `u64` keys: returns `(key, reduction)` pairs
/// sorted by key.
pub fn collect_reduce_sparse<V, F>(pairs: &[(u64, V)], id: V, op: F) -> Vec<(u64, V)>
where
    V: Copy + Send + Sync,
    F: Fn(V, V) -> V + Send + Sync,
{
    if pairs.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<(u64, V)> = pairs.to_vec();
    radix_sort_by_key(&mut sorted, 64, |p| p.0);
    // Segment heads: first occurrence of each key.
    let heads: Vec<bool> = sorted
        .par_iter()
        .enumerate()
        .map(|(i, &(k, _))| i == 0 || sorted[i - 1].0 != k)
        .collect();
    let mut starts = pack_index(&heads);
    starts.push(sorted.len());
    // Per-segment reductions (disjoint read ranges).
    starts
        .par_windows(2)
        .map(|w| {
            let seg = &sorted[w[0]..w[1]];
            let mut acc = id;
            for &(_, v) in seg {
                acc = op(acc, v);
            }
            (seg[0].0, acc)
        })
        .collect()
}

/// Counts occurrences of each `u64` key (sparse histogram).
pub fn count_by_key(keys: &[u64]) -> Vec<(u64, usize)> {
    let pairs: Vec<(u64, usize)> = keys.par_iter().map(|&k| (k, 1usize)).collect();
    collect_reduce_sparse(&pairs, 0, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn dense_sum_matches_reference() {
        let pairs: Vec<(usize, u64)> = (0..100_000)
            .map(|i| ((i * 7) % 64, (i % 11) as u64))
            .collect();
        let got = collect_reduce_dense(&pairs, 64, 0u64, |a, b| a + b);
        let mut want = vec![0u64; 64];
        for &(k, v) in &pairs {
            want[k] += v;
        }
        assert_eq!(got, want);
    }

    #[test]
    fn dense_max_monoid() {
        let pairs = vec![(0usize, 3u64), (1, 9), (0, 7), (1, 2)];
        let got = collect_reduce_dense(&pairs, 2, 0, |a, b| a.max(b));
        assert_eq!(got, vec![7, 9]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dense_rejects_oversized_key() {
        collect_reduce_dense(&[(5usize, 1u8)], 2, 0, |a, b| a.max(b));
    }

    #[test]
    fn sparse_matches_hashmap_reference() {
        let pairs: Vec<(u64, u64)> = (0..80_000u64)
            .map(|i| (crate::random::hash64(i) % 500, i % 13))
            .collect();
        let got = collect_reduce_sparse(&pairs, 0u64, |a, b| a + b);
        let mut want: HashMap<u64, u64> = HashMap::new();
        for &(k, v) in &pairs {
            *want.entry(k).or_insert(0) += v;
        }
        assert_eq!(got.len(), want.len());
        for &(k, v) in &got {
            assert_eq!(want[&k], v, "key {k}");
        }
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "keys not sorted");
    }

    #[test]
    fn count_by_key_counts() {
        let keys = vec![3u64, 1, 3, 3, 1, 9];
        let got = count_by_key(&keys);
        assert_eq!(got, vec![(1, 2), (3, 3), (9, 1)]);
    }

    #[test]
    fn sparse_empty() {
        let got = collect_reduce_sparse::<u8, _>(&[], 0, |a, b| a | b);
        assert!(got.is_empty());
    }

    #[test]
    fn sparse_single_key() {
        let pairs: Vec<(u64, u64)> = (0..10_000).map(|i| (42, i)).collect();
        let got = collect_reduce_sparse(&pairs, 0u64, |a, b| a + b);
        assert_eq!(got, vec![(42, (0..10_000u64).sum())]);
    }
}
