//! A `Send + Sync` raw-pointer wrapper for scan-proven disjoint scatters.
//!
//! Several primitives in this crate (pack, flatten, radix and sample sort)
//! write to data-dependent destinations that an exclusive scan has proven
//! disjoint. That is exactly the paper's `SngInd`/`RngInd` situation: the
//! algorithm guarantees independence, but `rustc` cannot see it. `SendPtr`
//! is the minimal interior-unsafe escape hatch those primitives encapsulate
//! behind safe APIs — the same technique Rayon uses inside
//! `collect_into_vec`.
//!
//! # Safety contract
//! Callers must guarantee that concurrent `write`s through clones of one
//! `SendPtr` target disjoint indices, and that no other reference accesses
//! the pointee for the duration.

/// Raw mutable pointer that may cross thread boundaries.
pub struct SendPtr<T>(*mut T);

// SAFETY: a `SendPtr` is just an address; moving it between threads is
// harmless because every dereference goes through the `unsafe` accessors
// below, whose caller contract (module doc) demands disjoint indices.
// `T: Send` so the values written/read may themselves change threads.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: shared `&SendPtr` access exposes no safe dereference; the
// unsafe accessors' disjointness contract rules out data races.
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        SendPtr(self.0)
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Wraps a raw pointer obtained from exclusively owned memory.
    #[inline]
    pub fn new(ptr: *mut T) -> Self {
        SendPtr(ptr)
    }

    /// Writes `value` at offset `i`.
    ///
    /// # Safety
    /// `i` must be in bounds of the allocation and not concurrently written
    /// by any other task (see module-level contract).
    #[inline]
    pub unsafe fn write(&self, i: usize, value: T) {
        // SAFETY: caller contract — in-bounds, no concurrent access to `i`.
        unsafe { self.0.add(i).write(value) };
    }

    /// Reads the value at offset `i`.
    ///
    /// # Safety
    /// `i` must be in bounds, initialized, and not concurrently written.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T {
        // SAFETY: caller contract — in-bounds, initialized, not
        // concurrently written.
        unsafe { self.0.add(i).read() }
    }

    /// Returns a mutable reference to slot `i`.
    ///
    /// # Safety
    /// Same as [`SendPtr::write`], plus the usual exclusive-reference rules
    /// for the lifetime of the borrow.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        // SAFETY: caller contract — in-bounds and exclusive for the
        // lifetime of the returned borrow.
        unsafe { &mut *self.0.add(i) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn disjoint_parallel_writes() {
        let n = 10_000;
        let mut v = vec![0usize; n];
        let p = SendPtr::new(v.as_mut_ptr());
        (0..n).into_par_iter().for_each(|i| {
            // SAFETY: each i is written by exactly one task.
            unsafe { p.write(i, i * 2) };
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn get_mut_round_trip() {
        let mut v = vec![1u32; 4];
        let p = SendPtr::new(v.as_mut_ptr());
        // SAFETY: exclusive single-threaded access.
        unsafe {
            *p.get_mut(2) = 9;
            assert_eq!(p.read(2), 9);
        }
        assert_eq!(v, vec![1, 1, 9, 1]);
    }
}
