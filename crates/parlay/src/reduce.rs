//! Parallel reductions (`RO` pattern: read-only accessors of shared data).
//!
//! These follow the paper's Listing 3(c): each task immutably borrows a
//! chunk, summarizes it into a small value, and Rayon merges the results —
//! fearless, because `rustc` rejects any attempted write to shared state.

use rayon::prelude::*;

/// Reduces `data` with an associative operation `op` and identity `id`.
///
/// Equivalent to ParlayLib `parlay::reduce` with a monoid.
///
/// # Examples
/// ```
/// let v: Vec<u64> = (1..=100).collect();
/// assert_eq!(rpb_parlay::reduce(&v, 0, |a, b| a + b), 5050);
/// ```
pub fn reduce<T, F>(data: &[T], id: T, op: F) -> T
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Send + Sync,
{
    data.par_iter().copied().reduce(|| id, &op)
}

/// Reduces the images of `f` over `0..n` — ParlayLib's *delayed sequence*
/// reduction, avoiding materialization.
pub fn reduce_with<T, F, G>(n: usize, id: T, f: F, op: G) -> T
where
    T: Copy + Send + Sync,
    F: Fn(usize) -> T + Send + Sync,
    G: Fn(T, T) -> T + Send + Sync,
{
    (0..n).into_par_iter().map(f).reduce(|| id, &op)
}

/// Index of a maximum element (first one under the parallel tournament
/// tie-break: the smallest index among equal maxima).
///
/// Returns `None` on an empty slice.
pub fn max_index<T: Ord + Send + Sync>(data: &[T]) -> Option<usize> {
    if data.is_empty() {
        return None;
    }
    let best = data
        .par_iter()
        .enumerate()
        .reduce_with(|a, b| {
            // Prefer strictly greater values; on ties prefer the lower index
            // so the result equals the sequential argmax.
            if b.1 > a.1 || (b.1 == a.1 && b.0 < a.0) {
                b
            } else {
                a
            }
        })
        .expect("non-empty");
    Some(best.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_sum_matches_sequential() {
        let v: Vec<u64> = (0..10_000).collect();
        assert_eq!(reduce(&v, 0, |a, b| a + b), v.iter().sum::<u64>());
    }

    #[test]
    fn reduce_empty_is_identity() {
        let v: Vec<u64> = vec![];
        assert_eq!(reduce(&v, 7, |a, b| a.max(b)), 7);
    }

    #[test]
    fn reduce_max() {
        let v = vec![3u64, 9, 1, 9, 2];
        assert_eq!(reduce(&v, 0, |a, b| a.max(b)), 9);
    }

    #[test]
    fn reduce_with_avoids_materialization() {
        let n = 100_000;
        let s = reduce_with(n, 0u64, |i| (i as u64) * 2, |a, b| a + b);
        assert_eq!(s, (0..n as u64).map(|i| i * 2).sum());
    }

    #[test]
    fn max_index_first_of_ties() {
        let v = vec![1, 5, 3, 5, 2];
        assert_eq!(max_index(&v), Some(1));
    }

    #[test]
    fn max_index_empty() {
        let v: Vec<u8> = vec![];
        assert_eq!(max_index(&v), None);
    }

    #[test]
    fn max_index_large_matches_sequential() {
        let v: Vec<u64> = (0..50_000).map(rpb_parlay_hash).collect();
        let seq = v
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i);
        assert_eq!(max_index(&v), seq);
    }

    fn rpb_parlay_hash(i: u64) -> u64 {
        crate::random::hash64(i)
    }
}
