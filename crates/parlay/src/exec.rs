//! The executor abstraction: pool acquisition and scoped task batches
//! behind one object-safe trait, with Rayon as the first backend.
//!
//! The benchmarks historically hard-assumed one global Rayon pool; every
//! harness-level pool operation now goes through an [`Executor`] so the
//! scheduling substrate is a swappable *backend* (the orchestrator +
//! registry shape of task-based middleware like PPL/Kvik):
//!
//! * [`Executor::install`] — run a closure with an ambient data-parallel
//!   pool of a requested width (what `rpb`'s per-size verification pools
//!   and the perf gate's pinned 1-worker counter pass use),
//! * [`Executor::try_run_batch`] — run a batch of independent tasks to
//!   completion with panic-drain semantics (first panic captured, queued
//!   tasks dropped-not-run with destructors intact, accounting returned).
//!   Besides the harness, `rpb-pipeline` dispatches every streaming
//!   pipeline (source + farm workers + sink) as one such batch and leans
//!   on exactly these drain guarantees for its unwind-clean shutdown.
//!
//! Two backends exist: [`RayonExecutor`] (this module; the default) and
//! the MultiQueue-driven executor in `rpb-multiqueue` (registered under
//! [`BackendKind::Mq`]). Backends are required to be *behaviorally
//! invisible*: `rpb verify --backend rayon,mq` cross-checks every suite
//! pair across backends exactly as `--kernel-impl` does for scalar/simd,
//! and the perf gate records per-backend cells with hard counter
//! equality.
//!
//! Backend selection: explicit (`executor(kind)`), per-process default
//! ([`set_default_backend`]), or the `RPB_BACKEND` environment variable.

use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::panics::panic_message;

/// The scheduling backends an [`Executor`] can be registered under.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Rayon pools and scopes (current behavior, the default).
    #[default]
    Rayon,
    /// The MultiQueue-driven task executor from `rpb-multiqueue`.
    Mq,
}

/// Every backend, in CLI listing order.
pub const ALL_BACKENDS: [BackendKind; 2] = [BackendKind::Rayon, BackendKind::Mq];

impl BackendKind {
    /// Stable label for CLI/report output (`"rayon"` / `"mq"`).
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Rayon => "rayon",
            BackendKind::Mq => "mq",
        }
    }
}

/// Error for [`BackendKind::from_str`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBackendError(String);

impl std::fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown backend `{}` (valid: rayon, mq)", self.0)
    }
}

impl std::error::Error for ParseBackendError {}

impl FromStr for BackendKind {
    type Err = ParseBackendError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "rayon" => Ok(BackendKind::Rayon),
            "mq" | "multiqueue" => Ok(BackendKind::Mq),
            other => Err(ParseBackendError(other.to_string())),
        }
    }
}

/// Process-wide programmatic default: 0 = unset, 1 = rayon, 2 = mq.
static DEFAULT: AtomicU8 = AtomicU8::new(0);

/// Sets the process default returned by [`default_backend`] (what
/// `rpb … --backend <b>` does for the figure/gate commands). `None`
/// clears the override back to `RPB_BACKEND`-or-Rayon resolution.
pub fn set_default_backend(kind: Option<BackendKind>) {
    let v = match kind {
        None => 0,
        Some(BackendKind::Rayon) => 1,
        Some(BackendKind::Mq) => 2,
    };
    DEFAULT.store(v, Ordering::Relaxed);
}

/// The backend used when a call site doesn't name one explicitly:
/// programmatic override ([`set_default_backend`]) > `RPB_BACKEND`
/// environment variable > [`BackendKind::Rayon`]. An unparsable
/// `RPB_BACKEND` warns once and falls back to Rayon (never aborts: the
/// env var may be set for a child tool, not us).
pub fn default_backend() -> BackendKind {
    match DEFAULT.load(Ordering::Relaxed) {
        1 => return BackendKind::Rayon,
        2 => return BackendKind::Mq,
        _ => {}
    }
    static FROM_ENV: OnceLock<BackendKind> = OnceLock::new();
    *FROM_ENV.get_or_init(|| match std::env::var("RPB_BACKEND") {
        Err(_) => BackendKind::Rayon,
        Ok(v) => v.parse().unwrap_or_else(|e| {
            eprintln!("warning: ignoring RPB_BACKEND: {e}");
            BackendKind::Rayon
        }),
    })
}

/// Statistics of a completed [`Executor::try_run_batch`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Tasks that ran to completion (all of them, on the `Ok` path).
    pub tasks: usize,
    /// Effective worker count the batch ran under (requested, clamped to
    /// at least 1) — the trait's worker-count reporting surface.
    pub workers: usize,
}

/// A task panicked during [`Executor::try_run_batch`]; the batch was
/// unwound cleanly: no worker is left running, every unstarted task was
/// dropped (destructors run), and the first panic's payload is here.
pub struct BatchError {
    payload: Box<dyn std::any::Any + Send + 'static>,
    /// Tasks that finished before the batch was abandoned.
    pub tasks_completed: usize,
    /// Tasks dropped without running.
    pub tasks_drained: usize,
}

impl BatchError {
    /// Builds a batch error from a captured panic plus accounting —
    /// how backends outside this crate map their native error type.
    pub fn new(
        payload: Box<dyn std::any::Any + Send + 'static>,
        tasks_completed: usize,
        tasks_drained: usize,
    ) -> BatchError {
        BatchError {
            payload,
            tasks_completed,
            tasks_drained,
        }
    }

    /// The panic message, when the payload was a `&'static str`/`String`.
    pub fn message(&self) -> &str {
        panic_message(&*self.payload)
    }

    /// Consumes the error, returning the captured panic payload.
    pub fn into_payload(self) -> Box<dyn std::any::Any + Send + 'static> {
        self.payload
    }

    /// Re-raises the captured panic on the current thread.
    pub fn resume(self) -> ! {
        std::panic::resume_unwind(self.payload)
    }
}

impl std::fmt::Debug for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchError")
            .field("message", &self.message())
            .field("tasks_completed", &self.tasks_completed)
            .field("tasks_drained", &self.tasks_drained)
            .finish()
    }
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batch task panicked: {} ({} tasks completed, {} drained)",
            self.message(),
            self.tasks_completed,
            self.tasks_drained
        )
    }
}

impl std::error::Error for BatchError {}

/// A boxed task for [`Executor::try_run_batch`].
pub type BatchTask<'s> = Box<dyn FnOnce() + Send + 's>;

/// A pluggable scheduling backend. Object-safe on purpose: call sites
/// hold `&'static dyn Executor` resolved from the [registry](executor),
/// so adding a backend never touches them.
pub trait Executor: Send + Sync {
    /// Which registry slot this executor serves.
    fn kind(&self) -> BackendKind;

    /// Human-readable backend name (defaults to the kind's label).
    fn name(&self) -> &'static str {
        self.kind().label()
    }

    /// Runs `f` with an ambient data-parallel pool of `workers` threads
    /// installed (Rayon primitives inside `f` use that pool). Blocks
    /// until `f` returns. A panic in `f` propagates to the caller.
    fn install<'s>(&self, workers: usize, f: Box<dyn FnOnce() + Send + 's>);

    /// Runs every task in `tasks` on `workers` workers, returning when
    /// all have completed — or, if one panics, after the batch has been
    /// unwound cleanly (remaining tasks dropped without running, their
    /// destructors intact; accounting in the error).
    fn try_run_batch<'s>(
        &self,
        workers: usize,
        tasks: Vec<BatchTask<'s>>,
    ) -> Result<BatchStats, BatchError>;

    /// [`Executor::try_run_batch`] with transparent panic propagation:
    /// the first task panic is re-raised on the calling thread.
    fn run_batch<'s>(&self, workers: usize, tasks: Vec<BatchTask<'s>>) -> BatchStats {
        match self.try_run_batch(workers, tasks) {
            Ok(stats) => stats,
            Err(err) => err.resume(),
        }
    }
}

/// Runs `f` under `exec`'s ambient pool and returns its value — the
/// generic convenience the object-safe [`Executor::install`] can't offer
/// directly.
pub fn run_in<T: Send>(exec: &dyn Executor, workers: usize, f: impl FnOnce() -> T + Send) -> T {
    let mut slot = None;
    {
        let slot_ref = &mut slot;
        exec.install(workers, Box::new(move || *slot_ref = Some(f())));
    }
    slot.expect("executor install runs the closure to completion")
}

/// Per-thread pool telemetry (feature `obs` only): counts worker starts
/// and records each worker's lifetime, feeding the
/// `pool_threads_started` / `pool_thread_lifetime_ns` metrics.
#[cfg(feature = "obs")]
mod pool_obs {
    use std::cell::Cell;
    use std::time::Instant;

    thread_local! {
        static STARTED_AT: Cell<Option<Instant>> = const { Cell::new(None) };
    }

    pub(super) fn on_start() {
        rpb_obs::metrics::POOL_THREADS_STARTED.add(1);
        STARTED_AT.with(|s| s.set(Some(Instant::now())));
    }

    pub(super) fn on_exit() {
        if let Some(t0) = STARTED_AT.with(|s| s.take()) {
            rpb_obs::metrics::POOL_THREAD_LIFETIME_NS.record(t0.elapsed());
        }
    }
}

/// The Rayon backend: a fresh pool per [`install`](Executor::install)
/// (telemetry-instrumented under `--features obs`), batches as scope
/// spawns with a first-panic abort flag.
pub struct RayonExecutor;

impl Executor for RayonExecutor {
    fn kind(&self) -> BackendKind {
        BackendKind::Rayon
    }

    fn install<'s>(&self, workers: usize, f: Box<dyn FnOnce() + Send + 's>) {
        let builder = rayon::ThreadPoolBuilder::new().num_threads(workers.max(1));
        #[cfg(feature = "obs")]
        let builder = builder
            .start_handler(|_| pool_obs::on_start())
            .exit_handler(|_| pool_obs::on_exit());
        builder.build().expect("thread pool").install(f)
    }

    fn try_run_batch<'s>(
        &self,
        workers: usize,
        tasks: Vec<BatchTask<'s>>,
    ) -> Result<BatchStats, BatchError> {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::{AtomicBool, AtomicUsize};
        use std::sync::Mutex;

        let workers = workers.max(1);
        let completed = AtomicUsize::new(0);
        let drained = AtomicUsize::new(0);
        let panicked = AtomicBool::new(false);
        let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        run_in(self, workers, || {
            rayon::scope(|s| {
                for task in tasks {
                    s.spawn(|_| {
                        // Drain semantics after a panic: unstarted tasks
                        // are dropped, not run — mirroring the MQ
                        // executor's queue drain.
                        if panicked.load(Ordering::Acquire) {
                            drained.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                        match catch_unwind(AssertUnwindSafe(task)) {
                            Ok(()) => {
                                completed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(payload) => {
                                let mut slot = first_panic
                                    .lock()
                                    .unwrap_or_else(|poison| poison.into_inner());
                                if slot.is_none() {
                                    *slot = Some(payload);
                                }
                                drop(slot);
                                panicked.store(true, Ordering::Release);
                            }
                        }
                    });
                }
            });
        });
        if panicked.load(Ordering::Acquire) {
            let payload = first_panic
                .into_inner()
                .unwrap_or_else(|poison| poison.into_inner())
                .expect("panicked flag implies a stored payload");
            return Err(BatchError::new(
                payload,
                completed.load(Ordering::Relaxed),
                drained.load(Ordering::Relaxed),
            ));
        }
        Ok(BatchStats {
            tasks: completed.load(Ordering::Relaxed),
            workers,
        })
    }
}

/// The registry: one slot per [`BackendKind`], filled once. The Rayon
/// slot is pre-wired; `rpb-multiqueue`'s `backend::ensure_registered()`
/// fills the MQ slot (this crate cannot depend on it — the dependency
/// points the other way).
static RAYON: RayonExecutor = RayonExecutor;
static MQ_SLOT: OnceLock<&'static dyn Executor> = OnceLock::new();

/// Registers `exec` under its [`Executor::kind`]. First registration
/// wins; later calls are no-ops (so `ensure_registered` is idempotent).
pub fn register(exec: &'static dyn Executor) {
    match exec.kind() {
        BackendKind::Rayon => {} // built in, never replaced
        BackendKind::Mq => {
            let _ = MQ_SLOT.set(exec);
        }
    }
}

/// Looks up the registered executor for `kind`, if any.
pub fn get(kind: BackendKind) -> Option<&'static dyn Executor> {
    match kind {
        BackendKind::Rayon => Some(&RAYON),
        BackendKind::Mq => MQ_SLOT.get().copied(),
    }
}

/// The registered executor for `kind`.
///
/// # Panics
/// Panics when the backend was never registered — for `mq`, call
/// `rpb_multiqueue::backend::ensure_registered()` during startup (the
/// `rpb` harness does).
pub fn executor(kind: BackendKind) -> &'static dyn Executor {
    get(kind).unwrap_or_else(|| {
        panic!(
            "backend `{}` is not registered (rpb_multiqueue::backend::ensure_registered())",
            kind.label()
        )
    })
}

/// The always-available Rayon executor.
pub fn rayon_executor() -> &'static dyn Executor {
    &RAYON
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn parse_round_trips_and_rejects() {
        for b in ALL_BACKENDS {
            assert_eq!(BackendKind::from_str(b.label()), Ok(b));
        }
        assert_eq!(BackendKind::from_str(" MQ "), Ok(BackendKind::Mq));
        assert_eq!(BackendKind::from_str("multiqueue"), Ok(BackendKind::Mq));
        let err = BackendKind::from_str("tbb").unwrap_err();
        assert!(err.to_string().contains("tbb"));
        assert!(err.to_string().contains("rayon") && err.to_string().contains("mq"));
    }

    #[test]
    fn programmatic_default_wins_over_env_resolution() {
        set_default_backend(Some(BackendKind::Mq));
        assert_eq!(default_backend(), BackendKind::Mq);
        set_default_backend(Some(BackendKind::Rayon));
        assert_eq!(default_backend(), BackendKind::Rayon);
        set_default_backend(None);
        // Unset: resolves via RPB_BACKEND or Rayon; either way it parses.
        let _ = default_backend();
    }

    #[test]
    fn rayon_install_provides_a_pool_of_requested_width() {
        let width = run_in(rayon_executor(), 3, rayon::current_num_threads);
        assert_eq!(width, 3);
    }

    #[test]
    fn run_in_returns_the_closure_value() {
        let v = run_in(rayon_executor(), 2, || (0..100).sum::<u64>());
        assert_eq!(v, 4950);
    }

    #[test]
    fn rayon_batch_runs_every_task() {
        let counter = AtomicUsize::new(0);
        let tasks: Vec<BatchTask<'_>> = (0..64)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as BatchTask<'_>
            })
            .collect();
        let stats = rayon_executor().run_batch(4, tasks).tasks;
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert_eq!(stats, 64);
    }

    #[test]
    fn rayon_batch_panic_is_typed_and_accounted() {
        let tasks: Vec<BatchTask<'static>> = (0..16)
            .map(|i| {
                Box::new(move || {
                    if i == 7 {
                        panic!("injected batch panic");
                    }
                }) as BatchTask<'static>
            })
            .collect();
        let err = rayon_executor()
            .try_run_batch(1, tasks)
            .expect_err("task 7 panics");
        assert_eq!(err.message(), "injected batch panic");
        // Single worker: the accounting must cover every task exactly once.
        assert_eq!(err.tasks_completed + err.tasks_drained + 1, 16);
    }

    #[test]
    fn registry_serves_rayon_without_registration() {
        assert_eq!(executor(BackendKind::Rayon).kind(), BackendKind::Rayon);
        assert_eq!(executor(BackendKind::Rayon).name(), "rayon");
    }
}
