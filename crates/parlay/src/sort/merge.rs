//! Divide-and-conquer merge sort — the paper's Listing 9, with a parallel
//! merge (dual binary search) so both the divide and the combine steps are
//! `D&C` pattern work.
//!
//! This is the fearless end of the spectrum: `split_at_mut` gives the two
//! recursive calls disjoint mutable borrows, and `rayon::join` runs them in
//! parallel with lifetimes rustc fully verifies.

use rayon::join;

/// Below this size recursion goes sequential (paper Listing 9 `Threshold`).
const SEQ_CUTOFF: usize = 1 << 13;
/// Below this size, merges are done sequentially.
const MERGE_CUTOFF: usize = 1 << 13;

/// Stable parallel merge sort.
///
/// # Examples
/// ```
/// let mut v = vec![9, 7, 8, 1];
/// rpb_parlay::merge_sort(&mut v, |a, b| a.cmp(b));
/// assert_eq!(v, vec![1, 7, 8, 9]);
/// ```
pub fn merge_sort<T, F>(data: &mut [T], cmp: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> std::cmp::Ordering + Send + Sync + Copy,
{
    let n = data.len();
    if n <= 1 {
        return;
    }
    let mut buf = data.to_vec();
    sort_rec(data, &mut buf, cmp);
}

/// Recursive sort of `data` using `buf` as scratch.
fn sort_rec<T, F>(data: &mut [T], buf: &mut [T], cmp: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> std::cmp::Ordering + Send + Sync + Copy,
{
    let n = data.len();
    if n <= SEQ_CUTOFF {
        data.sort_by(cmp);
        return;
    }
    let mid = n / 2;
    let (l, r) = data.split_at_mut(mid);
    let (lb, rb) = buf.split_at_mut(mid);
    join(|| sort_rec(l, lb, cmp), || sort_rec(r, rb, cmp));
    // Merge l and r into buf, then copy back.
    par_merge_into(l, r, buf, cmp);
    data.copy_from_slice(buf);
}

/// Merges sorted `a` and `b` into `out` (len == a.len()+b.len()) in
/// parallel by splitting at the median of the combined sequence.
pub fn par_merge_into<T, F>(a: &[T], b: &[T], out: &mut [T], cmp: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> std::cmp::Ordering + Send + Sync + Copy,
{
    assert_eq!(a.len() + b.len(), out.len(), "merge output size mismatch");
    if out.len() <= MERGE_CUTOFF {
        seq_merge(a, b, out, cmp);
        return;
    }
    // Pick the larger side's midpoint; binary-search its counterpart so the
    // two halves of `out` receive statically disjoint element ranges.
    if a.len() >= b.len() {
        let am = a.len() / 2;
        // First index in b not less than a[am] keeps the merge stable.
        let bm = b.partition_point(|x| cmp(x, &a[am]) == std::cmp::Ordering::Less);
        let (out_l, out_r) = out.split_at_mut(am + bm);
        join(
            || par_merge_into(&a[..am], &b[..bm], out_l, cmp),
            || par_merge_into(&a[am..], &b[bm..], out_r, cmp),
        );
    } else {
        let bm = b.len() / 2;
        // Elements of a strictly less than or equal keep left-priority: a's
        // equal elements must precede b's for stability.
        let am = a.partition_point(|x| cmp(x, &b[bm]) != std::cmp::Ordering::Greater);
        let (out_l, out_r) = out.split_at_mut(am + bm);
        join(
            || par_merge_into(&a[..am], &b[..bm], out_l, cmp),
            || par_merge_into(&a[am..], &b[bm..], out_r, cmp),
        );
    }
}

fn seq_merge<T, F>(a: &[T], b: &[T], out: &mut [T], cmp: F)
where
    T: Copy,
    F: Fn(&T, &T) -> std::cmp::Ordering + Copy,
{
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        if i < a.len() && (j >= b.len() || cmp(&a[i], &b[j]) != std::cmp::Ordering::Greater) {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::hash64;

    #[test]
    fn sorts_random() {
        let mut v: Vec<u64> = (0..100_000).map(hash64).collect();
        let mut want = v.clone();
        want.sort_unstable();
        merge_sort(&mut v, |a, b| a.cmp(b));
        assert_eq!(v, want);
    }

    #[test]
    fn is_stable() {
        let n = 80_000usize;
        let mut v: Vec<(u64, usize)> = (0..n).map(|i| (hash64(i as u64) % 32, i)).collect();
        merge_sort(&mut v, |a, b| a.0.cmp(&b.0));
        for w in v.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated at keys {}", w[0].0);
            }
        }
    }

    #[test]
    fn merge_two_sorted_runs() {
        let a: Vec<u64> = (0..40_000).map(|i| i * 2).collect();
        let b: Vec<u64> = (0..40_000).map(|i| i * 2 + 1).collect();
        let mut out = vec![0u64; 80_000];
        par_merge_into(&a, &b, &mut out, |a, b| a.cmp(b));
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(out[0], 0);
        assert_eq!(out[79_999], 79_999);
    }

    #[test]
    fn merge_skewed_sizes() {
        let a: Vec<u64> = vec![50_000];
        let b: Vec<u64> = (0..30_000).collect();
        let mut out = vec![0u64; 30_001];
        par_merge_into(&a, &b, &mut out, |a, b| a.cmp(b));
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_and_tiny() {
        let mut v: Vec<u32> = vec![];
        merge_sort(&mut v, |a, b| a.cmp(b));
        let mut v = vec![1u32];
        merge_sort(&mut v, |a, b| a.cmp(b));
        assert_eq!(v, vec![1]);
    }
}
