//! Parallel sample sort — the `sort` benchmark of RPB.
//!
//! PBBS's comparison sort: take an oversampled random sample, sort it, pick
//! evenly spaced pivots, classify every element into a bucket (read-only),
//! scatter elements into bucket-contiguous positions (destinations derived
//! from a scan of per-block bucket counts), then sort each bucket in
//! parallel. The bucket boundaries are exactly the `RngInd` pattern the
//! paper studies: contiguous chunks whose offsets come from run-time data,
//! made safe because scan output is monotone by construction.

use rayon::prelude::*;

use crate::random::Random;
use crate::scan::scan_inplace_exclusive;
use crate::sendptr::SendPtr;

/// Below this size, delegate to the standard library's sequential sort.
const SEQ_CUTOFF: usize = 1 << 14;
/// Oversampling factor for pivot selection.
const OVERSAMPLE: usize = 8;

/// Sorts `data` with a parallel sample sort. Not stable.
///
/// # Examples
/// ```
/// let mut v = vec![3, 1, 4, 1, 5, 9, 2, 6];
/// rpb_parlay::sample_sort(&mut v, |a, b| a.cmp(b));
/// assert_eq!(v, vec![1, 1, 2, 3, 4, 5, 6, 9]);
/// ```
pub fn sample_sort<T, F>(data: &mut [T], cmp: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> std::cmp::Ordering + Send + Sync,
{
    let n = data.len();
    if n < SEQ_CUTOFF {
        data.sort_unstable_by(&cmp);
        return;
    }
    let nbuckets = ((n as f64).sqrt() / 8.0).ceil() as usize;
    let nbuckets = nbuckets.clamp(2, 1024);
    // 1. Sample and pick pivots.
    let r = Random::new(0xD1CE);
    let mut sample: Vec<T> = (0..nbuckets * OVERSAMPLE)
        .map(|i| data[(r.ith_rand(i as u64) % n as u64) as usize])
        .collect();
    sample.sort_unstable_by(&cmp);
    let pivots: Vec<T> = (1..nbuckets).map(|i| sample[i * OVERSAMPLE]).collect();

    // 2. Classify each element (read-only over data + pivots).
    let bucket_of = |x: &T| -> usize {
        // partition_point: first pivot greater than x.
        pivots.partition_point(|p| cmp(p, x) != std::cmp::Ordering::Greater)
    };
    let nblocks = rayon::current_num_threads().max(1) * 4;
    let block = n.div_ceil(nblocks).max(1);
    let nblocks = n.div_ceil(block);
    let ids: Vec<u32> = data.par_iter().map(|x| bucket_of(x) as u32).collect();

    // 3. Per-block bucket counts, column-major scan for stability-style
    //    disjoint destination ranges.
    let mut counts: Vec<usize> = ids
        .par_chunks(block)
        .flat_map_iter(|chunk| {
            let mut hist = vec![0usize; nbuckets];
            for &b in chunk {
                hist[b as usize] += 1;
            }
            hist.into_iter()
        })
        .collect();
    let mut transposed = vec![0usize; nblocks * nbuckets];
    for b in 0..nblocks {
        for d in 0..nbuckets {
            transposed[d * nblocks + b] = counts[b * nbuckets + d];
        }
    }
    scan_inplace_exclusive(&mut transposed, 0, |a, b| a + b);
    // Bucket start offsets (for step 5) before folding back.
    let bucket_starts: Vec<usize> = (0..nbuckets).map(|d| transposed[d * nblocks]).collect();
    for b in 0..nblocks {
        for d in 0..nbuckets {
            counts[b * nbuckets + d] = transposed[d * nblocks + b];
        }
    }

    // 4. Scatter into a buffer; (block, bucket) ranges are disjoint.
    let mut buf: Vec<T> = Vec::with_capacity(n);
    {
        let buf_ptr = SendPtr::new(buf.as_mut_ptr());
        data.par_chunks(block)
            .zip(ids.par_chunks(block))
            .enumerate()
            .for_each(|(b, (chunk, id_chunk))| {
                let mut offs = counts[b * nbuckets..(b + 1) * nbuckets].to_vec();
                for (&x, &d) in chunk.iter().zip(id_chunk) {
                    // SAFETY: offs[d] walks the disjoint range owned by
                    // (block b, bucket d); the scan partitions 0..n.
                    unsafe { buf_ptr.write(offs[d as usize], x) };
                    offs[d as usize] += 1;
                }
            });
    }
    // SAFETY: the scatter wrote all n slots exactly once.
    unsafe { buf.set_len(n) };

    // 5. Sort each bucket in parallel and copy back (Block-on-RngInd: the
    //    chunk list comes from bucket_starts, monotone by construction).
    let mut slices: Vec<&mut [T]> = Vec::with_capacity(nbuckets);
    {
        let mut rest: &mut [T] = &mut buf;
        let mut prev = 0usize;
        for d in 1..=nbuckets {
            let end = if d == nbuckets { n } else { bucket_starts[d] };
            let (head, tail) = rest.split_at_mut(end - prev);
            slices.push(head);
            rest = tail;
            prev = end;
        }
    }
    slices
        .into_par_iter()
        .for_each(|s| s.sort_unstable_by(&cmp));
    data.copy_from_slice(&buf);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::hash64;

    #[test]
    fn sorts_random_u64() {
        let mut v: Vec<u64> = (0..100_000).map(hash64).collect();
        let mut want = v.clone();
        want.sort_unstable();
        sample_sort(&mut v, |a, b| a.cmp(b));
        assert_eq!(v, want);
    }

    #[test]
    fn sorts_with_duplicates() {
        let mut v: Vec<u64> = (0..100_000).map(|i| hash64(i) % 10).collect();
        let mut want = v.clone();
        want.sort_unstable();
        sample_sort(&mut v, |a, b| a.cmp(b));
        assert_eq!(v, want);
    }

    #[test]
    fn sorts_all_equal() {
        let mut v = vec![7u64; 50_000];
        sample_sort(&mut v, |a, b| a.cmp(b));
        assert!(v.iter().all(|&x| x == 7));
    }

    #[test]
    fn sorts_descending_comparator() {
        let mut v: Vec<u64> = (0..50_000).map(hash64).collect();
        sample_sort(&mut v, |a, b| b.cmp(a));
        assert!(v.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn small_input_falls_back() {
        let mut v = vec![2u8, 1];
        sample_sort(&mut v, |a, b| a.cmp(b));
        assert_eq!(v, vec![1, 2]);
    }

    #[test]
    fn sorts_floats_by_total_order() {
        let mut v: Vec<f64> = (0..60_000)
            .map(|i| (hash64(i) % 1000) as f64 - 500.0)
            .collect();
        sample_sort(&mut v, |a, b| a.partial_cmp(b).expect("no NaN"));
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }
}
