//! Stable LSD radix sort over 8-bit digits.
//!
//! This is the classic PBBS blocked counting sort applied digit by digit:
//! per-block histograms (`Block` pattern), a column-major exclusive scan of
//! the histogram matrix, then a scatter where every (block, digit) pair owns
//! a contiguous, provably disjoint destination range. The scatter is the
//! `SngInd` pattern of the paper — destinations are data-dependent — but the
//! scan establishes disjointness, so the interior-unsafe write is sound;
//! it is encapsulated here the same way Rayon encapsulates `collect`.
//!
//! Raw-speed details:
//!
//! * the `counts`/`transposed` histogram matrices are allocated **once** per
//!   sort and reused across digit passes (they are shape-identical for every
//!   pass), instead of being reallocated per pass;
//! * with the `simd` feature and a runtime-detected AVX2 CPU,
//!   [`radix_sort_u64`] takes a specialized fast path whose digit histogram
//!   is vectorized (4 keys per load, 4-way striped count tables to break the
//!   store-forwarding dependency chain on skewed digit distributions) and
//!   which elides passes whose histogram shows a single occupied bucket —
//!   the scatter would be the identity permutation, so a block copy
//!   suffices. The scalar code below remains the mandatory fallback and the
//!   differential oracle (`rpb verify --kernel-impl scalar,simd`).

use rayon::prelude::*;

use crate::scan::scan_inplace_exclusive;
use crate::sendptr::SendPtr;

const RADIX_BITS: u32 = 8;
const BUCKETS: usize = 1 << RADIX_BITS;
/// Sequential cutoff: below this a comparison sort is faster and simpler.
const SEQ_CUTOFF: usize = 1 << 14;

/// Per-sort histogram scratch, reused across digit passes.
///
/// Every pass needs the same `nblocks * BUCKETS` matrix twice (row-major
/// per-block counts and its column-major transpose for the stable scan);
/// allocating the pair once per sort instead of twice per pass removes
/// `2 * (passes - 1)` transient allocations from the hot loop.
struct PassScratch {
    counts: Vec<usize>,
    transposed: Vec<usize>,
}

impl PassScratch {
    fn new() -> Self {
        PassScratch {
            counts: Vec::new(),
            transposed: Vec::new(),
        }
    }

    /// Hands out the two matrices sized for `nblocks`, allocating only on
    /// first use. Contents are unspecified: the histogram pass fully
    /// rewrites `counts` and the transpose fully rewrites `transposed`.
    fn matrices(&mut self, nblocks: usize) -> (&mut [usize], &mut [usize]) {
        let want = nblocks * BUCKETS;
        if self.counts.len() != want {
            self.counts.resize(want, 0);
            self.transposed.resize(want, 0);
        }
        (&mut self.counts[..want], &mut self.transposed[..want])
    }

    /// Bytes of allocation avoided per pass that reuses the matrices.
    fn bytes_per_pass(nblocks: usize) -> u64 {
        2 * (nblocks * BUCKETS * std::mem::size_of::<usize>()) as u64
    }
}

/// Stable parallel radix sort of `data` by `key(x)`, using the low
/// `key_bits` bits of the key.
///
/// `key_bits` lets callers skip passes over known-zero digits (e.g. ranks
/// bounded by `n` in suffix-array construction).
///
/// # Examples
/// ```
/// let mut v = vec![30u64, 1, 20, 3];
/// rpb_parlay::radix_sort_by_key(&mut v, 64, |&x| x);
/// assert_eq!(v, vec![1, 3, 20, 30]);
/// ```
pub fn radix_sort_by_key<T, F>(data: &mut [T], key_bits: u32, key: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Send + Sync,
{
    let n = data.len();
    if n <= 1 {
        return;
    }
    if n < SEQ_CUTOFF {
        data.sort_by_key(|x| key(x));
        return;
    }
    let passes = key_bits.div_ceil(RADIX_BITS).max(1);
    let mut buf: Vec<T> = Vec::with_capacity(n);
    // SAFETY: `buf` is used strictly as a scatter target; every pass writes
    // all `n` slots before they are read (counting sort is a permutation).
    #[allow(clippy::uninit_vec)]
    unsafe {
        buf.set_len(n)
    };
    let block = block_size(n);
    let mut scratch = PassScratch::new();
    let mut src_is_data = true;
    for pass in 0..passes {
        let shift = pass * RADIX_BITS;
        if src_is_data {
            counting_sort_pass(data, &mut buf, shift, &key, block, &mut scratch);
        } else {
            counting_sort_pass(&buf, data, shift, &key, block, &mut scratch);
        }
        src_is_data = !src_is_data;
    }
    if !src_is_data {
        data.copy_from_slice(&buf);
    }
    if passes > 1 {
        rpb_obs::metrics::RADIX_SCRATCH_BYTES_SAVED
            .add((passes as u64 - 1) * PassScratch::bytes_per_pass(n.div_ceil(block)));
    }
}

/// Block size used by every pass of one sort (the matrices in
/// [`PassScratch`] assume it stays fixed).
fn block_size(n: usize) -> usize {
    let nblocks = rayon::current_num_threads().max(1) * 4;
    n.div_ceil(nblocks).max(1)
}

/// One stable counting-sort pass on digit `shift..shift+8`.
fn counting_sort_pass<T, F>(
    src: &[T],
    dst: &mut [T],
    shift: u32,
    key: &F,
    block: usize,
    scratch: &mut PassScratch,
) where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Send + Sync,
{
    let n = src.len();
    let nblocks = n.div_ceil(block);
    let (counts, transposed) = scratch.matrices(nblocks);
    // Per-block digit histograms, written straight into the reused matrix
    // (each block row is zeroed and fully rebuilt here).
    counts
        .par_chunks_mut(BUCKETS)
        .zip(src.par_chunks(block))
        .for_each(|(hist, chunk)| {
            hist.fill(0);
            for x in chunk {
                hist[((key(x) >> shift) & (BUCKETS as u64 - 1)) as usize] += 1;
            }
        });
    column_scan(counts, transposed, nblocks);
    // Scatter: block b writes each element to its digit's running offset.
    // Destination ranges per (block, digit) are disjoint by the scan.
    let dst_ptr = SendPtr::new(dst.as_mut_ptr());
    src.par_chunks(block).enumerate().for_each(|(b, chunk)| {
        let mut offs: [usize; BUCKETS] = [0; BUCKETS];
        offs.copy_from_slice(&counts[b * BUCKETS..(b + 1) * BUCKETS]);
        for &x in chunk {
            let d = ((key(&x) >> shift) & (BUCKETS as u64 - 1)) as usize;
            // SAFETY: offs[d] walks the half-open range owned exclusively by
            // (block b, digit d); ranges partition 0..n.
            unsafe { dst_ptr.write(offs[d], x) };
            offs[d] += 1;
        }
    });
}

/// Column-major exclusive scan of the `nblocks x BUCKETS` histogram matrix:
/// the offset of (digit d, block b) becomes the count of all smaller digits
/// plus the same digit in earlier blocks — that ordering is what makes the
/// sort stable. `counts` is rewritten in place with the scanned offsets.
fn column_scan(counts: &mut [usize], transposed: &mut [usize], nblocks: usize) {
    for b in 0..nblocks {
        for d in 0..BUCKETS {
            transposed[d * nblocks + b] = counts[b * BUCKETS + d];
        }
    }
    scan_inplace_exclusive(transposed, 0, |a, b| a + b);
    for b in 0..nblocks {
        for d in 0..BUCKETS {
            counts[b * BUCKETS + d] = transposed[d * nblocks + b];
        }
    }
}

/// Sorts `u64` values ascending.
///
/// With the `simd` feature on a runtime-detected AVX2 CPU this dispatches
/// to a vectorized-histogram fast path (see the module docs); otherwise —
/// including under `RPB_FORCE_SCALAR=1` or a forced scalar
/// [`crate::simd::KernelImpl`] — it is exactly the generic scalar sort.
pub fn radix_sort_u64(data: &mut [u64]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        // The AVX2 histogram counts in u32 per block; a block never exceeds
        // n, so capping n keeps the counters overflow-free.
        if data.len() >= SEQ_CUTOFF
            && data.len() <= u32::MAX as usize
            && crate::simd::simd_enabled()
        {
            // SAFETY: `simd_enabled()` just confirmed AVX2 support on this
            // CPU (the fn's only safety requirement).
            unsafe { avx2::radix_sort_u64_avx2(data) };
            return;
        }
    }
    radix_sort_by_key(data, 64, |&x| x);
}

/// Sorts `u32` values ascending (only 4 digit passes).
pub fn radix_sort_u32(data: &mut [u32]) {
    radix_sort_by_key(data, 32, |&x| x as u64);
}

/// AVX2 fast path for [`radix_sort_u64`]. Same blocked counting sort and
/// identical output (a stable sort of `u64` keys is fully determined by the
/// values); only the per-pass digit histogram and the trivial-pass handling
/// differ from the scalar pass.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    use super::*;

    /// Vectorized radix sort.
    ///
    /// # Safety
    /// The CPU must support AVX2 (callers establish this through
    /// [`crate::simd::simd_enabled`]).
    pub unsafe fn radix_sort_u64_avx2(data: &mut [u64]) {
        let n = data.len();
        debug_assert!(n >= 2);
        let passes = 64 / RADIX_BITS;
        let mut buf: Vec<u64> = Vec::with_capacity(n);
        // SAFETY: `buf` is used strictly as a scatter/copy target; every
        // pass writes all `n` slots before they are read.
        #[allow(clippy::uninit_vec)]
        unsafe {
            buf.set_len(n)
        };
        let block = block_size(n);
        let mut scratch = PassScratch::new();
        let mut src_is_data = true;
        for pass in 0..passes {
            let shift = pass * RADIX_BITS;
            if src_is_data {
                // SAFETY: AVX2 availability is this fn's own contract.
                unsafe { pass_avx2(data, &mut buf, shift, block, &mut scratch) };
            } else {
                // SAFETY: as above.
                unsafe { pass_avx2(&buf, data, shift, block, &mut scratch) };
            }
            src_is_data = !src_is_data;
        }
        if !src_is_data {
            data.copy_from_slice(&buf);
        }
        rpb_obs::metrics::RADIX_SCRATCH_BYTES_SAVED
            .add((passes as u64 - 1) * PassScratch::bytes_per_pass(n.div_ceil(block)));
    }

    /// One counting-sort pass with an AVX2 histogram and trivial-pass
    /// elision.
    ///
    /// # Safety
    /// The CPU must support AVX2.
    unsafe fn pass_avx2(
        src: &[u64],
        dst: &mut [u64],
        shift: u32,
        block: usize,
        scratch: &mut PassScratch,
    ) {
        let n = src.len();
        let nblocks = n.div_ceil(block);
        let (counts, transposed) = scratch.matrices(nblocks);
        counts
            .par_chunks_mut(BUCKETS)
            .zip(src.par_chunks(block))
            .for_each(|(hist, chunk)| {
                // SAFETY: AVX2 availability is the enclosing fn's contract.
                unsafe { digit_histogram(chunk, shift, hist) };
            });
        rpb_obs::metrics::RADIX_SIMD_PASSES.add(1);
        // Trivial pass: if the first occupied digit holds all n elements,
        // the stable scatter is the identity permutation — a block copy
        // preserves the ping-pong invariant at memcpy speed. (Frequent in
        // practice: keys bounded far below 2^64 make every high digit 0.)
        for d in 0..BUCKETS {
            let total: usize = (0..nblocks).map(|b| counts[b * BUCKETS + d]).sum();
            if total == 0 {
                continue;
            }
            if total == n {
                rpb_obs::metrics::RADIX_TRIVIAL_PASSES_ELIDED.add(1);
                dst.par_chunks_mut(block)
                    .zip(src.par_chunks(block))
                    .for_each(|(d, s)| d.copy_from_slice(s));
                return;
            }
            break;
        }
        column_scan(counts, transposed, nblocks);
        // Scatter: identical to the scalar pass (data-dependent stores do
        // not vectorize; the digit recompute is a shift+mask).
        let dst_ptr = SendPtr::new(dst.as_mut_ptr());
        src.par_chunks(block).enumerate().for_each(|(b, chunk)| {
            let mut offs: [usize; BUCKETS] = [0; BUCKETS];
            offs.copy_from_slice(&counts[b * BUCKETS..(b + 1) * BUCKETS]);
            for &x in chunk {
                let d = ((x >> shift) & (BUCKETS as u64 - 1)) as usize;
                // SAFETY: offs[d] walks the half-open range owned
                // exclusively by (block b, digit d); ranges partition 0..n.
                unsafe { dst_ptr.write(offs[d], x) };
                offs[d] += 1;
            }
        });
    }

    /// AVX2 digit histogram: extracts the 8-bit digit at `shift` from 4
    /// keys per 256-bit load and counts into 4 striped tables, merged at
    /// the end. The striping gives the CPU 4 independent increment chains,
    /// sidestepping the store-to-load-forwarding stall that serializes the
    /// scalar loop whenever consecutive keys share a digit (the common case
    /// on skewed inputs).
    ///
    /// # Safety
    /// The CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn digit_histogram(chunk: &[u64], shift: u32, hist: &mut [usize]) {
        use std::arch::x86_64::*;
        debug_assert_eq!(hist.len(), BUCKETS);
        debug_assert!(chunk.len() <= u32::MAX as usize);
        let mut stripes = [[0u32; BUCKETS]; 4];
        let n = chunk.len();
        let mask = _mm256_set1_epi64x(BUCKETS as i64 - 1);
        let count = _mm_cvtsi32_si128(shift as i32);
        let mut lanes = [0u64; 4];
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n keeps the 32-byte unaligned load in
            // bounds.
            let v = unsafe { _mm256_loadu_si256(chunk.as_ptr().add(i) as *const __m256i) };
            let d = _mm256_and_si256(_mm256_srl_epi64(v, count), mask);
            // SAFETY: `lanes` is exactly 32 bytes; unaligned store.
            unsafe { _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, d) };
            stripes[0][lanes[0] as usize] += 1;
            stripes[1][lanes[1] as usize] += 1;
            stripes[2][lanes[2] as usize] += 1;
            stripes[3][lanes[3] as usize] += 1;
            i += 4;
        }
        // Remainder lanes (n % 4) go through the scalar digit extract.
        while i < n {
            stripes[0][((chunk[i] >> shift) & (BUCKETS as u64 - 1)) as usize] += 1;
            i += 1;
        }
        for (b, slot) in hist.iter_mut().enumerate() {
            *slot = stripes[0][b] as usize
                + stripes[1][b] as usize
                + stripes[2][b] as usize
                + stripes[3][b] as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::hash64;

    #[test]
    fn sorts_small() {
        let mut v = vec![5u64, 3, 9, 1, 1, 0];
        radix_sort_u64(&mut v);
        assert_eq!(v, vec![0, 1, 1, 3, 5, 9]);
    }

    #[test]
    fn sorts_large_random() {
        let mut v: Vec<u64> = (0..200_000).map(hash64).collect();
        let mut want = v.clone();
        want.sort_unstable();
        radix_sort_u64(&mut v);
        assert_eq!(v, want);
    }

    #[test]
    fn sorts_u32() {
        let mut v: Vec<u32> = (0..100_000).map(|i| hash64(i) as u32).collect();
        let mut want = v.clone();
        want.sort_unstable();
        radix_sort_u32(&mut v);
        assert_eq!(v, want);
    }

    #[test]
    fn is_stable_on_pairs() {
        // Sort (key, original_index) pairs by key only; equal keys must keep
        // index order.
        let n = 100_000usize;
        let mut v: Vec<(u64, usize)> = (0..n).map(|i| (hash64(i as u64) % 64, i)).collect();
        radix_sort_by_key(&mut v, 6, |p| p.0);
        for w in v.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
    }

    #[test]
    fn respects_key_bits() {
        // Keys < 2^16: only 2 passes should still fully sort.
        let mut v: Vec<u64> = (0..100_000).map(|i| hash64(i) & 0xFFFF).collect();
        let mut want = v.clone();
        want.sort_unstable();
        radix_sort_by_key(&mut v, 16, |&x| x);
        assert_eq!(v, want);
    }

    #[test]
    fn empty_and_singleton() {
        let mut v: Vec<u64> = vec![];
        radix_sort_u64(&mut v);
        let mut v = vec![42u64];
        radix_sort_u64(&mut v);
        assert_eq!(v, vec![42]);
    }

    #[test]
    fn already_sorted_and_reversed() {
        let mut v: Vec<u64> = (0..50_000).collect();
        radix_sort_u64(&mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        let mut v: Vec<u64> = (0..50_000).rev().collect();
        radix_sort_u64(&mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Scalar-vs-fast-path differential: both dispatch outcomes of
    /// `radix_sort_u64` must produce the identical (fully determined)
    /// sorted array, across sizes covering the remainder lanes (n % 4) and
    /// skewed/bounded key ranges that trigger trivial-pass elision. On
    /// machines or builds without AVX2 the two runs trivially coincide.
    #[test]
    fn simd_and_scalar_paths_sort_identically() {
        use crate::simd::{set_forced, KernelImpl};
        let _guard = crate::simd::force_lock();
        let base = if cfg!(miri) { 0 } else { SEQ_CUTOFF };
        for (extra, spread) in [
            (0usize, u64::MAX),
            (1, u64::MAX),
            (2, 1 << 15),
            (3, 255),
            (17, 1),
        ] {
            let n = base + 64 + extra;
            let input: Vec<u64> = (0..n as u64).map(|i| hash64(i) % spread.max(1)).collect();
            let mut scalar = input.clone();
            set_forced(KernelImpl::Scalar);
            radix_sort_u64(&mut scalar);
            let mut simd = input.clone();
            set_forced(KernelImpl::Simd);
            radix_sort_u64(&mut simd);
            set_forced(KernelImpl::Auto);
            assert_eq!(scalar, simd, "n={n} spread={spread}");
            assert!(scalar.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
