//! Stable LSD radix sort over 8-bit digits.
//!
//! This is the classic PBBS blocked counting sort applied digit by digit:
//! per-block histograms (`Block` pattern), a column-major exclusive scan of
//! the histogram matrix, then a scatter where every (block, digit) pair owns
//! a contiguous, provably disjoint destination range. The scatter is the
//! `SngInd` pattern of the paper — destinations are data-dependent — but the
//! scan establishes disjointness, so the interior-unsafe write is sound;
//! it is encapsulated here the same way Rayon encapsulates `collect`.

use rayon::prelude::*;

use crate::scan::scan_inplace_exclusive;
use crate::sendptr::SendPtr;

const RADIX_BITS: u32 = 8;
const BUCKETS: usize = 1 << RADIX_BITS;
/// Sequential cutoff: below this a comparison sort is faster and simpler.
const SEQ_CUTOFF: usize = 1 << 14;

/// Stable parallel radix sort of `data` by `key(x)`, using the low
/// `key_bits` bits of the key.
///
/// `key_bits` lets callers skip passes over known-zero digits (e.g. ranks
/// bounded by `n` in suffix-array construction).
///
/// # Examples
/// ```
/// let mut v = vec![30u64, 1, 20, 3];
/// rpb_parlay::radix_sort_by_key(&mut v, 64, |&x| x);
/// assert_eq!(v, vec![1, 3, 20, 30]);
/// ```
pub fn radix_sort_by_key<T, F>(data: &mut [T], key_bits: u32, key: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Send + Sync,
{
    let n = data.len();
    if n <= 1 {
        return;
    }
    if n < SEQ_CUTOFF {
        data.sort_by_key(|x| key(x));
        return;
    }
    let passes = key_bits.div_ceil(RADIX_BITS).max(1);
    let mut buf: Vec<T> = Vec::with_capacity(n);
    // SAFETY: `buf` is used strictly as a scatter target; every pass writes
    // all `n` slots before they are read (counting sort is a permutation).
    #[allow(clippy::uninit_vec)]
    unsafe {
        buf.set_len(n)
    };
    let mut src_is_data = true;
    for pass in 0..passes {
        let shift = pass * RADIX_BITS;
        if src_is_data {
            counting_sort_pass(data, &mut buf, shift, &key);
        } else {
            counting_sort_pass(&buf, data, shift, &key);
        }
        src_is_data = !src_is_data;
    }
    if !src_is_data {
        data.copy_from_slice(&buf);
    }
}

/// One stable counting-sort pass on digit `shift..shift+8`.
fn counting_sort_pass<T, F>(src: &[T], dst: &mut [T], shift: u32, key: &F)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Send + Sync,
{
    let n = src.len();
    let nblocks = rayon::current_num_threads().max(1) * 4;
    let block = n.div_ceil(nblocks).max(1);
    let nblocks = n.div_ceil(block);
    // Per-block digit histograms.
    let mut counts: Vec<usize> = src
        .par_chunks(block)
        .flat_map_iter(|chunk| {
            let mut hist = vec![0usize; BUCKETS];
            for x in chunk {
                hist[((key(x) >> shift) & (BUCKETS as u64 - 1)) as usize] += 1;
            }
            hist.into_iter()
        })
        .collect();
    debug_assert_eq!(counts.len(), nblocks * BUCKETS);
    // Column-major exclusive scan: offset of (digit d, block b) is the count
    // of all smaller digits plus the same digit in earlier blocks — that
    // ordering is what makes the sort stable.
    let mut transposed = vec![0usize; nblocks * BUCKETS];
    for b in 0..nblocks {
        for d in 0..BUCKETS {
            transposed[d * nblocks + b] = counts[b * BUCKETS + d];
        }
    }
    scan_inplace_exclusive(&mut transposed, 0, |a, b| a + b);
    for b in 0..nblocks {
        for d in 0..BUCKETS {
            counts[b * BUCKETS + d] = transposed[d * nblocks + b];
        }
    }
    // Scatter: block b writes each element to its digit's running offset.
    // Destination ranges per (block, digit) are disjoint by the scan.
    let dst_ptr = SendPtr::new(dst.as_mut_ptr());
    src.par_chunks(block).enumerate().for_each(|(b, chunk)| {
        let mut offs: [usize; BUCKETS] = [0; BUCKETS];
        offs.copy_from_slice(&counts[b * BUCKETS..(b + 1) * BUCKETS]);
        for &x in chunk {
            let d = ((key(&x) >> shift) & (BUCKETS as u64 - 1)) as usize;
            // SAFETY: offs[d] walks the half-open range owned exclusively by
            // (block b, digit d); ranges partition 0..n.
            unsafe { dst_ptr.write(offs[d], x) };
            offs[d] += 1;
        }
    });
}

/// Sorts `u64` values ascending.
pub fn radix_sort_u64(data: &mut [u64]) {
    radix_sort_by_key(data, 64, |&x| x);
}

/// Sorts `u32` values ascending (only 4 digit passes).
pub fn radix_sort_u32(data: &mut [u32]) {
    radix_sort_by_key(data, 32, |&x| x as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::hash64;

    #[test]
    fn sorts_small() {
        let mut v = vec![5u64, 3, 9, 1, 1, 0];
        radix_sort_u64(&mut v);
        assert_eq!(v, vec![0, 1, 1, 3, 5, 9]);
    }

    #[test]
    fn sorts_large_random() {
        let mut v: Vec<u64> = (0..200_000).map(hash64).collect();
        let mut want = v.clone();
        want.sort_unstable();
        radix_sort_u64(&mut v);
        assert_eq!(v, want);
    }

    #[test]
    fn sorts_u32() {
        let mut v: Vec<u32> = (0..100_000).map(|i| hash64(i) as u32).collect();
        let mut want = v.clone();
        want.sort_unstable();
        radix_sort_u32(&mut v);
        assert_eq!(v, want);
    }

    #[test]
    fn is_stable_on_pairs() {
        // Sort (key, original_index) pairs by key only; equal keys must keep
        // index order.
        let n = 100_000usize;
        let mut v: Vec<(u64, usize)> = (0..n).map(|i| (hash64(i as u64) % 64, i)).collect();
        radix_sort_by_key(&mut v, 6, |p| p.0);
        for w in v.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
    }

    #[test]
    fn respects_key_bits() {
        // Keys < 2^16: only 2 passes should still fully sort.
        let mut v: Vec<u64> = (0..100_000).map(|i| hash64(i) & 0xFFFF).collect();
        let mut want = v.clone();
        want.sort_unstable();
        radix_sort_by_key(&mut v, 16, |&x| x);
        assert_eq!(v, want);
    }

    #[test]
    fn empty_and_singleton() {
        let mut v: Vec<u64> = vec![];
        radix_sort_u64(&mut v);
        let mut v = vec![42u64];
        radix_sort_u64(&mut v);
        assert_eq!(v, vec![42]);
    }

    #[test]
    fn already_sorted_and_reversed() {
        let mut v: Vec<u64> = (0..50_000).collect();
        radix_sort_u64(&mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        let mut v: Vec<u64> = (0..50_000).rev().collect();
        radix_sort_u64(&mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }
}
