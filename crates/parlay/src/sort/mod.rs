//! Parallel sorting algorithms used across the suite.
//!
//! * [`radix`] — stable LSD radix sort (the `isort` benchmark's engine and
//!   the workhorse behind the suffix-array construction),
//! * [`sample`] — sample sort (the `sort` benchmark, PBBS's comparison
//!   sort of choice),
//! * [`merge`] — divide-and-conquer merge sort (the paper's Listing 9).

pub mod merge;
pub mod radix;
pub mod sample;

pub use merge::merge_sort;
pub use radix::{radix_sort_by_key, radix_sort_u32, radix_sort_u64};
pub use sample::sample_sort;
