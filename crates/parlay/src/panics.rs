//! Panic-payload helpers shared across the workspace.
//!
//! `std::panic::catch_unwind` yields a `Box<dyn Any + Send>` whose concrete
//! type depends on how the panic was raised: `panic!("literal")` produces a
//! `&'static str`, while `panic!("formatted {x}")` produces a `String`.
//! Test assertions (and error types wrapping a captured payload) that only
//! downcast to one of the two silently miss the other — a brittleness this
//! module removes once for every crate in the workspace.

use std::any::Any;

/// Extracts the human-readable message from a panic payload, handling both
/// `&'static str` and `String` payloads.
///
/// Returns a placeholder for payloads of any other type (e.g. a value
/// thrown via `std::panic::panic_any`), so callers can embed the result in
/// diagnostics unconditionally.
///
/// ```
/// use rpb_parlay::panics::panic_message;
///
/// let err = std::panic::catch_unwind(|| panic!("plain literal")).unwrap_err();
/// assert_eq!(panic_message(&*err), "plain literal");
///
/// let x = 7;
/// let err = std::panic::catch_unwind(|| panic!("formatted {x}")).unwrap_err();
/// assert_eq!(panic_message(&*err), "formatted 7");
/// ```
pub fn panic_message(payload: &dyn Any) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "<non-string panic payload>"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::catch_unwind;

    #[test]
    fn static_str_payload() {
        let err = catch_unwind(|| panic!("static message")).unwrap_err();
        assert_eq!(panic_message(&*err), "static message");
    }

    #[test]
    fn string_payload() {
        let n = 42;
        let err = catch_unwind(|| panic!("value was {n}")).unwrap_err();
        assert_eq!(panic_message(&*err), "value was 42");
    }

    #[test]
    fn non_string_payload() {
        let err = catch_unwind(|| std::panic::panic_any(17u32)).unwrap_err();
        assert_eq!(panic_message(&*err), "<non-string panic payload>");
    }
}
