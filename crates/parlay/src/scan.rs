//! Parallel prefix sums (scan) — the canonical *regular* parallel pattern.
//!
//! The implementation is the classic two-pass blocked scan used by PBBS:
//! (1) each block reduces its chunk in parallel (`Block` pattern, expressed
//! with `par_chunks`), (2) block sums are scanned sequentially (there are
//! only `O(n / block)` of them), (3) each block re-scans its chunk seeded
//! with its block offset (`Block` pattern again, via `par_chunks_mut`).
//! All write sets are statically disjoint chunks, so the whole scan is
//! *fearless* in the paper's spectrum: safe Rust, checked at compile time.

use rayon::prelude::*;

use crate::SEQ_THRESHOLD;

/// Exclusive scan: returns `(prefix, total)` where
/// `prefix[i] = op(id, data[0..i])` and `total` is the reduction of the
/// whole slice. Equivalent to ParlayLib `parlay::scan`.
///
/// # Examples
/// ```
/// let (pre, tot) = rpb_parlay::scan_exclusive(&[1u64, 2, 3, 4], 0, |a, b| a + b);
/// assert_eq!(pre, vec![0, 1, 3, 6]);
/// assert_eq!(tot, 10);
/// ```
pub fn scan_exclusive<T, F>(data: &[T], id: T, op: F) -> (Vec<T>, T)
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Send + Sync,
{
    let mut out = data.to_vec();
    let total = scan_inplace_exclusive(&mut out, id, op);
    (out, total)
}

/// Inclusive scan: `out[i] = op(id, data[0..=i])`.
pub fn scan_inclusive<T, F>(data: &[T], id: T, op: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Send + Sync,
{
    let n = data.len();
    let mut out = data.to_vec();
    if n == 0 {
        return out;
    }
    if n <= SEQ_THRESHOLD {
        let mut acc = id;
        for x in out.iter_mut() {
            acc = op(acc, *x);
            *x = acc;
        }
        return out;
    }
    let block = SEQ_THRESHOLD;
    // Pass 1: per-block inclusive scan (disjoint chunks).
    out.par_chunks_mut(block).for_each(|chunk| {
        let mut acc = id;
        for x in chunk.iter_mut() {
            acc = op(acc, *x);
            *x = acc;
        }
    });
    // Pass 2: exclusive scan of block totals.
    let mut offsets: Vec<T> = out
        .chunks(block)
        .map(|c| *c.last().expect("non-empty chunk"))
        .collect();
    let mut acc = id;
    for o in offsets.iter_mut() {
        let next = op(acc, *o);
        *o = acc;
        acc = next;
    }
    // Pass 3: add each block's offset.
    out.par_chunks_mut(block)
        .zip(offsets.par_iter())
        .for_each(|(chunk, &off)| {
            for x in chunk.iter_mut() {
                *x = op(off, *x);
            }
        });
    out
}

/// In-place exclusive scan; returns the total reduction.
pub fn scan_inplace_exclusive<T, F>(data: &mut [T], id: T, op: F) -> T
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Send + Sync,
{
    let n = data.len();
    if n == 0 {
        return id;
    }
    if n <= SEQ_THRESHOLD {
        let mut acc = id;
        for x in data.iter_mut() {
            let next = op(acc, *x);
            *x = acc;
            acc = next;
        }
        return acc;
    }
    let block = SEQ_THRESHOLD;
    // Pass 1: block totals.
    let mut offsets: Vec<T> = data
        .par_chunks(block)
        .map(|chunk| {
            let mut acc = id;
            for x in chunk {
                acc = op(acc, *x);
            }
            acc
        })
        .collect();
    // Pass 2: sequential exclusive scan of the totals.
    let mut acc = id;
    for o in offsets.iter_mut() {
        let next = op(acc, *o);
        *o = acc;
        acc = next;
    }
    let total = acc;
    // Pass 3: per-block exclusive scan seeded with the block offset.
    data.par_chunks_mut(block)
        .zip(offsets.par_iter())
        .for_each(|(chunk, &off)| {
            let mut acc = off;
            for x in chunk.iter_mut() {
                let next = op(acc, *x);
                *x = acc;
                acc = next;
            }
        });
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_exclusive(data: &[u64]) -> (Vec<u64>, u64) {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(data.len());
        for &x in data {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    #[test]
    fn exclusive_small() {
        let v = [5u64, 1, 4];
        let (pre, tot) = scan_exclusive(&v, 0, |a, b| a + b);
        assert_eq!(pre, vec![0, 5, 6]);
        assert_eq!(tot, 10);
    }

    #[test]
    fn exclusive_empty() {
        let v: [u64; 0] = [];
        let (pre, tot) = scan_exclusive(&v, 0, |a, b| a + b);
        assert!(pre.is_empty());
        assert_eq!(tot, 0);
    }

    #[test]
    fn exclusive_crosses_block_boundary() {
        let v: Vec<u64> = (0..3 * SEQ_THRESHOLD as u64 + 17).map(|i| i % 7).collect();
        let (pre, tot) = scan_exclusive(&v, 0, |a, b| a + b);
        let (spre, stot) = seq_exclusive(&v);
        assert_eq!(pre, spre);
        assert_eq!(tot, stot);
    }

    #[test]
    fn inclusive_matches_sequential() {
        let v: Vec<u64> = (0..2 * SEQ_THRESHOLD as u64 + 5).map(|i| i % 11).collect();
        let got = scan_inclusive(&v, 0, |a, b| a + b);
        let mut acc = 0;
        let want: Vec<u64> = v
            .iter()
            .map(|&x| {
                acc += x;
                acc
            })
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn inclusive_exactly_one_block() {
        let v: Vec<u64> = vec![1; SEQ_THRESHOLD];
        let got = scan_inclusive(&v, 0, |a, b| a + b);
        assert_eq!(got.last(), Some(&(SEQ_THRESHOLD as u64)));
    }

    #[test]
    fn scan_with_max_monoid() {
        let v = vec![3u64, 1, 7, 2, 9, 4];
        let got = scan_inclusive(&v, 0, |a, b| a.max(b));
        assert_eq!(got, vec![3, 3, 7, 7, 9, 9]);
    }

    #[test]
    fn inplace_returns_total() {
        let mut v: Vec<u64> = (1..=100).collect();
        let tot = scan_inplace_exclusive(&mut v, 0, |a, b| a + b);
        assert_eq!(tot, 5050);
        assert_eq!(v[0], 0);
        assert_eq!(v[99], 5050 - 100);
    }
}
