//! Property-based tests for the parlay primitives.

use proptest::prelude::*;
use rpb_parlay::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exclusive scan + total equals the running prefix sum.
    #[test]
    fn scan_exclusive_is_prefix_sum(v in proptest::collection::vec(0u64..1_000_000, 0..6000)) {
        let (pre, tot) = scan_exclusive(&v, 0, |a, b| a + b);
        let mut acc = 0u64;
        for (p, &x) in pre.iter().zip(&v) {
            prop_assert_eq!(*p, acc);
            acc += x;
        }
        prop_assert_eq!(tot, acc);
    }

    /// Inclusive scan of max is the running maximum.
    #[test]
    fn scan_inclusive_running_max(v in proptest::collection::vec(any::<u32>(), 1..6000)) {
        let v64: Vec<u64> = v.iter().map(|&x| x as u64).collect();
        let got = scan_inclusive(&v64, 0, |a, b| a.max(b));
        let mut m = 0u64;
        for (g, &x) in got.iter().zip(&v64) {
            m = m.max(x);
            prop_assert_eq!(*g, m);
        }
    }

    /// Scan distributes over concatenation: scanning a ++ b equals
    /// scanning a, then scanning b seeded with a's total.
    #[test]
    fn scan_is_compositional(
        a in proptest::collection::vec(0u64..1000, 0..3000),
        b in proptest::collection::vec(0u64..1000, 0..3000),
    ) {
        let mut ab = a.clone();
        ab.extend_from_slice(&b);
        let (pre_ab, tot_ab) = scan_exclusive(&ab, 0, |x, y| x + y);
        let (pre_a, tot_a) = scan_exclusive(&a, 0, |x, y| x + y);
        prop_assert_eq!(&pre_ab[..a.len()], &pre_a[..]);
        let (pre_b, tot_b) = scan_exclusive(&b, 0, |x, y| x + y);
        for i in 0..b.len() {
            prop_assert_eq!(pre_ab[a.len() + i], tot_a + pre_b[i]);
        }
        prop_assert_eq!(tot_ab, tot_a + tot_b);
    }

    /// reduce agrees with the sequential fold for min.
    #[test]
    fn reduce_min(v in proptest::collection::vec(any::<u64>(), 0..6000)) {
        let got = reduce(&v, u64::MAX, |a, b| a.min(b));
        prop_assert_eq!(got, v.iter().copied().min().unwrap_or(u64::MAX));
    }

    /// pack + its complement partition the input.
    #[test]
    fn pack_partitions(v in proptest::collection::vec(any::<u16>(), 0..4000)) {
        let flags: Vec<bool> = v.iter().map(|&x| x % 3 == 0).collect();
        let yes = pack(&v, &flags);
        let inv: Vec<bool> = flags.iter().map(|&f| !f).collect();
        let no = pack(&v, &inv);
        prop_assert_eq!(yes.len() + no.len(), v.len());
        prop_assert!(yes.iter().all(|&x| x % 3 == 0));
        prop_assert!(no.iter().all(|&x| x % 3 != 0));
    }

    /// Merge sort is stable and sorted for any pair payload.
    #[test]
    fn merge_sort_stable(v in proptest::collection::vec(0u8..8, 0..5000)) {
        let mut pairs: Vec<(u8, usize)> = v.iter().copied().zip(0..).collect();
        merge_sort(&mut pairs, |a, b| a.0.cmp(&b.0));
        for w in pairs.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
    }

    /// Radix sort by partial key bits sorts by exactly those bits, stably.
    #[test]
    fn radix_partial_bits_stable(v in proptest::collection::vec(any::<u64>(), 0..5000)) {
        let mut pairs: Vec<(u64, usize)> = v.iter().copied().zip(0..).collect();
        radix_sort_by_key(&mut pairs, 8, |p| p.0 & 0xFF);
        for w in pairs.windows(2) {
            let (ka, kb) = (w[0].0 & 0xFF, w[1].0 & 0xFF);
            prop_assert!(ka <= kb);
            if ka == kb {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
    }

    /// flatten(chunked(v)) == v for any chunking.
    #[test]
    fn flatten_inverts_chunking(
        v in proptest::collection::vec(any::<u32>(), 0..4000),
        chunk in 1usize..97,
    ) {
        let seqs: Vec<Vec<u32>> = v.chunks(chunk).map(|c| c.to_vec()).collect();
        prop_assert_eq!(flatten(&seqs), v);
    }

    /// list ranking recovers any randomly-permuted chain.
    #[test]
    fn list_order_recovers_chain(seed in any::<u64>(), n in 1usize..3000) {
        let perm = seqdata::random_permutation(n, seed);
        let mut next = vec![list_rank::NIL; n];
        for w in perm.windows(2) {
            next[w[0]] = w[1];
        }
        prop_assert_eq!(list_rank::list_order(&next, perm[0]), perm);
    }

    /// collect_reduce_sparse totals match a direct sum.
    #[test]
    fn collect_reduce_conserves_mass(
        pairs in proptest::collection::vec((0u64..100, 0u64..1000), 0..3000),
    ) {
        let grouped = collect_reduce_sparse(&pairs, 0u64, |a, b| a + b);
        let total: u64 = grouped.iter().map(|&(_, v)| v).sum();
        let want: u64 = pairs.iter().map(|&(_, v)| v).sum();
        prop_assert_eq!(total, want);
    }
}
