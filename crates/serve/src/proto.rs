//! The `rpb-jobs-v1` wire format: length-prefixed JSON frames.
//!
//! Framing: each message is a 4-byte big-endian payload length followed
//! by that many bytes of UTF-8 JSON, capped at [`MAX_FRAME_BYTES`]. The
//! dependency-free [`rpb_obs::Json`] parser/writer does the document
//! work, keeping the workspace's offline dependency policy intact.
//!
//! Error taxonomy (what satellite connections rely on):
//!
//! * **Recoverable** — a frame that arrived intact but does not parse as
//!   a valid `rpb-jobs-v1` request (bad UTF-8, bad JSON, wrong schema
//!   tag, missing fields, unknown kind/mode). The server answers with a
//!   typed `status: "error"` response and the connection *survives*.
//! * **Fatal** — the byte stream itself is broken (truncated frame, or a
//!   length prefix beyond the cap, after which resynchronization is
//!   guesswork). The server answers if it can, then closes.
//!
//! Requests: `{"schema":"rpb-jobs-v1","id":N,"kind":K[,"mode":M]}` where
//! `K` is a [`JobKind`] label or the control kinds `"stats"`/
//! `"shutdown"`. Responses echo `id` with `status` one of
//! `"ok"`/`"shed"`/`"error"`.

use std::io::{self, Read, Write};

use rpb_fearless::ExecMode;
use rpb_obs::Json;

use crate::jobs::JobKind;

/// Schema tag carried by every request and response.
pub const SCHEMA: &str = "rpb-jobs-v1";

/// Frame payload cap. A request is a few hundred bytes and a response a
/// few KiB; anything near the cap is a broken or hostile stream.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds cap {MAX_FRAME_BYTES}",
                bytes.len()
            ),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean EOF *at a frame boundary*
/// (the peer closed between messages); EOF mid-frame and oversized
/// length prefixes are errors (fatal — see the module docs).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // Hand-rolled first-byte read so EOF-before-anything is clean.
    match r.read(&mut len_buf[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
            return read_frame(r);
        }
        Err(e) => return Err(e),
    }
    r.read_exact(&mut len_buf[1..])?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME_BYTES}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// What a request frame asks for.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestKind {
    /// Run one benchmark job.
    Job(JobKind, ExecMode),
    /// Answer with server statistics (inline; never queued).
    Stats,
    /// Acknowledge, then drain and stop the server.
    Shutdown,
}

/// A parsed `rpb-jobs-v1` request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen id, echoed in the response.
    pub id: u64,
    /// What to do.
    pub kind: RequestKind,
}

/// A recoverable request-parse failure: the typed error message, plus
/// the request id when the frame was intact enough to carry one (so the
/// error response can still be correlated).
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Echoable id, if one parsed.
    pub id: Option<u64>,
    /// Human-readable rejection reason.
    pub message: String,
}

impl Request {
    /// Renders the request as a frame payload (client side).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema".to_string(), Json::Str(SCHEMA.into())),
            ("id".to_string(), Json::from_u64(self.id)),
        ];
        match &self.kind {
            RequestKind::Job(kind, mode) => {
                fields.push(("kind".to_string(), Json::Str(kind.label().into())));
                fields.push(("mode".to_string(), Json::Str(mode.label().into())));
            }
            RequestKind::Stats => fields.push(("kind".to_string(), Json::Str("stats".into()))),
            RequestKind::Shutdown => {
                fields.push(("kind".to_string(), Json::Str("shutdown".into())))
            }
        }
        Json::Obj(fields)
    }

    /// Parses a frame payload into a request (server side).
    pub fn parse(payload: &[u8]) -> Result<Request, ParseError> {
        let fail = |id: Option<u64>, message: String| ParseError { id, message };
        let text = std::str::from_utf8(payload)
            .map_err(|_| fail(None, "frame payload is not UTF-8".into()))?;
        let doc = Json::parse(text).map_err(|e| fail(None, format!("bad JSON: {e}")))?;
        let id = doc.get("id").and_then(Json::as_u64);
        match doc.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            Some(other) => {
                return Err(fail(
                    id,
                    format!("unknown schema \"{other}\" (expected \"{SCHEMA}\")"),
                ))
            }
            None => {
                return Err(fail(
                    id,
                    format!("missing \"schema\" (expected \"{SCHEMA}\")"),
                ))
            }
        }
        let id = id.ok_or_else(|| fail(None, "missing or non-integer \"id\"".into()))?;
        let kind_label = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| fail(Some(id), "missing \"kind\"".into()))?;
        let kind = match kind_label {
            "stats" => RequestKind::Stats,
            "shutdown" => RequestKind::Shutdown,
            label => {
                let job = JobKind::parse(label)
                    .ok_or_else(|| fail(Some(id), format!("unknown kind \"{label}\"")))?;
                let mode = match doc.get("mode").and_then(Json::as_str) {
                    None => job.default_mode(),
                    Some(m) => m
                        .parse::<ExecMode>()
                        .map_err(|e| fail(Some(id), format!("bad mode: {e}")))?,
                };
                RequestKind::Job(job, mode)
            }
        };
        Ok(Request { id, kind })
    }
}

/// `status: "ok"` response carrying a job result (or stats object).
pub fn ok_response(id: u64, result: Json) -> Json {
    Json::Obj(vec![
        ("schema".to_string(), Json::Str(SCHEMA.into())),
        ("id".to_string(), Json::from_u64(id)),
        ("status".to_string(), Json::Str("ok".into())),
        ("result".to_string(), result),
    ])
}

/// `status: "shed"` response: admission control rejected the job. The
/// depth/cap pair tells the client *why* without it having to guess.
pub fn shed_response(id: u64, depth: usize, cap: usize) -> Json {
    Json::Obj(vec![
        ("schema".to_string(), Json::Str(SCHEMA.into())),
        ("id".to_string(), Json::from_u64(id)),
        ("status".to_string(), Json::Str("shed".into())),
        (
            "error".to_string(),
            Json::Obj(vec![
                ("reason".to_string(), Json::Str("queue_full".into())),
                ("depth".to_string(), Json::from_u64(depth as u64)),
                ("cap".to_string(), Json::from_u64(cap as u64)),
            ]),
        ),
    ])
}

/// `status: "error"` response (job failure or malformed request). `id`
/// is `null` when the offending frame carried no parseable id.
pub fn error_response(id: Option<u64>, message: &str) -> Json {
    Json::Obj(vec![
        ("schema".to_string(), Json::Str(SCHEMA.into())),
        ("id".to_string(), id.map_or(Json::Null, Json::from_u64)),
        ("status".to_string(), Json::Str("error".into())),
        ("error".to_string(), Json::Str(message.into())),
    ])
}

/// Client-side response splitter: `(id, status, body)` where body is the
/// `result` for `"ok"` and the `error` value otherwise.
pub fn split_response(doc: &Json) -> Result<(Option<u64>, String, Json), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(SCHEMA) => {}
        other => return Err(format!("response schema {other:?} is not \"{SCHEMA}\"")),
    }
    let status = doc
        .get("status")
        .and_then(Json::as_str)
        .ok_or("response missing \"status\"")?
        .to_string();
    let id = doc.get("id").and_then(Json::as_u64);
    let body = match status.as_str() {
        "ok" => doc.get("result").cloned().unwrap_or(Json::Null),
        _ => doc.get("error").cloned().unwrap_or(Json::Null),
    };
    Ok((id, status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"a\":1}").unwrap();
        write_frame(&mut buf, "second").unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"{\"a\":1}");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"second");
        // Clean EOF at the boundary.
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn truncated_and_oversized_frames_are_fatal() {
        // Length prefix promises 100 bytes; only 3 arrive.
        let mut buf = 100u32.to_be_bytes().to_vec();
        buf.extend_from_slice(b"abc");
        assert!(read_frame(&mut Cursor::new(buf)).is_err());

        let huge = ((MAX_FRAME_BYTES + 1) as u32).to_be_bytes().to_vec();
        let err = read_frame(&mut Cursor::new(huge)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn requests_round_trip_through_the_wire_format() {
        for kind in [
            RequestKind::Job(JobKind::Isort, ExecMode::Checked),
            RequestKind::Job(JobKind::Bfs, ExecMode::Sync),
            RequestKind::Stats,
            RequestKind::Shutdown,
        ] {
            let req = Request { id: 7, kind };
            let parsed = Request::parse(req.to_json().to_string().as_bytes()).unwrap();
            assert_eq!(parsed, req);
        }
    }

    #[test]
    fn default_mode_is_checked() {
        let req = Request::parse(
            format!("{{\"schema\":\"{SCHEMA}\",\"id\":1,\"kind\":\"sort\"}}").as_bytes(),
        )
        .unwrap();
        assert_eq!(req.kind, RequestKind::Job(JobKind::Sort, ExecMode::Checked));
    }

    #[test]
    fn malformed_requests_are_typed_and_keep_the_id_when_possible() {
        // Bad JSON: no id recoverable.
        let err = Request::parse(b"{nope").unwrap_err();
        assert_eq!(err.id, None);
        assert!(err.message.contains("bad JSON"));

        // Valid JSON, wrong schema: id recovered for correlation.
        let err = Request::parse(b"{\"schema\":\"rpb-jobs-v9\",\"id\":42}").unwrap_err();
        assert_eq!(err.id, Some(42));
        assert!(err.message.contains("rpb-jobs-v9"));

        // Unknown kind and bad mode keep the id too.
        let err = Request::parse(
            format!("{{\"schema\":\"{SCHEMA}\",\"id\":5,\"kind\":\"quicksort\"}}").as_bytes(),
        )
        .unwrap_err();
        assert_eq!((err.id, err.message.contains("quicksort")), (Some(5), true));
        let err = Request::parse(
            format!("{{\"schema\":\"{SCHEMA}\",\"id\":6,\"kind\":\"sort\",\"mode\":\"yolo\"}}")
                .as_bytes(),
        )
        .unwrap_err();
        assert_eq!(err.id, Some(6));
    }

    #[test]
    fn responses_split_by_status() {
        let ok = ok_response(3, Json::from_u64(9));
        let (id, status, body) = split_response(&ok).unwrap();
        assert_eq!(
            (id, status.as_str(), body.as_u64()),
            (Some(3), "ok", Some(9))
        );

        let shed = shed_response(4, 8, 8);
        let (id, status, body) = split_response(&shed).unwrap();
        assert_eq!((id, status.as_str()), (Some(4), "shed"));
        assert_eq!(
            body.get("reason").and_then(Json::as_str),
            Some("queue_full")
        );
        assert_eq!(body.get("cap").and_then(Json::as_u64), Some(8));

        let err = error_response(None, "boom");
        let (id, status, body) = split_response(&err).unwrap();
        assert_eq!((id, status.as_str()), (None, "error"));
        assert_eq!(body.as_str(), Some("boom"));
    }
}
