//! # rpb-serve
//!
//! The suite as a *resident service*: where `rpb-bench` builds its inputs,
//! times one batch, and exits, this crate keeps the datasets and executor
//! pools alive and answers a stream of benchmark jobs over a socket — the
//! steady-state regime the paper's amortized-validation claims are about.
//! A long-lived process is exactly where the epoch-stamped validation
//! pools pay off: after the first request of a given shape, every later
//! `Checked`-mode job validates against pooled mark tables and allocates
//! nothing (`sngind_pool_misses` stays flat — the `serve-*` perf-gate
//! cells and `rpb serve --self-test` both hard-check that delta).
//!
//! Layers, bottom up:
//!
//! * [`datasets`] — inputs preloaded once at a [`rpb_suite::Scale`],
//!   shared read-only by every job.
//! * [`jobs`] — the job vocabulary (`sort`/`isort`/`dedup`/`hist`/
//!   `bfs`/`sssp`), each returning a deterministic result digest and
//!   recording a per-endpoint SLO latency histogram.
//! * [`farm`] — the emitter → N workers → collector dispatch loop (the
//!   PPL "farm" shape): a bounded queue with admission control (typed
//!   shed at the depth cap, never an unbounded backlog), persistent
//!   workers each holding a resident executor pool from the
//!   [`rpb_parlay::exec`] backend registry, and graceful drain.
//! * [`proto`] — the `rpb-jobs-v1` wire format: 4-byte length-prefixed
//!   JSON frames over TCP.
//! * [`server`] / [`load`] — the TCP front end and the bundled load
//!   generator (`rpb serve` / `rpb load`).
//! * [`trace`] — pinned deterministic admission traces; the perf gate's
//!   `serve-steady` / `serve-burst` cells hard-gate their counters.
//! * [`cli`] — the `rpb serve` / `rpb load` subcommand grammars.

pub mod cli;
pub mod datasets;
pub mod farm;
pub mod jobs;
pub mod load;
pub mod proto;
pub mod server;
pub mod trace;

pub use datasets::Datasets;
pub use farm::{Admission, Farm, FarmConfig, FarmStats};
pub use jobs::JobKind;

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard};

    /// Serializes tests that run `Checked`-mode jobs: the validation pool
    /// (`rpb_fearless::pool`) is process-global, so a concurrent holder —
    /// or a test that clears it — turns another test's zero-miss window
    /// into a race. Poisoning is ignored; a panicked holder already
    /// failed its own test.
    pub fn pool_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
    }
}
