//! Pinned deterministic admission traces — the serve analogue of the
//! perf gate's 1-worker counter pass.
//!
//! Wall-clock behavior of a TCP server is not gateable; its *admission
//! arithmetic* is. These traces run the farm in inline mode (no worker
//! threads, jobs pumped on the calling thread inside one pinned-width
//! executor pool), so every counter the gate hard-checks — jobs
//! admitted/shed/completed, the queue-depth high-water mark, and the
//! validation-pool hit/miss split — is a pure function of the code and
//! the pinned trace shape:
//!
//! * [`steady`] — batches of at-most-cap jobs with a full drain between
//!   batches: everything admits, nothing sheds, and (after [`warmup`])
//!   every `Checked` validation is a pool *hit* — `sngind_pool_misses`
//!   stays **zero**, the steady-state zero-allocation proof.
//! * [`burst`] — `burst` submissions with no drain in between: exactly
//!   `queue_cap` admit, exactly `burst - queue_cap` shed, and the
//!   high-water mark equals the cap. The admission-control contract,
//!   gated as exact counter equality.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rpb_fearless::ExecMode;
use rpb_parlay::exec::{executor, run_in, BackendKind};

use crate::datasets::Datasets;
use crate::farm::{Farm, FarmConfig, Job, Outcome};
use crate::jobs::{self, JobKind, ALL_KINDS};

/// Shape of one pinned trace.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Scheduling backend for the pool and the MultiQueue jobs.
    pub backend: BackendKind,
    /// Executor pool width (the gate pins 1 for determinism).
    pub kernel_threads: usize,
    /// Farm queue depth cap.
    pub queue_cap: usize,
    /// Steady phase: number of submit-then-drain batches.
    pub batches: usize,
    /// Steady phase: jobs per batch (must be ≤ `queue_cap` for the
    /// nothing-sheds property).
    pub batch: usize,
    /// Burst phase: jobs submitted with no drain (> `queue_cap` so the
    /// shed path is actually exercised).
    pub burst: usize,
}

impl TraceConfig {
    /// The pinned shape the `serve-*` gate cells record: 1-thread pool,
    /// cap 8, three 6-job steady batches, a 24-job burst.
    pub fn gate(backend: BackendKind) -> TraceConfig {
        TraceConfig {
            backend,
            kernel_threads: 1,
            queue_cap: 8,
            batches: 3,
            batch: 6,
            burst: 24,
        }
    }
}

/// Deterministic outcome summary of one trace run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceReport {
    /// Jobs admitted.
    pub admitted: u64,
    /// Jobs shed at admission.
    pub shed: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs failed.
    pub failed: u64,
    /// Queue-depth high-water mark.
    pub depth_hwm: u64,
    /// XOR of every successful job's result digest — one word that
    /// changes if any job's output does.
    pub result_digest: u64,
}

/// The pinned job rotation: index `i` maps to a fixed `(kind, mode)`.
/// `isort` leads in `Checked` mode — the endpoint whose validation
/// traffic the pool counters gate.
pub fn trace_job(i: usize) -> (JobKind, ExecMode) {
    let kind = ALL_KINDS[i % ALL_KINDS.len()];
    let mode = match kind {
        JobKind::Bfs | JobKind::Sssp => ExecMode::Sync,
        _ => ExecMode::Checked,
    };
    (kind, mode)
}

fn submit_trace_job(
    farm: &Farm,
    cfg: &TraceConfig,
    data: &Arc<Datasets>,
    i: usize,
    digest_acc: &Arc<AtomicU64>,
) {
    let (kind, mode) = trace_job(i);
    let backend = cfg.backend;
    let kernel_threads = cfg.kernel_threads;
    let acc = Arc::clone(digest_acc);
    let data = Arc::clone(data);
    farm.submit(Job::new(
        i as u64,
        kind,
        Box::new(move || jobs::run_job(kind, mode, backend, kernel_threads, &data)),
        Box::new(move |_, outcome| {
            if let Outcome::Ok(result) = outcome {
                if let Some(d) = result.get("digest").and_then(rpb_obs::Json::as_u64) {
                    acc.fetch_xor(d, Ordering::Relaxed);
                }
            }
        }),
    ));
}

fn with_pool<T: Send>(cfg: &TraceConfig, f: impl FnOnce() -> T + Send) -> T {
    run_in(executor(cfg.backend), cfg.kernel_threads, f)
}

fn inline_farm(cfg: &TraceConfig) -> Farm {
    Farm::new(FarmConfig {
        backend: cfg.backend,
        workers: 0,
        kernel_threads: cfg.kernel_threads,
        queue_cap: cfg.queue_cap,
    })
}

fn report(farm: &Farm, digest: u64) -> TraceReport {
    let s = farm.stats();
    TraceReport {
        admitted: s.admitted,
        shed: s.shed,
        completed: s.completed,
        failed: s.failed,
        depth_hwm: s.depth_hwm,
        result_digest: digest,
    }
}

/// Warms every steady-state resource *outside* a gate capture: runs one
/// job of each kind inline so the validation pool holds its tables and
/// every lazy initialization has fired. After this, a [`steady`] run's
/// `Checked` validations are pool hits only.
pub fn warmup(cfg: &TraceConfig, data: &Arc<Datasets>) {
    let digest = Arc::new(AtomicU64::new(0));
    with_pool(cfg, || {
        let farm = inline_farm(cfg);
        for i in 0..ALL_KINDS.len() {
            submit_trace_job(&farm, cfg, data, i, &digest);
            farm.drain_inline();
        }
        farm.drain();
    });
}

/// The steady-state trace: `batches` rounds of `batch ≤ cap` submissions
/// each followed by a full inline drain. Deterministic counters:
/// `admitted = completed = batches * batch`, `shed = 0`,
/// `depth_hwm = batch` — and with a prior [`warmup`], zero pool misses.
pub fn steady(cfg: &TraceConfig, data: &Arc<Datasets>) -> TraceReport {
    let digest = Arc::new(AtomicU64::new(0));
    with_pool(cfg, || {
        let farm = inline_farm(cfg);
        for b in 0..cfg.batches {
            for k in 0..cfg.batch {
                submit_trace_job(&farm, cfg, data, b * cfg.batch + k, &digest);
            }
            farm.drain_inline();
        }
        farm.drain();
        report(&farm, digest.load(Ordering::Relaxed))
    })
}

/// The over-admission trace: `burst > cap` submissions with no draining
/// producer-side, so admission control must shed the overflow — exactly
/// `burst - cap` jobs — and the high-water mark pins at the cap. The
/// admitted jobs then drain to completion (still inside the trace, so
/// `completed` is gateable too).
pub fn burst(cfg: &TraceConfig, data: &Arc<Datasets>) -> TraceReport {
    let digest = Arc::new(AtomicU64::new(0));
    with_pool(cfg, || {
        let farm = inline_farm(cfg);
        for i in 0..cfg.burst {
            submit_trace_job(&farm, cfg, data, i, &digest);
        }
        farm.drain_inline();
        farm.drain();
        report(&farm, digest.load(Ordering::Relaxed))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpb_suite::Scale;

    fn tiny_cfg() -> TraceConfig {
        TraceConfig::gate(BackendKind::Rayon)
    }

    fn tiny_data() -> Arc<Datasets> {
        Arc::new(Datasets::preload(Scale {
            text_len: 100,
            seq_len: 600,
            graph_n: 80,
            points_n: 16,
        }))
    }

    #[test]
    fn steady_admits_everything_and_is_deterministic() {
        let _pool = crate::testutil::pool_lock();
        let cfg = tiny_cfg();
        let data = tiny_data();
        warmup(&cfg, &data);
        let a = steady(&cfg, &data);
        let b = steady(&cfg, &data);
        assert_eq!(a, b, "steady trace must be run-to-run deterministic");
        assert_eq!(a.admitted, (cfg.batches * cfg.batch) as u64);
        assert_eq!(a.completed, a.admitted);
        assert_eq!((a.shed, a.failed), (0, 0));
        assert_eq!(a.depth_hwm, cfg.batch as u64);
        assert_ne!(a.result_digest, 0, "jobs must produce real results");
    }

    #[test]
    fn burst_sheds_exactly_the_overflow() {
        let _pool = crate::testutil::pool_lock();
        let cfg = tiny_cfg();
        let data = tiny_data();
        warmup(&cfg, &data);
        let r = burst(&cfg, &data);
        assert_eq!(r.admitted, cfg.queue_cap as u64);
        assert_eq!(r.shed, (cfg.burst - cfg.queue_cap) as u64);
        assert_eq!(r.completed, r.admitted);
        assert_eq!(r.depth_hwm, cfg.queue_cap as u64);
        assert_eq!(r, burst(&cfg, &data), "burst trace must be deterministic");
    }

    #[test]
    fn steady_runs_allocation_free_after_warmup() {
        use rpb_fearless::pool;
        let _pool = crate::testutil::pool_lock();
        let cfg = tiny_cfg();
        let data = tiny_data();
        // Deterministic pool bracket, as the gate sets it up.
        pool::set_enabled(true);
        pool::clear();
        pool::reset_stats();
        warmup(&cfg, &data);
        let before = pool::stats();
        let r = steady(&cfg, &data);
        let after = pool::stats();
        assert_eq!(r.failed, 0);
        assert_eq!(
            after.misses, before.misses,
            "steady-state checked jobs must be pool hits only"
        );
        assert!(
            after.hits > before.hits,
            "checked jobs must actually traffic the pool"
        );
    }
}
