//! Datasets preloaded once per server process and shared by every job.
//!
//! The resident service's whole point is that input construction and
//! first-touch validation costs are paid at boot, not per request: jobs
//! borrow these immutably (sorting jobs clone the sequence they mutate),
//! so steady-state requests never rebuild an input. Construction goes
//! through [`rpb_suite::inputs`] — the same pinned-seed builders the
//! bench harness uses — so a job's result digest is a pure function of
//! `(scale, kind, mode)`.

use rpb_graph::{Graph, GraphKind, WeightedGraph};
use rpb_suite::{inputs, Scale};

/// Every input the job vocabulary can touch, built once.
pub struct Datasets {
    /// The scale the inputs were built at (embedded in stats responses).
    pub scale: Scale,
    /// Exponential integer sequence: `sort`/`isort`/`dedup`/`hist` input.
    pub seq: Vec<u64>,
    /// Road-family graph: `bfs` input.
    pub road: Graph,
    /// Weighted road-family graph: `sssp` input.
    pub wroad: WeightedGraph,
    /// Radix key width covering every value in `seq` (what the bench
    /// harness derives for its `isort` cases).
    pub key_bits: u32,
}

impl Datasets {
    /// Builds every dataset at `scale`. This is the expensive, once-per-
    /// process step; everything after it is request traffic.
    pub fn preload(scale: Scale) -> Datasets {
        let seq = inputs::exponential(scale.seq_len);
        let key_bits = 64 - (seq.len() as u64).leading_zeros();
        Datasets {
            scale,
            seq,
            road: inputs::graph(GraphKind::Road, scale.graph_n),
            wroad: inputs::weighted_graph(GraphKind::Road, scale.graph_n),
            key_bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            text_len: 100,
            seq_len: 500,
            graph_n: 64,
            points_n: 16,
        }
    }

    #[test]
    fn preload_is_deterministic() {
        let a = Datasets::preload(tiny());
        let b = Datasets::preload(tiny());
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.key_bits, b.key_bits);
        assert_eq!(a.road.num_vertices(), b.road.num_vertices());
        assert_eq!(a.wroad.num_vertices(), b.wroad.num_vertices());
    }

    #[test]
    fn key_bits_cover_every_sequence_value() {
        let d = Datasets::preload(tiny());
        let max = d.seq.iter().copied().max().unwrap_or(0);
        assert!(d.key_bits >= 64 - max.leading_zeros());
    }
}
