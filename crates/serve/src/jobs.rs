//! The job vocabulary: which kernels a request can invoke, how each runs
//! against the preloaded [`Datasets`], and the per-endpoint SLO latency
//! histograms behind the serve report's p50/p99 columns.
//!
//! Every job returns a small JSON result whose digest is a pure function
//! of `(scale, kind, mode)` — deterministic inputs in, deterministic
//! checksum out — so a client (or the differential self-test) can assert
//! result stability across requests, workers, and backends without
//! shipping whole output vectors over the wire.

use std::time::Duration;

use rpb_fearless::ExecMode;
use rpb_obs::{metrics, Json};
use rpb_parlay::exec::BackendKind;
use rpb_suite::{bfs, dedup, hist, isort, sort, sssp};

use crate::datasets::Datasets;

/// One benchmark endpoint of the service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// Comparison (sample) sort over a clone of the sequence.
    Sort,
    /// Integer (radix) sort — in `Checked` mode every scatter pass
    /// validates through the pooled epoch tables, making this the
    /// endpoint that proves the steady-state zero-alloc claim.
    Isort,
    /// Remove duplicates.
    Dedup,
    /// 256-bucket histogram.
    Hist,
    /// MultiQueue BFS over the road graph.
    Bfs,
    /// MultiQueue SSSP over the weighted road graph.
    Sssp,
}

/// Every job kind, in the deterministic trace's rotation order.
pub const ALL_KINDS: [JobKind; 6] = [
    JobKind::Isort,
    JobKind::Sort,
    JobKind::Dedup,
    JobKind::Hist,
    JobKind::Bfs,
    JobKind::Sssp,
];

impl JobKind {
    /// Wire label (`"sort"`, `"isort"`, …).
    pub fn label(self) -> &'static str {
        match self {
            JobKind::Sort => "sort",
            JobKind::Isort => "isort",
            JobKind::Dedup => "dedup",
            JobKind::Hist => "hist",
            JobKind::Bfs => "bfs",
            JobKind::Sssp => "sssp",
        }
    }

    /// Parses a wire label.
    pub fn parse(s: &str) -> Option<JobKind> {
        ALL_KINDS.into_iter().find(|k| k.label() == s)
    }

    /// The mode a request gets when it names none: `Checked` — the
    /// service exists to exercise the validated steady state.
    pub fn default_mode(self) -> ExecMode {
        ExecMode::Checked
    }

    /// This endpoint's SLO latency histogram (admission → response).
    pub fn latency_histo(self) -> &'static rpb_obs::DurationHisto {
        match self {
            JobKind::Sort => &metrics::SERVE_SORT_NS,
            JobKind::Isort => &metrics::SERVE_ISORT_NS,
            JobKind::Dedup => &metrics::SERVE_DEDUP_NS,
            JobKind::Hist => &metrics::SERVE_HIST_NS,
            JobKind::Bfs => &metrics::SERVE_BFS_NS,
            JobKind::Sssp => &metrics::SERVE_SSSP_NS,
        }
    }

    /// Records one completed service time for this endpoint.
    pub fn record_latency(self, elapsed: Duration) {
        self.latency_histo().record(elapsed);
    }
}

/// FNV-1a over a u64 stream: the result digest jobs report instead of
/// their (potentially megabyte-sized) output vectors.
pub fn digest(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Runs one job against the preloaded datasets inside the caller's
/// ambient executor pool (`bfs`/`sssp` additionally take the scheduling
/// backend and worker width for their MultiQueue substrate). Returns the
/// job's JSON result object, or a typed job-level error message.
pub fn run_job(
    kind: JobKind,
    mode: ExecMode,
    backend: BackendKind,
    kernel_threads: usize,
    data: &Datasets,
) -> Result<Json, String> {
    let result = match kind {
        JobKind::Sort => {
            let mut v = data.seq.clone();
            sort::run_par(&mut v, mode);
            vec![
                ("n".to_string(), Json::from_u64(v.len() as u64)),
                ("digest".to_string(), Json::from_u64(digest(v))),
            ]
        }
        JobKind::Isort => {
            let mut v = data.seq.clone();
            isort::run_par(&mut v, data.key_bits, mode);
            vec![
                ("n".to_string(), Json::from_u64(v.len() as u64)),
                ("digest".to_string(), Json::from_u64(digest(v))),
            ]
        }
        JobKind::Dedup => {
            let out = dedup::run_par(&data.seq, mode);
            vec![
                ("n_in".to_string(), Json::from_u64(data.seq.len() as u64)),
                ("n_out".to_string(), Json::from_u64(out.len() as u64)),
                ("digest".to_string(), Json::from_u64(digest(out))),
            ]
        }
        JobKind::Hist => {
            let counts = hist::run_par(&data.seq, 256, data.seq.len().max(1) as u64, mode)
                .map_err(|e| format!("hist failed: {e}"))?;
            vec![
                ("buckets".to_string(), Json::from_u64(counts.len() as u64)),
                ("digest".to_string(), Json::from_u64(digest(counts))),
            ]
        }
        JobKind::Bfs => {
            let dist = bfs::run_par_on(backend, &data.road, 0, kernel_threads, mode);
            let reached = dist.iter().filter(|&&d| d != u64::MAX).count() as u64;
            vec![
                ("reached".to_string(), Json::from_u64(reached)),
                ("digest".to_string(), Json::from_u64(digest(dist))),
            ]
        }
        JobKind::Sssp => {
            let dist = sssp::run_par_on(backend, &data.wroad, 0, kernel_threads, mode);
            let reached = dist.iter().filter(|&&d| d != u64::MAX).count() as u64;
            vec![
                ("reached".to_string(), Json::from_u64(reached)),
                ("digest".to_string(), Json::from_u64(digest(dist))),
            ]
        }
    };
    let mut fields = vec![("kind".to_string(), Json::Str(kind.label().to_string()))];
    fields.extend(result);
    Ok(Json::Obj(fields))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpb_suite::Scale;

    fn tiny_data() -> Datasets {
        Datasets::preload(Scale {
            text_len: 100,
            seq_len: 600,
            graph_n: 80,
            points_n: 16,
        })
    }

    #[test]
    fn labels_round_trip() {
        for k in ALL_KINDS {
            assert_eq!(JobKind::parse(k.label()), Some(k));
        }
        assert_eq!(JobKind::parse("frobnicate"), None);
    }

    #[test]
    fn every_kind_runs_and_digests_deterministically() {
        let _pool = crate::testutil::pool_lock();
        let data = tiny_data();
        for kind in ALL_KINDS {
            let a = run_job(kind, ExecMode::Checked, BackendKind::Rayon, 1, &data)
                .unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
            let b = run_job(kind, ExecMode::Checked, BackendKind::Rayon, 1, &data)
                .unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
            assert_eq!(
                a.get("digest").and_then(Json::as_u64),
                b.get("digest").and_then(Json::as_u64),
                "{} digest unstable",
                kind.label()
            );
        }
    }

    #[test]
    fn modes_agree_on_digests() {
        // Unsafe and Checked are differentially equal — the suite-wide
        // invariant, re-checked here through the service's digest lens.
        let _pool = crate::testutil::pool_lock();
        let data = tiny_data();
        for kind in [JobKind::Sort, JobKind::Isort, JobKind::Dedup, JobKind::Hist] {
            let a = run_job(kind, ExecMode::Unsafe, BackendKind::Rayon, 1, &data).unwrap();
            let b = run_job(kind, ExecMode::Checked, BackendKind::Rayon, 1, &data).unwrap();
            assert_eq!(
                a.get("digest").and_then(Json::as_u64),
                b.get("digest").and_then(Json::as_u64),
                "{} modes diverge",
                kind.label()
            );
        }
    }
}
