//! The dispatch farm: emitter → N workers → collector (the PPL "farm"
//! shape) over one bounded queue with admission control.
//!
//! Design constraints, in order:
//!
//! * **Never an unbounded backlog.** [`Farm::submit`] is the single
//!   admission point: at the depth cap it returns [`Admission::Shed`]
//!   immediately — the producer is never blocked and the queue never
//!   grows past `queue_cap`. Shed is a *typed* outcome the server turns
//!   into an `rpb-jobs-v1` `status: "shed"` response.
//! * **Resident pools.** Each worker thread enters its executor pool
//!   ([`rpb_parlay::exec::run_in`]) once, at spawn, and serves every job
//!   from inside it — pool construction is a boot cost, not a per-request
//!   cost, which is what lets steady-state requests run allocation-free
//!   through the epoch-stamped validation pools.
//! * **A panicking job is a failed job, not a dead server.** Workers
//!   catch unwinds, account them through [`rpb_parlay::exec::BatchError`]
//!   (the executor stack's panic-payload carrier), and keep serving.
//! * **Graceful drain.** [`Farm::drain`] stops admission (late submits
//!   shed), lets workers finish every queued job, and joins them.
//!
//! Statistics are double-booked on purpose: the always-on [`FarmStats`]
//! atomics power stats responses and determinism tests in default builds,
//! while the `rpb-obs` counters (`serve_jobs_admitted`, `serve_jobs_shed`,
//! `serve_queue_depth_max`, …) integrate with `metrics::capture` so the
//! perf gate can hard-gate a pinned trace.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use rpb_obs::{metrics, Json};
use rpb_parlay::exec::{executor, run_in, BackendKind, BatchError};

use crate::jobs::JobKind;

/// Message prefix of the [`Outcome::Error`] a shed job's `done` callback
/// receives. The server checks it to suppress the generic error frame in
/// favor of the typed `status: "shed"` response it builds from the
/// [`Admission::Shed`] verdict (which carries depth and cap).
pub const SHED_PREFIX: &str = "shed:";

/// Farm sizing and scheduling configuration.
#[derive(Clone, Copy, Debug)]
pub struct FarmConfig {
    /// Scheduling backend whose executor the workers resident-install.
    pub backend: BackendKind,
    /// Worker threads. `0` = inline mode: no threads are spawned and
    /// queued jobs run on the caller's thread via [`Farm::drain_inline`]
    /// (what the deterministic gate traces use).
    pub workers: usize,
    /// Width of each worker's resident data-parallel pool.
    pub kernel_threads: usize,
    /// Queue depth cap: submissions beyond it shed.
    pub queue_cap: usize,
}

impl Default for FarmConfig {
    fn default() -> Self {
        FarmConfig {
            backend: BackendKind::Rayon,
            workers: 1,
            kernel_threads: 1,
            queue_cap: 8,
        }
    }
}

/// How one job finished.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// The job ran to completion with this result object.
    Ok(Json),
    /// The job failed (typed job error or caught worker panic); the farm
    /// keeps serving.
    Error(String),
}

/// One unit of admitted work.
pub struct Job {
    /// Request id, echoed in the response frame.
    pub id: u64,
    /// Endpoint, for the per-endpoint latency histogram.
    pub kind: JobKind,
    /// The work itself, run inside a worker's resident pool.
    pub work: Box<dyn FnOnce() -> Result<Json, String> + Send>,
    /// Completion callback (the collector hookup: the server passes a
    /// closure that forwards the response frame to the connection's
    /// writer thread).
    pub done: Box<dyn FnOnce(u64, Outcome) + Send>,
    admitted_at: Instant,
}

impl Job {
    /// Builds a job; the admission timestamp (the start of the SLO
    /// latency window) is taken here.
    pub fn new(
        id: u64,
        kind: JobKind,
        work: Box<dyn FnOnce() -> Result<Json, String> + Send>,
        done: Box<dyn FnOnce(u64, Outcome) + Send>,
    ) -> Job {
        Job {
            id,
            kind,
            work,
            done,
            admitted_at: Instant::now(),
        }
    }
}

/// Admission verdict of one [`Farm::submit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Queued; `depth` is the queue depth after the push.
    Admitted {
        /// Queue depth including this job.
        depth: usize,
    },
    /// Rejected: the queue was at its cap (or the farm is draining).
    /// The job was handed back untouched inside the verdict's caller —
    /// [`Farm::submit`] runs its `done` callback with a shed marker
    /// before returning, so the producer only inspects the verdict.
    Shed {
        /// Queue depth at rejection time.
        depth: usize,
        /// The configured cap.
        cap: usize,
    },
}

/// Always-on farm accounting (works without the `obs` feature).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FarmStats {
    /// Jobs accepted into the queue.
    pub admitted: u64,
    /// Jobs rejected at admission.
    pub shed: u64,
    /// Admitted jobs that completed.
    pub completed: u64,
    /// Admitted jobs that failed (typed error or caught panic).
    pub failed: u64,
    /// Deepest the queue ever got (never exceeds the cap).
    pub depth_hwm: u64,
}

#[derive(Default)]
struct StatCells {
    admitted: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    depth_hwm: AtomicU64,
}

struct State {
    queue: VecDeque<Job>,
    draining: bool,
}

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    cfg: FarmConfig,
    stats: StatCells,
}

impl Shared {
    fn execute(&self, job: Job) {
        let Job {
            id,
            kind,
            work,
            done,
            admitted_at,
        } = job;
        let outcome = match catch_unwind(AssertUnwindSafe(work)) {
            Ok(Ok(result)) => {
                self.stats.completed.fetch_add(1, Ordering::Relaxed);
                metrics::SERVE_JOBS_COMPLETED.add(1);
                Outcome::Ok(result)
            }
            Ok(Err(msg)) => {
                self.stats.failed.fetch_add(1, Ordering::Relaxed);
                metrics::SERVE_JOBS_FAILED.add(1);
                Outcome::Error(msg)
            }
            Err(payload) => {
                // Route the payload through BatchError so panic-message
                // extraction and accounting match the executor stack's.
                let err = BatchError::new(payload, 0, 0);
                self.stats.failed.fetch_add(1, Ordering::Relaxed);
                metrics::SERVE_JOBS_FAILED.add(1);
                Outcome::Error(format!("job panicked: {}", err.message()))
            }
        };
        kind.record_latency(admitted_at.elapsed());
        done(id, outcome);
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut st = self
                    .state
                    .lock()
                    .unwrap_or_else(|poison| poison.into_inner());
                loop {
                    if let Some(job) = st.queue.pop_front() {
                        break Some(job);
                    }
                    if st.draining {
                        break None;
                    }
                    st = self
                        .work_ready
                        .wait(st)
                        .unwrap_or_else(|poison| poison.into_inner());
                }
            };
            match job {
                Some(job) => self.execute(job),
                None => return,
            }
        }
    }
}

/// The dispatch farm. See the module docs for the contract.
pub struct Farm {
    shared: Arc<Shared>,
    // Behind a mutex so `drain(&self)` can join while the farm is shared
    // (the server submits from connection threads through an `Arc`).
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Farm {
    /// Builds the farm and spawns its resident workers (none in inline
    /// mode). Panics if `cfg.backend` names an unregistered executor.
    pub fn new(cfg: FarmConfig) -> Farm {
        // Resolve the backend eagerly so a misconfigured farm fails at
        // construction, not on the first submitted job.
        let _ = executor(cfg.backend);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(cfg.queue_cap),
                draining: false,
            }),
            work_ready: Condvar::new(),
            cfg,
            stats: StatCells::default(),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rpb-serve-worker-{i}"))
                    .spawn(move || {
                        // One pool entry per worker lifetime: every job this
                        // worker ever runs shares the resident pool.
                        run_in(
                            executor(shared.cfg.backend),
                            shared.cfg.kernel_threads,
                            || shared.worker_loop(),
                        );
                    })
                    .expect("spawn farm worker")
            })
            .collect();
        Farm {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// The farm's configuration.
    pub fn config(&self) -> FarmConfig {
        self.shared.cfg
    }

    /// Admission control: queue the job or shed it, never block. On
    /// shed, the job's `done` callback fires immediately with a typed
    /// error outcome (the server maps it to a `shed` response).
    pub fn submit(&self, job: Job) -> Admission {
        let verdict = {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            if st.draining || st.queue.len() >= self.shared.cfg.queue_cap {
                Err((job, st.queue.len()))
            } else {
                st.queue.push_back(job);
                let depth = st.queue.len();
                self.shared
                    .stats
                    .depth_hwm
                    .fetch_max(depth as u64, Ordering::Relaxed);
                Ok(depth)
            }
        };
        match verdict {
            Ok(depth) => {
                self.shared.stats.admitted.fetch_add(1, Ordering::Relaxed);
                metrics::SERVE_JOBS_ADMITTED.add(1);
                metrics::SERVE_QUEUE_DEPTH_MAX.record(depth as u64);
                self.shared.work_ready.notify_one();
                Admission::Admitted { depth }
            }
            Err((job, depth)) => {
                self.shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                metrics::SERVE_JOBS_SHED.add(1);
                let cap = self.shared.cfg.queue_cap;
                (job.done)(job.id, Outcome::Error(format!("shed: queue at cap {cap}")));
                Admission::Shed { depth, cap }
            }
        }
    }

    /// Inline mode's pump: pops and runs queued jobs on the calling
    /// thread until the queue is empty. Deterministic by construction —
    /// what the perf gate's pinned traces run instead of worker threads.
    /// (Also usable with workers present, as a helping-hand drain.)
    pub fn drain_inline(&self) {
        loop {
            let job = {
                let mut st = self
                    .shared
                    .state
                    .lock()
                    .unwrap_or_else(|poison| poison.into_inner());
                st.queue.pop_front()
            };
            match job {
                Some(job) => self.shared.execute(job),
                None => return,
            }
        }
    }

    /// Current queue depth (diagnostic; racy by nature).
    pub fn queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .queue
            .len()
    }

    /// Always-on statistics snapshot.
    pub fn stats(&self) -> FarmStats {
        let s = &self.shared.stats;
        FarmStats {
            admitted: s.admitted.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            failed: s.failed.load(Ordering::Relaxed),
            depth_hwm: s.depth_hwm.load(Ordering::Relaxed),
        }
    }

    /// Graceful drain: stop admitting (late submits shed), run every
    /// already-queued job to completion, join the workers, and return
    /// the final statistics. In inline mode the leftovers run on the
    /// calling thread. Idempotent: later calls just re-read the stats.
    pub fn drain(&self) -> FarmStats {
        {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            st.draining = true;
        }
        self.shared.work_ready.notify_all();
        let handles: Vec<JoinHandle<()>> = std::mem::take(
            &mut *self
                .workers
                .lock()
                .unwrap_or_else(|poison| poison.into_inner()),
        );
        for handle in handles {
            let _ = handle.join();
        }
        // Inline mode's leftovers (with workers present there are none —
        // they empty the queue before exiting — and the call is a no-op).
        self.drain_inline();
        self.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn noop_done() -> Box<dyn FnOnce(u64, Outcome) + Send> {
        Box::new(|_, _| {})
    }

    fn ok_job(id: u64, done: Box<dyn FnOnce(u64, Outcome) + Send>) -> Job {
        Job::new(id, JobKind::Sort, Box::new(|| Ok(Json::from_u64(1))), done)
    }

    fn inline_cfg(cap: usize) -> FarmConfig {
        FarmConfig {
            backend: BackendKind::Rayon,
            workers: 0,
            kernel_threads: 1,
            queue_cap: cap,
        }
    }

    #[test]
    fn admits_up_to_cap_then_sheds_exactly() {
        let farm = Farm::new(inline_cfg(3));
        let mut verdicts = Vec::new();
        for i in 0..5 {
            verdicts.push(farm.submit(ok_job(i, noop_done())));
        }
        assert_eq!(
            verdicts[..3]
                .iter()
                .filter(|v| matches!(v, Admission::Admitted { .. }))
                .count(),
            3
        );
        assert!(matches!(verdicts[3], Admission::Shed { depth: 3, cap: 3 }));
        assert!(matches!(verdicts[4], Admission::Shed { depth: 3, cap: 3 }));
        let stats = farm.stats();
        assert_eq!((stats.admitted, stats.shed, stats.depth_hwm), (3, 2, 3));
        farm.drain_inline();
        let stats = farm.stats();
        assert_eq!((stats.completed, stats.failed), (3, 0));
        // Capacity frees after the drain: admission recovers.
        assert!(matches!(
            farm.submit(ok_job(9, noop_done())),
            Admission::Admitted { depth: 1 }
        ));
    }

    #[test]
    fn shed_fires_the_done_callback_immediately() {
        let farm = Farm::new(inline_cfg(1));
        assert!(matches!(
            farm.submit(ok_job(1, noop_done())),
            Admission::Admitted { .. }
        ));
        let (tx, rx) = mpsc::channel();
        let done: Box<dyn FnOnce(u64, Outcome) + Send> = Box::new(move |id, outcome| {
            tx.send((id, outcome)).unwrap();
        });
        assert!(matches!(
            farm.submit(ok_job(2, done)),
            Admission::Shed { .. }
        ));
        let (id, outcome) = rx.recv().unwrap();
        assert_eq!(id, 2);
        assert!(matches!(outcome, Outcome::Error(ref m) if m.contains("shed")));
    }

    #[test]
    fn worker_panic_fails_the_job_but_not_the_farm() {
        let farm = Farm::new(FarmConfig {
            workers: 1,
            ..inline_cfg(4)
        });
        let (tx, rx) = mpsc::channel();
        let send = |tx: &mpsc::Sender<(u64, Outcome)>| {
            let tx = tx.clone();
            Box::new(move |id, outcome| {
                let _ = tx.send((id, outcome));
            }) as Box<dyn FnOnce(u64, Outcome) + Send>
        };
        farm.submit(Job::new(
            1,
            JobKind::Sort,
            Box::new(|| panic!("injected job panic")),
            send(&tx),
        ));
        farm.submit(ok_job(2, send(&tx)));
        let mut outcomes: Vec<(u64, Outcome)> = (0..2).map(|_| rx.recv().unwrap()).collect();
        outcomes.sort_by_key(|(id, _)| *id);
        // The panic is a typed failure carrying the BatchError-extracted
        // message; the next job still completes on the same worker.
        assert!(
            matches!(&outcomes[0].1, Outcome::Error(m) if m.contains("injected job panic")),
            "{:?}",
            outcomes[0]
        );
        assert!(matches!(&outcomes[1].1, Outcome::Ok(_)));
        let stats = farm.drain();
        assert_eq!((stats.completed, stats.failed), (1, 1));
    }

    #[test]
    fn drain_completes_queued_jobs_and_sheds_late_submits() {
        let farm = Farm::new(inline_cfg(8));
        let (tx, rx) = mpsc::channel();
        for i in 0..5 {
            let tx = tx.clone();
            farm.submit(Job::new(
                i,
                JobKind::Sort,
                Box::new(|| Ok(Json::Null)),
                Box::new(move |id, _| {
                    let _ = tx.send(id);
                }),
            ));
        }
        let stats = farm.drain();
        assert_eq!(stats.completed, 5);
        assert_eq!(rx.try_iter().count(), 5);
    }

    #[test]
    fn submit_after_drain_sheds() {
        let farm = Farm::new(FarmConfig {
            workers: 1,
            ..inline_cfg(8)
        });
        let stats = farm.drain();
        assert_eq!(stats.admitted, 0);
        // Admission is closed for good: drained farms shed everything.
        assert!(matches!(
            farm.submit(ok_job(1, noop_done())),
            Admission::Shed { .. }
        ));
        assert_eq!(farm.stats().shed, 1);
    }

    #[test]
    fn workers_with_resident_pools_serve_many_jobs() {
        let farm = Farm::new(FarmConfig {
            backend: BackendKind::Rayon,
            workers: 2,
            kernel_threads: 1,
            queue_cap: 4,
        });
        let (tx, rx) = mpsc::channel();
        let mut admitted = 0u64;
        for i in 0..32u64 {
            let tx = tx.clone();
            let verdict = farm.submit(Job::new(
                i,
                JobKind::Sort,
                Box::new(move || {
                    // Touch the ambient pool so the resident install is
                    // actually exercised.
                    let width = rayon::current_num_threads();
                    Ok(Json::from_u64(width as u64))
                }),
                Box::new(move |id, outcome| {
                    let _ = tx.send((id, outcome));
                }),
            ));
            if matches!(verdict, Admission::Admitted { .. }) {
                admitted += 1;
            }
            // Consume results opportunistically so a tiny cap doesn't
            // starve the test; sheds already fired their callback.
            while let Ok((_, outcome)) = rx.try_recv() {
                if let Outcome::Ok(width) = outcome {
                    assert_eq!(width.as_u64(), Some(1));
                }
            }
        }
        let stats = farm.drain();
        assert_eq!(stats.admitted, admitted);
        assert_eq!(stats.completed + stats.failed, admitted);
        assert_eq!(stats.failed, 0);
        assert!(stats.depth_hwm <= 4);
    }
}
