//! The TCP front end: a resident `rpb-jobs-v1` server over the farm.
//!
//! Thread shape per the PPL farm skeleton: the accept loop plus each
//! connection's reader thread are the *emitters* (they turn frames into
//! [`Job`]s and push them through [`Farm::submit`]'s admission control),
//! the farm's resident workers are the *workers*, and each connection's
//! writer thread is its *collector* — job `done` callbacks forward the
//! response frame into a per-connection channel the writer drains, so
//! responses from different jobs never interleave mid-frame and a slow
//! client never blocks a worker.
//!
//! Shutdown is sleep-free and ordered:
//!
//! 1. the shutdown flag flips (a self-connect pokes the blocking accept
//!    loop, which re-checks the flag before handling anything),
//! 2. [`Farm::drain`] runs every already-admitted job and joins the
//!    workers — submissions that race in behind it shed, typed,
//! 3. every connection socket is shut down for *reading only*
//!    ([`Shutdown::Read`]), so blocked readers see a clean EOF while
//!    writers keep flushing queued responses,
//! 4. readers drop their channel senders, writers drain and exit, and
//!    every connection thread joins.

use std::io::{self, BufReader};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use rpb_fearless::{pool, ExecMode};
use rpb_obs::{metrics, Json};
use rpb_suite::Scale;

use crate::datasets::Datasets;
use crate::farm::{self, Admission, Farm, FarmConfig, FarmStats, Job, Outcome};
use crate::jobs::{self, JobKind, ALL_KINDS};
use crate::proto::{self, Request, RequestKind};

/// Everything a server boot needs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral port (read it back
    /// from [`Server::local_addr`]).
    pub addr: String,
    /// Scale the datasets preload at.
    pub scale: Scale,
    /// Farm sizing (workers, queue cap, backend, pool width).
    pub farm: FarmConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scale: Scale::gate(),
            farm: FarmConfig::default(),
        }
    }
}

struct ConnReg {
    /// A clone of the connection socket, kept so shutdown can close its
    /// read side while the connection threads still own the originals.
    socket: TcpStream,
    handle: JoinHandle<()>,
}

struct Shared {
    farm: Farm,
    data: Arc<Datasets>,
    scale: Scale,
    local_addr: SocketAddr,
    shutdown: Mutex<bool>,
    shutdown_cv: Condvar,
    conns: Mutex<Vec<ConnReg>>,
}

impl Shared {
    fn is_shutdown(&self) -> bool {
        *self
            .shutdown
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Flips the shutdown flag and pokes the accept loop awake with a
    /// throwaway self-connection. Idempotent.
    fn request_shutdown(&self) {
        {
            let mut flag = self
                .shutdown
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            *flag = true;
        }
        self.shutdown_cv.notify_all();
        let _ = TcpStream::connect(self.local_addr);
    }

    fn wait_for_shutdown(&self) {
        let mut flag = self
            .shutdown
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        while !*flag {
            flag = self
                .shutdown_cv
                .wait(flag)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }
}

/// A running server. Dropping it without [`Server::join`] leaks the
/// resident threads; the CLI and tests always join.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, preloads the datasets (the expensive boot step), spawns the
    /// farm workers and the accept loop, and returns immediately.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            farm: Farm::new(cfg.farm),
            data: Arc::new(Datasets::preload(cfg.scale)),
            scale: cfg.scale,
            local_addr,
            shutdown: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("rpb-serve-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Server {
            shared,
            local_addr,
            accept: Some(accept),
        })
    }

    /// The bound address (the real port when the config said `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The preloaded datasets (shared with every job).
    pub fn datasets(&self) -> Arc<Datasets> {
        Arc::clone(&self.shared.data)
    }

    /// Programmatic shutdown trigger — same path a wire `shutdown`
    /// request takes.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Blocks until shutdown is requested (by wire or programmatically),
    /// then runs the ordered teardown from the module docs and returns
    /// the farm's final statistics.
    pub fn join(mut self) -> FarmStats {
        self.shared.wait_for_shutdown();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Drain first: every admitted job completes and its response
        // frame reaches the connection channel before any socket closes.
        let stats = self.shared.farm.drain();
        let conns: Vec<ConnReg> = std::mem::take(
            &mut *self
                .shared
                .conns
                .lock()
                .unwrap_or_else(|poison| poison.into_inner()),
        );
        // Read side only: blocked readers EOF; writers keep flushing.
        for conn in &conns {
            let _ = conn.socket.shutdown(Shutdown::Read);
        }
        for conn in conns {
            let _ = conn.handle.join();
        }
        stats
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        // Checked before handling so the shutdown poke's own connection
        // (or any racing client) is dropped, not served.
        if shared.is_shutdown() {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        metrics::SERVE_CONNS_ACCEPTED.add(1);
        let reg_socket = match stream.try_clone() {
            Ok(c) => c,
            Err(_) => continue,
        };
        let conn_shared = Arc::clone(&shared);
        let handle = match std::thread::Builder::new()
            .name("rpb-serve-conn".to_string())
            .spawn(move || handle_connection(stream, conn_shared))
        {
            Ok(h) => h,
            Err(_) => continue,
        };
        shared
            .conns
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .push(ConnReg {
                socket: reg_socket,
                handle,
            });
    }
}

/// One connection: this thread is the reader/emitter; it spawns the
/// writer/collector and joins it on the way out.
fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<Json>();
    let writer = std::thread::Builder::new()
        .name("rpb-serve-writer".to_string())
        .spawn(move || writer_loop(write_half, rx));
    let writer = match writer {
        Ok(w) => w,
        Err(_) => return,
    };

    let mut reader = BufReader::new(stream);
    loop {
        match proto::read_frame(&mut reader) {
            // Clean EOF at a frame boundary: client done (or our own
            // read-side shutdown during teardown).
            Ok(None) => break,
            // Fatal framing break (truncated or oversized frame):
            // answer if the socket still can, then close.
            Err(e) => {
                metrics::SERVE_FRAMES_MALFORMED.add(1);
                let _ = tx.send(proto::error_response(
                    None,
                    &format!("fatal framing error: {e}"),
                ));
                break;
            }
            Ok(Some(payload)) => match Request::parse(&payload) {
                // Recoverable: typed error response, connection lives on.
                Err(e) => {
                    metrics::SERVE_FRAMES_MALFORMED.add(1);
                    let _ = tx.send(proto::error_response(e.id, &e.message));
                }
                Ok(req) => match req.kind {
                    RequestKind::Stats => {
                        // Answered inline — stats must work even when the
                        // queue is at cap (that is when you want them).
                        let _ = tx.send(proto::ok_response(req.id, stats_json(&shared)));
                    }
                    RequestKind::Shutdown => {
                        let ack = Json::Obj(vec![("stopping".to_string(), Json::Bool(true))]);
                        let _ = tx.send(proto::ok_response(req.id, ack));
                        shared.request_shutdown();
                        break;
                    }
                    RequestKind::Job(kind, mode) => {
                        submit_job(&shared, &tx, req.id, kind, mode);
                    }
                },
            },
        }
    }
    // Our sender drops here; in-flight jobs hold clones, so the writer
    // exits only after the last of their responses is flushed.
    drop(tx);
    let _ = writer.join();
}

fn submit_job(
    shared: &Arc<Shared>,
    tx: &mpsc::Sender<Json>,
    id: u64,
    kind: JobKind,
    mode: ExecMode,
) {
    let cfg = shared.farm.config();
    let data = Arc::clone(&shared.data);
    let done_tx = tx.clone();
    let verdict = shared.farm.submit(Job::new(
        id,
        kind,
        Box::new(move || jobs::run_job(kind, mode, cfg.backend, cfg.kernel_threads, &data)),
        Box::new(move |id, outcome| {
            let response = match outcome {
                Outcome::Ok(result) => proto::ok_response(id, result),
                // Shed callbacks carry a marker; the verdict arm below
                // answers those with the richer typed shed frame.
                Outcome::Error(m) if m.starts_with(farm::SHED_PREFIX) => return,
                Outcome::Error(m) => proto::error_response(Some(id), &m),
            };
            let _ = done_tx.send(response);
        }),
    ));
    if let Admission::Shed { depth, cap } = verdict {
        let _ = tx.send(proto::shed_response(id, depth, cap));
    }
}

fn writer_loop(stream: TcpStream, rx: mpsc::Receiver<Json>) {
    let mut w = stream;
    while let Ok(response) = rx.recv() {
        if proto::write_frame(&mut w, &response.to_string()).is_err() {
            // Peer gone; keep draining so job senders never block (they
            // don't — the channel is unbounded — but exiting early would
            // also be fine. Draining keeps the accounting simple).
            for _ in rx.iter() {}
            return;
        }
    }
}

/// The `stats` endpoint's body: farm admission counters, the always-on
/// validation-pool counters (the zero-alloc evidence), and per-endpoint
/// SLO latency quantiles from the `rpb-obs` histograms (all zero without
/// the `obs` feature; the shape is stable either way).
fn stats_json(shared: &Shared) -> Json {
    let f = shared.farm.stats();
    let cfg = shared.farm.config();
    let p = pool::stats();
    let u = Json::from_u64;
    let endpoints: Vec<(String, Json)> = ALL_KINDS
        .iter()
        .map(|k| {
            let h = k.latency_histo().snapshot();
            (
                k.label().to_string(),
                Json::Obj(vec![
                    ("count".to_string(), u(h.count)),
                    ("p50_ns".to_string(), u(h.quantile_ns(0.50))),
                    ("p99_ns".to_string(), u(h.quantile_ns(0.99))),
                    ("max_ns".to_string(), u(h.max_ns)),
                ]),
            )
        })
        .collect();
    Json::Obj(vec![
        (
            "farm".to_string(),
            Json::Obj(vec![
                ("admitted".to_string(), u(f.admitted)),
                ("shed".to_string(), u(f.shed)),
                ("completed".to_string(), u(f.completed)),
                ("failed".to_string(), u(f.failed)),
                ("depth_hwm".to_string(), u(f.depth_hwm)),
                ("queue_cap".to_string(), u(cfg.queue_cap as u64)),
                ("workers".to_string(), u(cfg.workers as u64)),
                (
                    "backend".to_string(),
                    Json::Str(cfg.backend.label().to_string()),
                ),
            ]),
        ),
        (
            "pool".to_string(),
            Json::Obj(vec![
                ("hits".to_string(), u(p.hits)),
                ("misses".to_string(), u(p.misses)),
                ("epoch_rollovers".to_string(), u(p.epoch_rollovers)),
            ]),
        ),
        ("endpoints".to_string(), Json::Obj(endpoints)),
        (
            "scale".to_string(),
            Json::Obj(vec![
                ("seq_len".to_string(), u(shared.scale.seq_len as u64)),
                ("graph_n".to_string(), u(shared.scale.graph_n as u64)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{read_frame, write_frame};
    use rpb_parlay::exec::BackendKind;

    fn tiny_server(queue_cap: usize) -> Server {
        Server::start(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scale: Scale {
                text_len: 100,
                seq_len: 600,
                graph_n: 80,
                points_n: 16,
            },
            farm: FarmConfig {
                backend: BackendKind::Rayon,
                workers: 1,
                kernel_threads: 1,
                queue_cap,
            },
        })
        .expect("server start")
    }

    fn roundtrip(stream: &mut TcpStream, req: &Request) -> Json {
        write_frame(stream, &req.to_json().to_string()).unwrap();
        let payload = read_frame(stream).unwrap().expect("response frame");
        Json::parse(std::str::from_utf8(&payload).unwrap()).unwrap()
    }

    #[test]
    fn serves_jobs_stats_and_shutdown_over_tcp() {
        let _pool = crate::testutil::pool_lock();
        let server = tiny_server(8);
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();

        let doc = roundtrip(
            &mut conn,
            &Request {
                id: 1,
                kind: RequestKind::Job(JobKind::Isort, ExecMode::Checked),
            },
        );
        let (id, status, body) = proto::split_response(&doc).unwrap();
        assert_eq!((id, status.as_str()), (Some(1), "ok"));
        assert!(body.get("digest").and_then(Json::as_u64).is_some());

        let doc = roundtrip(
            &mut conn,
            &Request {
                id: 2,
                kind: RequestKind::Stats,
            },
        );
        let (_, status, body) = proto::split_response(&doc).unwrap();
        assert_eq!(status, "ok");
        let farm = body.get("farm").expect("farm stats");
        assert_eq!(farm.get("completed").and_then(Json::as_u64), Some(1));

        let doc = roundtrip(
            &mut conn,
            &Request {
                id: 3,
                kind: RequestKind::Shutdown,
            },
        );
        let (_, status, body) = proto::split_response(&doc).unwrap();
        assert_eq!(status, "ok");
        assert_eq!(body.get("stopping"), Some(&Json::Bool(true)));

        let stats = server.join();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn malformed_frame_gets_typed_error_and_connection_survives() {
        let _pool = crate::testutil::pool_lock();
        let server = tiny_server(8);
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();

        // Intact frame, broken request: recoverable.
        write_frame(&mut conn, "{definitely not json").unwrap();
        let payload = read_frame(&mut conn).unwrap().expect("error frame");
        let doc = Json::parse(std::str::from_utf8(&payload).unwrap()).unwrap();
        let (id, status, body) = proto::split_response(&doc).unwrap();
        assert_eq!((id, status.as_str()), (None, "error"));
        assert!(body.as_str().unwrap().contains("bad JSON"));

        // The same connection still serves real work.
        let doc = roundtrip(
            &mut conn,
            &Request {
                id: 9,
                kind: RequestKind::Job(JobKind::Hist, ExecMode::Checked),
            },
        );
        let (id, status, _) = proto::split_response(&doc).unwrap();
        assert_eq!((id, status.as_str()), (Some(9), "ok"));

        server.request_shutdown();
        let stats = server.join();
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn programmatic_shutdown_drains_cleanly_with_no_traffic() {
        let server = tiny_server(4);
        server.request_shutdown();
        let stats = server.join();
        assert_eq!(stats, FarmStats::default());
    }
}
