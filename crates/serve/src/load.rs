//! The bundled load generator: a blocking `rpb-jobs-v1` client, a paced/
//! burst load driver (`rpb load`), and the end-to-end self-test behind
//! `rpb serve --self-test` — the single command CI's serve-smoke job runs.
//!
//! The self-test boots a real server on an ephemeral loopback port and
//! drives it through the full contract: paced warmup, a steady phase that
//! must complete with **zero** validation-pool misses (the resident
//! zero-allocation claim, asserted through the always-on pool counters),
//! an over-admission burst that must *shed* — typed responses, never a
//! hang or an unbounded backlog — a malformed-frame probe the connection
//! must survive, and a clean drain whose final accounting balances.

use std::io::{self, BufReader, Write as _};
use std::net::TcpStream;

use rpb_fearless::ExecMode;
use rpb_obs::Json;
use rpb_parlay::exec::BackendKind;
use rpb_suite::Scale;

use crate::farm::FarmConfig;
use crate::jobs::JobKind;
use crate::proto::{self, Request, RequestKind};
use crate::server::{Server, ServerConfig};
use crate::trace;

/// A blocking `rpb-jobs-v1` client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

/// One response, split into its correlated parts.
#[derive(Clone, Debug)]
pub struct Response {
    /// Echoed request id (`None` on uncorrelatable error frames).
    pub id: Option<u64>,
    /// `"ok"`, `"shed"`, or `"error"`.
    pub status: String,
    /// The `result` body for `"ok"`, the `error` value otherwise.
    pub body: Json,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
        })
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends a request frame without waiting for the response (the burst
    /// path). Returns the id it was sent under.
    pub fn send(&mut self, kind: RequestKind) -> io::Result<u64> {
        let id = self.fresh_id();
        let req = Request { id, kind };
        proto::write_frame(&mut self.writer, &req.to_json().to_string())?;
        Ok(id)
    }

    /// Sends raw bytes as one frame — the malformed-request probe.
    pub fn send_raw(&mut self, payload: &str) -> io::Result<()> {
        proto::write_frame(&mut self.writer, payload)
    }

    /// Reads and splits the next response frame.
    pub fn recv(&mut self) -> Result<Response, String> {
        let payload = proto::read_frame(&mut self.reader)
            .map_err(|e| format!("read: {e}"))?
            .ok_or("server closed the connection")?;
        let text = std::str::from_utf8(&payload).map_err(|e| format!("non-UTF-8 frame: {e}"))?;
        let doc = Json::parse(text).map_err(|e| format!("bad response JSON: {e}"))?;
        let (id, status, body) = proto::split_response(&doc)?;
        Ok(Response { id, status, body })
    }

    /// Request/response round trip, with id correlation checked.
    pub fn call(&mut self, kind: RequestKind) -> Result<Response, String> {
        let id = self.send(kind).map_err(|e| format!("send: {e}"))?;
        let resp = self.recv()?;
        if resp.id != Some(id) {
            return Err(format!(
                "response id {:?} does not match request {id}",
                resp.id
            ));
        }
        Ok(resp)
    }

    /// Stats round trip, returning the body object.
    pub fn stats(&mut self) -> Result<Json, String> {
        let resp = self.call(RequestKind::Stats)?;
        if resp.status != "ok" {
            return Err(format!("stats returned status {}", resp.status));
        }
        Ok(resp.body)
    }
}

/// `rpb load` configuration.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server address.
    pub addr: String,
    /// Paced (request/response) jobs to run.
    pub jobs: usize,
    /// Pipelined burst jobs to fire without reading in between.
    pub burst: usize,
    /// Send a shutdown request when done.
    pub shutdown: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: 18,
            burst: 64,
            shutdown: false,
        }
    }
}

/// What one load run observed.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadReport {
    /// `status: "ok"` responses.
    pub ok: u64,
    /// `status: "shed"` responses (admission control working).
    pub shed: u64,
    /// `status: "error"` responses.
    pub errors: u64,
}

impl LoadReport {
    fn count(&mut self, status: &str) {
        match status {
            "ok" => self.ok += 1,
            "shed" => self.shed += 1,
            _ => self.errors += 1,
        }
    }

    /// JSON form for artifacts and stdout.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("ok".to_string(), Json::from_u64(self.ok)),
            ("shed".to_string(), Json::from_u64(self.shed)),
            ("errors".to_string(), Json::from_u64(self.errors)),
        ])
    }
}

/// The pinned `(kind, mode)` rotation load runs use — same one as the
/// deterministic gate traces, so digests line up across tools.
fn rotation(i: usize) -> RequestKind {
    let (kind, mode) = trace::trace_job(i);
    RequestKind::Job(kind, mode)
}

/// Paced phase: request/response one at a time; nothing should shed.
pub fn run_paced(client: &mut Client, jobs: usize) -> Result<LoadReport, String> {
    let mut report = LoadReport::default();
    for i in 0..jobs {
        let resp = client.call(rotation(i))?;
        report.count(&resp.status);
    }
    Ok(report)
}

/// Burst phase: fire `burst` requests without reading a single response,
/// then collect them all. With `burst` well past the queue cap and jobs
/// that cost far more than a frame write, admission control *must* shed —
/// and must answer every request either way (no hang, no lost frame).
pub fn run_burst(client: &mut Client, burst: usize) -> Result<LoadReport, String> {
    let mut report = LoadReport::default();
    for i in 0..burst {
        client.send(rotation(i)).map_err(|e| format!("send: {e}"))?;
    }
    for _ in 0..burst {
        let resp = client.recv()?;
        report.count(&resp.status);
    }
    Ok(report)
}

/// The `rpb load` entry point: paced phase, then burst phase, then an
/// optional shutdown. Returns the merged report.
pub fn run_load(cfg: &LoadConfig) -> Result<LoadReport, String> {
    let mut client =
        Client::connect(&cfg.addr).map_err(|e| format!("connect {}: {e}", cfg.addr))?;
    let paced = run_paced(&mut client, cfg.jobs)?;
    let burst = run_burst(&mut client, cfg.burst)?;
    if cfg.shutdown {
        let resp = client.call(RequestKind::Shutdown)?;
        if resp.status != "ok" {
            return Err(format!("shutdown returned status {}", resp.status));
        }
    }
    Ok(LoadReport {
        ok: paced.ok + burst.ok,
        shed: paced.shed + burst.shed,
        errors: paced.errors + burst.errors,
    })
}

/// One named check of the self-test.
#[derive(Clone, Debug)]
pub struct CheckResult {
    /// Check name (stable, artifact-keyed).
    pub name: &'static str,
    /// Did it hold?
    pub passed: bool,
    /// Human-readable evidence.
    pub detail: String,
}

/// The self-test's full outcome.
#[derive(Clone, Debug, Default)]
pub struct SelfTestReport {
    /// Every check, in execution order.
    pub checks: Vec<CheckResult>,
}

impl SelfTestReport {
    fn check(&mut self, name: &'static str, passed: bool, detail: String) -> bool {
        self.checks.push(CheckResult {
            name,
            passed,
            detail,
        });
        passed
    }

    /// True when every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// JSON form (the CI artifact).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("passed".to_string(), Json::Bool(self.passed())),
            (
                "checks".to_string(),
                Json::Arr(
                    self.checks
                        .iter()
                        .map(|c| {
                            Json::Obj(vec![
                                ("name".to_string(), Json::Str(c.name.to_string())),
                                ("passed".to_string(), Json::Bool(c.passed)),
                                ("detail".to_string(), Json::Str(c.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn pool_misses(stats: &Json) -> u64 {
    stats
        .get("pool")
        .and_then(|p| p.get("misses"))
        .and_then(Json::as_u64)
        .unwrap_or(u64::MAX)
}

/// Sizing of the self-test server: one worker with a 1-wide resident
/// pool and a cap-8 queue — small enough that the burst phase reliably
/// over-runs admission, realistic enough that every layer is exercised.
pub fn self_test_config(backend: BackendKind, scale: Scale) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        scale,
        farm: FarmConfig {
            backend,
            workers: 1,
            kernel_threads: 1,
            queue_cap: 8,
        },
    }
}

/// Boots a server in-process and drives the whole serve contract through
/// a real socket. Returns the report; the caller decides the exit code.
pub fn self_test(backend: BackendKind, scale: Scale) -> Result<SelfTestReport, String> {
    let mut report = SelfTestReport::default();
    let server = Server::start(self_test_config(backend, scale))
        .map_err(|e| format!("server start: {e}"))?;
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;

    // Warmup: one paced job of each kind primes the validation pool and
    // every lazy initialization. All six must come back ok.
    let warm = run_paced(&mut client, 6)?;
    report.check(
        "warmup_all_ok",
        warm.ok == 6 && warm.shed == 0 && warm.errors == 0,
        format!("{warm:?}"),
    );

    // Steady phase: paced traffic must neither shed nor error, and must
    // not allocate a single validation table — misses stay flat across
    // the phase (always-on pool counters; independent of `obs`).
    let misses_before = pool_misses(&client.stats()?);
    let steady = run_paced(&mut client, 18)?;
    let misses_after = pool_misses(&client.stats()?);
    report.check(
        "steady_all_ok",
        steady.ok == 18 && steady.shed == 0 && steady.errors == 0,
        format!("{steady:?}"),
    );
    report.check(
        "steady_zero_pool_misses",
        misses_after == misses_before && misses_before != u64::MAX,
        format!("misses {misses_before} -> {misses_after}"),
    );

    // Burst phase: 64 pipelined requests against a cap-8 queue. Admission
    // control must shed (not hang, not queue unboundedly) and still
    // answer every frame.
    let burst = run_burst(&mut client, 64)?;
    report.check(
        "burst_sheds",
        burst.shed > 0 && burst.errors == 0,
        format!("{burst:?}"),
    );
    report.check(
        "burst_answers_everything",
        burst.ok + burst.shed + burst.errors == 64,
        format!("{} responses", burst.ok + burst.shed + burst.errors),
    );

    // Malformed frame: typed error, and the same connection keeps
    // serving afterwards.
    client
        .send_raw("{broken")
        .map_err(|e| format!("probe send: {e}"))?;
    let err_resp = client.recv()?;
    report.check(
        "malformed_frame_typed_error",
        err_resp.status == "error" && err_resp.id.is_none(),
        format!("status {} id {:?}", err_resp.status, err_resp.id),
    );
    let after = client.call(rotation(0))?;
    report.check(
        "connection_survives_malformed_frame",
        after.status == "ok",
        format!("status {}", after.status),
    );

    // Clean shutdown: acked, drained, and the books balance.
    let ack = client.call(RequestKind::Shutdown)?;
    report.check(
        "shutdown_acked",
        ack.status == "ok",
        format!("status {}", ack.status),
    );
    let stats = server.join();
    report.check(
        "drain_balances",
        stats.admitted == stats.completed + stats.failed && stats.failed == 0,
        format!("{stats:?}"),
    );
    report.check(
        "shed_accounted",
        stats.shed == burst.shed,
        format!("farm shed {} vs client shed {}", stats.shed, burst.shed),
    );
    Ok(report)
}

/// Runs the self-test and writes the JSON artifact when asked. Returns
/// the process exit code.
pub fn run_self_test(backend: BackendKind, scale: Scale, artifact: Option<&str>) -> i32 {
    let report = match self_test(backend, scale) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("serve self-test aborted: {e}");
            return 1;
        }
    };
    for c in &report.checks {
        println!(
            "{} {} ({})",
            if c.passed { "PASS" } else { "FAIL" },
            c.name,
            c.detail
        );
    }
    if let Some(path) = artifact {
        if let Err(e) = write_artifact(path, &report.to_json()) {
            eprintln!("cannot write artifact {path}: {e}");
            return 1;
        }
        println!("artifact written to {path}");
    }
    if report.passed() {
        println!("serve self-test: all {} checks passed", report.checks.len());
        0
    } else {
        eprintln!("serve self-test: FAILED");
        1
    }
}

fn write_artifact(path: &str, doc: &Json) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{doc}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale {
            text_len: 100,
            seq_len: 600,
            graph_n: 80,
            points_n: 16,
        }
    }

    #[test]
    fn self_test_passes_end_to_end() {
        let _pool = crate::testutil::pool_lock();
        let report = self_test(BackendKind::Rayon, tiny_scale()).expect("self-test runs");
        for c in &report.checks {
            assert!(c.passed, "{}: {}", c.name, c.detail);
        }
    }

    #[test]
    fn load_driver_counts_and_shuts_down() {
        let _pool = crate::testutil::pool_lock();
        let server = Server::start(self_test_config(BackendKind::Rayon, tiny_scale())).unwrap();
        let cfg = LoadConfig {
            addr: server.local_addr().to_string(),
            jobs: 6,
            burst: 24,
            shutdown: true,
        };
        let report = run_load(&cfg).expect("load run");
        assert_eq!(report.errors, 0);
        assert_eq!(report.ok + report.shed, 30);
        assert!(report.ok >= 6, "paced jobs all complete: {report:?}");
        let stats = server.join();
        assert_eq!(stats.admitted, stats.completed);
    }
}
