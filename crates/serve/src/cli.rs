//! CLI entry points for `rpb serve` and `rpb load`.
//!
//! Kept in this crate (rather than the bench binary) so the binary stays
//! a thin dispatcher; both functions return process exit codes and follow
//! the suite-wide convention: `0` success, `1` runtime failure, `2` usage
//! error.

use rpb_parlay::exec::BackendKind;
use rpb_suite::Scale;

use crate::farm::FarmConfig;
use crate::load::{self, LoadConfig};
use crate::server::{Server, ServerConfig};

const SERVE_USAGE: &str = "\
usage: rpb serve [options]

Boot the resident benchmark service (rpb-jobs-v1 over TCP) and block
until a client sends a `shutdown` request.

options:
  --addr HOST:PORT     bind address (default 127.0.0.1:7878; use :0 for
                       an ephemeral port, printed at boot)
  --scale S            dataset scale: gate|small|medium|large (default gate)
  --backend B          scheduling backend: rayon|mq (default rayon)
  --workers N          farm worker threads (default 1)
  --kernel-threads N   data-parallel width per worker (default 1)
  --queue-cap N        admission queue depth cap (default 8)
  --self-test          boot on an ephemeral port, drive the full serve
                       contract through a real socket, and exit 0/1
  --artifact PATH      with --self-test: write the JSON check report here
  -h, --help           this help";

const LOAD_USAGE: &str = "\
usage: rpb load --addr HOST:PORT [options]

Drive a running `rpb serve` instance: a paced request/response phase,
then a pipelined over-admission burst (sheds are expected and counted).

options:
  --addr HOST:PORT     server address (required)
  --jobs N             paced jobs (default 18)
  --burst N            pipelined burst jobs (default 64)
  --shutdown           send a shutdown request when done
  -h, --help           this help";

/// Prints a usage error and returns the usage exit code.
fn usage_error(usage: &str, msg: &str) -> i32 {
    eprintln!("error: {msg}\n\n{usage}");
    2
}

fn parse_usize(usage: &str, flag: &str, value: Option<&String>) -> Result<usize, i32> {
    let raw = value.ok_or_else(|| usage_error(usage, &format!("{flag} needs a value")))?;
    raw.parse::<usize>()
        .map_err(|_| usage_error(usage, &format!("{flag} needs an integer, got \"{raw}\"")))
}

/// `rpb serve` — returns the process exit code.
pub fn run_serve_cli(args: &[String]) -> i32 {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut scale = Scale::gate();
    let mut farm = FarmConfig {
        backend: BackendKind::Rayon,
        workers: 1,
        kernel_threads: 1,
        queue_cap: 8,
    };
    let mut self_test = false;
    let mut artifact: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = a.clone(),
                None => return usage_error(SERVE_USAGE, "--addr needs a value"),
            },
            "--scale" => match it.next().map(|s| Scale::parse(s)) {
                Some(Ok(s)) => scale = s,
                Some(Err(e)) => return usage_error(SERVE_USAGE, &e),
                None => return usage_error(SERVE_USAGE, "--scale needs a value"),
            },
            "--backend" => match it.next().map(|s| s.parse::<BackendKind>()) {
                Some(Ok(b)) => farm.backend = b,
                Some(Err(e)) => return usage_error(SERVE_USAGE, &e),
                None => return usage_error(SERVE_USAGE, "--backend needs a value"),
            },
            "--workers" => match parse_usize(SERVE_USAGE, "--workers", it.next()) {
                Ok(n) if n > 0 => farm.workers = n,
                Ok(_) => return usage_error(SERVE_USAGE, "--workers must be at least 1"),
                Err(code) => return code,
            },
            "--kernel-threads" => match parse_usize(SERVE_USAGE, "--kernel-threads", it.next()) {
                Ok(n) if n > 0 => farm.kernel_threads = n,
                Ok(_) => return usage_error(SERVE_USAGE, "--kernel-threads must be at least 1"),
                Err(code) => return code,
            },
            "--queue-cap" => match parse_usize(SERVE_USAGE, "--queue-cap", it.next()) {
                Ok(n) if n > 0 => farm.queue_cap = n,
                Ok(_) => return usage_error(SERVE_USAGE, "--queue-cap must be at least 1"),
                Err(code) => return code,
            },
            "--self-test" => self_test = true,
            "--artifact" => match it.next() {
                Some(p) => artifact = Some(p.clone()),
                None => return usage_error(SERVE_USAGE, "--artifact needs a value"),
            },
            "-h" | "--help" => {
                println!("{SERVE_USAGE}");
                return 0;
            }
            other => return usage_error(SERVE_USAGE, &format!("unknown option \"{other}\"")),
        }
    }

    if artifact.is_some() && !self_test {
        return usage_error(SERVE_USAGE, "--artifact only makes sense with --self-test");
    }
    if self_test {
        return load::run_self_test(farm.backend, scale, artifact.as_deref());
    }

    let server = match Server::start(ServerConfig { addr, scale, farm }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start server: {e}");
            return 1;
        }
    };
    println!(
        "rpb serve: listening on {} (backend {}, {} worker(s), queue cap {})",
        server.local_addr(),
        farm.backend.label(),
        farm.workers,
        farm.queue_cap
    );
    let stats = server.join();
    println!(
        "rpb serve: drained — admitted {} shed {} completed {} failed {} depth_hwm {}",
        stats.admitted, stats.shed, stats.completed, stats.failed, stats.depth_hwm
    );
    if stats.failed == 0 {
        0
    } else {
        1
    }
}

/// `rpb load` — returns the process exit code.
pub fn run_load_cli(args: &[String]) -> i32 {
    let mut cfg = LoadConfig {
        addr: String::new(),
        ..LoadConfig::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => cfg.addr = a.clone(),
                None => return usage_error(LOAD_USAGE, "--addr needs a value"),
            },
            "--jobs" => match parse_usize(LOAD_USAGE, "--jobs", it.next()) {
                Ok(n) => cfg.jobs = n,
                Err(code) => return code,
            },
            "--burst" => match parse_usize(LOAD_USAGE, "--burst", it.next()) {
                Ok(n) => cfg.burst = n,
                Err(code) => return code,
            },
            "--shutdown" => cfg.shutdown = true,
            "-h" | "--help" => {
                println!("{LOAD_USAGE}");
                return 0;
            }
            other => return usage_error(LOAD_USAGE, &format!("unknown option \"{other}\"")),
        }
    }
    if cfg.addr.is_empty() {
        return usage_error(LOAD_USAGE, "--addr is required");
    }
    match load::run_load(&cfg) {
        Ok(report) => {
            println!("{}", report.to_json());
            if report.errors == 0 {
                0
            } else {
                1
            }
        }
        Err(e) => {
            eprintln!("load run failed: {e}");
            1
        }
    }
}
