//! [`SharedMutSlice`] — the minimal unsafe escape hatch for algorithmically
//! independent writes.
//!
//! This corresponds to the paper's Listing 6(d): "unsafely dereference a
//! pointer to write", the *scary* option. All of RPB's `Unsafe`-mode
//! benchmark variants funnel their raw writes through this one type so the
//! `unsafe` footprint is centralized and auditable, per Rust best practice
//! (minimize and encapsulate unsafe code).

use std::marker::PhantomData;

/// A view of `&mut [T]` that can be shared across tasks, deferring the
/// aliasing-XOR-mutability proof to the caller.
///
/// # Safety contract
/// Users must ensure that concurrent accesses through clones of one
/// `SharedMutSlice` touch disjoint indices. Violations are data races
/// (undefined behaviour) exactly as in C++ — this type is the paper's
/// "scared" tier made explicit.
pub struct SharedMutSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the view is an address + length; sending it is harmless because
// every dereference goes through the unsafe accessors below, whose caller
// contract (type-level doc) demands disjoint indices. `T: Send` so the
// values themselves may cross threads.
unsafe impl<T: Send> Send for SharedMutSlice<'_, T> {}
// SAFETY: `&SharedMutSlice` exposes no safe dereference; the accessors'
// disjointness contract rules out data races through shared references.
unsafe impl<T: Send> Sync for SharedMutSlice<'_, T> {}

impl<T> Clone for SharedMutSlice<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SharedMutSlice<'_, T> {}

impl<'a, T> SharedMutSlice<'a, T> {
    /// Wraps an exclusive slice borrow.
    pub fn new(slice: &'a mut [T]) -> Self {
        SharedMutSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Slice length.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a mutable reference to element `i`.
    ///
    /// Bounds are checked with `debug_assert!` only — release builds trade
    /// the check away, which is exactly the C++-equivalence the `Unsafe`
    /// benchmark mode measures.
    ///
    /// # Safety
    /// `i < len()`, and no concurrent task may access index `i` while the
    /// returned borrow lives.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &'a mut T {
        debug_assert!(
            i < self.len,
            "SharedMutSlice index {i} out of bounds {}",
            self.len
        );
        // SAFETY: caller contract — `i < len` (within the original
        // allocation) and exclusive access to index `i`.
        unsafe { &mut *self.ptr.add(i) }
    }

    /// Writes `value` at index `i`.
    ///
    /// # Safety
    /// Same contract as [`SharedMutSlice::get_mut`].
    #[inline]
    pub unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        // SAFETY: caller contract — in-bounds, no concurrent access to `i`.
        unsafe { self.ptr.add(i).write(value) };
    }

    /// Reads element `i` (requires `T: Copy`).
    ///
    /// # Safety
    /// `i < len()` and no concurrent writer to index `i`.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.len);
        // SAFETY: caller contract — in-bounds, initialized, no concurrent
        // writer to `i`.
        unsafe { *self.ptr.add(i) }
    }

    /// Reinterprets a sub-range as a mutable slice.
    ///
    /// # Safety
    /// The range must be in bounds and disjoint from every other live
    /// borrow derived from this view.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, end: usize) -> &'a mut [T] {
        debug_assert!(start <= end && end <= self.len);
        // SAFETY: caller contract — `start..end` in bounds and disjoint
        // from every other live borrow derived from this view.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), end - start) }
    }

    /// The raw base pointer, for FFI-style call sites.
    #[inline]
    pub fn as_ptr(&self) -> *mut T {
        self.ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn disjoint_writes_in_parallel() {
        let n = if cfg!(miri) { 256 } else { 4096 };
        let mut v = vec![0u64; n];
        let view = SharedMutSlice::new(&mut v);
        (0..n).into_par_iter().for_each(|i| {
            // SAFETY: i is unique per task.
            unsafe { view.write(i, (i * 3) as u64) };
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == (i * 3) as u64));
    }

    #[test]
    fn slice_mut_carves_disjoint_windows() {
        let mut v = vec![0u8; 100];
        let view = SharedMutSlice::new(&mut v);
        [0usize, 1, 2, 3].into_par_iter().for_each(|b| {
            // SAFETY: 25-element windows are disjoint.
            let w = unsafe { view.slice_mut(b * 25, (b + 1) * 25) };
            w.fill(b as u8 + 1);
        });
        assert_eq!(v[0], 1);
        assert_eq!(v[30], 2);
        assert_eq!(v[99], 4);
    }

    #[test]
    fn len_and_empty() {
        let mut v: Vec<u8> = vec![];
        let view = SharedMutSlice::new(&mut v);
        assert!(view.is_empty());
        assert_eq!(view.len(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of bounds")]
    fn debug_bounds_check_fires() {
        let mut v = vec![0u8; 2];
        let view = SharedMutSlice::new(&mut v);
        // SAFETY: intentionally violated to test the debug assertion.
        unsafe {
            view.get_mut(5);
        }
    }
}
