//! Static access-pattern census (the measurement behind Fig. 3 and the
//! pattern columns of Table 1).
//!
//! The paper *statically* collects every access to shared data inside a
//! parallel region and classifies it by pattern; Fig. 3 reports the
//! distribution (11% RO, 52% Stride, 3% Block, 5% D&C, 13% SngInd,
//! 7% RngInd, 9% AW) and §7.2 the headline "29% of accesses are irregular".
//!
//! In RPB-rs, each benchmark module declares its parallel-region accesses
//! as a `const` table of [`PatternCount`]s — the same static measurement,
//! recorded next to the code it describes (reviewed in code review, not
//! runtime instrumentation). [`PatternCensus`] aggregates the declarations
//! across the suite.

use std::collections::BTreeMap;

use crate::taxonomy::{Pattern, ALL_PATTERNS};

/// One benchmark's static count of shared-data accesses of one pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PatternCount {
    /// Which access pattern.
    pub pattern: Pattern,
    /// Number of static occurrences (accesses to shared structures inside
    /// parallel regions with this pattern).
    pub count: usize,
}

/// Aggregated census over any number of benchmarks.
#[derive(Clone, Debug, Default)]
pub struct PatternCensus {
    totals: BTreeMap<Pattern, usize>,
}

impl PatternCensus {
    /// Empty census.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one benchmark's declared counts.
    pub fn add(&mut self, counts: &[PatternCount]) {
        for c in counts {
            *self.totals.entry(c.pattern).or_insert(0) += c.count;
        }
    }

    /// Total accesses across all patterns.
    pub fn total(&self) -> usize {
        self.totals.values().sum()
    }

    /// Count for one pattern.
    pub fn count(&self, p: Pattern) -> usize {
        self.totals.get(&p).copied().unwrap_or(0)
    }

    /// Fraction (0..=1) of accesses with the given pattern.
    pub fn share(&self, p: Pattern) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.count(p) as f64 / t as f64
        }
    }

    /// The §7.2 headline: fraction of accesses that are irregular
    /// (`SngInd` + `RngInd` + `AW`).
    pub fn irregular_share(&self) -> f64 {
        ALL_PATTERNS
            .iter()
            .filter(|p| p.is_irregular())
            .map(|&p| self.share(p))
            .sum()
    }

    /// Fraction of accesses whose `Checked`-mode guard does real work:
    /// `SngInd`'s uniqueness check is the costly one (the target of the
    /// pooled fast path in `rpb-fearless`), while `RngInd`'s monotonicity
    /// check is ~free and `AW` synchronizes instead of validating. The
    /// pooled-table/proof machinery matters in proportion to this share.
    pub fn costly_check_share(&self) -> f64 {
        self.share(Pattern::SngInd)
    }

    /// (pattern, count, share) rows in Table 3 order — the Fig. 3 data.
    pub fn rows(&self) -> Vec<(Pattern, usize, f64)> {
        ALL_PATTERNS
            .iter()
            .map(|&p| (p, self.count(p), self.share(p)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_and_shares() {
        let mut census = PatternCensus::new();
        census.add(&[
            PatternCount {
                pattern: Pattern::RO,
                count: 2,
            },
            PatternCount {
                pattern: Pattern::Stride,
                count: 6,
            },
        ]);
        census.add(&[
            PatternCount {
                pattern: Pattern::Stride,
                count: 4,
            },
            PatternCount {
                pattern: Pattern::AW,
                count: 8,
            },
        ]);
        assert_eq!(census.total(), 20);
        assert_eq!(census.count(Pattern::Stride), 10);
        assert!((census.share(Pattern::Stride) - 0.5).abs() < 1e-12);
        assert!((census.irregular_share() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_census_is_zero() {
        let census = PatternCensus::new();
        assert_eq!(census.total(), 0);
        assert_eq!(census.share(Pattern::RO), 0.0);
        assert_eq!(census.irregular_share(), 0.0);
    }

    #[test]
    fn costly_check_share_counts_only_sngind() {
        let mut census = PatternCensus::new();
        census.add(&[
            PatternCount {
                pattern: Pattern::SngInd,
                count: 3,
            },
            PatternCount {
                pattern: Pattern::RngInd,
                count: 3,
            },
            PatternCount {
                pattern: Pattern::AW,
                count: 6,
            },
        ]);
        assert!((census.costly_check_share() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rows_cover_all_patterns() {
        let census = PatternCensus::new();
        assert_eq!(census.rows().len(), 7);
    }
}
