//! Pooled, epoch-stamped mark tables for the `SngInd` uniqueness check.
//!
//! The naive mark-table check allocates and zeroes a fresh `len`-byte table
//! on every call — for the hot call sites (isort passes, suffix-array
//! ranking rounds, bench repetitions) that allocation dominates the check
//! itself. This module amortizes it away:
//!
//! * [`EpochMarks`] — a table of `AtomicU32` *epoch stamps*. A slot is
//!   "marked" when it holds the table's current epoch; re-acquiring the
//!   table bumps the epoch instead of re-zeroing, so steady-state
//!   acquisition is `O(1)` regardless of capacity. Only when the 32-bit
//!   epoch wraps around (once per ~4 billion acquisitions) is the table
//!   re-zeroed.
//! * [`AtomicBitset`] — one bit per slot packed into `AtomicU64` words:
//!   8× less memory traffic than a byte table, at the cost of a word
//!   zeroing pass (`len/64` words) per acquisition. The right trade for
//!   large `len` where a pooled `u32` epoch table would be oversized.
//! * A global best-fit **pool** for both table kinds, keyed by capacity.
//!   Steady-state checks pop a table (pool hit: zero allocation) and
//!   return it on drop. Oversized requests fall back to the classic
//!   allocate-per-call path and are never retained.
//!
//! # Retention bound
//!
//! Pooled tables live in process-global statics for the lifetime of the
//! program (or until [`clear`]). The steady-state footprint is bounded:
//! each pool retains at most [`MAX_POOL_TABLES`] tables *and* at most a
//! fixed byte budget ([`MAX_EPOCH_POOL_BYTES`] for epoch tables,
//! [`MAX_BITSET_POOL_BYTES`] for bitsets — ≤ 192 MiB combined, worst
//! case). When a release would exceed either bound, the smallest tables
//! are evicted first: a large table serves every smaller request, so it
//! has the highest reuse value per retained byte. Call [`clear`] to drop
//! everything eagerly (e.g. between memory-sensitive phases).
//!
//! Pool traffic is counted twice: in always-on local [`PoolStats`] (plain
//! relaxed atomics, touched once per *validation*, not per element — cheap
//! enough to keep unconditionally) and in the feature-gated
//! `rpb_obs::metrics` counters that feed the bench records.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Largest slot count the epoch-table pool will serve. A table of this
/// capacity is `4 * MAX_POOLED_EPOCH_SLOTS` bytes (64 MiB); larger
/// requests allocate per call (and [`UniquenessCheck::Adaptive`] prefers
/// the bitset or sort strategies there instead).
///
/// [`UniquenessCheck::Adaptive`]: crate::snd_ind::UniquenessCheck::Adaptive
pub const MAX_POOLED_EPOCH_SLOTS: usize = 1 << 24;

/// Largest slot count the bitset pool will serve (`1 << 28` bits =
/// 32 MiB of words). Beyond this, bitsets allocate per call.
pub const MAX_POOLED_BITSET_SLOTS: usize = 1 << 28;

/// Tables retained per pool. More than this many concurrent validations
/// of pool-eligible sizes overflow to allocate-per-call.
pub const MAX_POOL_TABLES: usize = 4;

/// Byte budget for retained epoch tables (two max-capacity tables). A
/// release that would exceed it evicts the smallest tables first.
pub const MAX_EPOCH_POOL_BYTES: usize = 2 * 4 * MAX_POOLED_EPOCH_SLOTS;

/// Byte budget for retained bitsets (two max-capacity bitsets).
pub const MAX_BITSET_POOL_BYTES: usize = 2 * (MAX_POOLED_BITSET_SLOTS / 8);

/// Always-on pool telemetry (see also the `obs`-gated counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquisitions served from the pool without allocating.
    pub hits: u64,
    /// Acquisitions that allocated fresh storage.
    pub misses: u64,
    /// Epoch wraparounds that forced a full re-zero.
    pub epoch_rollovers: u64,
}

static POOL_HITS: AtomicU64 = AtomicU64::new(0);
static POOL_MISSES: AtomicU64 = AtomicU64::new(0);
static EPOCH_ROLLOVERS: AtomicU64 = AtomicU64::new(0);

/// When false, every acquisition allocates and every release frees —
/// the pre-pool allocate-per-call behaviour. The bench harness flips this
/// to measure the *fresh* check cost against the *amortized* one.
static POOL_ENABLED: AtomicBool = AtomicBool::new(true);

/// Snapshot of the always-on pool statistics.
pub fn stats() -> PoolStats {
    PoolStats {
        hits: POOL_HITS.load(Ordering::Relaxed),
        misses: POOL_MISSES.load(Ordering::Relaxed),
        epoch_rollovers: EPOCH_ROLLOVERS.load(Ordering::Relaxed),
    }
}

/// Zeroes the always-on pool statistics (tests and bench brackets).
pub fn reset_stats() {
    POOL_HITS.store(0, Ordering::Relaxed);
    POOL_MISSES.store(0, Ordering::Relaxed);
    EPOCH_ROLLOVERS.store(0, Ordering::Relaxed);
}

/// Enables or disables pooling globally. Disabled, every check allocates
/// per call — the baseline the pooled fast path is measured against.
/// Strategy selection is unaffected (so fresh-vs-amortized comparisons
/// hold the algorithm fixed and vary only the storage reuse).
pub fn set_enabled(enabled: bool) {
    POOL_ENABLED.store(enabled, Ordering::Relaxed);
}

/// True when acquisitions may be served from (and returned to) the pool.
pub fn is_enabled() -> bool {
    POOL_ENABLED.load(Ordering::Relaxed)
}

/// Drops every pooled table (tests and fresh-cost measurement).
pub fn clear() {
    EPOCH_POOL.lock().unwrap_or_else(|e| e.into_inner()).clear();
    EPOCH_POOL_MAX_CAP.store(0, Ordering::Relaxed);
    BITSET_POOL
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

fn note_hit() {
    POOL_HITS.fetch_add(1, Ordering::Relaxed);
    rpb_obs::metrics::SNGIND_POOL_HITS.add(1);
}

fn note_miss(bytes: u64) {
    POOL_MISSES.fetch_add(1, Ordering::Relaxed);
    rpb_obs::metrics::SNGIND_POOL_MISSES.add(1);
    rpb_obs::metrics::SNGIND_MARK_TABLE_BYTES.add(bytes);
}

/// An epoch-stamped mark table. A slot counts as marked iff it stores the
/// table's current epoch; anything else (older epochs, zero) is unmarked.
pub struct EpochMarks {
    stamps: Box<[AtomicU32]>,
    /// The epoch of the current acquisition. Plain data: the holder has
    /// exclusive ownership of the table between acquire and release, and
    /// marking threads only read it.
    epoch: u32,
}

impl EpochMarks {
    fn with_capacity(cap: usize) -> EpochMarks {
        EpochMarks {
            stamps: (0..cap).map(|_| AtomicU32::new(0)).collect(),
            epoch: 0,
        }
    }

    /// Slots this table can mark.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.stamps.len()
    }

    /// Advances to a fresh epoch, re-zeroing only on wraparound.
    fn next_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: stale stamps from ~4B acquisitions ago would alias
            // the new epoch. Re-zero once and restart at epoch 1.
            for s in self.stamps.iter() {
                s.store(0, Ordering::Relaxed);
            }
            self.epoch = 1;
            EPOCH_ROLLOVERS.fetch_add(1, Ordering::Relaxed);
            rpb_obs::metrics::SNGIND_EPOCH_ROLLOVERS.add(1);
        }
    }

    /// Marks slot `i`, returning `true` iff it was already marked this
    /// epoch (i.e. `i` is a duplicate offset).
    ///
    /// `i` must be `< capacity()`; the caller (the fused validation sweep)
    /// bounds-checks offsets before marking.
    #[inline]
    pub fn mark_was_set(&self, i: usize) -> bool {
        self.stamps[i].swap(self.epoch, Ordering::Relaxed) == self.epoch
    }
}

/// A one-bit-per-slot mark table over `AtomicU64` words.
pub struct AtomicBitset {
    words: Box<[AtomicU64]>,
}

impl AtomicBitset {
    fn with_capacity(cap_bits: usize) -> AtomicBitset {
        AtomicBitset {
            words: (0..cap_bits.div_ceil(64))
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// Bits this set can mark.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.words.len() * 64
    }

    /// Zeroes the first `len` bits (rounded up to whole words) — the
    /// per-acquisition cost of the bitset strategy, 8× less traffic than
    /// zeroing a byte table of the same slot count.
    fn zero_prefix(&self, len: usize) {
        for w in &self.words[..len.div_ceil(64).min(self.words.len())] {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Sets bit `i`, returning `true` iff it was already set.
    #[inline]
    pub fn set_was_set(&self, i: usize) -> bool {
        let mask = 1u64 << (i & 63);
        self.words[i >> 6].fetch_or(mask, Ordering::Relaxed) & mask != 0
    }
}

static EPOCH_POOL: Mutex<Vec<EpochMarks>> = Mutex::new(Vec::new());
static BITSET_POOL: Mutex<Vec<AtomicBitset>> = Mutex::new(Vec::new());

/// Lock-free mirror of the largest capacity currently in [`EPOCH_POOL`],
/// maintained by every mutation made under the pool mutex. Lets
/// [`epoch_pool_has`] — called on every `Adaptive` strategy resolution —
/// answer without taking the global lock, so concurrent validations from
/// independent rayon scopes don't serialize on it (the mutex is only
/// taken by actual acquire/release/clear traffic).
static EPOCH_POOL_MAX_CAP: AtomicUsize = AtomicUsize::new(0);

/// True when a request for `len` slots is small enough for the epoch-table
/// pool — the signal `UniquenessCheck::Adaptive` uses. Deliberately
/// independent of [`set_enabled`] so disabling the pool (for fresh-cost
/// measurement) does not also change the chosen strategy.
pub fn epoch_pool_serves(len: usize) -> bool {
    len <= MAX_POOLED_EPOCH_SLOTS
}

/// True when the epoch pool *currently holds* a table of at least `len`
/// slots — acquiring one is an epoch bump, no allocation and no zeroing,
/// which beats every other strategy regardless of offset density.
/// Content-only (ignores [`set_enabled`]) for the same strategy-stability
/// reason as [`epoch_pool_serves`].
///
/// Lock-free: reads a relaxed mirror of the pool's largest capacity, so
/// concurrent strategy resolutions never contend on the pool mutex. The
/// answer is a *hint* — a concurrent acquire can take the table between
/// this probe and the caller's own acquire — which is benign: the loser
/// falls back to a fresh allocation, never to an incorrect verdict.
pub fn epoch_pool_has(len: usize) -> bool {
    len <= EPOCH_POOL_MAX_CAP.load(Ordering::Relaxed)
}

/// An acquired epoch table; returns to the pool on drop.
pub struct EpochMarksGuard {
    table: Option<EpochMarks>,
    pooled: bool,
}

impl EpochMarksGuard {
    /// The table itself.
    #[inline]
    pub fn marks(&self) -> &EpochMarks {
        self.table
            .as_ref()
            .expect("EpochMarksGuard holds its table until drop")
    }

    /// Test hook: overwrites the held table's epoch, so integration tests
    /// can park a pooled table at the edge of `u32` and drive the
    /// wraparound re-zero path without ~4 billion acquisitions. Safe: a
    /// forced epoch can at worst cause a spurious duplicate verdict,
    /// never a missed one.
    #[doc(hidden)]
    pub fn force_epoch_for_tests(&mut self, epoch: u32) {
        if let Some(t) = self.table.as_mut() {
            t.epoch = epoch;
        }
    }
}

impl Drop for EpochMarksGuard {
    fn drop(&mut self) {
        if let Some(table) = self.table.take() {
            if self.pooled && is_enabled() {
                release(
                    &EPOCH_POOL,
                    table,
                    EpochMarks::capacity,
                    |t| 4 * t.capacity(),
                    MAX_EPOCH_POOL_BYTES,
                    Some(&EPOCH_POOL_MAX_CAP),
                );
            }
        }
    }
}

/// An acquired bitset; returns to the pool on drop.
pub struct AtomicBitsetGuard {
    table: Option<AtomicBitset>,
    pooled: bool,
}

impl AtomicBitsetGuard {
    /// The bitset itself.
    #[inline]
    pub fn bits(&self) -> &AtomicBitset {
        self.table
            .as_ref()
            .expect("AtomicBitsetGuard holds its table until drop")
    }
}

impl Drop for AtomicBitsetGuard {
    fn drop(&mut self) {
        if let Some(table) = self.table.take() {
            if self.pooled && is_enabled() {
                release(
                    &BITSET_POOL,
                    table,
                    AtomicBitset::capacity,
                    |t| t.capacity() / 8,
                    MAX_BITSET_POOL_BYTES,
                    None,
                );
            }
        }
    }
}

/// Refreshes `hint` (if any) to the largest capacity in `tables`. Must be
/// called with the pool mutex held, after every mutation of a pool that
/// mirrors its max capacity into an atomic.
fn refresh_hint<T>(hint: Option<&AtomicUsize>, tables: &[T], cap: impl Fn(&T) -> usize) {
    if let Some(h) = hint {
        h.store(tables.iter().map(cap).max().unwrap_or(0), Ordering::Relaxed);
    }
}

/// Pops the smallest pooled table with `capacity >= len`, if any.
fn acquire_from<T>(
    pool: &Mutex<Vec<T>>,
    len: usize,
    cap: impl Fn(&T) -> usize,
    hint: Option<&AtomicUsize>,
) -> Option<T> {
    if !is_enabled() {
        return None;
    }
    let mut tables = pool.lock().unwrap_or_else(|e| e.into_inner());
    let best = tables
        .iter()
        .enumerate()
        .filter(|(_, t)| cap(t) >= len)
        .min_by_key(|(_, t)| cap(t))
        .map(|(i, _)| i)?;
    let table = tables.swap_remove(best);
    refresh_hint(hint, &tables, &cap);
    Some(table)
}

/// Returns a table to its pool. While the pool exceeds its table count or
/// `max_bytes` budget, the smallest table is evicted (it has the lowest
/// reuse value: any larger retained table serves the same requests).
fn release<T>(
    pool: &Mutex<Vec<T>>,
    table: T,
    cap: impl Fn(&T) -> usize,
    bytes: impl Fn(&T) -> usize,
    max_bytes: usize,
    hint: Option<&AtomicUsize>,
) {
    let mut tables = pool.lock().unwrap_or_else(|e| e.into_inner());
    tables.push(table);
    while !tables.is_empty()
        && (tables.len() > MAX_POOL_TABLES || tables.iter().map(&bytes).sum::<usize>() > max_bytes)
    {
        if let Some(smallest) = tables
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| cap(t))
            .map(|(i, _)| i)
        {
            tables.swap_remove(smallest);
        }
    }
    refresh_hint(hint, &tables, &cap);
}

/// Acquires an epoch mark table of at least `len` slots: pool hit when
/// possible, fresh allocation otherwise. The returned guard's table has a
/// brand-new epoch, so all slots read as unmarked.
pub fn acquire_epoch_marks(len: usize) -> EpochMarksGuard {
    let pooled = epoch_pool_serves(len);
    let mut table = match acquire_from(
        &EPOCH_POOL,
        len,
        EpochMarks::capacity,
        Some(&EPOCH_POOL_MAX_CAP),
    ) {
        Some(t) => {
            note_hit();
            t
        }
        None => {
            // Round pool-bound requests up so a handful of tables serves
            // many distinct sizes. Oversized requests — and *all* requests
            // while the pool is disabled (the bench's fresh-cost baseline,
            // where rounding would overstate the allocate-per-call cost by
            // up to 2×) — allocate exactly.
            let cap = if pooled && is_enabled() {
                len.next_power_of_two()
            } else {
                len
            };
            note_miss(4 * cap as u64);
            EpochMarks::with_capacity(cap)
        }
    };
    table.next_epoch();
    EpochMarksGuard {
        table: Some(table),
        pooled,
    }
}

/// Acquires a bitset of at least `len` bits with the first `len` bits
/// zeroed: pool hit when possible, fresh allocation otherwise.
pub fn acquire_bitset(len: usize) -> AtomicBitsetGuard {
    let pooled = len <= MAX_POOLED_BITSET_SLOTS;
    let table = match acquire_from(&BITSET_POOL, len, AtomicBitset::capacity, None) {
        Some(t) => {
            note_hit();
            t.zero_prefix(len);
            t
        }
        None => {
            // Exact-size when the allocation will not be pooled (oversized,
            // or pool disabled for fresh-cost measurement) — see
            // `acquire_epoch_marks`.
            let cap = if pooled && is_enabled() {
                len.next_power_of_two()
            } else {
                len
            };
            note_miss(cap.div_ceil(64) as u64 * 8);
            // Fresh allocation is already zeroed.
            AtomicBitset::with_capacity(cap)
        }
    };
    AtomicBitsetGuard {
        table: Some(table),
        pooled,
    }
}

#[cfg(test)]
mod tests {
    // Exact hit/miss accounting is pinned in `tests/pool_steady_state.rs`,
    // which runs in its own process — the global pool and its stats are
    // shared across this binary's concurrently running tests, so only
    // per-guard behaviour (which is exclusive by ownership) is safe to
    // assert here.
    use super::*;

    #[test]
    fn epoch_bump_unmarks_previous_acquisitions() {
        for round in 0..100 {
            let g = acquire_epoch_marks(64);
            for i in 0..64 {
                assert!(
                    !g.marks().mark_was_set(i),
                    "round {round}: stale mark leaked into new epoch"
                );
                assert!(g.marks().mark_was_set(i), "second mark is a duplicate");
            }
        }
    }

    #[test]
    fn bitset_marks_and_rezeroes() {
        for _ in 0..5 {
            let g = acquire_bitset(130);
            assert!(g.bits().capacity() >= 130);
            assert!(!g.bits().set_was_set(0));
            assert!(!g.bits().set_was_set(129));
            assert!(g.bits().set_was_set(129));
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "allocates a 64 MiB table; too slow under Miri")]
    fn oversized_epoch_requests_allocate_exactly() {
        assert!(!epoch_pool_serves(MAX_POOLED_EPOCH_SLOTS + 1));
        let g = acquire_epoch_marks(MAX_POOLED_EPOCH_SLOTS + 1);
        assert_eq!(g.marks().capacity(), MAX_POOLED_EPOCH_SLOTS + 1);
    }

    #[test]
    fn epoch_rollover_rezeroes() {
        // A tiny table driven past u32::MAX epochs would take forever;
        // instead, fabricate the wrap directly.
        let mut t = EpochMarks::with_capacity(8);
        t.epoch = u32::MAX;
        assert!(!t.mark_was_set(3));
        t.next_epoch(); // wraps: re-zero, epoch = 1
        assert_eq!(t.epoch, 1);
        assert!(!t.mark_was_set(3), "rollover must clear stale stamps");
    }
}
