//! The paper's code listings as executable (and *compile-fail*) examples.
//!
//! The paper's core qualitative claims are about what `rustc` accepts and
//! rejects. This module pins them down as doctests: the rejected listings
//! are `compile_fail` tests — if a future compiler started accepting one,
//! the build would flag it.
//!
//! # Listing 1(a): data race on a shared accumulator → compile error
//!
//! ```compile_fail
//! let vector = vec![1u64; 100];
//! let mid = 50;
//! let mut sum = 0u64;
//! std::thread::scope(|s| {
//!     s.spawn(|| {
//!         sum += vector[..mid].iter().sum::<u64>(); // second &mut sum
//!     });
//!     sum += vector[mid..].iter().sum::<u64>();
//! });
//! ```
//!
//! # Listing 1(b): synchronization (interior mutability) fixes it
//!
//! ```
//! use std::sync::RwLock;
//! let vector = vec![1u64; 100];
//! let mid = 50;
//! let locked_sum = RwLock::new(0u64);
//! std::thread::scope(|s| {
//!     s.spawn(|| {
//!         let local_sum: u64 = vector[..mid].iter().sum();
//!         *locked_sum.write().unwrap() += local_sum;
//!     });
//!     let local_sum: u64 = vector[mid..].iter().sum();
//!     *locked_sum.write().unwrap() += local_sum;
//! });
//! assert_eq!(*locked_sum.read().unwrap(), 100);
//! ```
//!
//! # Listing 3(c): read-only reduction is fearless
//!
//! ```
//! use rayon::prelude::*;
//! let vector = vec![2u64; 1000];
//! let result: u64 = vector
//!     .par_chunks(128)
//!     .map(|chunk| chunk.iter().sum::<u64>())
//!     .sum();
//! assert_eq!(result, 2000);
//! ```
//!
//! # Listing 3(d): a task writing a captured accumulator → compile error
//!
//! ```compile_fail
//! use rayon::prelude::*;
//! let vector = vec![2u64; 1000];
//! let mut result = 0u64;
//! vector
//!     .par_chunks(128)
//!     .for_each(|chunk| result += chunk.iter().sum::<u64>()); // E0594/E0525
//! ```
//!
//! # Listing 4(c): naive `Stride` through indexing → compile error
//!
//! ```compile_fail
//! use rayon::prelude::*;
//! let mut vector = vec![3u64; 100];
//! let n = vector.len();
//! (0..n).into_par_iter().for_each(|i| {
//!     vector[i] *= vector[i]; // vector mutably aliased across tasks
//! });
//! ```
//!
//! # Listing 4(e): Rayon expresses `Stride` safely
//!
//! ```
//! use rayon::prelude::*;
//! let mut vector = vec![3u64; 100];
//! vector.par_iter_mut().for_each(|vi| *vi *= *vi);
//! assert!(vector.iter().all(|&x| x == 9));
//! ```
//!
//! # Listing 4(f): a data race *through* the safe iterator → compile error
//!
//! ```compile_fail
//! use rayon::prelude::*;
//! let mut vector = vec![3u64; 100];
//! vector.par_iter_mut().enumerate().for_each(|(i, vi)| {
//!     *vi *= vector[i - 1]; // second (shared) borrow of vector
//! });
//! ```
//!
//! # Listing 6(c): naive `SngInd` → compile error
//!
//! ```compile_fail
//! use rayon::prelude::*;
//! let offsets: Vec<usize> = (0..100).rev().collect();
//! let input = vec![1u64; 100];
//! let mut out = vec![0u64; 100];
//! (0..out.len()).into_par_iter().for_each(|i| {
//!     out[offsets[i]] = input[i]; // indirect mutable aliasing
//! });
//! ```
//!
//! # Listing 6(f): this crate's checked expression compiles and runs
//!
//! ```
//! use rayon::prelude::*;
//! use rpb_fearless::ParIndIterMutExt;
//! let offsets: Vec<usize> = (0..100).rev().collect();
//! let input: Vec<u64> = (0..100).collect();
//! let mut out = vec![0u64; 100];
//! out.par_ind_iter_mut(&offsets)
//!     .enumerate()
//!     .for_each(|(i, oi)| *oi = input[i]);
//! assert_eq!(out[99], 0);
//! assert_eq!(out[0], 99);
//! ```
//!
//! # Listing 8(b)/(c): `&mut self` insert on a shared table → compile error
//!
//! The paper's point: even a *synchronized* `insert(&mut self, ..)` is
//! rejected, because Rust does not distinguish synchronized from
//! unsynchronized mutable borrows — the method must take `&self` and use
//! interior mutability.
//!
//! ```compile_fail
//! use std::sync::Mutex;
//! struct HashTable {
//!     table: Vec<Mutex<u64>>,
//! }
//! impl HashTable {
//!     fn insert(&mut self, v: u64) {
//!         *self.table[v as usize % self.table.len()].lock().unwrap() = v;
//!     }
//! }
//! let mut ht = HashTable { table: (0..8).map(|_| Mutex::new(0)).collect() };
//! std::thread::scope(|s| {
//!     s.spawn(|| ht.insert(1)); // first &mut borrow
//!     s.spawn(|| ht.insert(2)); // second &mut borrow -> error
//! });
//! ```
//!
//! # Listing 8(d): `&self` + interior mutability compiles
//!
//! ```
//! use std::sync::Mutex;
//! struct HashTable {
//!     table: Vec<Mutex<u64>>,
//! }
//! impl HashTable {
//!     fn insert(&self, v: u64) {
//!         *self.table[v as usize % self.table.len()].lock().unwrap() = v;
//!     }
//! }
//! let ht = HashTable { table: (0..8).map(|_| Mutex::new(0)).collect() };
//! std::thread::scope(|s| {
//!     s.spawn(|| ht.insert(1));
//!     s.spawn(|| ht.insert(2));
//! });
//! assert_eq!(*ht.table[1].lock().unwrap(), 1);
//! ```
//!
//! # The "benign race" (Sec. 5.2) → compile error without atomics
//!
//! All tasks write the same value, so the race *looks* benign — but the
//! compiler may legally split or transform the stores, so Rust (like the
//! C++ memory model) rejects it. See [`crate::benign`] for the accepted
//! relaxed-atomic version.
//!
//! ```compile_fail
//! use rayon::prelude::*;
//! let string = "abcabc";
//! let present = vec![0u8; 256];
//! string.as_bytes().par_iter().for_each(|&c| {
//!     present[c as usize] = 1; // unsynchronized write through &Vec
//! });
//! ```

// The module's content is its documentation; a smoke test keeps it honest.
#[cfg(test)]
mod tests {
    #[test]
    fn listing_4e_runs() {
        use rayon::prelude::*;
        let mut vector = vec![3u64; 100];
        vector.par_iter_mut().for_each(|vi| *vi *= *vi);
        assert!(vector.iter().all(|&x| x == 9));
    }
}
