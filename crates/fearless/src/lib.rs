//! # rpb-fearless
//!
//! The primary contribution of *"When Is Parallelism Fearless and Zero-Cost
//! with Rust?"* (SPAA '24): parallel iterators for **indirect write
//! patterns**, plus the paper's taxonomy of parallel access patterns and its
//! fearlessness spectrum.
//!
//! ## The problem
//!
//! Rust + Rayon make *regular* parallelism fearless: `par_iter_mut`
//! (`Stride`) and `par_chunks_mut` (`Block`) statically constrain each task
//! to disjoint parts of a shared collection. But two patterns ubiquitous in
//! irregular benchmarks have no safe expression:
//!
//! * **`SngInd`** — `out[offsets[i]] = f(i)`: tasks write through an
//!   indirection array that the *algorithm* guarantees has unique entries,
//!   but neither `rustc` nor cheap static checks can prove it.
//! * **`RngInd`** — `out[offsets[i]..offsets[i+1]] = f(i)`: tasks write
//!   contiguous chunks whose boundaries come from run-time data.
//!
//! ## The solution (Sec. 5.1 of the paper)
//!
//! * [`ParIndIterMutExt::par_ind_iter_mut`] validates offset **uniqueness**
//!   at run time, then hands each task a mutable reference to its unique
//!   element: *comfortable* (errors surface at run time, near their cause)
//!   but the check costs real work.
//! * [`ParIndIterMutExt::par_ind_iter_mut_unchecked`] skips the check:
//!   *scary*, equivalent to the C++ original.
//! * [`ParIndChunksMutExt::par_ind_chunks_mut`] validates that the chunk
//!   boundaries are **monotone** — an `O(k)` check that is effectively
//!   free — and yields disjoint `&mut [T]` chunks: *comfortable at ~zero
//!   cost*.
//!
//! Both are genuine Rayon [`IndexedParallelIterator`]s, so they compose with
//! `enumerate`, `zip`, `map`, etc.
//!
//! [`IndexedParallelIterator`]: rayon::iter::IndexedParallelIterator

pub mod benign;
pub mod fn_offsets;
pub mod listings;
pub mod mode;
pub mod pool;
pub mod proof;
pub mod registry;
pub mod rng_ind;
pub mod shared;
pub mod snd_ind;
pub mod taxonomy;

pub use fn_offsets::{ind_write_fn, transpose};
pub use mode::{ExecMode, ParseExecModeError, ALL_MODES};
pub use pool::PoolStats;
pub use proof::{
    validate_chunk_offsets_cached, validate_offsets_cached, ParIndProvedExt, ValidatedChunks,
    ValidatedOffsets,
};
pub use registry::{PatternCensus, PatternCount};
pub use rng_ind::{IndChunksError, ParIndChunksMut, ParIndChunksMutExt};
pub use shared::SharedMutSlice;
pub use snd_ind::{IndOffsetsError, ParIndIterMut, ParIndIterMutExt, UniquenessCheck};
pub use taxonomy::{DataStructure, Dispatch, Fearlessness, Operator, Pattern};
