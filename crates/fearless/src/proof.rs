//! Validation proofs — validate once, iterate many times.
//!
//! The hot call sites of the indirect-write patterns (isort passes,
//! suffix-array ranking rounds, bench repetitions) reuse one offsets array
//! across many rounds, yet re-validate it on every round. A proof token
//! amortizes the check to ~zero:
//!
//! * [`validate_offsets_cached`] runs the `SngInd` uniqueness check once
//!   and returns a [`ValidatedOffsets`] borrowing the offsets array.
//! * [`validate_chunk_offsets_cached`] does the same for the `RngInd`
//!   monotonicity check, returning a [`ValidatedChunks`].
//! * [`ParIndProvedExt`] constructs the indirect iterators from a proof,
//!   skipping validation entirely.
//!
//! Soundness rests on the shared borrow: the proof holds `&'a [usize]`, so
//! safe code cannot mutate the offsets while any proof is alive — the
//! borrow checker extends the run-time check's verdict across rounds. As a
//! second line of defence against *unsafe* mutation (raw pointers, foreign
//! code), debug builds fingerprint the offsets at validation time and
//! re-check the fingerprint whenever an iterator is built from the proof.

use crate::rng_ind::{validate_chunk_offsets, IndChunksError, ParIndChunksMut, ParIndChunksMutExt};
use crate::snd_ind::{
    validate_offsets, IndOffsetsError, ParIndIterMut, ParIndIterMutExt, UniquenessCheck,
};

/// FNV-1a over the offsets contents and the validated target length.
/// Debug-build insurance against unsafe mutation behind a live proof.
fn fingerprint(offsets: &[usize], len: usize) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut step = |v: u64| {
        for byte in v.to_le_bytes() {
            h = (h ^ byte as u64).wrapping_mul(FNV_PRIME);
        }
    };
    step(len as u64);
    for &o in offsets {
        step(o as u64);
    }
    h
}

/// Proof that an offsets array passed the `SngInd` uniqueness check
/// against a target length.
///
/// Holds a shared borrow of the offsets, so the array cannot change (in
/// safe code) while the proof is alive; the proof also captures the
/// array's pointer and length, plus a content fingerprint in debug builds.
pub struct ValidatedOffsets<'a> {
    offsets: &'a [usize],
    /// Target-slice length the offsets were validated against.
    len: usize,
    #[cfg(debug_assertions)]
    fingerprint: u64,
}

impl<'a> ValidatedOffsets<'a> {
    /// The validated offsets array.
    #[inline]
    pub fn offsets(&self) -> &'a [usize] {
        self.offsets
    }

    /// The target-slice length the offsets were validated against. Any
    /// slice at least this long can be scattered into through this proof.
    #[inline]
    pub fn target_len(&self) -> usize {
        self.len
    }

    /// Pointer identity of the validated array (what the proof is *about*).
    #[inline]
    pub fn as_ptr(&self) -> *const usize {
        self.offsets.as_ptr()
    }

    fn assert_untampered(&self) {
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            fingerprint(self.offsets, self.len),
            self.fingerprint,
            "offsets mutated after validation: the ValidatedOffsets proof is stale"
        );
    }

    /// Constructs a proof with a caller-supplied fingerprint, skipping
    /// validation. Exists so tests can simulate a stale proof (unsafe
    /// mutation behind the borrow).
    ///
    /// # Safety
    /// The caller asserts that `offsets` contains unique indices, all
    /// `< len` — exactly the contract [`validate_offsets_cached`] proves.
    /// A proof built from unvalidated offsets reaches
    /// [`ParIndIterMutExt::par_ind_iter_mut_unchecked`] through
    /// [`ParIndProvedExt::par_ind_iter_mut_proved`]: duplicates alias
    /// `&mut`, out-of-bounds offsets write past the slice — undefined
    /// behaviour. The debug-only fingerprint re-check is *insurance*, not
    /// a guard: release builds skip it entirely.
    #[doc(hidden)]
    pub unsafe fn from_parts_for_tests(
        offsets: &'a [usize],
        len: usize,
        fingerprint: u64,
    ) -> ValidatedOffsets<'a> {
        let _ = fingerprint;
        ValidatedOffsets {
            offsets,
            len,
            #[cfg(debug_assertions)]
            fingerprint,
        }
    }
}

/// Fingerprint of `(offsets, len)` as captured by proofs in debug builds.
#[doc(hidden)]
pub fn fingerprint_for_tests(offsets: &[usize], len: usize) -> u64 {
    fingerprint(offsets, len)
}

/// Runs the `SngInd` uniqueness check once and returns a reusable proof.
///
/// Equivalent to [`validate_offsets`] (same strategy resolution, same
/// [`IndOffsetsError`] values) but the verdict is carried by the returned
/// token instead of being consumed by a single iterator construction.
pub fn validate_offsets_cached(
    offsets: &[usize],
    len: usize,
    strategy: UniquenessCheck,
) -> Result<ValidatedOffsets<'_>, IndOffsetsError> {
    validate_offsets(offsets, len, strategy)?;
    rpb_obs::metrics::SNGIND_PROOF_BUILDS.add(1);
    Ok(ValidatedOffsets {
        offsets,
        len,
        #[cfg(debug_assertions)]
        fingerprint: fingerprint(offsets, len),
    })
}

/// Proof that a boundary array passed the `RngInd` monotonicity check
/// against a target length.
pub struct ValidatedChunks<'a> {
    offsets: &'a [usize],
    len: usize,
    #[cfg(debug_assertions)]
    fingerprint: u64,
}

impl<'a> ValidatedChunks<'a> {
    /// The validated chunk boundaries.
    #[inline]
    pub fn offsets(&self) -> &'a [usize] {
        self.offsets
    }

    /// The target-slice length the boundaries were validated against.
    #[inline]
    pub fn target_len(&self) -> usize {
        self.len
    }

    /// Pointer identity of the validated array.
    #[inline]
    pub fn as_ptr(&self) -> *const usize {
        self.offsets.as_ptr()
    }

    fn assert_untampered(&self) {
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            fingerprint(self.offsets, self.len),
            self.fingerprint,
            "boundaries mutated after validation: the ValidatedChunks proof is stale"
        );
    }
}

/// Runs the `RngInd` monotonicity check once and returns a reusable proof.
pub fn validate_chunk_offsets_cached(
    offsets: &[usize],
    len: usize,
) -> Result<ValidatedChunks<'_>, IndChunksError> {
    validate_chunk_offsets(offsets, len)?;
    rpb_obs::metrics::RNGIND_PROOF_BUILDS.add(1);
    Ok(ValidatedChunks {
        offsets,
        len,
        #[cfg(debug_assertions)]
        fingerprint: fingerprint(offsets, len),
    })
}

/// Proof-consuming constructors for the indirect iterators: validation is
/// skipped, its verdict supplied by the token.
pub trait ParIndProvedExt<T: Send> {
    /// [`ParIndIterMutExt::par_ind_iter_mut`] minus the check: the offsets
    /// were validated when `proof` was created.
    ///
    /// # Panics
    /// Panics if `self` is shorter than the length the proof validated
    /// against (the proof promises `offset < proof.target_len()` only).
    fn par_ind_iter_mut_proved<'a>(
        &'a mut self,
        proof: &ValidatedOffsets<'a>,
    ) -> ParIndIterMut<'a, T>;

    /// [`ParIndChunksMutExt::par_ind_chunks_mut`] minus the check.
    ///
    /// # Panics
    /// Panics if `self` is shorter than the length the proof validated
    /// against.
    fn par_ind_chunks_mut_proved<'a>(
        &'a mut self,
        proof: &ValidatedChunks<'a>,
    ) -> ParIndChunksMut<'a, T>;
}

impl<T: Send> ParIndProvedExt<T> for [T] {
    fn par_ind_iter_mut_proved<'a>(
        &'a mut self,
        proof: &ValidatedOffsets<'a>,
    ) -> ParIndIterMut<'a, T> {
        assert!(
            self.len() >= proof.target_len(),
            "par_ind_iter_mut_proved: target of length {} is shorter than the \
             validated length {}",
            self.len(),
            proof.target_len()
        );
        proof.assert_untampered();
        rpb_obs::metrics::SNGIND_PROOF_REUSES.add(1);
        // SAFETY: the proof certifies unique offsets `< target_len() <=
        // self.len()`, and its shared borrow keeps the array unchanged
        // since validation.
        unsafe { self.par_ind_iter_mut_unchecked(proof.offsets()) }
    }

    fn par_ind_chunks_mut_proved<'a>(
        &'a mut self,
        proof: &ValidatedChunks<'a>,
    ) -> ParIndChunksMut<'a, T> {
        assert!(
            self.len() >= proof.target_len(),
            "par_ind_chunks_mut_proved: target of length {} is shorter than the \
             validated length {}",
            self.len(),
            proof.target_len()
        );
        proof.assert_untampered();
        rpb_obs::metrics::SNGIND_PROOF_REUSES.add(1);
        // SAFETY: the proof certifies monotone boundaries `<= target_len()
        // <= self.len()`, unchanged since validation.
        unsafe { self.par_ind_chunks_mut_unchecked(proof.offsets()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;
    use rpb_parlay::seqdata::random_permutation;

    #[test]
    fn proof_scatter_matches_direct_scatter() {
        let n = if cfg!(miri) { 256 } else { 40_000 };
        let offsets = random_permutation(n, 13);
        let proof = validate_offsets_cached(&offsets, n, UniquenessCheck::Adaptive)
            .expect("permutation validates");
        assert_eq!(proof.target_len(), n);
        assert_eq!(proof.as_ptr(), offsets.as_ptr());
        let mut out = vec![0u64; n];
        // Several rounds through one proof — the amortized hot loop shape.
        for round in 1..=3u64 {
            out.par_ind_iter_mut_proved(&proof)
                .enumerate()
                .for_each(|(i, slot)| *slot = round * i as u64);
        }
        for i in 0..n {
            assert_eq!(out[offsets[i]], 3 * i as u64);
        }
    }

    #[test]
    fn invalid_offsets_never_yield_a_proof() {
        let err = validate_offsets_cached(&[1, 1], 4, UniquenessCheck::MarkTable).err();
        assert!(matches!(
            err,
            Some(IndOffsetsError::Duplicate { offset: 1, .. })
        ));
        let err = validate_offsets_cached(&[9], 4, UniquenessCheck::MarkTable).err();
        assert!(matches!(
            err,
            Some(IndOffsetsError::OutOfBounds { offset: 9, .. })
        ));
    }

    #[test]
    fn chunk_proof_round_trips() {
        let offsets = vec![0usize, 3, 3, 8, 10];
        let proof = validate_chunk_offsets_cached(&offsets, 10).expect("monotone");
        let mut v = vec![0u32; 10];
        v.par_ind_chunks_mut_proved(&proof)
            .enumerate()
            .for_each(|(i, c)| c.fill(i as u32 + 1));
        assert_eq!(v, vec![1, 1, 1, 3, 3, 3, 3, 3, 4, 4]);
    }

    #[test]
    fn non_monotone_never_yields_a_chunk_proof() {
        let err = validate_chunk_offsets_cached(&[0, 5, 4], 10).err();
        assert_eq!(err, Some(IndChunksError::NotMonotone { index: 2 }));
    }

    #[test]
    #[should_panic(expected = "shorter than the validated length")]
    fn proof_rejects_shorter_target() {
        let offsets = vec![0usize, 1, 2];
        let proof =
            validate_offsets_cached(&offsets, 3, UniquenessCheck::MarkTable).expect("valid");
        let mut out = vec![0u8; 2];
        out.par_ind_iter_mut_proved(&proof).for_each(|o| *o = 1);
    }

    #[test]
    fn proof_accepts_longer_target() {
        let offsets = vec![0usize, 1, 2];
        let proof =
            validate_offsets_cached(&offsets, 3, UniquenessCheck::MarkTable).expect("valid");
        let mut out = vec![0u8; 8];
        out.par_ind_iter_mut_proved(&proof).for_each(|o| *o = 1);
        assert_eq!(out, vec![1, 1, 1, 0, 0, 0, 0, 0]);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn stale_proof_is_caught_in_debug_builds() {
        // Simulate unsafe mutation behind a live proof: fingerprint the
        // pristine array, inject a duplicate, then build a proof claiming
        // the pristine fingerprint (the hidden ctor stands in for the
        // borrow a real tamperer would have bypassed).
        let mut offsets: Vec<usize> = (0..16).collect();
        let pristine = fingerprint_for_tests(&offsets, 16);
        offsets[7] = 3; // duplicate injected "after validation"
                        // SAFETY: deliberately violated — that is the property under test.
                        // The fingerprint re-check must panic before the iterator is built,
                        // so the unchecked scatter is never reached.
        let proof = unsafe { ValidatedOffsets::from_parts_for_tests(&offsets, 16, pristine) };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut out = vec![0u8; 16];
            // Construction alone must panic; the iterator is never consumed.
            let _unreached = out.par_ind_iter_mut_proved(&proof);
        }));
        assert!(
            result.is_err(),
            "debug build must reject an iterator built from a stale proof"
        );
    }
}
