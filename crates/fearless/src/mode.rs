//! The RPB suite's "switches to toggle unsafe parallel features".
//!
//! Every benchmark with irregular parallelism ships three variants keyed by
//! [`ExecMode`], matching the three solutions the paper weighs for `SngInd`
//! and `AW` (Sec. 5):
//!
//! * [`ExecMode::Unsafe`] — raw-pointer writes, no dynamic checks: the
//!   C++-equivalent configuration used for RPB's headline Fig. 4 numbers.
//! * [`ExecMode::Checked`] — interior-unsafe iterators with run-time
//!   validation (`par_ind_iter_mut` uniqueness checks): Fig. 5(a).
//! * [`ExecMode::Sync`] — synchronization instead of proofs of
//!   independence (relaxed atomics or mutexes): Fig. 5(b).

use crate::taxonomy::Fearlessness;

/// Which safety strategy a benchmark variant uses for its irregular phases.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Unsafe raw writes — fastest, *scared*.
    Unsafe,
    /// Dynamic checks via the `par_ind_*` iterators — *comfortable*.
    #[default]
    Checked,
    /// Unnecessary synchronization (atomics/mutexes) — *scared* but
    /// race-free.
    Sync,
}

/// All modes, in overhead order.
pub const ALL_MODES: [ExecMode; 3] = [ExecMode::Unsafe, ExecMode::Checked, ExecMode::Sync];

impl ExecMode {
    /// Where this strategy lands on the paper's fear spectrum for the
    /// irregular patterns it is applied to.
    pub fn fearlessness(self) -> Fearlessness {
        match self {
            ExecMode::Unsafe => Fearlessness::Scared,
            ExecMode::Checked => Fearlessness::Comfortable,
            // Data races are ruled out, but atomicity/order violations,
            // deadlock and livelock remain undetected (Observation 5).
            ExecMode::Sync => Fearlessness::Scared,
        }
    }

    /// True when this mode runs the `par_ind_*` run-time validations whose
    /// cost Fig. 5(a) measures — the mode the pooled mark tables
    /// ([`crate::pool`]) and validation proofs ([`crate::proof`]) speed up.
    /// `Unsafe` skips checks and `Sync` replaces them with synchronization,
    /// so fresh-vs-amortized check attribution only applies here.
    pub fn pays_validation(self) -> bool {
        matches!(self, ExecMode::Checked)
    }

    /// Short label used by the harness CLI and bench IDs.
    pub fn label(self) -> &'static str {
        match self {
            ExecMode::Unsafe => "unsafe",
            ExecMode::Checked => "checked",
            ExecMode::Sync => "sync",
        }
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Rejected [`ExecMode`] label, carrying the offending input so CLI
/// layers can echo it back alongside the accepted spellings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseExecModeError {
    input: String,
}

impl ParseExecModeError {
    /// The input that failed to parse, whitespace-trimmed.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl std::fmt::Display for ParseExecModeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown exec mode `{}`: valid modes are unsafe, checked, sync \
             (case-insensitive; `synchronized` is accepted for sync)",
            self.input
        )
    }
}

impl std::error::Error for ParseExecModeError {}

impl std::str::FromStr for ExecMode {
    type Err = ParseExecModeError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        match s.to_ascii_lowercase().as_str() {
            "unsafe" => Ok(ExecMode::Unsafe),
            "checked" => Ok(ExecMode::Checked),
            "sync" | "synchronized" => Ok(ExecMode::Sync),
            _ => Err(ParseExecModeError {
                input: s.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_labels() {
        for m in ALL_MODES {
            let parsed: ExecMode = m.label().parse().expect("parse");
            assert_eq!(parsed, m);
        }
        assert!("bogus".parse::<ExecMode>().is_err());
    }

    #[test]
    fn parse_is_case_insensitive_and_trims() {
        assert_eq!("UNSAFE".parse::<ExecMode>(), Ok(ExecMode::Unsafe));
        assert_eq!("Checked".parse::<ExecMode>(), Ok(ExecMode::Checked));
        assert_eq!(" sync\n".parse::<ExecMode>(), Ok(ExecMode::Sync));
        assert_eq!("Synchronized".parse::<ExecMode>(), Ok(ExecMode::Sync));
    }

    #[test]
    fn parse_error_names_input_and_valid_modes() {
        let err = " atomic ".parse::<ExecMode>().unwrap_err();
        assert_eq!(err.input(), "atomic");
        let msg = err.to_string();
        assert!(msg.contains("`atomic`"), "{msg}");
        for valid in ["unsafe", "checked", "sync"] {
            assert!(msg.contains(valid), "{msg} missing {valid}");
        }
    }

    #[test]
    fn only_checked_is_comfortable() {
        assert_eq!(ExecMode::Checked.fearlessness(), Fearlessness::Comfortable);
        assert_eq!(ExecMode::Unsafe.fearlessness(), Fearlessness::Scared);
        assert_eq!(ExecMode::Sync.fearlessness(), Fearlessness::Scared);
    }

    #[test]
    fn only_checked_pays_validation() {
        assert!(ExecMode::Checked.pays_validation());
        assert!(!ExecMode::Unsafe.pays_validation());
        assert!(!ExecMode::Sync.pays_validation());
    }
}
