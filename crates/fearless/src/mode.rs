//! The RPB suite's "switches to toggle unsafe parallel features".
//!
//! Every benchmark with irregular parallelism ships three variants keyed by
//! [`ExecMode`], matching the three solutions the paper weighs for `SngInd`
//! and `AW` (Sec. 5):
//!
//! * [`ExecMode::Unsafe`] — raw-pointer writes, no dynamic checks: the
//!   C++-equivalent configuration used for RPB's headline Fig. 4 numbers.
//! * [`ExecMode::Checked`] — interior-unsafe iterators with run-time
//!   validation (`par_ind_iter_mut` uniqueness checks): Fig. 5(a).
//! * [`ExecMode::Sync`] — synchronization instead of proofs of
//!   independence (relaxed atomics or mutexes): Fig. 5(b).

use crate::taxonomy::Fearlessness;

/// Which safety strategy a benchmark variant uses for its irregular phases.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Unsafe raw writes — fastest, *scared*.
    Unsafe,
    /// Dynamic checks via the `par_ind_*` iterators — *comfortable*.
    #[default]
    Checked,
    /// Unnecessary synchronization (atomics/mutexes) — *scared* but
    /// race-free.
    Sync,
}

/// All modes, in overhead order.
pub const ALL_MODES: [ExecMode; 3] = [ExecMode::Unsafe, ExecMode::Checked, ExecMode::Sync];

impl ExecMode {
    /// Where this strategy lands on the paper's fear spectrum for the
    /// irregular patterns it is applied to.
    pub fn fearlessness(self) -> Fearlessness {
        match self {
            ExecMode::Unsafe => Fearlessness::Scared,
            ExecMode::Checked => Fearlessness::Comfortable,
            // Data races are ruled out, but atomicity/order violations,
            // deadlock and livelock remain undetected (Observation 5).
            ExecMode::Sync => Fearlessness::Scared,
        }
    }

    /// True when this mode runs the `par_ind_*` run-time validations whose
    /// cost Fig. 5(a) measures — the mode the pooled mark tables
    /// ([`crate::pool`]) and validation proofs ([`crate::proof`]) speed up.
    /// `Unsafe` skips checks and `Sync` replaces them with synchronization,
    /// so fresh-vs-amortized check attribution only applies here.
    pub fn pays_validation(self) -> bool {
        matches!(self, ExecMode::Checked)
    }

    /// Short label used by the harness CLI and bench IDs.
    pub fn label(self) -> &'static str {
        match self {
            ExecMode::Unsafe => "unsafe",
            ExecMode::Checked => "checked",
            ExecMode::Sync => "sync",
        }
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for ExecMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "unsafe" => Ok(ExecMode::Unsafe),
            "checked" => Ok(ExecMode::Checked),
            "sync" | "synchronized" => Ok(ExecMode::Sync),
            other => Err(format!("unknown exec mode: {other} (unsafe|checked|sync)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_labels() {
        for m in ALL_MODES {
            let parsed: ExecMode = m.label().parse().expect("parse");
            assert_eq!(parsed, m);
        }
        assert!("bogus".parse::<ExecMode>().is_err());
    }

    #[test]
    fn only_checked_is_comfortable() {
        assert_eq!(ExecMode::Checked.fearlessness(), Fearlessness::Comfortable);
        assert_eq!(ExecMode::Unsafe.fearlessness(), Fearlessness::Scared);
        assert_eq!(ExecMode::Sync.fearlessness(), Fearlessness::Scared);
    }

    #[test]
    fn only_checked_pays_validation() {
        assert!(ExecMode::Checked.pays_validation());
        assert!(!ExecMode::Unsafe.pays_validation());
        assert!(!ExecMode::Sync.pays_validation());
    }
}
