//! The paper's taxonomy of task-level parallelism (Fig. 1, Fig. 2, Table 3).
//!
//! Three dimensions determine the regularity of a parallel phase: the shape
//! of the shared **data structure**, the task **operator** on it, and the
//! **set-of-tasks** properties (ordering + dispatch). The cross product
//! collapses, for the purposes of Rust support, into seven concrete *write
//! patterns* ([`Pattern`]) that each map to a recommended expression and a
//! position on the fearlessness spectrum ([`Fearlessness`]).

use std::fmt;

/// How shared data is shaped (Fig. 1 "Data Structure" axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataStructure {
    /// Arrays/matrices: topology described by a few parameters.
    Structured,
    /// Arbitrary graphs/meshes: verbose topology (e.g., CSR).
    Unstructured,
}

/// What tasks do to shared data within a phase (Fig. 1 "Operator" axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operator {
    /// No task writes the structure.
    ReadOnly,
    /// Each task reads/writes a task-private sub-element.
    LocalReadWrite,
    /// Tasks read and write potentially overlapping sub-elements.
    ArbitraryReadWrite,
}

/// When the set of tasks is known (Fig. 1 "Dispatching" axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dispatch {
    /// Task set known before the parallel phase starts.
    Static,
    /// Tasks discover and schedule new work on the fly.
    Dynamic,
}

/// The paper's spectrum of fear (Fig. 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Fearlessness {
    /// Concurrency errors get caught at compile time.
    Fearless,
    /// Errors get caught at run time, with symptoms close to causes.
    Comfortable,
    /// Errors may happen without being detected.
    Scared,
}

impl Fearlessness {
    /// One-letter code used in Table 3 ("F"/"C"/"S").
    pub fn code(self) -> char {
        match self {
            Fearlessness::Fearless => 'F',
            Fearlessness::Comfortable => 'C',
            Fearlessness::Scared => 'S',
        }
    }
}

impl fmt::Display for Fearlessness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Fearlessness::Fearless => "fearless",
            Fearlessness::Comfortable => "comfortable",
            Fearlessness::Scared => "scared",
        };
        f.write_str(s)
    }
}

/// The seven concrete access patterns of Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pattern {
    /// Read only (AXM trivially satisfied).
    RO,
    /// Striding writes: `array[i] = f()`.
    Stride,
    /// Blocking writes: `array[i*size..(i+1)*size] = f()`.
    Block,
    /// Divide and conquer (nested fork-join).
    DandC,
    /// Single-valued indirection: `array[b[i]] = f()`.
    SngInd,
    /// Ranged indirection: `array[b[i]..b[i+1]] = f()`.
    RngInd,
    /// Arbitrary writes (overlapping read/write sets).
    AW,
}

/// All patterns in Table 3 order.
pub const ALL_PATTERNS: [Pattern; 7] = [
    Pattern::RO,
    Pattern::Stride,
    Pattern::Block,
    Pattern::DandC,
    Pattern::SngInd,
    Pattern::RngInd,
    Pattern::AW,
];

impl Pattern {
    /// Table 3 "Abbr." column.
    pub fn abbrev(self) -> &'static str {
        match self {
            Pattern::RO => "RO",
            Pattern::Stride => "Stride",
            Pattern::Block => "Block",
            Pattern::DandC => "D&C",
            Pattern::SngInd => "SngInd",
            Pattern::RngInd => "RngInd",
            Pattern::AW => "AW",
        }
    }

    /// Table 3 "Write pattern" column.
    pub fn description(self) -> &'static str {
        match self {
            Pattern::RO => "Read only (AXM)",
            Pattern::Stride => "Striding",
            Pattern::Block => "Blocking",
            Pattern::DandC => "Divide and Conquer",
            Pattern::SngInd => "Single-valued indirection",
            Pattern::RngInd => "Ranged indirection",
            Pattern::AW => "Arbitrary writes",
        }
    }

    /// Table 3 "Parallel expression" column: the recommended Rust/Rayon/RPB
    /// construct for the pattern.
    pub fn expression(self) -> &'static str {
        match self {
            Pattern::RO => "spawn (Rust) / par_iter (Rayon)",
            Pattern::Stride => "par_iter_mut (Rayon)",
            Pattern::Block => "par_chunks_mut (Rayon)",
            Pattern::DandC => "join (Rayon)",
            Pattern::SngInd => "par_ind_iter_mut (ours)",
            Pattern::RngInd => "par_ind_chunks_mut (ours)",
            Pattern::AW => "mix of above",
        }
    }

    /// Table 3 "Fearlessness" column.
    pub fn fearlessness(self) -> Fearlessness {
        match self {
            Pattern::RO | Pattern::Stride | Pattern::Block | Pattern::DandC => {
                Fearlessness::Fearless
            }
            Pattern::SngInd | Pattern::RngInd => Fearlessness::Comfortable,
            Pattern::AW => Fearlessness::Scared,
        }
    }

    /// Whether the paper counts this pattern as *irregular* (§7.2: SngInd +
    /// RngInd + AW make up the 29%).
    pub fn is_irregular(self) -> bool {
        matches!(self, Pattern::SngInd | Pattern::RngInd | Pattern::AW)
    }

    /// The Fig. 3 support bucket: safe Rust, interior-unsafe + static
    /// checks, or unsupported/dynamic checks.
    pub fn support_bucket(self) -> &'static str {
        match self {
            Pattern::RO => "safe Rust",
            Pattern::Stride | Pattern::Block | Pattern::DandC => "interior-unsafe + static checks",
            Pattern::SngInd | Pattern::RngInd | Pattern::AW => "not supported or dynamic checks",
        }
    }

    /// Classifies a phase along the paper's Fig. 1 axes.
    pub fn classify(self) -> (DataStructure, Operator) {
        match self {
            Pattern::RO => (DataStructure::Structured, Operator::ReadOnly),
            Pattern::Stride | Pattern::Block | Pattern::DandC => {
                (DataStructure::Structured, Operator::LocalReadWrite)
            }
            Pattern::SngInd | Pattern::RngInd => {
                (DataStructure::Unstructured, Operator::LocalReadWrite)
            }
            Pattern::AW => (DataStructure::Unstructured, Operator::ArbitraryReadWrite),
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

impl std::str::FromStr for Pattern {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "ro" => Ok(Pattern::RO),
            "stride" => Ok(Pattern::Stride),
            "block" => Ok(Pattern::Block),
            "d&c" | "dandc" | "dc" => Ok(Pattern::DandC),
            "sngind" => Ok(Pattern::SngInd),
            "rngind" => Ok(Pattern::RngInd),
            "aw" => Ok(Pattern::AW),
            other => Err(format!("unknown pattern: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_fearlessness_matches_paper() {
        assert_eq!(Pattern::RO.fearlessness(), Fearlessness::Fearless);
        assert_eq!(Pattern::Stride.fearlessness(), Fearlessness::Fearless);
        assert_eq!(Pattern::Block.fearlessness(), Fearlessness::Fearless);
        assert_eq!(Pattern::DandC.fearlessness(), Fearlessness::Fearless);
        assert_eq!(Pattern::SngInd.fearlessness(), Fearlessness::Comfortable);
        assert_eq!(Pattern::RngInd.fearlessness(), Fearlessness::Comfortable);
        assert_eq!(Pattern::AW.fearlessness(), Fearlessness::Scared);
    }

    #[test]
    fn irregular_set_matches_section_7_2() {
        let irregular: Vec<Pattern> = ALL_PATTERNS
            .iter()
            .copied()
            .filter(|p| p.is_irregular())
            .collect();
        assert_eq!(
            irregular,
            vec![Pattern::SngInd, Pattern::RngInd, Pattern::AW]
        );
    }

    #[test]
    fn codes_are_fcs() {
        assert_eq!(Fearlessness::Fearless.code(), 'F');
        assert_eq!(Fearlessness::Comfortable.code(), 'C');
        assert_eq!(Fearlessness::Scared.code(), 'S');
    }

    #[test]
    fn parse_round_trips() {
        for p in ALL_PATTERNS {
            let parsed: Pattern = p.abbrev().parse().expect("parse");
            assert_eq!(parsed, p);
        }
    }

    #[test]
    fn aw_is_arbitrary_on_unstructured() {
        assert_eq!(
            Pattern::AW.classify(),
            (DataStructure::Unstructured, Operator::ArbitraryReadWrite)
        );
    }

    #[test]
    fn spectrum_is_ordered() {
        assert!(Fearlessness::Fearless < Fearlessness::Comfortable);
        assert!(Fearlessness::Comfortable < Fearlessness::Scared);
    }
}
