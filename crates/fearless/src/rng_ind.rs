//! `par_ind_chunks_mut` — the paper's interior-unsafe iterator for the
//! **ranged indirect write** pattern (`RngInd`,
//! `out[offsets[i]..offsets[i+1]] = f(i)`, Listing 7(c)).
//!
//! Unlike `SngInd`, the prevailing form of this pattern has chunk order
//! aligned with task iteration order, so non-overlap follows from a *cheap*
//! `O(k)` monotonicity check on the `k+1` boundaries — comfort at
//! effectively zero cost, which is why the paper uses the checked form even
//! in its performance-tuned RPB configuration.

use rayon::iter::plumbing::{bridge, Consumer, Producer, ProducerCallback, UnindexedConsumer};
use rayon::iter::{IndexedParallelIterator, ParallelIterator};

use crate::shared::SharedMutSlice;

/// Validation failure for a chunk-boundary array.
///
/// When an input has several faults, the reported *variant* is
/// deterministic — [`OutOfBounds`](Self::OutOfBounds) takes priority over
/// [`NotMonotone`](Self::NotMonotone) — but which of several same-variant
/// faults is reported may vary between runs (the validation sweep is
/// parallel).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndChunksError {
    /// `offsets[index] < offsets[index-1]`.
    NotMonotone { index: usize },
    /// `offsets[index] > len`.
    OutOfBounds {
        index: usize,
        offset: usize,
        len: usize,
    },
}

impl std::fmt::Display for IndChunksError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            IndChunksError::NotMonotone { index } => {
                write!(
                    f,
                    "offsets[{index}] decreases; chunk boundaries must be monotone"
                )
            }
            IndChunksError::OutOfBounds { index, offset, len } => {
                write!(f, "offsets[{index}] = {offset} exceeds slice length {len}")
            }
        }
    }
}

impl std::error::Error for IndChunksError {}

/// Parallel iterator over `&mut out[offsets[i]..offsets[i+1]]` for
/// `i in 0..offsets.len()-1`.
pub struct ParIndChunksMut<'a, T: Send> {
    data: SharedMutSlice<'a, T>,
    /// `k+1` boundaries for `k` chunks.
    offsets: &'a [usize],
}

/// Extension trait adding `par_ind_chunks_mut` to slices.
pub trait ParIndChunksMutExt<T: Send> {
    /// Checked construction: verifies `offsets` is monotonically
    /// non-decreasing and bounded by `self.len()` (an `O(k)` parallel
    /// check), then yields the `offsets.len()-1` disjoint chunks.
    ///
    /// Edge cases: an empty or single-element `offsets` yields zero
    /// chunks; an empty slice accepts only all-zero boundaries (yielding
    /// empty chunks) and rejects anything else as out of bounds. ZST
    /// elements chunk like any other `T`.
    ///
    /// # Panics
    /// Panics with the offending boundary index if validation fails.
    fn par_ind_chunks_mut<'a>(&'a mut self, offsets: &'a [usize]) -> ParIndChunksMut<'a, T>;

    /// Non-panicking form of [`ParIndChunksMutExt::par_ind_chunks_mut`].
    fn try_par_ind_chunks_mut<'a>(
        &'a mut self,
        offsets: &'a [usize],
    ) -> Result<ParIndChunksMut<'a, T>, IndChunksError>;

    /// Unchecked construction — the *scary* tier, and the substrate the
    /// [`crate::proof::ValidatedChunks`] proof token builds on.
    ///
    /// # Safety
    /// `offsets` must be monotonically non-decreasing with every boundary
    /// `<= self.len()`.
    unsafe fn par_ind_chunks_mut_unchecked<'a>(
        &'a mut self,
        offsets: &'a [usize],
    ) -> ParIndChunksMut<'a, T>;
}

/// Validates boundaries: monotone and bounded.
///
/// Telemetry (feature `obs`): records the check's wall time, boundary
/// count, and failures — evidence that this check really is the ~free one
/// the paper claims.
pub fn validate_chunk_offsets(offsets: &[usize], len: usize) -> Result<(), IndChunksError> {
    use rpb_obs::metrics as obs;
    rpb_obs::span!(obs::RNGIND_CHECK_NS);
    obs::RNGIND_CHECKS.add(1);
    obs::RNGIND_BOUNDARIES_VALIDATED.add(offsets.len() as u64);
    let result = validate_chunk_offsets_inner(offsets, len);
    if result.is_err() {
        obs::RNGIND_CHECK_FAILURES.add(1);
    }
    result
}

fn validate_chunk_offsets_inner(offsets: &[usize], len: usize) -> Result<(), IndChunksError> {
    use rayon::prelude::*;
    if len == 0 {
        // An empty target admits only all-zero boundaries (any number of
        // empty chunks). Resolve this sequentially so the reported index
        // is deterministic.
        return match offsets.iter().position(|&o| o > 0) {
            None => Ok(()),
            Some(index) => Err(IndChunksError::OutOfBounds {
                index,
                offset: offsets[index],
                len,
            }),
        };
    }
    // Bounds and monotonicity fused into one indexed sweep: boundary `i`
    // checks itself and its predecessor, so every adjacent pair is covered
    // without a second `windows` pass.
    let err = offsets
        .par_iter()
        .enumerate()
        .find_map_any(|(index, &offset)| {
            if offset > len {
                Some(IndChunksError::OutOfBounds { index, offset, len })
            } else if index > 0 && offsets[index - 1] > offset {
                Some(IndChunksError::NotMonotone { index })
            } else {
                None
            }
        });
    match err {
        None => Ok(()),
        Some(e @ IndChunksError::OutOfBounds { .. }) => Err(e),
        Some(non_monotone) => {
            // The parallel sweep reports whichever fault some thread hit
            // first. When an out-of-bounds boundary coexists with the
            // non-monotone pair, prefer it deterministically (first by
            // index), matching the historical bounds-then-monotone order —
            // error path only, so the rescan is free in the success case.
            match offsets.iter().enumerate().find(|&(_, &o)| o > len) {
                Some((index, &offset)) => Err(IndChunksError::OutOfBounds { index, offset, len }),
                None => Err(non_monotone),
            }
        }
    }
}

impl<T: Send> ParIndChunksMutExt<T> for [T] {
    fn par_ind_chunks_mut<'a>(&'a mut self, offsets: &'a [usize]) -> ParIndChunksMut<'a, T> {
        match self.try_par_ind_chunks_mut(offsets) {
            Ok(it) => it,
            Err(e) => panic!("par_ind_chunks_mut: {e}"),
        }
    }

    fn try_par_ind_chunks_mut<'a>(
        &'a mut self,
        offsets: &'a [usize],
    ) -> Result<ParIndChunksMut<'a, T>, IndChunksError> {
        validate_chunk_offsets(offsets, self.len())?;
        // SAFETY: boundaries proven monotone and bounded just above.
        Ok(unsafe { self.par_ind_chunks_mut_unchecked(offsets) })
    }

    // SAFETY: contract documented on the trait declaration — boundaries
    // must be monotone and bounded by the slice length.
    unsafe fn par_ind_chunks_mut_unchecked<'a>(
        &'a mut self,
        offsets: &'a [usize],
    ) -> ParIndChunksMut<'a, T> {
        ParIndChunksMut {
            data: SharedMutSlice::new(self),
            offsets,
        }
    }
}

impl<'a, T: Send + 'a> ParallelIterator for ParIndChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn drive_unindexed<C>(self, consumer: C) -> C::Result
    where
        C: UnindexedConsumer<Self::Item>,
    {
        bridge(self, consumer)
    }

    fn opt_len(&self) -> Option<usize> {
        Some(self.offsets.len().saturating_sub(1))
    }
}

impl<'a, T: Send + 'a> IndexedParallelIterator for ParIndChunksMut<'a, T> {
    fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    fn drive<C: Consumer<Self::Item>>(self, consumer: C) -> C::Result {
        bridge(self, consumer)
    }

    fn with_producer<CB: ProducerCallback<Self::Item>>(self, callback: CB) -> CB::Output {
        callback.callback(ChunkProducer {
            data: self.data,
            offsets: self.offsets,
        })
    }
}

struct ChunkProducer<'a, T: Send> {
    data: SharedMutSlice<'a, T>,
    offsets: &'a [usize],
}

impl<'a, T: Send + 'a> Producer for ChunkProducer<'a, T> {
    type Item = &'a mut [T];
    type IntoIter = ChunkIter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        // A leaf task starts consuming: attribute its chunks to the
        // executing thread (task-imbalance telemetry).
        rpb_obs::metrics::RNGIND_CHUNKS.add(self.offsets.len().saturating_sub(1) as u64);
        ChunkIter {
            data: self.data,
            offsets: self.offsets,
        }
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        // Chunk i spans offsets[i]..offsets[i+1]; splitting k chunks at
        // `index` shares the boundary offsets[index] between both halves.
        // With monotone boundaries the halves' element ranges stay disjoint
        // — this is the "check when Rayon splits the iterator" invariant
        // from the paper, upheld structurally here.
        debug_assert!(index < self.offsets.len());
        let l = &self.offsets[..=index];
        let r = &self.offsets[index..];
        (
            ChunkProducer {
                data: self.data,
                offsets: l,
            },
            ChunkProducer {
                data: self.data,
                offsets: r,
            },
        )
    }
}

/// Sequential iterator yielding each boundary-delimited chunk.
pub struct ChunkIter<'a, T: Send> {
    data: SharedMutSlice<'a, T>,
    offsets: &'a [usize],
}

impl<'a, T: Send> Iterator for ChunkIter<'a, T> {
    type Item = &'a mut [T];

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.offsets.len() < 2 {
            return None;
        }
        let (start, end) = (self.offsets[0], self.offsets[1]);
        self.offsets = &self.offsets[1..];
        // SAFETY: constructor validated monotone, bounded boundaries; each
        // half-open range is produced exactly once across all tasks.
        Some(unsafe { self.data.slice_mut(start, end) })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.offsets.len().saturating_sub(1);
        (n, Some(n))
    }
}

impl<T: Send> ExactSizeIterator for ChunkIter<'_, T> {}

impl<T: Send> DoubleEndedIterator for ChunkIter<'_, T> {
    #[inline]
    fn next_back(&mut self) -> Option<Self::Item> {
        let k = self.offsets.len();
        if k < 2 {
            return None;
        }
        let (start, end) = (self.offsets[k - 2], self.offsets[k - 1]);
        self.offsets = &self.offsets[..k - 1];
        // SAFETY: as in `next`.
        Some(unsafe { self.data.slice_mut(start, end) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn chunks_cover_ranges() {
        let mut v = vec![0u32; 10];
        let offsets = vec![0, 3, 3, 7, 10];
        v.par_ind_chunks_mut(&offsets)
            .enumerate()
            .for_each(|(i, chunk)| chunk.fill(i as u32 + 1));
        assert_eq!(v, vec![1, 1, 1, 3, 3, 3, 3, 4, 4, 4]);
    }

    #[test]
    fn leading_gap_is_untouched() {
        let mut v = vec![9u32; 6];
        let offsets = vec![2, 4, 6];
        v.par_ind_chunks_mut(&offsets).for_each(|c| c.fill(0));
        assert_eq!(v, vec![9, 9, 0, 0, 0, 0]);
    }

    #[test]
    fn large_parallel_fill_matches_sequential() {
        let n = if cfg!(miri) { 512 } else { 200_000 };
        // Boundaries every variable-length step.
        let mut offsets = vec![0usize];
        let mut x = 0usize;
        let mut k = 0usize;
        while x < n {
            x = (x + 1 + (k * 7) % 23).min(n);
            offsets.push(x);
            k += 1;
        }
        let mut v = vec![0u64; n];
        v.par_ind_chunks_mut(&offsets)
            .enumerate()
            .for_each(|(i, chunk)| chunk.fill(i as u64));
        // Sequential replay.
        let mut want = vec![0u64; n];
        for i in 0..offsets.len() - 1 {
            want[offsets[i]..offsets[i + 1]].fill(i as u64);
        }
        assert_eq!(v, want);
    }

    #[test]
    fn non_monotone_is_rejected() {
        let mut v = vec![0u8; 10];
        let offsets = vec![0, 5, 4, 10];
        let err = v.try_par_ind_chunks_mut(&offsets).err();
        assert_eq!(err, Some(IndChunksError::NotMonotone { index: 2 }));
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let mut v = vec![0u8; 10];
        let offsets = vec![0, 11];
        let err = v.try_par_ind_chunks_mut(&offsets).err();
        assert_eq!(
            err,
            Some(IndChunksError::OutOfBounds {
                index: 1,
                offset: 11,
                len: 10
            })
        );
    }

    #[test]
    fn multi_fault_boundaries_prefer_out_of_bounds() {
        let mut v = vec![0u8; 10];
        // offsets[1] exceeds the slice AND offsets[2] decreases: the
        // reported variant must deterministically be OutOfBounds.
        let offsets = vec![0, 11, 4, 10];
        for _ in 0..8 {
            let err = v.try_par_ind_chunks_mut(&offsets).err();
            assert_eq!(
                err,
                Some(IndChunksError::OutOfBounds {
                    index: 1,
                    offset: 11,
                    len: 10
                })
            );
        }
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn checked_panics_on_decreasing() {
        let mut v = vec![0u8; 4];
        let offsets = vec![3, 1];
        v.par_ind_chunks_mut(&offsets).for_each(|c| c.fill(1));
    }

    #[test]
    fn empty_offsets_yield_no_chunks() {
        let mut v = vec![1u8; 4];
        let offsets: Vec<usize> = vec![];
        assert_eq!(v.par_ind_chunks_mut(&offsets).count(), 0);
        let offsets = vec![2];
        assert_eq!(v.par_ind_chunks_mut(&offsets).count(), 0);
    }

    #[test]
    fn zero_length_chunks_are_fine() {
        let mut v = vec![0u8; 4];
        let offsets = vec![1, 1, 1, 3];
        let lens: Vec<usize> = v.par_ind_chunks_mut(&offsets).map(|c| c.len()).collect();
        assert_eq!(lens, vec![0, 0, 2]);
    }

    #[test]
    fn empty_target_all_zero_boundaries_ok() {
        // An empty slice supports any number of empty chunks.
        let mut v: Vec<u64> = vec![];
        let offsets = vec![0, 0, 0];
        let lens: Vec<usize> = v.par_ind_chunks_mut(&offsets).map(|c| c.len()).collect();
        assert_eq!(lens, vec![0, 0]);
    }

    #[test]
    fn empty_target_nonzero_boundary_rejected() {
        let mut v: Vec<u64> = vec![];
        let err = v.try_par_ind_chunks_mut(&[0, 1]).err();
        assert_eq!(
            err,
            Some(IndChunksError::OutOfBounds {
                index: 1,
                offset: 1,
                len: 0
            })
        );
        // Deterministic first-by-index reporting on the empty target.
        let err = v.try_par_ind_chunks_mut(&[0, 2, 1]).err();
        assert_eq!(
            err,
            Some(IndChunksError::OutOfBounds {
                index: 1,
                offset: 2,
                len: 0
            })
        );
    }

    #[test]
    fn zst_chunks_fill() {
        let mut v = vec![(); 10];
        let offsets = vec![0, 4, 4, 10];
        let lens: Vec<usize> = v.par_ind_chunks_mut(&offsets).map(|c| c.len()).collect();
        assert_eq!(lens, vec![4, 0, 6]);
        // Writes through the chunks are fine too.
        v.par_ind_chunks_mut(&offsets).for_each(|chunk| {
            for slot in chunk {
                *slot = ();
            }
        });
    }

    #[test]
    fn composes_with_zip() {
        let mut v = vec![0u16; 9];
        let offsets = vec![0, 2, 5, 9];
        let fills = vec![7u16, 8, 9];
        v.par_ind_chunks_mut(&offsets)
            .zip(fills.par_iter())
            .for_each(|(chunk, &f)| chunk.fill(f));
        assert_eq!(v, vec![7, 7, 8, 8, 8, 9, 9, 9, 9]);
    }

    #[test]
    fn rev_works() {
        let mut v = vec![0u8; 6];
        let offsets = vec![0, 2, 4, 6];
        v.par_ind_chunks_mut(&offsets)
            .rev()
            .enumerate()
            .for_each(|(k, chunk)| chunk.fill(k as u8 + 1));
        assert_eq!(v, vec![3, 3, 2, 2, 1, 1]);
    }
}
