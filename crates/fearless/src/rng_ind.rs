//! `par_ind_chunks_mut` — the paper's interior-unsafe iterator for the
//! **ranged indirect write** pattern (`RngInd`,
//! `out[offsets[i]..offsets[i+1]] = f(i)`, Listing 7(c)).
//!
//! Unlike `SngInd`, the prevailing form of this pattern has chunk order
//! aligned with task iteration order, so non-overlap follows from a *cheap*
//! `O(k)` monotonicity check on the `k+1` boundaries — comfort at
//! effectively zero cost, which is why the paper uses the checked form even
//! in its performance-tuned RPB configuration.

use rayon::iter::plumbing::{bridge, Consumer, Producer, ProducerCallback, UnindexedConsumer};
use rayon::iter::{IndexedParallelIterator, ParallelIterator};

use crate::shared::SharedMutSlice;

/// Validation failure for a chunk-boundary array.
///
/// When an input has several faults, the reported *variant* is
/// deterministic — [`OutOfBounds`](Self::OutOfBounds) takes priority over
/// [`NotMonotone`](Self::NotMonotone) — but which of several same-variant
/// faults is reported may vary between runs (the validation sweep is
/// parallel).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndChunksError {
    /// `offsets[index] < offsets[index-1]`.
    NotMonotone { index: usize },
    /// `offsets[index] > len`.
    OutOfBounds {
        index: usize,
        offset: usize,
        len: usize,
    },
}

impl std::fmt::Display for IndChunksError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            IndChunksError::NotMonotone { index } => {
                write!(
                    f,
                    "offsets[{index}] decreases; chunk boundaries must be monotone"
                )
            }
            IndChunksError::OutOfBounds { index, offset, len } => {
                write!(f, "offsets[{index}] = {offset} exceeds slice length {len}")
            }
        }
    }
}

impl std::error::Error for IndChunksError {}

/// Parallel iterator over `&mut out[offsets[i]..offsets[i+1]]` for
/// `i in 0..offsets.len()-1`.
pub struct ParIndChunksMut<'a, T: Send> {
    data: SharedMutSlice<'a, T>,
    /// `k+1` boundaries for `k` chunks.
    offsets: &'a [usize],
}

/// Extension trait adding `par_ind_chunks_mut` to slices.
pub trait ParIndChunksMutExt<T: Send> {
    /// Checked construction: verifies `offsets` is monotonically
    /// non-decreasing and bounded by `self.len()` (an `O(k)` parallel
    /// check), then yields the `offsets.len()-1` disjoint chunks.
    ///
    /// Edge cases: an empty or single-element `offsets` yields zero
    /// chunks; an empty slice accepts only all-zero boundaries (yielding
    /// empty chunks) and rejects anything else as out of bounds. ZST
    /// elements chunk like any other `T`.
    ///
    /// # Panics
    /// Panics with the offending boundary index if validation fails.
    fn par_ind_chunks_mut<'a>(&'a mut self, offsets: &'a [usize]) -> ParIndChunksMut<'a, T>;

    /// Non-panicking form of [`ParIndChunksMutExt::par_ind_chunks_mut`].
    fn try_par_ind_chunks_mut<'a>(
        &'a mut self,
        offsets: &'a [usize],
    ) -> Result<ParIndChunksMut<'a, T>, IndChunksError>;

    /// Unchecked construction — the *scary* tier, and the substrate the
    /// [`crate::proof::ValidatedChunks`] proof token builds on.
    ///
    /// # Safety
    /// `offsets` must be monotonically non-decreasing with every boundary
    /// `<= self.len()`.
    unsafe fn par_ind_chunks_mut_unchecked<'a>(
        &'a mut self,
        offsets: &'a [usize],
    ) -> ParIndChunksMut<'a, T>;
}

/// Validates boundaries: monotone and bounded.
///
/// Telemetry (feature `obs`): records the check's wall time, boundary
/// count, and failures — evidence that this check really is the ~free one
/// the paper claims.
pub fn validate_chunk_offsets(offsets: &[usize], len: usize) -> Result<(), IndChunksError> {
    use rpb_obs::metrics as obs;
    rpb_obs::span!(obs::RNGIND_CHECK_NS);
    obs::RNGIND_CHECKS.add(1);
    obs::RNGIND_BOUNDARIES_VALIDATED.add(offsets.len() as u64);
    let result = validate_chunk_offsets_inner(offsets, len);
    if result.is_err() {
        obs::RNGIND_CHECK_FAILURES.add(1);
    }
    result
}

fn validate_chunk_offsets_inner(offsets: &[usize], len: usize) -> Result<(), IndChunksError> {
    use rayon::prelude::*;
    if len == 0 {
        // An empty target admits only all-zero boundaries (any number of
        // empty chunks). Resolve this sequentially so the reported index
        // is deterministic.
        return match offsets.iter().position(|&o| o > 0) {
            None => Ok(()),
            Some(index) => Err(IndChunksError::OutOfBounds {
                index,
                offset: offsets[index],
                len,
            }),
        };
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64", target_pointer_width = "64"))]
    if rpb_parlay::simd::simd_enabled() {
        return validate_chunk_offsets_simd(offsets, len);
    }
    // Bounds and monotonicity fused into one indexed sweep: boundary `i`
    // checks itself and its predecessor, so every adjacent pair is covered
    // without a second `windows` pass.
    let err = offsets
        .par_iter()
        .enumerate()
        .find_map_any(|(index, &offset)| {
            if offset > len {
                Some(IndChunksError::OutOfBounds { index, offset, len })
            } else if index > 0 && offsets[index - 1] > offset {
                Some(IndChunksError::NotMonotone { index })
            } else {
                None
            }
        });
    match err {
        None => Ok(()),
        Some(e @ IndChunksError::OutOfBounds { .. }) => Err(e),
        Some(non_monotone) => Err(prefer_out_of_bounds(offsets, len, non_monotone)),
    }
}

/// Cold error path shared by the sweep variants: the parallel sweep
/// reported `non_monotone`; when an out-of-bounds boundary coexists with
/// it, prefer that deterministically (first by index), matching the
/// historical bounds-then-monotone order — error path only, so the rescan
/// is free in the success case.
fn prefer_out_of_bounds(
    offsets: &[usize],
    len: usize,
    non_monotone: IndChunksError,
) -> IndChunksError {
    match offsets.iter().enumerate().find(|&(_, &o)| o > len) {
        Some((index, &offset)) => IndChunksError::OutOfBounds { index, offset, len },
        None => non_monotone,
    }
}

/// AVX2 variant of the fused boundary sweep: each 256-bit step checks 4
/// boundaries for bounds (`offset > len`) *and* 4 adjacent pairs for
/// monotonicity (an unaligned load at `i - 1` supplies the predecessors),
/// reporting the earliest faulting lane with the scalar path's
/// bounds-before-monotone priority at equal index. Same verdict and
/// error-variant contract as the scalar sweep, which remains the
/// differential oracle.
#[cfg(all(feature = "simd", target_arch = "x86_64", target_pointer_width = "64"))]
fn validate_chunk_offsets_simd(offsets: &[usize], len: usize) -> Result<(), IndChunksError> {
    use rayon::prelude::*;
    rpb_obs::metrics::RNGIND_SIMD_SWEEPS.add(1);
    const CHUNK: usize = 2048;
    let nchunks = offsets.len().div_ceil(CHUNK);
    let err = (0..nchunks).into_par_iter().find_map_any(|c| {
        let start = c * CHUNK;
        let end = ((c + 1) * CHUNK).min(offsets.len());
        // SAFETY: dispatch established AVX2 support via `simd_enabled()`.
        unsafe { simd_sweep::first_boundary_fault(offsets, start, end, len) }.map(
            |(index, is_oob)| {
                if is_oob {
                    IndChunksError::OutOfBounds {
                        index,
                        offset: offsets[index],
                        len,
                    }
                } else {
                    IndChunksError::NotMonotone { index }
                }
            },
        )
    });
    match err {
        None => Ok(()),
        Some(e @ IndChunksError::OutOfBounds { .. }) => Err(e),
        Some(non_monotone) => Err(prefer_out_of_bounds(offsets, len, non_monotone)),
    }
}

/// The vector kernel behind [`validate_chunk_offsets_simd`].
#[cfg(all(feature = "simd", target_arch = "x86_64", target_pointer_width = "64"))]
mod simd_sweep {
    use std::arch::x86_64::*;

    /// First faulting boundary in positions `start..end` of `offsets`:
    /// returns `(index, is_oob)` where `is_oob` distinguishes
    /// `offsets[index] > len` from `offsets[index - 1] > offsets[index]`.
    /// At an index with both faults, bounds win (the scalar check order).
    ///
    /// Unsigned 64-bit compares are emulated by flipping the sign bit of
    /// both sides (`a > b (unsigned) ⟺ (a ^ MIN) > (b ^ MIN) (signed)`).
    /// Position 0 has no predecessor and is checked for bounds only.
    ///
    /// # Safety
    /// The CPU must support AVX2 (callers establish this through
    /// [`rpb_parlay::simd::simd_enabled`]). `start < end <= offsets.len()`
    /// must hold.
    #[target_feature(enable = "avx2")]
    pub unsafe fn first_boundary_fault(
        offsets: &[usize],
        start: usize,
        end: usize,
        len: usize,
    ) -> Option<(usize, bool)> {
        debug_assert!(start < end && end <= offsets.len());
        let mut i = start;
        if i == 0 {
            if offsets[0] > len {
                return Some((0, true));
            }
            i = 1;
        }
        let sign = _mm256_set1_epi64x(i64::MIN);
        let bound = _mm256_set1_epi64x((len as u64 ^ (1u64 << 63)) as i64);
        while i + 4 <= end {
            // SAFETY: 1 <= i and i + 4 <= end <= offsets.len(), so the two
            // 32-byte unaligned loads cover in-bounds ranges [i, i+4) and
            // [i-1, i+3) (usize is 64-bit by this module's cfg gate).
            let cur = unsafe { _mm256_loadu_si256(offsets.as_ptr().add(i) as *const __m256i) };
            // SAFETY: as above.
            let prev = unsafe { _mm256_loadu_si256(offsets.as_ptr().add(i - 1) as *const __m256i) };
            let cur_biased = _mm256_xor_si256(cur, sign);
            let oob = _mm256_cmpgt_epi64(cur_biased, bound);
            let mono = _mm256_cmpgt_epi64(_mm256_xor_si256(prev, sign), cur_biased);
            let oob_mask = _mm256_movemask_pd(_mm256_castsi256_pd(oob));
            let mono_mask = _mm256_movemask_pd(_mm256_castsi256_pd(mono));
            let any = oob_mask | mono_mask;
            if any != 0 {
                let lane = any.trailing_zeros();
                return Some((i + lane as usize, (oob_mask >> lane) & 1 == 1));
            }
            i += 4;
        }
        while i < end {
            if offsets[i] > len {
                return Some((i, true));
            }
            if offsets[i - 1] > offsets[i] {
                return Some((i, false));
            }
            i += 1;
        }
        None
    }
}

impl<T: Send> ParIndChunksMutExt<T> for [T] {
    fn par_ind_chunks_mut<'a>(&'a mut self, offsets: &'a [usize]) -> ParIndChunksMut<'a, T> {
        match self.try_par_ind_chunks_mut(offsets) {
            Ok(it) => it,
            Err(e) => panic!("par_ind_chunks_mut: {e}"),
        }
    }

    fn try_par_ind_chunks_mut<'a>(
        &'a mut self,
        offsets: &'a [usize],
    ) -> Result<ParIndChunksMut<'a, T>, IndChunksError> {
        validate_chunk_offsets(offsets, self.len())?;
        // SAFETY: boundaries proven monotone and bounded just above.
        Ok(unsafe { self.par_ind_chunks_mut_unchecked(offsets) })
    }

    // SAFETY: contract documented on the trait declaration — boundaries
    // must be monotone and bounded by the slice length.
    unsafe fn par_ind_chunks_mut_unchecked<'a>(
        &'a mut self,
        offsets: &'a [usize],
    ) -> ParIndChunksMut<'a, T> {
        ParIndChunksMut {
            data: SharedMutSlice::new(self),
            offsets,
        }
    }
}

impl<'a, T: Send + 'a> ParallelIterator for ParIndChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn drive_unindexed<C>(self, consumer: C) -> C::Result
    where
        C: UnindexedConsumer<Self::Item>,
    {
        bridge(self, consumer)
    }

    fn opt_len(&self) -> Option<usize> {
        Some(self.offsets.len().saturating_sub(1))
    }
}

impl<'a, T: Send + 'a> IndexedParallelIterator for ParIndChunksMut<'a, T> {
    fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    fn drive<C: Consumer<Self::Item>>(self, consumer: C) -> C::Result {
        bridge(self, consumer)
    }

    fn with_producer<CB: ProducerCallback<Self::Item>>(self, callback: CB) -> CB::Output {
        callback.callback(ChunkProducer {
            data: self.data,
            offsets: self.offsets,
        })
    }
}

struct ChunkProducer<'a, T: Send> {
    data: SharedMutSlice<'a, T>,
    offsets: &'a [usize],
}

impl<'a, T: Send + 'a> Producer for ChunkProducer<'a, T> {
    type Item = &'a mut [T];
    type IntoIter = ChunkIter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        // A leaf task starts consuming: attribute its chunks to the
        // executing thread (task-imbalance telemetry).
        rpb_obs::metrics::RNGIND_CHUNKS.add(self.offsets.len().saturating_sub(1) as u64);
        ChunkIter {
            data: self.data,
            offsets: self.offsets,
        }
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        // Chunk i spans offsets[i]..offsets[i+1]; splitting k chunks at
        // `index` shares the boundary offsets[index] between both halves.
        // With monotone boundaries the halves' element ranges stay disjoint
        // — this is the "check when Rayon splits the iterator" invariant
        // from the paper, upheld structurally here.
        debug_assert!(index < self.offsets.len());
        let l = &self.offsets[..=index];
        let r = &self.offsets[index..];
        (
            ChunkProducer {
                data: self.data,
                offsets: l,
            },
            ChunkProducer {
                data: self.data,
                offsets: r,
            },
        )
    }
}

/// Sequential iterator yielding each boundary-delimited chunk.
pub struct ChunkIter<'a, T: Send> {
    data: SharedMutSlice<'a, T>,
    offsets: &'a [usize],
}

impl<'a, T: Send> Iterator for ChunkIter<'a, T> {
    type Item = &'a mut [T];

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.offsets.len() < 2 {
            return None;
        }
        let (start, end) = (self.offsets[0], self.offsets[1]);
        self.offsets = &self.offsets[1..];
        // SAFETY: constructor validated monotone, bounded boundaries; each
        // half-open range is produced exactly once across all tasks.
        Some(unsafe { self.data.slice_mut(start, end) })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.offsets.len().saturating_sub(1);
        (n, Some(n))
    }
}

impl<T: Send> ExactSizeIterator for ChunkIter<'_, T> {}

impl<T: Send> DoubleEndedIterator for ChunkIter<'_, T> {
    #[inline]
    fn next_back(&mut self) -> Option<Self::Item> {
        let k = self.offsets.len();
        if k < 2 {
            return None;
        }
        let (start, end) = (self.offsets[k - 2], self.offsets[k - 1]);
        self.offsets = &self.offsets[..k - 1];
        // SAFETY: as in `next`.
        Some(unsafe { self.data.slice_mut(start, end) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn chunks_cover_ranges() {
        let mut v = vec![0u32; 10];
        let offsets = vec![0, 3, 3, 7, 10];
        v.par_ind_chunks_mut(&offsets)
            .enumerate()
            .for_each(|(i, chunk)| chunk.fill(i as u32 + 1));
        assert_eq!(v, vec![1, 1, 1, 3, 3, 3, 3, 4, 4, 4]);
    }

    #[test]
    fn leading_gap_is_untouched() {
        let mut v = vec![9u32; 6];
        let offsets = vec![2, 4, 6];
        v.par_ind_chunks_mut(&offsets).for_each(|c| c.fill(0));
        assert_eq!(v, vec![9, 9, 0, 0, 0, 0]);
    }

    #[test]
    fn large_parallel_fill_matches_sequential() {
        let n = if cfg!(miri) { 512 } else { 200_000 };
        // Boundaries every variable-length step.
        let mut offsets = vec![0usize];
        let mut x = 0usize;
        let mut k = 0usize;
        while x < n {
            x = (x + 1 + (k * 7) % 23).min(n);
            offsets.push(x);
            k += 1;
        }
        let mut v = vec![0u64; n];
        v.par_ind_chunks_mut(&offsets)
            .enumerate()
            .for_each(|(i, chunk)| chunk.fill(i as u64));
        // Sequential replay.
        let mut want = vec![0u64; n];
        for i in 0..offsets.len() - 1 {
            want[offsets[i]..offsets[i + 1]].fill(i as u64);
        }
        assert_eq!(v, want);
    }

    #[test]
    fn non_monotone_is_rejected() {
        let mut v = vec![0u8; 10];
        let offsets = vec![0, 5, 4, 10];
        let err = v.try_par_ind_chunks_mut(&offsets).err();
        assert_eq!(err, Some(IndChunksError::NotMonotone { index: 2 }));
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let mut v = vec![0u8; 10];
        let offsets = vec![0, 11];
        let err = v.try_par_ind_chunks_mut(&offsets).err();
        assert_eq!(
            err,
            Some(IndChunksError::OutOfBounds {
                index: 1,
                offset: 11,
                len: 10
            })
        );
    }

    #[test]
    fn multi_fault_boundaries_prefer_out_of_bounds() {
        let mut v = vec![0u8; 10];
        // offsets[1] exceeds the slice AND offsets[2] decreases: the
        // reported variant must deterministically be OutOfBounds.
        let offsets = vec![0, 11, 4, 10];
        for _ in 0..8 {
            let err = v.try_par_ind_chunks_mut(&offsets).err();
            assert_eq!(
                err,
                Some(IndChunksError::OutOfBounds {
                    index: 1,
                    offset: 11,
                    len: 10
                })
            );
        }
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn checked_panics_on_decreasing() {
        let mut v = vec![0u8; 4];
        let offsets = vec![3, 1];
        v.par_ind_chunks_mut(&offsets).for_each(|c| c.fill(1));
    }

    #[test]
    fn empty_offsets_yield_no_chunks() {
        let mut v = vec![1u8; 4];
        let offsets: Vec<usize> = vec![];
        assert_eq!(v.par_ind_chunks_mut(&offsets).count(), 0);
        let offsets = vec![2];
        assert_eq!(v.par_ind_chunks_mut(&offsets).count(), 0);
    }

    #[test]
    fn zero_length_chunks_are_fine() {
        let mut v = vec![0u8; 4];
        let offsets = vec![1, 1, 1, 3];
        let lens: Vec<usize> = v.par_ind_chunks_mut(&offsets).map(|c| c.len()).collect();
        assert_eq!(lens, vec![0, 0, 2]);
    }

    #[test]
    fn empty_target_all_zero_boundaries_ok() {
        // An empty slice supports any number of empty chunks.
        let mut v: Vec<u64> = vec![];
        let offsets = vec![0, 0, 0];
        let lens: Vec<usize> = v.par_ind_chunks_mut(&offsets).map(|c| c.len()).collect();
        assert_eq!(lens, vec![0, 0]);
    }

    #[test]
    fn empty_target_nonzero_boundary_rejected() {
        let mut v: Vec<u64> = vec![];
        let err = v.try_par_ind_chunks_mut(&[0, 1]).err();
        assert_eq!(
            err,
            Some(IndChunksError::OutOfBounds {
                index: 1,
                offset: 1,
                len: 0
            })
        );
        // Deterministic first-by-index reporting on the empty target.
        let err = v.try_par_ind_chunks_mut(&[0, 2, 1]).err();
        assert_eq!(
            err,
            Some(IndChunksError::OutOfBounds {
                index: 1,
                offset: 2,
                len: 0
            })
        );
    }

    #[test]
    fn zst_chunks_fill() {
        let mut v = vec![(); 10];
        let offsets = vec![0, 4, 4, 10];
        let lens: Vec<usize> = v.par_ind_chunks_mut(&offsets).map(|c| c.len()).collect();
        assert_eq!(lens, vec![4, 0, 6]);
        // Writes through the chunks are fine too.
        v.par_ind_chunks_mut(&offsets).for_each(|chunk| {
            for slot in chunk {
                *slot = ();
            }
        });
    }

    #[test]
    fn composes_with_zip() {
        let mut v = vec![0u16; 9];
        let offsets = vec![0, 2, 5, 9];
        let fills = vec![7u16, 8, 9];
        v.par_ind_chunks_mut(&offsets)
            .zip(fills.par_iter())
            .for_each(|(chunk, &f)| chunk.fill(f));
        assert_eq!(v, vec![7, 7, 8, 8, 8, 9, 9, 9, 9]);
    }

    #[test]
    fn rev_works() {
        let mut v = vec![0u8; 6];
        let offsets = vec![0, 2, 4, 6];
        v.par_ind_chunks_mut(&offsets)
            .rev()
            .enumerate()
            .for_each(|(k, chunk)| chunk.fill(k as u8 + 1));
        assert_eq!(v, vec![3, 3, 2, 2, 1, 1]);
    }

    /// Scalar-oracle differential for the vectorized boundary sweep: on
    /// builds/machines without AVX2 both runs trivially coincide.
    fn validate_both_impls(
        offsets: &[usize],
        len: usize,
    ) -> (Result<(), IndChunksError>, Result<(), IndChunksError>) {
        use rpb_parlay::simd::{set_forced, KernelImpl};
        set_forced(KernelImpl::Scalar);
        let scalar = validate_chunk_offsets(offsets, len);
        set_forced(KernelImpl::Simd);
        let simd = validate_chunk_offsets(offsets, len);
        set_forced(KernelImpl::Auto);
        (scalar, simd)
    }

    #[test]
    fn simd_and_scalar_boundary_sweeps_agree() {
        let _g = rpb_parlay::simd::force_lock();
        let k = if cfg!(miri) { 133 } else { 30_001 }; // odd: tail lanes
        let len = 4 * k;
        // Monotone boundaries with plateaus (equal neighbours are legal).
        let offsets: Vec<usize> = (0..k).map(|i| (i / 3) * 12).collect();
        let (scalar, simd) = validate_both_impls(&offsets, len);
        assert_eq!(scalar, Ok(()));
        assert_eq!(simd, Ok(()));

        // Single out-of-bounds boundary at assorted positions (including
        // lane 0, mid-lane, and the scalar tail): exact error equality.
        for at in [0, 1, 2, 3, 4, k / 2, k - 2, k - 1] {
            let mut bad = offsets.clone();
            bad[at] = len + 1 + at;
            let (scalar, simd) = validate_both_impls(&bad, len);
            assert!(
                matches!(
                    scalar,
                    Err(IndChunksError::OutOfBounds { index, offset, .. })
                        if index == at && offset == len + 1 + at
                ),
                "at={at}: {scalar:?}"
            );
            assert_eq!(scalar, simd, "at={at}");
        }

        // Single non-monotone pair: exact error equality (the faulting
        // index is unique, so both paths must report it).
        for at in [1, 2, 3, 4, 5, k / 2, k - 1] {
            // A drop below the predecessor is only representable when the
            // predecessor is nonzero.
            if offsets[at - 1] == 0 {
                continue;
            }
            let mut bad = offsets.clone();
            bad[at] = offsets[at - 1] - 1;
            // Keep the *successor* pair legal so the fault stays unique.
            if at + 1 < bad.len() && bad[at + 1] < bad[at] {
                continue;
            }
            let (scalar, simd) = validate_both_impls(&bad, len);
            assert_eq!(
                scalar,
                Err(IndChunksError::NotMonotone { index: at }),
                "at={at}"
            );
            assert_eq!(scalar, simd, "at={at}");
        }

        // Both fault kinds present: OutOfBounds wins deterministically.
        let mut both = offsets.clone();
        both[5] = len + 9; // out of bounds ...
        both[6] = 0; // ... and (harmlessly redundant) non-monotone after it
        let (scalar, simd) = validate_both_impls(&both, len);
        assert!(
            matches!(
                scalar,
                Err(IndChunksError::OutOfBounds { index: 5, offset, .. }) if offset == len + 9
            ),
            "{scalar:?}"
        );
        assert_eq!(scalar, simd);
    }

    #[test]
    fn simd_and_scalar_boundary_sweeps_agree_on_tiny_sizes() {
        let _g = rpb_parlay::simd::force_lock();
        for k in 0..=9usize {
            let offsets: Vec<usize> = (0..k).map(|i| i * 2).collect();
            let (scalar, simd) = validate_both_impls(&offsets, 2 * k + 1);
            assert_eq!(scalar, Ok(()), "k={k}");
            assert_eq!(scalar, simd, "k={k}");
            if k < 2 {
                continue;
            }
            let mut bad = offsets.clone();
            bad.swap(k - 2, k - 1); // strictly decreasing adjacent pair
            let (scalar, simd) = validate_both_impls(&bad, 2 * k + 1);
            assert_eq!(
                scalar,
                Err(IndChunksError::NotMonotone { index: k - 1 }),
                "k={k}"
            );
            assert_eq!(scalar, simd, "k={k}");
        }
    }
}
