//! `par_ind_iter_mut` — the paper's proposed interior-unsafe iterator for
//! the **single-valued indirect write** pattern (`SngInd`,
//! `out[offsets[i]] = f(i)`, Listing 6(f)).
//!
//! The algorithm using the pattern guarantees that `offsets` contains
//! unique, in-bounds indices, so tasks are independent — but `rustc` cannot
//! know that. The checked constructor validates the guarantee at run time
//! and then hands task *i* a `&mut` to `out[offsets[i]]`, moving the
//! programmer from *scared* to *comfortable*: an implementation bug (a
//! duplicate offset) panics at the call site instead of silently racing.
//!
//! Several check strategies are provided, because the check's cost is the
//! paper's central trade-off (Fig. 5a):
//!
//! * [`UniquenessCheck::MarkTable`] — `O(n)` work: every offset stamps a
//!   slot of a **pooled, epoch-stamped table** ([`crate::pool`]); a second
//!   stamp in the same epoch is a duplicate. Steady state allocates and
//!   zeroes nothing — acquiring a table bumps its epoch instead.
//! * [`UniquenessCheck::Bitset`] — `O(n)` work over `AtomicU64` words, one
//!   bit per slot: 8× less memory traffic than a byte table for large
//!   `len`, at the cost of a word-zeroing pass per check.
//! * [`UniquenessCheck::Sort`] — `O(n log n)` work, no per-element marks:
//!   radix-sort a copy and compare neighbours. Wins when the offsets are
//!   very sparse in `0..len` (marking would touch a huge cold table).
//! * [`UniquenessCheck::Adaptive`] (the default) — picks one of the above
//!   from `offsets.len()`, `len`, and pool availability.
//!
//! The bounds check is **fused into the mark sweep** for the marking
//! strategies: validation is one parallel pass, not two.
//!
//! For call sites that reuse one offsets array across rounds, see
//! [`crate::proof::ValidatedOffsets`] — validate once, iterate many times.

use rayon::iter::plumbing::{bridge, Consumer, Producer, ProducerCallback, UnindexedConsumer};
use rayon::iter::{IndexedParallelIterator, ParallelIterator};
use rayon::prelude::*;

use crate::pool;
use crate::shared::SharedMutSlice;

/// Validation failure for an offsets array.
///
/// When an input has several faults, the reported *variant* is
/// deterministic — [`OutOfBounds`](Self::OutOfBounds) takes priority over
/// [`Duplicate`](Self::Duplicate) for every strategy — but which of
/// several same-variant faults is reported may vary between runs (the
/// validation sweep is parallel).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndOffsetsError {
    /// `offsets[index]` appears more than once.
    Duplicate { index: usize, offset: usize },
    /// `offsets[index]` is `>= len`.
    OutOfBounds {
        index: usize,
        offset: usize,
        len: usize,
    },
}

impl std::fmt::Display for IndOffsetsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            IndOffsetsError::Duplicate { index, offset } => {
                write!(
                    f,
                    "offsets[{index}] = {offset} duplicates an earlier offset"
                )
            }
            IndOffsetsError::OutOfBounds { index, offset, len } => {
                write!(
                    f,
                    "offsets[{index}] = {offset} out of bounds for slice of length {len}"
                )
            }
        }
    }
}

impl std::error::Error for IndOffsetsError {}

/// Strategy used by the run-time uniqueness check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum UniquenessCheck {
    /// Parallel epoch-stamped mark table: `O(n)` time, zero allocation in
    /// steady state (tables are pooled and re-epoched, not re-zeroed).
    MarkTable,
    /// Parallel atomic bitset: `O(n)` time, one bit per slot — 8× less
    /// memory traffic than a byte/word table for large `len`.
    Bitset,
    /// Sort-based: `O(n log n)` time, allocates a copy of the offsets.
    Sort,
    /// Picks [`MarkTable`](Self::MarkTable) / [`Bitset`](Self::Bitset) /
    /// [`Sort`](Self::Sort) from `offsets.len()`, `len`, and pool
    /// availability. The recommended default.
    #[default]
    Adaptive,
}

/// Offsets sparser than one per this many slots switch `Adaptive` to the
/// sort strategy: marking would touch a cold table far larger than the
/// data being validated.
const ADAPTIVE_SORT_SPARSITY: usize = 64;

impl UniquenessCheck {
    /// Resolves `Adaptive` to a concrete strategy for an `offsets.len()`
    /// of `n` against a target slice of length `len`.
    pub fn resolve(self, n: usize, len: usize) -> UniquenessCheck {
        match self {
            UniquenessCheck::Adaptive => {
                let dense = n.saturating_mul(ADAPTIVE_SORT_SPARSITY) >= len;
                if pool::epoch_pool_serves(len) && (dense || pool::epoch_pool_has(len)) {
                    // An epoch table validates with zero allocation and no
                    // zeroing pass — unbeatable when one is already pooled
                    // (any density) or the offsets are dense enough that
                    // allocating one pays for itself across reuses.
                    UniquenessCheck::MarkTable
                } else if !dense {
                    // Sparse and no table on hand: marking would touch a
                    // cold table far larger than the data being validated.
                    UniquenessCheck::Sort
                } else {
                    UniquenessCheck::Bitset
                }
            }
            concrete => concrete,
        }
    }
}

/// Validates that every offset is in-bounds for `len` and unique.
///
/// Edge cases are fully defined: empty `offsets` validate trivially
/// (`Ok`, regardless of `len`), and non-empty `offsets` against `len == 0`
/// deterministically fail with `OutOfBounds { index: 0, .. }` without
/// touching the mark-table pool. Element type plays no role here — ZSTs
/// validate like anything else (see [`ParIndIterMutExt::par_ind_iter_mut`]).
///
/// Telemetry (feature `obs`): records the check's wall time, strategy,
/// offset count, mark-table allocation, and failures — the raw material of
/// Fig. 5(a)'s check-overhead attribution.
pub fn validate_offsets(
    offsets: &[usize],
    len: usize,
    strategy: UniquenessCheck,
) -> Result<(), IndOffsetsError> {
    use rpb_obs::metrics as obs;
    rpb_obs::span!(obs::SNGIND_CHECK_NS);
    obs::SNGIND_OFFSETS_VALIDATED.add(offsets.len() as u64);
    let strategy = strategy.resolve(offsets.len(), len);
    match strategy {
        UniquenessCheck::MarkTable => obs::SNGIND_CHECKS_MARK.add(1),
        UniquenessCheck::Bitset => obs::SNGIND_CHECKS_BITSET.add(1),
        UniquenessCheck::Sort => obs::SNGIND_CHECKS_SORT.add(1),
        UniquenessCheck::Adaptive => unreachable!("resolve() returns a concrete strategy"),
    }
    let result = validate_offsets_inner(offsets, len, strategy);
    if result.is_err() {
        obs::SNGIND_CHECK_FAILURES.add(1);
    }
    result
}

fn validate_offsets_inner(
    offsets: &[usize],
    len: usize,
    strategy: UniquenessCheck,
) -> Result<(), IndOffsetsError> {
    if offsets.is_empty() {
        return Ok(());
    }
    if len == 0 {
        // Every offset is out of bounds for an empty target. Report the
        // first one deterministically and skip strategy dispatch entirely
        // — in particular, don't acquire a zero-capacity mark table from
        // the pool or hand `offsets.len() / len` to `resolve()`.
        return Err(IndOffsetsError::OutOfBounds {
            index: 0,
            offset: offsets[0],
            len,
        });
    }
    match strategy {
        // Marking strategies fuse the bounds check into the mark sweep:
        // one parallel pass over `offsets` instead of two.
        UniquenessCheck::MarkTable => {
            let guard = pool::acquire_epoch_marks(len);
            let marks = guard.marks();
            fused_mark_sweep(offsets, len, |o| marks.mark_was_set(o))
        }
        UniquenessCheck::Bitset => {
            let guard = pool::acquire_bitset(len);
            let bits = guard.bits();
            fused_mark_sweep(offsets, len, |o| bits.set_was_set(o))
        }
        UniquenessCheck::Sort => {
            // The sort can't detect out-of-bounds, so bounds get their own
            // (cheap) pass here.
            if let Some((index, &offset)) =
                offsets.par_iter().enumerate().find_any(|(_, &o)| o >= len)
            {
                return Err(IndOffsetsError::OutOfBounds { index, offset, len });
            }
            let mut sorted: Vec<(usize, usize)> = offsets
                .par_iter()
                .copied()
                .enumerate()
                .map(|(i, o)| (o, i))
                .collect();
            // All offsets are `< len`, so `ceil(log2(len))` key bits
            // suffice; at least 1 so the `len <= 1` edge still sorts.
            let bits = (usize::BITS - len.leading_zeros()).max(1);
            rpb_parlay::radix_sort_by_key(&mut sorted, bits, |p| p.0 as u64);
            let dup = sorted
                .par_windows(2)
                .find_any(|w| w[0].0 == w[1].0)
                .map(|w| (w[0].1.max(w[1].1), w[0].0));
            if let Some((index, offset)) = dup {
                return Err(IndOffsetsError::Duplicate { index, offset });
            }
            Ok(())
        }
        UniquenessCheck::Adaptive => {
            validate_offsets_inner(offsets, len, strategy.resolve(offsets.len(), len))
        }
    }
}

/// The fused bounds + uniqueness sweep shared by the marking strategies:
/// `mark_was_set(o)` must return whether `o` was already marked.
///
/// The *verdict* and the error *variant* are deterministic: when an input
/// has both an out-of-bounds offset and a duplicate, `OutOfBounds` wins
/// (the historical two-pass contract, restored by a rescan on the cold
/// error path). Which of several same-variant faults is reported remains
/// schedule-dependent.
///
/// With the `simd` feature on a runtime-detected AVX2 CPU, the sweep
/// dispatches to a chunked variant whose bounds check is vectorized (4
/// offsets per compare) and whose mark loop runs branch-lean because the
/// chunk is already known to be in bounds. The verdict and error-variant
/// contract above is identical on both paths — the scalar sweep is the
/// differential oracle (`rpb verify --kernel-impl scalar,simd`).
fn fused_mark_sweep(
    offsets: &[usize],
    len: usize,
    mark_was_set: impl Fn(usize) -> bool + Sync,
) -> Result<(), IndOffsetsError> {
    #[cfg(all(feature = "simd", target_arch = "x86_64", target_pointer_width = "64"))]
    if rpb_parlay::simd::simd_enabled() {
        return fused_mark_sweep_simd(offsets, len, &mark_was_set);
    }
    let err = offsets
        .par_iter()
        .enumerate()
        .find_map_any(|(index, &offset)| {
            if offset >= len {
                Some(IndOffsetsError::OutOfBounds { index, offset, len })
            } else if mark_was_set(offset) {
                Some(IndOffsetsError::Duplicate { index, offset })
            } else {
                None
            }
        });
    match err {
        None => Ok(()),
        Some(e @ IndOffsetsError::OutOfBounds { .. }) => Err(e),
        Some(dup) => Err(prefer_out_of_bounds(offsets, len, dup)),
    }
}

/// Cold error path shared by the sweep variants: the parallel sweep
/// reported `dup`, but if an out-of-bounds offset coexists with it,
/// prefer that deterministically (first by index) — error path only, so
/// the extra sequential scan costs nothing in the success case.
fn prefer_out_of_bounds(offsets: &[usize], len: usize, dup: IndOffsetsError) -> IndOffsetsError {
    match offsets.iter().enumerate().find(|&(_, &o)| o >= len) {
        Some((index, &offset)) => IndOffsetsError::OutOfBounds { index, offset, len },
        None => dup,
    }
}

/// AVX2 variant of [`fused_mark_sweep`]: per parallel chunk, a vectorized
/// bounds pre-scan (which reports out-of-bounds directly), then a tight
/// uniqueness-mark loop over the now-proven-in-bounds chunk. Marking whole
/// chunks instead of interleaving per-element bounds branches changes
/// which marks are set when a fault aborts the sweep mid-way — harmless,
/// because the mark table is epoch-reset on the next acquisition — but
/// never the verdict or the reported variant.
#[cfg(all(feature = "simd", target_arch = "x86_64", target_pointer_width = "64"))]
fn fused_mark_sweep_simd<F>(
    offsets: &[usize],
    len: usize,
    mark_was_set: &F,
) -> Result<(), IndOffsetsError>
where
    F: Fn(usize) -> bool + Sync,
{
    rpb_obs::metrics::SNGIND_SIMD_SWEEPS.add(1);
    // `validate_offsets_inner` resolved len == 0 before any sweep runs,
    // which licenses the `len - 1` bound inside the vector compare.
    debug_assert!(len >= 1);
    const CHUNK: usize = 2048;
    let err = offsets
        .par_chunks(CHUNK)
        .enumerate()
        .find_map_any(|(c, chunk)| {
            let base = c * CHUNK;
            // SAFETY: dispatch established AVX2 support via `simd_enabled()`.
            if let Some(k) = unsafe { simd_sweep::first_at_or_above(chunk, len) } {
                return Some(IndOffsetsError::OutOfBounds {
                    index: base + k,
                    offset: chunk[k],
                    len,
                });
            }
            for (k, &offset) in chunk.iter().enumerate() {
                if mark_was_set(offset) {
                    return Some(IndOffsetsError::Duplicate {
                        index: base + k,
                        offset,
                    });
                }
            }
            None
        });
    match err {
        None => Ok(()),
        Some(e @ IndOffsetsError::OutOfBounds { .. }) => Err(e),
        Some(dup) => Err(prefer_out_of_bounds(offsets, len, dup)),
    }
}

/// The vector kernel behind [`fused_mark_sweep_simd`].
#[cfg(all(feature = "simd", target_arch = "x86_64", target_pointer_width = "64"))]
mod simd_sweep {
    use std::arch::x86_64::*;

    /// Index of the first element of `chunk` with `chunk[i] >= bound_len`,
    /// scanning 4 offsets per 256-bit compare with a scalar remainder loop
    /// for the tail lanes.
    ///
    /// AVX2 has no unsigned 64-bit compare, so both sides are biased by the
    /// sign bit: `a >= b (unsigned) ⟺ (a ^ MIN) > ((b - 1) ^ MIN) (signed)`
    /// — valid because `bound_len >= 1` (callers resolve the empty-target
    /// case before sweeping).
    ///
    /// # Safety
    /// The CPU must support AVX2 (callers establish this through
    /// [`rpb_parlay::simd::simd_enabled`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn first_at_or_above(chunk: &[usize], bound_len: usize) -> Option<usize> {
        debug_assert!(bound_len >= 1);
        let n = chunk.len();
        let sign = _mm256_set1_epi64x(i64::MIN);
        let bound = _mm256_set1_epi64x(((bound_len as u64 - 1) ^ (1u64 << 63)) as i64);
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n keeps the 32-byte unaligned load in
            // bounds (usize is 64-bit here by the target_pointer_width
            // gate on this module).
            let v = unsafe { _mm256_loadu_si256(chunk.as_ptr().add(i) as *const __m256i) };
            let gt = _mm256_cmpgt_epi64(_mm256_xor_si256(v, sign), bound);
            let mask = _mm256_movemask_pd(_mm256_castsi256_pd(gt));
            if mask != 0 {
                return Some(i + mask.trailing_zeros() as usize);
            }
            i += 4;
        }
        while i < n {
            if chunk[i] >= bound_len {
                return Some(i);
            }
            i += 1;
        }
        None
    }
}

/// A parallel iterator over `&mut out[offsets[i]]` for `i in 0..offsets.len()`.
///
/// Construct through [`ParIndIterMutExt`]. Implements
/// [`IndexedParallelIterator`], so it composes with `enumerate`/`zip`/etc.
pub struct ParIndIterMut<'a, T: Send> {
    data: SharedMutSlice<'a, T>,
    offsets: &'a [usize],
}

/// Extension trait adding the paper's `par_ind_iter_mut` family to slices.
pub trait ParIndIterMutExt<T: Send> {
    /// Checked construction (the paper's *comfortable* Listing 6(f)):
    /// validates uniqueness and bounds of `offsets` at run time.
    ///
    /// Edge cases: empty `offsets` yield an empty iterator (valid against
    /// any slice, including an empty one); non-empty `offsets` against an
    /// empty slice always fail validation (every offset is out of bounds).
    /// Zero-sized element types work like any other `T` — the iterator
    /// hands out disjoint `&mut` references (trivially disjoint for ZSTs)
    /// and the same offset validation applies.
    ///
    /// # Panics
    /// Panics with the offending index if the validation fails — the
    /// run-time-error-near-the-cause behaviour the paper argues for.
    fn par_ind_iter_mut<'a>(&'a mut self, offsets: &'a [usize]) -> ParIndIterMut<'a, T>;

    /// Like [`ParIndIterMutExt::par_ind_iter_mut`] but returns the
    /// validation error instead of panicking, and lets the caller pick the
    /// check strategy.
    fn try_par_ind_iter_mut<'a>(
        &'a mut self,
        offsets: &'a [usize],
        strategy: UniquenessCheck,
    ) -> Result<ParIndIterMut<'a, T>, IndOffsetsError>;

    /// Unchecked construction (the paper's *scary* Listing 6(d)).
    ///
    /// # Safety
    /// `offsets` must contain unique indices, all `< self.len()`.
    unsafe fn par_ind_iter_mut_unchecked<'a>(
        &'a mut self,
        offsets: &'a [usize],
    ) -> ParIndIterMut<'a, T>;
}

impl<T: Send> ParIndIterMutExt<T> for [T] {
    fn par_ind_iter_mut<'a>(&'a mut self, offsets: &'a [usize]) -> ParIndIterMut<'a, T> {
        match self.try_par_ind_iter_mut(offsets, UniquenessCheck::default()) {
            Ok(it) => it,
            Err(e) => panic!("par_ind_iter_mut: {e}"),
        }
    }

    fn try_par_ind_iter_mut<'a>(
        &'a mut self,
        offsets: &'a [usize],
        strategy: UniquenessCheck,
    ) -> Result<ParIndIterMut<'a, T>, IndOffsetsError> {
        validate_offsets(offsets, self.len(), strategy)?;
        // SAFETY: offsets proven unique and in-bounds just above.
        Ok(unsafe { self.par_ind_iter_mut_unchecked(offsets) })
    }

    // SAFETY: contract documented on the trait declaration — offsets must
    // be pairwise distinct and in bounds.
    unsafe fn par_ind_iter_mut_unchecked<'a>(
        &'a mut self,
        offsets: &'a [usize],
    ) -> ParIndIterMut<'a, T> {
        ParIndIterMut {
            data: SharedMutSlice::new(self),
            offsets,
        }
    }
}

impl<'a, T: Send + 'a> ParallelIterator for ParIndIterMut<'a, T> {
    type Item = &'a mut T;

    fn drive_unindexed<C>(self, consumer: C) -> C::Result
    where
        C: UnindexedConsumer<Self::Item>,
    {
        bridge(self, consumer)
    }

    fn opt_len(&self) -> Option<usize> {
        Some(self.offsets.len())
    }
}

impl<'a, T: Send + 'a> IndexedParallelIterator for ParIndIterMut<'a, T> {
    fn len(&self) -> usize {
        self.offsets.len()
    }

    fn drive<C: Consumer<Self::Item>>(self, consumer: C) -> C::Result {
        bridge(self, consumer)
    }

    fn with_producer<CB: ProducerCallback<Self::Item>>(self, callback: CB) -> CB::Output {
        callback.callback(IndProducer {
            data: self.data,
            offsets: self.offsets,
        })
    }
}

struct IndProducer<'a, T: Send> {
    data: SharedMutSlice<'a, T>,
    offsets: &'a [usize],
}

impl<'a, T: Send + 'a> Producer for IndProducer<'a, T> {
    type Item = &'a mut T;
    type IntoIter = IndIter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        // One leaf task starts consuming here: attribute its share of the
        // scatter to the executing thread (task-imbalance telemetry).
        rpb_obs::metrics::SNGIND_ITEMS.add(self.offsets.len() as u64);
        IndIter {
            data: self.data,
            offsets: self.offsets.iter(),
        }
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.offsets.split_at(index);
        (
            IndProducer {
                data: self.data,
                offsets: l,
            },
            IndProducer {
                data: self.data,
                offsets: r,
            },
        )
    }
}

/// Sequential side of the producer: yields `&mut data[off]` for each offset
/// in this task's sub-range. Soundness relies on the constructor-validated
/// (or caller-promised) uniqueness of the *whole* offsets array — splitting
/// preserves disjointness trivially.
pub struct IndIter<'a, T: Send> {
    data: SharedMutSlice<'a, T>,
    offsets: std::slice::Iter<'a, usize>,
}

impl<'a, T: Send> Iterator for IndIter<'a, T> {
    type Item = &'a mut T;

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        let &off = self.offsets.next()?;
        // SAFETY: constructor contract — unique in-bounds offsets; each
        // offset is consumed by exactly one task exactly once.
        Some(unsafe { self.data.get_mut(off) })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.offsets.size_hint()
    }
}

impl<T: Send> ExactSizeIterator for IndIter<'_, T> {}

impl<T: Send> DoubleEndedIterator for IndIter<'_, T> {
    #[inline]
    fn next_back(&mut self) -> Option<Self::Item> {
        let &off = self.offsets.next_back()?;
        // SAFETY: as in `next`.
        Some(unsafe { self.data.get_mut(off) })
    }
}

/// Convenience form of the pattern: `out[offsets[i]] = value(i)`, checked.
///
/// # Panics
/// Panics if `offsets` fails validation.
pub fn ind_write_checked<T, F>(out: &mut [T], offsets: &[usize], value: F)
where
    T: Send,
    F: Fn(usize) -> T + Send + Sync,
{
    out.par_ind_iter_mut(offsets)
        .enumerate()
        .for_each(|(i, slot)| *slot = value(i));
}

/// Unchecked form of [`ind_write_checked`] — the C++-equivalent *scary* tier.
///
/// # Safety
/// `offsets` must be unique and in-bounds for `out`.
pub unsafe fn ind_write_unchecked<T, F>(out: &mut [T], offsets: &[usize], value: F)
where
    T: Send,
    F: Fn(usize) -> T + Send + Sync,
{
    // SAFETY: forwarded caller contract.
    unsafe { out.par_ind_iter_mut_unchecked(offsets) }
        .enumerate()
        .for_each(|(i, slot)| *slot = value(i));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpb_parlay::seqdata::random_permutation;

    #[test]
    fn checked_scatter_matches_sequential() {
        let n = if cfg!(miri) { 128 } else { 50_000 };
        let offsets = random_permutation(n, 42);
        let input: Vec<u64> = (0..n as u64).collect();
        let mut out = vec![0u64; n];
        out.par_ind_iter_mut(&offsets)
            .enumerate()
            .for_each(|(i, o)| *o = input[i]);
        let mut want = vec![0u64; n];
        for i in 0..n {
            want[offsets[i]] = input[i];
        }
        assert_eq!(out, want);
    }

    #[test]
    fn unchecked_scatter_matches_checked() {
        let n = if cfg!(miri) { 128 } else { 20_000 };
        let offsets = random_permutation(n, 7);
        let mut a = vec![0u32; n];
        let mut b = vec![0u32; n];
        ind_write_checked(&mut a, &offsets, |i| i as u32 * 3);
        // SAFETY: offsets is a permutation — unique and in bounds.
        unsafe { ind_write_unchecked(&mut b, &offsets, |i| i as u32 * 3) };
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_offsets_error_mark() {
        let mut out = vec![0u8; 10];
        let offsets = vec![1, 2, 3, 2];
        let err = out
            .try_par_ind_iter_mut(&offsets, UniquenessCheck::MarkTable)
            .err();
        assert!(
            matches!(err, Some(IndOffsetsError::Duplicate { offset: 2, .. })),
            "{err:?}"
        );
    }

    #[test]
    fn duplicate_offsets_error_sort() {
        let mut out = vec![0u8; 10];
        let offsets = vec![5, 9, 5];
        let err = out
            .try_par_ind_iter_mut(&offsets, UniquenessCheck::Sort)
            .err();
        assert!(
            matches!(err, Some(IndOffsetsError::Duplicate { offset: 5, .. })),
            "{err:?}"
        );
    }

    #[test]
    fn out_of_bounds_error() {
        let mut out = vec![0u8; 4];
        let offsets = vec![0, 4];
        let err = out
            .try_par_ind_iter_mut(&offsets, UniquenessCheck::MarkTable)
            .err();
        assert_eq!(
            err,
            Some(IndOffsetsError::OutOfBounds {
                index: 1,
                offset: 4,
                len: 4
            })
        );
    }

    #[test]
    #[should_panic(expected = "duplicates an earlier offset")]
    fn checked_panics_on_duplicates() {
        let mut out = vec![0u8; 8];
        let offsets = vec![3, 3];
        out.par_ind_iter_mut(&offsets).for_each(|o| *o = 1);
    }

    #[test]
    fn large_duplicate_detected_by_both_strategies() {
        let n = if cfg!(miri) { 256 } else { 100_000 };
        let mut offsets = random_permutation(n, 3);
        offsets[n - 1] = offsets[0]; // plant one duplicate
        let mut out = vec![0u8; n];
        for strat in [UniquenessCheck::MarkTable, UniquenessCheck::Sort] {
            let err = out.try_par_ind_iter_mut(&offsets, strat).err();
            assert!(
                matches!(err, Some(IndOffsetsError::Duplicate { .. })),
                "{strat:?}: {err:?}"
            );
        }
    }

    #[test]
    fn composes_with_zip() {
        let n = if cfg!(miri) { 128 } else { 30_000 };
        let offsets = random_permutation(n, 9);
        let input: Vec<u64> = (0..n as u64).map(|i| i * 7).collect();
        let mut out = vec![0u64; n];
        out.par_ind_iter_mut(&offsets)
            .zip(input.par_iter())
            .for_each(|(slot, &v)| *slot = v);
        for i in 0..n {
            assert_eq!(out[offsets[i]], input[i]);
        }
    }

    #[test]
    fn partial_offsets_touch_only_targets() {
        // Fewer offsets than slots: untouched slots keep their value.
        let mut out = vec![9u8; 10];
        let offsets = vec![2, 4];
        out.par_ind_iter_mut(&offsets).for_each(|o| *o = 0);
        assert_eq!(out, vec![9, 9, 0, 9, 0, 9, 9, 9, 9, 9]);
    }

    #[test]
    fn empty_offsets_ok() {
        let mut out = vec![1u8; 4];
        let offsets: Vec<usize> = vec![];
        out.par_ind_iter_mut(&offsets).for_each(|o| *o = 0);
        assert_eq!(out, vec![1, 1, 1, 1]);
    }

    #[test]
    fn duplicate_offsets_error_bitset() {
        let mut out = vec![0u8; 10];
        let offsets = vec![7, 0, 7];
        let err = out
            .try_par_ind_iter_mut(&offsets, UniquenessCheck::Bitset)
            .err();
        assert!(
            matches!(err, Some(IndOffsetsError::Duplicate { offset: 7, .. })),
            "{err:?}"
        );
    }

    #[test]
    fn out_of_bounds_error_bitset() {
        let mut out = vec![0u8; 4];
        let offsets = vec![0, 9];
        let err = out
            .try_par_ind_iter_mut(&offsets, UniquenessCheck::Bitset)
            .err();
        assert_eq!(
            err,
            Some(IndOffsetsError::OutOfBounds {
                index: 1,
                offset: 9,
                len: 4
            })
        );
    }

    #[test]
    fn adaptive_accepts_and_rejects_like_concrete_strategies() {
        let n = if cfg!(miri) { 256 } else { 60_000 };
        let offsets = random_permutation(n, 11);
        let mut out = vec![0u8; n];
        assert!(out
            .try_par_ind_iter_mut(&offsets, UniquenessCheck::Adaptive)
            .is_ok());
        let mut dup = offsets.clone();
        dup[0] = dup[n - 1];
        let err = out
            .try_par_ind_iter_mut(&dup, UniquenessCheck::Adaptive)
            .err();
        assert!(
            matches!(err, Some(IndOffsetsError::Duplicate { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn adaptive_resolves_to_concrete_strategies() {
        // Pool-servable target: the epoch table wins.
        assert_eq!(
            UniquenessCheck::Adaptive.resolve(1000, 1000),
            UniquenessCheck::MarkTable
        );
        // Beyond the epoch pool cap: dense offsets -> bitset.
        let huge = pool::MAX_POOLED_EPOCH_SLOTS + 1;
        assert_eq!(
            UniquenessCheck::Adaptive.resolve(huge, huge),
            UniquenessCheck::Bitset
        );
        // Beyond the cap and very sparse -> sort.
        assert_eq!(
            UniquenessCheck::Adaptive.resolve(8, huge),
            UniquenessCheck::Sort
        );
        // Concrete strategies resolve to themselves.
        assert_eq!(
            UniquenessCheck::Sort.resolve(1000, 1000),
            UniquenessCheck::Sort
        );
    }

    #[test]
    fn sort_strategy_tiny_len_regression() {
        // Regression: the radix bit-width used to be computed as
        // `usize::BITS - len.leading_zeros().max(1)`, which passed a
        // garbage bit count for `len <= 1`.
        for len in [0usize, 1, 2] {
            let mut out = vec![0u8; len];
            let offsets: Vec<usize> = (0..len).collect();
            assert!(
                out.try_par_ind_iter_mut(&offsets, UniquenessCheck::Sort)
                    .is_ok(),
                "len={len}"
            );
        }
        // len = 1 with a duplicate offset must still be rejected.
        let mut out = vec![0u8; 1];
        let dup = [0usize, 0];
        let err = out.try_par_ind_iter_mut(&dup, UniquenessCheck::Sort).err();
        assert!(matches!(
            err,
            Some(IndOffsetsError::Duplicate { offset: 0, .. })
        ));
        // len = 2, out-of-bounds offset.
        let mut out = vec![0u8; 2];
        let oob = [0usize, 2];
        let err = out.try_par_ind_iter_mut(&oob, UniquenessCheck::Sort).err();
        assert!(matches!(
            err,
            Some(IndOffsetsError::OutOfBounds { offset: 2, .. })
        ));
    }

    #[test]
    fn multi_fault_input_prefers_out_of_bounds() {
        // An input with both a duplicate and an out-of-bounds offset must
        // report OutOfBounds for every strategy, however rayon schedules
        // the fused sweep.
        let n = if cfg!(miri) { 500 } else { 10_000 };
        let rounds = if cfg!(miri) { 2 } else { 8 };
        let mut offsets = random_permutation(n, 5);
        offsets[17] = offsets[n * 2 / 5]; // duplicate
        let oob_at = n * 9 / 10;
        offsets[oob_at] = n + 7; // out of bounds
        let mut out = vec![0u8; n];
        for strat in [
            UniquenessCheck::MarkTable,
            UniquenessCheck::Bitset,
            UniquenessCheck::Sort,
            UniquenessCheck::Adaptive,
        ] {
            for _ in 0..rounds {
                let err = out.try_par_ind_iter_mut(&offsets, strat).err();
                assert!(
                    matches!(
                        err,
                        Some(IndOffsetsError::OutOfBounds { index, offset, .. })
                            if index == oob_at && offset == n + 7
                    ),
                    "{strat:?}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn rev_iteration_via_double_ended() {
        // rev() requires DoubleEndedIterator on the producer's iterator.
        let mut out = vec![0usize; 6];
        let offsets = vec![5, 3, 1];
        out.par_ind_iter_mut(&offsets)
            .rev()
            .enumerate()
            .for_each(|(k, slot)| *slot = k + 1);
        // rev: k=0 -> offset 1, k=1 -> offset 3, k=2 -> offset 5
        assert_eq!(out, vec![0, 1, 0, 2, 0, 3]);
    }

    const ALL_STRATEGIES: [UniquenessCheck; 4] = [
        UniquenessCheck::MarkTable,
        UniquenessCheck::Bitset,
        UniquenessCheck::Sort,
        UniquenessCheck::Adaptive,
    ];

    #[test]
    fn empty_out_with_offsets_errors_every_strategy() {
        // A non-empty offset list can never be valid against an empty
        // target; the error is deterministic and the unchecked pointer
        // path must never be reached.
        let mut out: Vec<u64> = vec![];
        for strat in ALL_STRATEGIES {
            let err = out.try_par_ind_iter_mut(&[3, 1], strat).err();
            assert_eq!(
                err,
                Some(IndOffsetsError::OutOfBounds {
                    index: 0,
                    offset: 3,
                    len: 0
                }),
                "{strat:?}"
            );
        }
    }

    #[test]
    fn empty_out_empty_offsets_ok_every_strategy() {
        let mut out: Vec<u64> = vec![];
        for strat in ALL_STRATEGIES {
            let it = out.try_par_ind_iter_mut(&[], strat).unwrap();
            assert_eq!(it.count(), 0, "{strat:?}");
        }
    }

    #[test]
    fn zst_scatter_every_strategy() {
        // Zero-sized elements: `&mut` disjointness is trivial, but the
        // offset validation must behave identically to sized types.
        let mut out = vec![(); 16];
        let offsets = random_permutation(16, 11);
        let touched = std::sync::atomic::AtomicUsize::new(0);
        for strat in ALL_STRATEGIES {
            touched.store(0, std::sync::atomic::Ordering::Relaxed);
            out.try_par_ind_iter_mut(&offsets, strat)
                .unwrap()
                .for_each(|slot| {
                    *slot = ();
                    touched.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            assert_eq!(
                touched.load(std::sync::atomic::Ordering::Relaxed),
                16,
                "{strat:?}"
            );
        }
    }

    #[test]
    fn zst_duplicate_and_oob_rejected_every_strategy() {
        let mut out = vec![(); 8];
        for strat in ALL_STRATEGIES {
            let err = out.try_par_ind_iter_mut(&[2, 5, 2], strat).err();
            assert!(
                matches!(err, Some(IndOffsetsError::Duplicate { offset: 2, .. })),
                "{strat:?}: {err:?}"
            );
            let err = out.try_par_ind_iter_mut(&[0, 8], strat).err();
            assert!(
                matches!(err, Some(IndOffsetsError::OutOfBounds { offset: 8, .. })),
                "{strat:?}: {err:?}"
            );
        }
    }

    #[test]
    fn empty_out_zst_offsets_rejected() {
        let mut out: Vec<()> = vec![];
        let err = out
            .try_par_ind_iter_mut(&[0], UniquenessCheck::Adaptive)
            .err();
        assert_eq!(
            err,
            Some(IndOffsetsError::OutOfBounds {
                index: 0,
                offset: 0,
                len: 0
            })
        );
    }

    /// Runs `validate_offsets` under a pinned scalar and a pinned simd
    /// dispatch and returns both results. On builds/machines without AVX2
    /// the two runs trivially coincide; with it, this is the scalar-oracle
    /// differential for the vectorized sweep.
    fn validate_both_impls(
        offsets: &[usize],
        len: usize,
        strategy: UniquenessCheck,
    ) -> (Result<(), IndOffsetsError>, Result<(), IndOffsetsError>) {
        use rpb_parlay::simd::{set_forced, KernelImpl};
        set_forced(KernelImpl::Scalar);
        let scalar = validate_offsets(offsets, len, strategy);
        set_forced(KernelImpl::Simd);
        let simd = validate_offsets(offsets, len, strategy);
        set_forced(KernelImpl::Auto);
        (scalar, simd)
    }

    #[test]
    fn simd_and_scalar_sweeps_agree_on_verdicts() {
        let _g = rpb_parlay::simd::force_lock();
        let n = if cfg!(miri) { 131 } else { 50_003 }; // odd: exercises tail lanes
        for strat in [UniquenessCheck::MarkTable, UniquenessCheck::Bitset] {
            // Clean permutation: both accept.
            let offsets = random_permutation(n, 21);
            let (scalar, simd) = validate_both_impls(&offsets, n, strat);
            assert_eq!(scalar, Ok(()), "{strat:?}");
            assert_eq!(simd, Ok(()), "{strat:?}");

            // Single out-of-bounds fault: exact error equality (the only
            // fault is reported deterministically on both paths).
            for oob_at in [0, 1, 2, 3, n / 2, n - 2, n - 1] {
                let mut bad = offsets.clone();
                bad[oob_at] = n + oob_at;
                let (scalar, simd) = validate_both_impls(&bad, n, strat);
                assert_eq!(
                    scalar,
                    Err(IndOffsetsError::OutOfBounds {
                        index: oob_at,
                        offset: n + oob_at,
                        len: n,
                    }),
                    "{strat:?} oob_at={oob_at}"
                );
                assert_eq!(scalar, simd, "{strat:?} oob_at={oob_at}");
            }

            // Single duplicate: variant and offset agree (which of the two
            // occurrences gets reported is schedule-dependent on both
            // paths, so the index is not compared).
            let mut dup = offsets.clone();
            let planted = dup[n / 3];
            dup[n - 1] = planted;
            let (scalar, simd) = validate_both_impls(&dup, n, strat);
            for (label, res) in [("scalar", scalar), ("simd", simd)] {
                assert!(
                    matches!(
                        res,
                        Err(IndOffsetsError::Duplicate { offset, .. }) if offset == planted
                    ),
                    "{strat:?} {label}: {res:?}"
                );
            }

            // Duplicate *and* out-of-bounds: OutOfBounds must win, with the
            // first-by-index fault, on both paths.
            let mut both = dup.clone();
            both[n / 2] = n + 1;
            let (scalar, simd) = validate_both_impls(&both, n, strat);
            let want = Err(IndOffsetsError::OutOfBounds {
                index: n / 2,
                offset: n + 1,
                len: n,
            });
            assert_eq!(scalar, want, "{strat:?}");
            assert_eq!(simd, want, "{strat:?}");
        }
    }

    #[test]
    fn simd_and_scalar_sweeps_agree_on_tiny_and_tail_sizes() {
        let _g = rpb_parlay::simd::force_lock();
        // Sizes straddling the 4-lane width: 0..=9 plus a chunk boundary.
        for n in (0..=9).chain([2048, 2049, 2051]) {
            if cfg!(miri) && n > 64 {
                continue;
            }
            let offsets: Vec<usize> = (0..n).collect();
            let (scalar, simd) =
                validate_both_impls(&offsets, n.max(1), UniquenessCheck::MarkTable);
            assert_eq!(scalar, simd, "clean n={n}");
            if n == 0 {
                continue;
            }
            // Out-of-bounds in the scalar tail (last element).
            let mut bad = offsets.clone();
            bad[n - 1] = n;
            let (scalar, simd) = validate_both_impls(&bad, n, UniquenessCheck::MarkTable);
            assert_eq!(
                scalar,
                Err(IndOffsetsError::OutOfBounds {
                    index: n - 1,
                    offset: n,
                    len: n,
                }),
                "n={n}"
            );
            assert_eq!(scalar, simd, "oob n={n}");
        }
    }
}
