//! `SngInd` beyond offset arrays: pure offset *functions*.
//!
//! Sec. 5.1 of the paper notes that "the SngInd pattern generalizes
//! beyond offset arrays. For example, a pure offsets function … could
//! similarly be checked for uniqueness with an interior unsafe function."
//! This module implements that generalization: the destinations are
//! `f(0), f(1), …, f(n-1)` for a caller-supplied pure function, validated
//! with the same mark-table check.
//!
//! The canonical uses are transposes, bit-reversal permutations, and
//! strided re-layouts — index arithmetic that would be wasteful to
//! materialize.

use rayon::prelude::*;
use std::sync::atomic::{AtomicU8, Ordering};

use crate::shared::SharedMutSlice;
use crate::snd_ind::IndOffsetsError;

/// Validates that `f` is injective over `0..n` with range `0..len`.
pub fn validate_fn_offsets<F>(n: usize, len: usize, f: F) -> Result<(), IndOffsetsError>
where
    F: Fn(usize) -> usize + Send + Sync,
{
    if let Some((index, offset)) = (0..n)
        .into_par_iter()
        .map(|i| (i, f(i)))
        .find_any(|&(_, o)| o >= len)
    {
        return Err(IndOffsetsError::OutOfBounds { index, offset, len });
    }
    let marks: Vec<AtomicU8> = (0..len).map(|_| AtomicU8::new(0)).collect();
    let dup = (0..n)
        .into_par_iter()
        .map(|i| (i, f(i)))
        .find_any(|&(_, o)| marks[o].fetch_or(1, Ordering::Relaxed) != 0);
    if let Some((index, offset)) = dup {
        return Err(IndOffsetsError::Duplicate { index, offset });
    }
    Ok(())
}

/// Checked function-offset scatter: `out[f(i)] = value(i)` for
/// `i in 0..n`.
///
/// # Errors
/// Returns the first injectivity/bounds violation of `f`.
pub fn ind_write_fn<T, F, V>(out: &mut [T], n: usize, f: F, value: V) -> Result<(), IndOffsetsError>
where
    T: Send,
    F: Fn(usize) -> usize + Send + Sync,
    V: Fn(usize) -> T + Send + Sync,
{
    validate_fn_offsets(n, out.len(), &f)?;
    let view = SharedMutSlice::new(out);
    (0..n).into_par_iter().for_each(|i| {
        // SAFETY: f proven injective and in-bounds above; each i is
        // processed by exactly one task.
        unsafe { view.write(f(i), value(i)) };
    });
    Ok(())
}

/// Unchecked variant — the scary tier of the generalization.
///
/// # Safety
/// `f` must be injective over `0..n` with range within `out`.
pub unsafe fn ind_write_fn_unchecked<T, F, V>(out: &mut [T], n: usize, f: F, value: V)
where
    T: Send,
    F: Fn(usize) -> usize + Send + Sync,
    V: Fn(usize) -> T + Send + Sync,
{
    let view = SharedMutSlice::new(out);
    (0..n).into_par_iter().for_each(|i| {
        // SAFETY: caller contract.
        unsafe { view.write(f(i), value(i)) };
    });
}

/// Out-of-place matrix transpose expressed as a checked function-offset
/// scatter (`rows × cols`, row-major).
pub fn transpose<T: Copy + Send + Sync>(
    input: &[T],
    rows: usize,
    cols: usize,
) -> Result<Vec<T>, IndOffsetsError> {
    assert_eq!(input.len(), rows * cols, "shape mismatch");
    let mut out = input.to_vec();
    ind_write_fn(
        &mut out,
        rows * cols,
        |i| {
            let (r, c) = (i / cols, i % cols);
            c * rows + r
        },
        |i| input[i],
    )?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_small() {
        // 2x3 -> 3x2.
        let m = [1, 2, 3, 4, 5, 6];
        let t = transpose(&m, 2, 3).expect("valid");
        assert_eq!(t, vec![1, 4, 2, 5, 3, 6]);
    }

    #[test]
    fn transpose_is_involutive() {
        let n = if cfg!(miri) { 8 } else { 64 };
        let m: Vec<u64> = (0..n * n)
            .map(|i| rpb_parlay::random::hash64(i as u64))
            .collect();
        let t = transpose(&m, n, n).expect("valid");
        let tt = transpose(&t, n, n).expect("valid");
        assert_eq!(tt, m);
    }

    #[test]
    fn bit_reversal_permutation() {
        let bits = if cfg!(miri) { 6 } else { 10 };
        let n = 1usize << bits;
        let mut out = vec![0usize; n];
        ind_write_fn(
            &mut out,
            n,
            |i| i.reverse_bits() >> (usize::BITS - bits),
            |i| i,
        )
        .expect("bit reversal is a permutation");
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x.reverse_bits() >> (usize::BITS - bits), i);
        }
    }

    #[test]
    fn non_injective_function_rejected() {
        let mut out = vec![0u8; 100];
        let err = ind_write_fn(&mut out, 100, |i| i / 2, |_| 1).unwrap_err();
        assert!(matches!(err, IndOffsetsError::Duplicate { .. }), "{err:?}");
    }

    #[test]
    fn out_of_range_function_rejected() {
        let mut out = vec![0u8; 10];
        let err = ind_write_fn(&mut out, 100, |i| i, |_| 1).unwrap_err();
        assert!(
            matches!(err, IndOffsetsError::OutOfBounds { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn unchecked_matches_checked() {
        let bits = 8;
        let n = 1usize << bits;
        let mut a = vec![0usize; n];
        let mut b = vec![0usize; n];
        let f = |i: usize| i.reverse_bits() >> (usize::BITS - bits);
        ind_write_fn(&mut a, n, f, |i| i * 3).expect("valid");
        // SAFETY: bit reversal is a permutation.
        unsafe { ind_write_fn_unchecked(&mut b, n, f, |i| i * 3) };
        assert_eq!(a, b);
    }
}
