//! The paper's "benign race" case study (Sec. 5.2), done portably.
//!
//! The suffix-array code in PBBS marks which characters occur in a string
//! with racy byte stores — all racing tasks write the value `1`, so the
//! result is interleaving-independent. The paper explains why this is
//! *not* portable (compilers may split non-atomic stores across ISAs) and
//! why `rustc` correctly refuses the non-atomic version (see
//! [`crate::listings`] for the compile-fail proof). The accepted fix is
//! relaxed atomic stores, which compile to plain stores on every major
//! ISA — the race stays "benign", but now it is *defined*.

use std::sync::atomic::{AtomicU8, Ordering};

use rayon::prelude::*;

/// Marks which byte values occur in `data`: `present[c] == true` iff `c`
/// occurs. Implemented with relaxed atomic stores — the paper's
/// recommended portable expression of the benign race.
pub fn mark_present(data: &[u8]) -> [bool; 256] {
    let present: [AtomicU8; 256] = std::array::from_fn(|_| AtomicU8::new(0));
    data.par_iter().for_each(|&c| {
        // All writers store 1: a benign race made defined by atomics.
        present[c as usize].store(1, Ordering::Relaxed);
    });
    std::array::from_fn(|i| present[i].load(Ordering::Relaxed) == 1)
}

/// Compacts the present-set into the list of occurring byte values,
/// ascending (the way the suffix-array alphabet compaction uses it).
pub fn alphabet(data: &[u8]) -> Vec<u8> {
    let present = mark_present(data);
    (0u16..256)
        .filter(|&c| present[c as usize])
        .map(|c| c as u8)
        .collect()
}

/// Dense re-coding of `data` onto its occurring alphabet: returns
/// `(recoded, alphabet)` with `alphabet[recoded[i]] == data[i]`.
pub fn compact_alphabet(data: &[u8]) -> (Vec<u8>, Vec<u8>) {
    let alpha = alphabet(data);
    let mut code = [0u8; 256];
    for (i, &c) in alpha.iter().enumerate() {
        code[c as usize] = i as u8;
    }
    let recoded = data.par_iter().map(|&c| code[c as usize]).collect();
    (recoded, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_exactly_the_occurring_bytes() {
        let present = mark_present(b"abca");
        for c in 0u16..256 {
            let expected = matches!(c as u8, b'a' | b'b' | b'c');
            assert_eq!(present[c as usize], expected, "byte {c}");
        }
    }

    #[test]
    fn alphabet_is_sorted_and_exact() {
        assert_eq!(alphabet(b"banana"), vec![b'a', b'b', b'n']);
        assert_eq!(alphabet(b""), Vec::<u8>::new());
    }

    #[test]
    fn compaction_round_trips() {
        let data = b"mississippi".to_vec();
        let (recoded, alpha) = compact_alphabet(&data);
        let back: Vec<u8> = recoded.iter().map(|&r| alpha[r as usize]).collect();
        assert_eq!(back, data);
        // Codes are dense.
        assert!(recoded.iter().all(|&r| (r as usize) < alpha.len()));
    }

    #[test]
    fn heavy_contention_is_consistent() {
        // One million racing writers to 4 slots — any interleaving must
        // produce the same answer.
        let data: Vec<u8> = (0..1_000_000).map(|i| (i % 4) as u8).collect();
        let present = mark_present(&data);
        assert!(present[..4].iter().all(|&b| b));
        assert!(!present[4..].iter().any(|&b| b));
    }
}
