//! Panic-injection tests for the interior-unsafe scatter paths.
//!
//! The `par_ind_iter_mut` / `par_ind_chunks_mut` iterators hand out
//! disjoint `&mut` references derived from a shared raw pointer. A user
//! closure that panics mid-scatter unwinds through Rayon's join machinery
//! — these tests pin down that such an unwind (a) propagates the original
//! payload, (b) leaks no aliased `&mut` state (the buffer is immediately
//! reusable), and (c) skips no drops (every element constructed is
//! dropped exactly once, checked with instrumented element types).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use rayon::prelude::*;
use rpb_fearless::rng_ind::ParIndChunksMutExt;
use rpb_fearless::snd_ind::{ParIndIterMutExt, UniquenessCheck};
use rpb_parlay::panics::panic_message;
use rpb_parlay::seqdata::random_permutation;

#[test]
fn scatter_closure_panic_unwinds_clean() {
    static CREATED: AtomicUsize = AtomicUsize::new(0);
    static DROPPED: AtomicUsize = AtomicUsize::new(0);
    struct Tracked(u64);
    impl Tracked {
        fn new(v: u64) -> Self {
            CREATED.fetch_add(1, Ordering::SeqCst);
            Tracked(v)
        }
    }
    impl Drop for Tracked {
        fn drop(&mut self) {
            DROPPED.fetch_add(1, Ordering::SeqCst);
        }
    }

    let n = if cfg!(miri) { 64 } else { 4096 };
    let offsets = random_permutation(n, 21);
    {
        let mut out: Vec<Tracked> = (0..n as u64).map(Tracked::new).collect();
        let payload = catch_unwind(AssertUnwindSafe(|| {
            out.par_ind_iter_mut(&offsets)
                .enumerate()
                .for_each(|(i, slot)| {
                    if i == n / 2 {
                        panic!("injected scatter panic");
                    }
                    // Plain assignment: drops the old element, installs
                    // the new one. An unwind must not double-run either.
                    *slot = Tracked::new(i as u64);
                });
        }))
        .expect_err("injected panic must propagate out of the scatter");
        assert_eq!(panic_message(&*payload), "injected scatter panic");

        // No aliased state leaked: the same buffer revalidates and
        // scatters again immediately after the unwind.
        out.par_ind_iter_mut(&offsets)
            .enumerate()
            .for_each(|(i, slot)| *slot = Tracked::new(i as u64));
        for (i, &off) in offsets.iter().enumerate() {
            assert_eq!(out[off].0, i as u64);
        }
    }
    assert_eq!(
        CREATED.load(Ordering::SeqCst),
        DROPPED.load(Ordering::SeqCst),
        "every constructed element must be dropped exactly once"
    );
}

#[test]
fn chunks_closure_panic_unwinds_clean() {
    static CREATED: AtomicUsize = AtomicUsize::new(0);
    static DROPPED: AtomicUsize = AtomicUsize::new(0);
    struct Tracked(#[allow(dead_code)] u64);
    impl Tracked {
        fn new(v: u64) -> Self {
            CREATED.fetch_add(1, Ordering::SeqCst);
            Tracked(v)
        }
    }
    impl Drop for Tracked {
        fn drop(&mut self) {
            DROPPED.fetch_add(1, Ordering::SeqCst);
        }
    }

    let n = if cfg!(miri) { 60 } else { 3000 };
    let offsets: Vec<usize> = (0..=n / 10).map(|i| i * 10).collect();
    let panic_chunk = offsets.len() / 2;
    {
        let mut out: Vec<Tracked> = (0..n as u64).map(Tracked::new).collect();
        let payload = catch_unwind(AssertUnwindSafe(|| {
            out.par_ind_chunks_mut(&offsets)
                .enumerate()
                .for_each(|(i, chunk)| {
                    for slot in chunk.iter_mut() {
                        *slot = Tracked::new(i as u64);
                    }
                    if i == panic_chunk {
                        panic!("injected chunk panic");
                    }
                });
        }))
        .expect_err("injected panic must propagate out of the chunk fill");
        assert_eq!(panic_message(&*payload), "injected chunk panic");

        // Buffer stays usable after the unwind.
        out.par_ind_chunks_mut(&offsets)
            .for_each(|chunk| chunk.iter_mut().for_each(|slot| *slot = Tracked::new(7)));
    }
    assert_eq!(
        CREATED.load(Ordering::SeqCst),
        DROPPED.load(Ordering::SeqCst),
        "every constructed element must be dropped exactly once"
    );
}

#[test]
fn validation_panic_leaves_pool_usable() {
    // The checked constructor panics on invalid offsets while holding a
    // pooled mark table; the guard's Drop must return the table so later
    // validations still work.
    let n = if cfg!(miri) { 64 } else { 1024 };
    let mut out = vec![0u64; n];
    let mut bad = random_permutation(n, 3);
    bad[1] = bad[0]; // plant a duplicate
    for strategy in [
        UniquenessCheck::MarkTable,
        UniquenessCheck::Bitset,
        UniquenessCheck::Sort,
        UniquenessCheck::Adaptive,
    ] {
        let out_ref = &mut out;
        let bad_ref = &bad;
        let payload = catch_unwind(AssertUnwindSafe(move || {
            let _ = out_ref.try_par_ind_iter_mut(bad_ref, strategy).unwrap();
        }))
        .expect_err("duplicate offsets must fail validation");
        assert!(
            panic_message(&*payload).contains("Duplicate"),
            "unexpected message: {}",
            panic_message(&*payload)
        );
    }
    // Pool and validation machinery unharmed: a valid permutation passes
    // for every strategy and the scatter completes.
    let good = random_permutation(n, 4);
    for strategy in [
        UniquenessCheck::MarkTable,
        UniquenessCheck::Bitset,
        UniquenessCheck::Sort,
        UniquenessCheck::Adaptive,
    ] {
        out.try_par_ind_iter_mut(&good, strategy)
            .unwrap()
            .enumerate()
            .for_each(|(i, slot)| *slot = i as u64);
    }
    for (i, &off) in good.iter().enumerate() {
        assert_eq!(out[off], i as u64);
    }
}
