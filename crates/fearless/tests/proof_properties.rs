//! Property-based tests for the pooled uniqueness check and the
//! validation-proof tokens.

// Proptest drives hundreds of cases through rayon and touches the
// filesystem for failure persistence — far too slow for the interpreter.
// The Miri profile covers these paths with the deterministic small-N
// tests in the library and `miri_smoke.rs` instead.
#![cfg(not(miri))]

use proptest::prelude::*;
use rpb_fearless::proof::{self, validate_offsets_cached, ValidatedOffsets};
use rpb_fearless::snd_ind::{validate_offsets, IndOffsetsError, UniquenessCheck};
use rpb_fearless::ParIndProvedExt;

use rayon::prelude::*;

/// Sequential oracle for the uniqueness check.
fn oracle_accepts(offsets: &[usize], len: usize) -> bool {
    let mut seen = vec![false; len];
    offsets.iter().all(|&o| {
        o < len && {
            let fresh = !seen[o];
            if fresh {
                seen[o] = true;
            }
            fresh
        }
    })
}

const ALL_STRATEGIES: [UniquenessCheck; 4] = [
    UniquenessCheck::MarkTable,
    UniquenessCheck::Bitset,
    UniquenessCheck::Sort,
    UniquenessCheck::Adaptive,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every strategy agrees with the sequential oracle on accept/reject.
    /// (The *which* of several coexisting errors is reported is strategy-
    /// and schedule-dependent; the verdict must not be.)
    #[test]
    fn all_strategies_agree_with_oracle(
        offsets in proptest::collection::vec(0usize..96, 0..96),
        len in 0usize..96,
    ) {
        let want = oracle_accepts(&offsets, len);
        for strat in ALL_STRATEGIES {
            let got = validate_offsets(&offsets, len, strat);
            prop_assert_eq!(
                got.is_ok(),
                want,
                "strategy {:?} disagrees with oracle: {:?}",
                strat,
                got
            );
        }
    }

    /// Epoch reuse is sound: after any number of successful validations
    /// sharing pooled tables, a clean array still passes (stale marks from
    /// earlier epochs never fake a duplicate) and a duplicated array is
    /// still rejected (the epoch bump never erases detection).
    #[test]
    fn pooled_reuse_never_flips_a_verdict(
        n in 2usize..300,
        dup_at in 0usize..300,
        rounds in 1usize..4,
    ) {
        let clean: Vec<usize> = (0..n).collect();
        let mut dup = clean.clone();
        dup[dup_at % n] = clean[(dup_at + 1) % n];
        for _ in 0..rounds {
            prop_assert!(validate_offsets(&clean, n, UniquenessCheck::MarkTable).is_ok());
            let err = validate_offsets(&dup, n, UniquenessCheck::MarkTable);
            prop_assert!(
                matches!(err, Err(IndOffsetsError::Duplicate { .. })),
                "{:?}",
                err
            );
        }
    }

    /// A proof only exists for arrays the plain check accepts, and a
    /// scatter through the proof lands exactly where a checked scatter
    /// would.
    #[test]
    fn proofs_exist_iff_validation_passes(
        offsets in proptest::collection::vec(0usize..64, 0..64),
        len in 0usize..64,
    ) {
        let direct = validate_offsets(&offsets, len, UniquenessCheck::Adaptive);
        let cached = validate_offsets_cached(&offsets, len, UniquenessCheck::Adaptive);
        prop_assert_eq!(direct.is_ok(), cached.is_ok());
        if let Ok(proof) = cached {
            prop_assert_eq!(proof.target_len(), len);
            prop_assert_eq!(proof.as_ptr(), offsets.as_ptr());
            let mut out = vec![usize::MAX; len];
            out.par_ind_iter_mut_proved(&proof)
                .enumerate()
                .for_each(|(i, slot)| *slot = i);
            for (i, &o) in offsets.iter().enumerate() {
                prop_assert_eq!(out[o], i);
            }
        }
    }
}

// The mutated-after-validation property (satellite of ISSUE 2): a proof
// whose offsets changed since validation must never drive an iterator in
// debug builds. Safe code cannot mutate behind the proof's borrow, so the
// hidden test constructor stands in for an unsafe/FFI tamperer.
#[cfg(debug_assertions)]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn stale_proofs_never_drive_an_iterator(
        n in 2usize..64,
        at in 0usize..64,
        delta in 1usize..64,
    ) {
        let mut offsets: Vec<usize> = (0..n).collect();
        let pristine = proof::fingerprint_for_tests(&offsets, n);
        // Mutate one entry to a different in-bounds value — injecting a
        // duplicate the original validation never saw.
        let at = at % n;
        offsets[at] = (offsets[at] + delta) % n;
        prop_assume!(offsets[at] != at);
        // SAFETY: deliberately violated — that is the property under test.
        // Construction through the proof must panic on the fingerprint
        // re-check before any unchecked iterator exists.
        let stale = unsafe { ValidatedOffsets::from_parts_for_tests(&offsets, n, pristine) };
        // Construction alone must panic (the fingerprint re-check), so the
        // iterator is never consumed — no aliased writes even if this
        // property ever regresses.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut out = vec![0u8; n];
            let _unreached = out.par_ind_iter_mut_proved(&stale);
        }))
        .is_err();
        prop_assert!(caught, "stale proof accepted a mutated offsets array");
    }
}
