//! Pins the pooled fast path's steady-state accounting.
//!
//! This lives in its own integration-test binary (its own process) so the
//! global pool and its statistics are not perturbed by the library's unit
//! tests, which run concurrently within their shared binary. Everything is
//! one `#[test]` for the same reason: two tests here would share the
//! globals again.

use rpb_fearless::pool;
use rpb_fearless::proof::validate_offsets_cached;
use rpb_fearless::snd_ind::{validate_offsets, UniquenessCheck};
use rpb_fearless::ParIndProvedExt;

use rayon::prelude::*;

#[test]
fn steady_state_validation_is_allocation_free() {
    let n = 10_000;
    let offsets: Vec<usize> = (0..n).collect();

    pool::clear();
    pool::set_enabled(true);
    pool::reset_stats();

    // Cold pool: the first MarkTable validation allocates — exactly once.
    validate_offsets(&offsets, n, UniquenessCheck::MarkTable).expect("identity is unique");
    assert_eq!(
        pool::stats(),
        pool::PoolStats {
            hits: 0,
            misses: 1,
            epoch_rollovers: 0
        }
    );

    // Steady state: every further validation is a pool hit. This is the
    // acceptance criterion — zero heap allocation per check.
    for _ in 0..100 {
        validate_offsets(&offsets, n, UniquenessCheck::MarkTable).expect("still unique");
    }
    let s = pool::stats();
    assert_eq!(
        s.misses, 1,
        "steady-state MarkTable checks must not allocate"
    );
    assert_eq!(s.hits, 100);

    // Same for the bitset strategy (its own pool).
    pool::reset_stats();
    for _ in 0..51 {
        validate_offsets(&offsets, n, UniquenessCheck::Bitset).expect("still unique");
    }
    let s = pool::stats();
    assert_eq!(s.misses, 1, "steady-state Bitset checks must not allocate");
    assert_eq!(s.hits, 50);

    // Adaptive resolves to MarkTable at this size and reuses the table
    // already pooled above: no further allocation at all.
    pool::reset_stats();
    for _ in 0..10 {
        validate_offsets(&offsets, n, UniquenessCheck::Adaptive).expect("still unique");
    }
    assert_eq!(
        pool::stats(),
        pool::PoolStats {
            hits: 10,
            misses: 0,
            epoch_rollovers: 0
        }
    );

    // A proof amortizes even the pool traffic: one acquisition at
    // validation, none per round.
    pool::reset_stats();
    let proof =
        validate_offsets_cached(&offsets, n, UniquenessCheck::MarkTable).expect("still unique");
    assert_eq!(pool::stats().hits + pool::stats().misses, 1);
    let mut out = vec![0u64; n];
    for round in 0..8u64 {
        out.par_ind_iter_mut_proved(&proof)
            .for_each(|slot| *slot = round);
    }
    assert_eq!(
        pool::stats().hits + pool::stats().misses,
        1,
        "proof reuse must not touch the pool"
    );

    // Disabling the pool reproduces the allocate-per-call baseline — the
    // "fresh" cost the bench harness measures against the amortized one.
    pool::set_enabled(false);
    pool::reset_stats();
    for _ in 0..5 {
        validate_offsets(&offsets, n, UniquenessCheck::MarkTable).expect("still unique");
    }
    assert_eq!(
        pool::stats(),
        pool::PoolStats {
            hits: 0,
            misses: 5,
            epoch_rollovers: 0
        }
    );
    pool::set_enabled(true);

    // The lock-free availability hint consulted by Adaptive's resolve()
    // mirrors pool content: the epoch table released above is visible
    // without taking the pool mutex, and clear() retracts it.
    assert!(pool::epoch_pool_has(n));
    assert!(!pool::epoch_pool_has(pool::MAX_POOLED_EPOCH_SLOTS + 1));
    pool::clear();
    assert!(!pool::epoch_pool_has(1));
}
