//! Pins the pooled fast path's steady-state accounting.
//!
//! This lives in its own integration-test binary (its own process) so the
//! global pool and its statistics are not perturbed by the library's unit
//! tests, which run concurrently within their shared binary. Everything is
//! one `#[test]` for the same reason: two tests here would share the
//! globals again.

use rpb_fearless::pool;
use rpb_fearless::proof::validate_offsets_cached;
use rpb_fearless::snd_ind::{validate_offsets, UniquenessCheck};
use rpb_fearless::ParIndProvedExt;

use rayon::prelude::*;

#[test]
fn steady_state_validation_is_allocation_free() {
    let n = if cfg!(miri) { 256 } else { 10_000 };
    let mark_rounds = if cfg!(miri) { 8 } else { 100 };
    let bitset_rounds = if cfg!(miri) { 5 } else { 51 };
    let adaptive_rounds = if cfg!(miri) { 3 } else { 10 };
    let proof_rounds = if cfg!(miri) { 2 } else { 8 };
    let fresh_rounds = if cfg!(miri) { 2 } else { 5 };
    let offsets: Vec<usize> = (0..n).collect();

    pool::clear();
    pool::set_enabled(true);
    pool::reset_stats();

    // Cold pool: the first MarkTable validation allocates — exactly once.
    validate_offsets(&offsets, n, UniquenessCheck::MarkTable).expect("identity is unique");
    assert_eq!(
        pool::stats(),
        pool::PoolStats {
            hits: 0,
            misses: 1,
            epoch_rollovers: 0
        }
    );

    // Steady state: every further validation is a pool hit. This is the
    // acceptance criterion — zero heap allocation per check.
    for _ in 0..mark_rounds {
        validate_offsets(&offsets, n, UniquenessCheck::MarkTable).expect("still unique");
    }
    let s = pool::stats();
    assert_eq!(
        s.misses, 1,
        "steady-state MarkTable checks must not allocate"
    );
    assert_eq!(s.hits, mark_rounds);

    // Same for the bitset strategy (its own pool).
    pool::reset_stats();
    for _ in 0..bitset_rounds {
        validate_offsets(&offsets, n, UniquenessCheck::Bitset).expect("still unique");
    }
    let s = pool::stats();
    assert_eq!(s.misses, 1, "steady-state Bitset checks must not allocate");
    assert_eq!(s.hits, bitset_rounds - 1);

    // Adaptive resolves to MarkTable at this size and reuses the table
    // already pooled above: no further allocation at all.
    pool::reset_stats();
    for _ in 0..adaptive_rounds {
        validate_offsets(&offsets, n, UniquenessCheck::Adaptive).expect("still unique");
    }
    assert_eq!(
        pool::stats(),
        pool::PoolStats {
            hits: adaptive_rounds,
            misses: 0,
            epoch_rollovers: 0
        }
    );

    // A proof amortizes even the pool traffic: one acquisition at
    // validation, none per round.
    pool::reset_stats();
    let proof =
        validate_offsets_cached(&offsets, n, UniquenessCheck::MarkTable).expect("still unique");
    assert_eq!(pool::stats().hits + pool::stats().misses, 1);
    let mut out = vec![0u64; n];
    for round in 0..proof_rounds {
        out.par_ind_iter_mut_proved(&proof)
            .for_each(|slot| *slot = round);
    }
    assert_eq!(
        pool::stats().hits + pool::stats().misses,
        1,
        "proof reuse must not touch the pool"
    );

    // Disabling the pool reproduces the allocate-per-call baseline — the
    // "fresh" cost the bench harness measures against the amortized one.
    pool::set_enabled(false);
    pool::reset_stats();
    for _ in 0..fresh_rounds {
        validate_offsets(&offsets, n, UniquenessCheck::MarkTable).expect("still unique");
    }
    assert_eq!(
        pool::stats(),
        pool::PoolStats {
            hits: 0,
            misses: fresh_rounds,
            epoch_rollovers: 0
        }
    );
    pool::set_enabled(true);

    // The lock-free availability hint consulted by Adaptive's resolve()
    // mirrors pool content: the epoch table released above is visible
    // without taking the pool mutex, and clear() retracts it.
    assert!(pool::epoch_pool_has(n));
    assert!(!pool::epoch_pool_has(pool::MAX_POOLED_EPOCH_SLOTS + 1));
    pool::clear();
    assert!(!pool::epoch_pool_has(1));

    // Epoch rollover soundness: park the pooled table's epoch at the edge
    // of u32 and drive validations across the wrap. The re-zero must keep
    // verdicts exact — valid permutations stay accepted (no stale stamp
    // reads as a mark) and duplicates stay rejected — with exactly one
    // rollover counted.
    pool::reset_stats();
    validate_offsets(&offsets, n, UniquenessCheck::MarkTable).expect("re-seed the pool");
    {
        let mut guard = pool::acquire_epoch_marks(n);
        guard.force_epoch_for_tests(u32::MAX - 3);
    } // drop returns the near-wrap table to the pool
    let mut dup = offsets.clone();
    dup[0] = dup[1];
    // Each round acquires twice (valid + duplicate), stepping the epoch
    // MAX-2, MAX-1, MAX, wrap -> 1, 2, 3 across the six acquisitions.
    for round in 0..3 {
        validate_offsets(&offsets, n, UniquenessCheck::MarkTable).unwrap_or_else(|e| {
            panic!("round {round}: valid permutation rejected across rollover: {e}")
        });
        assert!(
            validate_offsets(&dup, n, UniquenessCheck::MarkTable).is_err(),
            "round {round}: duplicate accepted across rollover"
        );
    }
    let s = pool::stats();
    assert_eq!(s.epoch_rollovers, 1, "exactly one re-zero at the wrap");
    assert_eq!(
        s.misses, 1,
        "rollover re-zeroes in place; it must not reallocate"
    );
}
