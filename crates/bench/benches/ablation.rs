//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * uniqueness-check strategy (mark-table vs sort) across sizes,
//! * scheduler choice for bfs/sssp (MultiQueue vs frontier vs
//!   delta-stepping),
//! * MultiQueue internal queue count (quality/throughput trade).
//!
//! Run with: `cargo bench -p rpb-bench --bench ablation`

use std::sync::OnceLock;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rayon::prelude::*;
use rpb_bench::{Scale, Workloads};
use rpb_fearless::{ParIndIterMutExt, UniquenessCheck};

fn workloads() -> &'static Workloads {
    static W: OnceLock<Workloads> = OnceLock::new();
    W.get_or_init(|| Workloads::build(Scale::small()))
}

fn bench_check_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_check_strategy");
    group.sample_size(10);
    for size in [10_000usize, 100_000, 1_000_000] {
        let offsets = rpb_parlay::seqdata::random_permutation(size, 7);
        for (label, strat) in [
            ("mark", UniquenessCheck::MarkTable),
            ("sort", UniquenessCheck::Sort),
        ] {
            group.bench_with_input(BenchmarkId::new(label, size), &size, |b, _| {
                let mut out = vec![0u64; size];
                b.iter(|| {
                    out.try_par_ind_iter_mut(&offsets, strat)
                        .expect("valid")
                        .enumerate()
                        .for_each(|(i, slot)| *slot = i as u64);
                });
            });
        }
    }
    group.finish();
}

fn bench_schedulers(c: &mut Criterion) {
    let w = workloads();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut group = c.benchmark_group("ablation_scheduler");
    group.sample_size(10);
    group.bench_function("bfs_road/multiqueue", |b| {
        b.iter(|| rpb_suite::bfs::run_par(&w.road, 0, threads, rpb_fearless::ExecMode::Sync));
    });
    group.bench_function("bfs_road/frontier", |b| {
        b.iter(|| rpb_suite::bfs_frontier::run_par(&w.road, 0));
    });
    let delta = rpb_suite::sssp_delta::default_delta(&w.wroad);
    group.bench_function("sssp_road/multiqueue", |b| {
        b.iter(|| rpb_suite::sssp::run_par(&w.wroad, 0, threads, rpb_fearless::ExecMode::Sync));
    });
    group.bench_function("sssp_road/delta_stepping", |b| {
        b.iter(|| rpb_suite::sssp_delta::run_par(&w.wroad, 0, delta).expect("non-zero delta"));
    });
    group.finish();
}

fn bench_mq_queue_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mq_queues");
    group.sample_size(10);
    let items: Vec<u64> = (0..100_000u64).map(rpb_parlay::random::hash64).collect();
    for q in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("push_pop", q), &q, |b, &q| {
            b.iter(|| {
                let mq: rpb_multiqueue::MultiQueue<u64> = rpb_multiqueue::MultiQueue::new(q);
                for &p in &items {
                    mq.push(p, p);
                }
                while mq.pop().is_some() {}
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_check_strategies,
    bench_schedulers,
    bench_mq_queue_count
);
criterion_main!(benches);
