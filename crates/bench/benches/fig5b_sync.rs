//! Criterion bench for Fig. 5(b): unnecessary synchronization (relaxed
//! atomics / mutexes) vs unsafe for the `SngInd` and `AW` benchmarks,
//! including the `hist` large-struct Mutex outlier.
//!
//! Run with: `cargo bench -p rpb-bench --bench fig5b_sync`

use std::sync::OnceLock;

use criterion::{criterion_group, criterion_main, Criterion};
use rpb_bench::runner::FIG5B_PAIRS;
use rpb_bench::{run_case, Scale, Workloads};
use rpb_fearless::ExecMode;

fn workloads() -> &'static Workloads {
    static W: OnceLock<Workloads> = OnceLock::new();
    W.get_or_init(|| Workloads::build(Scale::small()))
}

fn bench_fig5b(c: &mut Criterion) {
    let w = workloads();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut group = c.benchmark_group("fig5b");
    group.sample_size(10);
    for name in FIG5B_PAIRS {
        for mode in [ExecMode::Unsafe, ExecMode::Sync] {
            group.bench_function(format!("{name}/{mode}"), |b| {
                b.iter(|| run_case(name, w, mode, threads, 1));
            });
        }
    }
    group.finish();

    // The hist word-sized counters for contrast with the large-struct
    // Mutex variant run by `run_case("hist", ..)`.
    let mut group = c.benchmark_group("fig5b_hist_word");
    group.sample_size(10);
    let range = w.seq.len() as u64;
    for mode in [ExecMode::Unsafe, ExecMode::Sync] {
        group.bench_function(format!("word_bins/{mode}"), |b| {
            b.iter(|| rpb_suite::hist::run_par(&w.seq, 256, range, mode).expect("valid buckets"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5b);
criterion_main!(benches);
