//! Criterion bench for Fig. 5(a): the `par_ind_iter_mut` uniqueness
//! check's cost on the `SngInd`-heavy benchmarks (`bw`, `lrs`, `sa`),
//! checked vs unsafe, plus a microbenchmark isolating the check itself
//! for both strategies.
//!
//! Run with: `cargo bench -p rpb-bench --bench fig5a_checked`

use std::sync::OnceLock;

use criterion::{criterion_group, criterion_main, Criterion};
use rayon::prelude::*;
use rpb_bench::runner::FIG5A_PAIRS;
use rpb_bench::{run_case, Scale, Workloads};
use rpb_fearless::{ExecMode, ParIndIterMutExt, UniquenessCheck};

fn workloads() -> &'static Workloads {
    static W: OnceLock<Workloads> = OnceLock::new();
    W.get_or_init(|| Workloads::build(Scale::small()))
}

fn bench_fig5a(c: &mut Criterion) {
    let w = workloads();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut group = c.benchmark_group("fig5a");
    group.sample_size(10);
    for name in FIG5A_PAIRS {
        for mode in [ExecMode::Unsafe, ExecMode::Checked] {
            group.bench_function(format!("{name}/{mode}"), |b| {
                b.iter(|| run_case(name, w, mode, threads, 1));
            });
        }
    }
    group.finish();

    // Isolated scatter: the pure cost of the check strategies.
    let n = 1_000_000;
    let offsets = rpb_parlay::seqdata::random_permutation(n, 1);
    let mut group = c.benchmark_group("fig5a_scatter");
    group.sample_size(10);
    group.bench_function("unsafe", |b| {
        let mut out = vec![0u64; n];
        let view_src: Vec<u64> = (0..n as u64).collect();
        b.iter(|| {
            let view = rpb_fearless::SharedMutSlice::new(&mut out);
            offsets.par_iter().enumerate().for_each(|(i, &o)| {
                // SAFETY: permutation offsets.
                unsafe { view.write(o, view_src[i]) };
            });
        });
    });
    for (label, strat) in [
        ("checked_mark", UniquenessCheck::MarkTable),
        ("checked_sort", UniquenessCheck::Sort),
    ] {
        group.bench_function(label, |b| {
            let mut out = vec![0u64; n];
            b.iter(|| {
                out.try_par_ind_iter_mut(&offsets, strat)
                    .expect("valid")
                    .enumerate()
                    .for_each(|(i, slot)| *slot = i as u64);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5a);
criterion_main!(benches);
