//! Criterion bench for Fig. 6 (Appendix A): the five parallelization
//! strategies for the element-wise hash task, Listings 11–15.
//!
//! Run with: `cargo bench -p rpb-bench --bench fig6_rayon`

use criterion::{criterion_group, criterion_main, Criterion};
use rpb_bench::fig6::*;

const N: usize = 2_000_000;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter_batched(
            || (0..N).collect::<Vec<usize>>(),
            |mut v| serial_hash(&mut v),
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("par_1_thread_per_task_capped_2000", |b| {
        b.iter_batched(
            || (0..N).collect::<Vec<usize>>(),
            |mut v| par_hash_thread_per_task(&mut v, 2000),
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("par_2_thread_per_core", |b| {
        b.iter_batched(
            || (0..N).collect::<Vec<usize>>(),
            |mut v| par_hash_thread_per_core(&mut v),
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("par_3_job_queue", |b| {
        b.iter_batched(
            || (0..N).collect::<Vec<usize>>(),
            |mut v| par_hash_job_queue(&mut v),
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("par_rayon", |b| {
        b.iter_batched(
            || (0..N).collect::<Vec<usize>>(),
            |mut v| par_hash_rayon(&mut v),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
