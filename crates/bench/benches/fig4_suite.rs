//! Criterion bench for Fig. 4: every benchmark-input pair in its
//! paper-recommended mode, plus the sequential baseline, at small scale.
//!
//! Run with: `cargo bench -p rpb-bench --bench fig4_suite`

use std::sync::OnceLock;

use criterion::{criterion_group, criterion_main, Criterion};
use rpb_bench::runner::{recommended_mode, run_seq_case};
use rpb_bench::{run_case, Scale, Workloads, ALL_PAIRS};

fn workloads() -> &'static Workloads {
    static W: OnceLock<Workloads> = OnceLock::new();
    W.get_or_init(|| Workloads::build(Scale::small()))
}

fn bench_fig4(c: &mut Criterion) {
    let w = workloads();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    for name in ALL_PAIRS {
        let mode = recommended_mode(name);
        group.bench_function(format!("{name}/par"), |b| {
            b.iter(|| run_case(name, w, mode, threads, 1));
        });
        group.bench_function(format!("{name}/seq"), |b| {
            b.iter(|| run_seq_case(name, w, 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
