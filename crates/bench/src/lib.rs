//! # rpb-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (Sec. 7 and Appendix A). The `rpb` binary drives it:
//!
//! ```text
//! rpb table1            # benchmark × pattern matrix
//! rpb table2            # input graph characteristics
//! rpb table3            # pattern → expression → fearlessness
//! rpb fig3              # access-pattern distribution (+ §7.2 headline)
//! rpb fig4  [opts]      # parallel vs sequential, 1 and N threads
//! rpb fig5a [opts]      # par_ind_iter_mut check overhead (bw, lrs, sa)
//! rpb fig5b [opts]      # synchronization overhead (12 pairs)
//! rpb fig6  [opts]      # Rayon-justification microbenchmark
//! rpb all   [opts]      # everything
//! ```
//!
//! Options: `--scale small|medium|large`, `--threads N`.
//!
//! See EXPERIMENTS.md for the mapping to the paper's numbers and the
//! substitutions (this machine is not a 24-core `c5.metal`; the *shape*
//! of each comparison is the reproduction target).

pub mod fig6;
pub mod figures;
pub mod record;
pub mod runner;
pub mod scale;
pub mod workloads;

pub use record::{EnvInfo, RunRecord};
pub use runner::{run_case, BenchSpec, ALL_PAIRS};
pub use scale::Scale;
pub use workloads::Workloads;

use std::time::{Duration, Instant};

/// Result of one timed measurement: best and mean over the measured
/// repetitions (warmup excluded).
///
/// The harness prints `best` (the lower-variance choice for a noisy shared
/// container; changes no ratios vs. the paper's means over 10 runs) and the
/// `--json` run records carry both, so the `BENCH_*.json` perf trajectory
/// can track either statistic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimingStats {
    /// Minimum measured repetition.
    pub best: Duration,
    /// Mean over the measured repetitions.
    pub mean: Duration,
    /// Number of measured repetitions (≥ 1; warmup not counted).
    pub reps: usize,
}

impl TimingStats {
    /// `best` in whole nanoseconds.
    pub fn best_ns(&self) -> u128 {
        self.best.as_nanos()
    }

    /// `mean` in whole nanoseconds.
    pub fn mean_ns(&self) -> u128 {
        self.mean.as_nanos()
    }
}

/// Times `f` with one warmup and `reps` measured repetitions.
pub fn time_best<F: FnMut()>(reps: usize, mut f: F) -> TimingStats {
    f(); // warmup
    let reps = reps.max(1);
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        let d = t0.elapsed();
        best = best.min(d);
        total += d;
    }
    TimingStats {
        best,
        mean: total / reps as u32,
        reps,
    }
}

/// Geometric mean of ratios.
pub fn gmean(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return f64::NAN;
    }
    (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_of_identity() {
        assert!((gmean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((gmean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!(gmean(&[]).is_nan());
    }

    #[test]
    fn time_best_returns_consistent_stats() {
        let ts = time_best(3, || {
            std::hint::black_box((0..1000u64).sum::<u64>());
        });
        assert_eq!(ts.reps, 3);
        assert!(
            ts.best <= ts.mean,
            "best {:?} > mean {:?}",
            ts.best,
            ts.mean
        );
        assert!(ts.mean < Duration::from_secs(1));
    }
}
