//! # rpb-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (Sec. 7 and Appendix A). The `rpb` binary drives it:
//!
//! ```text
//! rpb table1            # benchmark × pattern matrix
//! rpb table2            # input graph characteristics
//! rpb table3            # pattern → expression → fearlessness
//! rpb fig3              # access-pattern distribution (+ §7.2 headline)
//! rpb fig4  [opts]      # parallel vs sequential, 1 and N threads
//! rpb fig5a [opts]      # par_ind_iter_mut check overhead (bw, lrs, sa)
//! rpb fig5b [opts]      # synchronization overhead (12 pairs)
//! rpb fig6  [opts]      # Rayon-justification microbenchmark
//! rpb all   [opts]      # everything
//! rpb verify [opts]     # cross-mode differential verification matrix
//! rpb gate  <record|compare|check> [opts]   # deterministic perf gate
//! ```
//!
//! Options: `--scale gate|small|medium|large`, `--threads N`; `verify`
//! additionally takes `--suite a,b,...`, `--mode m,...`, and
//! `--workers n,...` (see [`verifier`]).
//!
//! See EXPERIMENTS.md for the mapping to the paper's numbers and the
//! substitutions (this machine is not a 24-core `c5.metal`; the *shape*
//! of each comparison is the reproduction target).

pub mod fig6;
pub mod figures;
pub mod gate;
pub mod record;
pub mod runner;
pub mod scale;
pub mod verifier;
pub mod workloads;

pub use record::{EnvInfo, RunRecord};
pub use runner::{run_case, BenchSpec, ALL_PAIRS};
pub use scale::Scale;
pub use workloads::Workloads;

use std::time::{Duration, Instant};

/// Result of one timed measurement: best, mean, and robust order
/// statistics (median and median absolute deviation) over the measured
/// repetitions (warmup excluded).
///
/// The harness prints `best` (the lower-variance choice for a noisy shared
/// container; changes no ratios vs. the paper's means over 10 runs) and the
/// `--json` run records carry all four, so the `BENCH_*.json` perf
/// trajectory can track any statistic. `median`/`mad` are what the perf
/// gate's soft wall-clock comparison uses: the median ignores one-off
/// scheduler hiccups entirely, and the MAD gives a scale-free noise bound
/// that stays meaningful on shared CI runners.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimingStats {
    /// Minimum measured repetition.
    pub best: Duration,
    /// Mean over the measured repetitions.
    pub mean: Duration,
    /// Median measured repetition (upper-middle element for even `reps`).
    pub median: Duration,
    /// Median absolute deviation from `median` (same upper-middle
    /// convention); 0 for a single repetition.
    pub mad: Duration,
    /// Number of measured repetitions (≥ 1; warmup not counted).
    pub reps: usize,
}

impl TimingStats {
    /// `best` in whole nanoseconds.
    pub fn best_ns(&self) -> u128 {
        self.best.as_nanos()
    }

    /// `mean` in whole nanoseconds.
    pub fn mean_ns(&self) -> u128 {
        self.mean.as_nanos()
    }

    /// `median` in whole nanoseconds.
    pub fn median_ns(&self) -> u128 {
        self.median.as_nanos()
    }

    /// `mad` in whole nanoseconds.
    pub fn mad_ns(&self) -> u128 {
        self.mad.as_nanos()
    }

    /// Builds the statistics from raw per-repetition samples.
    ///
    /// # Panics
    /// Panics on an empty sample set.
    pub fn from_samples(samples: &[Duration]) -> TimingStats {
        assert!(!samples.is_empty(), "TimingStats needs at least one sample");
        let best = *samples.iter().min().expect("non-empty");
        let total: Duration = samples.iter().sum();
        let median = median_of(samples);
        let deviations: Vec<Duration> = samples.iter().map(|&s| s.abs_diff(median)).collect();
        TimingStats {
            best,
            mean: total / samples.len() as u32,
            median,
            mad: median_of(&deviations),
            reps: samples.len(),
        }
    }
}

/// Upper-middle median (element at `len / 2` of the sorted samples for
/// even lengths — no averaging, so the value is always one that was
/// actually measured).
fn median_of(samples: &[Duration]) -> Duration {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted[sorted.len() / 2]
}

/// Times `f` with one warmup and `reps` measured repetitions.
pub fn time_best<F: FnMut()>(reps: usize, mut f: F) -> TimingStats {
    f(); // warmup
    let reps = reps.max(1);
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed());
    }
    TimingStats::from_samples(&samples)
}

/// Geometric mean of ratios.
pub fn gmean(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return f64::NAN;
    }
    (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_of_identity() {
        assert!((gmean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((gmean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!(gmean(&[]).is_nan());
    }

    #[test]
    fn time_best_returns_consistent_stats() {
        let ts = time_best(3, || {
            std::hint::black_box((0..1000u64).sum::<u64>());
        });
        assert_eq!(ts.reps, 3);
        assert!(
            ts.best <= ts.mean,
            "best {:?} > mean {:?}",
            ts.best,
            ts.mean
        );
        assert!(ts.best <= ts.median);
        assert!(ts.mean < Duration::from_secs(1));
    }

    #[test]
    fn from_samples_computes_robust_statistics() {
        let ns = |v: u64| Duration::from_nanos(v);
        // Odd count with one wild outlier: the median and MAD ignore it.
        let ts = TimingStats::from_samples(&[ns(100), ns(110), ns(90), ns(105), ns(10_000)]);
        assert_eq!(ts.best, ns(90));
        assert_eq!(ts.median, ns(105));
        // Deviations from 105: [5, 5, 15, 0, 9895] -> median 5.
        assert_eq!(ts.mad, ns(5));
        assert_eq!(ts.reps, 5);

        // Even count: upper-middle convention, no averaging.
        let ts = TimingStats::from_samples(&[ns(10), ns(20), ns(30), ns(40)]);
        assert_eq!(ts.median, ns(30));

        // Single sample: degenerate but defined.
        let ts = TimingStats::from_samples(&[ns(7)]);
        assert_eq!((ts.best, ts.median, ts.mad), (ns(7), ns(7), Duration::ZERO));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn from_samples_rejects_empty() {
        TimingStats::from_samples(&[]);
    }
}
