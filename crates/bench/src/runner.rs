//! Per-benchmark execution: the 20 benchmark-input pairs of Fig. 4 and
//! their sequential baselines.

use rpb_fearless::ExecMode;
use rpb_parlay::exec::{default_backend, BackendKind};
use rpb_suite::{bfs, bw, dedup, dr, hist, isort, lrs, mis, mm, msf, sa, sf, sort, sssp};

use crate::workloads::Workloads;
use crate::{time_best, TimingStats};

/// One benchmark-input pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BenchSpec {
    /// Pair label as in Fig. 4 ("mis-link", "sort", ...).
    pub name: &'static str,
}

/// The 20 benchmark-input pairs of Fig. 4, in its x-axis order.
pub const ALL_PAIRS: [&str; 20] = [
    "bw",
    "lrs",
    "sa",
    "dr",
    "mis-link",
    "mis-road",
    "mm-road",
    "mm-rmat",
    "sf-link",
    "sf-road",
    "msf-rmat",
    "msf-road",
    "sort",
    "dedup",
    "hist",
    "isort",
    "bfs-road",
    "bfs-link",
    "sssp-link",
    "sssp-road",
];

/// The benchmarks of Fig. 5(a): the heavy `SngInd` uniqueness check.
pub const FIG5A_PAIRS: [&str; 3] = ["bw", "lrs", "sa"];

/// The pairs of Fig. 5(b): unnecessary synchronization for SngInd/AW.
pub const FIG5B_PAIRS: [&str; 12] = [
    "bw", "lrs", "sa", "mis-link", "mis-road", "mm-rmat", "mm-road", "msf-rmat", "msf-road",
    "sf-link", "sf-road", "hist",
];

/// Executes one parallel benchmark run inside the current Rayon pool
/// (MultiQueue benchmarks take `threads` directly). Returns best/mean
/// timing over `reps` measured repetitions. Runs on the process-default
/// backend; see [`run_case_on`].
pub fn run_case(
    name: &str,
    w: &Workloads,
    mode: ExecMode,
    threads: usize,
    reps: usize,
) -> TimingStats {
    run_case_on(default_backend(), name, w, mode, threads, reps)
}

/// [`run_case`] with an explicit scheduling backend. Only the MultiQueue
/// pairs (`bfs-*`/`sssp-*`) are sensitive to it — everything else runs
/// on the ambient Rayon pool the harness installed around this call.
pub fn run_case_on(
    backend: BackendKind,
    name: &str,
    w: &Workloads,
    mode: ExecMode,
    threads: usize,
    reps: usize,
) -> TimingStats {
    let key_bits = 64 - (w.seq.len() as u64).leading_zeros();
    match name {
        "bw" => time_best(reps, || {
            std::hint::black_box(
                bw::run_par(&w.bwt, mode).expect("bw: workload BWT is well-formed"),
            );
        }),
        "lrs" => time_best(reps, || {
            std::hint::black_box(lrs::run_par(&w.text, mode));
        }),
        "sa" => time_best(reps, || {
            std::hint::black_box(sa::run_par(&w.text, mode));
        }),
        "dr" => time_best(reps, || {
            std::hint::black_box(dr::run_par(&w.points, mode));
        }),
        "mis-link" => time_best(reps, || {
            std::hint::black_box(mis::run_par(&w.link, mode));
        }),
        "mis-road" => time_best(reps, || {
            std::hint::black_box(mis::run_par(&w.road, mode));
        }),
        "mm-rmat" => time_best(reps, || {
            std::hint::black_box(mm::run_par(w.rmat_edges.0, &w.rmat_edges.1, mode));
        }),
        "mm-road" => time_best(reps, || {
            std::hint::black_box(mm::run_par(w.road_edges.0, &w.road_edges.1, mode));
        }),
        "sf-link" => time_best(reps, || {
            std::hint::black_box(sf::run_par(w.link_edges.0, &w.link_edges.1, mode));
        }),
        "sf-road" => time_best(reps, || {
            std::hint::black_box(sf::run_par(w.road_edges.0, &w.road_edges.1, mode));
        }),
        "msf-rmat" => time_best(reps, || {
            std::hint::black_box(msf::run_par(w.rmat_wedges.0, &w.rmat_wedges.1, mode));
        }),
        "msf-road" => time_best(reps, || {
            std::hint::black_box(msf::run_par(w.road_wedges.0, &w.road_wedges.1, mode));
        }),
        "sort" => time_best(reps, || {
            let mut v = w.seq.clone();
            sort::run_par(&mut v, mode);
            std::hint::black_box(v);
        }),
        "dedup" => time_best(reps, || {
            std::hint::black_box(dedup::run_par(&w.seq, mode));
        }),
        "hist" => time_best(reps, || {
            // The paper's hist uses "large structs"; the Sync variant is
            // the Mutex-per-bin configuration of Fig. 5(b).
            std::hint::black_box(
                hist::run_large(&w.seq, 256, w.seq.len() as u64, mode)
                    .expect("hist: 256 buckets over a non-zero range is valid"),
            );
        }),
        "isort" => time_best(reps, || {
            let mut v = w.seq.clone();
            isort::run_par(&mut v, key_bits, mode);
            std::hint::black_box(v);
        }),
        "bfs-road" => time_best(reps, || {
            std::hint::black_box(bfs::run_par_on(backend, &w.road, 0, threads, mode));
        }),
        "bfs-link" => time_best(reps, || {
            std::hint::black_box(bfs::run_par_on(backend, &w.link, 0, threads, mode));
        }),
        "sssp-link" => time_best(reps, || {
            std::hint::black_box(sssp::run_par_on(backend, &w.wlink, 0, threads, mode));
        }),
        "sssp-road" => time_best(reps, || {
            std::hint::black_box(sssp::run_par_on(backend, &w.wroad, 0, threads, mode));
        }),
        other => panic!("unknown benchmark pair: {other}"),
    }
}

/// Sequential baseline for a pair.
pub fn run_seq_case(name: &str, w: &Workloads, reps: usize) -> TimingStats {
    let key_bits = 64 - (w.seq.len() as u64).leading_zeros();
    match name {
        "bw" => time_best(reps, || {
            std::hint::black_box(bw::run_seq(&w.bwt).expect("bw: workload BWT is well-formed"));
        }),
        "lrs" => time_best(reps, || {
            std::hint::black_box(lrs::run_seq(&w.text));
        }),
        "sa" => time_best(reps, || {
            std::hint::black_box(sa::run_seq(&w.text));
        }),
        "dr" => time_best(reps, || {
            std::hint::black_box(dr::run_seq(&w.points));
        }),
        "mis-link" => time_best(reps, || {
            std::hint::black_box(mis::run_seq(&w.link));
        }),
        "mis-road" => time_best(reps, || {
            std::hint::black_box(mis::run_seq(&w.road));
        }),
        "mm-rmat" => time_best(reps, || {
            std::hint::black_box(mm::run_seq(w.rmat_edges.0, &w.rmat_edges.1));
        }),
        "mm-road" => time_best(reps, || {
            std::hint::black_box(mm::run_seq(w.road_edges.0, &w.road_edges.1));
        }),
        "sf-link" => time_best(reps, || {
            std::hint::black_box(sf::run_seq(w.link_edges.0, &w.link_edges.1));
        }),
        "sf-road" => time_best(reps, || {
            std::hint::black_box(sf::run_seq(w.road_edges.0, &w.road_edges.1));
        }),
        "msf-rmat" => time_best(reps, || {
            std::hint::black_box(msf::run_seq(w.rmat_wedges.0, &w.rmat_wedges.1));
        }),
        "msf-road" => time_best(reps, || {
            std::hint::black_box(msf::run_seq(w.road_wedges.0, &w.road_wedges.1));
        }),
        "sort" => time_best(reps, || {
            let mut v = w.seq.clone();
            sort::run_seq(&mut v);
            std::hint::black_box(v);
        }),
        "dedup" => time_best(reps, || {
            std::hint::black_box(dedup::run_seq(&w.seq));
        }),
        "hist" => time_best(reps, || {
            std::hint::black_box(
                hist::run_large_seq(&w.seq, 256, w.seq.len() as u64)
                    .expect("hist: 256 buckets over a non-zero range is valid"),
            );
        }),
        "isort" => time_best(reps, || {
            let mut v = w.seq.clone();
            isort::run_seq(&mut v, key_bits);
            std::hint::black_box(v);
        }),
        "bfs-road" => time_best(reps, || {
            std::hint::black_box(bfs::run_seq(&w.road, 0));
        }),
        "bfs-link" => time_best(reps, || {
            std::hint::black_box(bfs::run_seq(&w.link, 0));
        }),
        "sssp-link" => time_best(reps, || {
            std::hint::black_box(sssp::run_seq(&w.wlink, 0));
        }),
        "sssp-road" => time_best(reps, || {
            std::hint::black_box(sssp::run_seq(&w.wroad, 0));
        }),
        other => panic!("unknown benchmark pair: {other}"),
    }
}

/// The paper's recommended RPB configuration per pair (Sec. 7.3: unsafe
/// for `SngInd`/`AW`, checked for `RngInd`).
///
/// # Panics
/// Panics on a name outside [`ALL_PAIRS`] — a typo'd pair must fail loudly
/// here rather than silently benchmark in `Unsafe` mode.
pub fn recommended_mode(name: &str) -> ExecMode {
    assert!(ALL_PAIRS.contains(&name), "unknown benchmark pair: {name}");
    match name {
        // sort's irregular pattern is only RngInd — the paper uses the
        // checked iterator there because its check is ~free.
        "sort" => ExecMode::Checked,
        // MQ benchmarks are inherently synchronized.
        n if n.starts_with("bfs") || n.starts_with("sssp") => ExecMode::Sync,
        _ => ExecMode::Unsafe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn every_pair_runs_at_tiny_scale() {
        use std::time::Duration;
        let tiny = Scale {
            text_len: 4000,
            seq_len: 20_000,
            graph_n: 800,
            points_n: 300,
        };
        let w = Workloads::build(tiny);
        for name in ALL_PAIRS {
            let ts = run_case(name, &w, recommended_mode(name), 2, 1);
            assert!(ts.best > Duration::ZERO, "{name}");
            let ts = run_seq_case(name, &w, 1);
            assert!(ts.best > Duration::ZERO, "{name} seq");
        }
    }

    #[test]
    fn fig5_pairs_are_subsets_of_fig4() {
        for p in FIG5A_PAIRS {
            assert!(ALL_PAIRS.contains(&p));
        }
        for p in FIG5B_PAIRS {
            assert!(ALL_PAIRS.contains(&p));
        }
    }

    #[test]
    fn recommended_modes_match_the_documented_policy() {
        // Sec. 7.3: checked only where the check is ~free (sort's RngInd),
        // Sync where the algorithm is inherently synchronized (MultiQueue
        // bfs/sssp), Unsafe everywhere else.
        for name in ALL_PAIRS {
            let want = if name == "sort" {
                ExecMode::Checked
            } else if name.starts_with("bfs") || name.starts_with("sssp") {
                ExecMode::Sync
            } else {
                ExecMode::Unsafe
            };
            assert_eq!(recommended_mode(name), want, "{name}");
        }
        // Exactly 1 Checked and 4 Sync pairs among the 20.
        let checked = ALL_PAIRS
            .iter()
            .filter(|n| recommended_mode(n) == ExecMode::Checked)
            .count();
        let sync = ALL_PAIRS
            .iter()
            .filter(|n| recommended_mode(n) == ExecMode::Sync)
            .count();
        assert_eq!((checked, sync), (1, 4));
    }

    #[test]
    #[should_panic(expected = "unknown benchmark pair")]
    fn recommended_mode_rejects_unknown_names() {
        recommended_mode("sort-typo");
    }
}
