//! The deterministic perf gate: `rpb gate record|compare|check`.
//!
//! CI cannot gate on raw wall-clock numbers — shared runners are far too
//! noisy — yet the paper's claims are quantitative, so a PR that silently
//! doubles the number of uniqueness checks or defeats the mark-table pool
//! must fail loudly. The gate therefore splits every baseline into two
//! metric classes:
//!
//! * **Hard metrics** — deterministic event counters from [`rpb_obs`]
//!   (checks performed, offsets/boundaries validated, pool hits/misses,
//!   proof builds/reuses, MultiQueue pushes/pops, executor tasks). The
//!   counter pass runs every case on a **1-worker pool with pinned-seed
//!   inputs**, making these pure functions of the code — bit-stable across
//!   machines and runs. Any drift is a real behavioral change (an
//!   algorithm, policy, or fast-path regression) and fails the gate.
//! * **Soft metrics** — wall-clock brackets (`best`/`median`/MAD from
//!   [`TimingStats`]). These are advisory by default on CI: a violation
//!   requires the current median to exceed the baseline median by both a
//!   configurable ratio tolerance *and* a MAD-based noise envelope, so a
//!   one-off scheduler hiccup cannot trip it.
//!
//! The smoke matrix is every Fig. 4 pair in its recommended mode (which
//! includes the MultiQueue `bfs`/`sssp` pairs and `sort`'s RngInd check)
//! plus the SngInd-heavy trio (`bw`, `lrs`, `sa`) in checked mode under
//! both validation-cost brackets (`fresh` = pool disabled, `amortized` =
//! pre-warmed pool), so every check strategy and the pooled fast path are
//! all under the gate. Inputs are built at the pinned [`Scale::gate`];
//! baselines embed the scale and `check` refuses to compare across scales.
//!
//! On top of the smoke matrix, every baseline carries the **kernel
//! cells** ([`kernel_matrix`]): the four vectorized hot kernels of the
//! `simd` feature (histogram bucketing, radix sort, the SngInd
//! uniqueness sweep, the RngInd monotonicity sweep), each recorded twice
//! with the dispatch pinned to `scalar` and to `simd` (pins never exceed
//! what the CPU supports, so the cells degrade gracefully to two scalar
//! runs on non-AVX2 hardware or default-feature builds). Their hard
//! counters must agree across the two pins — the SIMD fast paths are
//! required to be behaviorally invisible — while the wall brackets
//! document the raw-speed win per kernel ([`render_kernel_speedups`]).
//!
//! Every baseline also carries the **backend cells** ([`backend_matrix`]):
//! the four MultiQueue pairs (`bfs-*`/`sssp-*`) recorded once per
//! scheduling backend (`rayon` and `mq`), with the backend label in the
//! cell's `mode` field (keys read `backend-bfs-road/rayon`, …). The
//! scheduling policy is required to be substrate-independent, so the hard
//! counters of a pair must agree across its two backend cells the same
//! way kernel counters agree across dispatch pins.
//!
//! Finally, every baseline carries the **serve cells** ([`serve_matrix`]):
//! the resident service's two pinned admission traces (`serve-steady` and
//! `serve-burst`, see `rpb_serve::trace`) recorded once per scheduling
//! backend, with the backend label in the `mode` field (keys read
//! `serve-steady/rayon`, `serve-burst/mq`, …). The traces pump the job
//! farm inline on a 1-thread pool, so the serve counters — jobs
//! admitted/shed/completed/failed and the queue-depth high-water mark —
//! are exact functions of the pinned trace shape: the steady cell pins
//! the zero-allocation steady state (after warmup, `sngind_pool_misses`
//! stays zero), the burst cell pins admission control shedding exactly
//! the over-cap overflow instead of queueing it.
//!
//! Every baseline also carries the **pipeline cells**
//! ([`pipeline_matrix`]): the three streaming skeletons of
//! `rpb_suite::streaming` (`pipeline-hist`, `pipeline-dedup`,
//! `pipeline-bfs`) recorded once per channel backend, with the channel
//! label in the `mode` field (keys read `pipeline-hist/mpsc`,
//! `pipeline-bfs/crossbeam`, …). Each cell runs one streaming pass at a
//! pinned chunk size, channel capacity, and one worker per stage, so the
//! pipeline counters — runs, items in/out, channel sends/recvs, stage
//! panics — are exact functions of the gate-scale input, and a variant's
//! counters must be equal across its two channel cells: the channel
//! substrate is required to be behaviorally invisible.
//!
//! A baseline whose *cell set or configuration* differs from the current
//! build — e.g. one recorded under a different feature set, so kernel or
//! backend cells are missing or unexpected — is a **schema mismatch**,
//! not counter drift: `compare`/`check` list the offending cells and exit
//! [`EXIT_USAGE`] so CI reads "re-record the baseline with matching
//! features", never "the code regressed".
//!
//! Baselines are versioned JSON (`rpb-baseline-v1`) committed under
//! `baselines/`. After an *intentional* behavioral change, re-record with
//! `rpb gate record` and commit the diff — the diff itself documents the
//! behavioral delta of the PR.

use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

use rpb_fearless::pool;
use rpb_fearless::snd_ind::{self, UniquenessCheck};
use rpb_fearless::{rng_ind, ExecMode};
use rpb_obs::{metrics, Json};
use rpb_parlay::exec::{set_default_backend, BackendKind, ALL_BACKENDS};
use rpb_parlay::simd::KernelImpl;
use rpb_pipeline::{ChannelKind, ALL_CHANNELS};
use rpb_serve::trace::{self as serve_trace, TraceConfig};
use rpb_serve::Datasets as ServeDatasets;
use rpb_suite::hist;
use rpb_suite::streaming::{self, StreamConfig};

use crate::figures::{in_pool, in_pool_on};
use crate::record::EnvInfo;
use crate::runner::{recommended_mode, run_case, run_case_on, ALL_PAIRS, FIG5A_PAIRS};
use crate::scale::Scale;
use crate::workloads::Workloads;
use crate::{time_best, TimingStats};

/// Schema tag of every baseline file the gate writes and reads.
pub const BASELINE_SCHEMA: &str = "rpb-baseline-v1";

/// Worker-thread count of the counter pass. Pinned to 1: with a single
/// worker every counter below is a deterministic function of the
/// pinned-seed inputs (no lock contention, no racy pool acquisitions, no
/// relaxed-scheduling variation in the MultiQueue), which is what lets a
/// baseline recorded on one machine hard-gate every other.
pub const COUNTER_THREADS: usize = 1;

/// The counters a baseline gates *hard* (exact equality).
///
/// Inclusion rule: the value must be reproducible bit-for-bit at
/// [`COUNTER_THREADS`]` = 1` with pinned-seed inputs. Excluded by that
/// rule: contention counters (`mq_push_retries`), idle accounting
/// (`exec_idle_spins`), the rank sampler (arm-time dependent), every
/// duration histogram, and per-thread splits — all scheduling- or
/// clock-dependent even when the algorithm is unchanged.
pub const HARD_COUNTERS: &[&str] = &[
    // SngInd validation: strategy choice, volume, and failures.
    "sngind_checks_mark",
    "sngind_checks_sort",
    "sngind_checks_bitset",
    "sngind_offsets_validated",
    "sngind_mark_table_bytes",
    "sngind_check_failures",
    // The pooled fast path and validation proofs (PR 2's perf claims).
    "sngind_pool_hits",
    "sngind_pool_misses",
    "sngind_epoch_rollovers",
    "sngind_proof_builds",
    "sngind_proof_reuses",
    // RngInd validation.
    "rngind_checks",
    "rngind_boundaries_validated",
    "rngind_check_failures",
    "rngind_proof_builds",
    // MultiQueue traffic and executor totals (bfs/sssp pairs).
    "mq_pushes",
    "mq_pops",
    "mq_pop_sweeps",
    "mq_empty_pops",
    "mq_drained_items",
    "exec_runs",
    "exec_tasks",
    "exec_task_panics",
    "exec_tasks_drained",
    // Serve admission arithmetic (the serve-* trace cells): farm traffic
    // and the queue-depth high-water mark of the pinned inline traces.
    "serve_jobs_admitted",
    "serve_jobs_shed",
    "serve_jobs_completed",
    "serve_jobs_failed",
    "serve_queue_depth_max",
    // Pipeline streaming traffic (the pipeline-* cells): runs, items, and
    // channel operations of the pinned 1-worker-per-stage skeletons —
    // exact functions of the input shape, chunking, and stage shape.
    // (`pipeline_max_inflight` is a scheduling-dependent high-water mark,
    // excluded by the inclusion rule; the verifier asserts its bound as
    // an inequality instead.)
    "pipeline_runs",
    "pipeline_items_in",
    "pipeline_items_out",
    "pipeline_sends",
    "pipeline_recvs",
    "pipeline_stage_panics",
];

/// Exit code: baseline and current run agree (soft drift at most advisory).
pub const EXIT_OK: i32 = 0;
/// Exit code: usage / IO / malformed-baseline errors, and baseline schema
/// mismatches (the two baselines record different cell sets or
/// configurations, so no behavioral verdict is possible).
pub const EXIT_USAGE: i32 = 2;
/// Exit code: only soft (wall-clock) metrics exceeded tolerance.
pub const EXIT_SOFT: i32 = 3;
/// Exit code: at least one hard (deterministic-counter) metric drifted.
pub const EXIT_HARD: i32 = 4;

/// Default soft tolerance: current median may be up to this multiple of
/// the baseline median before a soft violation is even considered.
pub const DEFAULT_WALL_TOLERANCE: f64 = 1.5;

/// Noise envelope width: on top of the ratio tolerance, the current
/// median must exceed `base_median + K * (base_mad + cur_mad)`.
const MAD_ENVELOPE_K: u64 = 4;

/// Wall-clock statistics of one gate case (the soft metric class).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WallStats {
    /// Best measured repetition, nanoseconds.
    pub best_ns: u64,
    /// Median repetition, nanoseconds.
    pub median_ns: u64,
    /// Median absolute deviation, nanoseconds.
    pub mad_ns: u64,
    /// Measured repetitions.
    pub reps: u64,
}

impl WallStats {
    fn from_timing(ts: TimingStats) -> WallStats {
        WallStats {
            best_ns: ts.best_ns() as u64,
            median_ns: ts.median_ns() as u64,
            mad_ns: ts.mad_ns() as u64,
            reps: ts.reps as u64,
        }
    }

    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("best_ns".into(), Json::from_u64(self.best_ns)),
            ("median_ns".into(), Json::from_u64(self.median_ns)),
            ("mad_ns".into(), Json::from_u64(self.mad_ns)),
            ("reps".into(), Json::from_u64(self.reps)),
        ])
    }

    fn parse(j: &Json) -> Result<WallStats, String> {
        let f = |k: &str| {
            j.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("wall stats missing \"{k}\""))
        };
        Ok(WallStats {
            best_ns: f("best_ns")?,
            median_ns: f("median_ns")?,
            mad_ns: f("mad_ns")?,
            reps: f("reps")?,
        })
    }
}

/// One benchmark × mode (× check bracket) cell of the smoke matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct GateCase {
    /// Pair label as in Fig. 4 (`"bw"`, `"mis-link"`, …).
    pub name: String,
    /// Exec-mode label (`"unsafe"`, `"checked"`, `"sync"`); kernel cells
    /// carry the dispatch pin (`"scalar"`/`"simd"`) and backend cells the
    /// scheduling backend (`"rayon"`/`"mq"`) here instead.
    pub mode: String,
    /// Validation-cost bracket for the checked SngInd cases
    /// (`"fresh"` / `"amortized"`), `None` elsewhere.
    pub check: Option<String>,
    /// `(counter, value)` for every [`HARD_COUNTERS`] entry, in that
    /// order. Values cover exactly one warmup + one measured execution of
    /// the case on the 1-worker pool.
    pub counters: Vec<(String, u64)>,
    /// Soft wall-clock statistics from the separate timing pass.
    pub wall: WallStats,
}

impl GateCase {
    /// Stable identity of the matrix cell (`name/mode[+check]`).
    pub fn key(&self) -> String {
        match &self.check {
            Some(c) => format!("{}/{}+{c}", self.name, self.mode),
            None => format!("{}/{}", self.name, self.mode),
        }
    }

    /// Value of a named hard counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The counter section as JSON — the part of a baseline that must be
    /// byte-identical across `record` runs.
    pub fn counters_json(&self) -> Json {
        Json::Obj(
            self.counters
                .iter()
                .map(|(n, v)| (n.clone(), Json::from_u64(*v)))
                .collect(),
        )
    }
}

/// A recorded baseline: the full smoke matrix plus its provenance.
#[derive(Clone, Debug)]
pub struct Baseline {
    /// Workload scale the matrix ran at (must match [`Scale::gate`]).
    pub scale: Scale,
    /// Worker threads of the counter pass (always [`COUNTER_THREADS`]).
    pub counter_threads: usize,
    /// Worker threads of the wall-clock pass.
    pub wall_threads: usize,
    /// Measured repetitions of the wall-clock pass.
    pub wall_reps: usize,
    /// Recording environment (informational; never compared).
    pub env: EnvInfo,
    /// One entry per smoke-matrix cell, in matrix order.
    pub cases: Vec<GateCase>,
}

impl Baseline {
    /// Structural equality ignoring provenance (`env`): two baselines are
    /// semantically equal when they would gate identically.
    pub fn semantic_eq(&self, other: &Baseline) -> bool {
        self.scale == other.scale
            && self.counter_threads == other.counter_threads
            && self.wall_threads == other.wall_threads
            && self.wall_reps == other.wall_reps
            && self.cases == other.cases
    }

    /// Renders the versioned baseline document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(BASELINE_SCHEMA.into())),
            (
                "scale".into(),
                Json::Obj(vec![
                    (
                        "text_len".into(),
                        Json::from_u64(self.scale.text_len as u64),
                    ),
                    ("seq_len".into(), Json::from_u64(self.scale.seq_len as u64)),
                    ("graph_n".into(), Json::from_u64(self.scale.graph_n as u64)),
                    (
                        "points_n".into(),
                        Json::from_u64(self.scale.points_n as u64),
                    ),
                ]),
            ),
            (
                "counter_threads".into(),
                Json::from_u64(self.counter_threads as u64),
            ),
            (
                "wall_threads".into(),
                Json::from_u64(self.wall_threads as u64),
            ),
            ("wall_reps".into(), Json::from_u64(self.wall_reps as u64)),
            (
                "env".into(),
                Json::Obj(vec![
                    ("git_sha".into(), Json::Str(self.env.git_sha.clone())),
                    (
                        "cpu_count".into(),
                        Json::from_u64(self.env.cpu_count as u64),
                    ),
                    ("rustc".into(), Json::Str(self.env.rustc.clone())),
                ]),
            ),
            (
                "cases".into(),
                Json::Arr(
                    self.cases
                        .iter()
                        .map(|c| {
                            let mut fields = vec![
                                ("name".into(), Json::Str(c.name.clone())),
                                ("mode".into(), Json::Str(c.mode.clone())),
                            ];
                            if let Some(check) = &c.check {
                                fields.push(("check".into(), Json::Str(check.clone())));
                            }
                            fields.push(("counters".into(), c.counters_json()));
                            fields.push(("wall".into(), c.wall.to_json()));
                            Json::Obj(fields)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a baseline document, rejecting unknown schemas.
    pub fn parse(doc: &Json) -> Result<Baseline, String> {
        match doc.get("schema").and_then(Json::as_str) {
            Some(BASELINE_SCHEMA) => {}
            Some(other) => {
                return Err(format!(
                    "unknown baseline schema \"{other}\" (expected \"{BASELINE_SCHEMA}\")"
                ))
            }
            None => return Err(format!("not an {BASELINE_SCHEMA} document")),
        }
        let usize_field = |j: &Json, k: &str| -> Result<usize, String> {
            j.get(k)
                .and_then(Json::as_u64)
                .map(|v| v as usize)
                .ok_or_else(|| format!("baseline missing \"{k}\""))
        };
        let scale_json = doc.get("scale").ok_or("baseline missing \"scale\"")?;
        let scale = Scale {
            text_len: usize_field(scale_json, "text_len")?,
            seq_len: usize_field(scale_json, "seq_len")?,
            graph_n: usize_field(scale_json, "graph_n")?,
            points_n: usize_field(scale_json, "points_n")?,
        };
        let env_json = doc.get("env");
        let env_str = |k: &str| -> String {
            env_json
                .and_then(|e| e.get(k))
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string()
        };
        let env = EnvInfo {
            git_sha: env_str("git_sha"),
            cpu_count: env_json
                .and_then(|e| e.get("cpu_count"))
                .and_then(Json::as_u64)
                .unwrap_or(0) as usize,
            rustc: env_str("rustc"),
        };
        let mut cases = Vec::new();
        for (i, c) in doc
            .get("cases")
            .and_then(Json::as_arr)
            .ok_or("baseline missing \"cases\" array")?
            .iter()
            .enumerate()
        {
            let text = |k: &str| -> Result<String, String> {
                Ok(c.get(k)
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("case {i} missing \"{k}\""))?
                    .to_string())
            };
            let counters = match c.get("counters") {
                Some(Json::Obj(fields)) => fields
                    .iter()
                    .map(|(n, v)| {
                        v.as_u64()
                            .map(|v| (n.clone(), v))
                            .ok_or_else(|| format!("case {i}: counter \"{n}\" is not a u64"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                _ => return Err(format!("case {i} missing \"counters\" object")),
            };
            cases.push(GateCase {
                name: text("name")?,
                mode: text("mode")?,
                check: c.get("check").and_then(Json::as_str).map(String::from),
                counters,
                wall: WallStats::parse(
                    c.get("wall")
                        .ok_or_else(|| format!("case {i} missing \"wall\""))?,
                )
                .map_err(|e| format!("case {i}: {e}"))?,
            });
        }
        Ok(Baseline {
            scale,
            counter_threads: usize_field(doc, "counter_threads")?,
            wall_threads: usize_field(doc, "wall_threads")?,
            wall_reps: usize_field(doc, "wall_reps")?,
            env,
            cases,
        })
    }
}

/// The smoke matrix: `(pair, mode, check bracket)` in recording order.
pub fn smoke_matrix() -> Vec<(&'static str, ExecMode, Option<&'static str>)> {
    let mut matrix: Vec<(&'static str, ExecMode, Option<&'static str>)> = ALL_PAIRS
        .iter()
        .map(|&name| (name, recommended_mode(name), None))
        .collect();
    for &name in &FIG5A_PAIRS {
        matrix.push((name, ExecMode::Checked, Some("fresh")));
        matrix.push((name, ExecMode::Checked, Some("amortized")));
    }
    matrix
}

/// The hot kernels of the `simd` feature's raw-speed pass, one gate cell
/// per `(kernel, pinned implementation)` pair.
pub const KERNEL_PAIRS: [&str; 4] = [
    "kernel-hist",
    "kernel-radix",
    "kernel-sngind-validate",
    "kernel-rngind-validate",
];

/// The kernel cells: every [`KERNEL_PAIRS`] entry under both dispatch
/// pins, in recording order. The impl label lands in the cell's `mode`
/// field, so keys read `kernel-hist/scalar`, `kernel-hist/simd`, …
pub fn kernel_matrix() -> Vec<(&'static str, KernelImpl)> {
    KERNEL_PAIRS
        .iter()
        .flat_map(|&name| [(name, KernelImpl::Scalar), (name, KernelImpl::Simd)])
        .collect()
}

/// The MultiQueue-sensitive pairs, recorded once per scheduling backend
/// (every other pair ignores the backend entirely).
pub const BACKEND_PAIRS: [&str; 4] = ["bfs-road", "bfs-link", "sssp-link", "sssp-road"];

/// The backend cells: every [`BACKEND_PAIRS`] entry under both scheduling
/// backends, in recording order. The backend label lands in the cell's
/// `mode` field, so keys read `backend-bfs-road/rayon`,
/// `backend-bfs-road/mq`, … At the 1-worker counter pass the MultiQueue
/// scheduling policy is substrate-independent by construction, so a
/// pair's hard counters must be equal across its two cells — the gate
/// pins that claim the way kernel cells pin scalar/simd invisibility.
pub fn backend_matrix() -> Vec<(&'static str, BackendKind)> {
    BACKEND_PAIRS
        .iter()
        .flat_map(|&name| ALL_BACKENDS.map(|b| (name, b)))
        .collect()
}

/// The resident service's pinned admission traces (`rpb_serve::trace`),
/// one gate cell per `(trace, backend)` pair.
pub const SERVE_PAIRS: [&str; 2] = ["serve-steady", "serve-burst"];

/// The serve cells: every [`SERVE_PAIRS`] entry under both scheduling
/// backends, in recording order. The backend label lands in the cell's
/// `mode` field, so keys read `serve-steady/rayon`, `serve-burst/mq`, …
/// Like the backend cells, a trace's serve counters must be equal across
/// its two backend cells — admission arithmetic is substrate-independent.
pub fn serve_matrix() -> Vec<(&'static str, BackendKind)> {
    SERVE_PAIRS
        .iter()
        .flat_map(|&name| ALL_BACKENDS.map(|b| (name, b)))
        .collect()
}

/// The streaming pipeline skeletons (`rpb_suite::streaming`), one gate
/// cell per `(variant, channel backend)` pair.
pub const PIPELINE_PAIRS: [&str; 3] = ["pipeline-hist", "pipeline-dedup", "pipeline-bfs"];

/// The pipeline cells: every [`PIPELINE_PAIRS`] entry under both channel
/// backends, in recording order. The channel label lands in the cell's
/// `mode` field, so keys read `pipeline-hist/mpsc`,
/// `pipeline-hist/crossbeam`, … At one worker per stage the pipeline
/// counters are exact functions of the input shape and chunking, and a
/// variant's hard counters must be equal across its two channel cells —
/// the channel substrate is required to be behaviorally invisible, the
/// way kernel cells pin scalar/simd and serve cells pin rayon/mq.
pub fn pipeline_matrix() -> Vec<(&'static str, ChannelKind)> {
    PIPELINE_PAIRS
        .iter()
        .flat_map(|&name| ALL_CHANNELS.map(|c| (name, c)))
        .collect()
}

/// Chunk size of the pipeline cells, pinned so `pipeline_items_in` (the
/// chunk count) is a fixed function of the gate scale.
const PIPELINE_GATE_CHUNK: usize = 1 << 10;

/// Channel capacity of the pipeline cells.
const PIPELINE_GATE_CAPACITY: usize = 4;

/// The pinned streaming configuration of one pipeline cell: Rayon
/// executor, one worker per stage, fixed chunk and capacity — every
/// counter deterministic, only the channel backend varying across cells.
fn pipeline_stream_config(channel: ChannelKind) -> StreamConfig {
    StreamConfig {
        channel,
        backend: BackendKind::Rayon,
        chunk: PIPELINE_GATE_CHUNK,
        capacity: PIPELINE_GATE_CAPACITY,
        workers: 1,
    }
}

/// Runs one pipeline cell's streaming workload once. The pipeline builds
/// its own executor batch (one thread per blocking stage worker), so no
/// `in_pool` wrapper is involved.
fn run_pipeline_case(name: &str, w: &Workloads, channel: ChannelKind) {
    let cfg = pipeline_stream_config(channel);
    match name {
        "pipeline-hist" => {
            std::hint::black_box(
                streaming::hist_stream(&w.seq, 64, w.seq.len() as u64, cfg)
                    .expect("pipeline-hist: 64 buckets over the gate sequence is valid"),
            );
        }
        "pipeline-dedup" => {
            std::hint::black_box(
                streaming::dedup_stream(&w.seq, cfg)
                    .expect("pipeline-dedup: the pinned config is valid"),
            );
        }
        "pipeline-bfs" => {
            std::hint::black_box(
                streaming::bfs_stream(&w.link, 0, cfg)
                    .expect("pipeline-bfs: source 0 exists in the gate graph"),
            );
        }
        other => panic!("unknown pipeline cell: {other}"),
    }
}

/// Counter pass of one pipeline cell: one streaming run of the pinned
/// configuration inside the capture.
fn pipeline_counter_pass(name: &str, channel: ChannelKind, w: &Workloads) -> Vec<(String, u64)> {
    prepare_pool(None);
    let ((), snap) = metrics::capture(|| run_pipeline_case(name, w, channel));
    HARD_COUNTERS
        .iter()
        .map(|&n| (n.to_string(), snap.counter(n)))
        .collect()
}

/// Counter pass of one backend cell: the pair's recommended (Sync) mode
/// with both the ambient pool and the MultiQueue substrate pinned to
/// `backend`. Like [`counter_pass`] without a validation-cost bracket.
fn backend_counter_pass(name: &str, backend: BackendKind, w: &Workloads) -> Vec<(String, u64)> {
    prepare_pool(None);
    let ((), snap) = metrics::capture(|| {
        in_pool_on(backend, COUNTER_THREADS, || {
            run_case_on(backend, name, w, recommended_mode(name), COUNTER_THREADS, 1);
        });
    });
    HARD_COUNTERS
        .iter()
        .map(|&n| (n.to_string(), snap.counter(n)))
        .collect()
}

/// Runs one serve cell's pinned admission trace once. The trace pins its
/// own 1-thread executor pool ([`TraceConfig::gate`]), so no `in_pool`
/// wrapper is involved — the farm runs inline on the calling thread.
fn run_serve_trace(name: &str, cfg: &TraceConfig, data: &Arc<ServeDatasets>) {
    match name {
        "serve-steady" => {
            std::hint::black_box(serve_trace::steady(cfg, data));
        }
        "serve-burst" => {
            std::hint::black_box(serve_trace::burst(cfg, data));
        }
        other => panic!("unknown serve cell: {other}"),
    }
}

/// Counter pass of one serve cell: a [`serve_trace::warmup`] outside the
/// capture (fills the validation pool and fires every lazy init, so the
/// steady cell's counted validations are pool hits only), then the pinned
/// trace inside it. Inline farm + 1-thread pool make every serve counter
/// an exact function of the trace shape.
fn serve_counter_pass(
    name: &str,
    cfg: &TraceConfig,
    data: &Arc<ServeDatasets>,
) -> Vec<(String, u64)> {
    prepare_pool(None);
    serve_trace::warmup(cfg, data);
    let ((), snap) = metrics::capture(|| run_serve_trace(name, cfg, data));
    HARD_COUNTERS
        .iter()
        .map(|&n| (n.to_string(), snap.counter(n)))
        .collect()
}

/// Executes one kernel cell's workload inside the current Rayon pool.
/// The caller pins the dispatch ([`rpb_parlay::simd::set_forced`]) —
/// this function is impl-agnostic on purpose so both pins time the
/// byte-identical call sequence.
fn run_kernel_case(name: &str, w: &Workloads, reps: usize) -> TimingStats {
    let len = w.seq.len();
    match name {
        // The bucketing sweep (multiply-shift strength reduction + AVX2
        // counting): 256 non-power-of-two-width buckets, the gate's hist
        // configuration.
        "kernel-hist" => time_best(reps, || {
            std::hint::black_box(
                hist::run_par(&w.seq, 256, len as u64, ExecMode::Unsafe)
                    .expect("kernel-hist: 256 buckets over a non-zero range is valid"),
            );
        }),
        // Digit extraction + block counting over every radix pass.
        "kernel-radix" => time_best(reps, || {
            let mut v = w.seq.clone();
            rpb_parlay::radix_sort_u64(&mut v);
            std::hint::black_box(v);
        }),
        // The fused bounds+uniqueness sweep against the epoch mark table
        // (the strategy with the vectorized fast path). The offsets are a
        // deterministic non-sequential permutation (evens then odds) so
        // the sweep isn't a pure streaming walk.
        "kernel-sngind-validate" => {
            let offsets: Vec<usize> = (0..len).step_by(2).chain((1..len).step_by(2)).collect();
            time_best(reps, || {
                snd_ind::validate_offsets(&offsets, len, UniquenessCheck::MarkTable)
                    .expect("kernel-sngind-validate: a permutation validates");
                std::hint::black_box(&offsets);
            })
        }
        // The monotonicity+bounds sweep over maximally fine chunk
        // boundaries (every boundary live, none elided).
        "kernel-rngind-validate" => {
            let offsets: Vec<usize> = (0..=len).collect();
            time_best(reps, || {
                rng_ind::validate_chunk_offsets(&offsets, len)
                    .expect("kernel-rngind-validate: a monotone ramp validates");
                std::hint::black_box(&offsets);
            })
        }
        other => panic!("unknown kernel cell: {other}"),
    }
}

/// Counter pass of one kernel cell: like [`counter_pass`] but without a
/// validation-cost bracket (kernel cells always run with the pool in the
/// default enabled state). The caller holds the dispatch pin.
fn kernel_counter_pass(name: &str, w: &Workloads) -> Vec<(String, u64)> {
    prepare_pool(None);
    let ((), snap) = metrics::capture(|| {
        in_pool(COUNTER_THREADS, || {
            run_kernel_case(name, w, 1);
        });
    });
    HARD_COUNTERS
        .iter()
        .map(|&n| (n.to_string(), snap.counter(n)))
        .collect()
}

/// Puts the global mark-table pool into the deterministic starting state
/// for one matrix cell: empty, stats zeroed, enabled unless the cell is a
/// `fresh` bracket. Without this, a cell's pool hit/miss counters would
/// depend on which cells ran before it.
fn prepare_pool(check: Option<&str>) {
    pool::set_enabled(true);
    pool::clear();
    pool::reset_stats();
    if check == Some("fresh") {
        pool::set_enabled(false);
    }
}

/// Runs one cell's workload once on the pinned 1-worker pool (plus
/// `run_case`'s warmup — two executions total, both counted).
fn counter_pass(
    name: &str,
    w: &Workloads,
    mode: ExecMode,
    check: Option<&str>,
) -> Vec<(String, u64)> {
    prepare_pool(check);
    if check == Some("amortized") {
        // Warm the pool (and proof paths) outside the capture so the
        // counted executions are all steady-state hits.
        in_pool(COUNTER_THREADS, || {
            run_case(name, w, mode, COUNTER_THREADS, 1);
        });
    }
    let ((), snap) = metrics::capture(|| {
        in_pool(COUNTER_THREADS, || {
            run_case(name, w, mode, COUNTER_THREADS, 1);
        });
    });
    HARD_COUNTERS
        .iter()
        .map(|&n| (n.to_string(), snap.counter(n)))
        .collect()
}

/// Records a fresh baseline over `w` (which must be built at
/// [`Scale::gate`] for the result to be comparable with committed
/// baselines).
pub fn record(w: &Workloads, wall_threads: usize, wall_reps: usize) -> Baseline {
    let wall_threads = wall_threads.max(1);
    let wall_reps = wall_reps.max(1);
    let mut cases = Vec::new();
    for (name, mode, check) in smoke_matrix() {
        let counters = counter_pass(name, w, mode, check);
        // Wall pass: same deterministic pool bracket, separate timing so
        // counter capture never sits inside a measured repetition.
        prepare_pool(check);
        if check == Some("amortized") {
            in_pool(wall_threads, || {
                run_case(name, w, mode, wall_threads, 1);
            });
        }
        let ts = in_pool(wall_threads, || {
            run_case(name, w, mode, wall_threads, wall_reps)
        });
        cases.push(GateCase {
            name: name.to_string(),
            mode: mode.label().to_string(),
            check: check.map(String::from),
            counters,
            wall: WallStats::from_timing(ts),
        });
    }
    for (name, kimpl) in kernel_matrix() {
        // Pin the dispatch for both passes (serialized via the global
        // force lock so a concurrent matrix can't trample the pin) and
        // restore auto dispatch before releasing it.
        let guard = rpb_parlay::simd::force_lock();
        rpb_parlay::simd::set_forced(kimpl);
        let counters = kernel_counter_pass(name, w);
        prepare_pool(None);
        let ts = in_pool(wall_threads, || run_kernel_case(name, w, wall_reps));
        rpb_parlay::simd::set_forced(KernelImpl::Auto);
        drop(guard);
        cases.push(GateCase {
            name: name.to_string(),
            mode: kimpl.label().to_string(),
            check: None,
            counters,
            wall: WallStats::from_timing(ts),
        });
    }
    for (name, backend) in backend_matrix() {
        let counters = backend_counter_pass(name, backend, w);
        prepare_pool(None);
        let ts = in_pool_on(backend, wall_threads, || {
            run_case_on(
                backend,
                name,
                w,
                recommended_mode(name),
                wall_threads,
                wall_reps,
            )
        });
        cases.push(GateCase {
            name: format!("backend-{name}"),
            mode: backend.label().to_string(),
            check: None,
            counters,
            wall: WallStats::from_timing(ts),
        });
    }
    // Serve cells time the same pinned 1-thread trace shape the counter
    // pass runs: the cells gate admission arithmetic and the steady-state
    // zero-allocation property, not service throughput.
    let serve_data = Arc::new(ServeDatasets::preload(w.scale));
    for (name, backend) in serve_matrix() {
        let cfg = TraceConfig::gate(backend);
        let counters = serve_counter_pass(name, &cfg, &serve_data);
        prepare_pool(None);
        serve_trace::warmup(&cfg, &serve_data);
        let ts = time_best(wall_reps, || run_serve_trace(name, &cfg, &serve_data));
        cases.push(GateCase {
            name: name.to_string(),
            mode: backend.label().to_string(),
            check: None,
            counters,
            wall: WallStats::from_timing(ts),
        });
    }
    // Pipeline cells run the streaming skeletons at one worker per stage
    // with a pinned chunk/capacity: the cells gate channel traffic and
    // item accounting, and pin that the two channel backends are
    // behaviorally identical.
    for (name, channel) in pipeline_matrix() {
        let counters = pipeline_counter_pass(name, channel, w);
        prepare_pool(None);
        let ts = time_best(wall_reps, || run_pipeline_case(name, w, channel));
        cases.push(GateCase {
            name: name.to_string(),
            mode: channel.label().to_string(),
            check: None,
            counters,
            wall: WallStats::from_timing(ts),
        });
    }
    pool::set_enabled(true);
    Baseline {
        scale: w.scale,
        counter_threads: COUNTER_THREADS,
        wall_threads,
        wall_reps,
        env: EnvInfo::collect(),
        cases,
    }
}

/// Severity of one gate violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Structural incomparability: the two baselines record different
    /// cell sets or configurations (typically a baseline committed under
    /// a different feature set or scale). No behavioral verdict is
    /// possible; the fix is re-recording, so this maps to [`EXIT_USAGE`]
    /// rather than a hard failure.
    Schema,
    /// Deterministic counter drift: always fails.
    Hard,
    /// Wall-clock drift beyond tolerance + noise envelope: fails unless
    /// the gate runs in advisory wall mode.
    Soft,
}

impl Severity {
    /// Reporting order: schema first, then hard, then soft.
    fn rank(self) -> u8 {
        match self {
            Severity::Schema => 0,
            Severity::Hard => 1,
            Severity::Soft => 2,
        }
    }
}

/// One metric that drifted between baseline and current run.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Matrix-cell key (`name/mode[+check]`), or `"<baseline>"` for
    /// structural mismatches.
    pub case: String,
    /// Metric name.
    pub metric: String,
    /// Hard or soft.
    pub severity: Severity,
    /// Baseline value (rendered).
    pub baseline: String,
    /// Current value (rendered).
    pub current: String,
}

/// Outcome of comparing two baselines.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Every drifted metric: schema first, then hard, then soft.
    pub violations: Vec<Violation>,
    /// Per-case summary table (always rendered, even when clean).
    pub table: String,
}

impl Comparison {
    /// True when the baselines are structurally incomparable (different
    /// cell sets or configurations).
    pub fn has_schema(&self) -> bool {
        self.violations
            .iter()
            .any(|v| v.severity == Severity::Schema)
    }

    /// True when any hard metric drifted.
    pub fn has_hard(&self) -> bool {
        self.violations.iter().any(|v| v.severity == Severity::Hard)
    }

    /// True when any soft metric exceeded tolerance.
    pub fn has_soft(&self) -> bool {
        self.violations.iter().any(|v| v.severity == Severity::Soft)
    }

    /// Cell keys (or `"<baseline>"` for config fields) behind a schema
    /// mismatch, deduped in reporting order.
    pub fn schema_cells(&self) -> Vec<String> {
        let mut cells: Vec<String> = Vec::new();
        for v in &self.violations {
            if v.severity == Severity::Schema && !cells.contains(&v.case) {
                cells.push(v.case.clone());
            }
        }
        cells
    }

    /// Maps the outcome to the gate's exit code. `wall_advisory`
    /// downgrades soft violations to reporting-only.
    pub fn exit_code(&self, wall_advisory: bool) -> i32 {
        if self.has_schema() {
            // Structural mismatch outranks counter drift: diffs against an
            // incomparable baseline say nothing about behavior, and the
            // remedy (re-record) is a usage-level action, not a revert.
            EXIT_USAGE
        } else if self.has_hard() {
            EXIT_HARD
        } else if self.has_soft() && !wall_advisory {
            EXIT_SOFT
        } else {
            EXIT_OK
        }
    }
}

/// True when `cur`'s median exceeds `base`'s by more than the ratio
/// tolerance *and* the MAD noise envelope (both must agree that the
/// slowdown is real). Speedups never violate — they suggest re-recording.
fn wall_exceeds(base: WallStats, cur: WallStats, tolerance: f64) -> bool {
    let ratio_bound = (base.median_ns as f64) * tolerance;
    let noise_bound = base.median_ns + MAD_ENVELOPE_K * (base.mad_ns + cur.mad_ns);
    (cur.median_ns as f64) > ratio_bound && cur.median_ns > noise_bound
}

/// Diffs two baselines: `base` (committed) against `cur` (fresh).
///
/// Schema violations: scale/thread/rep configuration mismatch and missing
/// or unexpected matrix cells (typically a baseline recorded under a
/// different feature set) — they make the baselines incomparable and map
/// to [`EXIT_USAGE`]. Hard violations: any hard-counter inequality on the
/// common cells. Soft violations: wall-clock medians beyond
/// [`wall_exceeds`].
pub fn compare(base: &Baseline, cur: &Baseline, tolerance: f64) -> Comparison {
    let mut cmp = Comparison::default();
    let mut push = |case: String, metric: &str, severity: Severity, b: String, c: String| {
        cmp.violations.push(Violation {
            case,
            metric: metric.to_string(),
            severity,
            baseline: b,
            current: c,
        });
    };

    // Configuration must match exactly or no metric is comparable.
    if base.scale != cur.scale {
        push(
            "<baseline>".into(),
            "scale",
            Severity::Schema,
            format!("{:?}", base.scale),
            format!("{:?}", cur.scale),
        );
    }
    for (metric, b, c) in [
        ("counter_threads", base.counter_threads, cur.counter_threads),
        ("wall_reps", base.wall_reps, cur.wall_reps),
    ] {
        if b != c {
            push(
                "<baseline>".into(),
                metric,
                Severity::Schema,
                b.to_string(),
                c.to_string(),
            );
        }
    }

    let mut table = String::new();
    let _ = writeln!(
        table,
        "{:<22} {:>8} {:>12} {:>12} {:>7}  {}",
        "case", "counters", "base med", "cur med", "ratio", "status"
    );
    for bc in &base.cases {
        let Some(cc) = cur
            .cases
            .iter()
            .find(|c| c.name == bc.name && c.mode == bc.mode && c.check == bc.check)
        else {
            push(
                bc.key(),
                "<case>",
                Severity::Schema,
                "present".into(),
                "missing".into(),
            );
            let _ = writeln!(
                table,
                "{:<22} {:>8} {:>12} {:>12} {:>7}  MISSING",
                bc.key(),
                "-",
                bc.wall.median_ns,
                "-",
                "-"
            );
            continue;
        };
        // Union of counter names so a renamed counter can't dodge the diff.
        let mut names: Vec<&str> = bc.counters.iter().map(|(n, _)| n.as_str()).collect();
        for (n, _) in &cc.counters {
            if !names.contains(&n.as_str()) {
                names.push(n);
            }
        }
        let mut drifted = 0usize;
        for n in names {
            let (b, c) = (bc.counter(n), cc.counter(n));
            if b != c {
                drifted += 1;
                push(bc.key(), n, Severity::Hard, b.to_string(), c.to_string());
            }
        }
        let slow = wall_exceeds(bc.wall, cc.wall, tolerance);
        if slow {
            push(
                bc.key(),
                "wall median_ns",
                Severity::Soft,
                format!("{} (mad {})", bc.wall.median_ns, bc.wall.mad_ns),
                format!("{} (mad {})", cc.wall.median_ns, cc.wall.mad_ns),
            );
        }
        let ratio = if bc.wall.median_ns > 0 {
            cc.wall.median_ns as f64 / bc.wall.median_ns as f64
        } else {
            f64::NAN
        };
        let status = if drifted > 0 {
            format!("HARD ({drifted} counter(s) drifted)")
        } else if slow {
            "SOFT (slower than tolerance)".into()
        } else {
            "ok".into()
        };
        let _ = writeln!(
            table,
            "{:<22} {:>8} {:>12} {:>12} {:>6.2}x  {}",
            bc.key(),
            if drifted > 0 {
                format!("{drifted} drift")
            } else {
                "ok".into()
            },
            bc.wall.median_ns,
            cc.wall.median_ns,
            ratio,
            status
        );
    }
    for cc in &cur.cases {
        let known = base
            .cases
            .iter()
            .any(|b| b.name == cc.name && b.mode == cc.mode && b.check == cc.check);
        if !known {
            push(
                cc.key(),
                "<case>",
                Severity::Schema,
                "missing".into(),
                "present".into(),
            );
            let _ = writeln!(
                table,
                "{:<22} {:>8} {:>12} {:>12} {:>7}  NEW CASE (baseline stale)",
                cc.key(),
                "-",
                "-",
                cc.wall.median_ns,
                "-"
            );
        }
    }
    cmp.violations
        .sort_by_key(|v| (v.severity.rank(), v.case.clone()));
    cmp.table = table;
    cmp
}

/// Renders the scalar-vs-simd wall-clock ratios of a baseline's kernel
/// cells (empty string when the baseline has none — e.g. one recorded
/// before the kernel cells existed). The ratio is informational like
/// every wall metric, but it is the number the `simd` feature's speedup
/// claims are read off of.
pub fn render_kernel_speedups(b: &Baseline) -> String {
    let mut out = String::new();
    for name in KERNEL_PAIRS {
        let cell = |impl_label: &str| {
            b.cases
                .iter()
                .find(|c| c.name == name && c.mode == impl_label)
        };
        let (Some(s), Some(v)) = (cell("scalar"), cell("simd")) else {
            continue;
        };
        if out.is_empty() {
            let _ = writeln!(
                out,
                "{:<24} {:>14} {:>14} {:>8}",
                "kernel cell", "scalar med", "simd med", "speedup"
            );
        }
        let ratio = if v.wall.median_ns > 0 {
            s.wall.median_ns as f64 / v.wall.median_ns as f64
        } else {
            f64::NAN
        };
        let _ = writeln!(
            out,
            "{:<24} {:>12}ns {:>12}ns {:>7.2}x",
            name, s.wall.median_ns, v.wall.median_ns, ratio
        );
    }
    out
}

/// Renders the per-metric violation diff (empty string when clean).
pub fn render_violations(cmp: &Comparison) -> String {
    if cmp.violations.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:<26} {:<6} {:>20} {:>20}",
        "case", "metric", "class", "baseline", "current"
    );
    for v in &cmp.violations {
        let _ = writeln!(
            out,
            "{:<22} {:<26} {:<6} {:>20} {:>20}",
            v.case,
            v.metric,
            match v.severity {
                Severity::Schema => "SCHEMA",
                Severity::Hard => "HARD",
                Severity::Soft => "soft",
            },
            v.baseline,
            v.current
        );
    }
    out
}

fn read_baseline(path: &Path) -> Result<Baseline, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
    Baseline::parse(&doc).map_err(|e| format!("{}: {e}", path.display()))
}

fn write_baseline(path: &Path, baseline: &Baseline) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(path, format!("{}\n", baseline.to_json()))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn usage() -> String {
    format!(
        "usage: rpb gate record  [--out PATH] [--reps N] [--threads N] [--backend rayon|mq]\n\
         \x20      rpb gate compare BASE CURRENT [--wall-tolerance X]\n\
         \x20      rpb gate check   --baseline PATH [--out PATH] [--reps N] [--threads N]\n\
         \x20                       [--wall gate|advisory] [--wall-tolerance X] [--backend rayon|mq]\n\n\
         record  runs the pinned smoke matrix (plus the scalar/simd kernel\n\
         \x20       cells, the per-backend MultiQueue cells, and the serve-*\n\
         \x20       admission-trace cells) at the gate scale and writes an\n\
         \x20       {BASELINE_SCHEMA} baseline (default out: baselines/smoke.json).\n\
         compare diffs two baseline files (exit {EXIT_HARD} on hard drift, {EXIT_SOFT} on soft).\n\
         check   records a fresh matrix and compares it against --baseline;\n\
         \x20       --wall advisory reports wall-clock drift without failing on it.\n\
         --backend sets the process-default scheduling backend for the smoke\n\
         \x20       cells (one value; the backend-* cells always record both).\n\
         Counters are gated hard (deterministic, 1-worker counter pass);\n\
         wall-clock medians are gated softly with a {DEFAULT_WALL_TOLERANCE}x default tolerance.\n\
         Baselines recording different cell sets or configs (e.g. a feature-set\n\
         mismatch) exit {EXIT_USAGE} (schema mismatch), never {EXIT_HARD}."
    )
}

/// The `rpb gate …` CLI. Returns the process exit code.
pub fn run_cli(args: &[String]) -> i32 {
    let Some(sub) = args.first().map(String::as_str) else {
        eprintln!("{}", usage());
        return EXIT_USAGE;
    };
    let mut out: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut reps = 3usize;
    let mut threads = 2usize;
    let mut tolerance = DEFAULT_WALL_TOLERANCE;
    let mut wall_advisory = false;
    let mut positional: Vec<String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        let need = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--out" => match need(i) {
                Some(v) => {
                    out = Some(v.clone());
                    i += 1;
                }
                None => return cli_err("--out needs a path"),
            },
            "--baseline" => match need(i) {
                Some(v) => {
                    baseline_path = Some(v.clone());
                    i += 1;
                }
                None => return cli_err("--baseline needs a path"),
            },
            "--reps" => match need(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    reps = v;
                    i += 1;
                }
                None => return cli_err("--reps needs a number"),
            },
            "--threads" => match need(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    threads = v;
                    i += 1;
                }
                None => return cli_err("--threads needs a number"),
            },
            "--wall-tolerance" => match need(i).and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 1.0 => {
                    tolerance = v;
                    i += 1;
                }
                _ => return cli_err("--wall-tolerance needs a ratio >= 1.0"),
            },
            "--backend" => match need(i).map(|v| v.parse::<BackendKind>()) {
                Some(Ok(k)) => {
                    set_default_backend(Some(k));
                    i += 1;
                }
                _ => {
                    return cli_err(
                        "--backend needs rayon|mq (one value; the backend-* cells \
                         always record both)",
                    )
                }
            },
            "--wall" => match need(i).map(String::as_str) {
                Some("advisory") => {
                    wall_advisory = true;
                    i += 1;
                }
                Some("gate") => {
                    wall_advisory = false;
                    i += 1;
                }
                _ => return cli_err("--wall needs gate|advisory"),
            },
            flag if flag.starts_with('-') => {
                return cli_err(&format!("unknown gate option {flag}"));
            }
            other => positional.push(other.to_string()),
        }
        i += 1;
    }

    if matches!(sub, "record" | "check") && !rpb_obs::enabled() {
        return cli_err(
            "hard metrics need telemetry recording — rebuild with --features obs \
             (`cargo run --release --features obs -p rpb-bench --bin rpb -- gate …`)",
        );
    }

    match sub {
        "record" => {
            let path = out.unwrap_or_else(|| "baselines/smoke.json".into());
            let w = build_gate_workloads();
            let baseline = record(&w, threads, reps);
            match write_baseline(Path::new(&path), &baseline) {
                Ok(()) => {
                    eprintln!(
                        "wrote {} ({} cases, scale gate, counter pass @1 thread)",
                        path,
                        baseline.cases.len()
                    );
                    print_kernel_speedups(&baseline);
                    EXIT_OK
                }
                Err(e) => cli_err(&e),
            }
        }
        "compare" => {
            if positional.len() != 2 {
                return cli_err("compare needs exactly two baseline paths");
            }
            let (base, cur) = match (
                read_baseline(Path::new(&positional[0])),
                read_baseline(Path::new(&positional[1])),
            ) {
                (Ok(b), Ok(c)) => (b, c),
                (Err(e), _) | (_, Err(e)) => return cli_err(&e),
            };
            let cmp = compare(&base, &cur, tolerance);
            print!("{}", cmp.table);
            print_violations(&cmp);
            print_schema_note(&cmp);
            cmp.exit_code(wall_advisory)
        }
        "check" => {
            let Some(bp) = baseline_path else {
                return cli_err("check needs --baseline PATH");
            };
            let base = match read_baseline(Path::new(&bp)) {
                Ok(b) => b,
                Err(e) => return cli_err(&e),
            };
            let w = build_gate_workloads();
            // Mirror the baseline's wall configuration so the soft metrics
            // compare like with like (hard metrics are config-checked).
            let cur = record(&w, base.wall_threads, base.wall_reps);
            let cmp = compare(&base, &cur, tolerance);
            print!("{}", cmp.table);
            print_violations(&cmp);
            print_schema_note(&cmp);
            print_kernel_speedups(&cur);
            if let Some(out) = out {
                if let Err(e) = write_baseline(Path::new(&out), &cur) {
                    return cli_err(&e);
                }
                eprintln!("wrote fresh baseline to {out}");
            }
            let code = cmp.exit_code(wall_advisory);
            match code {
                EXIT_OK if cmp.has_soft() => {
                    eprintln!("gate: ok (wall-clock drift present but advisory)")
                }
                EXIT_OK => eprintln!("gate: ok"),
                EXIT_SOFT => eprintln!("gate: SOFT FAIL (wall-clock beyond tolerance)"),
                EXIT_USAGE => eprintln!(
                    "gate: SCHEMA MISMATCH (baseline records a different cell set or config)"
                ),
                _ => eprintln!("gate: HARD FAIL (deterministic counters drifted)"),
            }
            code
        }
        other => cli_err(&format!("unknown gate subcommand {other}")),
    }
}

fn cli_err(msg: &str) -> i32 {
    eprintln!("rpb gate: {msg}\n\n{}", usage());
    EXIT_USAGE
}

fn print_violations(cmp: &Comparison) {
    let diff = render_violations(cmp);
    if !diff.is_empty() {
        println!("\nDrifted metrics:");
        print!("{diff}");
    }
}

fn print_schema_note(cmp: &Comparison) {
    if !cmp.has_schema() {
        return;
    }
    eprintln!(
        "\ngate: baselines are structurally incomparable (offending cells: {}).\n\
         This usually means the baseline was recorded under a different feature\n\
         set or scale — re-record it with `rpb gate record` on this build.",
        cmp.schema_cells().join(", ")
    );
}

fn print_kernel_speedups(b: &Baseline) {
    let table = render_kernel_speedups(b);
    if !table.is_empty() {
        println!("\nKernel cells (scalar vs simd dispatch, this run):");
        print!("{table}");
    }
}

fn build_gate_workloads() -> Workloads {
    let scale = Scale::gate();
    eprintln!(
        "building gate workloads (text {}B, seq {}, graph {}, points {})...",
        scale.text_len, scale.seq_len, scale.graph_n, scale.points_n
    );
    Workloads::build(scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_baseline() -> Baseline {
        Baseline {
            scale: Scale::gate(),
            counter_threads: 1,
            wall_threads: 2,
            wall_reps: 3,
            env: EnvInfo {
                git_sha: "abc".into(),
                cpu_count: 8,
                rustc: "rustc test".into(),
            },
            cases: vec![
                GateCase {
                    name: "bw".into(),
                    mode: "unsafe".into(),
                    check: None,
                    counters: vec![("sngind_pool_hits".into(), 4), ("mq_pushes".into(), 0)],
                    wall: WallStats {
                        best_ns: 900,
                        median_ns: 1000,
                        mad_ns: 10,
                        reps: 3,
                    },
                },
                GateCase {
                    name: "bw".into(),
                    mode: "checked".into(),
                    check: Some("amortized".into()),
                    counters: vec![("sngind_pool_hits".into(), 9)],
                    wall: WallStats {
                        best_ns: 1100,
                        median_ns: 1200,
                        mad_ns: 20,
                        reps: 3,
                    },
                },
            ],
        }
    }

    #[test]
    fn baseline_round_trips_through_json_text() {
        let b = tiny_baseline();
        let text = b.to_json().to_string();
        let parsed = Baseline::parse(&Json::parse(&text).expect("parse")).expect("baseline");
        assert!(b.semantic_eq(&parsed));
        // env is carried but never gates.
        assert_eq!(parsed.env.git_sha, "abc");
    }

    #[test]
    fn parse_rejects_foreign_schemas() {
        let err = Baseline::parse(&Json::parse("{\"schema\":\"rpb-baseline-v9\"}").unwrap())
            .expect_err("unknown schema");
        assert!(err.contains("rpb-baseline-v9"));
        assert!(Baseline::parse(&Json::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn identical_baselines_compare_clean() {
        let b = tiny_baseline();
        let cmp = compare(&b, &b.clone(), DEFAULT_WALL_TOLERANCE);
        assert!(cmp.violations.is_empty(), "{:?}", cmp.violations);
        assert_eq!(cmp.exit_code(false), EXIT_OK);
        assert!(cmp.table.contains("bw/unsafe"));
        assert!(cmp.table.contains("bw/checked+amortized"));
    }

    #[test]
    fn counter_tampering_is_a_hard_violation_with_diff_row() {
        let base = tiny_baseline();
        let mut cur = base.clone();
        cur.cases[0].counters[0].1 += 1; // sngind_pool_hits 4 -> 5
        let cmp = compare(&base, &cur, DEFAULT_WALL_TOLERANCE);
        assert!(cmp.has_hard());
        assert!(!cmp.has_soft());
        // Hard beats soft in the exit code, and advisory mode cannot
        // downgrade it.
        assert_eq!(cmp.exit_code(false), EXIT_HARD);
        assert_eq!(cmp.exit_code(true), EXIT_HARD);
        let diff = render_violations(&cmp);
        assert!(diff.contains("sngind_pool_hits"), "per-metric row: {diff}");
        assert!(diff.contains('4') && diff.contains('5'), "values: {diff}");
    }

    #[test]
    fn wall_slowdown_is_soft_and_advisory_downgrades_it() {
        let base = tiny_baseline();
        let mut cur = base.clone();
        // 10x the median: beyond both the ratio tolerance and the noise
        // envelope.
        cur.cases[0].wall.median_ns *= 10;
        let cmp = compare(&base, &cur, DEFAULT_WALL_TOLERANCE);
        assert!(!cmp.has_hard());
        assert!(cmp.has_soft());
        assert_eq!(cmp.exit_code(false), EXIT_SOFT);
        assert_eq!(cmp.exit_code(true), EXIT_OK);
        assert!(render_violations(&cmp).contains("wall median_ns"));
    }

    #[test]
    fn wall_noise_inside_the_envelope_is_not_a_violation() {
        let base = tiny_baseline();
        let mut cur = base.clone();
        // +8% — beyond nothing: ratio bound is +50%.
        cur.cases[0].wall.median_ns = 1080;
        let cmp = compare(&base, &cur, DEFAULT_WALL_TOLERANCE);
        assert!(!cmp.has_soft(), "{:?}", cmp.violations);

        // Beyond the ratio bound but inside the MAD envelope: a noisy
        // case (huge mad) must not trip the gate either.
        let mut cur = base.clone();
        cur.cases[0].wall.median_ns = 1600;
        cur.cases[0].wall.mad_ns = 400; // envelope: 1000 + 4*(10+400) > 1600
        let cmp = compare(&base, &cur, DEFAULT_WALL_TOLERANCE);
        assert!(!cmp.has_soft(), "{:?}", cmp.violations);
    }

    #[test]
    fn speedups_never_violate() {
        let base = tiny_baseline();
        let mut cur = base.clone();
        cur.cases[0].wall.median_ns /= 10;
        let cmp = compare(&base, &cur, DEFAULT_WALL_TOLERANCE);
        assert!(cmp.violations.is_empty(), "{:?}", cmp.violations);
    }

    #[test]
    fn missing_and_extra_cases_are_a_schema_mismatch() {
        // A baseline recorded under a different feature set (cells the
        // current build can't produce, or vice versa) must read as
        // "re-record", not as hard counter drift.
        let base = tiny_baseline();
        let mut cur = base.clone();
        let dropped = cur.cases.pop().unwrap();
        let cmp = compare(&base, &cur, DEFAULT_WALL_TOLERANCE);
        assert!(cmp.has_schema());
        assert!(!cmp.has_hard(), "{:?}", cmp.violations);
        assert_eq!(cmp.exit_code(false), EXIT_USAGE);
        assert!(cmp.table.contains("MISSING"));
        // The offending cell is named, both in the listing and the diff.
        assert_eq!(cmp.schema_cells(), vec!["bw/checked+amortized"]);
        assert!(render_violations(&cmp).contains("SCHEMA"));

        let mut cur = base.clone();
        let mut extra = dropped;
        extra.name = "zz-new".into();
        cur.cases.push(extra);
        let cmp = compare(&base, &cur, DEFAULT_WALL_TOLERANCE);
        assert!(cmp.has_schema());
        assert_eq!(cmp.exit_code(false), EXIT_USAGE);
        assert!(cmp.table.contains("NEW CASE"));
        assert_eq!(cmp.schema_cells(), vec!["zz-new/checked+amortized"]);
    }

    #[test]
    fn scale_mismatch_is_a_schema_mismatch() {
        let base = tiny_baseline();
        let mut cur = base.clone();
        cur.scale = Scale::small();
        let cmp = compare(&base, &cur, DEFAULT_WALL_TOLERANCE);
        assert!(cmp.has_schema());
        assert_eq!(cmp.exit_code(false), EXIT_USAGE);
        assert!(render_violations(&cmp).contains("scale"));
        assert_eq!(cmp.schema_cells(), vec!["<baseline>"]);
    }

    #[test]
    fn schema_mismatch_outranks_hard_drift_in_the_exit_code() {
        // Counter drift on a common cell is still reported, but the
        // verdict is the schema mismatch: against an incomparable
        // baseline, "the code regressed" is not a conclusion CI may draw.
        let base = tiny_baseline();
        let mut cur = base.clone();
        cur.cases.pop();
        cur.cases[0].counters[0].1 += 1;
        let cmp = compare(&base, &cur, DEFAULT_WALL_TOLERANCE);
        assert!(cmp.has_schema() && cmp.has_hard());
        assert_eq!(cmp.exit_code(false), EXIT_USAGE);
        assert_eq!(cmp.exit_code(true), EXIT_USAGE);
        // Schema rows sort ahead of the hard row.
        assert_eq!(cmp.violations[0].severity, Severity::Schema);
    }

    #[test]
    fn backend_matrix_records_every_mq_pair_on_both_backends() {
        let m = backend_matrix();
        assert_eq!(m.len(), 2 * BACKEND_PAIRS.len());
        for name in BACKEND_PAIRS {
            // Only the MultiQueue pairs are backend-sensitive, and each
            // records under both scheduling backends.
            assert!(name.starts_with("bfs") || name.starts_with("sssp"));
            for b in ALL_BACKENDS {
                assert!(m.contains(&(name, b)), "{name} missing {}", b.label());
            }
        }
    }

    #[test]
    fn serve_matrix_records_every_trace_on_both_backends() {
        let m = serve_matrix();
        assert_eq!(m.len(), 2 * SERVE_PAIRS.len());
        for name in SERVE_PAIRS {
            for b in ALL_BACKENDS {
                assert!(m.contains(&(name, b)), "{name} missing {}", b.label());
            }
        }
    }

    #[test]
    fn pipeline_matrix_records_every_variant_on_both_channels() {
        let m = pipeline_matrix();
        assert_eq!(m.len(), 2 * PIPELINE_PAIRS.len());
        for name in PIPELINE_PAIRS {
            for c in ALL_CHANNELS {
                assert!(m.contains(&(name, c)), "{name} missing {}", c.label());
            }
        }
    }

    #[test]
    fn pipeline_counter_pass_is_deterministic_and_channel_invariant() {
        // The pinned 1-worker-per-stage cells must report the full hard
        // counter set in gate order, reproduce bit-for-bit across runs,
        // and agree across the two channel backends — the equality the
        // recorded baseline hard-gates.
        let w = tiny_workloads();
        for name in PIPELINE_PAIRS {
            let mpsc = pipeline_counter_pass(name, ChannelKind::Mpsc, &w);
            let names: Vec<&str> = mpsc.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(names, HARD_COUNTERS, "{name}");
            assert_eq!(
                mpsc,
                pipeline_counter_pass(name, ChannelKind::Mpsc, &w),
                "{name} not reproducible"
            );
            assert_eq!(
                mpsc,
                pipeline_counter_pass(name, ChannelKind::Crossbeam, &w),
                "{name} differs across channels"
            );
            let counter = |k: &str| mpsc.iter().find(|(n, _)| n == k).map_or(0, |(_, v)| *v);
            assert_eq!(counter("pipeline_stage_panics"), 0, "{name}");
            if rpb_obs::enabled() {
                // Value claims only mean something when recording is
                // compiled in; without --features obs every counter is 0.
                assert!(counter("pipeline_runs") >= 1, "{name}");
                assert_eq!(counter("pipeline_items_in"), counter("pipeline_items_out"));
                assert!(counter("pipeline_items_in") > 0, "{name}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown pipeline cell")]
    fn pipeline_case_rejects_unknown_names() {
        run_pipeline_case("pipeline-typo", &tiny_workloads(), ChannelKind::Mpsc);
    }

    fn tiny_serve_data() -> Arc<ServeDatasets> {
        Arc::new(ServeDatasets::preload(Scale {
            text_len: 100,
            seq_len: 600,
            graph_n: 80,
            points_n: 16,
        }))
    }

    #[test]
    fn serve_counter_pass_reports_the_full_hard_counter_set() {
        // The counter *values* are pinned by rpb-serve's own trace tests
        // and by the recorded baseline; here we pin the pass's shape —
        // every hard counter present, in gate order — end to end through
        // warmup, capture, and both trace kinds.
        let data = tiny_serve_data();
        let cfg = TraceConfig::gate(BackendKind::Rayon);
        for name in SERVE_PAIRS {
            let counters = serve_counter_pass(name, &cfg, &data);
            let names: Vec<&str> = counters.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(names, HARD_COUNTERS, "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown serve cell")]
    fn serve_trace_rejects_unknown_names() {
        let cfg = TraceConfig::gate(BackendKind::Rayon);
        run_serve_trace("serve-typo", &cfg, &tiny_serve_data());
    }

    #[test]
    fn kernel_matrix_pins_every_kernel_both_ways() {
        let m = kernel_matrix();
        assert_eq!(m.len(), 2 * KERNEL_PAIRS.len());
        for name in KERNEL_PAIRS {
            for imp in [KernelImpl::Scalar, KernelImpl::Simd] {
                assert!(m.contains(&(name, imp)), "{name} missing {}", imp.label());
            }
        }
        // The Auto pin never records: a kernel cell is meaningful only
        // when its dispatch is explicit.
        assert!(m.iter().all(|&(_, k)| k != KernelImpl::Auto));
    }

    #[test]
    fn kernel_speedup_table_reads_off_the_ratio() {
        let mut b = tiny_baseline();
        // No kernel cells: nothing to render (old baselines stay valid).
        assert!(render_kernel_speedups(&b).is_empty());
        let wall = |median_ns: u64| WallStats {
            best_ns: median_ns,
            median_ns,
            mad_ns: 1,
            reps: 3,
        };
        for (mode, median) in [("scalar", 3000), ("simd", 1500)] {
            b.cases.push(GateCase {
                name: "kernel-hist".into(),
                mode: mode.into(),
                check: None,
                counters: Vec::new(),
                wall: wall(median),
            });
        }
        let table = render_kernel_speedups(&b);
        assert!(table.contains("kernel-hist"), "{table}");
        assert!(table.contains("2.00x"), "{table}");
        // A lone pin (simd cell missing) renders nothing for that kernel.
        b.cases.push(GateCase {
            name: "kernel-radix".into(),
            mode: "scalar".into(),
            check: None,
            counters: Vec::new(),
            wall: wall(9999),
        });
        assert!(!render_kernel_speedups(&b).contains("kernel-radix"));
    }

    fn tiny_workloads() -> Workloads {
        let mut scale = Scale::gate();
        // Shrink below gate so the in-crate tests stay fast; CI's gate
        // jobs exercise the real gate scale through the binary.
        scale.text_len = 2_000;
        scale.seq_len = 8_000;
        scale.graph_n = 400;
        scale.points_n = 200;
        Workloads::build(scale)
    }

    #[test]
    fn kernel_cases_run_and_time_at_tiny_scale() {
        use std::time::Duration;
        let w = tiny_workloads();
        for name in KERNEL_PAIRS {
            let ts = run_kernel_case(name, &w, 1);
            assert!(ts.best > Duration::ZERO, "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown kernel cell")]
    fn kernel_case_rejects_unknown_names() {
        run_kernel_case("kernel-typo", &tiny_workloads(), 1);
    }

    #[test]
    fn smoke_matrix_covers_the_documented_cells() {
        let m = smoke_matrix();
        // 20 recommended-mode pairs + 2 brackets for each of the 3
        // SngInd-heavy pairs.
        assert_eq!(m.len(), ALL_PAIRS.len() + 2 * FIG5A_PAIRS.len());
        assert!(m
            .iter()
            .any(|(n, m, c)| *n == "bw" && *m == ExecMode::Checked && *c == Some("fresh")));
        assert!(m
            .iter()
            .any(|(n, m, c)| *n == "sort" && *m == ExecMode::Checked && c.is_none()));
        assert!(m
            .iter()
            .any(|(n, m, c)| *n == "bfs-road" && *m == ExecMode::Sync && c.is_none()));
    }
}
