//! Emitters for every table and figure of the paper's evaluation.
//!
//! Each function returns the rendered text so the `rpb` binary, tests,
//! and EXPERIMENTS.md generation share one implementation. The timed
//! figures (4, 5a, 5b) additionally append one [`RunRecord`] per timed
//! case to a caller-supplied vector — the data behind `rpb … --json`.

use std::fmt::Write as _;
use std::time::Duration;

use rpb_fearless::ExecMode;
use rpb_suite::meta::{all_benchmarks, suite_census};

use crate::record::RunRecord;
use crate::runner::{recommended_mode, run_case, run_seq_case, FIG5A_PAIRS, FIG5B_PAIRS};
use crate::workloads::Workloads;
use crate::{fig6, gmean, time_best, TimingStats, ALL_PAIRS};

/// Runs `f` with the process-default backend's ambient pool of `threads`
/// workers installed (per-thread pool telemetry under `--features obs`
/// lives in `rpb_parlay::exec` now). Shared with the perf gate, whose
/// counter pass pins `threads` to 1 for determinism.
pub(crate) fn in_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    in_pool_on(rpb_parlay::exec::default_backend(), threads, f)
}

/// [`in_pool`] on an explicit backend, resolved through the executor
/// registry. Registration is ensured here so library tests work under
/// `RPB_BACKEND=mq` without the binary's startup hook.
pub(crate) fn in_pool_on<T: Send>(
    backend: rpb_parlay::exec::BackendKind,
    threads: usize,
    f: impl FnOnce() -> T + Send,
) -> T {
    rpb_multiqueue::backend::ensure_registered();
    rpb_parlay::exec::run_in(rpb_parlay::exec::executor(backend), threads, f)
}

/// Runs one parallel case with telemetry bracketing: metrics are reset
/// before and snapshotted after (so each record's telemetry covers the
/// warmup + all measured reps of exactly this case), and the MultiQueue
/// online rank sampler is armed for the inherently-synchronized pairs.
fn timed_par(
    recs: &mut Vec<RunRecord>,
    figure: &'static str,
    name: &str,
    w: &Workloads,
    mode: ExecMode,
    threads: usize,
    reps: usize,
) -> TimingStats {
    timed_par_tagged(recs, figure, name, w, mode, threads, reps, None)
}

/// [`timed_par`] with an optional validation-cost tag (`"fresh"` /
/// `"amortized"`) attached to the record — used by Fig. 5(a)'s check
/// bracketing.
#[allow(clippy::too_many_arguments)]
fn timed_par_tagged(
    recs: &mut Vec<RunRecord>,
    figure: &'static str,
    name: &str,
    w: &Workloads,
    mode: ExecMode,
    threads: usize,
    reps: usize,
    check: Option<&'static str>,
) -> TimingStats {
    rpb_obs::metrics::reset();
    #[cfg(feature = "obs")]
    let sample_ranks =
        mode == ExecMode::Sync && (name.starts_with("bfs") || name.starts_with("sssp"));
    #[cfg(feature = "obs")]
    if sample_ranks {
        rpb_multiqueue::enable_online_sampler(16);
    }
    let ts = in_pool(threads, || run_case(name, w, mode, threads, reps));
    #[cfg(feature = "obs")]
    if sample_ranks {
        rpb_multiqueue::disable_online_sampler();
    }
    let mut rec = RunRecord::new(
        figure,
        name,
        "par",
        mode.label(),
        threads,
        ts,
        rpb_obs::metrics::snapshot(),
    );
    if let Some(check) = check {
        rec = rec.with_check(check);
    }
    recs.push(rec);
    ts
}

/// Sequential-baseline counterpart of [`timed_par`].
fn timed_seq(
    recs: &mut Vec<RunRecord>,
    figure: &'static str,
    name: &str,
    w: &Workloads,
    reps: usize,
) -> TimingStats {
    rpb_obs::metrics::reset();
    let ts = in_pool(1, || run_seq_case(name, w, reps));
    recs.push(RunRecord::new(
        figure,
        name,
        "seq",
        "seq",
        1,
        ts,
        rpb_obs::metrics::snapshot(),
    ));
    ts
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Table 1: ported benchmarks and their parallel access patterns.
pub fn table1() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1: Ported benchmarks and their parallel access patterns"
    );
    let _ = writeln!(
        out,
        "{:<6} {:<28} {:<14} {:>3} {:>7} {:>6} {:>4} {:>7} {:>7} {:>3} {:>7} {:>8}",
        "Abbrv",
        "Benchmark",
        "Inputs",
        "RO",
        "Stride",
        "Block",
        "D&C",
        "SngInd",
        "RngInd",
        "AW",
        "static",
        "dynamic"
    );
    for b in all_benchmarks() {
        let marks = b.checkmarks();
        let mark = |on: bool| if on { "x" } else { "" };
        let _ = writeln!(
            out,
            "{:<6} {:<28} {:<14} {:>3} {:>7} {:>6} {:>4} {:>7} {:>7} {:>3} {:>7} {:>8}",
            b.abbrev,
            b.name,
            b.inputs.join(","),
            mark(marks[0]),
            mark(marks[1]),
            mark(marks[2]),
            mark(marks[3]),
            mark(marks[4]),
            mark(marks[5]),
            mark(marks[6]),
            mark(marks[7]),
            mark(marks[8]),
        );
    }
    out
}

/// Table 2: input graphs and their characteristics (at the scale the
/// workloads were built with).
pub fn table2(w: &Workloads) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2: Input graphs (generated stand-ins; see DESIGN.md)"
    );
    let _ = writeln!(
        out,
        "{:<28} {:<10} {:>10} {:>12} {:>8}",
        "Name", "Shorthand", "|V|", "|E|", "|E|/|V|"
    );
    for (name, short, g) in [
        ("Hyperlink-like (skewed RMAT)", "link", &w.link),
        ("R-MAT graph", "rmat", &w.rmat),
        ("Road-like grid", "road", &w.road),
    ] {
        let _ = writeln!(
            out,
            "{:<28} {:<10} {:>10} {:>12} {:>8.1}",
            name,
            short,
            g.num_vertices(),
            g.num_arcs() / 2,
            g.avg_degree()
        );
    }
    out
}

/// Table 3: studied patterns and their safety levels.
pub fn table3() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3: Studied patterns and their safety levels");
    let _ = writeln!(
        out,
        "{:<7} {:<28} {:<32} {}",
        "Abbr.", "Write pattern", "Parallel expression", "Fearlessness"
    );
    for p in rpb_fearless::taxonomy::ALL_PATTERNS {
        let _ = writeln!(
            out,
            "{:<7} {:<28} {:<32} {}",
            p.abbrev(),
            p.description(),
            p.expression(),
            p.fearlessness().code()
        );
    }
    out
}

/// Fig. 3: distribution of access patterns + the §7.2 headline.
pub fn fig3() -> String {
    let census = suite_census();
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 3: Distribution of access patterns in RPB-rs");
    let _ = writeln!(
        out,
        "(paper: RO 11%, Stride 52%, Block 3%, D&C 5%, SngInd 13%, RngInd 7%, AW 9%)"
    );
    for (p, count, share) in census.rows() {
        let bar = "#".repeat((share * 100.0 / 2.0) as usize);
        let _ = writeln!(
            out,
            "  {:<7} {:>3} accesses {:>5.1}%  {}",
            p.abbrev(),
            count,
            share * 100.0,
            bar
        );
    }
    let _ = writeln!(
        out,
        "irregular (SngInd+RngInd+AW): {:.1}% of accesses  (paper: 29%)",
        census.irregular_share() * 100.0
    );
    let aw = all_benchmarks()
        .iter()
        .filter(|b| b.uses(rpb_fearless::Pattern::AW))
        .count();
    let _ = writeln!(out, "benchmarks with AW: {aw} of 14  (paper: 7 of 14)");
    out
}

/// Fig. 4: parallel RPB vs baselines at 1 and `threads` threads.
///
/// Substitution note (DESIGN.md): the paper compares Rust RPB to the C++
/// PBBS originals; without OpenCilk we compare each benchmark's
/// recommended-mode parallel implementation to its sequential Rust
/// baseline — Fig. 4(a)'s question ("does the parallel abstraction cost
/// anything at 1 thread?") and Fig. 4(b)'s scaling dots carry over
/// directly.
pub fn fig4(w: &Workloads, threads: usize, reps: usize, recs: &mut Vec<RunRecord>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 4: execution time, parallel (recommended mode) vs sequential baseline"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>12} {:>8} {:>12} {:>9}",
        "pair",
        "seq",
        "par@1",
        "par/seq",
        format!("par@{threads}"),
        "scaling"
    );
    let mut ratios1 = Vec::new();
    let mut scalings = Vec::new();
    for name in ALL_PAIRS {
        let mode = recommended_mode(name);
        let t_seq = timed_seq(recs, "fig4", name, w, reps);
        let t_p1 = timed_par(recs, "fig4", name, w, mode, 1, reps);
        let t_pn = timed_par(recs, "fig4", name, w, mode, threads, reps);
        let ratio = secs(t_p1.best) / secs(t_seq.best);
        let scale = secs(t_p1.best) / secs(t_pn.best);
        ratios1.push(ratio);
        scalings.push(scale);
        let _ = writeln!(
            out,
            "{:<10} {:>12.2?} {:>12.2?} {:>8.2} {:>12.2?} {:>8.2}x",
            name, t_seq.best, t_p1.best, ratio, t_pn.best, scale
        );
    }
    let _ = writeln!(
        out,
        "gmean par@1/seq: {:.2}  (paper's Rust/C++ 1-thread gmean: ~0.92, i.e. Rust 1.09x faster)",
        gmean(&ratios1)
    );
    let _ = writeln!(out, "gmean scaling @{threads}: {:.2}x", gmean(&scalings));
    out
}

/// Fig. 5(a): overhead of the checked `par_ind_iter_mut` vs unsafe,
/// bracketed into *fresh* (mark-table pool disabled — every validation
/// allocates) and *amortized* (pooled epoch tables + validation proofs,
/// the steady-state fast path) checked runs so the reproduction shows how
/// close "comfortable" gets to zero-cost.
///
/// The brackets hold the algorithm fixed and vary only storage reuse:
/// both run today's strategies (`u32` epoch stamps / `u64` bitset words,
/// `Adaptive` selection), and fresh allocations are exact-size (the pool's
/// power-of-two rounding is skipped while it is disabled). "Fresh" is
/// therefore *this* code paying full allocation cost per check — not a
/// bit-identical replay of the historical `u8` mark table, which differed
/// in element width and strategy choice.
pub fn fig5a(w: &Workloads, threads: usize, reps: usize, recs: &mut Vec<RunRecord>) -> String {
    use rpb_fearless::pool;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 5a: dynamic offset checking for SngInd (checked / unsafe)"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "pair", "unsafe", "chk-fresh", "chk-amort", "fresh", "amort"
    );
    for name in FIG5A_PAIRS {
        let t_u = timed_par(recs, "fig5a", name, w, ExecMode::Unsafe, threads, reps);
        // Fresh: disable (and drain) the pool so every validation pays the
        // allocate-and-zero cost — exact-size, since the pool's rounding is
        // skipped while disabled. Strategy selection is deliberately
        // unaffected, so fresh vs amortized varies only storage reuse.
        pool::set_enabled(false);
        pool::clear();
        let t_f = timed_par_tagged(
            recs,
            "fig5a",
            name,
            w,
            ExecMode::Checked,
            threads,
            reps,
            Some("fresh"),
        );
        // Amortized: the pooled fast path; run_case's warmup execution
        // warms the pool, so the measured reps are all pool hits.
        pool::set_enabled(true);
        let t_a = timed_par_tagged(
            recs,
            "fig5a",
            name,
            w,
            ExecMode::Checked,
            threads,
            reps,
            Some("amortized"),
        );
        let _ = writeln!(
            out,
            "{:<10} {:>12.2?} {:>12.2?} {:>12.2?} {:>7.2}x {:>7.2}x",
            name,
            t_u.best,
            t_f.best,
            t_a.best,
            secs(t_f.best) / secs(t_u.best),
            secs(t_a.best) / secs(t_u.best)
        );
    }
    let _ = writeln!(
        out,
        "(fresh = allocate-per-check, exact-size u32 epoch tables / bitsets, same strategy"
    );
    let _ = writeln!(
        out,
        " selection as amortized; paper: negligible for bw, up to ~2.8x for lrs/sa)"
    );
    out
}

/// Fig. 5(b): overhead of unnecessary synchronization vs unsafe.
pub fn fig5b(w: &Workloads, threads: usize, reps: usize, recs: &mut Vec<RunRecord>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 5b: unnecessary synchronization for SngInd and AW (sync / unsafe)"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>12} {:>9}",
        "pair", "unsafe", "sync", "overhead"
    );
    for name in FIG5B_PAIRS {
        let t_u = timed_par(recs, "fig5b", name, w, ExecMode::Unsafe, threads, reps);
        let t_s = timed_par(recs, "fig5b", name, w, ExecMode::Sync, threads, reps);
        let _ = writeln!(
            out,
            "{:<10} {:>12.2?} {:>12.2?} {:>8.2}x",
            name,
            t_u.best,
            t_s.best,
            secs(t_s.best) / secs(t_u.best)
        );
    }
    let _ = writeln!(
        out,
        "(paper: ~1x for relaxed-atomic benchmarks, ~4x for hist's Mutex<large struct>)"
    );
    out
}

/// Fig. 6: the Rayon-justification microbenchmark (Appendix A).
pub fn fig6_report(n: usize, reps: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 6: run times of Listing 11-15 implementations ({n} elements)"
    );
    let _ = writeln!(out, "{:<22} {:>12} {:>6}  note", "variant", "time", "LoC");
    let fresh = || (0..n).collect::<Vec<usize>>();

    let t = time_best(reps, || {
        let mut v = fresh();
        fig6::serial_hash(&mut v);
        std::hint::black_box(v);
    });
    let _ = writeln!(
        out,
        "{:<22} {:>12.2?} {:>6}",
        fig6::VARIANTS[0].0,
        t.best,
        fig6::VARIANTS[0].1
    );

    // Thread-per-task: measure a 2000-element slice and extrapolate.
    let cap = 2000.min(n);
    let t_cap = time_best(reps, || {
        let mut v = fresh();
        fig6::par_hash_thread_per_task(&mut v, cap);
        std::hint::black_box(v);
    });
    let extrapolated = t_cap.best.mul_f64(n as f64 / cap as f64);
    let _ = writeln!(
        out,
        "{:<22} {:>12.2?} {:>6}  extrapolated from {cap} tasks; full size panics (paper: same)",
        fig6::VARIANTS[1].0,
        extrapolated,
        fig6::VARIANTS[1].1
    );

    let t = time_best(reps, || {
        let mut v = fresh();
        fig6::par_hash_thread_per_core(&mut v);
        std::hint::black_box(v);
    });
    let _ = writeln!(
        out,
        "{:<22} {:>12.2?} {:>6}",
        fig6::VARIANTS[2].0,
        t.best,
        fig6::VARIANTS[2].1
    );

    let t = time_best(reps, || {
        let mut v = fresh();
        fig6::par_hash_job_queue(&mut v);
        std::hint::black_box(v);
    });
    let _ = writeln!(
        out,
        "{:<22} {:>12.2?} {:>6}",
        fig6::VARIANTS[3].0,
        t.best,
        fig6::VARIANTS[3].1
    );

    let t = time_best(reps, || {
        let mut v = fresh();
        fig6::par_hash_rayon(&mut v);
        std::hint::black_box(v);
    });
    let _ = writeln!(
        out,
        "{:<22} {:>12.2?} {:>6}",
        fig6::VARIANTS[4].0,
        t.best,
        fig6::VARIANTS[4].1
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn static_tables_render() {
        let t1 = table1();
        assert_eq!(t1.lines().count(), 16); // header x2 + 14 rows
        assert!(t1.contains("sssp"));
        let t3 = table3();
        assert!(t3.contains("par_ind_iter_mut"));
        let f3 = fig3();
        assert!(f3.contains("irregular"));
    }

    #[test]
    fn dynamic_tables_render_at_tiny_scale() {
        let tiny = Scale {
            text_len: 3000,
            seq_len: 10_000,
            graph_n: 500,
            points_n: 200,
        };
        let w = Workloads::build(tiny);
        let t2 = table2(&w);
        assert!(t2.contains("road"));
        let mut recs = Vec::new();
        let f5a = fig5a(&w, 2, 1, &mut recs);
        assert!(f5a.contains("lrs"));
        // One unsafe + two checked (fresh/amortized) records per pair.
        assert_eq!(recs.len(), 3 * FIG5A_PAIRS.len());
        assert!(recs.iter().all(|r| r.figure == "fig5a" && r.kind == "par"));
        for name in FIG5A_PAIRS {
            for check in ["fresh", "amortized"] {
                assert!(
                    recs.iter()
                        .any(|r| r.name == *name && r.mode == "checked" && r.check == Some(check)),
                    "missing {check} record for {name}"
                );
            }
        }
        assert!(recs.iter().all(|r| r.mode != "unsafe" || r.check.is_none()));
        let f6 = fig6_report(50_000, 1);
        assert!(f6.contains("par_rayon"));
    }
}
