//! Pre-built inputs shared across a harness run (built once per scale,
//! excluded from all timings).

use rpb_geom::Point;
use rpb_graph::{Graph, GraphKind, WeightedGraph};
use rpb_suite::inputs;

use crate::scale::Scale;

/// All inputs for one scale.
pub struct Workloads {
    /// The scale these were built at.
    pub scale: Scale,
    /// Wiki-like text.
    pub text: Vec<u8>,
    /// BWT of the text (input to `bw`).
    pub bwt: Vec<u8>,
    /// Exponential integer sequence.
    pub seq: Vec<u64>,
    /// Kuzmin points.
    pub points: Vec<Point>,
    /// `link` graph + weighted version.
    pub link: Graph,
    /// `rmat` graph.
    pub rmat: Graph,
    /// `road` graph.
    pub road: Graph,
    /// Weighted `link`.
    pub wlink: WeightedGraph,
    /// Weighted `road`.
    pub wroad: WeightedGraph,
    /// Canonical edge lists per family (for `mm`, `sf`).
    pub link_edges: (usize, Vec<(u32, u32)>),
    /// `rmat` edges.
    pub rmat_edges: (usize, Vec<(u32, u32)>),
    /// `road` edges.
    pub road_edges: (usize, Vec<(u32, u32)>),
    /// Weighted edges for `msf`.
    pub rmat_wedges: (usize, Vec<(u32, u32, u32)>),
    /// Weighted `road` edges.
    pub road_wedges: (usize, Vec<(u32, u32, u32)>),
}

impl Workloads {
    /// Builds every input at the given scale (deterministic).
    pub fn build(scale: Scale) -> Workloads {
        let text = inputs::wiki(scale.text_len);
        let bwt = rpb_text::bwt_encode(&text, rpb_fearless::ExecMode::Unsafe);
        Workloads {
            scale,
            bwt,
            text,
            seq: inputs::exponential(scale.seq_len),
            points: inputs::kuzmin(scale.points_n),
            link: inputs::graph(GraphKind::Link, scale.graph_n / 4),
            rmat: inputs::graph(GraphKind::Rmat, scale.graph_n),
            road: inputs::graph(GraphKind::Road, scale.graph_n),
            wlink: inputs::weighted_graph(GraphKind::Link, scale.graph_n / 4),
            wroad: inputs::weighted_graph(GraphKind::Road, scale.graph_n),
            link_edges: inputs::edges(GraphKind::Link, scale.graph_n / 4),
            rmat_edges: inputs::edges(GraphKind::Rmat, scale.graph_n),
            road_edges: inputs::edges(GraphKind::Road, scale.graph_n),
            rmat_wedges: inputs::weighted_edges(GraphKind::Rmat, scale.graph_n),
            road_wedges: inputs::weighted_edges(GraphKind::Road, scale.graph_n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_workloads_build() {
        let w = Workloads::build(Scale::small());
        assert_eq!(w.text.len(), Scale::small().text_len);
        assert_eq!(w.bwt.len(), w.text.len() + 1);
        assert!(w.link.avg_degree() > w.road.avg_degree());
        assert!(!w.rmat_wedges.1.is_empty());
    }
}
