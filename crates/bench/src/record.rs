//! Structured run records: the machine-readable output behind
//! `rpb … --json <path>` and the `rpb report` summary.
//!
//! Each timed benchmark run (one pair × mode × thread count) becomes one
//! [`RunRecord`] carrying the timing statistics and a full telemetry
//! snapshot from [`rpb_obs::metrics`]. A report file is a single JSON
//! object `{"schema": "rpb-bench-v2", "records": [...]}` whose records
//! embed the environment (`git_sha`, `cpu_count`, `rustc`) so perf
//! trajectories (`BENCH_0.json`, `BENCH_1.json`, …) stay self-describing.
//!
//! Schema history: `rpb-bench-v2` added the robust wall-clock statistics
//! `median_ns`/`mad_ns` to every record (the noise model behind `rpb
//! gate`'s soft comparisons). `rpb-bench-v1` files remain readable — the
//! summary renderer accepts every tag in [`KNOWN_SCHEMAS`] and warns
//! (rather than silently skipping) on files whose tag it does not know.

use std::io::Write as _;

use rpb_obs::{Json, Snapshot};

use crate::scale::Scale;
use crate::TimingStats;

/// Schema tag written into every report file.
pub const SCHEMA: &str = "rpb-bench-v2";

/// The original record schema (no `median_ns`/`mad_ns`); still readable.
pub const SCHEMA_V1: &str = "rpb-bench-v1";

/// Every report schema `rpb report` can render, newest first.
pub const KNOWN_SCHEMAS: &[&str] = &[SCHEMA, SCHEMA_V1];

/// Build/host environment captured once per harness invocation.
#[derive(Clone, Debug)]
pub struct EnvInfo {
    /// `git rev-parse --short HEAD` of the working tree, or `"unknown"`.
    pub git_sha: String,
    /// `std::thread::available_parallelism()`.
    pub cpu_count: usize,
    /// First line of `rustc --version`, or `"unknown"`.
    pub rustc: String,
}

impl EnvInfo {
    /// Collects the environment by probing `git` and `rustc` (each falls
    /// back to `"unknown"` when unavailable).
    pub fn collect() -> EnvInfo {
        EnvInfo {
            git_sha: command_line("git", &["rev-parse", "--short", "HEAD"])
                .unwrap_or_else(|| "unknown".into()),
            cpu_count: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            rustc: command_line("rustc", &["--version"]).unwrap_or_else(|| "unknown".into()),
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("git_sha".into(), Json::Str(self.git_sha.clone())),
            ("cpu_count".into(), Json::from_u64(self.cpu_count as u64)),
            ("rustc".into(), Json::Str(self.rustc.clone())),
        ])
    }
}

/// First output line of a command, if it runs successfully.
fn command_line(cmd: &str, args: &[&str]) -> Option<String> {
    let out = std::process::Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    let line = text.lines().next()?.trim();
    (!line.is_empty()).then(|| line.to_string())
}

/// One benchmark-pair × mode × thread-count run.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Which figure/table drove this run (`"fig4"`, `"fig5a"`, `"fig5b"`).
    pub figure: &'static str,
    /// Pair label as in Fig. 4 (`"bw"`, `"mis-link"`, …).
    pub name: String,
    /// `"par"` or `"seq"` (sequential baseline).
    pub kind: &'static str,
    /// Exec-mode label (`"unsafe"`, `"checked"`, `"sync"`) or `"seq"`.
    pub mode: String,
    /// Worker threads the run was given.
    pub threads: usize,
    /// Measured repetitions behind `best`/`mean` (warmup excluded).
    pub reps: usize,
    /// Best measured wall time, nanoseconds.
    pub best_ns: u128,
    /// Mean measured wall time, nanoseconds.
    pub mean_ns: u128,
    /// Median measured wall time, nanoseconds (schema v2).
    pub median_ns: u128,
    /// Median absolute deviation of the wall times, nanoseconds
    /// (schema v2).
    pub mad_ns: u128,
    /// Validation-cost regime for checked-mode runs that vary it:
    /// `"fresh"` (mark-table pool disabled — every check allocates an
    /// exact-size table) or `"amortized"` (pooled epoch tables and
    /// validation proofs). Both regimes use the same strategies (`u32`
    /// epoch stamps / bitsets, `Adaptive` selection) — the bracket varies
    /// storage reuse only, not the algorithm; neither replays the
    /// historical `u8` mark table. `None` for runs that don't bracket the
    /// check.
    pub check: Option<&'static str>,
    /// Telemetry accumulated over warmup + all repetitions (all zeros
    /// unless built with `--features obs`).
    pub telemetry: Snapshot,
}

impl RunRecord {
    /// Builds a record from a finished measurement.
    pub fn new(
        figure: &'static str,
        name: &str,
        kind: &'static str,
        mode: &str,
        threads: usize,
        timing: TimingStats,
        telemetry: Snapshot,
    ) -> RunRecord {
        RunRecord {
            figure,
            name: name.to_string(),
            kind,
            mode: mode.to_string(),
            threads,
            reps: timing.reps,
            best_ns: timing.best_ns(),
            mean_ns: timing.mean_ns(),
            median_ns: timing.median_ns(),
            mad_ns: timing.mad_ns(),
            check: None,
            telemetry,
        }
    }

    /// Tags the record with a validation-cost regime (`"fresh"` /
    /// `"amortized"`); see the `check` field.
    pub fn with_check(mut self, check: &'static str) -> RunRecord {
        self.check = Some(check);
        self
    }

    /// Renders the record, embedding the shared scale and environment.
    /// The `check` key is only present on runs that bracket the
    /// validation cost, so records from other figures are unchanged.
    pub fn to_json(&self, scale: Scale, env: &EnvInfo) -> Json {
        let mut fields = vec![
            ("figure".into(), Json::Str(self.figure.into())),
            ("name".into(), Json::Str(self.name.clone())),
            ("kind".into(), Json::Str(self.kind.into())),
            ("mode".into(), Json::Str(self.mode.clone())),
        ];
        if let Some(check) = self.check {
            fields.push(("check".into(), Json::Str(check.into())));
        }
        fields.extend([
            ("threads".into(), Json::from_u64(self.threads as u64)),
            ("scale".into(), scale_to_json(scale)),
            ("reps".into(), Json::from_u64(self.reps as u64)),
            ("best_ns".into(), Json::from_u128(self.best_ns)),
            ("mean_ns".into(), Json::from_u128(self.mean_ns)),
            ("median_ns".into(), Json::from_u128(self.median_ns)),
            ("mad_ns".into(), Json::from_u128(self.mad_ns)),
            ("telemetry".into(), self.telemetry.to_json()),
            ("env".into(), env.to_json()),
        ]);
        Json::Obj(fields)
    }
}

fn scale_to_json(scale: Scale) -> Json {
    Json::Obj(vec![
        ("text_len".into(), Json::from_u64(scale.text_len as u64)),
        ("seq_len".into(), Json::from_u64(scale.seq_len as u64)),
        ("graph_n".into(), Json::from_u64(scale.graph_n as u64)),
        ("points_n".into(), Json::from_u64(scale.points_n as u64)),
    ])
}

/// Renders a full report document.
pub fn report_to_json(records: &[RunRecord], scale: Scale, env: &EnvInfo) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        (
            "records".into(),
            Json::Arr(records.iter().map(|r| r.to_json(scale, env)).collect()),
        ),
    ])
}

/// Writes a report document to `path` (overwrites).
pub fn write_json(
    path: &std::path::Path,
    records: &[RunRecord],
    scale: Scale,
    env: &EnvInfo,
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{}", report_to_json(records, scale, env))
}

/// The `"schema"` tag of a parsed report document, if it has one.
pub fn doc_schema(doc: &Json) -> Option<&str> {
    doc.get("schema").and_then(Json::as_str)
}

/// Result of rendering a batch of report documents ([`render_report_docs`]).
#[derive(Debug, Default)]
pub struct ReportOutcome {
    /// Concatenated summaries of every renderable document.
    pub rendered: String,
    /// One warning per skipped document (offending path + reason).
    pub warnings: Vec<String>,
    /// Documents successfully rendered.
    pub rendered_files: usize,
    /// Documents skipped (unknown schema or malformed records).
    pub skipped_files: usize,
}

/// Renders `(label, document)` pairs — the multi-file `rpb report` path.
///
/// A document whose `"schema"` tag is not in [`KNOWN_SCHEMAS`] (or is
/// malformed) is *not* silently dropped: it produces a warning naming the
/// offending label and is counted in `skipped_files`, so a trajectory
/// directory mixing old and foreign files reports exactly what it ignored.
pub fn render_report_docs(docs: &[(String, Json)]) -> ReportOutcome {
    use std::fmt::Write as _;

    let mut out = ReportOutcome::default();
    for (label, doc) in docs {
        match render_report(doc) {
            Ok(summary) => {
                if out.rendered_files > 0 {
                    out.rendered.push('\n');
                }
                if docs.len() > 1 {
                    let _ = writeln!(out.rendered, "== {label} ==");
                }
                out.rendered.push_str(&summary);
                out.rendered_files += 1;
            }
            Err(e) => {
                out.warnings.push(format!("skipping {label}: {e}"));
                out.skipped_files += 1;
            }
        }
    }
    if out.skipped_files > 0 {
        out.warnings.push(format!(
            "{} of {} file(s) skipped (unknown schema or malformed); \
             known schemas: {}",
            out.skipped_files,
            docs.len(),
            KNOWN_SCHEMAS.join(", ")
        ));
    }
    out
}

/// Renders the human-readable `rpb report` summary from a parsed report
/// document: per-pair check-overhead attribution (Fig. 5a's question) and
/// MultiQueue behaviour (scheduler health for the Sync pairs).
pub fn render_report(doc: &Json) -> Result<String, String> {
    use std::fmt::Write as _;

    let schema = doc_schema(doc);
    if !schema.is_some_and(|s| KNOWN_SCHEMAS.contains(&s)) {
        return Err(match schema {
            Some(s) => format!(
                "unknown schema \"{s}\" (known: {})",
                KNOWN_SCHEMAS.join(", ")
            ),
            None => format!("not an {SCHEMA} report (missing \"schema\")"),
        });
    }
    let records = doc
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("report has no \"records\" array")?;

    let mut out = String::new();
    if records.is_empty() {
        // A zero-record document is a valid "nothing ran" report, not a
        // rendering failure: note it and skip the per-record sections.
        let _ = writeln!(out, "rpb report — no records");
        return Ok(out);
    }
    let _ = writeln!(out, "rpb report — {} records", records.len());

    let field = |r: &Json, k: &str| -> Result<u64, String> {
        r.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("record missing {k}"))
    };
    let text = |r: &Json, k: &str| -> Result<String, String> {
        Ok(r.get(k)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("record missing {k}"))?
            .into())
    };
    let counter = |r: &Json, name: &str| -> u64 {
        r.get("telemetry")
            .and_then(|t| t.get("counters"))
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    let histo_sum_ns = |r: &Json, name: &str| -> u64 {
        r.get("telemetry")
            .and_then(|t| t.get("histos"))
            .and_then(|h| h.get(name))
            .and_then(|h| h.get("sum_ns"))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };

    // Check-overhead attribution: for each checked run, how much of the
    // measured time went into the dynamic checks? Telemetry accumulates
    // over warmup + reps, so normalize per execution. Fig. 5(a) runs are
    // tagged "fresh" (pool disabled, allocate-per-call) or "amortized"
    // (pooled epoch tables + validation proofs); the pool hit/miss and
    // proof-reuse counters show the fast path at work.
    let _ = writeln!(out, "\nCheck-overhead attribution (checked-mode runs):");
    let _ = writeln!(
        out,
        "{:<12} {:<6} {:<10} {:>12} {:>13} {:>13} {:>11} {:>7} {:>7}",
        "pair",
        "figure",
        "check",
        "best_ns",
        "sngind_chk/r",
        "rngind_chk/r",
        "pool h/m",
        "proofs",
        "share"
    );
    let mut any_checked = false;
    for r in records {
        if text(r, "mode")? != "checked" {
            continue;
        }
        any_checked = true;
        let check = r.get("check").and_then(Json::as_str).unwrap_or("-");
        let best = field(r, "best_ns")?;
        let execs = field(r, "reps")? + 1; // + warmup
        let snd = histo_sum_ns(r, "sngind_check_ns") / execs;
        let rng = histo_sum_ns(r, "rngind_check_ns") / execs;
        let pool = format!(
            "{}/{}",
            counter(r, "sngind_pool_hits"),
            counter(r, "sngind_pool_misses")
        );
        let share = if best > 0 {
            (snd + rng) as f64 / best as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:<12} {:<6} {:<10} {:>12} {:>13} {:>13} {:>11} {:>7} {:>6.1}%",
            text(r, "name")?,
            text(r, "figure")?,
            check,
            best,
            snd,
            rng,
            pool,
            counter(r, "sngind_proof_reuses"),
            share * 100.0
        );
    }
    if !any_checked {
        let _ = writeln!(out, "  (no checked-mode records; run with --features obs)");
    }

    // Fresh-vs-amortized roll-up: pair up tagged fig5a runs so the
    // amortization win is one number per pair.
    let mut any_pairing = false;
    for r in records {
        if r.get("check").and_then(Json::as_str) != Some("fresh") {
            continue;
        }
        let name = text(r, "name")?;
        let partner = records.iter().find(|a| {
            a.get("check").and_then(Json::as_str) == Some("amortized")
                && a.get("name").and_then(Json::as_str) == Some(name.as_str())
        });
        let Some(partner) = partner else { continue };
        if !any_pairing {
            let _ = writeln!(
                out,
                "\nAmortized-check speedup (fresh / amortized, best_ns):"
            );
            any_pairing = true;
        }
        let fresh = field(r, "best_ns")?;
        let amort = field(partner, "best_ns")?;
        let ratio = if amort > 0 {
            fresh as f64 / amort as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  {:<12} {:>12} / {:>12} = {:.2}x",
            name, fresh, amort, ratio
        );
    }

    // MultiQueue behaviour for the Sync/MQ pairs.
    let _ = writeln!(out, "\nMultiQueue telemetry (runs with scheduler traffic):");
    let _ = writeln!(
        out,
        "{:<12} {:<6} {:>10} {:>10} {:>11} {:>10} {:>10}",
        "pair", "mode", "pushes", "pops", "empty_pops", "idle", "rank_mean"
    );
    let mut any_mq = false;
    for r in records {
        let pushes = counter(r, "mq_pushes");
        if pushes == 0 {
            continue;
        }
        any_mq = true;
        let samples = counter(r, "mq_rank_samples");
        let rank_mean = if samples > 0 {
            format!(
                "{:.2}",
                counter(r, "mq_rank_error_sum") as f64 / samples as f64
            )
        } else {
            "-".into()
        };
        let _ = writeln!(
            out,
            "{:<12} {:<6} {:>10} {:>10} {:>11} {:>10} {:>10}",
            text(r, "name")?,
            text(r, "mode")?,
            pushes,
            counter(r, "mq_pops"),
            counter(r, "mq_empty_pops"),
            counter(r, "exec_idle_spins"),
            rank_mean
        );
    }
    if !any_mq {
        let _ = writeln!(
            out,
            "  (no MultiQueue records; run fig4/all with --features obs)"
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn dummy_record(mode: &str) -> RunRecord {
        RunRecord::new(
            "fig4",
            "bw",
            "par",
            mode,
            2,
            TimingStats {
                best: Duration::from_nanos(1000),
                mean: Duration::from_nanos(1200),
                median: Duration::from_nanos(1100),
                mad: Duration::from_nanos(50),
                reps: 3,
            },
            Snapshot::default(),
        )
    }

    #[test]
    fn record_json_has_the_documented_fields() {
        let env = EnvInfo {
            git_sha: "abc123".into(),
            cpu_count: 4,
            rustc: "rustc x".into(),
        };
        let j = dummy_record("checked").to_json(Scale::small(), &env);
        for k in [
            "figure",
            "name",
            "kind",
            "mode",
            "threads",
            "scale",
            "reps",
            "best_ns",
            "mean_ns",
            "median_ns",
            "mad_ns",
            "telemetry",
            "env",
        ] {
            assert!(j.get(k).is_some(), "missing field {k}");
        }
        assert_eq!(j.get("best_ns").unwrap().as_u64(), Some(1000));
        assert_eq!(j.get("median_ns").unwrap().as_u64(), Some(1100));
        assert_eq!(j.get("mad_ns").unwrap().as_u64(), Some(50));
        assert_eq!(
            j.get("env").unwrap().get("git_sha").unwrap().as_str(),
            Some("abc123")
        );
        assert_eq!(
            j.get("scale").unwrap().get("seq_len").unwrap().as_u64(),
            Some(Scale::small().seq_len as u64)
        );
    }

    #[test]
    fn report_document_round_trips_and_renders() {
        let env = EnvInfo::collect();
        let recs = vec![dummy_record("checked"), dummy_record("unsafe")];
        let doc = report_to_json(&recs, Scale::small(), &env);
        let parsed = Json::parse(&doc.to_string()).expect("round trip");
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(parsed.get("records").unwrap().as_arr().unwrap().len(), 2);
        let rendered = render_report(&parsed).expect("render");
        assert!(rendered.contains("Check-overhead attribution"));
        assert!(rendered.contains("bw"));
    }

    #[test]
    fn check_field_is_emitted_only_when_tagged() {
        let env = EnvInfo {
            git_sha: "abc123".into(),
            cpu_count: 4,
            rustc: "rustc x".into(),
        };
        let plain = dummy_record("checked").to_json(Scale::small(), &env);
        assert!(plain.get("check").is_none());
        let tagged = dummy_record("checked")
            .with_check("amortized")
            .to_json(Scale::small(), &env);
        assert_eq!(tagged.get("check").unwrap().as_str(), Some("amortized"));
    }

    #[test]
    fn render_attributes_fresh_and_amortized_separately() {
        let env = EnvInfo::collect();
        let recs = vec![
            dummy_record("unsafe"),
            dummy_record("checked").with_check("fresh"),
            dummy_record("checked").with_check("amortized"),
        ];
        let doc = report_to_json(&recs, Scale::small(), &env);
        let parsed = Json::parse(&doc.to_string()).expect("round trip");
        let rendered = render_report(&parsed).expect("render");
        assert!(rendered.contains("fresh"));
        assert!(rendered.contains("amortized"));
        assert!(rendered.contains("Amortized-check speedup"));
    }

    #[test]
    fn zero_record_document_renders_a_note() {
        let env = EnvInfo::collect();
        let doc = report_to_json(&[], Scale::small(), &env);
        let parsed = Json::parse(&doc.to_string()).expect("round trip");
        let rendered = render_report(&parsed).expect("render");
        assert!(rendered.contains("no records"), "{rendered}");
        assert!(
            !rendered.contains("Check-overhead attribution"),
            "empty report skips the per-record sections: {rendered}"
        );
    }

    #[test]
    fn render_rejects_foreign_documents() {
        assert!(render_report(&Json::parse("{\"x\":1}").unwrap()).is_err());
        assert!(render_report(&Json::Null).is_err());
        let err =
            render_report(&Json::parse("{\"schema\":\"rpb-bench-v99\",\"records\":[]}").unwrap())
                .expect_err("unknown schema");
        assert!(err.contains("rpb-bench-v99"), "names the schema: {err}");
    }

    #[test]
    fn render_accepts_v1_documents() {
        // A v1 trajectory file (no median_ns/mad_ns anywhere) must keep
        // rendering after the v2 bump.
        let env = EnvInfo::collect();
        let mut doc = report_to_json(&[dummy_record("checked")], Scale::small(), &env);
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "schema" {
                    *v = Json::Str(SCHEMA_V1.into());
                }
            }
        }
        let rendered = render_report(&doc).expect("v1 renders");
        assert!(rendered.contains("Check-overhead attribution"));
    }

    #[test]
    fn report_docs_warn_on_unknown_schema_with_path_and_count() {
        let env = EnvInfo::collect();
        let good = report_to_json(&[dummy_record("checked")], Scale::small(), &env);
        let mut old = good.clone();
        if let Json::Obj(fields) = &mut old {
            for (k, v) in fields.iter_mut() {
                if k == "schema" {
                    *v = Json::Str(SCHEMA_V1.into());
                }
            }
        }
        let foreign = Json::parse("{\"schema\":\"rpb-bench-v99\",\"records\":[]}").unwrap();
        let outcome = render_report_docs(&[
            ("runs/a.json".into(), good),
            ("runs/old.json".into(), old),
            ("runs/foreign.json".into(), foreign),
        ]);
        assert_eq!(outcome.rendered_files, 2, "v2 + v1 render");
        assert_eq!(outcome.skipped_files, 1, "unknown schema skipped");
        // The warning names the offending path and the bad schema ...
        assert!(
            outcome
                .warnings
                .iter()
                .any(|w| w.contains("runs/foreign.json") && w.contains("rpb-bench-v99")),
            "warnings: {:?}",
            outcome.warnings
        );
        // ... and a final line carries the skip count.
        assert!(
            outcome.warnings.last().unwrap().contains("1 of 3"),
            "warnings: {:?}",
            outcome.warnings
        );
    }
}
