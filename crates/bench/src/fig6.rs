//! The Appendix A microbenchmark (Fig. 6 + Listings 10–15): why Rayon.
//!
//! Hash every element of a vector (Listing 10's PBBS hash as the task)
//! with five implementations:
//!
//! 1. [`serial_hash`] — Listing 11,
//! 2. [`par_hash_thread_per_task`] — Listing 13 (one OS thread per
//!    element; capped, because — as the paper notes — the real thing
//!    "fills the stack and leads to program termination"),
//! 3. [`par_hash_thread_per_core`] — Listing 14 (chunk per core),
//! 4. [`par_hash_job_queue`] — Listing 15 (worker threads + Mutex job
//!    queue),
//! 5. [`par_hash_rayon`] — Listing 12 (one-line `par_iter_mut`).
//!
//! Each variant records the lines of code of its paper listing for the
//! Fig. 6 right axis.

use rayon::prelude::*;
use std::sync::Mutex;

use rpb_parlay::random::hash_task;

/// Listing 11: sequential. (3 LoC in the paper.)
pub fn serial_hash(v: &mut [usize]) {
    v.iter_mut().for_each(hash_task);
}

/// Listing 13: one scoped thread per task. (8 LoC.)
///
/// The paper's version launches `v.len()` threads and dies on large
/// inputs; `cap` bounds the number of elements actually processed this
/// way so the measurement can complete — the harness reports the
/// extrapolated cost and marks the variant "panics at full size".
pub fn par_hash_thread_per_task(v: &mut [usize], cap: usize) -> usize {
    let n = v.len().min(cap);
    std::thread::scope(|s| {
        let mut threads = Vec::with_capacity(n);
        for vi in v[..n].iter_mut() {
            threads.push(s.spawn(|| hash_task(vi)));
        }
        threads
            .into_iter()
            .for_each(|t| t.join().expect("no panic"));
    });
    n
}

/// Listing 14: one thread per core, equal chunks. (14 LoC.)
pub fn par_hash_thread_per_core(v: &mut [usize]) {
    let num_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let elements_per_thread = v.len().div_ceil(num_threads).max(1);
    let chunks = v.chunks_mut(elements_per_thread);
    std::thread::scope(|s| {
        let mut threads = Vec::new();
        for chunk in chunks {
            threads.push(s.spawn(|| chunk.iter_mut().for_each(hash_task)));
        }
        threads
            .into_iter()
            .for_each(|t| t.join().expect("no panic"));
    });
}

/// Listing 15: worker threads pulling jobs from a `Mutex`-guarded queue.
/// (23 LoC.)
pub fn par_hash_job_queue(v: &mut [usize]) {
    let num_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let elements_per_job = 10_000;
    let jobs = Mutex::new(v.chunks_mut(elements_per_job));
    std::thread::scope(|s| {
        let mut threads = Vec::new();
        for _ in 0..num_threads {
            threads.push(s.spawn(|| loop {
                let mut guard = jobs.lock().expect("queue lock"); // lock
                let job = guard.next(); // get a job
                drop(guard); // unlock
                match job {
                    Some(job) => job.iter_mut().for_each(hash_task),
                    None => break,
                }
            }));
        }
        threads
            .into_iter()
            .for_each(|t| t.join().expect("no panic"));
    });
}

/// Listing 12: Rayon. (4 LoC — net zero change from sequential.)
pub fn par_hash_rayon(v: &mut [usize]) {
    v.par_iter_mut().for_each(hash_task);
}

/// The Fig. 6 variants with their paper LoC counts.
pub const VARIANTS: [(&str, usize); 5] = [
    ("serial", 3),
    ("par_1 (thread/task)", 8),
    ("par_2 (thread/core)", 14),
    ("par_3 (job queue)", 23),
    ("par_rayon", 4),
];

#[cfg(test)]
mod tests {
    use super::*;
    use rpb_parlay::random::hash64;

    fn expected(n: usize) -> Vec<usize> {
        (0..n).map(|i| hash64(i as u64) as usize).collect()
    }

    #[test]
    fn all_variants_compute_the_same_hashes() {
        let n = 50_000;
        let fresh = || (0..n).collect::<Vec<usize>>();
        let want = expected(n);

        let mut v = fresh();
        serial_hash(&mut v);
        assert_eq!(v, want);

        let mut v = fresh();
        par_hash_rayon(&mut v);
        assert_eq!(v, want);

        let mut v = fresh();
        par_hash_thread_per_core(&mut v);
        assert_eq!(v, want);

        let mut v = fresh();
        par_hash_job_queue(&mut v);
        assert_eq!(v, want);

        let mut v = fresh();
        let done = par_hash_thread_per_task(&mut v, 500);
        assert_eq!(done, 500);
        assert_eq!(&v[..500], &want[..500]);
        assert_eq!(v[500], 500, "beyond the cap must be untouched");
    }

    #[test]
    fn variant_table_is_consistent() {
        assert_eq!(VARIANTS.len(), 5);
        // Rayon is the shortest parallel implementation (Fig. 6's point).
        let rayon_loc = VARIANTS[4].1;
        assert!(VARIANTS[1..4].iter().all(|&(_, loc)| loc > rayon_loc));
    }
}
