//! The engine behind `rpb verify`: drives the suite's differential
//! verification ([`rpb_suite::verify`]) across execution modes and
//! worker-pool sizes, and renders the pass/fail matrix.
//!
//! Each cell is one `(benchmark, mode)` pair, run once per requested
//! worker count inside a dedicated Rayon pool of that size. A cell
//! fails on the first typed [`rpb_suite::SuiteError`] — or on a panic,
//! which is caught and reported as a failure rather than killing the
//! sweep. The harness exits [`EXIT_DIVERGENCE`] when any cell fails, so
//! CI can block on it.

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

use rpb_fearless::{ExecMode, ALL_MODES};
use rpb_parlay::exec::{default_backend, BackendKind};
use rpb_parlay::simd::KernelImpl;
use rpb_pipeline::{default_channel, ChannelKind};
use rpb_suite::streaming::{verify_streaming, StreamConfig, STREAMING_BENCHES};
use rpb_suite::verify::{verify_pair_on, SuiteInputs, SUITE_BENCHES};

use crate::figures::in_pool_on;
use crate::workloads::Workloads;

/// Every cell agreed.
pub const EXIT_OK: i32 = 0;
/// At least one cell diverged, violated an invariant, or panicked.
pub const EXIT_DIVERGENCE: i32 = 1;

/// Largest accepted worker-pool size. Requests past this are config
/// typos, not capacity plans — rejected as a usage error at parse time
/// instead of letting a pool build fail deep inside the matrix engine.
pub const MAX_WORKERS: usize = 4096;

/// What to run: which benchmarks, modes, and pool sizes.
pub struct VerifyConfig {
    /// Benchmark abbreviations; empty means the full suite.
    pub benches: Vec<String>,
    /// Execution modes to cover.
    pub modes: Vec<ExecMode>,
    /// Worker-pool sizes each cell runs under.
    pub workers: Vec<usize>,
    /// Kernel implementations each cell runs under (the scalar-vs-simd
    /// differential axis; `--kernel-impl scalar,simd`). The default is
    /// `[Auto]` — let runtime detection decide, one run per cell.
    pub kernel_impls: Vec<KernelImpl>,
    /// Scheduling backends each cell runs under (the backend
    /// differential axis; `--backend rayon,mq`). The default is the
    /// process default — one run per cell.
    pub backends: Vec<BackendKind>,
    /// Corrupt this benchmark's parallel output before checking — a
    /// testing hook proving the failure path (FAIL cell, nonzero exit)
    /// works end to end.
    pub inject: Option<String>,
    /// Run the streaming matrix (`--streaming`) instead of the batch
    /// one: benchmarks default to [`STREAMING_BENCHES`], columns are
    /// channel backends, and each cell asserts streaming-vs-batch
    /// agreement plus the bounded in-flight memory claim. The `modes`
    /// and `kernel_impls` axes don't apply (streaming runs the
    /// sequential kernel per chunk).
    pub streaming: bool,
    /// Channel backends each streaming cell runs under (the channel
    /// differential axis; `--channel mpsc,crossbeam`). Only consulted
    /// with `streaming`; the default is the process default channel.
    pub channels: Vec<ChannelKind>,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            benches: Vec::new(),
            modes: ALL_MODES.to_vec(),
            workers: vec![1, 2],
            kernel_impls: vec![KernelImpl::Auto],
            backends: vec![default_backend()],
            inject: None,
            streaming: false,
            channels: vec![default_channel()],
        }
    }
}

/// Result of a matrix sweep.
pub struct VerifyOutcome {
    /// The rendered matrix + failure details + summary line.
    pub rendered: String,
    /// One line per failed `(bench, mode, workers)` run.
    pub failures: Vec<String>,
    /// Number of `(bench, mode)` cells executed.
    pub cells: usize,
}

/// Borrows a [`Workloads`] as the suite's verification input set.
pub fn suite_inputs(w: &Workloads) -> SuiteInputs<'_> {
    SuiteInputs {
        text: &w.text,
        bwt: &w.bwt,
        seq: &w.seq,
        points: &w.points,
        link: &w.link,
        road: &w.road,
        wlink: &w.wlink,
        wroad: &w.wroad,
        link_edges: (w.link_edges.0, &w.link_edges.1),
        road_edges: (w.road_edges.0, &w.road_edges.1),
        rmat_wedges: (w.rmat_wedges.0, &w.rmat_wedges.1),
        road_wedges: (w.road_wedges.0, &w.road_wedges.1),
    }
}

/// Checks a worker-count list: non-empty, every entry in
/// `1..=`[`MAX_WORKERS`]. The error lists the offending values in
/// ascending order — deterministic regardless of CLI argument order —
/// together with the valid range. Shared by `rpb`'s flag parsing (so
/// `--workers 0` dies at parse time) and [`run_matrix`] (so programmatic
/// configs get the same contract).
pub fn validate_workers(workers: &[usize]) -> Result<(), String> {
    if workers.is_empty() {
        return Err(format!(
            "worker counts must be a non-empty list of integers in 1..={MAX_WORKERS}"
        ));
    }
    let mut bad: Vec<usize> = workers
        .iter()
        .copied()
        .filter(|&n| n == 0 || n > MAX_WORKERS)
        .collect();
    bad.sort_unstable();
    bad.dedup();
    if !bad.is_empty() {
        let list: Vec<String> = bad.iter().map(|n| n.to_string()).collect();
        return Err(format!(
            "invalid worker count{} {} (valid range: 1..={MAX_WORKERS})",
            if list.len() == 1 { "" } else { "s" },
            list.join(", ")
        ));
    }
    Ok(())
}

/// Runs the configured matrix. `Err` is a usage problem (unknown
/// benchmark name, empty mode/worker list, out-of-range worker count,
/// a kernel impl or backend this build can't honor) — distinct from
/// verification failures, which are reported inside the `Ok` outcome.
pub fn run_matrix(w: &Workloads, cfg: &VerifyConfig) -> Result<VerifyOutcome, String> {
    if cfg.streaming {
        return run_streaming_matrix(w, cfg);
    }
    let benches: Vec<&str> = if cfg.benches.is_empty() {
        SUITE_BENCHES.to_vec()
    } else {
        cfg.benches
            .iter()
            .map(|b| {
                SUITE_BENCHES
                    .iter()
                    .find(|&&s| s == b)
                    .copied()
                    .ok_or_else(|| {
                        format!(
                            "unknown benchmark `{b}` (valid: {})",
                            SUITE_BENCHES.join(", ")
                        )
                    })
            })
            .collect::<Result<_, _>>()?
    };
    if let Some(inj) = &cfg.inject {
        if !SUITE_BENCHES.contains(&inj.as_str()) {
            return Err(format!(
                "cannot inject into unknown benchmark `{inj}` (valid: {})",
                SUITE_BENCHES.join(", ")
            ));
        }
    }
    if cfg.modes.is_empty() {
        return Err("no execution modes selected".into());
    }
    validate_workers(&cfg.workers)?;
    if cfg.kernel_impls.is_empty() {
        return Err("no kernel implementations selected".into());
    }
    if cfg.kernel_impls.contains(&KernelImpl::Simd) && !rpb_parlay::simd::simd_compiled() {
        return Err(
            "kernel impl `simd` requires a binary built with `--features simd`: this build \
             compiled only the scalar paths, so the scalar-vs-simd differential would \
             vacuously compare scalar against itself"
                .into(),
        );
    }
    if cfg.backends.is_empty() {
        return Err("no backends selected".into());
    }

    let inputs = suite_inputs(w);
    let mut rendered = String::new();
    let mut failures: Vec<String> = Vec::new();
    let mut cells = 0usize;

    write!(rendered, "{:<8}", "bench").expect("write to string");
    for mode in &cfg.modes {
        write!(rendered, " {:<8}", mode.label()).expect("write to string");
    }
    rendered.push('\n');
    for &bench in &benches {
        write!(rendered, "{bench:<8}").expect("write to string");
        for &mode in &cfg.modes {
            cells += 1;
            let mut cell_ok = true;
            'cell: for &kimpl in &cfg.kernel_impls {
                for &backend in &cfg.backends {
                    for &workers in &cfg.workers {
                        let inject = cfg.inject.as_deref() == Some(bench);
                        if let Err(detail) =
                            run_cell(&inputs, bench, mode, workers, kimpl, backend, inject)
                        {
                            failures.push(format!(
                                "{bench}/{} @{workers} workers [{}/{}]: {detail}",
                                mode.label(),
                                kimpl.label(),
                                backend.label()
                            ));
                            cell_ok = false;
                            break 'cell;
                        }
                    }
                }
            }
            write!(rendered, " {:<8}", if cell_ok { "ok" } else { "FAIL" })
                .expect("write to string");
        }
        rendered.push('\n');
    }
    rendered.push('\n');
    for f in &failures {
        writeln!(rendered, "FAIL {f}").expect("write to string");
    }
    let workers: Vec<String> = cfg.workers.iter().map(|n| n.to_string()).collect();
    let impls: Vec<&str> = cfg.kernel_impls.iter().map(|k| k.label()).collect();
    let backends: Vec<&str> = cfg.backends.iter().map(|b| b.label()).collect();
    writeln!(
        rendered,
        "verify: {cells} cells ({} ok, {} FAIL) across workers {{{}}} and kernel impls {{{}}} \
         and backends {{{}}}",
        cells - failures.len(),
        failures.len(),
        workers.join(","),
        impls.join(","),
        backends.join(",")
    )
    .expect("write to string");
    Ok(VerifyOutcome {
        rendered,
        failures,
        cells,
    })
}

/// The streaming counterpart of the batch matrix: rows are the
/// benchmarks with streaming variants, columns are channel backends, and
/// each cell sweeps the executor backends and worker counts. A cell runs
/// [`verify_streaming`] — streaming output must agree exactly with the
/// batch oracles and honor the `capacity × channels` in-flight bound —
/// and fails on the first typed error or panic.
fn run_streaming_matrix(w: &Workloads, cfg: &VerifyConfig) -> Result<VerifyOutcome, String> {
    let benches: Vec<&str> = if cfg.benches.is_empty() {
        STREAMING_BENCHES.to_vec()
    } else {
        cfg.benches
            .iter()
            .map(|b| {
                STREAMING_BENCHES
                    .iter()
                    .find(|&&s| s == b)
                    .copied()
                    .ok_or_else(|| {
                        format!(
                            "benchmark `{b}` has no streaming variant (valid: {})",
                            STREAMING_BENCHES.join(", ")
                        )
                    })
            })
            .collect::<Result<_, _>>()?
    };
    if let Some(inj) = &cfg.inject {
        if !STREAMING_BENCHES.contains(&inj.as_str()) {
            return Err(format!(
                "cannot inject into `{inj}`: no streaming variant (valid: {})",
                STREAMING_BENCHES.join(", ")
            ));
        }
    }
    validate_workers(&cfg.workers)?;
    if cfg.channels.is_empty() {
        return Err("no channel backends selected".into());
    }
    if cfg.backends.is_empty() {
        return Err("no backends selected".into());
    }

    let inputs = suite_inputs(w);
    let mut rendered = String::new();
    let mut failures: Vec<String> = Vec::new();
    let mut cells = 0usize;

    write!(rendered, "{:<8}", "bench").expect("write to string");
    for channel in &cfg.channels {
        write!(rendered, " {:<10}", channel.label()).expect("write to string");
    }
    rendered.push('\n');
    for &bench in &benches {
        write!(rendered, "{bench:<8}").expect("write to string");
        for &channel in &cfg.channels {
            cells += 1;
            let mut cell_ok = true;
            'cell: for &backend in &cfg.backends {
                for &workers in &cfg.workers {
                    let inject = cfg.inject.as_deref() == Some(bench);
                    if let Err(detail) =
                        run_streaming_cell(&inputs, bench, channel, backend, workers, inject)
                    {
                        failures.push(format!(
                            "{bench}/streaming @{workers} workers [{}/{}]: {detail}",
                            channel.label(),
                            backend.label()
                        ));
                        cell_ok = false;
                        break 'cell;
                    }
                }
            }
            write!(rendered, " {:<10}", if cell_ok { "ok" } else { "FAIL" })
                .expect("write to string");
        }
        rendered.push('\n');
    }
    rendered.push('\n');
    for f in &failures {
        writeln!(rendered, "FAIL {f}").expect("write to string");
    }
    let workers: Vec<String> = cfg.workers.iter().map(|n| n.to_string()).collect();
    let channels: Vec<&str> = cfg.channels.iter().map(|c| c.label()).collect();
    let backends: Vec<&str> = cfg.backends.iter().map(|b| b.label()).collect();
    writeln!(
        rendered,
        "verify --streaming: {cells} cells ({} ok, {} FAIL) across workers {{{}}} and channels \
         {{{}}} and backends {{{}}}",
        cells - failures.len(),
        failures.len(),
        workers.join(","),
        channels.join(","),
        backends.join(",")
    )
    .expect("write to string");
    Ok(VerifyOutcome {
        rendered,
        failures,
        cells,
    })
}

/// One streaming `(bench, channel, backend, workers)` run,
/// panic-isolated. The pipeline builds its own executor batch (one
/// worker thread per blocking stage task), so no ambient pool pinning
/// is needed — `workers` sizes the transform-stage farm.
fn run_streaming_cell(
    inputs: &SuiteInputs<'_>,
    bench: &str,
    channel: ChannelKind,
    backend: BackendKind,
    workers: usize,
    inject: bool,
) -> Result<(), String> {
    // Registration is ensured here (not just in the binary's startup
    // hook) so library tests can sweep the mq backend too.
    rpb_multiqueue::backend::ensure_registered();
    let cfg = StreamConfig {
        channel,
        backend,
        workers,
        ..StreamConfig::default()
    };
    match catch_unwind(AssertUnwindSafe(|| {
        verify_streaming(bench, inputs, cfg, inject)
    })) {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => Err(e.to_string()),
        Err(payload) => Err(format!(
            "panicked: {}",
            rpb_parlay::panics::panic_message(&*payload)
        )),
    }
}

/// One `(bench, mode, workers, kernel impl, backend)` run inside its own
/// pool, panic-isolated. A non-[`KernelImpl::Auto`] impl pins the
/// dispatch for the duration of the run (serialized via the global force
/// lock so concurrent matrices can't trample each other's pin) and
/// restores auto dispatch afterwards — panics included.
fn run_cell(
    inputs: &SuiteInputs<'_>,
    bench: &str,
    mode: ExecMode,
    workers: usize,
    kimpl: KernelImpl,
    backend: BackendKind,
    inject: bool,
) -> Result<(), String> {
    let _pin = (kimpl != KernelImpl::Auto).then(|| {
        let guard = rpb_parlay::simd::force_lock();
        rpb_parlay::simd::set_forced(kimpl);
        guard
    });
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        in_pool_on(backend, workers, || {
            verify_pair_on(backend, bench, inputs, mode, workers, inject)
        })
    }));
    if kimpl != KernelImpl::Auto {
        rpb_parlay::simd::set_forced(KernelImpl::Auto);
    }
    match outcome {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => Err(e.to_string()),
        Err(payload) => Err(format!(
            "panicked: {}",
            rpb_parlay::panics::panic_message(&*payload)
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    fn tiny_workloads() -> Workloads {
        let mut scale = Scale::gate();
        // Shrink below gate so the in-crate matrix tests stay fast; the
        // CLI regression test exercises the real gate scale.
        scale.text_len = 2_000;
        scale.seq_len = 8_000;
        scale.graph_n = 400;
        scale.points_n = 200;
        Workloads::build(scale)
    }

    #[test]
    fn clean_subset_matrix_passes() {
        let w = tiny_workloads();
        let cfg = VerifyConfig {
            benches: vec!["hist".into(), "sort".into(), "bfs".into()],
            workers: vec![1, 2],
            ..VerifyConfig::default()
        };
        let out = run_matrix(&w, &cfg).expect("usage ok");
        assert_eq!(out.cells, 9, "3 benches x 3 modes");
        assert!(out.failures.is_empty(), "{}", out.rendered);
        assert!(
            out.rendered.contains("9 cells (9 ok, 0 FAIL)"),
            "{}",
            out.rendered
        );
    }

    // Requesting the simd impl in a build without the compiled-in
    // vectorized kernels is a usage error (see
    // `simd_impl_without_the_feature_is_a_usage_error`), so the
    // both-paths sweep only exists where `simd_compiled()` is true.
    #[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
    #[test]
    fn kernel_impl_axis_runs_both_paths() {
        let w = tiny_workloads();
        let cfg = VerifyConfig {
            benches: vec!["hist".into(), "dedup".into()],
            modes: vec![ExecMode::Checked],
            workers: vec![2],
            kernel_impls: vec![KernelImpl::Scalar, KernelImpl::Simd],
            ..VerifyConfig::default()
        };
        let out = run_matrix(&w, &cfg).expect("usage ok");
        assert_eq!(out.cells, 2, "{}", out.rendered);
        assert!(out.failures.is_empty(), "{}", out.rendered);
        assert!(
            out.rendered.contains("kernel impls {scalar,simd}"),
            "{}",
            out.rendered
        );
    }

    #[test]
    fn empty_kernel_impl_list_is_a_usage_error() {
        let w = tiny_workloads();
        let none = VerifyConfig {
            kernel_impls: Vec::new(),
            ..VerifyConfig::default()
        };
        assert!(run_matrix(&w, &none).is_err());
    }

    #[test]
    fn injection_renders_fail_cells() {
        let w = tiny_workloads();
        let cfg = VerifyConfig {
            benches: vec!["hist".into(), "sort".into()],
            modes: vec![ExecMode::Checked],
            workers: vec![2],
            inject: Some("hist".into()),
            ..VerifyConfig::default()
        };
        let out = run_matrix(&w, &cfg).expect("usage ok");
        assert_eq!(out.failures.len(), 1, "{}", out.rendered);
        assert!(out.failures[0].contains("hist"), "{}", out.failures[0]);
        assert!(out.rendered.contains("FAIL"), "{}", out.rendered);
    }

    #[test]
    fn backend_axis_runs_both_backends() {
        let w = tiny_workloads();
        let cfg = VerifyConfig {
            benches: vec!["bfs".into(), "sssp".into()],
            modes: vec![ExecMode::Sync],
            workers: vec![1, 2],
            backends: vec![BackendKind::Rayon, BackendKind::Mq],
            ..VerifyConfig::default()
        };
        let out = run_matrix(&w, &cfg).expect("usage ok");
        assert_eq!(out.cells, 2, "{}", out.rendered);
        assert!(out.failures.is_empty(), "{}", out.rendered);
        assert!(
            out.rendered.contains("backends {rayon,mq}"),
            "{}",
            out.rendered
        );
        // An empty backend list is a usage error.
        let none = VerifyConfig {
            backends: Vec::new(),
            ..VerifyConfig::default()
        };
        assert!(run_matrix(&w, &none).is_err());
    }

    #[test]
    fn streaming_matrix_passes_on_both_channels_and_backends() {
        let w = tiny_workloads();
        let cfg = VerifyConfig {
            streaming: true,
            channels: vec![ChannelKind::Mpsc, ChannelKind::Crossbeam],
            backends: vec![BackendKind::Rayon, BackendKind::Mq],
            workers: vec![1, 2],
            ..VerifyConfig::default()
        };
        let out = run_matrix(&w, &cfg).expect("usage ok");
        assert_eq!(out.cells, 6, "3 streaming benches x 2 channels");
        assert!(out.failures.is_empty(), "{}", out.rendered);
        assert!(
            out.rendered
                .contains("channels {mpsc,crossbeam} and backends {rayon,mq}"),
            "{}",
            out.rendered
        );
    }

    #[test]
    fn streaming_injection_renders_fail_cells() {
        let w = tiny_workloads();
        let cfg = VerifyConfig {
            streaming: true,
            benches: vec!["hist".into(), "dedup".into()],
            workers: vec![1],
            inject: Some("dedup".into()),
            ..VerifyConfig::default()
        };
        let out = run_matrix(&w, &cfg).expect("usage ok");
        assert_eq!(out.failures.len(), 1, "{}", out.rendered);
        assert!(out.failures[0].contains("dedup"), "{}", out.failures[0]);
        assert!(out.rendered.contains("FAIL"), "{}", out.rendered);
    }

    #[test]
    fn streaming_usage_errors_are_typed() {
        let w = tiny_workloads();
        // `sort` has no streaming variant.
        let no_variant = VerifyConfig {
            streaming: true,
            benches: vec!["sort".into()],
            ..VerifyConfig::default()
        };
        let err = run_matrix(&w, &no_variant).unwrap_err();
        assert!(err.contains("no streaming variant"), "{err}");
        let bad_inject = VerifyConfig {
            streaming: true,
            inject: Some("sort".into()),
            ..VerifyConfig::default()
        };
        assert!(run_matrix(&w, &bad_inject).is_err());
        let no_channels = VerifyConfig {
            streaming: true,
            channels: Vec::new(),
            ..VerifyConfig::default()
        };
        assert!(run_matrix(&w, &no_channels).is_err());
    }

    #[test]
    fn usage_errors_are_not_failures() {
        let w = tiny_workloads();
        let unknown = VerifyConfig {
            benches: vec!["quicksort".into()],
            ..VerifyConfig::default()
        };
        assert!(run_matrix(&w, &unknown).unwrap_err().contains("quicksort"));
        let bad_inject = VerifyConfig {
            inject: Some("quicksort".into()),
            ..VerifyConfig::default()
        };
        assert!(run_matrix(&w, &bad_inject).is_err());
        let zero_workers = VerifyConfig {
            workers: vec![0],
            ..VerifyConfig::default()
        };
        assert!(run_matrix(&w, &zero_workers).is_err());
        let no_modes = VerifyConfig {
            modes: Vec::new(),
            ..VerifyConfig::default()
        };
        assert!(run_matrix(&w, &no_modes).is_err());
    }

    #[test]
    fn worker_range_errors_are_typed_and_ordered() {
        assert!(validate_workers(&[1, 2, MAX_WORKERS]).is_ok());
        assert!(validate_workers(&[]).is_err());
        // Offenders listed ascending regardless of input order, with the
        // valid range spelled out.
        let err = validate_workers(&[9000, 2, 0, 5000, 9000]).unwrap_err();
        assert!(err.contains("0, 5000, 9000"), "{err}");
        assert!(err.contains("1..=4096"), "{err}");
        let err = validate_workers(&[0]).unwrap_err();
        assert!(err.contains("invalid worker count 0"), "{err}");
    }

    #[cfg(not(feature = "simd"))]
    #[test]
    fn simd_impl_without_the_feature_is_a_usage_error() {
        let w = tiny_workloads();
        let cfg = VerifyConfig {
            benches: vec!["hist".into()],
            modes: vec![ExecMode::Checked],
            kernel_impls: vec![KernelImpl::Simd],
            ..VerifyConfig::default()
        };
        let err = run_matrix(&w, &cfg).unwrap_err();
        assert!(err.contains("--features simd"), "{err}");
    }
}
