//! The `rpb` harness binary: regenerates every table and figure of the
//! paper. See `rpb help`.

use std::path::PathBuf;

use rpb_bench::record::{self, EnvInfo};
use rpb_bench::{figures, RunRecord, Scale, Workloads};
use rpb_parlay::exec::{set_default_backend, BackendKind};
use rpb_pipeline::{set_default_channel, ChannelKind};

fn main() {
    // Fill the MultiQueue slot of the executor registry before any
    // --backend/RPB_BACKEND resolution can reach it.
    rpb_multiqueue::backend::ensure_registered();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    if cmd == "gate" {
        // The gate has its own flag grammar (record|compare|check).
        std::process::exit(rpb_bench::gate::run_cli(&args[1..]));
    }
    if cmd == "serve" {
        // The resident benchmark service (own flag grammar).
        std::process::exit(rpb_serve::cli::run_serve_cli(&args[1..]));
    }
    if cmd == "load" {
        // The bundled load generator (own flag grammar).
        std::process::exit(rpb_serve::cli::run_load_cli(&args[1..]));
    }
    // Unknown subcommands are usage errors (exit 2), not a silent help
    // dump with exit 0 — CI scripts depend on the distinction.
    const COMMANDS: &[&str] = &[
        "table1", "table2", "table3", "fig3", "fig4", "fig5a", "fig5b", "fig6", "all", "verify",
        "report", "help", "-h", "--help",
    ];
    if !COMMANDS.contains(&cmd) {
        die(&format!("unknown command \"{cmd}\" (see `rpb help`)"));
    }
    let mut scale = Scale::default();
    let mut threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut reps = 3usize;
    let mut json_path: Option<PathBuf> = None;
    let mut report_paths: Vec<PathBuf> = Vec::new();
    let mut verify_cfg = rpb_bench::verifier::VerifyConfig::default();
    let mut workers_given = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = Scale::parse(args.get(i).map(String::as_str).unwrap_or(""))
                    .unwrap_or_else(|e| die(&e));
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|a| a.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a number"));
            }
            "--reps" => {
                i += 1;
                reps = args
                    .get(i)
                    .and_then(|a| a.parse().ok())
                    .unwrap_or_else(|| die("--reps needs a number"));
            }
            "--json" => {
                i += 1;
                json_path = Some(PathBuf::from(
                    args.get(i).unwrap_or_else(|| die("--json needs a path")),
                ));
            }
            "--suite" if cmd == "verify" => {
                i += 1;
                let list = args.get(i).unwrap_or_else(|| die("--suite needs a list"));
                verify_cfg.benches = list.split(',').map(str::to_string).collect();
            }
            "--mode" if cmd == "verify" => {
                i += 1;
                let list = args.get(i).unwrap_or_else(|| die("--mode needs a list"));
                verify_cfg.modes = list
                    .split(',')
                    .map(|m| m.parse().unwrap_or_else(|e| die(&format!("{e}"))))
                    .collect();
            }
            "--workers" if cmd == "verify" => {
                i += 1;
                let list = args.get(i).unwrap_or_else(|| die("--workers needs a list"));
                verify_cfg.workers = list
                    .split(',')
                    .map(|n| {
                        n.parse()
                            .unwrap_or_else(|_| die("--workers needs positive integers"))
                    })
                    .collect();
                workers_given = true;
            }
            "--kernel-impl" if cmd == "verify" => {
                i += 1;
                let list = args
                    .get(i)
                    .unwrap_or_else(|| die("--kernel-impl needs a list (auto,scalar,simd)"));
                verify_cfg.kernel_impls = list
                    .split(',')
                    .map(|k| k.parse().unwrap_or_else(|e| die(&format!("{e}"))))
                    .collect();
            }
            "--backend" => {
                i += 1;
                let list = args
                    .get(i)
                    .unwrap_or_else(|| die("--backend needs a list (rayon,mq)"));
                let mut backends: Vec<BackendKind> = Vec::new();
                for b in list.split(',') {
                    let k = b.parse().unwrap_or_else(|e| die(&format!("{e}")));
                    if !backends.contains(&k) {
                        backends.push(k);
                    }
                }
                if cmd == "verify" {
                    verify_cfg.backends = backends;
                } else if let [one] = backends[..] {
                    set_default_backend(Some(one));
                } else {
                    die("--backend takes one value outside `rpb verify` \
                         (a comma list is only a verify-matrix axis)");
                }
            }
            "--streaming" if cmd == "verify" => {
                verify_cfg.streaming = true;
            }
            "--channel" => {
                i += 1;
                let list = args
                    .get(i)
                    .unwrap_or_else(|| die("--channel needs a list (mpsc,crossbeam)"));
                let mut channels: Vec<ChannelKind> = Vec::new();
                for c in list.split(',') {
                    let k = c.parse().unwrap_or_else(|e| die(&format!("{e}")));
                    if !channels.contains(&k) {
                        channels.push(k);
                    }
                }
                if cmd == "verify" {
                    verify_cfg.channels = channels;
                } else if let [one] = channels[..] {
                    set_default_channel(Some(one));
                } else {
                    die("--channel takes one value outside `rpb verify` \
                         (a comma list is only a verify-matrix axis)");
                }
            }
            "--inject" if cmd == "verify" => {
                i += 1;
                let bench = args
                    .get(i)
                    .unwrap_or_else(|| die("--inject needs a benchmark"));
                verify_cfg.inject = Some(bench.clone());
            }
            other if cmd == "report" && !other.starts_with('-') => {
                report_paths.push(PathBuf::from(other));
            }
            other => die(&format!("unknown option {other}")),
        }
        i += 1;
    }
    // Worker/thread counts are validated here, at parse time, so a typo'd
    // `--workers 0` dies with a typed usage error before the (expensive)
    // workload build rather than deep inside a pool constructor.
    rpb_bench::verifier::validate_workers(&[threads])
        .unwrap_or_else(|e| die(&format!("--threads: {e}")));
    if !workers_given {
        // Default worker matrix: serial, minimal contention, full width.
        verify_cfg.workers = vec![1, 2, threads];
        verify_cfg.workers.sort_unstable();
        verify_cfg.workers.dedup();
    }
    if cmd == "verify" {
        rpb_bench::verifier::validate_workers(&verify_cfg.workers)
            .unwrap_or_else(|e| die(&format!("--workers: {e}")));
    }
    if json_path.is_some() && !matches!(cmd, "fig4" | "fig5a" | "fig5b" | "all") {
        die("--json only applies to fig4|fig5a|fig5b|all");
    }

    let needs_workloads = matches!(
        cmd,
        "table2" | "fig4" | "fig5a" | "fig5b" | "all" | "verify"
    );
    let workloads = needs_workloads.then(|| {
        eprintln!(
            "building workloads (text {}B, seq {}, graph {}, points {})...",
            scale.text_len, scale.seq_len, scale.graph_n, scale.points_n
        );
        Workloads::build(scale)
    });
    let w = workloads.as_ref();

    let mut recs: Vec<RunRecord> = Vec::new();
    match cmd {
        "table1" => print!("{}", figures::table1()),
        "table2" => print!("{}", figures::table2(w.expect("workloads"))),
        "table3" => print!("{}", figures::table3()),
        "fig3" => print!("{}", figures::fig3()),
        "fig4" => print!(
            "{}",
            figures::fig4(w.expect("workloads"), threads, reps, &mut recs)
        ),
        "fig5a" => print!(
            "{}",
            figures::fig5a(w.expect("workloads"), threads, reps, &mut recs)
        ),
        "fig5b" => print!(
            "{}",
            figures::fig5b(w.expect("workloads"), threads, reps, &mut recs)
        ),
        "fig6" => print!("{}", figures::fig6_report(scale.seq_len, reps)),
        "verify" => {
            let outcome = rpb_bench::verifier::run_matrix(w.expect("workloads"), &verify_cfg)
                .unwrap_or_else(|e| die(&e));
            print!("{}", outcome.rendered);
            if !outcome.failures.is_empty() {
                std::process::exit(rpb_bench::verifier::EXIT_DIVERGENCE);
            }
        }
        "report" => {
            if report_paths.is_empty() {
                die("report needs at least one JSON file path");
            }
            let mut empty_files = 0usize;
            let mut docs: Vec<(String, rpb_obs::Json)> = Vec::new();
            for path in &report_paths {
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", path.display())));
                // An empty file is a valid "nothing ran yet" report — note
                // it and exit cleanly rather than failing to parse.
                if text.trim().is_empty() {
                    println!("rpb report — no records ({})", path.display());
                    empty_files += 1;
                    continue;
                }
                let doc = rpb_obs::Json::parse(&text)
                    .unwrap_or_else(|e| die(&format!("cannot parse {}: {e}", path.display())));
                docs.push((path.display().to_string(), doc));
            }
            let outcome = record::render_report_docs(&docs);
            print!("{}", outcome.rendered);
            for w in &outcome.warnings {
                eprintln!("rpb report: warning: {w}");
            }
            if outcome.rendered_files == 0 && empty_files == 0 {
                die("no renderable report files");
            }
        }
        "all" => {
            let w = w.expect("workloads");
            println!("{}", figures::table1());
            println!("{}", figures::table2(w));
            println!("{}", figures::table3());
            println!("{}", figures::fig3());
            println!("{}", figures::fig4(w, threads, reps, &mut recs));
            println!("{}", figures::fig5a(w, threads, reps, &mut recs));
            println!("{}", figures::fig5b(w, threads, reps, &mut recs));
            println!("{}", figures::fig6_report(scale.seq_len, reps));
        }
        _ => {
            println!(
                "rpb — regenerate the tables and figures of\n\
                 \"When Is Parallelism Fearless and Zero-Cost with Rust?\" (SPAA'24)\n\n\
                 usage: rpb <table1|table2|table3|fig3|fig4|fig5a|fig5b|fig6|all|verify>\n\
                 \x20       [--scale gate|small|medium|large] [--threads N] [--reps N] [--json PATH]\n\
                 \x20       [--backend rayon|mq]\n\
                 \x20      rpb verify [--suite a,b,...] [--mode unsafe,checked,sync]\n\
                 \x20                 [--workers 1,2,...] [--kernel-impl auto,scalar,simd]\n\
                 \x20                 [--backend rayon,mq]\n\
                 \x20                 [--streaming] [--channel mpsc,crossbeam]\n\
                 \x20                 # differential verification matrix\n\
                 \x20      rpb report <file.json>...      # summarize --json reports\n\
                 \x20      rpb gate <record|compare|check> # deterministic perf gate\n\
                 \x20      rpb serve [--self-test]        # resident benchmark service\n\
                 \x20      rpb load --addr HOST:PORT      # drive a running service\n\n\
                 `rpb verify` runs every benchmark's parallel implementation\n\
                 against its sequential oracle and structural invariant checker\n\
                 in each execution mode and worker-pool size, exiting 1 on any\n\
                 divergence (see EXPERIMENTS.md, \"Output verification\").\n\
                 --kernel-impl scalar,simd repeats every cell with the SIMD\n\
                 dispatch pinned to each implementation (meaningful in\n\
                 --features simd builds; forcing simd never exceeds what the\n\
                 CPU supports), differentially verifying the vectorized fast\n\
                 paths against their mandatory scalar fallbacks.\n\
                 --backend rayon,mq repeats every cell on each scheduling\n\
                 backend (rayon = scope tasks on the ambient pool, mq =\n\
                 dedicated scoped threads), cross-checking the executor\n\
                 substrates against each other and the sequential oracle.\n\
                 Outside `rpb verify` the flag takes one value and sets the\n\
                 process-default backend (also: RPB_BACKEND=rayon|mq).\n\
                 --streaming switches the matrix to the chunked pipeline\n\
                 variants (hist, dedup, bfs over rpb-pipeline skeletons):\n\
                 streaming output must agree exactly with the batch oracles\n\
                 and honor the bounded in-flight memory claim. --channel\n\
                 mpsc,crossbeam repeats every streaming cell on each channel\n\
                 backend; outside `rpb verify` the flag takes one value and\n\
                 sets the process-default channel (also:\n\
                 RPB_CHANNEL=mpsc|crossbeam).\n\
                 --json writes one structured record per timed case (schema\n\
                 \"rpb-bench-v2\"); telemetry fields are all-zero unless built\n\
                 with --features obs. `rpb report` renders the check-overhead\n\
                 and MultiQueue summaries from such files (v1 files remain\n\
                 readable; unknown schemas warn instead of silently skipping).\n\
                 `rpb gate` records and checks committed perf baselines — see\n\
                 `rpb gate` with no arguments and EXPERIMENTS.md."
            );
        }
    }

    if let Some(path) = json_path {
        let env = EnvInfo::collect();
        record::write_json(&path, &recs, scale, &env)
            .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
        eprintln!("wrote {} records to {}", recs.len(), path.display());
    }
}

fn die(msg: &str) -> ! {
    eprintln!("rpb: {msg}");
    std::process::exit(2);
}
