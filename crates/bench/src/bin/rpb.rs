//! The `rpb` harness binary: regenerates every table and figure of the
//! paper. See `rpb help`.

use std::path::PathBuf;

use rpb_bench::record::{self, EnvInfo};
use rpb_bench::{figures, RunRecord, Scale, Workloads};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    if cmd == "gate" {
        // The gate has its own flag grammar (record|compare|check).
        std::process::exit(rpb_bench::gate::run_cli(&args[1..]));
    }
    let mut scale = Scale::default();
    let mut threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut reps = 3usize;
    let mut json_path: Option<PathBuf> = None;
    let mut report_paths: Vec<PathBuf> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = Scale::parse(args.get(i).map(String::as_str).unwrap_or(""))
                    .unwrap_or_else(|e| die(&e));
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|a| a.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a number"));
            }
            "--reps" => {
                i += 1;
                reps = args
                    .get(i)
                    .and_then(|a| a.parse().ok())
                    .unwrap_or_else(|| die("--reps needs a number"));
            }
            "--json" => {
                i += 1;
                json_path = Some(PathBuf::from(
                    args.get(i).unwrap_or_else(|| die("--json needs a path")),
                ));
            }
            other if cmd == "report" && !other.starts_with('-') => {
                report_paths.push(PathBuf::from(other));
            }
            other => die(&format!("unknown option {other}")),
        }
        i += 1;
    }
    if json_path.is_some() && !matches!(cmd, "fig4" | "fig5a" | "fig5b" | "all") {
        die("--json only applies to fig4|fig5a|fig5b|all");
    }

    let needs_workloads = matches!(
        cmd,
        "table2" | "fig4" | "fig5a" | "fig5b" | "all" | "verify"
    );
    let workloads = needs_workloads.then(|| {
        eprintln!(
            "building workloads (text {}B, seq {}, graph {}, points {})...",
            scale.text_len, scale.seq_len, scale.graph_n, scale.points_n
        );
        Workloads::build(scale)
    });
    let w = workloads.as_ref();

    let mut recs: Vec<RunRecord> = Vec::new();
    match cmd {
        "table1" => print!("{}", figures::table1()),
        "table2" => print!("{}", figures::table2(w.expect("workloads"))),
        "table3" => print!("{}", figures::table3()),
        "fig3" => print!("{}", figures::fig3()),
        "fig4" => print!(
            "{}",
            figures::fig4(w.expect("workloads"), threads, reps, &mut recs)
        ),
        "fig5a" => print!(
            "{}",
            figures::fig5a(w.expect("workloads"), threads, reps, &mut recs)
        ),
        "fig5b" => print!(
            "{}",
            figures::fig5b(w.expect("workloads"), threads, reps, &mut recs)
        ),
        "fig6" => print!("{}", figures::fig6_report(scale.seq_len, reps)),
        "verify" => verify(w.expect("workloads"), threads),
        "report" => {
            if report_paths.is_empty() {
                die("report needs at least one JSON file path");
            }
            let docs: Vec<(String, rpb_obs::Json)> = report_paths
                .iter()
                .map(|path| {
                    let text = std::fs::read_to_string(path)
                        .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", path.display())));
                    let doc = rpb_obs::Json::parse(&text)
                        .unwrap_or_else(|e| die(&format!("cannot parse {}: {e}", path.display())));
                    (path.display().to_string(), doc)
                })
                .collect();
            let outcome = record::render_report_docs(&docs);
            print!("{}", outcome.rendered);
            for w in &outcome.warnings {
                eprintln!("rpb report: warning: {w}");
            }
            if outcome.rendered_files == 0 {
                die("no renderable report files");
            }
        }
        "all" => {
            let w = w.expect("workloads");
            println!("{}", figures::table1());
            println!("{}", figures::table2(w));
            println!("{}", figures::table3());
            println!("{}", figures::fig3());
            println!("{}", figures::fig4(w, threads, reps, &mut recs));
            println!("{}", figures::fig5a(w, threads, reps, &mut recs));
            println!("{}", figures::fig5b(w, threads, reps, &mut recs));
            println!("{}", figures::fig6_report(scale.seq_len, reps));
        }
        _ => {
            println!(
                "rpb — regenerate the tables and figures of\n\
                 \"When Is Parallelism Fearless and Zero-Cost with Rust?\" (SPAA'24)\n\n\
                 usage: rpb <table1|table2|table3|fig3|fig4|fig5a|fig5b|fig6|all|verify>\n\
                 \x20       [--scale small|medium|large] [--threads N] [--reps N] [--json PATH]\n\
                 \x20      rpb report <file.json>...      # summarize --json reports\n\
                 \x20      rpb gate <record|compare|check> # deterministic perf gate\n\n\
                 --json writes one structured record per timed case (schema\n\
                 \"rpb-bench-v2\"); telemetry fields are all-zero unless built\n\
                 with --features obs. `rpb report` renders the check-overhead\n\
                 and MultiQueue summaries from such files (v1 files remain\n\
                 readable; unknown schemas warn instead of silently skipping).\n\
                 `rpb gate` records and checks committed perf baselines — see\n\
                 `rpb gate` with no arguments and EXPERIMENTS.md."
            );
        }
    }

    if let Some(path) = json_path {
        let env = EnvInfo::collect();
        record::write_json(&path, &recs, scale, &env)
            .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
        eprintln!("wrote {} records to {}", recs.len(), path.display());
    }
}

/// Runs every benchmark once in every mode and validates the results
/// against the sequential baselines — a one-command correctness audit of
/// the whole suite at the chosen scale.
fn verify(w: &rpb_bench::Workloads, threads: usize) {
    use rpb_fearless::ExecMode;
    use rpb_suite::*;
    let modes = [ExecMode::Unsafe, ExecMode::Checked, ExecMode::Sync];
    let mut ok = 0usize;
    let mut check = |name: &str, pass: bool| {
        println!("{:<24} {}", name, if pass { "ok" } else { "FAIL" });
        if pass {
            ok += 1;
        } else {
            std::process::exit(1);
        }
    };
    let seq_bw = bw::run_seq(&w.bwt);
    for m in modes {
        check(&format!("bw/{m}"), bw::run_par(&w.bwt, m) == seq_bw);
    }
    let seq_lrs = lrs::run_seq(&w.text);
    for m in modes {
        let r = lrs::run_par(&w.text, m);
        check(
            &format!("lrs/{m}"),
            r.len == seq_lrs.len && lrs::verify(&w.text, &r).is_ok(),
        );
    }
    let seq_sa = sa::run_seq(&w.text);
    for m in modes {
        check(&format!("sa/{m}"), sa::run_par(&w.text, m) == seq_sa);
    }
    let r = dr::run_par(&w.points, ExecMode::Checked);
    check("dr/checked", dr::verify(&w.points, &r).is_ok());
    for (label, g) in [("link", &w.link), ("road", &w.road)] {
        let seq = mis::run_seq(g);
        check(
            &format!("mis-{label}"),
            mis::run_par(g, ExecMode::Checked) == seq,
        );
        check(
            &format!("mis_spec-{label}"),
            mis_spec::run_par(g, ExecMode::Checked) == seq,
        );
    }
    for (label, (n, es)) in [("rmat", &w.rmat_edges), ("road", &w.road_edges)] {
        check(
            &format!("mm-{label}"),
            mm::run_par(*n, es, ExecMode::Checked) == mm::run_seq(*n, es),
        );
        let f = sf::run_par(*n, es, ExecMode::Checked);
        check(&format!("sf-{label}"), sf::verify(*n, es, &f).is_ok());
    }
    for (label, (n, es)) in [("rmat", &w.rmat_wedges), ("road", &w.road_wedges)] {
        let seq = msf::run_seq(*n, es);
        check(
            &format!("msf-{label}"),
            msf::run_par(*n, es, ExecMode::Checked) == seq,
        );
        check(
            &format!("msf_kruskal-{label}"),
            msf_kruskal::run_par(*n, es, ExecMode::Checked) == seq,
        );
    }
    let mut want = w.seq.clone();
    sort::run_seq(&mut want);
    for m in modes {
        let mut got = w.seq.clone();
        sort::run_par(&mut got, m);
        check(&format!("sort/{m}"), got == want);
    }
    let seq_dedup = dedup::run_seq(&w.seq);
    for m in modes {
        check(
            &format!("dedup/{m}"),
            dedup::run_par(&w.seq, m) == seq_dedup,
        );
    }
    let range = w.seq.len() as u64;
    let seq_hist = hist::run_seq(&w.seq, 256, range);
    for m in modes {
        check(
            &format!("hist/{m}"),
            hist::run_par(&w.seq, 256, range, m) == seq_hist,
        );
    }
    let bits = 64 - (w.seq.len() as u64).leading_zeros();
    let mut iwant = w.seq.clone();
    isort::run_seq(&mut iwant, bits);
    for m in modes {
        let mut got = w.seq.clone();
        isort::run_par(&mut got, bits, m);
        check(&format!("isort/{m}"), got == iwant);
    }
    for (label, g) in [("link", &w.link), ("road", &w.road)] {
        let seq = bfs::run_seq(g, 0);
        check(
            &format!("bfs-{label}/mq"),
            bfs::run_par(g, 0, threads, ExecMode::Sync) == seq,
        );
        check(
            &format!("bfs-{label}/frontier"),
            bfs_frontier::run_par(g, 0) == seq,
        );
    }
    for (label, g) in [("link", &w.wlink), ("road", &w.wroad)] {
        let seq = sssp::run_seq(g, 0);
        check(
            &format!("sssp-{label}/mq"),
            sssp::run_par(g, 0, threads, ExecMode::Sync) == seq,
        );
        let delta = sssp_delta::default_delta(g);
        check(
            &format!("sssp-{label}/delta"),
            sssp_delta::run_par(g, 0, delta) == seq,
        );
    }
    println!("\nall {ok} checks passed");
}

fn die(msg: &str) -> ! {
    eprintln!("rpb: {msg}");
    std::process::exit(2);
}
