//! Workload scales — moved to [`rpb_suite::scale`] so the resident
//! service (`rpb-serve`) can size its preloaded datasets without
//! depending on the bench harness; re-exported here unchanged.

pub use rpb_suite::scale::Scale;
