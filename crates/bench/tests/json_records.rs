//! End-to-end test of the `--json` record pipeline: run a tiny Fig. 5(a)
//! measurement, write the report file, parse it back with the rpb-obs JSON
//! parser, and validate the schema the README documents.

use rpb_bench::record::{self, EnvInfo};
use rpb_bench::{figures, RunRecord, Scale, Workloads};
use rpb_obs::Json;

/// The metrics registry is global and `figures` resets it around every
/// timed case, so the tests in this binary must not overlap.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn json_report_round_trips_through_a_file() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let tiny = Scale {
        text_len: 3000,
        seq_len: 10_000,
        graph_n: 500,
        points_n: 200,
    };
    let w = Workloads::build(tiny);
    let mut recs: Vec<RunRecord> = Vec::new();
    let rendered = figures::fig5a(&w, 2, 1, &mut recs);
    assert!(rendered.contains("bw"));
    assert_eq!(
        recs.len(),
        9,
        "3 runs (unsafe, checked-fresh, checked-amortized) x 3 Fig. 5(a) pairs"
    );

    let env = EnvInfo::collect();
    let dir = std::env::temp_dir();
    let path = dir.join(format!("rpb-json-records-{}.json", std::process::id()));
    record::write_json(&path, &recs, tiny, &env).expect("write report");
    let text = std::fs::read_to_string(&path).expect("read report back");
    std::fs::remove_file(&path).ok();

    let doc = Json::parse(&text).expect("parse report");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(record::SCHEMA)
    );
    let records = doc
        .get("records")
        .and_then(Json::as_arr)
        .expect("records array");
    assert_eq!(records.len(), 9);

    for r in records {
        // Every documented field is present and well-typed.
        for key in ["figure", "name", "kind", "mode"] {
            assert!(
                r.get(key).and_then(Json::as_str).is_some(),
                "str field {key}"
            );
        }
        for key in ["threads", "reps", "best_ns", "mean_ns"] {
            assert!(
                r.get(key).and_then(Json::as_u64).is_some(),
                "num field {key}"
            );
        }
        assert_eq!(r.get("figure").unwrap().as_str(), Some("fig5a"));
        assert!(r.get("best_ns").unwrap().as_u64().unwrap() > 0);

        let scale = r.get("scale").expect("scale object");
        assert_eq!(scale.get("seq_len").and_then(Json::as_u64), Some(10_000));

        let env = r.get("env").expect("env object");
        assert!(env.get("git_sha").and_then(Json::as_str).is_some());
        assert!(env.get("cpu_count").and_then(Json::as_u64).unwrap_or(0) >= 1);
        assert!(env.get("rustc").and_then(Json::as_str).is_some());

        let telemetry = r.get("telemetry").expect("telemetry object");
        assert!(telemetry.get("counters").is_some());
        assert!(telemetry.get("histos").is_some());

        // The `check` tag round-trips exactly where it was emitted:
        // checked runs are bracketed fresh/amortized, unsafe runs carry
        // no tag (and no key at all — the field is optional).
        let mode = r.get("mode").unwrap().as_str().unwrap();
        let check = r.get("check").and_then(Json::as_str);
        match mode {
            "checked" => assert!(
                check == Some("fresh") || check == Some("amortized"),
                "checked record missing check tag: {check:?}"
            ),
            _ => assert!(check.is_none(), "unsafe record must not carry a check tag"),
        }
    }

    // The runs cycle unsafe / checked-fresh / checked-amortized per pair.
    let modes: Vec<&str> = records
        .iter()
        .map(|r| r.get("mode").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(
        modes,
        [
            "unsafe", "checked", "checked", "unsafe", "checked", "checked", "unsafe", "checked",
            "checked"
        ]
    );
    let checks: Vec<Option<&str>> = records
        .iter()
        .map(|r| r.get("check").and_then(Json::as_str))
        .collect();
    assert_eq!(
        checks,
        [
            None,
            Some("fresh"),
            Some("amortized"),
            None,
            Some("fresh"),
            Some("amortized"),
            None,
            Some("fresh"),
            Some("amortized"),
        ]
    );

    // And the summary renderer accepts the parsed document and attributes
    // the fresh/amortized brackets separately.
    let summary = record::render_report(&doc).expect("render summary");
    assert!(summary.contains("Check-overhead attribution"));
    assert!(summary.contains("fresh"));
    assert!(summary.contains("amortized"));
    assert!(summary.contains("Amortized-check speedup"));
}

#[cfg(feature = "obs")]
#[test]
fn telemetry_is_populated_when_obs_is_on() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let tiny = Scale {
        text_len: 3000,
        seq_len: 10_000,
        graph_n: 500,
        points_n: 200,
    };
    let w = Workloads::build(tiny);
    let mut recs: Vec<RunRecord> = Vec::new();
    figures::fig5a(&w, 2, 1, &mut recs);

    // The checked-mode runs must carry SngInd check telemetry: bw/lrs/sa
    // all exercise par_ind_iter_mut, bracketed fresh + amortized per pair.
    let checked: Vec<&RunRecord> = recs.iter().filter(|r| r.mode == "checked").collect();
    assert_eq!(checked.len(), 6);
    for r in &checked {
        let checks =
            r.telemetry.counter("sngind_checks_mark") + r.telemetry.counter("sngind_checks_sort");
        assert!(checks > 0, "{}: no SngInd checks recorded", r.name);
        let h = r
            .telemetry
            .histo("sngind_check_ns")
            .expect("check histogram");
        assert!(h.count > 0, "{}: empty check histogram", r.name);
        assert!(
            r.telemetry.counter("sngind_offsets_validated") > 0,
            "{}",
            r.name
        );
    }
    // Fresh runs disable the pool: every acquisition allocates (misses,
    // never hits). Amortized runs reuse pooled epoch tables (hits).
    for r in &checked {
        match r.check {
            Some("fresh") => {
                assert_eq!(
                    r.telemetry.counter("sngind_pool_hits"),
                    0,
                    "{}: fresh bracket must not hit the pool",
                    r.name
                );
                assert!(
                    r.telemetry.counter("sngind_pool_misses") > 0,
                    "{}: fresh bracket must allocate per validation",
                    r.name
                );
            }
            Some("amortized") => assert!(
                r.telemetry.counter("sngind_pool_hits") > 0,
                "{}: amortized bracket must reuse pooled tables",
                r.name
            ),
            other => panic!("{}: unexpected check tag {other:?}", r.name),
        }
    }
    // Unsafe-mode runs skip the checks entirely.
    for r in recs.iter().filter(|r| r.mode == "unsafe") {
        assert_eq!(
            r.telemetry.counter("sngind_checks_mark") + r.telemetry.counter("sngind_checks_sort"),
            0,
            "{}: unsafe mode must not validate",
            r.name
        );
    }
    // The instrumented Rayon pool reported its workers.
    assert!(recs
        .iter()
        .any(|r| r.telemetry.counter("pool_threads_started") > 0));
}
