//! The perf gate's acceptance properties, end to end:
//!
//! 1. `record` twice on the same machine produces **byte-identical**
//!    counter sections (the determinism claim behind hard gating), and
//! 2. `rpb gate check` against a tampered baseline exits non-zero and
//!    prints a per-metric diff table (driven through the real binary).
//!
//! Both need telemetry recording, so they are `--features obs` only;
//! without the feature this file instead checks that the gate CLI refuses
//! to record a vacuous all-zero baseline.

#![cfg(not(miri))]

use std::process::Command;

#[cfg(feature = "obs")]
mod with_obs {
    use super::Command;
    use rpb_bench::gate::{self, EXIT_HARD};
    use rpb_bench::{Scale, Workloads};

    /// 3 SngInd-heavy pairs x 2 validation-cost brackets.
    const FIG5A_BRACKETS: usize = 6;
    /// bfs-link, bfs-road, sssp-link, sssp-road.
    const MQ_PAIRS: usize = 4;

    /// The metrics registry and the mark-table pool are process-global and
    /// `gate::record` resets both around every matrix cell, so the tests
    /// in this binary must not overlap.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn record_twice_is_byte_identical_on_counters() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let w = Workloads::build(Scale::gate());
        let a = gate::record(&w, 1, 1);
        let b = gate::record(&w, 1, 1);

        assert_eq!(a.cases.len(), b.cases.len());
        let mut nonzero_cells = 0usize;
        for (ca, cb) in a.cases.iter().zip(&b.cases) {
            assert_eq!(ca.key(), cb.key(), "matrix order is part of the contract");
            // The acceptance criterion verbatim: the counter *sections* of
            // the two baselines are byte-identical.
            assert_eq!(
                ca.counters_json().to_string(),
                cb.counters_json().to_string(),
                "counter section drifted between two records of {}",
                ca.key()
            );
            if ca.counters.iter().any(|&(_, v)| v > 0) {
                nonzero_cells += 1;
            }
        }
        // Determinism of all-zero sections would be vacuous: the checked
        // brackets and the MultiQueue pairs must actually record events.
        assert!(
            nonzero_cells >= FIG5A_BRACKETS + MQ_PAIRS,
            "only {nonzero_cells} matrix cells recorded any events"
        );

        // And the baseline round-trips through its JSON file form.
        let text = format!("{}\n", a.to_json());
        let parsed =
            gate::Baseline::parse(&rpb_obs::Json::parse(&text).expect("parse")).expect("valid");
        assert!(a.semantic_eq(&parsed));
    }

    #[test]
    fn kernel_cells_hard_counters_match_across_dispatch_pins() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let w = Workloads::build(Scale::gate());
        let b = gate::record(&w, 1, 1);

        // Every kernel appears under both pins, and the pins record
        // *identical* hard counters: the SIMD fast paths must be
        // behaviorally invisible (their own obs counters are deliberately
        // outside the hard set). On non-AVX2 hardware or default-feature
        // builds both pins resolve to the scalar paths, which satisfies
        // the same property trivially.
        for name in gate::KERNEL_PAIRS {
            let cell = |mode: &str| {
                b.cases
                    .iter()
                    .find(|c| c.name == name && c.mode == mode)
                    .unwrap_or_else(|| panic!("{name}/{mode} cell missing"))
            };
            let (scalar, simd) = (cell("scalar"), cell("simd"));
            assert_eq!(
                scalar.counters_json().to_string(),
                simd.counters_json().to_string(),
                "{name}: scalar and simd pins disagree on hard counters"
            );
        }
        // The validation kernels must actually record events, or the
        // equality above is vacuous.
        let validated = |name: &str, counter: &str| {
            b.cases
                .iter()
                .find(|c| c.name == name && c.mode == "scalar")
                .map(|c| c.counter(counter))
                .unwrap_or(0)
        };
        assert!(
            validated("kernel-sngind-validate", "sngind_offsets_validated") > 0,
            "sngind kernel cell recorded no validations"
        );
        assert!(
            validated("kernel-rngind-validate", "rngind_boundaries_validated") > 0,
            "rngind kernel cell recorded no validations"
        );
    }

    #[test]
    fn backend_cells_hard_counters_match_across_backends() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let w = Workloads::build(Scale::gate());
        let b = gate::record(&w, 1, 1);

        // Every MultiQueue pair appears under both scheduling backends,
        // and the cells record *identical* hard counters: at the 1-worker
        // counter pass the scheduling policy is substrate-independent, so
        // any inequality means a backend changed behavior, not just
        // threading.
        for name in gate::BACKEND_PAIRS {
            let cell_name = format!("backend-{name}");
            let cell = |mode: &str| {
                b.cases
                    .iter()
                    .find(|c| c.name == cell_name && c.mode == mode)
                    .unwrap_or_else(|| panic!("{cell_name}/{mode} cell missing"))
            };
            let (rayon, mq) = (cell("rayon"), cell("mq"));
            assert_eq!(
                rayon.counters_json().to_string(),
                mq.counters_json().to_string(),
                "{cell_name}: rayon and mq backends disagree on hard counters"
            );
            // Non-vacuity: the pair actually drove MultiQueue traffic.
            assert!(
                rayon.counter("mq_pushes") > 0,
                "{cell_name} recorded no MultiQueue pushes"
            );
        }
    }

    #[test]
    fn check_against_feature_mismatched_baseline_is_a_schema_mismatch() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let w = Workloads::build(Scale::gate());
        let baseline = gate::record(&w, 1, 1);

        // Simulate a baseline committed from a build with a different
        // feature set: one recorded cell the current build also records is
        // missing, and one cell the current build can't produce is extra.
        let mut mismatched = baseline.clone();
        let dropped = mismatched
            .cases
            .pop()
            .expect("baseline records at least one cell");
        let mut extra = dropped.clone();
        extra.name = "kernel-avx512-only".into();
        mismatched.cases.push(extra);

        let dir = std::env::temp_dir().join(format!("rpb-gate-schema-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("mismatched.json");
        std::fs::write(&path, format!("{}\n", mismatched.to_json())).expect("write baseline");

        let output = Command::new(env!("CARGO_BIN_EXE_rpb"))
            .args(["gate", "check", "--baseline"])
            .arg(&path)
            .args(["--wall", "advisory"])
            .output()
            .expect("spawn rpb gate check");
        std::fs::remove_dir_all(&dir).ok();

        let stdout = String::from_utf8_lossy(&output.stdout);
        let stderr = String::from_utf8_lossy(&output.stderr);
        // Exit 2 (schema mismatch), never 4: a feature-set difference must
        // not read as counter drift.
        assert_eq!(
            output.status.code(),
            Some(gate::EXIT_USAGE),
            "cell-set mismatch must exit {}\nstdout:\n{stdout}\nstderr:\n{stderr}",
            gate::EXIT_USAGE
        );
        assert!(stderr.contains("SCHEMA MISMATCH"), "{stderr}");
        // Both offending cells are named.
        assert!(
            stderr.contains("kernel-avx512-only") && stderr.contains(&dropped.key()),
            "offending cells named\n{stderr}"
        );
        assert!(!stderr.contains("HARD FAIL"), "{stderr}");
    }

    #[test]
    fn check_against_tampered_baseline_hard_fails_through_the_cli() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let w = Workloads::build(Scale::gate());
        // Cheap wall pass (1 thread, 1 rep): `check` mirrors this config.
        let baseline = gate::record(&w, 1, 1);

        // Tamper with the first nonzero hard counter — the forged baseline
        // claims the code performs one more event than it does.
        let mut tampered = baseline.clone();
        let (key, metric) = {
            let (key, slot) = tampered
                .cases
                .iter_mut()
                .find_map(|c| {
                    let key = c.key();
                    c.counters
                        .iter_mut()
                        .find(|(_, v)| *v > 0)
                        .map(|slot| (key, slot))
                })
                .expect("some matrix cell records events");
            slot.1 += 1;
            (key, slot.0.clone())
        };

        let dir = std::env::temp_dir().join(format!("rpb-gate-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let tampered_path = dir.join("tampered.json");
        std::fs::write(&tampered_path, format!("{}\n", tampered.to_json()))
            .expect("write baseline");

        let output = Command::new(env!("CARGO_BIN_EXE_rpb"))
            .args(["gate", "check", "--baseline"])
            .arg(&tampered_path)
            .args(["--wall", "advisory"])
            .output()
            .expect("spawn rpb gate check");
        std::fs::remove_dir_all(&dir).ok();

        let stdout = String::from_utf8_lossy(&output.stdout);
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert_eq!(
            output.status.code(),
            Some(EXIT_HARD),
            "tampered counter must hard-fail\nstdout:\n{stdout}\nstderr:\n{stderr}"
        );
        // The per-metric diff table names the drifted counter and its cell.
        assert!(stdout.contains("Drifted metrics:"), "diff table\n{stdout}");
        assert!(stdout.contains(&metric), "metric {metric} named\n{stdout}");
        assert!(stdout.contains(&key), "cell {key} named\n{stdout}");
        assert!(stderr.contains("HARD FAIL"), "verdict on stderr\n{stderr}");
    }
}

#[cfg(not(feature = "obs"))]
#[test]
fn gate_record_refuses_without_telemetry() {
    // Without `--features obs` every counter is a zero-cost no-op, so a
    // recorded baseline would gate nothing: the CLI must refuse loudly
    // rather than write a vacuous all-zero baseline.
    let output = Command::new(env!("CARGO_BIN_EXE_rpb"))
        .args(["gate", "record", "--out", "/nonexistent/never-written.json"])
        .output()
        .expect("spawn rpb gate record");
    assert_eq!(output.status.code(), Some(rpb_bench::gate::EXIT_USAGE));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--features obs"), "{stderr}");
}
