//! Round-trip property test for the `rpb-baseline-v1` schema: any
//! recordable baseline serializes to JSON text, parses back, and compares
//! semantically equal (provenance carried verbatim, gating fields exact).
//!
//! Pure data-model test — no workloads, no telemetry feature needed.

// Proptest drives hundreds of cases and persists failures to disk — too
// slow for the interpreter; the deterministic unit tests in `gate` cover
// the same code paths under Miri.
#![cfg(not(miri))]

use proptest::prelude::*;
use rpb_bench::gate::{compare, Baseline, GateCase, WallStats, DEFAULT_WALL_TOLERANCE};
use rpb_bench::record::EnvInfo;
use rpb_bench::Scale;
use rpb_obs::Json;

/// Exactly representable in the JSON writer's f64 numbers.
const MAX_EXACT: u64 = 1 << 53;

/// Counter names drawn from the real hard-metric set plus a foreign one,
/// so parsing never depends on the gate's own vocabulary.
fn counter_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("sngind_pool_hits".to_string()),
        Just("sngind_offsets_validated".to_string()),
        Just("mq_pushes".to_string()),
        Just("exec_tasks".to_string()),
        Just("some_future_counter".to_string()),
    ]
}

/// Strings with escape-worthy content: the schema must survive quotes,
/// backslashes, newlines, and non-ASCII in provenance fields.
fn provenance_string() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~\u{e9}\u{4e16}\"\\\\\n\t]{0,24}").unwrap()
}

fn wall_stats() -> impl Strategy<Value = WallStats> {
    (0..MAX_EXACT, 0..MAX_EXACT, 0..MAX_EXACT, 1..1000u64).prop_map(
        |(best_ns, median_ns, mad_ns, reps)| WallStats {
            best_ns,
            median_ns,
            mad_ns,
            reps,
        },
    )
}

fn gate_case() -> impl Strategy<Value = GateCase> {
    (
        "[a-z]{1,8}(-[a-z]{1,4})?",
        prop_oneof![
            Just("unsafe".to_string()),
            Just("checked".to_string()),
            Just("sync".to_string())
        ],
        proptest::option::of(prop_oneof![
            Just("fresh".to_string()),
            Just("amortized".to_string())
        ]),
        proptest::collection::vec((counter_name(), 0..MAX_EXACT), 0..6),
        wall_stats(),
    )
        .prop_map(|(name, mode, check, counters, wall)| GateCase {
            name,
            mode,
            check,
            counters,
            wall,
        })
}

fn baseline() -> impl Strategy<Value = Baseline> {
    (
        (
            1..100_000usize,
            1..100_000usize,
            1..10_000usize,
            1..10_000usize,
        ),
        1..8usize,
        1..64usize,
        1..100usize,
        (provenance_string(), 0..1024usize, provenance_string()),
        proptest::collection::vec(gate_case(), 0..8),
    )
        .prop_map(
            |(
                (text_len, seq_len, graph_n, points_n),
                counter_threads,
                wall_threads,
                wall_reps,
                (git_sha, cpu_count, rustc),
                cases,
            )| {
                // One cell per (name, mode, check) key: `compare` matches
                // cases by key, so duplicate keys are not a valid matrix.
                let mut seen = std::collections::HashSet::new();
                let cases: Vec<GateCase> =
                    cases.into_iter().filter(|c| seen.insert(c.key())).collect();
                Baseline {
                    scale: Scale {
                        text_len,
                        seq_len,
                        graph_n,
                        points_n,
                    },
                    counter_threads,
                    wall_threads,
                    wall_reps,
                    env: EnvInfo {
                        git_sha,
                        cpu_count,
                        rustc,
                    },
                    cases,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// serialize -> parse -> semantic equality, through the actual text
    /// representation a committed `baselines/*.json` file uses.
    #[test]
    fn baseline_round_trips_semantically(b in baseline()) {
        let text = format!("{}\n", b.to_json());
        let doc = Json::parse(&text).expect("baseline text parses");
        let parsed = Baseline::parse(&doc).expect("baseline document parses");
        prop_assert!(b.semantic_eq(&parsed), "round trip changed the baseline");
        // Provenance is carried verbatim even though it never gates.
        prop_assert_eq!(&parsed.env.git_sha, &b.env.git_sha);
        prop_assert_eq!(parsed.env.cpu_count, b.env.cpu_count);
        prop_assert_eq!(&parsed.env.rustc, &b.env.rustc);
    }

    /// A round-tripped baseline gates identically to the original: the
    /// comparison of a parsed copy against its source is always clean.
    #[test]
    fn round_tripped_baseline_compares_clean(b in baseline()) {
        let doc = Json::parse(&b.to_json().to_string()).expect("parses");
        let parsed = Baseline::parse(&doc).expect("valid");
        let cmp = compare(&b, &parsed, DEFAULT_WALL_TOLERANCE);
        prop_assert!(cmp.violations.is_empty(), "{:?}", cmp.violations);
    }
}
