//! Exit-code contract of the `rpb` binary's argument handling.
//!
//! CI scripts branch on these codes (0 success, 1 runtime failure, 2
//! usage error), so the distinction is load-bearing: an unknown
//! subcommand must *not* print the help text and exit 0 — that reads as
//! "the step ran" to every `set -e` shell in the pipeline.

use std::process::{Command, Output};

fn rpb(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rpb"))
        .args(args)
        .output()
        .expect("spawn rpb")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn unknown_subcommand_is_a_usage_error() {
    let out = rpb(&["tabel1"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("unknown command \"tabel1\""),
        "stderr must name the offending command: {}",
        stderr(&out)
    );
}

#[test]
fn help_paths_exit_zero() {
    for args in [&[][..], &["help"][..], &["--help"][..], &["-h"][..]] {
        let out = rpb(args);
        assert_eq!(out.status.code(), Some(0), "args {args:?}");
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("usage: rpb"),
            "args {args:?} must print the usage text"
        );
    }
}

#[test]
fn unknown_option_is_a_usage_error() {
    let out = rpb(&["table1", "--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown option"), "{}", stderr(&out));
}

#[test]
fn serve_and_load_flag_grammar_errors_exit_two() {
    // --artifact is a self-test flag; alone it is a usage error.
    let out = rpb(&["serve", "--artifact", "x.json"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    // The load generator cannot run without a target address.
    let out = rpb(&["load"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("--addr"), "{}", stderr(&out));
    // Both helps exit clean.
    for sub in ["serve", "load"] {
        let out = rpb(&[sub, "--help"]);
        assert_eq!(out.status.code(), Some(0), "{sub} --help");
    }
}

#[test]
fn gate_without_a_subcommand_is_a_usage_error() {
    let out = rpb(&["gate"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
}

#[test]
fn report_on_empty_or_zero_record_files_exits_zero() {
    let dir = std::env::temp_dir().join(format!("rpb_cli_report_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");

    // A 0-byte file is a valid "nothing ran yet" report, not a parse error.
    let empty = dir.join("empty.json");
    std::fs::write(&empty, "").expect("write");
    let out = rpb(&["report", empty.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("no records"), "stdout: {stdout}");

    // So is a well-formed document whose records array is empty.
    let zero = dir.join("zero.json");
    std::fs::write(&zero, r#"{"schema":"rpb-bench-v2","records":[]}"#).expect("write");
    let out = rpb(&["report", zero.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("no records"), "stdout: {stdout}");

    // Garbage still dies loudly — the empty-file carve-out is narrow.
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "not json").expect("write");
    let out = rpb(&["report", bad.to_str().unwrap()]);
    assert_ne!(out.status.code(), Some(0), "stderr: {}", stderr(&out));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn channel_flag_grammar_is_enforced() {
    // A comma list is only meaningful as a verify-matrix axis.
    let out = rpb(&["table1", "--channel", "mpsc,crossbeam"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("--channel"), "{}", stderr(&out));
    // An unknown channel name is rejected wherever it appears.
    let out = rpb(&["verify", "--streaming", "--channel", "bogus"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
}
