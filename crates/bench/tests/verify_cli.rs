//! `rpb verify` exit-code contract, driven through the real binary:
//!
//! 0 on a clean matrix, 1 on any divergence (proved via the `--inject`
//! corruption hook), 2 on usage errors. CI blocks on exactly these codes,
//! so they are regression-tested here rather than assumed.

#![cfg(not(miri))]

use std::process::Command;

fn rpb_verify(extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_rpb"))
        .args(["verify", "--scale", "gate", "--workers", "1,2"])
        .args(extra)
        .output()
        .expect("spawn rpb verify")
}

#[test]
fn clean_subset_exits_zero_with_matrix() {
    let out = rpb_verify(&["--suite", "hist,sort,bfs"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean verify must exit 0\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stdout.contains("9 cells (9 ok, 0 FAIL)"), "{stdout}");
    assert!(!stdout.contains("FAIL "), "{stdout}");
}

#[test]
fn injected_divergence_exits_one_and_names_the_bench() {
    let out = rpb_verify(&["--suite", "hist,sort", "--inject", "hist"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(rpb_bench::verifier::EXIT_DIVERGENCE),
        "injected corruption must exit {}\nstdout:\n{stdout}",
        rpb_bench::verifier::EXIT_DIVERGENCE
    );
    assert!(
        stdout.contains("FAIL hist/"),
        "failure detail line\n{stdout}"
    );
    // The uncorrupted benchmark still passes in the same sweep.
    assert!(!stdout.contains("FAIL sort/"), "{stdout}");
}

#[test]
fn unknown_suite_name_is_a_usage_error() {
    let out = rpb_verify(&["--suite", "quicksort"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("quicksort"), "{stderr}");
    assert!(stderr.contains("bfs"), "valid names listed\n{stderr}");
}

#[test]
fn unknown_mode_is_a_usage_error_listing_valid_modes() {
    let out = rpb_verify(&["--mode", "atomic"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("atomic"), "{stderr}");
    assert!(
        stderr.contains("unsafe") && stderr.contains("checked") && stderr.contains("sync"),
        "valid modes listed\n{stderr}"
    );
}

// Only meaningful where the simd pin can actually diverge from scalar: on
// builds without the feature (or off x86_64) requesting the simd impl is
// now a usage error, tested below.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[test]
fn kernel_impl_axis_is_clean_across_the_suite() {
    // The scalar-vs-simd differential axis: every benchmark/mode pair
    // runs once per pinned kernel implementation. In default builds both
    // pins resolve to the scalar paths; in --features simd builds on an
    // AVX2 machine the second pass takes the vectorized kernels, and any
    // scalar/simd divergence fails the cell.
    let out = rpb_verify(&["--kernel-impl", "scalar,simd"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(0),
        "kernel-impl sweep must verify\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stdout.contains("42 cells (42 ok, 0 FAIL)"), "{stdout}");
    assert!(stdout.contains("kernel impls {scalar,simd}"), "{stdout}");
}

#[test]
fn unknown_kernel_impl_is_a_usage_error() {
    let out = rpb_verify(&["--kernel-impl", "avx512"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("avx512"), "{stderr}");
    assert!(
        stderr.contains("scalar") && stderr.contains("simd"),
        "valid impls listed\n{stderr}"
    );
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
#[test]
fn simd_impl_on_a_scalar_build_is_a_usage_error_not_a_silent_pass() {
    // Without --features simd both "pins" would run the identical scalar
    // path and the differential would vacuously pass — the verifier must
    // refuse instead of pretending it compared anything.
    let out = rpb_verify(&["--suite", "hist", "--kernel-impl", "scalar,simd"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "vacuous simd differential must be a usage error\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stderr.contains("--features simd"), "{stderr}");
    assert!(!stdout.contains("0 FAIL"), "no matrix may run\n{stdout}");
}

#[test]
fn backend_axis_is_clean_and_reported() {
    let out = rpb_verify(&["--suite", "hist,sort,bfs", "--backend", "rayon,mq"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(0),
        "backend sweep must verify\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stdout.contains("9 cells (9 ok, 0 FAIL)"), "{stdout}");
    assert!(stdout.contains("backends {rayon,mq}"), "{stdout}");
}

#[test]
fn unknown_backend_is_a_usage_error_listing_valid_backends() {
    let out = rpb_verify(&["--backend", "gpu"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("gpu"), "{stderr}");
    assert!(
        stderr.contains("rayon") && stderr.contains("mq"),
        "valid backends listed\n{stderr}"
    );
}

#[test]
fn zero_workers_is_a_typed_usage_error() {
    let out = rpb_verify(&["--workers", "0"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("invalid worker count 0"), "{stderr}");
    assert!(stderr.contains("1..=4096"), "valid range listed\n{stderr}");
}

#[test]
fn out_of_range_workers_die_in_deterministic_order() {
    let out = rpb_verify(&["--workers", "9000,0,5000"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    // Offenders are sorted and deduped, so the message is stable no
    // matter how the flag was written.
    assert!(
        stderr.contains("invalid worker counts 0, 5000, 9000"),
        "{stderr}"
    );
    assert!(stderr.contains("1..=4096"), "{stderr}");
}

#[test]
fn full_matrix_at_gate_scale_is_clean() {
    let out = rpb_verify(&[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(0),
        "full suite must verify\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    // 14 benchmarks x 3 modes.
    assert!(stdout.contains("42 cells (42 ok, 0 FAIL)"), "{stdout}");
}
