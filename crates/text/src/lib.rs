//! # rpb-text
//!
//! Text-processing substrate for the `sa`, `lrs`, and `bw` benchmarks:
//!
//! * [`mod@suffix_array`] — parallel prefix-doubling suffix array construction
//!   (the rank-scatter step is the paper's flagship `SngInd` use),
//! * [`mod@lcp`] — longest-common-prefix arrays via chunked Φ-Kasai,
//! * [`mod@bwt`] — Burrows–Wheeler encode (for building test inputs) and the
//!   parallel decode pipeline (LF mapping + list ranking),
//! * [`mod@gen`] — a deterministic "wiki-like" corpus generator substituting
//!   for the paper's Wikipedia input: Zipf-weighted lexicon with planted
//!   long repeats so `lrs` has structure to find.

pub mod bwt;
pub mod gen;
pub mod lcp;
pub mod suffix_array;

pub use bwt::{bwt_decode, bwt_encode, lf_mapping, BwtError};
pub use gen::wiki_like_text;
pub use lcp::{lcp_from_sa, plcp};
pub use suffix_array::{suffix_array, suffix_array_naive, suffix_array_seq};
