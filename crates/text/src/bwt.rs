//! Burrows–Wheeler transform: encode (input preparation) and the parallel
//! decode pipeline of the `bw` benchmark.
//!
//! Decoding follows PBBS: build the LF mapping with a blocked stable
//! counting pass (per-block histograms + column-major scan — the `Block`
//! and `SngInd` phases of Table 1), then recover the text order by
//! *parallel list ranking* over the LF chain (the `D&C`/irregular-read
//! phase), and finally emit the text with a `Stride` gather.

use std::fmt;

use rayon::prelude::*;

use rpb_fearless::ExecMode;
use rpb_parlay::list_rank::{list_order, NIL};
use rpb_parlay::scan::scan_inplace_exclusive;

use crate::suffix_array::suffix_array;

/// Sentinel byte appended by [`bwt_encode`]; must not occur in the input.
pub const SENTINEL: u8 = 0;

/// Why a byte string cannot be decoded as a BWT.
///
/// Both decoders ([`bwt_decode`] and [`bwt_decode_seq`]) reject malformed
/// input with this error instead of panicking, so callers feeding
/// untrusted or corrupted transforms get a diagnosable failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BwtError {
    /// The sentinel byte ([`SENTINEL`]) does not occur in the input, so
    /// there is no row to anchor the LF walk.
    MissingSentinel,
    /// Following the LF mapping from the sentinel row revisits a row after
    /// covering only `covered` of `rows` rows — the chain is not a single
    /// cycle, so the input is not the BWT of any text.
    BrokenLfChain { covered: usize, rows: usize },
}

impl fmt::Display for BwtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BwtError::MissingSentinel => {
                write!(f, "the sentinel byte is missing from the BWT")
            }
            BwtError::BrokenLfChain { covered, rows } => write!(
                f,
                "malformed LF chain: covers {covered} of {rows} rows — not the BWT of any text"
            ),
        }
    }
}

impl std::error::Error for BwtError {}

/// Encodes `text` (sentinel-free) into its BWT, including the sentinel.
///
/// # Panics
/// Panics if `text` contains byte 0.
pub fn bwt_encode(text: &[u8], mode: ExecMode) -> Vec<u8> {
    assert!(
        !text.contains(&SENTINEL),
        "bwt_encode input must not contain the 0 sentinel byte"
    );
    let mut s = Vec::with_capacity(text.len() + 1);
    s.extend_from_slice(text);
    s.push(SENTINEL);
    let sa = suffix_array(&s, mode);
    let m = s.len();
    sa.par_iter()
        .map(|&i| {
            let i = i as usize;
            if i == 0 {
                s[m - 1]
            } else {
                s[i - 1]
            }
        })
        .collect()
}

/// Computes the LF mapping of a BWT string: `lf[i]` is the row of the
/// rotation obtained by prepending `bwt[i]`, i.e.
/// `C[bwt[i]] + rank(bwt[i], i)`.
///
/// Implemented as one blocked stable-counting pass: per-block byte
/// histograms (`Block`), a column-major exclusive scan (sequential over
/// 256 × blocks counters), then a per-block walk emitting each row's slot
/// (`Stride` write to `lf`).
pub fn lf_mapping(bwt: &[u8]) -> Vec<usize> {
    let m = bwt.len();
    if m == 0 {
        return Vec::new();
    }
    let nblocks = rayon::current_num_threads().max(1) * 4;
    let block = m.div_ceil(nblocks).max(1);
    let nblocks = m.div_ceil(block);
    let mut counts: Vec<usize> = bwt
        .par_chunks(block)
        .flat_map_iter(|chunk| {
            let mut hist = vec![0usize; 256];
            for &c in chunk {
                hist[c as usize] += 1;
            }
            hist.into_iter()
        })
        .collect();
    // Column-major scan: offset for (char c, block b) = #chars < c overall
    // + #occurrences of c in earlier blocks.
    let mut transposed = vec![0usize; nblocks * 256];
    for b in 0..nblocks {
        for c in 0..256 {
            transposed[c * nblocks + b] = counts[b * 256 + c];
        }
    }
    scan_inplace_exclusive(&mut transposed, 0, |a, b| a + b);
    for b in 0..nblocks {
        for c in 0..256 {
            counts[b * 256 + c] = transposed[c * nblocks + b];
        }
    }
    let mut lf = vec![0usize; m];
    lf.par_chunks_mut(block)
        .zip(bwt.par_chunks(block))
        .enumerate()
        .for_each(|(b, (lf_chunk, chunk))| {
            let mut offs = counts[b * 256..(b + 1) * 256].to_vec();
            for (slot, &c) in lf_chunk.iter_mut().zip(chunk) {
                *slot = offs[c as usize];
                offs[c as usize] += 1;
            }
        });
    lf
}

/// Decodes a BWT string (must contain the sentinel exactly once) back to
/// the original text, in parallel, returning the text without sentinel.
///
/// # Errors
/// Returns [`BwtError::MissingSentinel`] when no sentinel byte is present
/// and [`BwtError::BrokenLfChain`] when the LF chain does not form a
/// single cycle over all rows (the input is not the BWT of any text).
pub fn bwt_decode(bwt: &[u8]) -> Result<Vec<u8>, BwtError> {
    let m = bwt.len();
    if m <= 1 {
        if m == 1 && bwt[0] != SENTINEL {
            return Err(BwtError::MissingSentinel);
        }
        return Ok(Vec::new());
    }
    let lf = lf_mapping(bwt);
    let p0 = bwt
        .iter()
        .position(|&c| c == SENTINEL)
        .ok_or(BwtError::MissingSentinel)?;
    // Break the LF cycle at the row that maps back to the start. The LF
    // mapping is a permutation by construction, so a back edge always
    // exists; a defensive error beats a panic if that ever changes.
    let mut next = lf;
    let back = next
        .par_iter()
        .position_any(|&t| t == p0)
        .ok_or(BwtError::BrokenLfChain {
            covered: 0,
            rows: m,
        })?;
    next[back] = NIL;
    let order = list_order(&next, p0);
    if order.len() != m {
        return Err(BwtError::BrokenLfChain {
            covered: order.len(),
            rows: m,
        });
    }
    // T[m-1-k] = bwt[order[k]] — emit forward with a Stride write.
    let mut out: Vec<u8> = (0..m - 1)
        .into_par_iter()
        .map(|k| bwt[order[m - 1 - k]])
        .collect();
    debug_assert_eq!(bwt[order[0]], SENTINEL);
    out.truncate(m - 1);
    Ok(out)
}

/// Sequential decode baseline (direct LF walk).
///
/// # Errors
/// Same contract as [`bwt_decode`]: [`BwtError::MissingSentinel`] without
/// a sentinel byte, [`BwtError::BrokenLfChain`] when the walk revisits a
/// row before covering every row.
pub fn bwt_decode_seq(bwt: &[u8]) -> Result<Vec<u8>, BwtError> {
    let m = bwt.len();
    if m <= 1 {
        if m == 1 && bwt[0] != SENTINEL {
            return Err(BwtError::MissingSentinel);
        }
        return Ok(Vec::new());
    }
    // Sequential LF mapping.
    let mut counts = [0usize; 256];
    for &c in bwt {
        counts[c as usize] += 1;
    }
    let mut c_cum = [0usize; 256];
    let mut acc = 0;
    for c in 0..256 {
        c_cum[c] = acc;
        acc += counts[c];
    }
    let mut occ = [0usize; 256];
    let mut lf = vec![0usize; m];
    for (i, &c) in bwt.iter().enumerate() {
        lf[i] = c_cum[c as usize] + occ[c as usize];
        occ[c as usize] += 1;
    }
    let mut t = bwt
        .iter()
        .position(|&c| c == SENTINEL)
        .ok_or(BwtError::MissingSentinel)?;
    let mut out = vec![0u8; m];
    let mut seen = vec![false; m];
    for k in (0..m).rev() {
        if seen[t] {
            // The walk closed a cycle early: rows m-1-k..m were emitted,
            // the rest are unreachable from the sentinel row.
            return Err(BwtError::BrokenLfChain {
                covered: m - 1 - k,
                rows: m,
            });
        }
        seen[t] = true;
        out[k] = bwt[t];
        t = lf[t];
    }
    out.truncate(m - 1);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_banana() {
        let t = b"banana".to_vec();
        let bwt = bwt_encode(&t, ExecMode::Checked);
        assert_eq!(bwt_decode(&bwt).expect("decode"), t);
        assert_eq!(bwt_decode_seq(&bwt).expect("decode"), t);
    }

    #[test]
    fn known_bwt_of_banana() {
        // With a 0 sentinel, BWT("banana") = "annb\0aa".
        let bwt = bwt_encode(b"banana", ExecMode::Unsafe);
        assert_eq!(bwt, b"annb\0aa".to_vec());
    }

    #[test]
    fn round_trip_wiki_like() {
        let t = crate::gen::wiki_like_text(80_000, 4);
        let bwt = bwt_encode(&t, ExecMode::Unsafe);
        assert_eq!(bwt_decode(&bwt).expect("decode"), t);
    }

    #[test]
    fn parallel_and_seq_decode_agree() {
        let t = crate::gen::wiki_like_text(40_000, 8);
        let bwt = bwt_encode(&t, ExecMode::Unsafe);
        assert_eq!(
            bwt_decode(&bwt).expect("par decode"),
            bwt_decode_seq(&bwt).expect("seq decode")
        );
    }

    #[test]
    fn lf_mapping_is_a_permutation() {
        let t = crate::gen::wiki_like_text(10_000, 2);
        let bwt = bwt_encode(&t, ExecMode::Unsafe);
        let lf = lf_mapping(&bwt);
        let mut seen = vec![false; lf.len()];
        for &x in &lf {
            assert!(!seen[x], "LF not a permutation");
            seen[x] = true;
        }
    }

    #[test]
    fn lf_matches_sequential_definition() {
        let bwt = bwt_encode(b"abracadabra", ExecMode::Checked);
        let lf = lf_mapping(&bwt);
        // Sequential definition.
        let mut counts = [0usize; 256];
        for &c in &bwt {
            counts[c as usize] += 1;
        }
        let mut cum = [0usize; 256];
        let mut acc = 0;
        for c in 0..256 {
            cum[c] = acc;
            acc += counts[c];
        }
        let mut occ = [0usize; 256];
        for (i, &c) in bwt.iter().enumerate() {
            assert_eq!(lf[i], cum[c as usize] + occ[c as usize], "row {i}");
            occ[c as usize] += 1;
        }
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn encode_rejects_sentinel_in_input() {
        bwt_encode(&[1, 2, 0, 3], ExecMode::Checked);
    }

    #[test]
    fn empty_text() {
        let bwt = bwt_encode(b"", ExecMode::Checked);
        assert_eq!(bwt, vec![SENTINEL]);
        assert!(bwt_decode(&bwt).expect("decode").is_empty());
        assert!(bwt_decode_seq(&bwt).expect("decode").is_empty());
    }

    #[test]
    fn missing_sentinel_is_a_typed_error() {
        let mut bwt = bwt_encode(b"banana", ExecMode::Checked);
        bwt.retain(|&c| c != SENTINEL);
        assert_eq!(bwt_decode(&bwt), Err(BwtError::MissingSentinel));
        assert_eq!(bwt_decode_seq(&bwt), Err(BwtError::MissingSentinel));
        assert_eq!(bwt_decode(&[b'x']), Err(BwtError::MissingSentinel));
        assert_eq!(bwt_decode_seq(&[b'x']), Err(BwtError::MissingSentinel));
    }

    #[test]
    fn broken_lf_chain_is_a_typed_error() {
        // One sentinel, but the LF chain closes a short cycle: "aa\0a"
        // covers only 3 of its 4 rows starting from the sentinel row.
        let corrupt = [b'a', b'a', SENTINEL, b'a'];
        assert_eq!(
            bwt_decode(&corrupt),
            Err(BwtError::BrokenLfChain {
                covered: 3,
                rows: 4
            })
        );
        assert_eq!(
            bwt_decode_seq(&corrupt),
            Err(BwtError::BrokenLfChain {
                covered: 3,
                rows: 4
            })
        );
    }

    #[test]
    fn corrupted_real_bwt_is_rejected_not_panicked() {
        // Corrupt single bytes of a genuine transform: every outcome must
        // be a typed error or a clean (possibly wrong) decode — no panic.
        let bwt = bwt_encode(&crate::gen::wiki_like_text(2_000, 3), ExecMode::Checked);
        for pos in [0, bwt.len() / 3, bwt.len() - 1] {
            let mut bad = bwt.clone();
            bad[pos] = if bad[pos] == b'q' { b'r' } else { b'q' };
            if !bad.contains(&SENTINEL) {
                assert_eq!(bwt_decode(&bad), Err(BwtError::MissingSentinel));
                assert_eq!(bwt_decode_seq(&bad), Err(BwtError::MissingSentinel));
            } else {
                assert_eq!(bwt_decode(&bad).is_ok(), bwt_decode_seq(&bad).is_ok());
            }
        }
    }

    #[test]
    fn bwt_error_messages_name_the_failure() {
        assert!(BwtError::MissingSentinel.to_string().contains("sentinel"));
        let chain = BwtError::BrokenLfChain {
            covered: 3,
            rows: 7,
        };
        let msg = chain.to_string();
        assert!(msg.contains("3 of 7"), "{msg}");
    }
}
