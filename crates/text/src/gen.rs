//! Deterministic "wiki-like" corpus generator.
//!
//! Substitutes for the paper's Wikipedia (`wiki`) input: natural-language
//! statistics matter for `sa`/`lrs`/`bw` because suffix sorting and LCP
//! depths depend on repeated substructure. The generator draws words
//! Zipf-style from a synthetic lexicon and periodically re-emits earlier
//! passages, planting the long repeats that make `lrs` meaningful.

use rpb_parlay::random::SeqRng;

/// Generates roughly `target_len` bytes of lowercase text with spaces.
///
/// Properties:
/// * deterministic in `seed`,
/// * Zipf-weighted word frequencies (like natural language),
/// * ~5% of output re-emits an earlier passage verbatim (long repeats),
/// * bytes are in `b'a'..=b'z'` and `b' '` — never the 0 sentinel.
pub fn wiki_like_text(target_len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SeqRng::new(seed);
    // Synthetic lexicon: 4000 words, lengths 2..=12.
    let lexicon: Vec<Vec<u8>> = (0..4000)
        .map(|_| {
            let len = 2 + (rng.next_bounded(11)) as usize;
            (0..len)
                .map(|_| b'a' + rng.next_bounded(26) as u8)
                .collect()
        })
        .collect();
    let mut out: Vec<u8> = Vec::with_capacity(target_len + 64);
    while out.len() < target_len {
        if out.len() > 2048 && rng.next_bounded(20) == 0 {
            // Plant a repeat: copy an earlier passage of 256..=2048 bytes.
            let len = 256 + rng.next_bounded(1793) as usize;
            let start = rng.next_bounded((out.len() - len.min(out.len() - 1)) as u64) as usize;
            let end = (start + len).min(out.len());
            let passage = out[start..end].to_vec();
            out.extend_from_slice(&passage);
        } else {
            // Zipf word pick: rank ~ u^(1/(1-theta)) over the lexicon.
            let u = (rng.next_f64()).max(1e-12);
            let rank = ((lexicon.len() as f64) * u.powf(2.0)) as usize;
            out.extend_from_slice(&lexicon[rank.min(lexicon.len() - 1)]);
            out.push(b' ');
        }
    }
    out.truncate(target_len);
    // Guard: the truncation cannot introduce a 0 byte, but assert the
    // invariant the BWT encoder relies on.
    debug_assert!(!out.contains(&0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(wiki_like_text(10_000, 1), wiki_like_text(10_000, 1));
        assert_ne!(wiki_like_text(10_000, 1), wiki_like_text(10_000, 2));
    }

    #[test]
    fn exact_length_and_alphabet() {
        let t = wiki_like_text(5000, 3);
        assert_eq!(t.len(), 5000);
        assert!(t.iter().all(|&c| c == b' ' || c.is_ascii_lowercase()));
    }

    #[test]
    fn has_long_repeats() {
        // The planted passages guarantee a repeated substring of at least
        // a few hundred bytes in a 200 KB sample.
        let t = wiki_like_text(200_000, 7);
        let sa = crate::suffix_array::suffix_array(&t, rpb_fearless::ExecMode::Unsafe);
        let lcp = crate::lcp::lcp_from_sa(&t, &sa);
        let max_lcp = lcp.iter().copied().max().unwrap_or(0);
        assert!(max_lcp >= 200, "no long repeat found (max LCP {max_lcp})");
    }

    #[test]
    fn word_frequencies_are_skewed() {
        let t = wiki_like_text(100_000, 5);
        let words: Vec<&[u8]> = t.split(|&c| c == b' ').filter(|w| !w.is_empty()).collect();
        let mut counts = std::collections::HashMap::new();
        for w in &words {
            *counts.entry(*w).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let mean = words.len() / counts.len().max(1);
        assert!(max > 4 * mean, "zipf skew missing: max {max}, mean {mean}");
    }
}
