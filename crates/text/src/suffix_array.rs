//! Parallel suffix array construction by prefix doubling.
//!
//! Each round sorts the suffixes by their first `2k` characters using the
//! pair `(rank[i], rank[i+k])` as a radix key, then rebuilds ranks with an
//! adjacent-compare + scan. The rebuild scatters `rank[sa[j]] = r_j`
//! through the suffix-array permutation — a textbook `SngInd` write
//! (`sa` is a permutation, so offsets are unique by construction), and the
//! spot where the paper measures the cost of the uniqueness check
//! (Fig. 5a, up to 2.8× on `lrs`/`sa`).
//!
//! Complexity: `O(n log n)` per the doubling rounds with linear-work radix
//! sorts. PBBS also ships a doubling-family SA; SA-IS-style linear
//! construction is out of scope (see DESIGN.md non-goals).

use rayon::prelude::*;

use rpb_fearless::{validate_offsets_cached, ExecMode, ParIndProvedExt, UniquenessCheck};
use rpb_parlay::radix_sort_by_key;
use rpb_parlay::scan::scan_inplace_exclusive;

/// Builds the suffix array of `text` (positions of suffixes in
/// lexicographic order) with the given safety mode for the `SngInd`
/// rank-scatter phases.
///
/// * `ExecMode::Unsafe` — raw scatter (C++-equivalent),
/// * `ExecMode::Checked` — `par_ind_iter_mut` with its uniqueness check,
/// * `ExecMode::Sync` — relaxed atomic stores.
pub fn suffix_array(text: &[u8], mode: ExecMode) -> Vec<u32> {
    let n = text.len();
    assert!(n < u32::MAX as usize, "text too large for u32 suffix array");
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0];
    }
    // Initial ranks from the first byte; ranks in 1..=256 (0 = past-end).
    let mut rank: Vec<u32> = text.par_iter().map(|&c| c as u32 + 1).collect();
    // sa as (key, position) pairs, re-sorted each round.
    let mut sa: Vec<u32> = (0..n as u32).collect();
    let mut pairs: Vec<(u64, u32)> = vec![(0, 0); n];
    // Checked-mode scratch: the usize copy of `sa` that par_ind_iter_mut
    // validates, hoisted so the doubling rounds reuse one allocation.
    let mut offsets_buf: Vec<usize> = Vec::new();
    let mut k = 1usize;
    loop {
        // Compose 2k-prefix keys: high 32 bits rank[i], low rank[i+k].
        pairs.clear();
        pairs.par_extend((0..n).into_par_iter().map(|i| {
            let r1 = rank[i] as u64;
            let r2 = if i + k < n { rank[i + k] as u64 } else { 0 };
            ((r1 << 32) | r2, i as u32)
        }));
        // Sort by key. Ranks are <= n+256, so 2*ceil(log2(n+257)) bits.
        let half_bits = 64 - (n as u64 + 257).leading_zeros();
        radix_sort_by_key(&mut pairs, 32 + half_bits, |p| p.0);
        // New ranks: 1 + inclusive prefix count of key changes up to j.
        let flag = |j: usize| -> usize { usize::from(j > 0 && pairs[j].0 != pairs[j - 1].0) };
        let mut new_rank_by_pos: Vec<usize> = (0..n).into_par_iter().map(flag).collect();
        let changes = scan_inplace_exclusive(&mut new_rank_by_pos, 0, |a, b| a + b);
        let distinct = changes + 1;
        new_rank_by_pos
            .par_iter_mut()
            .enumerate()
            .for_each(|(j, r)| *r += flag(j) + 1);
        // Scatter: rank[sa[j]] = new_rank_by_pos[j]  — SngInd via the
        // suffix permutation.
        sa.clear();
        sa.par_extend(pairs.par_iter().map(|&(_, i)| i));
        scatter_ranks(&mut rank, &sa, &new_rank_by_pos, &mut offsets_buf, mode);
        if distinct as usize == n || k >= n {
            break;
        }
        k *= 2;
    }
    sa
}

/// The `SngInd` write `rank[sa[j]] = new_ranks[j]` in the selected mode.
/// `offsets_buf` is caller-owned scratch reused across doubling rounds
/// (only touched in `Checked` mode).
fn scatter_ranks(
    rank: &mut [u32],
    sa: &[u32],
    new_ranks: &[usize],
    offsets_buf: &mut Vec<usize>,
    mode: ExecMode,
) {
    match mode {
        ExecMode::Unsafe => {
            let view = rpb_fearless::SharedMutSlice::new(rank);
            sa.par_iter()
                .zip(new_ranks.par_iter())
                .for_each(|(&pos, &r)| {
                    // SAFETY: `sa` is a permutation of 0..n — unique offsets.
                    unsafe { view.write(pos as usize, r as u32) };
                });
        }
        ExecMode::Checked => {
            // par_ind_iter_mut wants usize offsets; refill the hoisted
            // buffer (no allocation after the first round), validate once
            // with the adaptive strategy (served by the pooled epoch
            // table), and scatter through the proof.
            offsets_buf.clear();
            offsets_buf.par_extend(sa.par_iter().map(|&x| x as usize));
            match validate_offsets_cached(offsets_buf, rank.len(), UniquenessCheck::Adaptive) {
                Ok(proof) => rank
                    .par_ind_iter_mut_proved(&proof)
                    .zip(new_ranks.par_iter())
                    .for_each(|(slot, &r)| *slot = r as u32),
                Err(e) => panic!("suffix array rank scatter: {e}"),
            }
        }
        ExecMode::Sync => {
            use std::sync::atomic::{AtomicU32, Ordering};
            // SAFETY: exclusive borrow reinterpreted as atomics (same
            // layout); the paper's "placate rustc with relaxed stores".
            let atomic: &[AtomicU32] = unsafe {
                std::slice::from_raw_parts(rank.as_ptr() as *const AtomicU32, rank.len())
            };
            sa.par_iter()
                .zip(new_ranks.par_iter())
                .for_each(|(&pos, &r)| {
                    atomic[pos as usize].store(r as u32, Ordering::Relaxed);
                });
        }
    }
}

/// Sequential prefix-doubling baseline (same algorithm, `std` sort).
pub fn suffix_array_seq(text: &[u8]) -> Vec<u32> {
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    let mut rank: Vec<u32> = text.iter().map(|&c| c as u32 + 1).collect();
    let mut sa: Vec<u32> = (0..n as u32).collect();
    let mut k = 1usize;
    loop {
        let key = |i: usize| -> (u32, u32) { (rank[i], if i + k < n { rank[i + k] } else { 0 }) };
        sa.sort_unstable_by_key(|&i| key(i as usize));
        let mut new_rank = vec![0u32; n];
        let mut r = 1u32;
        new_rank[sa[0] as usize] = 1;
        for j in 1..n {
            if key(sa[j] as usize) != key(sa[j - 1] as usize) {
                r += 1;
            }
            new_rank[sa[j] as usize] = r;
        }
        rank = new_rank;
        if r as usize == n || k >= n {
            break;
        }
        k *= 2;
    }
    sa
}

/// Quadratic-ish reference for tests: sorts suffix slices directly.
pub fn suffix_array_naive(text: &[u8]) -> Vec<u32> {
    let mut sa: Vec<u32> = (0..text.len() as u32).collect();
    sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
    sa
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODES: [ExecMode; 3] = [ExecMode::Unsafe, ExecMode::Checked, ExecMode::Sync];

    #[test]
    fn banana() {
        let t = b"banana";
        let want = suffix_array_naive(t);
        assert_eq!(want, vec![5, 3, 1, 0, 4, 2]);
        for mode in MODES {
            assert_eq!(suffix_array(t, mode), want, "{mode}");
        }
        assert_eq!(suffix_array_seq(t), want);
    }

    #[test]
    fn mississippi() {
        let t = b"mississippi";
        let want = suffix_array_naive(t);
        for mode in MODES {
            assert_eq!(suffix_array(t, mode), want, "{mode}");
        }
        assert_eq!(suffix_array_seq(t), want);
    }

    #[test]
    fn all_same_character() {
        let t = vec![b'a'; 500];
        let want: Vec<u32> = (0..500u32).rev().collect();
        assert_eq!(suffix_array(&t, ExecMode::Checked), want);
        assert_eq!(suffix_array_seq(&t), want);
    }

    #[test]
    fn empty_and_single() {
        assert!(suffix_array(b"", ExecMode::Checked).is_empty());
        assert_eq!(suffix_array(b"x", ExecMode::Checked), vec![0]);
    }

    #[test]
    fn random_bytes_match_naive() {
        let t: Vec<u8> = (0..3000u64)
            .map(|i| (rpb_parlay::random::hash64(i) % 4) as u8 + b'a')
            .collect();
        let want = suffix_array_naive(&t);
        for mode in MODES {
            assert_eq!(suffix_array(&t, mode), want, "{mode}");
        }
        assert_eq!(suffix_array_seq(&t), want);
    }

    #[test]
    fn larger_text_parallel_equals_seq() {
        let t = crate::gen::wiki_like_text(60_000, 11);
        let par = suffix_array(&t, ExecMode::Unsafe);
        let seq = suffix_array_seq(&t);
        assert_eq!(par, seq);
    }

    #[test]
    fn result_is_a_permutation() {
        let t = crate::gen::wiki_like_text(10_000, 5);
        let sa = suffix_array(&t, ExecMode::Checked);
        let mut seen = vec![false; t.len()];
        for &i in &sa {
            assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
    }

    #[test]
    fn suffixes_are_sorted() {
        let t = crate::gen::wiki_like_text(5_000, 9);
        let sa = suffix_array(&t, ExecMode::Checked);
        for w in sa.windows(2) {
            assert!(t[w[0] as usize..] < t[w[1] as usize..]);
        }
    }
}
